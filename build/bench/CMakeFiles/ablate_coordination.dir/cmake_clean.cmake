file(REMOVE_RECURSE
  "CMakeFiles/ablate_coordination.dir/ablate_coordination.cc.o"
  "CMakeFiles/ablate_coordination.dir/ablate_coordination.cc.o.d"
  "ablate_coordination"
  "ablate_coordination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_coordination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablate_coordination.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablate_zone_maps.dir/ablate_zone_maps.cc.o"
  "CMakeFiles/ablate_zone_maps.dir/ablate_zone_maps.cc.o.d"
  "ablate_zone_maps"
  "ablate_zone_maps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_zone_maps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablate_zone_maps.
# This may be replaced when dependencies are built.

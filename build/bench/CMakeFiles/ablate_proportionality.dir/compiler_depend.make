# Empty compiler generated dependencies file for ablate_proportionality.
# This may be replaced when dependencies are built.

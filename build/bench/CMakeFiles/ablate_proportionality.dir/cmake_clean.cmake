file(REMOVE_RECURSE
  "CMakeFiles/ablate_proportionality.dir/ablate_proportionality.cc.o"
  "CMakeFiles/ablate_proportionality.dir/ablate_proportionality.cc.o.d"
  "ablate_proportionality"
  "ablate_proportionality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_proportionality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

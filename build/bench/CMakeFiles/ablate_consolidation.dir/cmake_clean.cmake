file(REMOVE_RECURSE
  "CMakeFiles/ablate_consolidation.dir/ablate_consolidation.cc.o"
  "CMakeFiles/ablate_consolidation.dir/ablate_consolidation.cc.o.d"
  "ablate_consolidation"
  "ablate_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablate_consolidation.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig2_scan_compression.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig2_scan_compression.dir/fig2_scan_compression.cc.o"
  "CMakeFiles/fig2_scan_compression.dir/fig2_scan_compression.cc.o.d"
  "fig2_scan_compression"
  "fig2_scan_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_scan_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

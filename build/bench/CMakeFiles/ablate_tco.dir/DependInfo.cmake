
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablate_tco.cc" "bench/CMakeFiles/ablate_tco.dir/ablate_tco.cc.o" "gcc" "bench/CMakeFiles/ablate_tco.dir/ablate_tco.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/advisor/CMakeFiles/ecodb_advisor.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/ecodb_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/ecodb_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ecodb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ecodb_power.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/ecodb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ecodb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ecodb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/ablate_tco.dir/ablate_tco.cc.o"
  "CMakeFiles/ablate_tco.dir/ablate_tco.cc.o.d"
  "ablate_tco"
  "ablate_tco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_tco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablate_tco.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ablate_layout.
# This may be replaced when dependencies are built.

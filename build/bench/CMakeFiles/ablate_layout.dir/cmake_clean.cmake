file(REMOVE_RECURSE
  "CMakeFiles/ablate_layout.dir/ablate_layout.cc.o"
  "CMakeFiles/ablate_layout.dir/ablate_layout.cc.o.d"
  "ablate_layout"
  "ablate_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablate_index_crossover.
# This may be replaced when dependencies are built.

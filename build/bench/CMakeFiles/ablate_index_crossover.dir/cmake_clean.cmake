file(REMOVE_RECURSE
  "CMakeFiles/ablate_index_crossover.dir/ablate_index_crossover.cc.o"
  "CMakeFiles/ablate_index_crossover.dir/ablate_index_crossover.cc.o.d"
  "ablate_index_crossover"
  "ablate_index_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_index_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig1_diminishing_returns.dir/fig1_diminishing_returns.cc.o"
  "CMakeFiles/fig1_diminishing_returns.dir/fig1_diminishing_returns.cc.o.d"
  "fig1_diminishing_returns"
  "fig1_diminishing_returns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_diminishing_returns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

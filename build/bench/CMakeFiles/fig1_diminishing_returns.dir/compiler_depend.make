# Empty compiler generated dependencies file for fig1_diminishing_returns.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablate_group_commit.dir/ablate_group_commit.cc.o"
  "CMakeFiles/ablate_group_commit.dir/ablate_group_commit.cc.o.d"
  "ablate_group_commit"
  "ablate_group_commit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_group_commit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

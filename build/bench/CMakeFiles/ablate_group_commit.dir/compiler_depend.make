# Empty compiler generated dependencies file for ablate_group_commit.
# This may be replaced when dependencies are built.

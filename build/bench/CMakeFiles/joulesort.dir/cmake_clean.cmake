file(REMOVE_RECURSE
  "CMakeFiles/joulesort.dir/joulesort.cc.o"
  "CMakeFiles/joulesort.dir/joulesort.cc.o.d"
  "joulesort"
  "joulesort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joulesort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

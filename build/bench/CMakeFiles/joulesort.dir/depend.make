# Empty dependencies file for joulesort.
# This may be replaced when dependencies are built.

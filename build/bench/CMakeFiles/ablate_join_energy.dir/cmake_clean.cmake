file(REMOVE_RECURSE
  "CMakeFiles/ablate_join_energy.dir/ablate_join_energy.cc.o"
  "CMakeFiles/ablate_join_energy.dir/ablate_join_energy.cc.o.d"
  "ablate_join_energy"
  "ablate_join_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_join_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

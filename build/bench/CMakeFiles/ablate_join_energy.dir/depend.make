# Empty dependencies file for ablate_join_energy.
# This may be replaced when dependencies are built.

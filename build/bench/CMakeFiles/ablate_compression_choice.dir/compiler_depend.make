# Empty compiler generated dependencies file for ablate_compression_choice.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablate_compression_choice.dir/ablate_compression_choice.cc.o"
  "CMakeFiles/ablate_compression_choice.dir/ablate_compression_choice.cc.o.d"
  "ablate_compression_choice"
  "ablate_compression_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_compression_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablate_cluster.
# This may be replaced when dependencies are built.

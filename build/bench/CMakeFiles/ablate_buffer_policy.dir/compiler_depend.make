# Empty compiler generated dependencies file for ablate_buffer_policy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablate_buffer_policy.dir/ablate_buffer_policy.cc.o"
  "CMakeFiles/ablate_buffer_policy.dir/ablate_buffer_policy.cc.o.d"
  "ablate_buffer_policy"
  "ablate_buffer_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_buffer_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ablate_migration.dir/ablate_migration.cc.o"
  "CMakeFiles/ablate_migration.dir/ablate_migration.cc.o.d"
  "ablate_migration"
  "ablate_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablate_migration.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table_storage_test.dir/table_storage_test.cc.o"
  "CMakeFiles/table_storage_test.dir/table_storage_test.cc.o.d"
  "table_storage_test"
  "table_storage_test.pdb"
  "table_storage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

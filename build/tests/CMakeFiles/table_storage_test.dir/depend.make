# Empty dependencies file for table_storage_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/zone_map_test.dir/zone_map_test.cc.o"
  "CMakeFiles/zone_map_test.dir/zone_map_test.cc.o.d"
  "zone_map_test"
  "zone_map_test.pdb"
  "zone_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zone_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

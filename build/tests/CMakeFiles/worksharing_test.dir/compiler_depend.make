# Empty compiler generated dependencies file for worksharing_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/worksharing_test.dir/worksharing_test.cc.o"
  "CMakeFiles/worksharing_test.dir/worksharing_test.cc.o.d"
  "worksharing_test"
  "worksharing_test.pdb"
  "worksharing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worksharing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ecodb_test.dir/ecodb_test.cc.o"
  "CMakeFiles/ecodb_test.dir/ecodb_test.cc.o.d"
  "ecodb_test"
  "ecodb_test.pdb"
  "ecodb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecodb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

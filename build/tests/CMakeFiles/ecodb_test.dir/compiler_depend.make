# Empty compiler generated dependencies file for ecodb_test.
# This may be replaced when dependencies are built.

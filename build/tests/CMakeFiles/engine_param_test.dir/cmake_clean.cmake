file(REMOVE_RECURSE
  "CMakeFiles/engine_param_test.dir/engine_param_test.cc.o"
  "CMakeFiles/engine_param_test.dir/engine_param_test.cc.o.d"
  "engine_param_test"
  "engine_param_test.pdb"
  "engine_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/power_test[1]_include.cmake")
include("/root/repo/build/tests/compression_test[1]_include.cmake")
include("/root/repo/build/tests/page_test[1]_include.cmake")
include("/root/repo/build/tests/device_test[1]_include.cmake")
include("/root/repo/build/tests/table_storage_test[1]_include.cmake")
include("/root/repo/build/tests/buffer_pool_test[1]_include.cmake")
include("/root/repo/build/tests/txn_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/operators_test[1]_include.cmake")
include("/root/repo/build/tests/exec_context_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/advisor_test[1]_include.cmake")
include("/root/repo/build/tests/tpch_test[1]_include.cmake")
include("/root/repo/build/tests/ecodb_test[1]_include.cmake")
include("/root/repo/build/tests/governor_test[1]_include.cmake")
include("/root/repo/build/tests/checkpoint_test[1]_include.cmake")
include("/root/repo/build/tests/tco_test[1]_include.cmake")
include("/root/repo/build/tests/worksharing_test[1]_include.cmake")
include("/root/repo/build/tests/engine_param_test[1]_include.cmake")
include("/root/repo/build/tests/zone_map_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/access_path_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/remote_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/aggregate.cc" "src/exec/CMakeFiles/ecodb_exec.dir/aggregate.cc.o" "gcc" "src/exec/CMakeFiles/ecodb_exec.dir/aggregate.cc.o.d"
  "/root/repo/src/exec/batch.cc" "src/exec/CMakeFiles/ecodb_exec.dir/batch.cc.o" "gcc" "src/exec/CMakeFiles/ecodb_exec.dir/batch.cc.o.d"
  "/root/repo/src/exec/exec_context.cc" "src/exec/CMakeFiles/ecodb_exec.dir/exec_context.cc.o" "gcc" "src/exec/CMakeFiles/ecodb_exec.dir/exec_context.cc.o.d"
  "/root/repo/src/exec/expr.cc" "src/exec/CMakeFiles/ecodb_exec.dir/expr.cc.o" "gcc" "src/exec/CMakeFiles/ecodb_exec.dir/expr.cc.o.d"
  "/root/repo/src/exec/filter_project.cc" "src/exec/CMakeFiles/ecodb_exec.dir/filter_project.cc.o" "gcc" "src/exec/CMakeFiles/ecodb_exec.dir/filter_project.cc.o.d"
  "/root/repo/src/exec/index_scan.cc" "src/exec/CMakeFiles/ecodb_exec.dir/index_scan.cc.o" "gcc" "src/exec/CMakeFiles/ecodb_exec.dir/index_scan.cc.o.d"
  "/root/repo/src/exec/joins.cc" "src/exec/CMakeFiles/ecodb_exec.dir/joins.cc.o" "gcc" "src/exec/CMakeFiles/ecodb_exec.dir/joins.cc.o.d"
  "/root/repo/src/exec/scan.cc" "src/exec/CMakeFiles/ecodb_exec.dir/scan.cc.o" "gcc" "src/exec/CMakeFiles/ecodb_exec.dir/scan.cc.o.d"
  "/root/repo/src/exec/sort_limit.cc" "src/exec/CMakeFiles/ecodb_exec.dir/sort_limit.cc.o" "gcc" "src/exec/CMakeFiles/ecodb_exec.dir/sort_limit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/ecodb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ecodb_power.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/ecodb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ecodb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ecodb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

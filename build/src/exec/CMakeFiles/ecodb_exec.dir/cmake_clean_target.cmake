file(REMOVE_RECURSE
  "libecodb_exec.a"
)

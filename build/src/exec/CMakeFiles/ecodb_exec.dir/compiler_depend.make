# Empty compiler generated dependencies file for ecodb_exec.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ecodb_exec.dir/aggregate.cc.o"
  "CMakeFiles/ecodb_exec.dir/aggregate.cc.o.d"
  "CMakeFiles/ecodb_exec.dir/batch.cc.o"
  "CMakeFiles/ecodb_exec.dir/batch.cc.o.d"
  "CMakeFiles/ecodb_exec.dir/exec_context.cc.o"
  "CMakeFiles/ecodb_exec.dir/exec_context.cc.o.d"
  "CMakeFiles/ecodb_exec.dir/expr.cc.o"
  "CMakeFiles/ecodb_exec.dir/expr.cc.o.d"
  "CMakeFiles/ecodb_exec.dir/filter_project.cc.o"
  "CMakeFiles/ecodb_exec.dir/filter_project.cc.o.d"
  "CMakeFiles/ecodb_exec.dir/index_scan.cc.o"
  "CMakeFiles/ecodb_exec.dir/index_scan.cc.o.d"
  "CMakeFiles/ecodb_exec.dir/joins.cc.o"
  "CMakeFiles/ecodb_exec.dir/joins.cc.o.d"
  "CMakeFiles/ecodb_exec.dir/scan.cc.o"
  "CMakeFiles/ecodb_exec.dir/scan.cc.o.d"
  "CMakeFiles/ecodb_exec.dir/sort_limit.cc.o"
  "CMakeFiles/ecodb_exec.dir/sort_limit.cc.o.d"
  "libecodb_exec.a"
  "libecodb_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecodb_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

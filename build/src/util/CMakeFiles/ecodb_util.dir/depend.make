# Empty dependencies file for ecodb_util.
# This may be replaced when dependencies are built.

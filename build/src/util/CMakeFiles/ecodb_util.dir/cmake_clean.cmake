file(REMOVE_RECURSE
  "CMakeFiles/ecodb_util.dir/histogram.cc.o"
  "CMakeFiles/ecodb_util.dir/histogram.cc.o.d"
  "CMakeFiles/ecodb_util.dir/random.cc.o"
  "CMakeFiles/ecodb_util.dir/random.cc.o.d"
  "CMakeFiles/ecodb_util.dir/status.cc.o"
  "CMakeFiles/ecodb_util.dir/status.cc.o.d"
  "CMakeFiles/ecodb_util.dir/units.cc.o"
  "CMakeFiles/ecodb_util.dir/units.cc.o.d"
  "libecodb_util.a"
  "libecodb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecodb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libecodb_util.a"
)

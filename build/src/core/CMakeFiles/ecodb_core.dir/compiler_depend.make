# Empty compiler generated dependencies file for ecodb_core.
# This may be replaced when dependencies are built.

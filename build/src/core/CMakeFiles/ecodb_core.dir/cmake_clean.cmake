file(REMOVE_RECURSE
  "CMakeFiles/ecodb_core.dir/ecodb.cc.o"
  "CMakeFiles/ecodb_core.dir/ecodb.cc.o.d"
  "libecodb_core.a"
  "libecodb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecodb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libecodb_core.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/btree.cc" "src/storage/CMakeFiles/ecodb_storage.dir/btree.cc.o" "gcc" "src/storage/CMakeFiles/ecodb_storage.dir/btree.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/storage/CMakeFiles/ecodb_storage.dir/buffer_pool.cc.o" "gcc" "src/storage/CMakeFiles/ecodb_storage.dir/buffer_pool.cc.o.d"
  "/root/repo/src/storage/compression.cc" "src/storage/CMakeFiles/ecodb_storage.dir/compression.cc.o" "gcc" "src/storage/CMakeFiles/ecodb_storage.dir/compression.cc.o.d"
  "/root/repo/src/storage/disk_array.cc" "src/storage/CMakeFiles/ecodb_storage.dir/disk_array.cc.o" "gcc" "src/storage/CMakeFiles/ecodb_storage.dir/disk_array.cc.o.d"
  "/root/repo/src/storage/hdd.cc" "src/storage/CMakeFiles/ecodb_storage.dir/hdd.cc.o" "gcc" "src/storage/CMakeFiles/ecodb_storage.dir/hdd.cc.o.d"
  "/root/repo/src/storage/page.cc" "src/storage/CMakeFiles/ecodb_storage.dir/page.cc.o" "gcc" "src/storage/CMakeFiles/ecodb_storage.dir/page.cc.o.d"
  "/root/repo/src/storage/remote.cc" "src/storage/CMakeFiles/ecodb_storage.dir/remote.cc.o" "gcc" "src/storage/CMakeFiles/ecodb_storage.dir/remote.cc.o.d"
  "/root/repo/src/storage/ssd.cc" "src/storage/CMakeFiles/ecodb_storage.dir/ssd.cc.o" "gcc" "src/storage/CMakeFiles/ecodb_storage.dir/ssd.cc.o.d"
  "/root/repo/src/storage/table_storage.cc" "src/storage/CMakeFiles/ecodb_storage.dir/table_storage.cc.o" "gcc" "src/storage/CMakeFiles/ecodb_storage.dir/table_storage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/power/CMakeFiles/ecodb_power.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/ecodb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ecodb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ecodb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

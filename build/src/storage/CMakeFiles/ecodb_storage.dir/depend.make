# Empty dependencies file for ecodb_storage.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libecodb_storage.a"
)

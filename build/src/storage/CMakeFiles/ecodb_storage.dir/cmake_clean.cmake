file(REMOVE_RECURSE
  "CMakeFiles/ecodb_storage.dir/btree.cc.o"
  "CMakeFiles/ecodb_storage.dir/btree.cc.o.d"
  "CMakeFiles/ecodb_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/ecodb_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/ecodb_storage.dir/compression.cc.o"
  "CMakeFiles/ecodb_storage.dir/compression.cc.o.d"
  "CMakeFiles/ecodb_storage.dir/disk_array.cc.o"
  "CMakeFiles/ecodb_storage.dir/disk_array.cc.o.d"
  "CMakeFiles/ecodb_storage.dir/hdd.cc.o"
  "CMakeFiles/ecodb_storage.dir/hdd.cc.o.d"
  "CMakeFiles/ecodb_storage.dir/page.cc.o"
  "CMakeFiles/ecodb_storage.dir/page.cc.o.d"
  "CMakeFiles/ecodb_storage.dir/remote.cc.o"
  "CMakeFiles/ecodb_storage.dir/remote.cc.o.d"
  "CMakeFiles/ecodb_storage.dir/ssd.cc.o"
  "CMakeFiles/ecodb_storage.dir/ssd.cc.o.d"
  "CMakeFiles/ecodb_storage.dir/table_storage.cc.o"
  "CMakeFiles/ecodb_storage.dir/table_storage.cc.o.d"
  "libecodb_storage.a"
  "libecodb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecodb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libecodb_optimizer.a"
)

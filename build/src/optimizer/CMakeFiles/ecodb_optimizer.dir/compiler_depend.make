# Empty compiler generated dependencies file for ecodb_optimizer.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ecodb_optimizer.dir/cost_model.cc.o"
  "CMakeFiles/ecodb_optimizer.dir/cost_model.cc.o.d"
  "CMakeFiles/ecodb_optimizer.dir/planner.cc.o"
  "CMakeFiles/ecodb_optimizer.dir/planner.cc.o.d"
  "libecodb_optimizer.a"
  "libecodb_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecodb_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

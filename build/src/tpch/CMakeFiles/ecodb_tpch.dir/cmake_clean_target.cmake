file(REMOVE_RECURSE
  "libecodb_tpch.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/ecodb_tpch.dir/generator.cc.o"
  "CMakeFiles/ecodb_tpch.dir/generator.cc.o.d"
  "CMakeFiles/ecodb_tpch.dir/workload.cc.o"
  "CMakeFiles/ecodb_tpch.dir/workload.cc.o.d"
  "libecodb_tpch.a"
  "libecodb_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecodb_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ecodb_tpch.
# This may be replaced when dependencies are built.

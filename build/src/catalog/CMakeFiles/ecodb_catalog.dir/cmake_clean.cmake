file(REMOVE_RECURSE
  "CMakeFiles/ecodb_catalog.dir/catalog.cc.o"
  "CMakeFiles/ecodb_catalog.dir/catalog.cc.o.d"
  "CMakeFiles/ecodb_catalog.dir/schema.cc.o"
  "CMakeFiles/ecodb_catalog.dir/schema.cc.o.d"
  "libecodb_catalog.a"
  "libecodb_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecodb_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

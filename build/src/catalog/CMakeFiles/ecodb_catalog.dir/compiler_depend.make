# Empty compiler generated dependencies file for ecodb_catalog.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libecodb_catalog.a"
)

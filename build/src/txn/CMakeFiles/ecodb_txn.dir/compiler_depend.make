# Empty compiler generated dependencies file for ecodb_txn.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ecodb_txn.dir/checkpoint.cc.o"
  "CMakeFiles/ecodb_txn.dir/checkpoint.cc.o.d"
  "CMakeFiles/ecodb_txn.dir/log_record.cc.o"
  "CMakeFiles/ecodb_txn.dir/log_record.cc.o.d"
  "CMakeFiles/ecodb_txn.dir/recovery.cc.o"
  "CMakeFiles/ecodb_txn.dir/recovery.cc.o.d"
  "CMakeFiles/ecodb_txn.dir/wal.cc.o"
  "CMakeFiles/ecodb_txn.dir/wal.cc.o.d"
  "libecodb_txn.a"
  "libecodb_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecodb_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

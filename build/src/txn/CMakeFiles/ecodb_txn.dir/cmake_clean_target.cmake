file(REMOVE_RECURSE
  "libecodb_txn.a"
)

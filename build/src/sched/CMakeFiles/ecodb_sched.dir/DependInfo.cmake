
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/batching.cc" "src/sched/CMakeFiles/ecodb_sched.dir/batching.cc.o" "gcc" "src/sched/CMakeFiles/ecodb_sched.dir/batching.cc.o.d"
  "/root/repo/src/sched/cluster.cc" "src/sched/CMakeFiles/ecodb_sched.dir/cluster.cc.o" "gcc" "src/sched/CMakeFiles/ecodb_sched.dir/cluster.cc.o.d"
  "/root/repo/src/sched/consolidation.cc" "src/sched/CMakeFiles/ecodb_sched.dir/consolidation.cc.o" "gcc" "src/sched/CMakeFiles/ecodb_sched.dir/consolidation.cc.o.d"
  "/root/repo/src/sched/prefetcher.cc" "src/sched/CMakeFiles/ecodb_sched.dir/prefetcher.cc.o" "gcc" "src/sched/CMakeFiles/ecodb_sched.dir/prefetcher.cc.o.d"
  "/root/repo/src/sched/shared_scan.cc" "src/sched/CMakeFiles/ecodb_sched.dir/shared_scan.cc.o" "gcc" "src/sched/CMakeFiles/ecodb_sched.dir/shared_scan.cc.o.d"
  "/root/repo/src/sched/spin_down.cc" "src/sched/CMakeFiles/ecodb_sched.dir/spin_down.cc.o" "gcc" "src/sched/CMakeFiles/ecodb_sched.dir/spin_down.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/ecodb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ecodb_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ecodb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ecodb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/ecodb_catalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/ecodb_sched.dir/batching.cc.o"
  "CMakeFiles/ecodb_sched.dir/batching.cc.o.d"
  "CMakeFiles/ecodb_sched.dir/cluster.cc.o"
  "CMakeFiles/ecodb_sched.dir/cluster.cc.o.d"
  "CMakeFiles/ecodb_sched.dir/consolidation.cc.o"
  "CMakeFiles/ecodb_sched.dir/consolidation.cc.o.d"
  "CMakeFiles/ecodb_sched.dir/prefetcher.cc.o"
  "CMakeFiles/ecodb_sched.dir/prefetcher.cc.o.d"
  "CMakeFiles/ecodb_sched.dir/shared_scan.cc.o"
  "CMakeFiles/ecodb_sched.dir/shared_scan.cc.o.d"
  "CMakeFiles/ecodb_sched.dir/spin_down.cc.o"
  "CMakeFiles/ecodb_sched.dir/spin_down.cc.o.d"
  "libecodb_sched.a"
  "libecodb_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecodb_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

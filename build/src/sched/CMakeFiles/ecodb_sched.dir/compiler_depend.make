# Empty compiler generated dependencies file for ecodb_sched.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libecodb_sched.a"
)

# Empty compiler generated dependencies file for ecodb_sim.
# This may be replaced when dependencies are built.

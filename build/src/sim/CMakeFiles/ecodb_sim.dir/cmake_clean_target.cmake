file(REMOVE_RECURSE
  "libecodb_sim.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/ecodb_sim.dir/event_queue.cc.o"
  "CMakeFiles/ecodb_sim.dir/event_queue.cc.o.d"
  "libecodb_sim.a"
  "libecodb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecodb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

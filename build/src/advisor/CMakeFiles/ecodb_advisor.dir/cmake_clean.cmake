file(REMOVE_RECURSE
  "CMakeFiles/ecodb_advisor.dir/design_advisor.cc.o"
  "CMakeFiles/ecodb_advisor.dir/design_advisor.cc.o.d"
  "CMakeFiles/ecodb_advisor.dir/tco.cc.o"
  "CMakeFiles/ecodb_advisor.dir/tco.cc.o.d"
  "libecodb_advisor.a"
  "libecodb_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecodb_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ecodb_advisor.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libecodb_advisor.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/ecodb_power.dir/cpu_power.cc.o"
  "CMakeFiles/ecodb_power.dir/cpu_power.cc.o.d"
  "CMakeFiles/ecodb_power.dir/device_power.cc.o"
  "CMakeFiles/ecodb_power.dir/device_power.cc.o.d"
  "CMakeFiles/ecodb_power.dir/energy_meter.cc.o"
  "CMakeFiles/ecodb_power.dir/energy_meter.cc.o.d"
  "CMakeFiles/ecodb_power.dir/governor.cc.o"
  "CMakeFiles/ecodb_power.dir/governor.cc.o.d"
  "CMakeFiles/ecodb_power.dir/platform.cc.o"
  "CMakeFiles/ecodb_power.dir/platform.cc.o.d"
  "CMakeFiles/ecodb_power.dir/proportionality.cc.o"
  "CMakeFiles/ecodb_power.dir/proportionality.cc.o.d"
  "CMakeFiles/ecodb_power.dir/rapl.cc.o"
  "CMakeFiles/ecodb_power.dir/rapl.cc.o.d"
  "libecodb_power.a"
  "libecodb_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecodb_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/cpu_power.cc" "src/power/CMakeFiles/ecodb_power.dir/cpu_power.cc.o" "gcc" "src/power/CMakeFiles/ecodb_power.dir/cpu_power.cc.o.d"
  "/root/repo/src/power/device_power.cc" "src/power/CMakeFiles/ecodb_power.dir/device_power.cc.o" "gcc" "src/power/CMakeFiles/ecodb_power.dir/device_power.cc.o.d"
  "/root/repo/src/power/energy_meter.cc" "src/power/CMakeFiles/ecodb_power.dir/energy_meter.cc.o" "gcc" "src/power/CMakeFiles/ecodb_power.dir/energy_meter.cc.o.d"
  "/root/repo/src/power/governor.cc" "src/power/CMakeFiles/ecodb_power.dir/governor.cc.o" "gcc" "src/power/CMakeFiles/ecodb_power.dir/governor.cc.o.d"
  "/root/repo/src/power/platform.cc" "src/power/CMakeFiles/ecodb_power.dir/platform.cc.o" "gcc" "src/power/CMakeFiles/ecodb_power.dir/platform.cc.o.d"
  "/root/repo/src/power/proportionality.cc" "src/power/CMakeFiles/ecodb_power.dir/proportionality.cc.o" "gcc" "src/power/CMakeFiles/ecodb_power.dir/proportionality.cc.o.d"
  "/root/repo/src/power/rapl.cc" "src/power/CMakeFiles/ecodb_power.dir/rapl.cc.o" "gcc" "src/power/CMakeFiles/ecodb_power.dir/rapl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ecodb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ecodb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libecodb_power.a"
)

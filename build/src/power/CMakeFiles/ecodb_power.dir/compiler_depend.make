# Empty compiler generated dependencies file for ecodb_power.
# This may be replaced when dependencies are built.

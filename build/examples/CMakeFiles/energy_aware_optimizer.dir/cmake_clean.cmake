file(REMOVE_RECURSE
  "CMakeFiles/energy_aware_optimizer.dir/energy_aware_optimizer.cpp.o"
  "CMakeFiles/energy_aware_optimizer.dir/energy_aware_optimizer.cpp.o.d"
  "energy_aware_optimizer"
  "energy_aware_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_aware_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for energy_aware_optimizer.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/consolidation_demo.dir/consolidation_demo.cpp.o"
  "CMakeFiles/consolidation_demo.dir/consolidation_demo.cpp.o.d"
  "consolidation_demo"
  "consolidation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consolidation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

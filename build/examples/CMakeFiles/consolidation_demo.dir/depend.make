# Empty dependencies file for consolidation_demo.
# This may be replaced when dependencies are built.

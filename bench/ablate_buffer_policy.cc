// Ablation A6 (Sections 4.3 / 5.2): energy-aware buffer replacement vs
// latency-oriented LRU/CLOCK when hierarchy levels have unequal energy
// costs.
//
// "New caching and replacement policies will be needed, possibly involving
// a larger number of more diverse memory hierarchy levels."
//
// The harness replays a Zipfian page trace that mixes pages stored on a
// spinning disk (expensive to reload) and on an SSD (cheap to reload)
// through an undersized pool under each policy, and reports reload energy.

#include "bench_util.h"
#include "power/energy_meter.h"
#include "sim/clock.h"
#include "storage/buffer_pool.h"
#include "storage/hdd.h"
#include "storage/ssd.h"
#include "util/random.h"

namespace ecodb {
namespace {

constexpr int kAccesses = 40000;
constexpr uint32_t kHddPages = 256;
constexpr uint32_t kSsdPages = 256;
constexpr size_t kFrames = 128;

struct RunOutcome {
  double device_joules = 0;
  double hit_rate = 0;
};

RunOutcome RunTrace(storage::ReplacementPolicy policy) {
  sim::SimClock clock;
  power::EnergyMeter meter(&clock);
  storage::HddDevice hdd("hdd", power::HddSpec{}, &meter);
  storage::SsdDevice ssd("ssd", power::SsdSpec{}, &meter);

  storage::BufferPoolConfig config;
  config.num_frames = kFrames;
  config.policy = policy;
  storage::BufferPool pool(config, &clock, &meter);

  Rng rng(20090107);
  for (int i = 0; i < kAccesses; ++i) {
    // Zipfian rank over the combined page population; even ranks live on
    // the disk, odd ranks on the SSD, so hot sets straddle both devices.
    const uint64_t rank = rng.Zipf(kHddPages + kSsdPages, 0.7);
    if (rank % 2 == 0) {
      (void)pool.Access(storage::PageId{1, static_cast<uint32_t>(rank / 2)}, &hdd).value();
    } else {
      (void)pool.Access(storage::PageId{2, static_cast<uint32_t>(rank / 2)}, &ssd).value();
    }
  }
  clock.AdvanceTo(std::max(hdd.busy_until(), ssd.busy_until()));

  RunOutcome out;
  // Active (reload) energy only; idle floors are identical across policies.
  out.device_joules =
      meter.ChannelBusySeconds(hdd.channel()) * power::HddSpec{}.active_watts +
      meter.ChannelBusySeconds(ssd.channel()) * power::SsdSpec{}.active_watts;
  out.hit_rate = pool.stats().HitRate();
  return out;
}

}  // namespace

int Main() {
  bench::Banner(
      "Ablation A6: buffer replacement policy vs reload energy",
      "Zipfian(0.7) trace over 512 pages split across a 15K disk and an "
      "SSD; 128-frame pool");

  bench::Table table({"policy", "reload energy (J)", "hit rate"});
  double lru = 0, clock_j = 0, energy_aware = 0;
  for (auto policy :
       {storage::ReplacementPolicy::kLru, storage::ReplacementPolicy::kClock,
        storage::ReplacementPolicy::kEnergyAware}) {
    const RunOutcome out = RunTrace(policy);
    table.AddRow({storage::ReplacementPolicyName(policy),
                  bench::Fmt("%.1f", out.device_joules),
                  bench::Fmt("%.3f", out.hit_rate)});
    switch (policy) {
      case storage::ReplacementPolicy::kLru:
        lru = out.device_joules;
        break;
      case storage::ReplacementPolicy::kClock:
        clock_j = out.device_joules;
        break;
      case storage::ReplacementPolicy::kEnergyAware:
        energy_aware = out.device_joules;
        break;
    }
  }
  table.Print();

  std::printf("energy-aware saves %.1f%% vs LRU and %.1f%% vs CLOCK\n",
              (1.0 - energy_aware / lru) * 100.0,
              (1.0 - energy_aware / clock_j) * 100.0);
  const bool shape = energy_aware < lru && energy_aware < clock_j;
  std::printf("shape check (energy-aware replacement uses least reload "
              "energy): %s\n", shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}

}  // namespace ecodb

int main() { return ecodb::Main(); }

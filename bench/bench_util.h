// Shared console-reporting helpers for the experiment harnesses.

#ifndef ECODB_BENCH_BENCH_UTIL_H_
#define ECODB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

namespace ecodb::bench {

/// Prints a titled experiment banner.
inline void Banner(const std::string& title, const std::string& subtitle) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!subtitle.empty()) std::printf("%s\n", subtitle.c_str());
  std::printf("\n");
}

/// Fixed-width table printer: header row then data rows.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        if (row[c].size() > widths[c]) widths[c] = row[c].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    for (size_t c = 0; c < headers_.size(); ++c) {
      std::printf("%s  ", std::string(widths[c], '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace ecodb::bench

#endif  // ECODB_BENCH_BENCH_UTIL_H_

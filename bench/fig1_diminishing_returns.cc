// Figure 1 reproduction: time and energy efficiency vs number of disks for
// the TPC-H throughput test.
//
// Paper setup (Section 3.1): an HP ProLiant DL785 (8 x quad-core Opteron,
// 64 GB) running an audited-style TPC-H throughput test at 300 GB scale,
// with the database striped RAID-5 across {36, 66, 108, 204} SCSI 15K
// drives. Observed there: performance keeps improving with more disks but
// with diminishing returns, while every disk adds constant power — so
// energy efficiency peaks at 66 disks (+14% EE for -45% performance vs the
// 204-disk configuration).
//
// Our reproduction runs the real throughput-test query mix (Q1/Q6/Q3-
// flavored over generated ORDERS/LINEITEM) against a simulated RAID-5 array
// whose bandwidth is volumetrically calibrated: per-disk bandwidth is scaled
// by (our data volume / 300 GB) so per-query times land at the paper's
// magnitude; stripe skew provides the measured sub-linear scaling. See
// EXPERIMENTS.md for the calibration rule.

#include <cmath>
#include <memory>

#include "advisor/design_advisor.h"
#include "bench_util.h"
#include "power/platform.h"
#include "storage/disk_array.h"
#include "storage/hdd.h"
#include "tpch/generator.h"
#include "tpch/workload.h"

namespace ecodb {
namespace {

const std::vector<int> kDiskCounts = {36, 66, 108, 204};
constexpr int kStreams = 3;
constexpr double kTargetSecondsAt66 = 5000.0;  // Figure 1's mid-curve scale

// DL785-class platform. The measured idle draw of a fully populated DL785
// chassis (fans, VRMs, controllers) is on the order of a kilowatt; we fold
// the non-CPU/non-DRAM share into the chassis base.
std::unique_ptr<power::HardwarePlatform> MakeFig1Platform() {
  power::CpuSpec cpu;
  cpu.sockets = 8;
  cpu.cores_per_socket = 4;
  cpu.pstates = {{"P0", 2.3, 16.0}, {"P1", 1.9, 11.0}, {"P2", 1.4, 7.5}};
  cpu.socket_idle_watts = 10.0;
  cpu.socket_sleep_watts = 2.0;
  cpu.instructions_per_cycle = 1.2;

  power::DramSpec dram;
  dram.capacity_bytes = 64.0 * 1024 * 1024 * 1024;
  dram.background_watts_per_gib = 1.2;  // FB-DIMM era memory

  power::ChassisSpec chassis;
  chassis.base_watts = 1150.0;
  chassis.tray_watts = 45.0;  // MSA70 shelf electronics
  chassis.disks_per_tray = 16;

  power::FacilitySpec fac;
  fac.psu_efficiency = 0.85;
  fac.cooling_watts_per_watt = 0.5;

  return std::make_unique<power::HardwarePlatform>(cpu, dram, chassis, fac);
}

power::HddSpec Scsi15k(double bw_bytes_per_s) {
  power::HddSpec spec;  // 73 GB 15K SCSI class
  spec.sustained_bw_bytes_per_s = bw_bytes_per_s;
  spec.active_watts = 17.0;
  spec.idle_watts = 12.0;
  spec.standby_watts = 2.5;
  return spec;
}

storage::ArraySpec Fig1ArraySpec() {
  storage::ArraySpec spec;
  spec.level = storage::RaidLevel::kRaid5;
  // Stripe skew calibrated so t(66)/t(204) matches the paper's ~1.8x.
  spec.stripe_skew_alpha = 0.011;
  spec.controller_bw_bytes_per_s = 1e15;  // skew is the binding constraint
  spec.per_request_overhead_s = 0.0;
  return spec;
}

double SkewFactor(int n) { return 1.0 + Fig1ArraySpec().stripe_skew_alpha * (n - 1); }

struct Fig1Point {
  int disks;
  tpch::ThroughputResult result;
};

}  // namespace

int Main() {
  bench::Banner(
      "Figure 1: TPC-H throughput test — time and energy efficiency vs "
      "number of disks",
      "DL785-class platform, RAID-5 over 15K SCSI drives; paper points "
      "{36, 66, 108, 204}; EE peaks at 66 disks");

  tpch::TpchConfig config;
  config.scale_factor = 2.0;  // 30k orders / ~120k lineitems, volumetric
  const auto order_cols = tpch::GenerateOrders(config);
  const auto line_cols = tpch::GenerateLineitem(config);

  // --- Calibration probe: measure the mix's I/O volume and CPU demand on
  // an unconstrained device, then derive per-disk bandwidth and CPU scale.
  uint64_t probe_bytes = 0;
  double probe_cpu_core_s = 0.0;
  {
    auto platform = MakeFig1Platform();
    std::vector<std::unique_ptr<storage::StorageDevice>> members;
    for (int i = 0; i < 66; ++i) {
      members.push_back(std::make_unique<storage::HddDevice>(
          "probe" + std::to_string(i), Scsi15k(1e12), platform->meter()));
    }
    auto array_or = storage::DiskArray::Create("probe-array", Fig1ArraySpec(),
                                               std::move(members));
    if (!array_or.ok()) return 1;
    storage::DiskArray& array = **array_or;
    storage::TableStorage orders(1, tpch::OrdersSchema(),
                                 storage::TableLayout::kColumn, &array);
    storage::TableStorage lineitem(2, tpch::LineitemSchema(),
                                   storage::TableLayout::kColumn, &array);
    if (!orders.Append(order_cols).ok()) return 1;
    if (!lineitem.Append(line_cols).ok()) return 1;
    auto probe = tpch::RunThroughputTest(platform.get(), &orders, &lineitem,
                                         kStreams, exec::ExecOptions{});
    if (!probe.ok()) return 1;
    probe_bytes = probe->io_bytes;
    probe_cpu_core_s = probe->cpu_core_seconds;
  }

  // Per-disk bandwidth so the 66-disk I/O time hits the paper's magnitude:
  //   t66 = V * skew(66) / (66 * bw)  =>  bw = V * skew(66) / (66 * t66).
  const double bw = static_cast<double>(probe_bytes) * SkewFactor(66) /
                    (66.0 * kTargetSecondsAt66);
  // CPU instruction scale so the CPU path binds slightly below the 204-disk
  // I/O time (the paper's system stays disk-limited through 204 disks).
  const double t204_io = static_cast<double>(probe_bytes) * SkewFactor(204) /
                         (204.0 * bw);
  exec::ExecOptions exec_options;
  exec_options.dop = 32;
  exec_options.costs.decode_scale =
      0.85 * t204_io * 32.0 / probe_cpu_core_s;

  std::printf("calibration: mix volume %.1f MB, per-disk bw %.1f B/s "
              "(an 80 MB/s 15K drive scaled by our volume / 300 GB), "
              "cpu scale %.2g\n\n",
              probe_bytes / 1e6, bw, exec_options.costs.decode_scale);

  // --- Sweep.
  std::vector<Fig1Point> points;
  auto runner = [&](int disks) {
    auto platform = MakeFig1Platform();
    platform->SetActiveTraysAt(
        0.0, (disks + platform->chassis().disks_per_tray - 1) /
                 platform->chassis().disks_per_tray);
    std::vector<std::unique_ptr<storage::StorageDevice>> members;
    for (int i = 0; i < disks; ++i) {
      members.push_back(std::make_unique<storage::HddDevice>(
          "hdd" + std::to_string(i), Scsi15k(bw), platform->meter()));
    }
    auto array_or =
        storage::DiskArray::Create("array", Fig1ArraySpec(), std::move(members));
    if (!array_or.ok()) std::exit(1);
    storage::DiskArray& array = **array_or;
    storage::TableStorage orders(1, tpch::OrdersSchema(),
                                 storage::TableLayout::kColumn, &array);
    storage::TableStorage lineitem(2, tpch::LineitemSchema(),
                                   storage::TableLayout::kColumn, &array);
    if (!orders.Append(order_cols).ok() ||
        !lineitem.Append(line_cols).ok()) {
      std::exit(1);
    }
    auto result = tpch::RunThroughputTest(platform.get(), &orders, &lineitem,
                                          kStreams, exec_options);
    if (!result.ok()) std::exit(1);
    points.push_back({disks, *result});
    advisor::SweepPoint p;
    p.config = disks;
    p.seconds = result->elapsed_seconds;
    p.joules = result->joules;
    p.work_units = result->queries_completed;
    return p;
  };
  const advisor::SweepAnalysis analysis =
      advisor::AnalyzeSweep(kDiskCounts, runner);

  bench::Table table({"disks", "time (s)", "avg IT watts", "energy (MJ)",
                      "EE (queries/MJ)", "rel EE"});
  const double ee204 = analysis.points.back().EnergyEfficiency();
  for (const advisor::SweepPoint& p : analysis.points) {
    table.AddRow({std::to_string(p.config), bench::Fmt("%.0f", p.seconds),
                  bench::Fmt("%.0f", p.AvgWatts()),
                  bench::Fmt("%.1f", p.joules / 1e6),
                  bench::Fmt("%.2f", p.EnergyEfficiency() * 1e6),
                  bench::Fmt("%.3f", p.EnergyEfficiency() / ee204)});
  }
  table.Print();

  const int ee_peak = analysis.BestEfficiency().config;
  const double ee_gain = analysis.EfficiencyGainVsPeakPerf() * 100.0;
  const double perf_drop = analysis.PerformanceDropAtPeakEfficiency() * 100.0;
  std::printf("energy-efficiency peak: %d disks (paper: 66)\n", ee_peak);
  std::printf("EE gain at peak vs %d disks: +%.1f%% (paper: +14%%)\n",
              analysis.BestPerformance().config, ee_gain);
  std::printf("performance drop at EE peak: -%.1f%% (paper: -45%%)\n\n",
              perf_drop);

  const bool shape_holds =
      ee_peak == 66 && ee_gain > 5.0 && perf_drop > 25.0 && perf_drop < 60.0;
  std::printf("shape check (interior EE peak at 66, EE gain, perf drop): "
              "%s\n", shape_holds ? "PASS" : "FAIL");
  return shape_holds ? 0 : 1;
}

}  // namespace ecodb

int main() { return ecodb::Main(); }

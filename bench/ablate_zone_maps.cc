// Ablation A11 (Section 5.1): zone-map scan skipping — I/O never performed
// is energy never spent.
//
// "Techniques that reduce disk bandwidth requirements ... will need to be
// re-evaluated for their ability to reduce overall energy use."
//
// The harness runs date-range scans of decreasing selectivity over a
// clustered date column, with and without zone-map pruning, and reports
// bytes moved and energy. A control predicate on an unclustered column
// shows the technique's limit: zone maps only help when data layout and
// predicate align.

#include <memory>

#include "bench_util.h"
#include "exec/filter_project.h"
#include "exec/scan.h"
#include "power/platform.h"
#include "storage/ssd.h"
#include "storage/table_storage.h"
#include "util/random.h"

namespace ecodb {
namespace {

using catalog::Column;
using catalog::DataType;
using catalog::Schema;
using exec::Col;
using exec::Lit;
using exec::LitDate;

constexpr int kRows = 500000;
constexpr int kRowsPerDay = 500;  // clustered: 1000 days

struct Outcome {
  double joules = 0;
  uint64_t bytes = 0;
  size_t rows = 0;
};

Outcome RunScan(power::HardwarePlatform* platform,
                const storage::TableStorage& table, exec::ExprPtr filter,
                bool prune) {
  exec::ExecContext ctx(platform, exec::ExecOptions{});
  exec::FilterOp plan(
      std::make_unique<exec::TableScanOp>(&table, std::vector<std::string>{},
                                          prune ? filter : nullptr),
      filter);
  auto result = exec::CollectAll(&plan, &ctx);
  if (!result.ok()) std::exit(1);
  const exec::QueryStats stats = ctx.Finish();
  return Outcome{stats.Joules(), stats.io_bytes, result->TotalRows()};
}

}  // namespace

int Main() {
  bench::Banner(
      "Ablation A11: zone-map scan skipping vs predicate selectivity",
      "500k rows, date-clustered (500 rows/day over 1000 days), 1000-row "
      "zone blocks; SSD at 50 MB/s");

  auto platform = power::MakeProportionalPlatform();
  power::SsdSpec ssd_spec;
  ssd_spec.read_bw_bytes_per_s = 50e6;
  storage::SsdDevice ssd("ssd", ssd_spec, platform->meter());

  Schema schema({Column{"day", DataType::kDate, 8},
                 Column{"noise", DataType::kInt64, 8},
                 Column{"amount", DataType::kDouble, 8}});
  storage::TableStorage table(1, schema, storage::TableLayout::kColumn,
                              &ssd);
  std::vector<storage::ColumnData> cols(3);
  cols[0].type = DataType::kDate;
  cols[1].type = DataType::kInt64;
  cols[2].type = DataType::kDouble;
  Rng rng(11);
  for (int i = 0; i < kRows; ++i) {
    cols[0].i64.push_back(i / kRowsPerDay);
    cols[1].i64.push_back(rng.Uniform(0, kRows));
    cols[2].f64.push_back(i * 0.01);
  }
  if (!table.Append(cols).ok()) return 1;
  if (!table.BuildZoneMaps(1000).ok()) return 1;

  bench::Table out({"predicate", "selectivity", "bytes full", "bytes pruned",
                    "J full", "J pruned", "energy saved"});
  bool monotone = true;
  double prev_saving = 1.1;
  for (int days : {10, 50, 200, 500, 1000}) {
    exec::ExprPtr f = Col("day") < LitDate(days);
    const Outcome full = RunScan(platform.get(), table, f, false);
    const Outcome pruned = RunScan(platform.get(), table, f, true);
    if (pruned.rows != full.rows) {
      std::printf("FAIL: pruning changed the answer\n");
      return 1;
    }
    const double saving = 1.0 - pruned.joules / full.joules;
    out.AddRow({"day < " + std::to_string(days),
                bench::Fmt("%.2f", days / 1000.0),
                bench::Fmt("%.1f MB", full.bytes / 1e6),
                bench::Fmt("%.1f MB", pruned.bytes / 1e6),
                bench::Fmt("%.3f", full.joules),
                bench::Fmt("%.3f", pruned.joules),
                bench::Fmt("%.0f%%", saving * 100.0)});
    if (saving > prev_saving + 0.02) monotone = false;
    prev_saving = saving;
  }

  // Control: same selectivity on the unclustered column prunes nothing.
  exec::ExprPtr control = Col("noise") < Lit(int64_t{kRows / 100});
  const Outcome cfull = RunScan(platform.get(), table, control, false);
  const Outcome cpruned = RunScan(platform.get(), table, control, true);
  out.AddRow({"noise < 1% (unclustered)", "0.01",
              bench::Fmt("%.1f MB", cfull.bytes / 1e6),
              bench::Fmt("%.1f MB", cpruned.bytes / 1e6),
              bench::Fmt("%.3f", cfull.joules),
              bench::Fmt("%.3f", cpruned.joules), "~0%"});
  out.Print();

  const bool shape = monotone && prev_saving < 0.05 &&
                     cpruned.bytes >= cfull.bytes * 95 / 100;
  std::printf("shape check (savings track clustering+selectivity; "
              "unclustered control saves nothing): %s\n",
              shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}

}  // namespace ecodb

int main() { return ecodb::Main(); }

// Ablation A12 (Section 5.1): access-path selection under the energy lens —
// B+tree index scan vs full sequential scan as selectivity grows.
//
// "Current query processing algorithms are based on fundamental assumptions
// regarding ... the nature and number of accesses they make to both main
// memory and secondary storage. Optimizing for energy use will ... change
// the way the query optimizer estimates costs and chooses a query plan."
//
// On a spinning disk, random index I/O costs both time and seek energy; the
// harness sweeps range selectivity and locates the crossover where the
// sequential scan becomes the more energy-efficient access path.

#include <functional>
#include <memory>

#include "bench_util.h"
#include "exec/filter_project.h"
#include "exec/index_scan.h"
#include "exec/scan.h"
#include "power/energy_meter.h"
#include "power/platform.h"
#include "storage/btree.h"
#include "storage/hdd.h"
#include "storage/table_storage.h"
#include "util/random.h"

namespace ecodb {
namespace {

using catalog::Column;
using catalog::DataType;
using catalog::Schema;
using exec::Col;
using exec::Lit;

constexpr int kRows = 400000;

struct Outcome {
  double joules = 0;
  double seconds = 0;
  size_t rows = 0;
};

Outcome Measure(power::HardwarePlatform* platform,
                const std::function<exec::OperatorPtr()>& make_plan) {
  exec::ExecContext ctx(platform, exec::ExecOptions{});
  exec::OperatorPtr plan = make_plan();
  auto result = exec::CollectAll(plan.get(), &ctx);
  if (!result.ok()) std::exit(1);
  const exec::QueryStats stats = ctx.Finish();
  return Outcome{stats.Joules(), stats.elapsed_seconds, result->TotalRows()};
}

}  // namespace

int Main() {
  bench::Banner(
      "Ablation A12: index scan vs sequential scan energy crossover",
      "400k-row table on a 15K disk, B+tree on the key; range predicate "
      "selectivity sweep");

  auto platform = power::MakeProportionalPlatform();
  // Volumetric scaling: stand-in for a multi-GB table on an 80 MB/s drive;
  // the 9.6 MB table gets a proportionally slower device so the full scan
  // costs what it would at production scale. Seek times stay real, which
  // is exactly what makes random index I/O expensive.
  power::HddSpec hdd_spec;
  hdd_spec.sustained_bw_bytes_per_s = 2e6;
  storage::HddDevice hdd("hdd", hdd_spec, platform->meter());

  // Unclustered heap: key i lives at a random row position, so index
  // fetches hit scattered pages.
  Rng rng(13);
  std::vector<uint64_t> position_of_key(kRows);
  for (int i = 0; i < kRows; ++i) {
    position_of_key[i] = static_cast<uint64_t>(i);
  }
  rng.Shuffle(&position_of_key);
  std::vector<int64_t> key_at_row(kRows);
  for (int i = 0; i < kRows; ++i) {
    key_at_row[position_of_key[i]] = i;
  }

  Schema schema({Column{"id", DataType::kInt64, 8},
                 Column{"a", DataType::kInt64, 8},
                 Column{"b", DataType::kDouble, 8}});
  storage::TableStorage table(1, schema, storage::TableLayout::kRow, &hdd);
  std::vector<storage::ColumnData> cols(3);
  cols[0].type = DataType::kInt64;
  cols[1].type = DataType::kInt64;
  cols[2].type = DataType::kDouble;
  for (int r = 0; r < kRows; ++r) {
    cols[0].i64.push_back(key_at_row[r]);
    cols[1].i64.push_back(rng.Uniform(0, 1000));
    cols[2].f64.push_back(r * 0.1);
  }
  if (!table.Append(cols).ok()) return 1;

  storage::BTreeIndex index(128);
  for (int i = 0; i < kRows; ++i) {
    index.Insert(i, position_of_key[i]);
  }

  bench::Table out({"selectivity", "rows", "index J", "scan J", "winner"});
  bool low_sel_index_wins = false;
  bool high_sel_scan_wins = false;
  for (double sel : {0.0001, 0.001, 0.01, 0.05, 0.2, 0.5}) {
    const int64_t hi = static_cast<int64_t>(sel * kRows) - 1;
    const Outcome via_index = Measure(platform.get(), [&] {
      return std::make_unique<exec::IndexScanOp>(
          &table, &index, std::vector<std::string>{}, 0, hi);
    });
    const Outcome via_scan = Measure(platform.get(), [&] {
      return std::make_unique<exec::FilterOp>(
          std::make_unique<exec::TableScanOp>(&table),
          exec::Between(Col("id"), Lit(int64_t{0}), Lit(hi)));
    });
    if (via_index.rows != via_scan.rows) {
      std::printf("FAIL: access paths disagree on the result\n");
      return 1;
    }
    const bool index_wins = via_index.joules < via_scan.joules;
    out.AddRow({bench::Fmt("%.4f", sel),
                bench::Fmt("%.0f", static_cast<double>(via_index.rows)),
                bench::Fmt("%.2f", via_index.joules),
                bench::Fmt("%.2f", via_scan.joules),
                index_wins ? "index" : "scan"});
    if (sel <= 0.001 && index_wins) low_sel_index_wins = true;
    if (sel >= 0.2 && !index_wins) high_sel_scan_wins = true;
  }
  out.Print();

  const bool shape = low_sel_index_wins && high_sel_scan_wins;
  std::printf("shape check (index wins at low selectivity, sequential scan "
              "wins at high): %s\n", shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}

}  // namespace ecodb

int main() { return ecodb::Main(); }

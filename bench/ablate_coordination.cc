// Ablation A8 (Section 5.3, after [RRT+08]): uncoordinated power
// controllers work at cross purposes; a coordination handoff fixes it.
//
// "Consider a hardware controller that changes the voltage and frequency in
// parallel with the query optimizer which is making decisions based on
// current runtime power states. If these two do not communicate and
// coordinate their choices, they may end up working cross purposes."
//
// The workload alternates I/O-bound phases (CPU looks idle) with CPU
// bursts the optimizer costed at P0. Uncoordinated, the ondemand governor
// downshifts during every I/O phase, so each burst begins at the slowest
// state and crawls until the governor reacts. Coordinated, the database
// pins its costed P-state for the query's duration.

#include <vector>

#include "bench_util.h"
#include "power/cpu_power.h"
#include "power/governor.h"

namespace ecodb {
namespace {

constexpr double kSliceSeconds = 0.1;   // governor sampling interval
constexpr int kPhases = 20;             // I/O + CPU phase pairs
constexpr double kIoPhaseSeconds = 0.6;
constexpr double kBurstInstructions = 3.6e9;  // ~0.3 s at P0 on 4 cores
constexpr double kBackgroundWatts = 60.0;    // platform floor

power::CpuSpec BenchCpu() {
  power::CpuSpec spec;
  spec.sockets = 1;
  spec.cores_per_socket = 4;
  spec.pstates = {{"P0", 3.0, 15.0}, {"P1", 2.0, 9.0}, {"P2", 1.0, 4.0}};
  spec.socket_idle_watts = 8.0;
  return spec;
}

struct Outcome {
  double elapsed_s = 0;
  double joules = 0;
  int transitions = 0;
};

Outcome RunWorkload(bool coordinated) {
  const power::CpuPowerModel cpu(BenchCpu());
  power::DvfsGovernor governor(&cpu);

  double t = 0.0;
  double joules = 0.0;
  for (int phase = 0; phase < kPhases; ++phase) {
    // I/O-bound phase: CPU nearly idle; governor samples low utilization.
    for (double io = 0.0; io < kIoPhaseSeconds; io += kSliceSeconds) {
      governor.Observe(0.03);
      joules += (cpu.IdleWatts() + kBackgroundWatts) * kSliceSeconds;
      t += kSliceSeconds;
    }
    // The optimizer costed the burst at P0; with coordination it pins.
    if (coordinated) governor.Pin(0);
    double remaining = kBurstInstructions;
    while (remaining > 0) {
      const int p = governor.pstate();
      const double ips = cpu.spec().pstates[p].frequency_ghz * 1e9 *
                         cpu.spec().instructions_per_cycle *
                         cpu.total_cores();
      const double done = std::min(remaining, ips * kSliceSeconds);
      const double slice = done / ips;
      joules += (cpu.PeakWatts(p) + kBackgroundWatts) * slice;
      t += slice;
      remaining -= done;
      governor.Observe(1.0);  // burst saturates the CPU
    }
    if (coordinated) governor.Unpin();
  }
  return Outcome{t, joules, governor.transitions()};
}

}  // namespace

int Main() {
  bench::Banner(
      "Ablation A8: database/governor coordination ([RRT+08] cross purposes)",
      "20 alternating I/O (0.6 s) + CPU-burst phases; ondemand governor vs "
      "database-pinned P-state");

  const Outcome uncoordinated = RunWorkload(false);
  const Outcome coordinated = RunWorkload(true);

  bench::Table table({"policy", "elapsed (s)", "energy (kJ)",
                      "p-state transitions", "J per phase"});
  table.AddRow({"uncoordinated (ondemand)",
                bench::Fmt("%.1f", uncoordinated.elapsed_s),
                bench::Fmt("%.2f", uncoordinated.joules / 1e3),
                bench::Fmt("%.0f", uncoordinated.transitions),
                bench::Fmt("%.1f", uncoordinated.joules / kPhases)});
  table.AddRow({"coordinated (DB pins P0)",
                bench::Fmt("%.1f", coordinated.elapsed_s),
                bench::Fmt("%.2f", coordinated.joules / 1e3),
                bench::Fmt("%.0f", coordinated.transitions),
                bench::Fmt("%.1f", coordinated.joules / kPhases)});
  table.Print();

  const double slowdown =
      uncoordinated.elapsed_s / coordinated.elapsed_s - 1.0;
  const double energy_delta =
      uncoordinated.joules / coordinated.joules - 1.0;
  std::printf("uncoordinated control runs %.1f%% longer and uses %+.1f%% "
              "energy, with %dx the state transitions\n",
              slowdown * 100.0, energy_delta * 100.0,
              coordinated.transitions
                  ? uncoordinated.transitions / coordinated.transitions
                  : uncoordinated.transitions);
  const bool shape = uncoordinated.elapsed_s > coordinated.elapsed_s * 1.05 &&
                     uncoordinated.joules > coordinated.joules;
  std::printf("shape check (coordination is faster AND no worse on energy): "
              "%s\n", shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}

}  // namespace ecodb

int main() { return ecodb::Main(); }

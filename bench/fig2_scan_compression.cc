// Figure 2 reproduction: relational scan on uncompressed vs compressed data.
//
// Paper setup (Section 3.2, after [HLA+06]): a column scan of TPC-H ORDERS
// projecting 5 of its 7 attributes, one CPU (90 W, idle treated as 0 W) and
// three flash SSDs (5 W aggregate). Measured there:
//
//     uncompressed: 10.0 s total, 3.2 s CPU  -> 90*3.2 + 5*10.0 = 338 J
//     compressed:    5.5 s total, 5.1 s CPU  -> 90*5.1 + 5*5.5  = 487 J
//
// The compressed table is ~2x faster but uses ~44% MORE energy: trading CPU
// cycles for disk bandwidth is a performance win and an energy loss when the
// CPU's power dwarfs the drives'.
//
// Our reproduction really generates ORDERS, really compresses the projected
// columns (dictionary/FOR/delta), really decodes them during the scan, and
// charges device time/energy through the meter. Two calibrations tie the
// simulation to the paper's measured component rates (documented in
// EXPERIMENTS.md): SSD bandwidth is set so the uncompressed transfer takes
// 10 s at our (volumetrically scaled-down) data volume, and per-value CPU
// instruction scales are set from the paper's 3.2 s / 5.1 s CPU times.

#include <memory>

#include "bench_util.h"
#include "exec/exec_context.h"
#include "exec/scan.h"
#include "power/platform.h"
#include "storage/disk_array.h"
#include "storage/ssd.h"
#include "storage/table_storage.h"
#include "tpch/generator.h"

namespace ecodb {
namespace {

constexpr double kPaperUncompressedTotal = 10.0;
constexpr double kPaperUncompressedCpu = 3.2;
constexpr double kPaperCompressedTotal = 5.5;
constexpr double kPaperCompressedCpu = 5.1;
constexpr double kPaperUncompressedJoules = 338.0;
constexpr double kPaperCompressedJoules = 487.0;

// The five projected attributes (5 of the 7-attribute ORDERS of [HLA+06]).
const std::vector<std::string> kProjection = {
    "o_orderkey", "o_custkey", "o_totalprice", "o_orderdate",
    "o_orderpriority"};

struct RunResult {
  double total_s = 0;
  double cpu_s = 0;
  double io_s = 0;
  double joules = 0;
};

RunResult RunScan(const storage::TableStorage& table,
                  power::HardwarePlatform* platform, double target_cpu_s) {
  std::vector<int> idx;
  for (const std::string& name : kProjection) {
    idx.push_back(table.schema().FindColumn(name));
  }
  exec::ExecOptions options;
  // Calibrate per-value instruction cost so the scan's CPU time matches the
  // paper's measured rate for this path ([HLA+06] scanner).
  const double instr = table.DecodeInstructions(idx);
  const double ips = platform->cpu().spec().pstates[0].frequency_ghz * 1e9 *
                     platform->cpu().spec().instructions_per_cycle;
  options.costs.decode_scale = target_cpu_s * ips / instr;

  exec::ExecContext ctx(platform, options);
  exec::TableScanOp scan(&table, kProjection);
  auto result = exec::CollectAll(&scan, &ctx);
  if (!result.ok()) {
    std::fprintf(stderr, "scan failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  const exec::QueryStats stats = ctx.Finish();
  return RunResult{stats.elapsed_seconds, stats.cpu_seconds, stats.io_seconds,
                   stats.Joules()};
}

}  // namespace

int Main() {
  bench::Banner(
      "Figure 2: relational scan on uncompressed vs compressed data",
      "1 CPU (90 W active / 0 W idle) + 3 flash SSDs (5 W aggregate); "
      "ORDERS, 5/7 attributes projected");

  // --- Data: real generated ORDERS, uncompressed and compressed variants.
  tpch::TpchConfig config;
  config.scale_factor = 20.0;  // 300k orders, volumetrically scaled
  auto columns = tpch::GenerateOrders(config);

  auto make_platform = [] { return power::MakeFlashScanPlatform(); };

  // Probe pass: measure the projected uncompressed footprint so SSD
  // bandwidth can be calibrated to the paper's 10 s transfer.
  auto probe_platform = make_platform();
  storage::TableStorage probe(1, tpch::OrdersSchema(),
                              storage::TableLayout::kColumn, nullptr);
  if (!probe.Append(columns).ok()) return 1;
  std::vector<int> idx;
  for (const std::string& name : kProjection) {
    idx.push_back(probe.schema().FindColumn(name));
  }
  const double uncompressed_bytes =
      static_cast<double>(probe.ScanBytes(idx));

  // --- Platform: 3 SSDs, 5 W aggregate constant draw, striped.
  auto platform = make_platform();
  power::SsdSpec ssd_spec;
  ssd_spec.active_watts = 5.0 / 3.0;
  ssd_spec.idle_watts = 5.0 / 3.0;  // drives hold ~5 W total during the run
  ssd_spec.read_latency_s = 0.0;
  ssd_spec.read_bw_bytes_per_s =
      uncompressed_bytes / 3.0 / kPaperUncompressedTotal;

  std::vector<std::unique_ptr<storage::StorageDevice>> members;
  for (int i = 0; i < 3; ++i) {
    members.push_back(std::make_unique<storage::SsdDevice>(
        "ssd" + std::to_string(i), ssd_spec, platform->meter()));
  }
  storage::ArraySpec array_spec;
  array_spec.level = storage::RaidLevel::kRaid0;
  array_spec.stripe_skew_alpha = 0.0;
  array_spec.per_request_overhead_s = 0.0;
  array_spec.controller_bw_bytes_per_s = 1e15;
  auto array_or =
      storage::DiskArray::Create("flash-array", array_spec, std::move(members));
  if (!array_or.ok()) return 1;
  storage::DiskArray& array = **array_or;

  storage::TableStorage uncompressed(1, tpch::OrdersSchema(),
                                     storage::TableLayout::kColumn, &array);
  if (!uncompressed.Append(columns).ok()) return 1;

  storage::TableStorage compressed(2, tpch::OrdersSchema(),
                                   storage::TableLayout::kColumn, &array);
  if (!compressed.Append(columns).ok()) return 1;
  // Real codecs on the projected columns.
  (void)compressed.SetCompression("o_orderkey",
                                  storage::CompressionKind::kDelta);
  (void)compressed.SetCompression("o_custkey",
                                  storage::CompressionKind::kFor);
  (void)compressed.SetCompression("o_orderdate",
                                  storage::CompressionKind::kFor);
  (void)compressed.SetCompression("o_orderpriority",
                                  storage::CompressionKind::kDictionary);

  const double compressed_bytes =
      static_cast<double>(compressed.ScanBytes(idx));
  std::printf("projected footprint: uncompressed %.1f MB, compressed %.1f MB"
              " (real codec ratio %.2f; paper's scanner saw 0.55)\n\n",
              uncompressed_bytes / 1e6, compressed_bytes / 1e6,
              compressed_bytes / uncompressed_bytes);

  // --- Runs.
  const RunResult u =
      RunScan(uncompressed, platform.get(), kPaperUncompressedCpu);
  const RunResult c =
      RunScan(compressed, platform.get(), kPaperCompressedCpu);

  bench::Table table({"configuration", "total s", "cpu s", "energy J",
                      "paper total s", "paper J"});
  table.AddRow({"uncompressed", bench::Fmt("%.2f", u.total_s),
                bench::Fmt("%.2f", u.cpu_s), bench::Fmt("%.1f", u.joules),
                bench::Fmt("%.1f", kPaperUncompressedTotal),
                bench::Fmt("%.0f", kPaperUncompressedJoules)});
  table.AddRow({"compressed", bench::Fmt("%.2f", c.total_s),
                bench::Fmt("%.2f", c.cpu_s), bench::Fmt("%.1f", c.joules),
                bench::Fmt("%.1f", kPaperCompressedTotal),
                bench::Fmt("%.0f", kPaperCompressedJoules)});
  table.Print();

  const double speedup = u.total_s / c.total_s;
  const double energy_ratio = c.joules / u.joules;
  std::printf("compressed is %.2fx faster but uses %.0f%% more energy "
              "(paper: 1.8x faster, 44%% more energy)\n",
              speedup, (energy_ratio - 1.0) * 100.0);
  const bool shape_holds = c.total_s < u.total_s && c.joules > u.joules;
  std::printf("shape check (faster AND more energy): %s\n",
              shape_holds ? "PASS" : "FAIL");
  return shape_holds ? 0 : 1;
}

}  // namespace ecodb

int main() { return ecodb::Main(); }

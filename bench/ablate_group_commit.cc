// Ablation A5 (Section 5.2): the group-commit batching factor as an energy
// knob.
//
// "It may make sense to increase the batching factor (and increase response
// time) to avoid frequent commits on stable storage."
//
// The harness commits the same 2000-transaction insert stream under
// increasing group-commit sizes and reports log-device energy, flush count,
// and the commit-latency bound implied by the group timeout.

#include "bench_util.h"
#include "power/energy_meter.h"
#include "sim/clock.h"
#include "storage/ssd.h"
#include "txn/wal.h"

namespace ecodb {
namespace {

constexpr int kTxns = 2000;
constexpr int kPayloadBytes = 120;

struct RunOutcome {
  double device_joules = 0;
  uint64_t flushes = 0;
  double bound_latency_s = 0;
};

RunOutcome RunStream(int group_size) {
  sim::SimClock clock;
  power::EnergyMeter meter(&clock);
  power::SsdSpec log_spec;
  log_spec.write_latency_s = 200e-6;  // per-flush overhead dominates small IO
  storage::SsdDevice device("log-ssd", log_spec, &meter);

  txn::WalConfig config;
  config.group_commit_size = group_size;
  config.group_commit_timeout_s = 0.01;
  txn::WalManager wal(config, &clock, &device);

  double worst_latency = 0.0;
  for (txn::TxnId t = 1; t <= kTxns; ++t) {
    txn::LogRecord rec;
    rec.txn_id = t;
    rec.type = txn::LogRecordType::kInsert;
    rec.page = {1, static_cast<uint32_t>(t / 32)};
    rec.after.assign(kPayloadBytes, static_cast<uint8_t>(t));
    wal.Append(std::move(rec));
    const txn::CommitResult r = wal.Commit(t).value();
    worst_latency = std::max(worst_latency, r.durable_time - clock.now());
    clock.AdvanceTo(std::max(clock.now(), device.busy_until()));
  }
  (void)wal.Flush().value();
  clock.AdvanceTo(device.busy_until());

  RunOutcome out;
  // Attribute only the device's active (busy) energy to the log stream —
  // the idle floor belongs to the shared drive, not to this workload.
  out.device_joules = meter.ChannelBusySeconds(device.channel()) *
                      power::SsdSpec{}.active_watts;
  out.flushes = wal.stats().flushes;
  out.bound_latency_s = worst_latency;
  return out;
}

}  // namespace

int Main() {
  bench::Banner(
      "Ablation A5: group-commit batching factor vs log energy",
      "2000 OLTP-style commits of 120 B records; per-flush device overhead "
      "200 us; sweep of the batching factor K");

  bench::Table table({"K (txns/flush)", "flushes", "log energy (J)",
                      "commit latency bound (ms)"});
  double joules_k1 = 0, joules_kmax = 0;
  const std::vector<int> ks = {1, 2, 4, 8, 16, 32, 64};
  for (int k : ks) {
    const RunOutcome out = RunStream(k);
    table.AddRow({std::to_string(k), bench::Fmt("%.0f", out.flushes),
                  bench::Fmt("%.3f", out.device_joules),
                  bench::Fmt("%.2f", out.bound_latency_s * 1e3)});
    if (k == 1) joules_k1 = out.device_joules;
    if (k == ks.back()) joules_kmax = out.device_joules;
  }
  table.Print();

  std::printf("K=%d uses %.1f%% of the K=1 log energy\n", ks.back(),
              joules_kmax / joules_k1 * 100.0);
  const bool shape = joules_kmax < joules_k1 * 0.5;
  std::printf("shape check (larger batching factor cuts log energy): %s\n",
              shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}

}  // namespace ecodb

int main() { return ecodb::Main(); }

// Ablation A4 (Section 4.2): consolidating data in space — migrating a
// partition off an under-used disk so the disk can power down — pays only
// when the idle horizon exceeds the migration break-even.
//
// "The energy savings from consolidation should exceed the energy overhead
// of such movements."
//
// The harness compares, over a sweep of idle horizons, the measured energy
// of (a) leaving a cold partition on its own spinning disk and (b) migrating
// it to a shared SSD and spinning the disk down, and checks that the
// Evaluate() decision matches the measured winner.

#include <memory>

#include "bench_util.h"
#include "power/energy_meter.h"
#include "sched/consolidation.h"
#include "sim/clock.h"
#include "storage/hdd.h"
#include "storage/ssd.h"
#include "storage/table_storage.h"

namespace ecodb {
namespace {

constexpr uint64_t kRows = 2000000;  // ~16 MB partition (volumetric)

// Volumetric scaling: the interesting cold partitions are terabyte-class
// (hours of streaming on a 15K drive). We shrink the partition to 16 MB and
// the drive bandwidth by the same factor, so the migration takes the same
// simulated ~100 s it would per ~8 GB of real data.
power::HddSpec ColdDiskSpec() {
  power::HddSpec spec;
  spec.sustained_bw_bytes_per_s = 160e3;
  return spec;
}

catalog::Schema PartitionSchema() {
  return catalog::Schema(
      {catalog::Column{"v", catalog::DataType::kInt64, 8}});
}

std::vector<storage::ColumnData> PartitionRows() {
  std::vector<storage::ColumnData> cols(1);
  cols[0].type = catalog::DataType::kInt64;
  cols[0].i64.reserve(kRows);
  for (uint64_t i = 0; i < kRows; ++i) {
    cols[0].i64.push_back(static_cast<int64_t>(i * 7));
  }
  return cols;
}

double MeasureStay(double horizon) {
  sim::SimClock clock;
  power::EnergyMeter meter(&clock);
  storage::HddDevice hdd("cold-disk", ColdDiskSpec(), &meter);
  clock.AdvanceTo(horizon);
  return meter.ChannelJoules(hdd.channel());
}

double MeasureMigrate(double horizon, const std::vector<storage::ColumnData>&
                                          rows) {
  sim::SimClock clock;
  power::EnergyMeter meter(&clock);
  storage::HddDevice hdd("cold-disk", ColdDiskSpec(), &meter);
  storage::SsdDevice ssd("shared-ssd", power::SsdSpec{}, &meter);
  storage::TableStorage table(1, PartitionSchema(),
                              storage::TableLayout::kColumn, &hdd);
  if (!table.Append(rows).ok()) std::exit(1);
  (void)sched::ConsolidationManager::Migrate(&table, &ssd, &clock).value();
  clock.AdvanceTo(horizon);
  // Charge the source disk's energy (the device being consolidated away)
  // plus the *incremental* SSD energy of hosting the moved bytes — the SSD
  // is shared, so its idle floor is not attributable to this partition.
  return meter.ChannelJoules(hdd.channel()) +
         meter.ChannelBusySeconds(ssd.channel()) * power::SsdSpec{}.active_watts;
}

}  // namespace

int Main() {
  bench::Banner(
      "Ablation A4: partition migration vs staying put",
      "16 MB cold partition on a dedicated 15K disk vs migrate-to-shared-SSD"
      " + spin down; sweep of the idle horizon");

  const auto rows = PartitionRows();
  sim::SimClock probe_clock;
  power::EnergyMeter probe_meter(&probe_clock);
  storage::HddDevice probe_hdd("p", ColdDiskSpec(), &probe_meter);
  storage::SsdDevice probe_ssd("q", power::SsdSpec{}, &probe_meter);
  const uint64_t bytes = kRows * 8;

  bench::Table table({"horizon (s)", "stay (kJ)", "migrate (kJ)",
                      "measured winner", "Evaluate() says"});
  bool decisions_match = true;
  bool short_stays = false, long_migrates = false;
  for (double horizon : {10.0, 60.0, 300.0, 1800.0, 7200.0, 86400.0}) {
    const double stay = MeasureStay(horizon);
    const double migrate = MeasureMigrate(horizon, rows);
    const auto decision = sched::ConsolidationManager::Evaluate(
        probe_hdd, probe_ssd, bytes, horizon);
    const bool migrate_wins = migrate < stay;
    table.AddRow({bench::Fmt("%.0f", horizon), bench::Fmt("%.2f", stay / 1e3),
                  bench::Fmt("%.2f", migrate / 1e3),
                  migrate_wins ? "migrate" : "stay",
                  decision.migrate ? "migrate" : "stay"});
    if (horizon <= 60.0 && !migrate_wins) short_stays = true;
    if (horizon >= 1800.0 && migrate_wins) long_migrates = true;
    // The analytic decision may be conservative near the break-even point
    // (~200 s here); require agreement away from it.
    if (horizon <= 60.0 || horizon >= 300.0) {
      decisions_match &= (decision.migrate == migrate_wins);
    }
  }
  table.Print();

  const bool shape = short_stays && long_migrates && decisions_match;
  std::printf("shape check (short horizon stays, long horizon migrates, "
              "Evaluate agrees away from break-even): %s\n",
              shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}

}  // namespace ecodb

int main() { return ecodb::Main(); }

// Ablation A3 (Section 4.2): batching requests in time creates idle periods
// long enough to amortize disk spin-down — energy falls, latency rises.
//
// "We expect to see workload management policies that encourage identifiable
// periods of low and high activity — perhaps batching requests at the cost
// of increased latency" + "hardware components will require a certain
// minimum-length idle period to enter in a suspended mode".
//
// The harness replays the same Poisson arrival trace of small disk reads
// under increasing batch windows, with a break-even spin-down policy
// managing the disk, and reports energy vs p95 latency.

#include <memory>

#include "bench_util.h"
#include "power/energy_meter.h"
#include "sched/batching.h"
#include "sched/spin_down.h"
#include "sim/clock.h"
#include "sim/event_queue.h"
#include "storage/hdd.h"
#include "util/random.h"

namespace ecodb {
namespace {

constexpr int kRequests = 200;
constexpr double kMeanInterarrival = 20.0;  // sparse: idle gaps exist
constexpr uint64_t kRequestBytes = 16 << 20;

struct RunOutcome {
  double joules = 0;
  double p95_latency = 0;
  int spin_downs = 0;
};

RunOutcome RunTrace(double window_s) {
  sim::SimClock clock;
  power::EnergyMeter meter(&clock);
  sim::EventQueue events(&clock);
  storage::HddDevice hdd("hdd", power::HddSpec{}, &meter);
  sched::DiskPowerManager power_mgr(&events, &hdd,
                                    sched::SpinDownPolicy::kBreakEven);
  sched::BatchingScheduler scheduler(&events,
                                     sched::BatchingConfig{window_s,
                                                           SIZE_MAX});

  // Identical arrival trace for every window (same seed).
  Rng rng(4242);
  double t = 0.0;
  for (int i = 0; i < kRequests; ++i) {
    t += rng.Exponential(kMeanInterarrival);
    events.ScheduleAt(t, [&scheduler, &hdd, &power_mgr, &clock] {
      scheduler.Submit([&hdd, &power_mgr, &clock] {
        const storage::IoResult r =
            hdd.SubmitRead(clock.now(), kRequestBytes, false).value();
        power_mgr.NotifyAccessEnd(r.completion_time);
        return r.completion_time;
      });
    });
  }
  events.RunAll();
  const double end = clock.now() + 60.0;
  clock.AdvanceTo(end);

  RunOutcome out;
  out.joules = meter.ChannelJoules(hdd.channel());
  out.p95_latency = scheduler.latency().Percentile(0.95);
  out.spin_downs = power_mgr.spin_downs();
  return out;
}

}  // namespace

int Main() {
  bench::Banner(
      "Ablation A3: request batching vs disk energy and latency",
      "200 Poisson arrivals (mean gap 20 s) of 16 MiB reads; break-even "
      "spin-down policy; sweep of the batching window");

  bench::Table table({"batch window (s)", "disk energy (kJ)",
                      "p95 latency (s)", "spin-downs"});
  double joules_nobatch = 0, joules_maxbatch = 0;
  double lat_nobatch = 0, lat_maxbatch = 0;
  const std::vector<double> windows = {0.0, 30.0, 60.0, 120.0, 300.0, 600.0};
  for (double w : windows) {
    const RunOutcome out = RunTrace(w);
    table.AddRow({bench::Fmt("%.0f", w), bench::Fmt("%.1f", out.joules / 1e3),
                  bench::Fmt("%.1f", out.p95_latency),
                  bench::Fmt("%.0f", out.spin_downs)});
    if (w == windows.front()) {
      joules_nobatch = out.joules;
      lat_nobatch = out.p95_latency;
    }
    if (w == windows.back()) {
      joules_maxbatch = out.joules;
      lat_maxbatch = out.p95_latency;
    }
  }
  table.Print();

  std::printf("largest window saves %.1f%% disk energy at %.1fx the p95 "
              "latency\n",
              (1.0 - joules_maxbatch / joules_nobatch) * 100.0,
              lat_maxbatch / std::max(lat_nobatch, 1e-9));
  const bool shape =
      joules_maxbatch < joules_nobatch && lat_maxbatch > lat_nobatch;
  std::printf("shape check (batching trades latency for energy): %s\n",
              shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}

}  // namespace ecodb

int main() { return ecodb::Main(); }

// Microbenchmarks (google-benchmark): real wall-clock throughput of the
// engine's hot paths — scan + filter pipelines, hash join build/probe, and
// aggregation — over in-memory tables.

#include <benchmark/benchmark.h>

#include "exec/aggregate.h"
#include "exec/filter_project.h"
#include "exec/joins.h"
#include "exec/scan.h"
#include "power/platform.h"
#include "storage/ssd.h"
#include "storage/table_storage.h"

namespace ecodb::exec {
namespace {

using catalog::Column;
using catalog::DataType;
using catalog::Schema;

struct Fixture {
  Fixture() : platform(power::MakeProportionalPlatform()) {
    ssd = std::make_unique<storage::SsdDevice>("s", power::SsdSpec{},
                                               platform->meter());
    Schema schema({Column{"k", DataType::kInt64, 8},
                   Column{"v", DataType::kInt64, 8},
                   Column{"x", DataType::kDouble, 8}});
    table = std::make_unique<storage::TableStorage>(
        1, schema, storage::TableLayout::kColumn, ssd.get());
    std::vector<storage::ColumnData> cols(3);
    cols[0].type = DataType::kInt64;
    cols[1].type = DataType::kInt64;
    cols[2].type = DataType::kDouble;
    for (int i = 0; i < 200000; ++i) {
      cols[0].i64.push_back(i % 1000);
      cols[1].i64.push_back(i);
      cols[2].f64.push_back(i * 0.25);
    }
    if (!table->Append(cols).ok()) std::abort();
  }

  std::unique_ptr<power::HardwarePlatform> platform;
  std::unique_ptr<storage::SsdDevice> ssd;
  std::unique_ptr<storage::TableStorage> table;
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

size_t RunToCompletion(Operator* op, power::HardwarePlatform* platform) {
  ExecContext ctx(platform, ExecOptions{});
  auto result = CollectAll(op, &ctx);
  ctx.Finish();
  return result.ok() ? result->TotalRows() : 0;
}

void BM_ScanFilter(benchmark::State& state) {
  Fixture& f = GetFixture();
  size_t rows = 0;
  for (auto _ : state) {
    FilterOp plan(std::make_unique<TableScanOp>(f.table.get()),
                  Col("v") < Lit(int64_t{50000}));
    rows = RunToCompletion(&plan, f.platform.get());
  }
  benchmark::DoNotOptimize(rows);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 200000);
}

void BM_HashJoin(benchmark::State& state) {
  Fixture& f = GetFixture();
  size_t rows = 0;
  for (auto _ : state) {
    HashJoinOp join(
        std::make_unique<TableScanOp>(f.table.get(),
                                      std::vector<std::string>{"k", "v"}),
        std::make_unique<FilterOp>(
            std::make_unique<TableScanOp>(
                f.table.get(), std::vector<std::string>{"k"}),
            Col("k") < Lit(int64_t{10})),
        "k", "k");
    rows = RunToCompletion(&join, f.platform.get());
  }
  benchmark::DoNotOptimize(rows);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 200000);
}

void BM_HashAggregate(benchmark::State& state) {
  Fixture& f = GetFixture();
  size_t rows = 0;
  for (auto _ : state) {
    std::vector<AggregateItem> aggs;
    aggs.push_back({"total", AggFunc::kSum, Col("x")});
    aggs.push_back({"n", AggFunc::kCount, nullptr});
    HashAggregateOp agg(std::make_unique<TableScanOp>(f.table.get()),
                        {"k"}, std::move(aggs));
    rows = RunToCompletion(&agg, f.platform.get());
  }
  benchmark::DoNotOptimize(rows);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 200000);
}

BENCHMARK(BM_ScanFilter)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HashJoin)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HashAggregate)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ecodb::exec

BENCHMARK_MAIN();

// Microbenchmarks (google-benchmark): real wall-clock throughput of the
// engine's hot paths — scan + filter pipelines, hash join build/probe, and
// aggregation — over in-memory tables.
//
// BM_DopSweepAggregate additionally emits one JSON line per (dop, P-state)
// sweep point: real rows/s next to the simulated energy ledger
// (Rows-per-Joule, busy core-seconds), comparing P0 against the CPU's
// most-efficient P-state at each dop.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "exec/aggregate.h"
#include "exec/filter_project.h"
#include "exec/joins.h"
#include "exec/parallel_aggregate.h"
#include "exec/parallel_scan.h"
#include "exec/scan.h"
#include "power/platform.h"
#include "storage/ssd.h"
#include "storage/table_storage.h"

namespace ecodb::exec {
namespace {

using catalog::Column;
using catalog::DataType;
using catalog::Schema;

struct Fixture {
  Fixture() : platform(power::MakeProportionalPlatform()) {
    ssd = std::make_unique<storage::SsdDevice>("s", power::SsdSpec{},
                                               platform->meter());
    Schema schema({Column{"k", DataType::kInt64, 8},
                   Column{"v", DataType::kInt64, 8},
                   Column{"x", DataType::kDouble, 8}});
    table = std::make_unique<storage::TableStorage>(
        1, schema, storage::TableLayout::kColumn, ssd.get());
    std::vector<storage::ColumnData> cols(3);
    cols[0].type = DataType::kInt64;
    cols[1].type = DataType::kInt64;
    cols[2].type = DataType::kDouble;
    for (int i = 0; i < 200000; ++i) {
      cols[0].i64.push_back(i % 1000);
      cols[1].i64.push_back(i);
      cols[2].f64.push_back(i * 0.25);
    }
    if (!table->Append(cols).ok()) std::abort();
  }

  std::unique_ptr<power::HardwarePlatform> platform;
  std::unique_ptr<storage::SsdDevice> ssd;
  std::unique_ptr<storage::TableStorage> table;
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

size_t RunToCompletion(Operator* op, power::HardwarePlatform* platform) {
  ExecContext ctx(platform, ExecOptions{});
  auto result = CollectAll(op, &ctx);
  ctx.Finish();
  return result.ok() ? result->TotalRows() : 0;
}

void BM_ScanFilter(benchmark::State& state) {
  Fixture& f = GetFixture();
  size_t rows = 0;
  for (auto _ : state) {
    FilterOp plan(std::make_unique<TableScanOp>(f.table.get()),
                  Col("v") < Lit(int64_t{50000}));
    rows = RunToCompletion(&plan, f.platform.get());
  }
  benchmark::DoNotOptimize(rows);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 200000);
}

void BM_HashJoin(benchmark::State& state) {
  Fixture& f = GetFixture();
  size_t rows = 0;
  for (auto _ : state) {
    HashJoinOp join(
        std::make_unique<TableScanOp>(f.table.get(),
                                      std::vector<std::string>{"k", "v"}),
        std::make_unique<FilterOp>(
            std::make_unique<TableScanOp>(
                f.table.get(), std::vector<std::string>{"k"}),
            Col("k") < Lit(int64_t{10})),
        "k", "k");
    rows = RunToCompletion(&join, f.platform.get());
  }
  benchmark::DoNotOptimize(rows);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 200000);
}

void BM_HashAggregate(benchmark::State& state) {
  Fixture& f = GetFixture();
  size_t rows = 0;
  for (auto _ : state) {
    std::vector<AggregateItem> aggs;
    aggs.push_back({"total", AggFunc::kSum, Col("x")});
    aggs.push_back({"n", AggFunc::kCount, nullptr});
    HashAggregateOp agg(std::make_unique<TableScanOp>(f.table.get()),
                        {"k"}, std::move(aggs));
    rows = RunToCompletion(&agg, f.platform.get());
  }
  benchmark::DoNotOptimize(rows);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 200000);
}

// Scan + grouped aggregation at a given (dop, P-state): the workload of the
// paper's rows-per-Joule framing, swept across the two energy knobs the
// engine exposes. arg0 = dop, arg1 = 0 for P0 / 1 for MostEfficientPState.
void BM_DopSweepAggregate(benchmark::State& state) {
  Fixture& f = GetFixture();
  const int dop = static_cast<int>(state.range(0));
  const int pstate =
      state.range(1) ? f.platform->cpu().MostEfficientPState() : 0;
  constexpr size_t kRows = 200000;

  QueryStats stats;
  double wall_best = 1e100;
  for (auto _ : state) {
    std::vector<AggregateItem> aggs;
    aggs.push_back({"total", AggFunc::kSum, Col("x")});
    aggs.push_back({"n", AggFunc::kCount, nullptr});
    ParallelHashAggregateOp agg(
        std::make_unique<ParallelTableScanOp>(
            f.table.get(), std::vector<std::string>{"k", "x"}),
        {"k"}, std::move(aggs));
    ExecOptions options;
    options.dop = dop;
    options.pstate = pstate;
    ExecContext ctx(f.platform.get(), options);
    const auto t0 = std::chrono::steady_clock::now();
    auto result = CollectAll(&agg, &ctx);
    const auto t1 = std::chrono::steady_clock::now();
    if (!result.ok()) std::abort();
    stats = ctx.Finish();
    wall_best =
        std::min(wall_best, std::chrono::duration<double>(t1 - t0).count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kRows);
  state.counters["sim_joules"] = stats.Joules();
  state.counters["sim_rows_per_joule"] =
      stats.Joules() > 0 ? static_cast<double>(kRows) / stats.Joules() : 0;

  // One machine-readable line per sweep point (last iteration's ledger;
  // the simulation is deterministic, so every iteration agrees).
  std::printf(
      "{\"bench\":\"dop_sweep_aggregate\",\"dop\":%d,\"pstate\":%d,"
      "\"wall_s\":%.6f,\"rows_per_s\":%.1f,\"sim_elapsed_s\":%.6f,"
      "\"sim_cpu_core_s\":%.6f,\"active_cores\":%d,\"sim_joules\":%.6f,"
      "\"rows_per_joule\":%.1f}\n",
      dop, pstate, wall_best, static_cast<double>(kRows) / wall_best,
      stats.elapsed_seconds, stats.cpu_seconds, stats.active_cores,
      stats.Joules(),
      stats.Joules() > 0 ? static_cast<double>(kRows) / stats.Joules() : 0.0);
}

BENCHMARK(BM_ScanFilter)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HashJoin)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HashAggregate)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DopSweepAggregate)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ecodb::exec

BENCHMARK_MAIN();

// Ablation A9 (Section 5.3): designing for total cost of ownership —
// overdrive one box vs parallelize at the efficient point.
//
// "Two potential solutions for increased performance are to either waste
// energy and increase performance with diminishing returns or pay for more
// hardware ... and parallelize, keeping the same energy efficiency. Over
// time, we expect that the latter solution will prevail since the energy
// costs will make up a larger fraction of TCO."
//
// The harness prices both options for a fixed throughput target across a
// sweep of electricity prices and reports the crossover.

#include "advisor/tco.h"
#include "bench_util.h"

namespace ecodb {
namespace {

// Operating points derived from the Figure-1 curve shape: the overdriven
// box delivers 2x the throughput of the efficient point at 5x the power.
advisor::NodeConfig OverdrivenNode() {
  advisor::NodeConfig n;
  n.name = "overdriven";
  n.hardware_cost_usd = 30000.0;
  n.avg_watts = 3000.0;
  n.perf_units = 100.0;
  return n;
}

advisor::NodeConfig EfficientNode() {
  advisor::NodeConfig n;
  n.name = "efficient";
  n.hardware_cost_usd = 20000.0;
  n.avg_watts = 600.0;
  n.perf_units = 50.0;
  return n;
}

}  // namespace

int Main() {
  bench::Banner(
      "Ablation A9: TCO — overdrive vs parallelize at the efficient point",
      "Throughput target 100 units over a 3-year horizon; cooling 0.5 W/W; "
      "sweep of the electricity price");

  const double target = 100.0;
  bench::Table table({"USD/kWh", "overdrive total", "parallelize total",
                      "winner"});
  bool cheap_prefers_overdrive = false;
  bool dear_prefers_parallel = false;
  const std::vector<double> prices = {0.02, 0.05, 0.08, 0.12,
                                      0.20, 0.35, 0.50};
  for (double price : prices) {
    advisor::TcoParams params;
    params.energy_price_usd_per_kwh = price;
    const advisor::ScalingDecision d = advisor::DecideScaling(
        target, OverdrivenNode(), EfficientNode(), params);
    table.AddRow({bench::Fmt("%.2f", price),
                  bench::Fmt("$%.0f", d.overdrive.total_usd),
                  bench::Fmt("$%.0f", d.parallelize.total_usd),
                  d.parallelize_wins ? "parallelize (2 nodes)"
                                     : "overdrive (1 node)"});
    if (price == prices.front() && !d.parallelize_wins) {
      cheap_prefers_overdrive = true;
    }
    if (price == prices.back() && d.parallelize_wins) {
      dear_prefers_parallel = true;
    }
  }
  table.Print();

  const double crossover = advisor::EnergyPriceCrossover(
      target, OverdrivenNode(), EfficientNode(), advisor::TcoParams{});
  std::printf("parallelize-at-the-efficient-point overtakes overdrive at "
              "%.3f USD/kWh\n", crossover);
  const bool shape = cheap_prefers_overdrive && dear_prefers_parallel &&
                     crossover > prices.front() && crossover < prices.back();
  std::printf("shape check (energy price flips the design, crossover inside "
              "the sweep): %s\n", shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}

}  // namespace ecodb

int main() { return ecodb::Main(); }

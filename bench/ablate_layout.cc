// Ablation A10 (Section 5.1): physical design — row vs column layout, with
// and without compression, under the energy lens.
//
// "Techniques that reduce disk bandwidth requirements, such as
// column-oriented storage and compression, will need to be re-evaluated
// for their ability to reduce overall energy use."
//
// The harness runs the same narrow projection (2 of 8 LINEITEM columns)
// against four physical designs of the same rows and reports time, energy,
// and bytes moved.

#include <memory>

#include "bench_util.h"
#include "exec/scan.h"
#include "power/platform.h"
#include "storage/ssd.h"
#include "storage/table_storage.h"
#include "tpch/generator.h"

namespace ecodb {
namespace {

struct Outcome {
  double seconds = 0;
  double joules = 0;
  uint64_t bytes = 0;
};

Outcome RunScan(const storage::TableStorage& table,
                power::HardwarePlatform* platform) {
  exec::ExecContext ctx(platform, exec::ExecOptions{});
  exec::TableScanOp scan(&table, std::vector<std::string>{
                                     "l_extendedprice", "l_shipdate"});
  auto result = exec::CollectAll(&scan, &ctx);
  if (!result.ok()) std::exit(1);
  const exec::QueryStats stats = ctx.Finish();
  return Outcome{stats.elapsed_seconds, stats.Joules(), stats.io_bytes};
}

}  // namespace

int Main() {
  bench::Banner(
      "Ablation A10: physical layout vs scan energy",
      "SELECT l_extendedprice, l_shipdate FROM lineitem (2 of 8 columns); "
      "row vs column layout, plus compression");

  auto platform = power::MakeProportionalPlatform();
  power::SsdSpec ssd_spec;
  ssd_spec.read_bw_bytes_per_s = 50e6;
  storage::SsdDevice ssd("ssd", ssd_spec, platform->meter());

  tpch::TpchConfig config;
  config.scale_factor = 4.0;  // ~240k lineitems
  const auto rows = tpch::GenerateLineitem(config);

  auto make_table = [&](catalog::TableId id, storage::TableLayout layout) {
    auto t = std::make_unique<storage::TableStorage>(
        id, tpch::LineitemSchema(), layout, &ssd);
    if (!t->Append(rows).ok()) std::exit(1);
    return t;
  };
  auto row_table = make_table(1, storage::TableLayout::kRow);
  auto col_table = make_table(2, storage::TableLayout::kColumn);
  auto col_compressed = make_table(3, storage::TableLayout::kColumn);
  (void)col_compressed->SetCompression("l_shipdate",
                                       storage::CompressionKind::kFor);
  (void)col_compressed->SetCompression("l_orderkey",
                                       storage::CompressionKind::kDelta);
  (void)col_compressed->SetCompression("l_returnflag",
                                       storage::CompressionKind::kDictionary);

  bench::Table table({"physical design", "bytes read", "time (s)",
                      "energy (J)", "rel energy"});
  const Outcome row = RunScan(*row_table, platform.get());
  const Outcome col = RunScan(*col_table, platform.get());
  const Outcome cmp = RunScan(*col_compressed, platform.get());
  auto add = [&](const char* name, const Outcome& o) {
    table.AddRow({name, bench::Fmt("%.1f MB", o.bytes / 1e6),
                  bench::Fmt("%.3f", o.seconds), bench::Fmt("%.1f", o.joules),
                  bench::Fmt("%.2f", o.joules / row.joules)});
  };
  add("row store (NSM)", row);
  add("column store (DSM)", col);
  add("column store + compression", cmp);
  table.Print();

  std::printf("the column layout reads %.1fx fewer bytes and uses %.1fx "
              "less energy for this projection\n",
              static_cast<double>(row.bytes) / col.bytes,
              row.joules / col.joules);
  const bool shape = col.bytes < row.bytes / 2 && col.joules < row.joules &&
                     cmp.bytes < col.bytes;
  std::printf("shape check (DSM reads and spends less on narrow "
              "projections; compression shrinks it further): %s\n",
              shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}

}  // namespace ecodb

int main() { return ecodb::Main(); }

// Microbenchmarks (google-benchmark): real wall-clock encode/decode
// throughput of the column codecs. These are the rates the energy model's
// abstract instruction counts stand in for; useful when recalibrating
// CpuCostProfile numbers against a concrete machine.

#include <benchmark/benchmark.h>

#include "storage/compression.h"
#include "util/random.h"

namespace ecodb::storage {
namespace {

std::vector<int64_t> MakeData(const std::string& pattern, size_t n) {
  Rng rng(7);
  std::vector<int64_t> v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (pattern == "sequential") {
      v.push_back(static_cast<int64_t>(i));
    } else if (pattern == "runs") {
      v.push_back(static_cast<int64_t>(i / 64));
    } else {
      v.push_back(rng.Uniform(0, 1 << 20));
    }
  }
  return v;
}

void BM_Encode(benchmark::State& state, CompressionKind kind,
               const char* pattern) {
  auto codec = MakeInt64Codec(kind);
  const auto data = MakeData(pattern, 64 * 1024);
  std::vector<uint8_t> buf;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->Encode(data, &buf));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
  state.counters["ratio"] =
      static_cast<double>(buf.size()) / (data.size() * 8.0);
}

void BM_Decode(benchmark::State& state, CompressionKind kind,
               const char* pattern) {
  auto codec = MakeInt64Codec(kind);
  const auto data = MakeData(pattern, 64 * 1024);
  std::vector<uint8_t> buf;
  if (!codec->Encode(data, &buf).ok()) state.SkipWithError("encode failed");
  std::vector<int64_t> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->Decode(buf, &out));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}

// Reference scalar decoders (value-at-a-time, bit-at-a-time): the baseline
// the vectorized kernels are measured against; `scripts/bench_regress.sh`
// gates the fast/scalar ratio recorded in BENCH_engine.json.
void BM_DecodeScalar(benchmark::State& state, CompressionKind kind,
                     const char* pattern) {
  auto codec = MakeReferenceInt64Codec(kind);
  const auto data = MakeData(pattern, 64 * 1024);
  std::vector<uint8_t> buf;
  if (!codec->Encode(data, &buf).ok()) state.SkipWithError("encode failed");
  std::vector<int64_t> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->Decode(buf, &out));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}

void BM_DictionaryRoundTrip(benchmark::State& state) {
  Rng rng(9);
  std::vector<std::string> values;
  const char* tags[] = {"1-URGENT", "2-HIGH", "3-MEDIUM", "4-LOW"};
  for (int i = 0; i < 64 * 1024; ++i) {
    values.push_back(tags[rng.Uniform(0, 3)]);
  }
  StringDictionaryCodec codec;
  std::vector<uint8_t> buf;
  std::vector<std::string> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.Encode(values, &buf));
    benchmark::DoNotOptimize(codec.Decode(buf, &out));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(values.size()));
}

BENCHMARK_CAPTURE(BM_Encode, rle_runs, CompressionKind::kRle, "runs");
BENCHMARK_CAPTURE(BM_Encode, delta_sequential, CompressionKind::kDelta,
                  "sequential");
BENCHMARK_CAPTURE(BM_Encode, for_random20bit, CompressionKind::kFor,
                  "random");
// The uncompressed "touch" rate anchors CpuCostProfile's decode column:
// profiles express decode cost as a multiple of this memcpy lane.
BENCHMARK_CAPTURE(BM_Decode, none_sequential, CompressionKind::kNone,
                  "sequential");
BENCHMARK_CAPTURE(BM_Decode, rle_runs, CompressionKind::kRle, "runs");
BENCHMARK_CAPTURE(BM_Decode, delta_sequential, CompressionKind::kDelta,
                  "sequential");
BENCHMARK_CAPTURE(BM_Decode, for_random20bit, CompressionKind::kFor,
                  "random");
BENCHMARK_CAPTURE(BM_Decode, bitpack_sequential, CompressionKind::kBitpack,
                  "sequential");
BENCHMARK_CAPTURE(BM_Decode, bitpack_runs, CompressionKind::kBitpack, "runs");
BENCHMARK_CAPTURE(BM_Decode, for_sequential, CompressionKind::kFor,
                  "sequential");
BENCHMARK_CAPTURE(BM_Decode, for_runs, CompressionKind::kFor, "runs");
BENCHMARK_CAPTURE(BM_DecodeScalar, rle_runs, CompressionKind::kRle, "runs");
BENCHMARK_CAPTURE(BM_DecodeScalar, delta_sequential, CompressionKind::kDelta,
                  "sequential");
BENCHMARK_CAPTURE(BM_DecodeScalar, bitpack_sequential,
                  CompressionKind::kBitpack, "sequential");
BENCHMARK_CAPTURE(BM_DecodeScalar, bitpack_runs, CompressionKind::kBitpack,
                  "runs");
BENCHMARK_CAPTURE(BM_DecodeScalar, for_sequential, CompressionKind::kFor,
                  "sequential");
BENCHMARK_CAPTURE(BM_DecodeScalar, for_runs, CompressionKind::kFor, "runs");
BENCHMARK(BM_DictionaryRoundTrip);

}  // namespace
}  // namespace ecodb::storage

BENCHMARK_MAIN();

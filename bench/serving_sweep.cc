// Serving sweep: Joules per query across offered load, isolated vs
// consolidated serving.
//
// The paper's closing argument is that energy efficiency is a systems
// property, not a component property: a server that is 50% idle still burns
// most of its peak power, so the cheapest Joule is the one amortized across
// concurrent work. This harness replays one seeded multi-tenant arrival
// trace through the serving core at several offered loads, twice per load —
// once with every session isolated, once with admission batching and shared
// scans enabled — and reports each point's per-tenant energy bills. Emitted
// as `ecodb.serving.v1` JSON lines for plotting.
//
// Shape checks (exit code):
//   - conservation: at every point, the sum of session bills equals the
//     meter's integral over the serving window (DESIGN §12);
//   - consolidation saves energy: at the densest load, the consolidated
//     policy bills strictly fewer Joules than isolation and its shared-scan
//     rate is nonzero;
//   - idle amortization: Joules per query fall as concurrency rises, even
//     with no consolidation at all (the same queries split a smaller idle
//     bill);
//   - a second run of the densest consolidated point replays bit-exactly —
//     same admission fingerprint, same billed Joules (DESIGN §12).

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/ecodb.h"
#include "sim/arrival_trace.h"
#include "tpch/generator.h"
#include "tpch/workload.h"

namespace ecodb {
namespace {

constexpr uint64_t kTraceSeed = 2009;
constexpr int kTenants = 4;
constexpr int kDisks = 4;  // RAID-5 primary store: scans cost real Joules
constexpr double kScaleFactor = 2.0;
constexpr double kBatchWindowS = 0.02;
constexpr double kShareWindowS = 1.0;

struct SweepParams {
  std::vector<double> interarrivals_s;  // densest load last
  size_t requests;
};

SweepParams ParamsFor(bool smoke) {
  if (smoke) return {{0.1, 0.01}, 8};
  return {{0.5, 0.1, 0.01}, 24};
}

// One fixed request mix, stretched or compressed in time per load point, so
// J/query comparisons across points see identical work.
sim::ArrivalTrace TraceFor(size_t requests, double mean_interarrival_s) {
  sim::ArrivalTraceSpec spec;
  spec.seed = kTraceSeed;
  spec.tenants = kTenants;
  spec.requests = requests;
  spec.mean_interarrival_s = 1.0;
  spec.tenant_skew_theta = 0.5;
  sim::ArrivalTrace trace = sim::GenerateArrivalTrace(spec);
  for (sim::TraceRequest& req : trace.requests) {
    req.arrival_s *= mean_interarrival_s;
  }
  return trace;
}

sched::ServingReport RunPoint(const sim::ArrivalTrace& trace,
                              bool consolidated) {
  core::DbConfig db_config;
  db_config.preset = core::PlatformPreset::kProportional;
  db_config.hdd_count = kDisks;  // 15K-class spinning store, as in Figure 1
  db_config.ssd_count = 0;
  db_config.hdd_spec.sustained_bw_bytes_per_s = 80.0 * 1e6;
  db_config.hdd_spec.active_watts = 17.0;
  db_config.hdd_spec.idle_watts = 12.0;
  auto db = core::EcoDb::Open(db_config).value();

  tpch::TpchConfig tc;
  tc.scale_factor = kScaleFactor;
  auto check = [](Status s) {
    if (!s.ok()) {
      std::fprintf(stderr, "serving_sweep: %s\n", s.message().c_str());
      std::abort();
    }
  };
  check(db->CreateTable("orders", tpch::OrdersSchema()));
  check(db->Load("orders", tpch::GenerateOrders(tc)));
  check(db->CreateTable("lineitem", tpch::LineitemSchema()));
  check(db->Load("lineitem", tpch::GenerateLineitem(tc)));
  storage::TableStorage* orders = db->table("orders").value();
  storage::TableStorage* lineitem = db->table("lineitem").value();

  sched::ServingConfig config;
  config.worker_fleet = 2;
  if (consolidated) {
    config.batching.window_s = kBatchWindowS;
    config.share_window_s = kShareWindowS;
  }
  return db->Serve(trace, config,
                   tpch::MakeServingFactory(orders, lineitem))
      .value();
}

bool Conserved(const sched::ServingReport& r) {
  return std::abs(r.billed_joules - r.total_joules) <=
         1e-9 * std::max(1.0, r.total_joules);
}

void PrintPointJson(double interarrival_s, const char* policy,
                    const sched::ServingReport& r) {
  std::printf(
      "{\"bench\":\"serving_sweep\",\"mean_interarrival_s\":%.4f,"
      "\"policy\":\"%s\",\"sessions\":%zu,\"window_s\":%.6f,"
      "\"total_joules\":%.6f,\"billed_joules\":%.6f,"
      "\"joules_per_query\":%.6f,\"share_rate\":%.4f,\"batches\":%zu,"
      "\"admission_fingerprint\":\"%016" PRIx64 "\"}\n",
      interarrival_s, policy, r.sessions.size(),
      r.window_end_s - r.window_start_s, r.total_joules, r.billed_joules,
      r.JoulesPerQuery(), r.shared_scans.ShareRate(), r.batches_dispatched,
      r.admission_fingerprint);
}

void PrintTenantJson(double interarrival_s, const char* policy,
                     const sched::TenantBill& tb) {
  std::printf(
      "{\"bench\":\"serving_sweep\",\"mean_interarrival_s\":%.4f,"
      "\"policy\":\"%s\",\"tenant\":%d,\"sessions\":%zu,"
      "\"cpu_joules\":%.6f,\"dram_joules\":%.6f,\"io_joules\":%.6f,"
      "\"fault_joules\":%.6f,\"background_joules\":%.6f,"
      "\"total_joules\":%.6f,\"queue_seconds\":%.6f}\n",
      interarrival_s, policy, tb.tenant_id, tb.sessions, tb.cpu_joules,
      tb.dram_joules, tb.io_joules, tb.fault_joules, tb.background_joules,
      tb.TotalJoules(), tb.queue_seconds);
}

int Main(bool smoke) {
  const SweepParams params = ParamsFor(smoke);
  bench::Banner(
      "Serving sweep: Joules per query vs offered load, per-tenant bills",
      "one seeded TPC-H arrival trace replayed per load point, isolated vs "
      "batched+shared serving on the energy-proportional preset");

  struct Point {
    double interarrival_s;
    sched::ServingReport isolated;
    sched::ServingReport consolidated;
  };
  std::vector<Point> points;
  for (double ia : params.interarrivals_s) {
    const sim::ArrivalTrace trace = TraceFor(params.requests, ia);
    Point p;
    p.interarrival_s = ia;
    p.isolated = RunPoint(trace, /*consolidated=*/false);
    p.consolidated = RunPoint(trace, /*consolidated=*/true);
    points.push_back(std::move(p));
  }

  bench::Table table({"interarrival (s)", "policy", "window (s)", "joules",
                      "J/query", "share rate", "batches"});
  for (const Point& p : points) {
    for (const auto& pr :
         {std::pair{&p.isolated, "isolated"},
          std::pair{&p.consolidated, "consolidated"}}) {
      const sched::ServingReport& r = *pr.first;
      table.AddRow({bench::Fmt("%.2f", p.interarrival_s), pr.second,
                    bench::Fmt("%.3f", r.window_end_s - r.window_start_s),
                    bench::Fmt("%.2f", r.billed_joules),
                    bench::Fmt("%.3f", r.JoulesPerQuery()),
                    bench::Fmt("%.2f", r.shared_scans.ShareRate()),
                    std::to_string(r.batches_dispatched)});
    }
  }
  table.Print();

  // JSON lines: header pins the schema and rig, one line per (load, policy)
  // point, one per tenant at the densest consolidated point.
  std::printf("{\"schema\":\"ecodb.serving.v1\",\"bench\":\"serving_sweep\","
              "\"seed\":%" PRIu64 ",\"tenants\":%d,\"requests\":%zu,"
              "\"scale_factor\":%.2f,\"platform\":\"proportional\","
              "\"disks\":%d,\"raid\":\"raid5\","
              "\"batch_window_s\":%.3f,\"share_window_s\":%.3f}\n",
              kTraceSeed, kTenants, params.requests, kScaleFactor, kDisks,
              kBatchWindowS, kShareWindowS);
  for (const Point& p : points) {
    PrintPointJson(p.interarrival_s, "isolated", p.isolated);
    PrintPointJson(p.interarrival_s, "consolidated", p.consolidated);
  }
  const Point& densest = points.back();
  for (const sched::TenantBill& tb : densest.consolidated.tenants) {
    PrintTenantJson(densest.interarrival_s, "consolidated", tb);
  }

  // --- Shape checks ------------------------------------------------------
  bool conserved_all = true;
  for (const Point& p : points) {
    conserved_all = conserved_all && Conserved(p.isolated) &&
                    Conserved(p.consolidated);
  }
  const bool consolidation_saves =
      densest.consolidated.billed_joules < densest.isolated.billed_joules &&
      densest.consolidated.shared_scans.ShareRate() > 0.0;
  const bool amortizes = points.back().isolated.JoulesPerQuery() <
                         points.front().isolated.JoulesPerQuery();

  const sim::ArrivalTrace replay_trace =
      TraceFor(params.requests, densest.interarrival_s);
  const sched::ServingReport replay =
      RunPoint(replay_trace, /*consolidated=*/true);
  const bool replays =
      replay.admission_fingerprint ==
          densest.consolidated.admission_fingerprint &&
      replay.billed_joules == densest.consolidated.billed_joules &&
      replay.total_joules == densest.consolidated.total_joules;

  std::printf("\nshape check (bills conserve at every point; consolidation "
              "saves at dense load; J/query falls with concurrency; trace "
              "replays bit-exactly): %s\n",
              conserved_all && consolidation_saves && amortizes && replays
                  ? "PASS"
                  : "FAIL");
  if (!conserved_all) std::printf("  FAIL: bills do not sum to the meter\n");
  if (!consolidation_saves) {
    std::printf("  FAIL: consolidated %.4f J vs isolated %.4f J "
                "(share rate %.3f)\n",
                densest.consolidated.billed_joules,
                densest.isolated.billed_joules,
                densest.consolidated.shared_scans.ShareRate());
  }
  if (!amortizes) {
    std::printf("  FAIL: J/query dense %.4f vs sparse %.4f\n",
                points.back().isolated.JoulesPerQuery(),
                points.front().isolated.JoulesPerQuery());
  }
  if (!replays) std::printf("  FAIL: replay diverged\n");

  return conserved_all && consolidation_saves && amortizes && replays ? 0
                                                                      : 1;
}

}  // namespace
}  // namespace ecodb

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  return ecodb::Main(smoke);
}

// Ablation A1 (Section 4.1): hash join vs nested-loop join under an energy
// objective, sweeping the price of DRAM residency.
//
// "Consider the hash-join operator which has been known to outperform
// nested-loop join in many occasions, but it relies on using a large chunk
// of memory ... From a power perspective, these are 'expensive' operations
// and may tip the balance in favor of nested-loop join in more occasions
// than before."
//
// The harness plans the same equi-join at increasing memory-power premiums
// and reports the algorithm the energy objective selects, locating the
// crossover. The performance objective's choice is printed as the control:
// it never budges.

#include <memory>

#include "bench_util.h"
#include "optimizer/planner.h"
#include "power/platform.h"
#include "storage/ssd.h"
#include "storage/table_storage.h"

namespace ecodb {
namespace {

using catalog::Column;
using catalog::DataType;
using catalog::Schema;

std::unique_ptr<storage::TableStorage> MakeTable(catalog::TableId id, int n,
                                                 storage::StorageDevice* dev) {
  Schema schema({Column{"k", DataType::kInt64, 8},
                 Column{"v", DataType::kInt64, 8}});
  auto table = std::make_unique<storage::TableStorage>(
      id, schema, storage::TableLayout::kColumn, dev);
  std::vector<storage::ColumnData> cols(2);
  cols[0].type = DataType::kInt64;
  cols[1].type = DataType::kInt64;
  for (int i = 0; i < n; ++i) {
    cols[0].i64.push_back(i % 400);
    cols[1].i64.push_back(i);
  }
  if (!table->Append(cols).ok()) std::exit(1);
  return table;
}

}  // namespace

int Main() {
  bench::Banner("Ablation A1: join algorithm choice vs memory power price",
                "20k-row probe side joined to a 400-row build side; energy "
                "objective; sweep of the DRAM residency premium");

  auto platform = power::MakeFlashScanPlatform();
  power::SsdSpec ssd_spec;
  ssd_spec.read_bw_bytes_per_s = 100e6;
  storage::SsdDevice ssd("ssd", ssd_spec, platform->meter());
  auto big = MakeTable(1, 20000, &ssd);
  auto small = MakeTable(2, 400, &ssd);

  optimizer::QuerySpec spec;
  spec.left.name = "big";
  spec.left.variants = {big.get()};
  spec.left.columns = {"k", "v"};
  spec.right.emplace();
  spec.right->name = "small";
  spec.right->variants = {small.get()};
  spec.right->columns = {"k"};
  spec.left_key = "k";
  spec.right_key = "k";

  bench::Table table({"memory premium (x W/GiB)", "energy objective picks",
                      "energy est (J)", "perf objective picks"});
  std::string first_algo, last_algo;
  for (double premium : {1.0, 1e2, 1e4, 1e5, 1e6, 1e7, 1e8}) {
    optimizer::CostModelParams params;
    params.memory_power_premium = premium;
    params.dram_watts_per_gib_override = 0.65;
    optimizer::CostModel model(platform.get(), params);
    optimizer::Planner planner(&model);

    auto energy_plan =
        planner.ChoosePlan(spec, optimizer::Objective::Energy());
    auto perf_plan =
        planner.ChoosePlan(spec, optimizer::Objective::Performance());
    if (!energy_plan.ok() || !perf_plan.ok()) return 1;

    const std::string ename = JoinAlgorithmName(energy_plan->join_algo);
    table.AddRow({bench::Fmt("%.0e", premium), ename,
                  bench::Fmt("%.3f", energy_plan->cost.joules),
                  JoinAlgorithmName(perf_plan->join_algo)});
    if (first_algo.empty()) first_algo = ename;
    last_algo = ename;
  }
  table.Print();

  const bool crossover = first_algo.find("hash") != std::string::npos &&
                         last_algo.find("hash") == std::string::npos;
  std::printf("shape check (cheap memory -> hash join; expensive memory -> "
              "memory-frugal join): %s\n", crossover ? "PASS" : "FAIL");
  return crossover ? 0 : 1;
}

}  // namespace ecodb

int main() { return ecodb::Main(); }

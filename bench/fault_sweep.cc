// Fault sweep: energy efficiency of a RAID-5 array across its availability
// states — healthy, degraded (one member dead, reads reconstructed), and
// rebuilding onto a spare.
//
// The paper's Figure 1 machine runs 36-204 drives; at fleet scale degraded
// mode is the steady state, and its energy price is invisible to a bench
// that only measures healthy hardware. This harness runs one fixed
// sequential-scan workload against a 4-disk RAID-5 array in each state and
// reports the energy delta, the retry accounting (a FaultPlan injects
// transient errors on one member throughout), and the rebuild's own bill.
// Emitted as `ecodb.faults.v1` JSON lines for plotting.
//
// Shape checks (exit code):
//   - the degraded scan costs strictly more Joules and XOR instructions
//     than the healthy scan, and the XOR work matches the analytic model
//     (xor_instructions_per_byte x (n-1) x dead-member share);
//   - transient errors are retried, and the retries carry nonzero charged
//     energy (free retries would falsify the availability/energy tradeoff);
//   - after the rebuild completes the array is healthy again and the scan
//     returns to the healthy shape (no degraded reads);
//   - a second run of the whole sweep from the same FaultPlan seed replays
//     bit-identically (the DESIGN §7 determinism contract).

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "power/platform.h"
#include "storage/disk_array.h"
#include "storage/fault_injector.h"
#include "storage/hdd.h"

namespace ecodb {
namespace {

constexpr int kDisks = 4;
constexpr uint64_t kScanBytes = 512ull << 20;   // per-phase scan volume
constexpr uint64_t kChunkBytes = 8ull << 20;    // scan request size
constexpr uint64_t kRebuildBytes = 128ull << 20;  // dead member's extent
constexpr uint64_t kRebuildChunk = 16ull << 20;
constexpr double kRebuildRate = 48.0 * 1e6;  // throttled bytes/s
constexpr uint64_t kFaultSeed = 2026;

power::HddSpec Scsi15k() {
  power::HddSpec spec;  // 15K SCSI class, as in the Figure 1 array
  spec.sustained_bw_bytes_per_s = 80.0 * 1e6;
  spec.active_watts = 17.0;
  spec.idle_watts = 12.0;
  spec.standby_watts = 2.5;
  return spec;
}

storage::ArraySpec SweepArraySpec() {
  storage::ArraySpec spec;
  spec.level = storage::RaidLevel::kRaid5;
  spec.stripe_skew_alpha = 0.0;  // isolate the fault model from skew
  spec.per_request_overhead_s = 0.0;
  spec.controller_bw_bytes_per_s = 1e15;
  return spec;
}

// Transient errors on one member for the whole sweep: a low hashed rate
// plus one pinned early index so every run shows retries.
storage::FaultPlan SweepFaultPlan() {
  storage::FaultPlan plan;
  plan.seed = kFaultSeed;
  storage::DeviceFaultSpec flaky;
  flaky.device = "hdd3";
  flaky.transient_error_rate = 0.02;
  flaky.transient_ios = {2};
  plan.devices.push_back(flaky);
  return plan;
}

// One availability state's measurement of the fixed scan workload.
struct PhaseOutcome {
  std::string phase;
  double start_time = 0.0;
  double end_time = 0.0;
  double joules = 0.0;  // meter delta across the phase (devices + XOR)
  storage::IoResult faults;  // accumulated fault accounting

  double Seconds() const { return end_time - start_time; }
  double MBPerJoule() const {
    return joules > 0.0 ? (kScanBytes / 1e6) / joules : 0.0;
  }
};

// The whole sweep's state: platform + injector + array share one meter so
// every retry, reconstruction, and rebuild lands on the same bill.
struct Rig {
  std::unique_ptr<power::HardwarePlatform> platform;
  std::unique_ptr<storage::FaultInjector> injector;
  std::unique_ptr<storage::DiskArray> array;
};

Rig MakeRig() {
  Rig rig;
  rig.platform = power::MakeDl785Platform();
  rig.injector = std::make_unique<storage::FaultInjector>(SweepFaultPlan());
  std::vector<std::unique_ptr<storage::StorageDevice>> members;
  for (int i = 0; i < kDisks; ++i) {
    auto hdd = std::make_unique<storage::HddDevice>(
        "hdd" + std::to_string(i), Scsi15k(), rig.platform->meter());
    members.push_back(std::make_unique<storage::FaultInjectedDevice>(
        std::move(hdd), rig.injector.get(), rig.platform->meter()));
  }
  auto array_or = storage::DiskArray::Create(
      "array", SweepArraySpec(), std::move(members), rig.platform->meter());
  if (!array_or.ok()) {
    std::fprintf(stderr, "array construction failed: %s\n",
                 array_or.status().message().c_str());
    std::exit(1);
  }
  rig.array = std::move(*array_or);
  return rig;
}

// Sequential chunked scan of kScanBytes starting at `start`; accumulates
// fault accounting and brackets the meter to price the phase.
PhaseOutcome RunScan(Rig* rig, const std::string& phase, double start) {
  PhaseOutcome out;
  out.phase = phase;
  out.start_time = start;
  const double joules_before = rig->platform->meter()->TotalJoules();
  double t = start;
  for (uint64_t done = 0; done < kScanBytes; done += kChunkBytes) {
    auto r = rig->array->SubmitRead(t, kChunkBytes, /*sequential=*/true);
    if (!r.ok()) {
      std::fprintf(stderr, "%s scan failed: %s\n", phase.c_str(),
                   r.status().message().c_str());
      std::exit(1);
    }
    out.faults.AccumulateFaults(*r);
    t = r->completion_time;
  }
  out.end_time = t;
  out.joules = rig->platform->meter()->TotalJoules() - joules_before;
  return out;
}

struct SweepResult {
  PhaseOutcome healthy;
  PhaseOutcome degraded;
  PhaseOutcome rebuilt;
  storage::RebuildReport rebuild;
};

SweepResult RunSweep() {
  Rig rig = MakeRig();
  SweepResult res;

  res.healthy = RunScan(&rig, "healthy", 0.0);

  if (!rig.array->FailMember(1, res.healthy.end_time).ok()) std::exit(1);
  res.degraded = RunScan(&rig, "degraded", res.healthy.end_time);

  storage::RebuildConfig cfg;
  cfg.total_bytes = kRebuildBytes;
  cfg.chunk_bytes = kRebuildChunk;
  cfg.rate_bytes_per_s = kRebuildRate;
  auto spare = std::make_unique<storage::HddDevice>("spare", Scsi15k(),
                                                    rig.platform->meter());
  auto report = storage::RebuildScheduler(rig.array.get())
                    .Run(std::move(spare), res.degraded.end_time, cfg);
  if (!report.ok()) {
    std::fprintf(stderr, "rebuild failed: %s\n",
                 report.status().message().c_str());
    std::exit(1);
  }
  res.rebuild = *report;

  res.rebuilt = RunScan(&rig, "rebuilt", res.rebuild.end_time);
  return res;
}

void PrintPhaseJson(const PhaseOutcome& p) {
  std::printf(
      "{\"bench\":\"fault_sweep\",\"phase\":\"%s\",\"io_bytes\":%" PRIu64
      ",\"sim_seconds\":%.6f,\"joules\":%.3f,\"mb_per_joule\":%.3f,"
      "\"transient_errors\":%u,\"retry_seconds\":%.6f,"
      "\"retry_joules\":%.6f,\"degraded_reads\":%u,"
      "\"reconstruct_instructions\":%.1f,\"reconstruct_joules\":%.6f}\n",
      p.phase.c_str(), kScanBytes, p.Seconds(), p.joules, p.MBPerJoule(),
      p.faults.transient_errors, p.faults.retry_seconds,
      p.faults.retry_joules, p.faults.degraded_reads,
      p.faults.reconstruct_instructions, p.faults.reconstruct_joules);
}

}  // namespace

int Main() {
  bench::Banner(
      "Fault sweep: RAID-5 energy efficiency across availability states",
      "4 x 15K SCSI RAID-5, 512 MiB sequential scan per state; transient "
      "faults on hdd3 throughout; rebuild throttled to 48 MB/s");

  const SweepResult res = RunSweep();

  bench::Table table({"phase", "time (s)", "joules", "MB/J", "retries",
                      "retry J", "degraded reads", "xor J"});
  for (const PhaseOutcome* p :
       {&res.healthy, &res.degraded, &res.rebuilt}) {
    table.AddRow({p->phase, bench::Fmt("%.2f", p->Seconds()),
                  bench::Fmt("%.1f", p->joules),
                  bench::Fmt("%.3f", p->MBPerJoule()),
                  std::to_string(p->faults.transient_errors),
                  bench::Fmt("%.4f", p->faults.retry_joules),
                  std::to_string(p->faults.degraded_reads),
                  bench::Fmt("%.4f", p->faults.reconstruct_joules)});
  }
  table.Print();

  std::printf("rebuild: %.1f MiB in %" PRIu64
              " chunks over %.2f s, %.0f XOR instructions (%.4f J)\n\n",
              res.rebuild.bytes_rebuilt / (1024.0 * 1024.0),
              res.rebuild.chunks,
              res.rebuild.end_time - res.rebuild.start_time,
              res.rebuild.xor_instructions, res.rebuild.xor_joules);

  // JSON lines: header pins the schema and rig, one line per phase, one for
  // the rebuild window itself.
  std::printf("{\"schema\":\"ecodb.faults.v1\",\"disks\":%d,"
              "\"raid\":\"raid5\",\"scan_bytes\":%" PRIu64
              ",\"seed\":%" PRIu64 ",\"platform\":\"dl785\"}\n",
              kDisks, kScanBytes, kFaultSeed);
  PrintPhaseJson(res.healthy);
  PrintPhaseJson(res.degraded);
  std::printf("{\"bench\":\"fault_sweep\",\"phase\":\"rebuilding\","
              "\"rebuild_bytes\":%" PRIu64 ",\"chunks\":%" PRIu64
              ",\"sim_seconds\":%.6f,\"xor_instructions\":%.1f,"
              "\"xor_joules\":%.6f,\"rate_bytes_per_s\":%.0f}\n",
              res.rebuild.bytes_rebuilt, res.rebuild.chunks,
              res.rebuild.end_time - res.rebuild.start_time,
              res.rebuild.xor_instructions, res.rebuild.xor_joules,
              kRebuildRate);
  PrintPhaseJson(res.rebuilt);

  // --- Shape checks ------------------------------------------------------
  // Degraded reads fold (n-1) survivor shares per reconstructed request;
  // the dead member's share of the scan is kScanBytes / n.
  const storage::ArraySpec spec = SweepArraySpec();
  const double share = static_cast<double>(kScanBytes) / kDisks;
  const double expect_instr =
      spec.xor_instructions_per_byte * (kDisks - 1) * share;
  const bool xor_matches =
      std::abs(res.degraded.faults.reconstruct_instructions - expect_instr) <
      1e-6 * expect_instr;
  const bool degraded_costs_more =
      res.degraded.joules > res.healthy.joules &&
      res.degraded.faults.degraded_reads > 0;
  const bool retries_charged = res.healthy.faults.transient_errors > 0 &&
                               res.healthy.faults.retry_joules > 0.0;
  const bool rebuild_restores = res.rebuilt.faults.degraded_reads == 0 &&
                                res.rebuild.bytes_rebuilt == kRebuildBytes;

  // Determinism: the same seed + plan replays the whole sweep bit-exactly.
  const SweepResult replay = RunSweep();
  const bool replays =
      replay.healthy.joules == res.healthy.joules &&
      replay.degraded.joules == res.degraded.joules &&
      replay.rebuilt.joules == res.rebuilt.joules &&
      replay.degraded.faults.reconstruct_joules ==
          res.degraded.faults.reconstruct_joules &&
      replay.healthy.faults.transient_errors ==
          res.healthy.faults.transient_errors &&
      replay.rebuild.xor_joules == res.rebuild.xor_joules;

  std::printf("\nshape check (degraded > healthy; XOR matches "
              "(n-1) x share model; retries charged; rebuild restores "
              "health; seed replays bit-exactly): %s\n",
              degraded_costs_more && xor_matches && retries_charged &&
                      rebuild_restores && replays
                  ? "PASS"
                  : "FAIL");
  if (!degraded_costs_more) std::printf("  FAIL: degraded not costlier\n");
  if (!xor_matches) {
    std::printf("  FAIL: xor instructions %.1f vs model %.1f\n",
                res.degraded.faults.reconstruct_instructions, expect_instr);
  }
  if (!retries_charged) std::printf("  FAIL: retries free or absent\n");
  if (!rebuild_restores) std::printf("  FAIL: rebuild did not restore\n");
  if (!replays) std::printf("  FAIL: replay diverged\n");

  return degraded_costs_more && xor_matches && retries_charged &&
                 rebuild_restores && replays
             ? 0
             : 1;
}

}  // namespace ecodb

int main() { return ecodb::Main(); }

// Overload sweep: goodput, sheds, deadline kills, and the power-cap ladder
// across offered load — every shed Joule still on the bill.
//
// Section 4 of the paper bills the server, not the query; this harness asks
// what the bill looks like when the server is offered more work than it can
// carry. One seeded burst-shaped arrival trace is replayed at several load
// factors (0.5x to 4x of measured capacity), with the power cap off and on.
// Overload protection — deadlines, admission backpressure, priority-aware
// shedding, power-cap degradation — turns excess load into cheap refusals
// instead of expensive late answers, and the accounting keeps refusals on
// the books: a shed session still carries its background share, a killed one
// its partial work. Emitted as `ecodb.overload.v1` JSON lines for plotting.
//
// Shape checks (exit code):
//   - conservation: at every (load, cap) point, the sum of session bills —
//     completed, killed, shed, and evicted alike — equals the meter's
//     integral over the serving window (DESIGN §12, §14);
//   - goodput degrades monotonically: the completed-session count never
//     rises as offered load rises, with or without the cap;
//   - high-priority queue time stays bounded: the p99 queue time of
//     completed priority-0 sessions stays within the queue SLO at every
//     point while sheds absorb the excess (at 4x load something is refused);
//   - the cap engages: at least one capped point records a governor
//     ladder transition (heavy shedding can hold even the densest point's
//     draw under the cap, so the ladder need not climb everywhere);
//   - a second run of the densest capped point replays bit-exactly — same
//     admission fingerprint, same billed Joules (DESIGN §14).

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/ecodb.h"
#include "sim/arrival_trace.h"
#include "tpch/generator.h"
#include "tpch/workload.h"

namespace ecodb {
namespace {

constexpr uint64_t kTraceSeed = 2009;
constexpr int kTenants = 4;
constexpr int kPriorities = 2;  // 0 = high, 1 = low
constexpr int kDisks = 4;       // RAID-5 primary store, as in serving_sweep
constexpr double kScaleFactor = 2.0;
constexpr int kWorkerFleet = 2;

// Overload knobs, expressed in units of the measured mean service time.
constexpr double kDeadlineServiceFactor = 8.0;
constexpr double kQueueSloServiceFactor = 4.0;
constexpr size_t kMaxQueueDepth = 6;
constexpr int kTenantInflight = 4;
// The governor watches the windowed rate of billed *direct* Joules
// (power/power_cap.h), so the cap is set against the sparsest point's
// direct draw: comfortably above it, well below the dense points' draw —
// dense load must climb the ladder.
constexpr double kCapOverSparseDraw = 1.3;
constexpr double kResumeFraction = 0.7;

struct SweepParams {
  std::vector<double> load_factors;  // densest load last
  size_t requests;
};

SweepParams ParamsFor(bool smoke) {
  if (smoke) return {{0.5, 2.0}, 10};
  return {{0.5, 1.0, 2.0, 4.0}, 28};
}

// One fixed burst-shaped request mix, stretched or compressed in time per
// load point, so every point refuses or serves identical work. The burst
// triples the arrival rate through the middle third of the (unscaled)
// window — the overload the protections exist for.
sim::ArrivalTrace TraceFor(size_t requests, double mean_interarrival_s) {
  sim::ArrivalTraceSpec spec;
  spec.seed = kTraceSeed;
  spec.tenants = kTenants;
  spec.requests = requests;
  spec.mean_interarrival_s = 1.0;
  spec.tenant_skew_theta = 0.5;
  spec.priority_classes = kPriorities;
  const double horizon = static_cast<double>(requests);
  spec.bursts.push_back({horizon / 3.0, horizon / 3.0, 3.0});
  sim::ArrivalTrace trace = sim::GenerateArrivalTrace(spec);
  for (sim::TraceRequest& req : trace.requests) {
    req.arrival_s *= mean_interarrival_s;
  }
  return trace;
}

sched::ServingReport RunPoint(const sim::ArrivalTrace& trace,
                              const sched::OverloadConfig& overload) {
  core::DbConfig db_config;
  db_config.preset = core::PlatformPreset::kProportional;
  db_config.hdd_count = kDisks;
  db_config.ssd_count = 0;
  db_config.hdd_spec.sustained_bw_bytes_per_s = 80.0 * 1e6;
  db_config.hdd_spec.active_watts = 17.0;
  db_config.hdd_spec.idle_watts = 12.0;
  auto db = core::EcoDb::Open(db_config).value();

  tpch::TpchConfig tc;
  tc.scale_factor = kScaleFactor;
  auto check = [](Status s) {
    if (!s.ok()) {
      std::fprintf(stderr, "overload_sweep: %s\n", s.message().c_str());
      std::abort();
    }
  };
  check(db->CreateTable("orders", tpch::OrdersSchema()));
  check(db->Load("orders", tpch::GenerateOrders(tc)));
  check(db->CreateTable("lineitem", tpch::LineitemSchema()));
  check(db->Load("lineitem", tpch::GenerateLineitem(tc)));
  storage::TableStorage* orders = db->table("orders").value();
  storage::TableStorage* lineitem = db->table("lineitem").value();

  sched::ServingConfig config;
  config.worker_fleet = kWorkerFleet;
  config.overload = overload;
  return db->Serve(trace, config,
                   tpch::MakeServingFactory(orders, lineitem))
      .value();
}

bool Conserved(const sched::ServingReport& r) {
  return std::abs(r.billed_joules - r.total_joules) <=
         1e-9 * std::max(1.0, r.total_joules);
}

/// p99 (== max at these trace sizes) queue time of completed priority-0
/// sessions; 0 when none completed.
double HighPriorityP99QueueSeconds(const sched::ServingReport& r) {
  std::vector<double> queues;
  for (const sched::SessionBill& bill : r.sessions) {
    if (bill.priority == 0 &&
        bill.terminal == sched::SessionTerminal::kCompleted) {
      queues.push_back(bill.queue_seconds);
    }
  }
  if (queues.empty()) return 0.0;
  std::sort(queues.begin(), queues.end());
  const size_t idx =
      (queues.size() * 99 + 99) / 100 == 0
          ? 0
          : std::min(queues.size() - 1, (queues.size() * 99 + 99) / 100 - 1);
  return queues[idx];
}

uint64_t Refused(const sched::ServingReport& r) {
  return r.sessions_shed + r.sessions_evicted + r.sessions_deadline;
}

/// The direct (non-background) Joules the sessions billed — the quantity
/// the power-cap governor's windowed draw integrates.
double DirectBilledJoules(const sched::ServingReport& r) {
  double joules = 0.0;
  for (const sched::SessionBill& bill : r.sessions) {
    joules += bill.cpu_joules + bill.dram_joules + bill.io_joules +
              bill.fault_joules;
  }
  return joules;
}

void PrintPointJson(double load, const char* policy,
                    const sched::ServingReport& r, double slo_s) {
  std::printf(
      "{\"bench\":\"overload_sweep\",\"load_factor\":%.2f,"
      "\"policy\":\"%s\",\"sessions\":%zu,\"completed\":%" PRIu64 ","
      "\"deadline\":%" PRIu64 ",\"shed\":%" PRIu64 ",\"evicted\":%" PRIu64
      ",\"window_s\":%.6f,\"total_joules\":%.6f,\"billed_joules\":%.6f,"
      "\"hi_p99_queue_s\":%.6f,\"queue_slo_s\":%.6f,"
      "\"governor_transitions\":%zu,"
      "\"admission_fingerprint\":\"%016" PRIx64 "\"}\n",
      load, policy, r.sessions.size(), r.sessions_completed,
      r.sessions_deadline, r.sessions_shed, r.sessions_evicted,
      r.window_end_s - r.window_start_s, r.total_joules, r.billed_joules,
      HighPriorityP99QueueSeconds(r), slo_s, r.governor_events.size(),
      r.admission_fingerprint);
}

int Main(bool smoke) {
  const SweepParams params = ParamsFor(smoke);
  bench::Banner(
      "Overload sweep: goodput and sheds vs offered load, cap off/on",
      "one seeded burst trace replayed per load factor through deadlines, "
      "admission backpressure, and the power-cap ladder; every refusal "
      "stays on the bill");

  // --- Calibration: mean service time and 1x draw at an unloaded point.
  const sim::ArrivalTrace calib_trace =
      TraceFor(params.requests, /*mean_interarrival_s=*/60.0);
  const sched::ServingReport calib =
      RunPoint(calib_trace, sched::OverloadConfig{});
  double service_sum = 0.0;
  for (const sched::SessionBill& bill : calib.sessions) {
    service_sum += bill.end_s - bill.admit_s;
  }
  const double mean_service_s =
      service_sum / static_cast<double>(calib.sessions.size());
  // Capacity: the fleet completes one query per mean_service/fleet seconds.
  const double capacity_interarrival_s =
      mean_service_s / static_cast<double>(kWorkerFleet);

  sched::OverloadConfig protections;
  protections.relative_deadline_s = kDeadlineServiceFactor * mean_service_s;
  protections.queue_slo_s = kQueueSloServiceFactor * mean_service_s;
  protections.max_queue_depth = kMaxQueueDepth;
  protections.per_tenant_inflight = kTenantInflight;

  struct Point {
    double load_factor = 0.0;
    sched::ServingReport uncapped;
    sched::ServingReport capped;
  };
  std::vector<Point> points;
  sched::OverloadConfig capped_cfg;  // cap derived from the 1st point's draw
  for (double load : params.load_factors) {
    const sim::ArrivalTrace trace =
        TraceFor(params.requests, capacity_interarrival_s / load);
    Point p;
    p.load_factor = load;
    p.uncapped = RunPoint(trace, protections);
    if (points.empty()) {
      // The cap pins above the sparsest uncapped point's direct draw:
      // denser points must climb the ladder to stay under it.
      const double draw =
          DirectBilledJoules(p.uncapped) /
          std::max(1e-9, p.uncapped.window_end_s - p.uncapped.window_start_s);
      capped_cfg = protections;
      capped_cfg.power_cap.enabled = true;
      capped_cfg.power_cap.cap_watts = kCapOverSparseDraw * draw;
      capped_cfg.power_cap.window_s = 4.0 * mean_service_s;
      capped_cfg.power_cap.max_pstate_steps = 2;
      capped_cfg.power_cap.min_fleet = 1;
      capped_cfg.power_cap.resume_fraction = kResumeFraction;
    }
    p.capped = RunPoint(trace, capped_cfg);
    points.push_back(std::move(p));
  }

  bench::Table table({"load", "cap", "done", "ddl", "shed", "evct",
                      "hi p99 q(s)", "gov steps", "billed (J)"});
  for (const Point& p : points) {
    for (const auto& pr : {std::pair{&p.uncapped, "off"},
                           std::pair{&p.capped, "on"}}) {
      const sched::ServingReport& r = *pr.first;
      table.AddRow({bench::Fmt("%.1fx", p.load_factor), pr.second,
                    std::to_string(r.sessions_completed),
                    std::to_string(r.sessions_deadline),
                    std::to_string(r.sessions_shed),
                    std::to_string(r.sessions_evicted),
                    bench::Fmt("%.3f", HighPriorityP99QueueSeconds(r)),
                    std::to_string(r.governor_events.size()),
                    bench::Fmt("%.2f", r.billed_joules)});
    }
  }
  table.Print();

  // JSON lines: header pins the schema and rig, one line per (load, cap)
  // point.
  std::printf(
      "{\"schema\":\"ecodb.overload.v1\",\"bench\":\"overload_sweep\","
      "\"seed\":%" PRIu64 ",\"tenants\":%d,\"priorities\":%d,"
      "\"requests\":%zu,\"scale_factor\":%.2f,\"platform\":\"proportional\","
      "\"disks\":%d,\"raid\":\"raid5\",\"worker_fleet\":%d,"
      "\"mean_service_s\":%.6f,\"deadline_s\":%.6f,\"queue_slo_s\":%.6f,"
      "\"max_queue_depth\":%zu,\"tenant_inflight\":%d,"
      "\"cap_watts\":%.3f,\"cap_window_s\":%.4f}\n",
      kTraceSeed, kTenants, kPriorities, params.requests, kScaleFactor,
      kDisks, kWorkerFleet, mean_service_s, protections.relative_deadline_s,
      protections.queue_slo_s, protections.max_queue_depth,
      protections.per_tenant_inflight, capped_cfg.power_cap.cap_watts,
      capped_cfg.power_cap.window_s);
  for (const Point& p : points) {
    PrintPointJson(p.load_factor, "uncapped", p.uncapped,
                   protections.queue_slo_s);
    PrintPointJson(p.load_factor, "capped", p.capped,
                   protections.queue_slo_s);
  }

  // --- Shape checks ------------------------------------------------------
  bool conserved_all = true;
  for (const Point& p : points) {
    conserved_all =
        conserved_all && Conserved(p.uncapped) && Conserved(p.capped);
  }

  bool goodput_monotone = true;
  for (size_t i = 1; i < points.size(); ++i) {
    goodput_monotone =
        goodput_monotone &&
        points[i].uncapped.sessions_completed <=
            points[i - 1].uncapped.sessions_completed &&
        points[i].capped.sessions_completed <=
            points[i - 1].capped.sessions_completed;
  }

  bool hi_priority_bounded = true;
  for (const Point& p : points) {
    hi_priority_bounded =
        hi_priority_bounded &&
        HighPriorityP99QueueSeconds(p.uncapped) <=
            protections.queue_slo_s + 1e-9 &&
        HighPriorityP99QueueSeconds(p.capped) <=
            protections.queue_slo_s + 1e-9;
  }
  const Point& densest = points.back();
  const bool sheds_absorb = Refused(densest.uncapped) > 0 &&
                            Refused(densest.capped) > 0;
  // The ladder must engage somewhere in the capped sweep: heavy shedding
  // can hold the densest point's draw under the cap, but some capped point
  // has to have climbed.
  bool cap_engages = false;
  for (const Point& p : points) {
    cap_engages = cap_engages || !p.capped.governor_events.empty();
  }

  const sim::ArrivalTrace replay_trace = TraceFor(
      params.requests, capacity_interarrival_s / densest.load_factor);
  const sched::ServingReport replay = RunPoint(replay_trace, capped_cfg);
  const bool replays =
      replay.admission_fingerprint == densest.capped.admission_fingerprint &&
      replay.billed_joules == densest.capped.billed_joules &&
      replay.total_joules == densest.capped.total_joules;

  const bool pass = conserved_all && goodput_monotone &&
                    hi_priority_bounded && sheds_absorb && cap_engages &&
                    replays;
  std::printf(
      "\nshape check (bills conserve at every point incl. sheds; goodput "
      "degrades monotonically with load; high-priority p99 queue within "
      "SLO; overload sheds; cap ladder engages; densest capped point "
      "replays bit-exactly): %s\n",
      pass ? "PASS" : "FAIL");
  if (!conserved_all) std::printf("  FAIL: bills do not sum to the meter\n");
  if (!goodput_monotone) {
    std::printf("  FAIL: completed count rose with offered load\n");
  }
  if (!hi_priority_bounded) {
    std::printf("  FAIL: high-priority p99 queue exceeded the SLO\n");
  }
  if (!sheds_absorb) {
    std::printf("  FAIL: no session was refused at %.1fx load\n",
                densest.load_factor);
  }
  if (!cap_engages) {
    std::printf("  FAIL: governor never stepped at any capped point\n");
  }
  if (!replays) std::printf("  FAIL: replay diverged\n");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace ecodb

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  return ecodb::Main(smoke);
}

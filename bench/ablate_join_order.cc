// Ablation A14: join ORDER vs the energy price of time — the N-way sequel
// to A1's algorithm flip.
//
// The planner enumerates every connected join order of each widened TPC-H
// shape (Q3/Q9/Q5/Q14) plus a synthetic big-mid-fat chain, prices each
// order with the two-term `seconds + lambda * joules` model at a fixed DRAM
// residency premium, and reports what each lambda selects: the chosen
// order, its estimated intermediate-result bytes, and its (lambda-free)
// seconds and Joules. Algorithms are pinned to hash joins so every motion
// in the table is a pure ORDER decision.
//
// Shape checks (exit code):
//   1. at least one shape changes join order between lambda = 0 and the
//      highest lambda in the sweep;
//   2. for every shape that flips, the high-lambda order costs fewer
//      Joules and at least as many seconds as the lambda = 0 order (the
//      flip buys energy with time, never the reverse);
//   3. re-planning both endpoints reproduces the same plans bit-exactly.
//
// JSON lines (schema ecodb.joinorder.v1): one header pinning the rig, then
// one line per (shape, lambda) point.

#include <cinttypes>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "catalog/catalog.h"
#include "optimizer/planner.h"
#include "power/platform.h"
#include "storage/ssd.h"
#include "storage/table_storage.h"
#include "tpch/generator.h"
#include "tpch/queries.h"

namespace ecodb {
namespace {

using catalog::Column;
using catalog::DataType;
using catalog::Schema;
using exec::Col;
using exec::Lit;

constexpr double kMemoryPremium = 1e6;
constexpr double kDramWattsPerGib = 0.65;

/// The guaranteed-flip rig from the planner's regression suite: a chain
/// big(40k) - mid(10k) - fat(2k, 400-byte blob, filtered to 500 rows).
/// Right-deep joins fewer rows (fast) but holds the WIDE mid-fat
/// intermediate resident; left-deep builds more rows against only narrow
/// tables. Lambda picks the winner.
struct ChainRig {
  std::unique_ptr<storage::TableStorage> big, mid, fat;

  explicit ChainRig(storage::StorageDevice* dev) {
    Schema big_schema({Column{"bk", DataType::kInt64, 8}});
    big = std::make_unique<storage::TableStorage>(
        101, big_schema, storage::TableLayout::kColumn, dev);
    std::vector<storage::ColumnData> bc(1);
    bc[0].type = DataType::kInt64;
    for (int i = 0; i < 40000; ++i) bc[0].i64.push_back(i % 10000 + 1);
    if (!big->Append(bc).ok()) std::exit(1);

    Schema mid_schema({Column{"tk", DataType::kInt64, 8},
                       Column{"fk", DataType::kInt64, 8}});
    mid = std::make_unique<storage::TableStorage>(
        102, mid_schema, storage::TableLayout::kColumn, dev);
    std::vector<storage::ColumnData> mc(2);
    mc[0].type = DataType::kInt64;
    mc[1].type = DataType::kInt64;
    for (int i = 0; i < 10000; ++i) {
      mc[0].i64.push_back(i + 1);
      mc[1].i64.push_back(i % 2000 + 1);
    }
    if (!mid->Append(mc).ok()) std::exit(1);

    Schema fat_schema({Column{"fk_f", DataType::kInt64, 8},
                       Column{"fp", DataType::kInt64, 8},
                       Column{"blob", DataType::kString, 400}});
    fat = std::make_unique<storage::TableStorage>(
        103, fat_schema, storage::TableLayout::kColumn, dev);
    std::vector<storage::ColumnData> fc(3);
    fc[0].type = DataType::kInt64;
    fc[1].type = DataType::kInt64;
    fc[2].type = DataType::kString;
    for (int i = 0; i < 2000; ++i) {
      fc[0].i64.push_back(i + 1);
      fc[1].i64.push_back(i);
      fc[2].str.push_back(std::string(400, 'x'));
    }
    if (!fat->Append(fc).ok()) std::exit(1);
  }

  optimizer::QuerySpec Spec() const {
    optimizer::QuerySpec spec;
    optimizer::TableAlternatives b, m, f;
    b.name = "big";
    b.variants = {big.get()};
    m.name = "mid";
    m.variants = {mid.get()};
    f.name = "fat";
    f.variants = {fat.get()};
    f.filter = Col("fp") < Lit(int64_t{500});
    spec.relations = {std::move(b), std::move(m), std::move(f)};
    spec.edges = {{0, 1, "bk", "tk"}, {1, 2, "fk", "fk_f"}};
    return spec;
  }
};

std::string OrderName(const optimizer::QuerySpec& spec,
                      const optimizer::PhysicalPlan& plan) {
  std::string out;
  for (int leaf : plan.LeafOrder()) {
    if (!out.empty()) out += ">";
    out += spec.relations[leaf].name;
  }
  return out;
}

struct Point {
  double lambda;
  std::string order;
  double intermediate_bytes;
  double seconds;
  double joules;
};

}  // namespace

int Main(bool smoke) {
  bench::Banner(
      "Ablation A14: join order vs lambda (seconds + lambda * Joules)",
      "widened TPC-H shapes + a big-mid-fat chain; hash joins only; DP over "
      "all connected orders; fixed DRAM residency premium");

  const std::vector<double> lambdas =
      smoke ? std::vector<double>{0.0, 10.0}
            : std::vector<double>{0.0, 0.01, 0.1, 1.0, 10.0, 100.0};

  auto platform = power::MakeFlashScanPlatform();
  storage::SsdDevice ssd("s0", power::SsdSpec{}, platform->meter());

  tpch::TpchConfig config;
  config.scale_factor = smoke ? 0.05 : 0.2;
  catalog::Catalog catalog;
  auto db = tpch::LoadDatabase(config, storage::TableLayout::kColumn, &ssd,
                               &catalog);
  if (!db.ok()) {
    std::printf("load failed: %s\n", std::string(db.status().message()).c_str());
    return 1;
  }
  ChainRig chain(&ssd);

  optimizer::CostModelParams params;
  params.memory_power_premium = kMemoryPremium;
  params.dram_watts_per_gib_override = kDramWattsPerGib;
  optimizer::CostModel model(platform.get(), params);
  optimizer::PlannerOptions options;
  options.enumerate_join_algorithms = false;  // isolate the ORDER decision
  optimizer::Planner planner(&model, options);

  struct ShapeRun {
    std::string name;
    optimizer::QuerySpec spec;
    std::vector<Point> points;
  };
  std::vector<ShapeRun> runs;
  for (tpch::JoinQueryShape& shape : tpch::MakeJoinQueryShapes(*db)) {
    runs.push_back({shape.name, std::move(shape.spec), {}});
  }
  runs.push_back({"chain_fat_blob", chain.Spec(), {}});

  for (ShapeRun& run : runs) {
    for (double lambda : lambdas) {
      auto plan =
          planner.ChoosePlan(run.spec, optimizer::Objective::Balanced(lambda));
      if (!plan.ok()) {
        std::printf("plan failed (%s, lambda=%g): %s\n", run.name.c_str(),
                    lambda, std::string(plan.status().message()).c_str());
        return 1;
      }
      run.points.push_back({lambda, OrderName(run.spec, *plan),
                            plan->est_intermediate_bytes, plan->cost.seconds,
                            plan->cost.joules});
    }
  }

  bench::Table table({"shape", "lambda", "chosen join order",
                      "intermediate (B)", "est (s)", "est (J)"});
  for (const ShapeRun& run : runs) {
    for (const Point& p : run.points) {
      table.AddRow({run.name, bench::Fmt("%g", p.lambda), p.order,
                    bench::Fmt("%.0f", p.intermediate_bytes),
                    bench::Fmt("%.4f", p.seconds),
                    bench::Fmt("%.3f", p.joules)});
    }
  }
  table.Print();

  std::printf("{\"schema\":\"ecodb.joinorder.v1\",\"bench\":\"ablate_join_"
              "order\",\"seed\":%" PRIu64 ",\"scale_factor\":%.2f,"
              "\"memory_power_premium\":%.0e,\"dram_watts_per_gib\":%.2f,"
              "\"platform\":\"flash_scan\",\"algorithms\":\"hash_only\"}\n",
              config.seed, config.scale_factor, kMemoryPremium,
              kDramWattsPerGib);
  for (const ShapeRun& run : runs) {
    for (const Point& p : run.points) {
      std::printf("{\"schema\":\"ecodb.joinorder.v1\",\"shape\":\"%s\","
                  "\"lambda\":%g,\"order\":\"%s\","
                  "\"intermediate_bytes\":%.0f,\"est_seconds\":%.6f,"
                  "\"est_joules\":%.4f}\n",
                  run.name.c_str(), p.lambda, p.order.c_str(),
                  p.intermediate_bytes, p.seconds, p.joules);
    }
  }

  // Shape check 1: some shape reorders as lambda grows.
  int flipped = 0;
  bool flip_buys_joules = true;
  for (const ShapeRun& run : runs) {
    const Point& first = run.points.front();
    const Point& last = run.points.back();
    if (first.order == last.order) continue;
    ++flipped;
    // Shape check 2: the reorder trades seconds for Joules, not the
    // reverse (costs are lambda-free, so the two plans compare directly).
    if (!(last.joules < first.joules && last.seconds >= first.seconds)) {
      flip_buys_joules = false;
      std::printf("  FAIL: %s flipped but J %.3f -> %.3f, s %.4f -> %.4f\n",
                  run.name.c_str(), first.joules, last.joules, first.seconds,
                  last.seconds);
    }
  }

  // Shape check 3: both endpoints replan bit-exactly.
  bool deterministic = true;
  for (const ShapeRun& run : runs) {
    for (double lambda : {lambdas.front(), lambdas.back()}) {
      auto a =
          planner.ChoosePlan(run.spec, optimizer::Objective::Balanced(lambda));
      auto b =
          planner.ChoosePlan(run.spec, optimizer::Objective::Balanced(lambda));
      if (!a.ok() || !b.ok() || a->Describe(run.spec) != b->Describe(run.spec))
        deterministic = false;
    }
  }

  const bool any_flip = flipped > 0;
  std::printf("\nshape check (>=1 order flip across the lambda sweep; flips "
              "buy Joules with seconds; replans are deterministic): %s\n",
              any_flip && flip_buys_joules && deterministic ? "PASS" : "FAIL");
  if (!any_flip) std::printf("  FAIL: no shape changed join order\n");
  if (!deterministic) std::printf("  FAIL: replan diverged\n");
  return any_flip && flip_buys_joules && deterministic ? 0 : 1;
}

}  // namespace ecodb

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  return ecodb::Main(smoke);
}

// JouleSort-style benchmark (Section 2.3 cites JouleSort [RSR+07]: "a
// balanced energy-efficiency benchmark" measuring records sorted per Joule).
//
// The harness sorts a fixed record set through the engine's SortOp and
// reports records/Joule across configurations that trade memory for I/O:
// an in-memory sort, external sorts spilling to SSD and to disk, and a
// low-power-CPU platform — the balance JouleSort is about.

#include <memory>

#include "bench_util.h"
#include "exec/scan.h"
#include "exec/sort_limit.h"
#include "power/platform.h"
#include "storage/hdd.h"
#include "storage/ssd.h"
#include "storage/table_storage.h"
#include "util/random.h"

namespace ecodb {
namespace {

using catalog::Column;
using catalog::DataType;
using catalog::Schema;

constexpr int kRecords = 200000;

Schema RecordSchema() {
  // JouleSort records: 10-byte key, 90-byte payload (modeled widths).
  return Schema({Column{"key", DataType::kInt64, 8},
                 Column{"payload", DataType::kString, 90}});
}

std::vector<storage::ColumnData> MakeRecords() {
  std::vector<storage::ColumnData> cols(2);
  cols[0].type = DataType::kInt64;
  cols[1].type = DataType::kString;
  Rng rng(1977);
  for (int i = 0; i < kRecords; ++i) {
    cols[0].i64.push_back(static_cast<int64_t>(rng.Next() >> 1));
    cols[1].str.push_back(rng.AlphaString(12));  // stand-in payload
  }
  return cols;
}

struct SortOutcome {
  double seconds = 0;
  double joules = 0;
  bool spilled = false;
  bool sorted = true;
  double RecordsPerJoule() const {
    return joules > 0 ? kRecords / joules : 0;
  }
};

SortOutcome RunSort(power::HardwarePlatform* platform,
                    storage::StorageDevice* table_device,
                    storage::StorageDevice* spill_device,
                    uint64_t memory_budget,
                    const std::vector<storage::ColumnData>& records) {
  storage::TableStorage table(1, RecordSchema(),
                              storage::TableLayout::kColumn, table_device);
  if (!table.Append(records).ok()) std::exit(1);

  exec::ExecContext ctx(platform, exec::ExecOptions{});
  exec::SortOp sort(std::make_unique<exec::TableScanOp>(&table),
                    {{"key", true}}, memory_budget, spill_device);
  auto result = exec::CollectAll(&sort, &ctx);
  if (!result.ok()) std::exit(1);
  const exec::QueryStats stats = ctx.Finish();

  SortOutcome out;
  out.seconds = stats.elapsed_seconds;
  out.joules = stats.Joules();
  out.spilled = sort.spilled();
  int64_t prev = INT64_MIN;
  for (const auto& batch : result->batches) {
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      const int64_t k = batch.column(0).i64[r];
      if (k < prev) out.sorted = false;
      prev = k;
    }
  }
  return out;
}

}  // namespace

int Main() {
  bench::Banner(
      "JouleSort-style: records sorted per Joule across configurations",
      "200k records (10 B key + 90 B payload modeled); in-memory vs "
      "external sorts; server vs low-power platform");

  const auto records = MakeRecords();
  bench::Table table({"configuration", "time (s)", "energy (J)", "spilled",
                      "records/J"});

  struct Config {
    const char* name;
    bool low_power;
    bool spill_to_hdd;
    uint64_t budget;
  };
  const uint64_t full = UINT64_MAX;
  const uint64_t tight = 2ULL << 20;  // forces the external path
  const Config configs[] = {
      {"server, in-memory", false, false, full},
      {"server, external on SSD", false, false, tight},
      {"server, external on disk", false, true, tight},
      {"low-power node, in-memory", true, false, full},
  };

  std::vector<SortOutcome> outcomes;
  for (const Config& c : configs) {
    auto platform = c.low_power ? power::MakeProportionalPlatform()
                                : power::MakeDl785Platform();
    storage::SsdDevice ssd("data-ssd", power::SsdSpec{}, platform->meter());
    storage::HddDevice hdd("spill-hdd", power::HddSpec{}, platform->meter());
    storage::StorageDevice* spill = c.spill_to_hdd
                                        ? static_cast<storage::StorageDevice*>(&hdd)
                                        : &ssd;
    const SortOutcome out =
        RunSort(platform.get(), &ssd, spill, c.budget, records);
    outcomes.push_back(out);
    table.AddRow({c.name, bench::Fmt("%.3f", out.seconds),
                  bench::Fmt("%.1f", out.joules),
                  out.spilled ? "yes" : "no",
                  bench::Fmt("%.0f", out.RecordsPerJoule())});
    if (!out.sorted) {
      std::printf("FAIL: output not sorted for %s\n", c.name);
      return 1;
    }
  }
  table.Print();

  // Shape: spilling costs energy; spilling to disk costs more than SSD;
  // the balanced low-power node wins records/Joule (JouleSort's finding).
  const bool shape = outcomes[1].joules > outcomes[0].joules &&
                     outcomes[2].joules > outcomes[1].joules &&
                     outcomes[3].RecordsPerJoule() >
                         outcomes[0].RecordsPerJoule();
  std::printf("shape check (spill costs energy; disk > SSD; balanced "
              "low-power node wins records/J): %s\n",
              shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}

}  // namespace ecodb

int main() { return ecodb::Main(); }

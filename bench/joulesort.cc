// JouleSort-style benchmark (Section 2.3 cites JouleSort [RSR+07]: "a
// balanced energy-efficiency benchmark" measuring records sorted per Joule).
//
// The harness sorts a fixed record set through the engine's sort operators
// and reports records/Joule across two sweeps:
//
//  1. Configuration sweep (serial SortOp): in-memory vs external sorts
//     spilling to SSD and to disk, and a low-power-CPU platform — the
//     memory/I/O/platform balance JouleSort is about.
//  2. Dop sweep (morsel-parallel ParallelSortOp): dop 1/2/4/8, in-memory
//     and spilling. Results and modeled charges are dop-invariant; only the
//     CPU critical path — and with it the energy window — shrinks
//     (race-to-idle). Emitted as schema-versioned JSON lines for plotting
//     (see EXPERIMENTS.md "JouleSort methodology").

#include <cinttypes>
#include <memory>
#include <string>
#include <utility>

#include "bench_util.h"
#include "exec/parallel_scan.h"
#include "exec/parallel_sort.h"
#include "exec/scan.h"
#include "exec/sort_limit.h"
#include "exec/topk.h"
#include "optimizer/planner.h"
#include "power/platform.h"
#include "storage/hdd.h"
#include "storage/ssd.h"
#include "storage/table_storage.h"
#include "util/random.h"

namespace ecodb {
namespace {

using catalog::Column;
using catalog::DataType;
using catalog::Schema;

constexpr int kRecords = 200000;

Schema RecordSchema() {
  // JouleSort records: 10-byte key, 90-byte payload (modeled widths).
  return Schema({Column{"key", DataType::kInt64, 8},
                 Column{"payload", DataType::kString, 90}});
}

std::vector<storage::ColumnData> MakeRecords() {
  std::vector<storage::ColumnData> cols(2);
  cols[0].type = DataType::kInt64;
  cols[1].type = DataType::kString;
  Rng rng(1977);
  for (int i = 0; i < kRecords; ++i) {
    cols[0].i64.push_back(static_cast<int64_t>(rng.Next() >> 1));
    cols[1].str.push_back(rng.AlphaString(12));  // stand-in payload
  }
  return cols;
}

struct SortOutcome {
  double seconds = 0;
  double joules = 0;
  double cpu_core_seconds = 0;
  double cpu_elapsed_seconds = 0;
  int active_cores = 1;
  uint64_t io_bytes = 0;
  bool spilled = false;
  bool sorted = true;
  double RecordsPerJoule() const {
    return joules > 0 ? kRecords / joules : 0;
  }
};

/// Sorts `records` at the given dop. `parallel_op` selects ParallelSortOp
/// behind a morsel-parallel scan (valid at any dop, including 1) vs the
/// serial SortOp behind a sequential scan. Both return identically ordered
/// rows, and ParallelSortOp's modeled charges are dop-invariant — the
/// engine's determinism contract (DESIGN.md §7).
SortOutcome RunSort(power::HardwarePlatform* platform,
                    storage::StorageDevice* table_device,
                    storage::StorageDevice* spill_device,
                    uint64_t memory_budget,
                    const std::vector<storage::ColumnData>& records,
                    int dop, bool parallel_op) {
  storage::TableStorage table(1, RecordSchema(),
                              storage::TableLayout::kColumn, table_device);
  if (!table.Append(records).ok()) std::exit(1);

  exec::ExecOptions options;
  options.dop = dop;
  exec::ExecContext ctx(platform, options);
  const std::vector<exec::SortKey> keys = {{"key", true}};
  exec::OperatorPtr root;
  exec::ParallelSortOp* parallel_sort = nullptr;
  exec::SortOp* serial_sort = nullptr;
  if (parallel_op) {
    auto op = std::make_unique<exec::ParallelSortOp>(
        std::make_unique<exec::ParallelTableScanOp>(&table), keys,
        memory_budget, spill_device);
    parallel_sort = op.get();
    root = std::move(op);
  } else {
    auto op = std::make_unique<exec::SortOp>(
        std::make_unique<exec::TableScanOp>(&table), keys, memory_budget,
        spill_device);
    serial_sort = op.get();
    root = std::move(op);
  }
  auto result = exec::CollectAll(root.get(), &ctx);
  if (!result.ok()) std::exit(1);
  const exec::QueryStats stats = ctx.Finish();

  SortOutcome out;
  out.seconds = stats.elapsed_seconds;
  out.joules = stats.Joules();
  out.cpu_core_seconds = stats.cpu_seconds;
  out.cpu_elapsed_seconds = stats.cpu_elapsed_seconds;
  out.active_cores = stats.active_cores;
  out.io_bytes = stats.io_bytes;
  out.spilled =
      parallel_sort ? parallel_sort->spilled() : serial_sort->spilled();
  int64_t prev = INT64_MIN;
  size_t rows = 0;
  for (const auto& batch : result->batches) {
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      const int64_t k = batch.column(0).i64[r];
      if (k < prev) out.sorted = false;
      prev = k;
      ++rows;
    }
  }
  if (rows != static_cast<size_t>(kRecords)) out.sorted = false;
  return out;
}

struct TopKOutcome {
  double seconds = 0;
  double joules = 0;
  double cpu_core_seconds = 0;
  double cpu_elapsed_seconds = 0;
  double instructions = 0;
  uint64_t io_bytes = 0;
  uint64_t spill_bytes = 0;
  std::vector<std::pair<int64_t, std::string>> rows;
  bool sorted = true;
};

/// ORDER BY key LIMIT k through either the fused ParallelTopKOp or the
/// unfused ParallelSortOp + LimitOp pair, behind a morsel-parallel scan.
/// Both emit byte-identical rows; the fused path does O(n log k) work and
/// only spills its k-row candidate set.
TopKOutcome RunTopK(power::HardwarePlatform* platform, uint64_t memory_budget,
                    const std::vector<storage::ColumnData>& records, int dop,
                    size_t k, bool fused) {
  storage::SsdDevice ssd("data-ssd", power::SsdSpec{}, platform->meter());
  storage::TableStorage table(1, RecordSchema(),
                              storage::TableLayout::kColumn, &ssd);
  if (!table.Append(records).ok()) std::exit(1);
  const uint64_t scan_bytes = table.ScanBytes({0, 1});

  exec::ExecOptions options;
  options.dop = dop;
  exec::ExecContext ctx(platform, options);
  const std::vector<exec::SortKey> keys = {{"key", true}};
  exec::OperatorPtr root;
  if (fused) {
    root = std::make_unique<exec::ParallelTopKOp>(
        std::make_unique<exec::ParallelTableScanOp>(&table), keys, k,
        memory_budget, &ssd);
  } else {
    root = std::make_unique<exec::LimitOp>(
        std::make_unique<exec::ParallelSortOp>(
            std::make_unique<exec::ParallelTableScanOp>(&table), keys,
            memory_budget, &ssd),
        k);
  }
  auto result = exec::CollectAll(root.get(), &ctx);
  if (!result.ok()) std::exit(1);
  const exec::QueryStats stats = ctx.Finish();

  TopKOutcome out;
  out.seconds = stats.elapsed_seconds;
  out.joules = stats.Joules();
  out.cpu_core_seconds = stats.cpu_seconds;
  out.cpu_elapsed_seconds = stats.cpu_elapsed_seconds;
  out.instructions = stats.cpu_instructions;
  out.io_bytes = stats.io_bytes;
  out.spill_bytes =
      stats.io_bytes > scan_bytes ? stats.io_bytes - scan_bytes : 0;
  int64_t prev = INT64_MIN;
  for (const auto& batch : result->batches) {
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      const int64_t key = batch.column(0).i64[r];
      if (key < prev) out.sorted = false;
      prev = key;
      out.rows.emplace_back(key, batch.column(1).str[r]);
    }
  }
  if (out.rows.size() != std::min<size_t>(k, kRecords)) out.sorted = false;
  return out;
}

}  // namespace

int Main() {
  bench::Banner(
      "JouleSort-style: records sorted per Joule across configurations",
      "200k records (10 B key + 90 B payload modeled); in-memory vs "
      "external sorts; server vs low-power platform; dop sweep");

  const auto records = MakeRecords();
  bench::Table table({"configuration", "time (s)", "energy (J)", "spilled",
                      "records/J"});

  struct Config {
    const char* name;
    bool low_power;
    bool spill_to_hdd;
    uint64_t budget;
  };
  const uint64_t full = UINT64_MAX;
  const uint64_t tight = 2ULL << 20;  // forces the external path
  const Config configs[] = {
      {"server, in-memory", false, false, full},
      {"server, external on SSD", false, false, tight},
      {"server, external on disk", false, true, tight},
      {"low-power node, in-memory", true, false, full},
  };

  std::vector<SortOutcome> outcomes;
  for (const Config& c : configs) {
    auto platform = c.low_power ? power::MakeProportionalPlatform()
                                : power::MakeDl785Platform();
    storage::SsdDevice ssd("data-ssd", power::SsdSpec{}, platform->meter());
    storage::HddDevice hdd("spill-hdd", power::HddSpec{}, platform->meter());
    storage::StorageDevice* spill = c.spill_to_hdd
                                        ? static_cast<storage::StorageDevice*>(&hdd)
                                        : &ssd;
    const SortOutcome out = RunSort(platform.get(), &ssd, spill, c.budget,
                                    records, /*dop=*/1,
                                    /*parallel_op=*/false);
    outcomes.push_back(out);
    table.AddRow({c.name, bench::Fmt("%.3f", out.seconds),
                  bench::Fmt("%.1f", out.joules),
                  out.spilled ? "yes" : "no",
                  bench::Fmt("%.0f", out.RecordsPerJoule())});
    if (!out.sorted) {
      std::printf("FAIL: output not sorted for %s\n", c.name);
      return 1;
    }
  }
  table.Print();

  // Shape: spilling costs energy; spilling to disk costs more than SSD;
  // the balanced low-power node wins records/Joule (JouleSort's finding).
  bool shape = outcomes[1].joules > outcomes[0].joules &&
               outcomes[2].joules > outcomes[1].joules &&
               outcomes[3].RecordsPerJoule() >
                   outcomes[0].RecordsPerJoule();
  std::printf("shape check (spill costs energy; disk > SSD; balanced "
              "low-power node wins records/J): %s\n\n",
              shape ? "PASS" : "FAIL");

  // --- Dop sweep: morsel-parallel external sort, JSON lines ---------------
  // Header line pins the schema version and the workload; one line per
  // (dop, spill) point follows. Busy core-seconds stay constant across dop
  // while the CPU critical path shrinks — parallelism only narrows the
  // energy window (race-to-idle), it never changes the modeled work.
  // Dop candidates come from the platform's core count (the engine-level
  // ladder policy), not a hand-picked list.
  const std::vector<int> dops = [] {
    auto p = power::MakeDl785Platform();
    return optimizer::PlatformDopLadder(*p);
  }();
  std::printf("{\"schema\":\"ecodb.joulesort.v1\",\"records\":%d,"
              "\"key_bytes\":10,\"payload_bytes\":90,\"platform\":\"dl785\"}"
              "\n",
              kRecords);
  bool sweep_ok = true;
  for (const bool spill : {false, true}) {
    SortOutcome base;
    for (const int dop : dops) {
      auto platform = power::MakeDl785Platform();
      storage::SsdDevice ssd("data-ssd", power::SsdSpec{}, platform->meter());
      const SortOutcome out =
          RunSort(platform.get(), &ssd, &ssd, spill ? tight : full, records,
                  dop, /*parallel_op=*/true);
      std::printf(
          "{\"bench\":\"joulesort\",\"dop\":%d,\"spill\":\"%s\","
          "\"sim_seconds\":%.6f,\"joules\":%.3f,\"records_per_joule\":%.1f,"
          "\"cpu_core_seconds\":%.6f,\"cpu_elapsed_seconds\":%.6f,"
          "\"active_cores\":%d,\"io_bytes\":%" PRIu64 "}\n",
          dop, spill ? "ssd" : "none", out.seconds, out.joules,
          out.RecordsPerJoule(), out.cpu_core_seconds,
          out.cpu_elapsed_seconds, out.active_cores, out.io_bytes);
      if (!out.sorted || out.spilled != spill) sweep_ok = false;
      if (dop == 1) {
        base = out;
      } else {
        // Modeled work is dop-invariant; the critical path is not.
        if (std::abs(out.cpu_core_seconds - base.cpu_core_seconds) >
            1e-9 * base.cpu_core_seconds) {
          sweep_ok = false;
        }
        if (out.io_bytes != base.io_bytes) sweep_ok = false;
        if (out.cpu_elapsed_seconds >= base.cpu_elapsed_seconds) {
          sweep_ok = false;
        }
      }
    }
  }
  std::printf("dop sweep check (busy core-seconds and io bytes constant; "
              "cpu critical path shrinks with dop): %s\n",
              sweep_ok ? "PASS" : "FAIL");

  // --- Top-k sweep: ORDER BY + LIMIT, fused vs sort-then-limit ------------
  // For each k the same query runs fused (bounded-heap top-k) and unfused
  // (full external sort, then limit) across the platform dop ladder, under
  // a budget the full sort must spill. Small k is where the energy drops:
  // the fused path does O(n log k) comparisons and writes zero spill bytes
  // when its k-row candidate set fits the budget.
  std::printf("\n{\"schema\":\"ecodb.topk.v1\",\"records\":%d,"
              "\"platform\":\"dl785\",\"budget_bytes\":%" PRIu64
              ",\"ks\":[1,10,100,%d]}\n",
              kRecords, tight, kRecords);
  bool topk_ok = true;
  for (const size_t k : {size_t{1}, size_t{10}, size_t{100},
                         size_t{kRecords}}) {
    TopKOutcome fused_base, unfused_base;
    for (const bool fused : {true, false}) {
      TopKOutcome base;
      for (const int dop : dops) {
        auto platform = power::MakeDl785Platform();
        const TopKOutcome out =
            RunTopK(platform.get(), tight, records, dop, k, fused);
        std::printf(
            "{\"bench\":\"topk\",\"k\":%zu,\"path\":\"%s\",\"dop\":%d,"
            "\"sim_seconds\":%.6f,\"joules\":%.3f,\"instructions\":%.1f,"
            "\"cpu_core_seconds\":%.6f,\"cpu_elapsed_seconds\":%.6f,"
            "\"io_bytes\":%" PRIu64 ",\"spill_bytes\":%" PRIu64 "}\n",
            k, fused ? "topk" : "sort+limit", dop, out.seconds, out.joules,
            out.instructions, out.cpu_core_seconds, out.cpu_elapsed_seconds,
            out.io_bytes, out.spill_bytes);
        if (!out.sorted) topk_ok = false;
        if (dop == dops.front()) {
          base = out;
        } else {
          // Determinism contract: rows and modeled charges are
          // dop-invariant; only the critical path may shrink.
          if (out.rows != base.rows) topk_ok = false;
          if (out.instructions != base.instructions) topk_ok = false;
          if (out.io_bytes != base.io_bytes) topk_ok = false;
          if (std::abs(out.cpu_core_seconds - base.cpu_core_seconds) >
              1e-9 * base.cpu_core_seconds) {
            topk_ok = false;
          }
        }
      }
      (fused ? fused_base : unfused_base) = base;
    }
    // Plan equivalence: the fused path is just a cheaper physical plan.
    if (fused_base.rows != unfused_base.rows) topk_ok = false;
    if (k <= 100) {
      if (!(fused_base.instructions < unfused_base.instructions)) {
        topk_ok = false;
      }
      if (fused_base.spill_bytes != 0 || unfused_base.spill_bytes == 0) {
        topk_ok = false;
      }
      if (!(fused_base.joules < unfused_base.joules)) topk_ok = false;
    }
  }
  std::printf("top-k sweep check (fused rows identical; charges "
              "dop-invariant; fewer instructions, zero spill bytes, fewer "
              "Joules for k <= 100): %s\n",
              topk_ok ? "PASS" : "FAIL");
  return (shape && sweep_ok && topk_ok) ? 0 : 1;
}

}  // namespace ecodb

int main() { return ecodb::Main(); }

// Ablation A7 (Section 2.4, after [BH07]): energy-proportionality profiles.
//
// "Servers should use no power when not used and power only in proportion
// to delivered performance ... Such ideal energy-proportional systems would
// offer constant energy efficiency at all performance levels rather than
// the best energy efficiency only at peak performance."
//
// The harness profiles three platform classes — 2008-era inelastic,
// modern partially-proportional, and ideal — printing power and relative EE
// across the utilization range plus the summary proportionality metrics,
// and highlights the 10-50% utilization band where Barroso & Hoelzle found
// real servers spend their lives.

#include <functional>

#include "bench_util.h"
#include "power/cpu_power.h"
#include "power/proportionality.h"

namespace ecodb {
namespace {

struct Profile {
  const char* name;
  std::function<double(double)> power;
};

}  // namespace

int Main() {
  bench::Banner(
      "Ablation A7: energy-proportionality profiles",
      "Power and relative energy efficiency vs utilization for three "
      "platform classes");

  // Inelastic 2008 server: ~70% of peak power at idle ([PN08]-style).
  // Partially proportional: linear CPU + fixed floor.
  // Ideal: power tracks utilization exactly.
  power::CpuSpec modern;
  modern.sockets = 2;
  modern.cores_per_socket = 8;
  modern.pstates = {{"P0", 2.6, 8.0}};
  modern.socket_idle_watts = 20.0;
  power::CpuPowerModel modern_cpu(modern);

  const std::vector<Profile> profiles = {
      {"inelastic-2008", [](double u) { return 300.0 * (0.70 + 0.30 * u); }},
      {"partial-modern",
       [&](double u) { return 40.0 + modern_cpu.WattsAtUtilization(u); }},
      {"ideal-proportional", [](double u) { return 250.0 * u + 1e-6; }},
  };

  bench::Table table({"platform", "idle W", "peak W", "dynamic range",
                      "proportionality idx", "rel EE @10%", "rel EE @30%",
                      "rel EE @50%"});
  std::vector<power::ProportionalityReport> reports;
  for (const Profile& p : profiles) {
    const power::PowerCurve curve = power::PowerCurve::Sample(p.power, 100);
    const power::ProportionalityReport r = power::AnalyzeCurve(curve);
    reports.push_back(r);
    table.AddRow({p.name, bench::Fmt("%.0f", r.idle_watts),
                  bench::Fmt("%.0f", r.peak_watts),
                  bench::Fmt("%.2f", r.dynamic_range),
                  bench::Fmt("%.2f", r.proportionality_index),
                  bench::Fmt("%.2f", r.relative_ee[10]),
                  bench::Fmt("%.2f", r.relative_ee[30]),
                  bench::Fmt("%.2f", r.relative_ee[50])});
  }
  table.Print();

  std::printf("at 30%% utilization the inelastic server delivers %.0f%% of "
              "its peak EE; the ideal one delivers %.0f%%\n",
              reports[0].relative_ee[30] * 100.0,
              reports[2].relative_ee[30] * 100.0);
  const bool shape = reports[0].proportionality_index <
                         reports[1].proportionality_index &&
                     reports[1].proportionality_index <
                         reports[2].proportionality_index &&
                     reports[0].relative_ee[30] < 0.6 &&
                     reports[2].relative_ee[30] > 0.95;
  std::printf("shape check (EE at partial load ranks by proportionality): "
              "%s\n", shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}

}  // namespace ecodb

int main() { return ecodb::Main(); }

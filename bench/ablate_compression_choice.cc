// Ablation A2 (Section 4.1 / Figure 2): the compression decision as a
// function of the CPU:storage power ratio and the optimization objective.
//
// "Compression techniques, for example, trade off CPU cycles for reduced
// bandwidth requirements ... By turning the focus on energy efficiency,
// tradeoffs like this one will need to be re-examined."
//
// The harness asks the design advisor whether to compress a scan-heavy
// column while sweeping CPU active power from laptop-class to server-class,
// keeping the SSD fixed. Low-power CPUs make compression an energy win;
// power-hungry CPUs flip the energy choice to uncompressed while the
// performance choice stays compressed — the Figure 2 crossover.

#include <memory>

#include "advisor/design_advisor.h"
#include "bench_util.h"
#include "power/platform.h"
#include "storage/ssd.h"
#include "storage/table_storage.h"

namespace ecodb {
namespace {

using catalog::Column;
using catalog::DataType;
using catalog::Schema;

std::unique_ptr<power::HardwarePlatform> MakePlatform(double cpu_watts) {
  power::CpuSpec cpu;
  cpu.sockets = 1;
  cpu.cores_per_socket = 1;
  cpu.pstates = {{"P0", 3.0, cpu_watts}};
  cpu.socket_idle_watts = 0.0;
  cpu.socket_sleep_watts = 0.0;
  power::DramSpec dram;
  dram.background_watts_per_gib = 0.0;
  dram.access_joules_per_byte = 0.0;
  power::ChassisSpec chassis;
  chassis.base_watts = 0.0;
  chassis.tray_watts = 0.0;
  return std::make_unique<power::HardwarePlatform>(cpu, dram, chassis,
                                                   power::FacilitySpec{1.0,
                                                                       0.0});
}

}  // namespace

int Main() {
  bench::Banner(
      "Ablation A2: compression choice vs CPU power and objective",
      "Sequential int64 column on a ~1.7 W SSD; advisor decides per "
      "objective as CPU active power sweeps 0.5 W -> 90 W");

  bench::Table table({"cpu watts", "perf objective", "energy objective",
                      "energy est uncmp (J)", "energy est delta (J)"});

  std::string energy_at_low, energy_at_high, perf_any;
  // The low end of the sweep is embedded/blade-class silicon — exactly the
  // heterogeneous hardware Section 2.4 expects data centers to offer.
  for (double watts : {0.5, 1.0, 2.0, 5.0, 15.0, 45.0, 90.0}) {
    auto platform = MakePlatform(watts);
    power::SsdSpec ssd_spec;
    ssd_spec.read_bw_bytes_per_s = 100e6;
    storage::SsdDevice ssd("ssd", ssd_spec, platform->meter());

    Schema schema({Column{"seq", DataType::kInt64, 8}});
    storage::TableStorage tbl(1, schema, storage::TableLayout::kColumn,
                              &ssd);
    std::vector<storage::ColumnData> cols(1);
    cols[0].type = DataType::kInt64;
    for (int i = 0; i < 100000; ++i) cols[0].i64.push_back(i);
    if (!tbl.Append(cols).ok()) return 1;

    optimizer::CostModelParams params;
    params.costs.decode_scale = 50.0;  // [HLA+06]-style decode weight
    optimizer::CostModel model(platform.get(), params);

    auto perf = advisor::RecommendCompression(
        tbl, {storage::CompressionKind::kDelta}, &model,
        optimizer::Objective::Performance());
    auto energy = advisor::RecommendCompression(
        tbl, {storage::CompressionKind::kDelta}, &model,
        optimizer::Objective::Energy());
    if (!perf.ok() || !energy.ok()) return 1;

    // Price both alternatives explicitly for the table.
    auto price = [&](storage::CompressionKind kind) {
      storage::TableStorage copy(2, schema, storage::TableLayout::kColumn,
                                 &ssd);
      (void)copy.Append(cols);
      (void)copy.SetCompression("seq", kind);
      optimizer::ResourceEstimate d = model.ScanDemand(copy, {0});
      return model.Price(d, 1, 0);
    };
    const optimizer::PlanCost cost_none =
        price(storage::CompressionKind::kNone);
    const optimizer::PlanCost cost_delta =
        price(storage::CompressionKind::kDelta);

    const char* pname =
        storage::CompressionKindName(perf->choices[0].kind);
    const char* ename =
        storage::CompressionKindName(energy->choices[0].kind);
    table.AddRow({bench::Fmt("%.0f", watts), pname, ename,
                  bench::Fmt("%.4f", cost_none.joules),
                  bench::Fmt("%.4f", cost_delta.joules)});
    if (watts == 0.5) energy_at_low = ename;
    if (watts == 90.0) energy_at_high = ename;
    perf_any = pname;
  }
  table.Print();

  const bool shape = energy_at_low == "delta" && energy_at_high == "none" &&
                     perf_any == "delta";
  std::printf("shape check (low-power CPU compresses for energy, high-power "
              "CPU does not; performance always compresses): %s\n",
              shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}

}  // namespace ecodb

int main() { return ecodb::Main(); }

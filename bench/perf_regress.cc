// Perf-regression harness: a fixed seeded suite of raw-speed measurements
// persisted as `BENCH_engine.json` (schema `ecodb.perfregress.v1`) so every
// future PR is gated against the committed baseline.
//
// Suite items:
//   - codec decode throughput for bitpack/FOR/RLE/delta (fast kernels),
//     each with its speedup over the reference scalar decoder;
//   - bare table scan over a seeded table (the query normalization lane);
//   - filter-scan rows/sec (fused mask evaluation over a seeded table);
//   - Q1-style grouped aggregate (sum/sum-expression/count by key);
//   - top-k (ORDER BY ... LIMIT via the bounded-heap operator).
//
// Wall-clock portability: absolute seconds are machine-specific, so every
// item's wall time is normalized by a calibration lane (reference scalar
// FOR decode of a fixed buffer) interleaved with the item's own reps; the
// recorded value is the median of per-rep item/calibration ratios, which
// cancels host-load drift and is robust to spike outliers. The committed
// baseline stores that *ratio*; a >10% ratio increase fails the check on
// any machine. Simulated Joules/query are deterministic by the DESIGN §7
// contract and use the same 10% gate — any drift there is an accounting
// change, not noise.
//
// Modes:
//   perf_regress --check [path]   compare against baseline (default mode;
//                                 path defaults to BENCH_engine.json)
//   perf_regress --write [path]   measure and (re)write the baseline
//   perf_regress --smoke          fewer reps + wider wall tolerance (CI)
//
// ECODB_PERF_REGRESS_SELFTEST=<mult> inflates measured wall ratios and
// Joules by <mult> after measurement; scripts/bench_regress.sh uses it to
// prove the comparator actually fails on a regression.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "exec/aggregate.h"
#include "exec/filter_project.h"
#include "exec/scan.h"
#include "exec/topk.h"
#include "power/platform.h"
#include "storage/compression.h"
#include "storage/ssd.h"
#include "storage/table_storage.h"
#include "util/random.h"

namespace ecodb {
namespace {

using catalog::Column;
using catalog::DataType;
using catalog::Schema;
using exec::AggFunc;
using exec::AggregateItem;
using exec::And;
using exec::Col;
using exec::ExecContext;
using exec::ExecOptions;
using exec::Lit;
using exec::QueryStats;
using storage::CompressionKind;

constexpr const char* kSchemaTag = "ecodb.perfregress.v1";
constexpr const char* kDefaultBaseline = "BENCH_engine.json";
constexpr size_t kCodecValues = 64 * 1024;
constexpr size_t kTableRows = 120000;
constexpr uint64_t kSeed = 20260808;

// One measured (or baseline) suite entry. `wall_norm` is the median
// same-window ratio of the item's wall time to its normalization lane
// (scalar-decode calibration for codec items and the bare scan; the bare
// scan for operator query items); `joules` is the simulated energy ledger
// for query items (0 for pure codec items); `speedup` is the fast-vs-scalar
// decode ratio for codec items (0 otherwise).
struct Item {
  std::string name;
  double wall_norm = 0.0;
  double joules = 0.0;
  double speedup = 0.0;
};

struct SuiteResult {
  double calib_seconds = 0.0;
  std::vector<Item> items;
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Best-of-reps wall time of `fn` in seconds (min is the standard noise
// rejection for throughput microbenchmarks).
template <typename Fn>
double BestWall(int reps, Fn&& fn) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    const double t0 = Now();
    fn();
    const double t1 = Now();
    best = std::min(best, t1 - t0);
  }
  return best;
}

// Interleaved measurement: each rep times every lane back-to-back, so a
// host-load change hits all lanes of the same rep window alike and cancels
// in the per-rep ratio. Lanes whose single invocation is very short are
// inner-looped until each timed sample spans at least ~1 ms, so scheduler
// quanta and timer granularity do not dominate a 60 us kernel.
struct Lane {
  explicit Lane(std::function<void()> f) : fn(std::move(f)) {}
  std::function<void()> fn;
  std::vector<double> samples;  // per-invocation seconds, one per rep
  int iters = 1;
};

void MeasureInterleaved(int reps, std::vector<Lane>* lanes) {
  constexpr double kMinSampleSeconds = 4e-3;
  for (Lane& l : *lanes) {
    const double t0 = Now();
    l.fn();
    const double t1 = Now();
    const double once = std::max(t1 - t0, 1e-9);
    l.iters = static_cast<int>(
        std::min(256.0, std::max(1.0, kMinSampleSeconds / once)));
  }
  for (int r = 0; r < reps; ++r) {
    for (Lane& l : *lanes) {
      const double t0 = Now();
      for (int k = 0; k < l.iters; ++k) l.fn();
      const double t1 = Now();
      l.samples.push_back((t1 - t0) / l.iters);
    }
  }
}

// Median of per-rep num/den ratios: min-of-reps has a ~10% spread between
// a lucky run and a typical one (whether rep r hits the distribution floor
// is itself random), which flaps a 10% gate; the median of same-window
// ratios is stable run-to-run AND still shifts fully under a real
// regression, which moves every rep.
double MedianRatio(const std::vector<double>& num,
                   const std::vector<double>& den) {
  std::vector<double> r(num.size());
  for (size_t i = 0; i < num.size(); ++i) {
    r[i] = den[i] > 0.0 ? num[i] / den[i] : 0.0;
  }
  std::sort(r.begin(), r.end());
  const size_t n = r.size();
  if (n == 0) return 0.0;
  return n % 2 ? r[n / 2] : 0.5 * (r[n / 2 - 1] + r[n / 2]);
}

std::vector<int64_t> CodecData(const std::string& pattern) {
  Rng rng(kSeed);
  std::vector<int64_t> v;
  v.reserve(kCodecValues);
  for (size_t i = 0; i < kCodecValues; ++i) {
    if (pattern == "sequential") {
      v.push_back(static_cast<int64_t>(i));
    } else if (pattern == "runs") {
      v.push_back(static_cast<int64_t>(i / 64));
    } else {
      v.push_back(rng.Uniform(0, 1 << 20));
    }
  }
  return v;
}

// Decode wall time for one codec instance over a prepared buffer.
double DecodeSeconds(const storage::Int64Codec& codec,
                     const std::vector<uint8_t>& buf, int reps) {
  std::vector<int64_t> out;
  return BestWall(reps, [&] {
    if (!codec.Decode(buf, &out).ok()) {
      std::fprintf(stderr, "decode failed\n");
      std::exit(1);
    }
  });
}

struct QueryFixture {
  QueryFixture() : platform(power::MakeProportionalPlatform()) {
    ssd = std::make_unique<storage::SsdDevice>("s", power::SsdSpec{},
                                               platform->meter());
    Schema schema({Column{"k", DataType::kInt64, 8},
                   Column{"v", DataType::kInt64, 8},
                   Column{"x", DataType::kDouble, 8}});
    table = std::make_unique<storage::TableStorage>(
        1, schema, storage::TableLayout::kColumn, ssd.get());
    Rng rng(kSeed);
    std::vector<storage::ColumnData> cols(3);
    cols[0].type = DataType::kInt64;
    cols[1].type = DataType::kInt64;
    cols[2].type = DataType::kDouble;
    for (size_t i = 0; i < kTableRows; ++i) {
      cols[0].i64.push_back(rng.Uniform(0, 999));
      cols[1].i64.push_back(static_cast<int64_t>(i));
      cols[2].f64.push_back(static_cast<double>(rng.Uniform(0, 1 << 16)) *
                            0.25);
    }
    if (!table->Append(cols).ok()) std::abort();
  }

  std::unique_ptr<power::HardwarePlatform> platform;
  std::unique_ptr<storage::SsdDevice> ssd;
  std::unique_ptr<storage::TableStorage> table;
};

SuiteResult RunSuite(int codec_reps, int query_reps) {
  SuiteResult res;

  // Calibration: reference scalar FOR decode of the sequential buffer.
  // Every item below is normalized by a calibration lane interleaved with
  // its own reps; the up-front measurement here is recorded in the output
  // header for reference only.
  const auto calib_data = CodecData("sequential");
  auto calib_codec = storage::MakeReferenceInt64Codec(CompressionKind::kFor);
  std::vector<uint8_t> calib_buf;
  if (!calib_codec->Encode(calib_data, &calib_buf).ok()) std::exit(1);
  std::vector<int64_t> calib_out;
  auto calib_fn = [&] {
    if (!calib_codec->Decode(calib_buf, &calib_out).ok()) std::exit(1);
  };
  res.calib_seconds = DecodeSeconds(*calib_codec, calib_buf, codec_reps);

  // Codec decode items: fast kernel wall (normalized) + speedup vs scalar.
  const struct {
    CompressionKind kind;
    const char* pattern;
  } codec_cases[] = {
      {CompressionKind::kBitpack, "sequential"},
      {CompressionKind::kBitpack, "runs"},
      {CompressionKind::kFor, "sequential"},
      {CompressionKind::kFor, "runs"},
      {CompressionKind::kRle, "runs"},
      {CompressionKind::kDelta, "sequential"},
  };
  for (const auto& c : codec_cases) {
    const auto data = CodecData(c.pattern);
    auto fast = storage::MakeInt64Codec(c.kind);
    auto scalar = storage::MakeReferenceInt64Codec(c.kind);
    std::vector<uint8_t> buf;
    if (!fast->Encode(data, &buf).ok()) std::exit(1);
    std::vector<int64_t> fast_out;
    std::vector<int64_t> scalar_out;
    std::vector<Lane> lanes;
    lanes.emplace_back(calib_fn);
    lanes.emplace_back([&] {
      if (!fast->Decode(buf, &fast_out).ok()) std::exit(1);
    });
    lanes.emplace_back([&] {
      if (!scalar->Decode(buf, &scalar_out).ok()) std::exit(1);
    });
    MeasureInterleaved(codec_reps, &lanes);
    Item item;
    item.name = std::string("codec_decode_") +
                storage::CompressionKindName(c.kind) + "_" + c.pattern;
    item.wall_norm = MedianRatio(lanes[1].samples, lanes[0].samples);
    item.speedup = MedianRatio(lanes[2].samples, lanes[1].samples);
    res.items.push_back(item);
  }

  // Query items over a fixed seeded table. A bare table scan is measured
  // against the codec calibration lane and becomes its own tracked item;
  // the operator items below are then normalized by the scan lane measured
  // in the same rep window. Query wall times share process-wide state
  // (allocator layout, frequency residency) with each other but not with
  // the decode loop, so scan-relative ratios are far more stable across
  // processes than decode-relative ones — and a scan regression still
  // trips the dedicated scan item.
  QueryFixture fixture;
  auto run_plan = [&](std::unique_ptr<exec::Operator> plan, double* joules) {
    ExecContext ctx(fixture.platform.get(), ExecOptions{});
    auto result = exec::CollectAll(plan.get(), &ctx);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().message().c_str());
      std::exit(1);
    }
    const QueryStats stats = ctx.Finish();
    *joules = stats.Joules();
  };
  auto make_scan = [&]() {
    return std::make_unique<exec::TableScanOp>(fixture.table.get());
  };
  {
    double scan_joules = 0.0;
    std::vector<Lane> lanes;
    lanes.emplace_back(calib_fn);
    lanes.emplace_back([&] { run_plan(make_scan(), &scan_joules); });
    MeasureInterleaved(query_reps, &lanes);
    Item item;
    item.name = "scan";
    item.wall_norm = MedianRatio(lanes[1].samples, lanes[0].samples);
    item.joules = scan_joules;
    res.items.push_back(item);
  }
  const struct {
    const char* name;
    std::function<std::unique_ptr<exec::Operator>()> make;
  } query_cases[] = {
      {"filter_scan",
       [&]() -> std::unique_ptr<exec::Operator> {
         return std::make_unique<exec::FilterOp>(
             std::make_unique<exec::TableScanOp>(fixture.table.get()),
             And(Col("v") < Lit(int64_t{60000}), Col("x") >= Lit(256.0)));
       }},
      {"q1_aggregate",
       [&]() -> std::unique_ptr<exec::Operator> {
         std::vector<AggregateItem> aggs;
         aggs.push_back({"sum_v", AggFunc::kSum, Col("v")});
         aggs.push_back({"sum_disc", AggFunc::kSum, Col("x") * Lit(0.9)});
         aggs.push_back({"n", AggFunc::kCount, nullptr});
         return std::make_unique<exec::HashAggregateOp>(
             std::make_unique<exec::TableScanOp>(fixture.table.get()),
             std::vector<std::string>{"k"}, std::move(aggs));
       }},
      {"topk",
       [&]() -> std::unique_ptr<exec::Operator> {
         return std::make_unique<exec::TopKOp>(
             std::make_unique<exec::TableScanOp>(fixture.table.get()),
             std::vector<exec::SortKey>{{"x", /*ascending=*/false}},
             /*k=*/100);
       }},
  };
  for (const auto& q : query_cases) {
    double joules = 0.0;
    double scan_joules = 0.0;
    std::vector<Lane> lanes;
    lanes.emplace_back([&] { run_plan(make_scan(), &scan_joules); });
    lanes.emplace_back([&] { run_plan(q.make(), &joules); });
    MeasureInterleaved(query_reps, &lanes);
    Item item;
    item.name = q.name;
    item.wall_norm = MedianRatio(lanes[1].samples, lanes[0].samples);
    item.joules = joules;
    res.items.push_back(item);
  }
  return res;
}

// --- Baseline persistence ---------------------------------------------------
// The baseline is a JSON object with one item object per line, so the
// loader below can stay a line-oriented scanner (no JSON dependency).

void WriteBaseline(const std::string& path, const SuiteResult& res) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out << "{\"schema\":\"" << kSchemaTag << "\","
      << "\"calibration\":\"for_sequential_scalar_decode\","
      << "\"codec_values\":" << kCodecValues << ","
      << "\"table_rows\":" << kTableRows << ",\"seed\":" << kSeed << ","
      << "\"items\":[\n";
  for (size_t i = 0; i < res.items.size(); ++i) {
    const Item& it = res.items[i];
    char line[256];
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"%s\",\"wall_norm\":%.6f,\"joules\":%.6f,"
                  "\"speedup_vs_scalar\":%.3f}%s\n",
                  it.name.c_str(), it.wall_norm, it.joules, it.speedup,
                  i + 1 < res.items.size() ? "," : "");
    out << line;
  }
  out << "]}\n";
}

// Extracts `"key":<number>` from a JSON line; returns fallback if absent.
double NumField(const std::string& line, const std::string& key,
                double fallback) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return fallback;
  return std::strtod(line.c_str() + at + needle.size(), nullptr);
}

std::string StrField(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  const size_t start = at + needle.size();
  const size_t end = line.find('"', start);
  return end == std::string::npos ? "" : line.substr(start, end - start);
}

bool LoadBaseline(const std::string& path, std::vector<Item>* items) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  bool schema_ok = false;
  while (std::getline(in, line)) {
    if (line.find(kSchemaTag) != std::string::npos) schema_ok = true;
    const std::string name = StrField(line, "name");
    if (name.empty()) continue;
    Item it;
    it.name = name;
    it.wall_norm = NumField(line, "wall_norm", 0.0);
    it.joules = NumField(line, "joules", 0.0);
    it.speedup = NumField(line, "speedup_vs_scalar", 0.0);
    items->push_back(it);
  }
  return schema_ok && !items->empty();
}

// --- Comparison -------------------------------------------------------------

int Compare(const std::vector<Item>& baseline, const SuiteResult& measured,
            double wall_tol) {
  constexpr double kJoulesTol = 0.10;
  constexpr double kSpeedupFloor = 2.0;
  int failures = 0;
  bench::Table table({"item", "wall norm (base)", "wall norm (now)",
                      "J/query (base)", "J/query (now)", "speedup", "gate"});
  for (const Item& base : baseline) {
    const Item* now = nullptr;
    for (const Item& m : measured.items) {
      if (m.name == base.name) now = &m;
    }
    if (now == nullptr) {
      std::printf("FAIL: baseline item '%s' missing from this run\n",
                  base.name.c_str());
      ++failures;
      continue;
    }
    std::string verdict = "ok";
    // The bare scan is the one item whose normalization lane has a
    // different instruction mix (scalar decode vs allocation-heavy scan),
    // so its ratio carries ~2x the cross-process spread of the others; it
    // gets a proportionally wider gate. Operator items are scan-relative
    // and codec items are decode-relative, so both stay at the tight gate.
    const double item_tol =
        base.name == "scan" ? 2.5 * wall_tol : wall_tol;
    if (base.wall_norm > 0.0 &&
        now->wall_norm > base.wall_norm * (1.0 + item_tol)) {
      verdict = "WALL REGRESSION";
      ++failures;
    }
    if (base.joules > 0.0 && now->joules > base.joules * (1.0 + kJoulesTol)) {
      verdict = "JOULES REGRESSION";
      ++failures;
    }
    // Items whose baseline records a clearly-vectorized kernel (>= 2x the
    // floor, i.e. word-at-a-time bitpack/FOR) must keep at least the 2x
    // acceptance floor; borderline items (RLE, delta) are tracked by the
    // wall gate alone so a 1.99-vs-2.01 flicker cannot flap the build.
    if (base.speedup >= 2.0 * kSpeedupFloor && now->speedup < kSpeedupFloor) {
      verdict = "SPEEDUP LOST";
      ++failures;
    }
    table.AddRow({base.name, bench::Fmt("%.4f", base.wall_norm),
                  bench::Fmt("%.4f", now->wall_norm),
                  bench::Fmt("%.4f", base.joules),
                  bench::Fmt("%.4f", now->joules),
                  bench::Fmt("%.2fx", now->speedup), verdict});
  }
  table.Print();
  for (const Item& m : measured.items) {
    bool known = false;
    for (const Item& base : baseline) known |= base.name == m.name;
    if (!known) {
      std::printf("note: new item '%s' not in baseline (rewrite with "
                  "--write to start tracking it)\n",
                  m.name.c_str());
    }
  }
  return failures;
}

void PrintJson(const SuiteResult& res) {
  std::printf("{\"schema\":\"%s\",\"calib_seconds\":%.9f}\n", kSchemaTag,
              res.calib_seconds);
  for (const Item& it : res.items) {
    std::printf("{\"bench\":\"perf_regress\",\"item\":\"%s\","
                "\"wall_norm\":%.6f,\"joules\":%.6f,"
                "\"speedup_vs_scalar\":%.3f}\n",
                it.name.c_str(), it.wall_norm, it.joules, it.speedup);
  }
}

}  // namespace

int Main(int argc, char** argv) {
  bool write = false;
  bool smoke = false;
  std::string path = kDefaultBaseline;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--write") {
      write = true;
    } else if (arg == "--check") {
      write = false;
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg[0] != '-') {
      path = arg;
    } else {
      std::fprintf(stderr,
                   "usage: perf_regress [--check|--write] [--smoke] [path]\n");
      return 2;
    }
  }

  // Query reps are generous because a single query sample is only a few
  // milliseconds: min-of-reps needs enough attempts to land in a window
  // free of host-load spikes (e.g. cgroup CPU throttling).
  const int codec_reps = smoke ? 3 : 12;
  const int query_reps = smoke ? 3 : 15;
  // CI machines are noisy; smoke mode widens the wall gate but keeps the
  // Joules gate strict (the ledger is deterministic, noise-free).
  const double wall_tol = smoke ? 0.35 : 0.10;

  bench::Banner("Perf regression suite (ecodb.perfregress.v1)",
                smoke ? "smoke mode: reduced reps, wall tolerance 35%"
                      : "full mode: wall/Joules gates at 10%");

  SuiteResult res = RunSuite(codec_reps, query_reps);

  // Selftest hook: inflate the measurements to prove the gate trips.
  if (const char* selftest = std::getenv("ECODB_PERF_REGRESS_SELFTEST")) {
    const double mult = std::strtod(selftest, nullptr);
    if (mult > 0.0) {
      std::printf("selftest: inflating measurements by %.2fx\n", mult);
      for (Item& it : res.items) {
        it.wall_norm *= mult;
        it.joules *= mult;
      }
    }
  }

  PrintJson(res);

  if (write) {
    WriteBaseline(path, res);
    std::printf("baseline written to %s (%zu items)\n", path.c_str(),
                res.items.size());
    return 0;
  }

  std::vector<Item> baseline;
  if (!LoadBaseline(path, &baseline)) {
    std::fprintf(stderr,
                 "FAIL: no usable baseline at %s (run with --write first)\n",
                 path.c_str());
    return 1;
  }
  const int failures = Compare(baseline, res, wall_tol);
  std::printf("\nperf regression check vs %s: %s (%d failure%s)\n",
              path.c_str(), failures == 0 ? "PASS" : "FAIL", failures,
              failures == 1 ? "" : "s");
  return failures == 0 ? 0 : 1;
}

}  // namespace ecodb

int main(int argc, char** argv) { return ecodb::Main(argc, argv); }

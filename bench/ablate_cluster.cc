// Ablation A13 (Section 2.4, after [TWM+08]): cluster-level energy
// proportionality via consolidation.
//
// "Recent work has considered using virtual machine migration and turning
// off servers to effect energy-proportionality."
//
// The harness compares load-balancing (spread) against consolidate-and-
// sleep (pack) over a 16-node cluster of individually inelastic servers:
// the power-vs-utilization curve, proportionality metrics, and a diurnal
// trace replay with wake-transition counts.

#include <cmath>

#include "bench_util.h"
#include "sched/cluster.h"
#include "util/random.h"

namespace ecodb {
namespace {

sched::ClusterNodeSpec Node2008() {
  sched::ClusterNodeSpec spec;
  spec.idle_watts = 210.0;  // 70% of peak at idle
  spec.peak_watts = 300.0;
  spec.sleep_watts = 10.0;
  spec.capacity = 100.0;
  spec.wake_joules = 5000.0;
  return spec;
}

}  // namespace

int Main() {
  bench::Banner(
      "Ablation A13: cluster consolidation ([TWM+08]) — proportionality "
      "from inelastic nodes",
      "16 nodes, each 210 W idle / 300 W peak (dynamic range 0.30); "
      "spread vs pack-and-sleep");

  sched::Cluster cluster(16, Node2008());

  // --- Power curve.
  bench::Table curve({"cluster load", "spread kW", "pack kW",
                      "active nodes (pack)"});
  for (double u : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    const double load = u * cluster.TotalCapacity();
    curve.AddRow(
        {bench::Fmt("%.0f%%", u * 100.0),
         bench::Fmt("%.2f",
                    cluster.PowerAt(load, sched::DispatchPolicy::kSpread) /
                        1e3),
         bench::Fmt("%.2f",
                    cluster.PowerAt(load, sched::DispatchPolicy::kPack) / 1e3),
         bench::Fmt("%.0f", static_cast<double>(cluster.ActiveNodesFor(
                        load, sched::DispatchPolicy::kPack)))});
  }
  curve.Print();

  const auto spread_report = power::AnalyzeCurve(
      cluster.CurveFor(sched::DispatchPolicy::kSpread, 100));
  const auto pack_report =
      power::AnalyzeCurve(cluster.CurveFor(sched::DispatchPolicy::kPack, 100));
  std::printf("proportionality index: spread %.2f -> pack %.2f "
              "(node-level is %.2f)\n\n",
              spread_report.proportionality_index,
              pack_report.proportionality_index,
              power::AnalyzeCurve(power::PowerCurve::Sample(
                                      [](double u) {
                                        return 210.0 + 90.0 * u;
                                      },
                                      100))
                  .proportionality_index);

  // --- Diurnal trace: 24 h at one sample per minute, [BH07]-style load
  // that lives between 10% and 50% utilization.
  Rng rng(24);
  std::vector<double> loads;
  for (int minute = 0; minute < 24 * 60; ++minute) {
    const double phase = 2.0 * M_PI * minute / (24.0 * 60.0);
    const double diurnal = 0.30 + 0.20 * std::sin(phase - M_PI / 2);
    const double jitter = rng.Gaussian(0.0, 0.02);
    loads.push_back(std::max(0.0, (diurnal + jitter)) *
                    cluster.TotalCapacity());
  }
  const auto spread =
      cluster.SimulateTrace(loads, 60.0, sched::DispatchPolicy::kSpread);
  const auto pack =
      cluster.SimulateTrace(loads, 60.0, sched::DispatchPolicy::kPack);

  bench::Table trace({"policy", "energy (kWh)", "avg active nodes",
                      "wake transitions"});
  trace.AddRow({"spread", bench::Fmt("%.1f", spread.joules / 3.6e6),
                bench::Fmt("%.1f", spread.avg_active_nodes),
                bench::Fmt("%.0f", spread.wake_events)});
  trace.AddRow({"pack", bench::Fmt("%.1f", pack.joules / 3.6e6),
                bench::Fmt("%.1f", pack.avg_active_nodes),
                bench::Fmt("%.0f", pack.wake_events)});
  trace.Print();

  std::printf("consolidation saves %.0f%% of the day's energy at %d wake "
              "transitions\n",
              (1.0 - pack.joules / spread.joules) * 100.0, pack.wake_events);
  const bool shape = pack_report.proportionality_index >
                         spread_report.proportionality_index + 0.3 &&
                     pack.joules < spread.joules * 0.7 &&
                     pack.wake_events < 200;
  std::printf("shape check (packing approaches proportionality and saves "
              "energy at bounded churn): %s\n", shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}

}  // namespace ecodb

int main() { return ecodb::Main(); }

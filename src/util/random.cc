#include "util/random.h"

#include <cassert>
#include <cmath>

namespace ecodb {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t r;
  do {
    r = Next();
  } while (r >= limit);
  return lo + static_cast<int64_t>(r % range);
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double mean) {
  assert(mean > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

uint64_t Rng::Zipf(uint64_t n, double theta) {
  assert(n > 0);
  if (theta <= 0.0) return static_cast<uint64_t>(Uniform(0, static_cast<int64_t>(n) - 1));
  // Standard Zipfian via the Gray et al. "quick" method: draws rank with
  // P(rank=i) proportional to 1/(i+1)^theta.
  const double alpha = 1.0 / (1.0 - theta);
  const double zetan = [&] {
    // Approximate zeta(n, theta) with the integral bound; exact enough for
    // workload skew purposes and O(1) instead of O(n).
    const double nn = static_cast<double>(n);
    return (std::pow(nn, 1.0 - theta) - 1.0) / (1.0 - theta) + 1.0;
  }();
  const double eta =
      (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
      (1.0 - ((std::pow(2.0, 1.0 - theta) - 1.0) / (1.0 - theta) + 1.0) / zetan);
  const double u = NextDouble();
  const double uz = u * zetan;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta)) return 1;
  uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n) * std::pow(eta * u - eta + 1.0, alpha));
  if (rank >= n) rank = n - 1;
  return rank;
}

double Rng::Gaussian(double mean, double stddev) {
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

std::string Rng::AlphaString(size_t len) {
  static constexpr char kAlphabet[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
  std::string out(len, '\0');
  for (auto& c : out) {
    c = kAlphabet[Uniform(0, sizeof(kAlphabet) - 2)];
  }
  return out;
}

}  // namespace ecodb

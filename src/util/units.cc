#include "util/units.h"

#include <cstdio>

namespace ecodb {

std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB",
                  static_cast<double>(bytes) / static_cast<double>(kGiB));
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB",
                  static_cast<double>(bytes) / static_cast<double>(kMiB));
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB",
                  static_cast<double>(bytes) / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  } else if (seconds >= kMilli) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", seconds / kMilli);
  } else if (seconds >= kMicro) {
    std::snprintf(buf, sizeof(buf), "%.3f us", seconds / kMicro);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f ns", seconds / kNano);
  }
  return buf;
}

std::string FormatJoules(double joules) {
  char buf[64];
  if (joules >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3f MJ", joules / 1e6);
  } else if (joules >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3f kJ", joules / 1e3);
  } else if (joules >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f J", joules);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f mJ", joules / kMilli);
  }
  return buf;
}

}  // namespace ecodb

// Streaming summary statistics and percentile estimation.
//
// Used by the benchmark harnesses and the scheduler to report latency
// distributions (mean / p50 / p95 / p99 / max) without storing every sample.

#ifndef ECODB_UTIL_HISTOGRAM_H_
#define ECODB_UTIL_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ecodb {

/// Log-bucketed histogram over non-negative doubles. Buckets grow
/// geometrically so relative error of percentile estimates is bounded by the
/// growth factor (~4% with the default 64 buckets per decade equivalent).
class Histogram {
 public:
  Histogram();

  /// Records one sample. Negative samples are clamped to zero.
  void Add(double value);

  /// Merges another histogram's samples into this one.
  void Merge(const Histogram& other);

  void Reset();

  size_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  double Mean() const;

  /// Estimated value at quantile q in [0, 1]. Returns 0 for empty histograms.
  double Percentile(double q) const;

  /// One-line summary, e.g. "n=100 mean=1.2 p50=1.1 p95=2.3 p99=4.0 max=5".
  std::string Summary() const;

 private:
  size_t BucketFor(double value) const;
  double BucketLowerBound(size_t bucket) const;

  std::vector<uint64_t> buckets_;
  size_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Welford-style running mean/variance accumulator.
class RunningStat {
 public:
  void Add(double x);
  void Reset();

  size_t count() const { return n_; }
  double Mean() const { return n_ ? mean_ : 0.0; }
  double Variance() const;
  double Stddev() const;

 private:
  size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

}  // namespace ecodb

#endif  // ECODB_UTIL_HISTOGRAM_H_

// Deterministic pseudo-random number generation for workload synthesis.
//
// All data generators and workloads in EcoDB derive their randomness from
// `Rng` (xoshiro256**), so a given seed reproduces a bit-identical dataset
// and query stream on every platform. std::mt19937 is avoided because its
// distributions are not specified bit-exactly across standard libraries.

#ifndef ECODB_UTIL_RANDOM_H_
#define ECODB_UTIL_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ecodb {

/// xoshiro256** generator: fast, high-quality, and fully deterministic.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` via splitmix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean);

  /// Zipfian-distributed rank in [0, n) with skew `theta` in [0, 1).
  /// theta = 0 is uniform; values near 1 are highly skewed. O(log n) via
  /// inverse-CDF approximation on the harmonic partial sums.
  uint64_t Zipf(uint64_t n, double theta);

  /// Gaussian (Box-Muller) with the given mean and stddev.
  double Gaussian(double mean, double stddev);

  /// Random alphanumeric string of exactly `len` characters.
  std::string AlphaString(size_t len);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace ecodb

#endif  // ECODB_UTIL_RANDOM_H_

// Unit helpers: bytes, time, power, and energy constants used throughout.
//
// EcoDB measures simulated time in double seconds, power in Watts, and
// energy in Joules (1 J = 1 W * 1 s), matching the paper's Section 2.1.

#ifndef ECODB_UTIL_UNITS_H_
#define ECODB_UTIL_UNITS_H_

#include <cstdint>
#include <string>

namespace ecodb {

constexpr uint64_t kKiB = 1024ULL;
constexpr uint64_t kMiB = 1024ULL * kKiB;
constexpr uint64_t kGiB = 1024ULL * kMiB;

constexpr double kMilli = 1e-3;
constexpr double kMicro = 1e-6;
constexpr double kNano = 1e-9;

/// Formats a byte count with a binary suffix, e.g. "1.5 GiB".
std::string FormatBytes(uint64_t bytes);

/// Formats seconds adaptively, e.g. "12.3 ms", "4.56 s".
std::string FormatSeconds(double seconds);

/// Formats Joules adaptively, e.g. "338 J", "1.2 kJ".
std::string FormatJoules(double joules);

}  // namespace ecodb

#endif  // ECODB_UTIL_UNITS_H_

// Lightweight Status / StatusOr error-handling primitives (exception-free).
//
// EcoDB follows the Google style of returning explicit status objects rather
// than throwing. `Status` carries an error code and a message; `StatusOr<T>`
// carries either a value or a non-OK status.

#ifndef ECODB_UTIL_STATUS_H_
#define ECODB_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace ecodb {

/// Error categories used across the engine.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
  kDataLoss,
  kUnavailable,
  kDeadlineExceeded,
  kShed,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A success-or-error result. Cheap to copy on the OK path (no allocation).
/// [[nodiscard]]: an ignored Status silently swallows an I/O or fault error,
/// so every producer must be checked (or explicitly voided at the call site).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// The serving core refused or aborted the work under overload or a
  /// power cap (DESIGN.md §14). Partial charges stay on the session bill.
  static Status Shed(std::string msg) {
    return Status(StatusCode::kShed, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`. Dereferencing a non-OK
/// StatusOr is a programming error (asserts in debug builds).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit construction from a value or from an error status keeps call
  /// sites terse: `return value;` / `return Status::NotFound(...)`.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK status requires a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace ecodb

/// Propagates a non-OK status to the caller.
#define ECODB_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::ecodb::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                     \
  } while (0)

/// Evaluates `rexpr` (a StatusOr), propagating errors, else binds the value.
#define ECODB_ASSIGN_OR_RETURN(lhs, rexpr)         \
  ECODB_ASSIGN_OR_RETURN_IMPL_(                    \
      ECODB_STATUS_CONCAT_(_status_or_, __LINE__), lhs, rexpr)

#define ECODB_ASSIGN_OR_RETURN_IMPL_(var, lhs, rexpr) \
  auto var = (rexpr);                                 \
  if (!var.ok()) return var.status();                 \
  lhs = std::move(var).value()

#define ECODB_STATUS_CONCAT_(a, b) ECODB_STATUS_CONCAT_IMPL_(a, b)
#define ECODB_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // ECODB_UTIL_STATUS_H_

#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ecodb {

namespace {
// Geometric bucket layout: bucket 0 holds [0, kFirstBound); bucket i>0 holds
// [kFirstBound*g^(i-1), kFirstBound*g^i). 512 buckets with g=1.08 span ~17
// orders of magnitude above kFirstBound.
constexpr double kFirstBound = 1e-9;
constexpr double kGrowth = 1.08;
constexpr size_t kNumBuckets = 512;
}  // namespace

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

size_t Histogram::BucketFor(double value) const {
  if (value < kFirstBound) return 0;
  const double idx = std::log(value / kFirstBound) / std::log(kGrowth) + 1.0;
  if (idx >= static_cast<double>(kNumBuckets)) return kNumBuckets - 1;
  return static_cast<size_t>(idx);
}

double Histogram::BucketLowerBound(size_t bucket) const {
  if (bucket == 0) return 0.0;
  return kFirstBound * std::pow(kGrowth, static_cast<double>(bucket - 1));
}

void Histogram::Add(double value) {
  if (value < 0) value = 0;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[BucketFor(value)];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

double Histogram::min() const { return count_ ? min_ : 0.0; }
double Histogram::max() const { return count_ ? max_ : 0.0; }
double Histogram::Mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double Histogram::Percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) {
      // Midpoint of the bucket, clamped to observed extremes for tightness.
      const double lo = BucketLowerBound(i);
      const double hi = (i + 1 < kNumBuckets) ? BucketLowerBound(i + 1) : max_;
      return std::clamp((lo + hi) / 2.0, min_, max_);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g", count_,
                Mean(), Percentile(0.5), Percentile(0.95), Percentile(0.99),
                max());
  return buf;
}

void RunningStat::Add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Reset() {
  n_ = 0;
  mean_ = 0;
  m2_ = 0;
}

double RunningStat::Variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::Stddev() const { return std::sqrt(Variance()); }

}  // namespace ecodb

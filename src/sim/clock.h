// Simulated time.
//
// EcoDB executes queries over real data but accounts device occupancy in
// *simulated* seconds, so the Figure-1 experiment (which on the paper's
// hardware takes hours) completes in milliseconds of wall time while still
// reporting physically meaningful times and energies. `SimClock` is the
// single source of "now"; it only moves forward.

#ifndef ECODB_SIM_CLOCK_H_
#define ECODB_SIM_CLOCK_H_

#include <algorithm>
#include <cassert>

namespace ecodb::sim {

/// Monotonic simulated clock measured in double seconds since epoch 0.
class SimClock {
 public:
  SimClock() = default;

  // Not copyable: devices and meters hold pointers to one shared clock.
  SimClock(const SimClock&) = delete;
  SimClock& operator=(const SimClock&) = delete;

  double now() const { return now_; }

  /// Advances the clock by `dt` seconds (dt >= 0). Returns the new time.
  double Advance(double dt) {
    assert(dt >= 0.0);
    now_ += dt;
    return now_;
  }

  /// Moves the clock to `t` if `t` is in the future; never moves backward.
  double AdvanceTo(double t) {
    now_ = std::max(now_, t);
    return now_;
  }

  /// Resets to time zero (test helper).
  void Reset() { now_ = 0.0; }

 private:
  double now_ = 0.0;
};

}  // namespace ecodb::sim

#endif  // ECODB_SIM_CLOCK_H_

#include "sim/arrival_trace.h"

#include <cassert>
#include <cstring>

#include "util/random.h"

namespace ecodb::sim {

namespace {

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t DoubleBits(double d) {
  uint64_t v = 0;
  static_assert(sizeof v == sizeof d);
  std::memcpy(&v, &d, sizeof v);
  return v;
}

}  // namespace

uint64_t ArrivalTrace::Fingerprint() const {
  uint64_t h = 1469598103934665603ULL;
  for (const TraceRequest& r : requests) {
    h = Fnv1a(h, r.index);
    h = Fnv1a(h, DoubleBits(r.arrival_s));
    h = Fnv1a(h, static_cast<uint64_t>(r.tenant_id));
    h = Fnv1a(h, static_cast<uint64_t>(r.priority));
    h = Fnv1a(h, static_cast<uint64_t>(r.query_class));
    h = Fnv1a(h, static_cast<uint64_t>(r.param));
  }
  return h;
}

ArrivalTrace GenerateArrivalTrace(const ArrivalTraceSpec& spec) {
  assert(spec.tenants >= 1);
  assert(spec.priority_classes >= 1);
  assert(spec.query_classes >= 1);
  assert(spec.param_classes >= 1);
  assert(spec.mean_interarrival_s >= 0.0);

  ArrivalTrace trace;
  trace.spec = spec;
  trace.requests.reserve(spec.requests);
  Rng rng(spec.seed);
  double t = 0.0;
  for (size_t i = 0; i < spec.requests; ++i) {
    if (spec.mean_interarrival_s > 0.0) {
      double gap = rng.Exponential(spec.mean_interarrival_s);
      for (const BurstSpec& burst : spec.bursts) {
        if (burst.rate_multiplier > 0.0 && t >= burst.start_s &&
            t < burst.start_s + burst.duration_s) {
          gap /= burst.rate_multiplier;
        }
      }
      t += gap;
    }
    TraceRequest req;
    req.index = i;
    req.arrival_s = t;
    req.tenant_id =
        spec.tenant_skew_theta > 0.0
            ? static_cast<int>(rng.Zipf(
                  static_cast<uint64_t>(spec.tenants), spec.tenant_skew_theta))
            : static_cast<int>(rng.Uniform(0, spec.tenants - 1));
    req.priority = static_cast<int>(rng.Uniform(0, spec.priority_classes - 1));
    req.query_class =
        static_cast<int>(rng.Uniform(0, spec.query_classes - 1));
    req.param = rng.Uniform(0, spec.param_classes - 1);
    trace.requests.push_back(req);
  }
  return trace;
}

}  // namespace ecodb::sim

// Discrete-event simulation queue.
//
// Drives the consolidation scheduler experiments: events (query arrivals,
// batch-window expirations, disk spin-down timers) are executed in timestamp
// order, advancing the shared SimClock to each event's time.

#ifndef ECODB_SIM_EVENT_QUEUE_H_
#define ECODB_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/clock.h"

namespace ecodb::sim {

/// Priority queue of timestamped callbacks. Ties break by insertion order so
/// runs are deterministic.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// `clock` must outlive the queue.
  explicit EventQueue(SimClock* clock) : clock_(clock) {}

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `cb` at absolute simulated time `t` (>= now). Returns an id
  /// that can be passed to Cancel().
  uint64_t ScheduleAt(double t, Callback cb);

  /// Schedules `cb` after `dt` seconds from now.
  uint64_t ScheduleAfter(double dt, Callback cb) {
    return ScheduleAt(clock_->now() + dt, std::move(cb));
  }

  /// Cancels a pending event. Returns false if it already ran or is unknown.
  bool Cancel(uint64_t id);

  /// Runs events until the queue is empty or `t_end` is passed. The clock is
  /// advanced to each event's timestamp before its callback runs. Returns the
  /// number of events executed.
  size_t RunUntil(double t_end);

  /// Runs until the queue drains entirely.
  size_t RunAll();

  /// Timestamp of the next live event, or `fallback` when none is pending.
  /// Pops cancelled events off the heap top; does not run anything.
  double NextEventTime(double fallback);

  bool empty() const { return live_count_ == 0; }
  size_t pending() const { return live_count_; }
  SimClock* clock() const { return clock_; }

 private:
  struct Event {
    double time;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimClock* clock_;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::vector<uint64_t> cancelled_;  // sorted insertion not needed; small
  uint64_t next_seq_ = 1;
  size_t live_count_ = 0;

  bool IsCancelled(uint64_t id) const;
};

}  // namespace ecodb::sim

#endif  // ECODB_SIM_EVENT_QUEUE_H_

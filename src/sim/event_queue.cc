#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>

namespace ecodb::sim {

uint64_t EventQueue::ScheduleAt(double t, Callback cb) {
  assert(t >= clock_->now());
  const uint64_t id = next_seq_++;
  heap_.push(Event{t, id, std::move(cb)});
  ++live_count_;
  return id;
}

bool EventQueue::Cancel(uint64_t id) {
  if (id == 0 || id >= next_seq_ || IsCancelled(id)) return false;
  cancelled_.push_back(id);
  --live_count_;
  return true;
}

bool EventQueue::IsCancelled(uint64_t id) const {
  return std::find(cancelled_.begin(), cancelled_.end(), id) !=
         cancelled_.end();
}

size_t EventQueue::RunUntil(double t_end) {
  size_t executed = 0;
  while (!heap_.empty() && heap_.top().time <= t_end) {
    Event ev = heap_.top();
    heap_.pop();
    if (IsCancelled(ev.seq)) {
      cancelled_.erase(
          std::remove(cancelled_.begin(), cancelled_.end(), ev.seq),
          cancelled_.end());
      continue;
    }
    --live_count_;
    clock_->AdvanceTo(ev.time);
    ev.cb();
    ++executed;
  }
  return executed;
}

double EventQueue::NextEventTime(double fallback) {
  while (!heap_.empty() && IsCancelled(heap_.top().seq)) {
    cancelled_.erase(
        std::remove(cancelled_.begin(), cancelled_.end(), heap_.top().seq),
        cancelled_.end());
    heap_.pop();
  }
  return heap_.empty() ? fallback : heap_.top().time;
}

size_t EventQueue::RunAll() {
  size_t executed = 0;
  while (!heap_.empty()) {
    executed += RunUntil(heap_.top().time);
  }
  return executed;
}

}  // namespace ecodb::sim

// Seeded multi-tenant arrival traces for the serving core.
//
// The admission schedule of the serving core must be a pure function of
// (seed, arrival trace): the trace is generated up front from an
// ArrivalTraceSpec by a deterministic Rng, so the same spec reproduces the
// same request stream — arrival times, tenants, priorities, query shapes —
// bit-identically on every platform. Traces can also be hand-built (tests
// construct pathological orderings directly).

#ifndef ECODB_SIM_ARRIVAL_TRACE_H_
#define ECODB_SIM_ARRIVAL_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ecodb::sim {

/// One query arrival. `index` is the request's position in the trace and
/// doubles as the session id and the admission tiebreaker.
struct TraceRequest {
  uint64_t index = 0;
  double arrival_s = 0.0;  // offset from the serving window start
  int tenant_id = 0;
  int priority = 0;        // 0 = most urgent
  int query_class = 0;     // workload-defined shape selector
  int64_t param = 0;       // shape parameter (TPC-H-style substitution)
};

/// A load burst: while the running arrival time sits inside
/// [start_s, start_s + duration_s), the drawn exponential gap is divided by
/// `rate_multiplier`, so arrivals come that many times faster. Scaling the
/// gap consumes no extra RNG draws — a spec with no bursts (or multiplier
/// 1) generates a byte-identical trace, and overlapping bursts compound.
struct BurstSpec {
  double start_s = 0.0;
  double duration_s = 0.0;
  double rate_multiplier = 1.0;
};

/// Generator knobs. Interarrival gaps are exponential (Poisson arrivals);
/// tenants draw Zipf-skewed so heavy tenants emerge at theta > 0.
struct ArrivalTraceSpec {
  uint64_t seed = 1;
  int tenants = 4;
  size_t requests = 64;
  double mean_interarrival_s = 1.0;
  double tenant_skew_theta = 0.0;  // 0 = uniform tenant draw
  int priority_classes = 1;
  int query_classes = 3;
  int param_classes = 8;  // substitution rotation modulus
  std::vector<BurstSpec> bursts;  // overload phases (empty = steady state)
};

struct ArrivalTrace {
  ArrivalTraceSpec spec;
  std::vector<TraceRequest> requests;  // nondecreasing arrival_s

  /// FNV-1a over every request's fields; replay identity in one number.
  uint64_t Fingerprint() const;
};

ArrivalTrace GenerateArrivalTrace(const ArrivalTraceSpec& spec);

}  // namespace ecodb::sim

#endif  // ECODB_SIM_ARRIVAL_TRACE_H_

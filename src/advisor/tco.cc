#include "advisor/tco.h"

#include <cmath>
#include <limits>

namespace ecodb::advisor {

TcoReport ComputeTco(const NodeConfig& node, const TcoParams& params,
                     int nodes) {
  TcoReport report;
  report.nodes = nodes;
  report.hardware_usd = node.hardware_cost_usd * nodes;
  const double hours = params.amortization_years * 365.25 * 24.0;
  const double wall_watts =
      node.avg_watts * (1.0 + params.cooling_watts_per_watt) * nodes;
  report.energy_usd =
      wall_watts / 1000.0 * hours * params.energy_price_usd_per_kwh;
  report.total_usd = report.hardware_usd + report.energy_usd;
  const double perf = node.perf_units * nodes;
  report.usd_per_perf_unit = perf > 0 ? report.total_usd / perf : 0.0;
  return report;
}

namespace {
int NodesForTarget(double target, double per_node) {
  if (per_node <= 0) return 1;
  return static_cast<int>(std::ceil(target / per_node));
}
}  // namespace

ScalingDecision DecideScaling(double target_perf_units,
                              const NodeConfig& overdriven_node,
                              const NodeConfig& efficient_node,
                              const TcoParams& params) {
  ScalingDecision decision;
  decision.overdrive = ComputeTco(
      overdriven_node, params,
      NodesForTarget(target_perf_units, overdriven_node.perf_units));
  decision.parallelize = ComputeTco(
      efficient_node, params,
      NodesForTarget(target_perf_units, efficient_node.perf_units));
  decision.parallelize_wins =
      decision.parallelize.total_usd < decision.overdrive.total_usd;
  return decision;
}

double EnergyPriceCrossover(double target_perf_units,
                            const NodeConfig& overdriven_node,
                            const NodeConfig& efficient_node,
                            TcoParams params) {
  // TCO(price) is linear in the energy price for both options; solve for
  // equality directly from two evaluations.
  params.energy_price_usd_per_kwh = 0.0;
  const ScalingDecision at_zero = DecideScaling(
      target_perf_units, overdriven_node, efficient_node, params);
  params.energy_price_usd_per_kwh = 1.0;
  const ScalingDecision at_one = DecideScaling(
      target_perf_units, overdriven_node, efficient_node, params);

  const double hw_gap =
      at_zero.parallelize.total_usd - at_zero.overdrive.total_usd;
  const double energy_slope_gap =
      (at_one.parallelize.total_usd - at_zero.parallelize.total_usd) -
      (at_one.overdrive.total_usd - at_zero.overdrive.total_usd);
  if (hw_gap <= 0) return -1.0;  // parallelize already wins on hardware
  if (energy_slope_gap >= 0) {
    return std::numeric_limits<double>::infinity();  // never catches up
  }
  return hw_gap / -energy_slope_gap;
}

}  // namespace ecodb::advisor

// Total-cost-of-ownership modeling (Section 5.3 of the paper).
//
// "In configuring a system for maximum energy efficiency, we may end up
// with a configuration that does not meet minimum performance criteria.
// Two potential solutions ... are to either waste energy and increase
// performance with diminishing returns or pay for more hardware (use more
// resources in a cluster) and parallelize, keeping the same energy
// efficiency. Over time, we expect that the latter solution will prevail
// since the energy costs will make up a larger fraction of TCO."
//
// The model prices both options for a performance target and finds the
// energy-price crossover at which parallelize-at-the-efficient-point
// overtakes overdrive-one-box.

#ifndef ECODB_ADVISOR_TCO_H_
#define ECODB_ADVISOR_TCO_H_

#include <string>
#include <vector>

namespace ecodb::advisor {

struct TcoParams {
  double energy_price_usd_per_kwh = 0.10;
  /// Cooling energy per IT energy ([PBS+03]: 0.5-1.0).
  double cooling_watts_per_watt = 0.5;
  /// Amortization horizon for hardware.
  double amortization_years = 3.0;
};

/// One node configuration running at a fixed operating point.
struct NodeConfig {
  std::string name;
  double hardware_cost_usd = 0.0;
  double avg_watts = 0.0;     // IT power at this operating point
  double perf_units = 0.0;    // throughput delivered at this point
};

struct TcoReport {
  double hardware_usd = 0.0;
  double energy_usd = 0.0;  // over the amortization horizon, incl. cooling
  double total_usd = 0.0;
  double usd_per_perf_unit = 0.0;
  int nodes = 1;
};

/// TCO of `nodes` copies of `node` over the amortization horizon.
TcoReport ComputeTco(const NodeConfig& node, const TcoParams& params,
                     int nodes = 1);

/// Cheapest way to reach `target_perf_units`: ceil-scale either option.
struct ScalingDecision {
  TcoReport overdrive;    // few overdriven nodes
  TcoReport parallelize;  // more efficient-point nodes
  bool parallelize_wins = false;
};

ScalingDecision DecideScaling(double target_perf_units,
                              const NodeConfig& overdriven_node,
                              const NodeConfig& efficient_node,
                              const TcoParams& params);

/// Energy price (USD/kWh) above which parallelizing becomes cheaper for
/// the target, holding everything else fixed. Returns a negative value if
/// parallelizing already wins at zero energy price, and +infinity if it
/// never wins.
double EnergyPriceCrossover(double target_perf_units,
                            const NodeConfig& overdriven_node,
                            const NodeConfig& efficient_node,
                            TcoParams params);

}  // namespace ecodb::advisor

#endif  // ECODB_ADVISOR_TCO_H_

#include "advisor/design_advisor.h"

#include <algorithm>
#include <cassert>

namespace ecodb::advisor {

using optimizer::PlanCost;
using optimizer::ResourceEstimate;
using storage::CompressionKind;

double SweepAnalysis::EfficiencyGainVsPeakPerf() const {
  const double peak_perf_ee = BestPerformance().EnergyEfficiency();
  if (peak_perf_ee <= 0) return 0.0;
  return BestEfficiency().EnergyEfficiency() / peak_perf_ee - 1.0;
}

double SweepAnalysis::PerformanceDropAtPeakEfficiency() const {
  const double peak_perf = BestPerformance().Performance();
  if (peak_perf <= 0) return 0.0;
  return 1.0 - BestEfficiency().Performance() / peak_perf;
}

SweepAnalysis AnalyzeSweep(const std::vector<int>& configs,
                           const ConfigRunner& runner) {
  SweepAnalysis analysis;
  analysis.points.reserve(configs.size());
  for (int c : configs) {
    SweepPoint p = runner(c);
    p.config = c;
    analysis.points.push_back(p);
  }
  for (int i = 0; i < static_cast<int>(analysis.points.size()); ++i) {
    const SweepPoint& p = analysis.points[i];
    if (analysis.best_performance_index < 0 ||
        p.Performance() >
            analysis.points[analysis.best_performance_index].Performance()) {
      analysis.best_performance_index = i;
    }
    if (analysis.best_efficiency_index < 0 ||
        p.EnergyEfficiency() >
            analysis.points[analysis.best_efficiency_index]
                .EnergyEfficiency()) {
      analysis.best_efficiency_index = i;
    }
  }
  return analysis;
}

namespace {

struct CandidateEval {
  CompressionKind kind;
  double ratio;
  ResourceEstimate demand;
  PlanCost cost;
};

CandidateEval EvaluateCandidate(const storage::TableStorage& table, int col,
                                CompressionKind kind,
                                optimizer::CostModel* model) {
  CandidateEval eval;
  eval.kind = kind;
  const storage::ColumnData& data = table.RawColumn(col);
  const catalog::Column& schema_col = table.schema().column(col);
  const double rows = static_cast<double>(table.row_count());

  double raw_bytes;
  if (schema_col.type == catalog::DataType::kString) {
    raw_bytes = 0;
    for (const std::string& s : data.str) raw_bytes += s.size() + 1;
  } else {
    raw_bytes = rows * 8.0;
  }

  double decode_per_value = 1.0;
  if (kind == CompressionKind::kNone) {
    eval.ratio = 1.0;
  } else if (kind == CompressionKind::kDictionary) {
    storage::StringDictionaryCodec codec;
    std::vector<uint8_t> buf;
    if (codec.Encode(data.str, &buf).ok() && raw_bytes > 0) {
      eval.ratio = static_cast<double>(buf.size()) / raw_bytes;
    } else {
      eval.ratio = 1.0;
    }
    decode_per_value = codec.cost_profile().decode_instructions_per_value;
  } else {
    auto codec = storage::MakeInt64Codec(kind);
    assert(codec != nullptr);
    eval.ratio = storage::MeasureInt64Ratio(*codec, data.i64);
    decode_per_value = codec->cost_profile().decode_instructions_per_value;
  }

  eval.demand.cpu_instructions =
      decode_per_value * rows * model->params().costs.decode_scale;
  const uint64_t bytes =
      static_cast<uint64_t>(raw_bytes * eval.ratio + 0.5);
  if (table.device() != nullptr && bytes > 0) {
    eval.demand.device_bytes[table.device()] = bytes;
  }
  eval.cost = model->Price(eval.demand, /*dop=*/1, /*pstate=*/0);
  return eval;
}

}  // namespace

StatusOr<CompressionRecommendation> RecommendCompression(
    const storage::TableStorage& table,
    const std::vector<CompressionKind>& int64_candidates,
    optimizer::CostModel* model, const optimizer::Objective& objective) {
  if (table.row_count() == 0) {
    return Status::FailedPrecondition("cannot advise on an empty table");
  }
  CompressionRecommendation rec;
  ResourceEstimate total_demand;

  for (int c = 0; c < table.schema().num_columns(); ++c) {
    const catalog::Column& col = table.schema().column(c);
    std::vector<CompressionKind> candidates = {CompressionKind::kNone};
    if (col.type == catalog::DataType::kString) {
      candidates.push_back(CompressionKind::kDictionary);
    } else if (catalog::IsIntegerLike(col.type)) {
      for (CompressionKind k : int64_candidates) {
        if (k != CompressionKind::kNone &&
            k != CompressionKind::kDictionary) {
          candidates.push_back(k);
        }
      }
    }

    CandidateEval best = EvaluateCandidate(table, c, candidates[0], model);
    for (size_t i = 1; i < candidates.size(); ++i) {
      CandidateEval eval = EvaluateCandidate(table, c, candidates[i], model);
      if (eval.cost.Scalarize(objective) < best.cost.Scalarize(objective)) {
        best = eval;
      }
    }
    CompressionChoice choice;
    choice.column = col.name;
    choice.kind = best.kind;
    choice.ratio = best.ratio;
    choice.scan_cost = best.cost;
    rec.choices.push_back(choice);
    total_demand.Merge(best.demand);
  }
  rec.total_scan_cost = model->Price(total_demand, /*dop=*/1, /*pstate=*/0);
  return rec;
}

}  // namespace ecodb::advisor

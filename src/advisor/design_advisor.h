// Physical design advisor for energy efficiency.
//
// Two pieces of Section 3.1 / 5.1 of the paper:
//
//  * Configuration sweeps (AnalyzeSweep): run a workload at each candidate
//    configuration (e.g. number of disks), measure time and energy, and find
//    both the best-performance and the best-efficiency points. The advisor
//    applies the paper's marginal rule — stop adding a component once its
//    percentage performance gain falls below its percentage power cost.
//
//  * Compression advice (RecommendCompression): for each column, actually
//    encode with each candidate codec, price the resulting scan under the
//    two-objective cost model, and pick per the objective — performance
//    objectives favor compression when scans are I/O-bound; energy
//    objectives can flip the choice (Figure 2).

#ifndef ECODB_ADVISOR_DESIGN_ADVISOR_H_
#define ECODB_ADVISOR_DESIGN_ADVISOR_H_

#include <functional>
#include <string>
#include <vector>

#include "optimizer/cost_model.h"
#include "storage/compression.h"
#include "storage/table_storage.h"
#include "util/status.h"

namespace ecodb::advisor {

/// One measured configuration in a sweep.
struct SweepPoint {
  int config = 0;           // e.g. number of disks
  double seconds = 0.0;     // workload completion time
  double joules = 0.0;      // energy over the run
  double work_units = 0.0;  // queries completed, rows produced, ...

  double Performance() const { return seconds > 0 ? work_units / seconds : 0; }
  double EnergyEfficiency() const {
    return joules > 0 ? work_units / joules : 0;
  }
  double AvgWatts() const { return seconds > 0 ? joules / seconds : 0; }
};

struct SweepAnalysis {
  std::vector<SweepPoint> points;
  int best_performance_index = -1;
  int best_efficiency_index = -1;

  const SweepPoint& BestPerformance() const {
    return points[best_performance_index];
  }
  const SweepPoint& BestEfficiency() const {
    return points[best_efficiency_index];
  }

  /// EE gain of the efficiency peak relative to the performance peak
  /// (paper: +14%), and the performance sacrificed there (paper: -45%).
  double EfficiencyGainVsPeakPerf() const;
  double PerformanceDropAtPeakEfficiency() const;
};

/// Runs `runner` for each configuration and analyzes the curve.
using ConfigRunner = std::function<SweepPoint(int config)>;
SweepAnalysis AnalyzeSweep(const std::vector<int>& configs,
                           const ConfigRunner& runner);

/// Advice for one column.
struct CompressionChoice {
  std::string column;
  storage::CompressionKind kind = storage::CompressionKind::kNone;
  double ratio = 1.0;  // encoded/raw
  optimizer::PlanCost scan_cost;
};

struct CompressionRecommendation {
  std::vector<CompressionChoice> choices;
  optimizer::PlanCost total_scan_cost;
};

/// Evaluates candidate codecs per int64/date column of `table` (strings get
/// dictionary-vs-none) and picks the scalarized-cost minimizer. The table
/// itself is not modified.
StatusOr<CompressionRecommendation> RecommendCompression(
    const storage::TableStorage& table,
    const std::vector<storage::CompressionKind>& int64_candidates,
    optimizer::CostModel* model, const optimizer::Objective& objective);

}  // namespace ecodb::advisor

#endif  // ECODB_ADVISOR_DESIGN_ADVISOR_H_

#include "exec/filter_project.h"

namespace ecodb::exec {

FilterOp::FilterOp(OperatorPtr child, ExprPtr predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {}

Status FilterOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ECODB_RETURN_IF_ERROR(child_->Open(ctx));
  return predicate_->Bind(child_->output_schema());
}

Status FilterOp::Next(RecordBatch* out, bool* eos) {
  while (true) {
    ECODB_RETURN_IF_ERROR(ctx_->PollCancel());
    RecordBatch batch;
    ECODB_RETURN_IF_ERROR(child_->Next(&batch, eos));
    if (*eos) return Status::OK();
    // Charged from the static per-row cost *before* evaluation, so the
    // fused/short-circuit strategy below cannot perturb the accounting.
    ctx_->ChargeInstructions(predicate_->InstructionsPerRow() *
                             static_cast<double>(batch.num_rows()));
    ECODB_RETURN_IF_ERROR(
        predicate_->EvaluateMaskInto(batch, &scratch_, &mask_));
    batch.FilterInPlace(mask_);
    if (batch.num_rows() > 0 || batch.empty()) {
      *out = std::move(batch);
      return Status::OK();
    }
  }
}

void FilterOp::Close() { child_->Close(); }

ProjectOp::ProjectOp(OperatorPtr child, std::vector<ProjectionItem> items)
    : child_(std::move(child)), items_(std::move(items)) {}

Status ProjectOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ECODB_RETURN_IF_ERROR(child_->Open(ctx));
  std::vector<catalog::Column> cols;
  cols.reserve(items_.size());
  for (ProjectionItem& item : items_) {
    ECODB_RETURN_IF_ERROR(item.expr->Bind(child_->output_schema()));
    catalog::Column c;
    c.name = item.name;
    c.type = item.expr->result_type();
    cols.push_back(std::move(c));
  }
  schema_ = catalog::Schema(std::move(cols));
  return Status::OK();
}

Status ProjectOp::Next(RecordBatch* out, bool* eos) {
  ECODB_RETURN_IF_ERROR(ctx_->PollCancel());
  RecordBatch batch;
  ECODB_RETURN_IF_ERROR(child_->Next(&batch, eos));
  if (*eos) return Status::OK();
  RecordBatch projected(schema_);
  for (size_t i = 0; i < items_.size(); ++i) {
    ctx_->ChargeInstructions(items_[i].expr->InstructionsPerRow() *
                             static_cast<double>(batch.num_rows()));
    ECODB_RETURN_IF_ERROR(
        items_[i].expr->EvaluateInto(batch, &scratch_, &projected.column(i)));
  }
  ECODB_RETURN_IF_ERROR(projected.SealRows(batch.num_rows()));
  *out = std::move(projected);
  return Status::OK();
}

void ProjectOp::Close() { child_->Close(); }

}  // namespace ecodb::exec

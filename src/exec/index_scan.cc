#include "exec/index_scan.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "storage/page.h"

namespace ecodb::exec {

IndexScanOp::IndexScanOp(const storage::TableStorage* table,
                         const storage::BTreeIndex* index,
                         std::vector<std::string> columns, int64_t lo,
                         int64_t hi)
    : table_(table),
      index_(index),
      column_names_(std::move(columns)),
      lo_(lo),
      hi_(hi) {}

Status IndexScanOp::Open(ExecContext* ctx) {
  ctx_ = ctx;

  column_indexes_.clear();
  if (column_names_.empty()) {
    for (int i = 0; i < table_->schema().num_columns(); ++i) {
      column_indexes_.push_back(i);
      column_names_.push_back(table_->schema().column(i).name);
    }
  } else {
    for (const std::string& name : column_names_) {
      const int idx = table_->schema().FindColumn(name);
      if (idx < 0) return Status::NotFound("index scan column '" + name +
                                           "'");
      column_indexes_.push_back(idx);
    }
  }
  schema_ = table_->schema().ProjectIndexes(column_indexes_);

  // --- Index probe: real tree traversal.
  row_ids_ = index_->RangeScan(lo_, hi_);
  for (uint64_t id : row_ids_) {
    if (id >= table_->row_count()) {
      return Status::Internal("index row id out of table range");
    }
  }

  // --- Device charging. Index pages are random reads (root-to-leaf path
  // plus the qualifying leaf chain); heap rows are fetched page-wise, with
  // adjacent row ids sharing a page.
  const uint64_t page = storage::Page::kPageSize;
  const size_t index_pages = index_->PagesForRange(lo_, hi_);
  const int row_width = std::max(1, table_->schema().RowWidthBytes());
  const uint64_t rows_per_page = std::max<uint64_t>(1, page / row_width);
  std::set<uint64_t> pages;
  for (uint64_t id : row_ids_) pages.insert(id / rows_per_page);
  heap_pages_ = pages.size();

  if (table_->device() != nullptr) {
    for (size_t i = 0; i < index_pages; ++i) {
      ECODB_RETURN_IF_ERROR(ctx->PollCancel());
      ECODB_RETURN_IF_ERROR(
          ctx->ChargeRead(table_->device(), page, /*sequential=*/false));
    }
    for (size_t i = 0; i < heap_pages_; ++i) {
      ECODB_RETURN_IF_ERROR(ctx->PollCancel());
      ECODB_RETURN_IF_ERROR(
          ctx->ChargeRead(table_->device(), page, /*sequential=*/false));
    }
  }

  // --- CPU: descent comparisons + per-match touch.
  const double descent = 20.0 * static_cast<double>(index_->height());
  ctx->ChargeInstructions(descent +
                          ctx->options().costs.tuple_touch *
                              static_cast<double>(row_ids_.size()) *
                              static_cast<double>(column_indexes_.size()));
  cursor_ = 0;
  open_ = true;
  return Status::OK();
}

Status IndexScanOp::Next(RecordBatch* out, bool* eos) {
  if (!open_) return Status::FailedPrecondition("index scan not open");
  ECODB_RETURN_IF_ERROR(ctx_->PollCancel());
  if (cursor_ >= row_ids_.size()) {
    *eos = true;
    return Status::OK();
  }
  *eos = false;
  const size_t take =
      std::min(ctx_->options().batch_rows, row_ids_.size() - cursor_);
  RecordBatch batch(schema_);
  for (size_t i = 0; i < take; ++i) {
    const size_t row = row_ids_[cursor_ + i];
    for (size_t c = 0; c < column_indexes_.size(); ++c) {
      const storage::ColumnData& src =
          table_->RawColumn(column_indexes_[c]);
      storage::ColumnData& dst = batch.column(c);
      switch (src.type) {
        case catalog::DataType::kInt64:
        case catalog::DataType::kDate:
          dst.i64.push_back(src.i64[row]);
          break;
        case catalog::DataType::kDouble:
          dst.f64.push_back(src.f64[row]);
          break;
        case catalog::DataType::kString:
          dst.str.push_back(src.str[row]);
          break;
      }
    }
  }
  ECODB_RETURN_IF_ERROR(batch.SealRows(take));
  cursor_ += take;
  *out = std::move(batch);
  return Status::OK();
}

void IndexScanOp::Close() { open_ = false; }

}  // namespace ecodb::exec

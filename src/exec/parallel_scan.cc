#include "exec/parallel_scan.h"

#include <algorithm>
#include <cassert>

#include "exec/exec_context.h"

namespace ecodb::exec {

std::vector<ScanRowRange> MorselizeRanges(
    const std::vector<ScanRowRange>& ranges, size_t block_rows,
    size_t target_rows) {
  const size_t align = std::max<size_t>(1, block_rows);
  // Round the target up to a whole number of zone blocks so every cut
  // lands on a block boundary (ranges already start block-aligned).
  const size_t step = std::max(align, (target_rows + align - 1) / align * align);
  std::vector<ScanRowRange> morsels;
  for (const ScanRowRange& r : ranges) {
    for (size_t begin = r.begin; begin < r.end; begin += step) {
      morsels.push_back({begin, std::min(r.end, begin + step)});
    }
  }
  return morsels;
}

ParallelTableScanOp::ParallelTableScanOp(const storage::TableStorage* table,
                                         std::vector<std::string> columns,
                                         ExprPtr prune_filter,
                                         ExprPtr exact_filter)
    : table_(table),
      column_names_(std::move(columns)),
      prune_filter_(std::move(prune_filter)),
      exact_filter_(std::move(exact_filter)) {}

Status ParallelTableScanOp::Open(ExecContext* ctx) {
  // ecodb-lint: coordinator-only
  ctx_ = ctx;
  ECODB_RETURN_IF_ERROR(ctx->PollCancel());

  column_indexes_.clear();
  if (column_names_.empty()) {
    for (int i = 0; i < table_->schema().num_columns(); ++i) {
      column_indexes_.push_back(i);
      column_names_.push_back(table_->schema().column(i).name);
    }
  } else {
    for (const std::string& name : column_names_) {
      const int idx = table_->schema().FindColumn(name);
      if (idx < 0) return Status::NotFound("scan column '" + name + "'");
      column_indexes_.push_back(idx);
    }
  }
  schema_ = table_->schema().ProjectIndexes(column_indexes_);
  if (exact_filter_ != nullptr) {
    ECODB_RETURN_IF_ERROR(exact_filter_->Bind(schema_));
  }

  // Pruning, transfer, and decode charges share the serial scan's helpers,
  // so the coordinator-side accounting is identical at every dop.
  ScanPruning pruning = PruneScan(prune_filter_, *table_);
  blocks_skipped_ = pruning.blocks_skipped;
  const uint64_t bytes =
      ScanTransferBytes(*table_, column_indexes_, pruning.selected_fraction);
  if (bytes > 0 && table_->device() != nullptr) {
    ECODB_RETURN_IF_ERROR(
        ctx->ChargeRead(table_->device(), bytes, /*sequential=*/true));
  }
  ctx->ChargeInstructions(
      ScanDecodeInstructions(*table_, column_indexes_,
                             pruning.selected_fraction) *
      ctx->options().costs.decode_scale);

  // Column sources: borrow uncompressed lanes in place; decode compressed
  // columns across the pool (one task per compressed column).
  const size_t n_cols = column_indexes_.size();
  sources_.assign(n_cols, nullptr);
  owned_decodes_.assign(n_cols, storage::ColumnData{});
  std::vector<size_t> to_decode;
  for (size_t c = 0; c < n_cols; ++c) {
    const int idx = column_indexes_[c];
    if (table_->column_layout(idx).compression ==
        storage::CompressionKind::kNone) {
      sources_[c] = &table_->RawColumn(idx);
    } else {
      to_decode.push_back(c);
    }
  }
  if (!to_decode.empty()) {
    WorkerPool* pool = ctx->worker_pool();
    ECODB_RETURN_IF_ERROR(pool->Run(
        to_decode.size(), [&](size_t t, int /*slot*/) -> Status {
          // ecodb-lint: worker-context
          const size_t c = to_decode[t];
          ECODB_ASSIGN_OR_RETURN(owned_decodes_[c],
                                 table_->ReadColumn(column_indexes_[c]));
          return Status::OK();
        }));
    for (size_t c : to_decode) sources_[c] = &owned_decodes_[c];
  }

  morsels_ = MorselizeRanges(pruning.ranges, table_->zone_maps().block_rows,
                             ctx->options().morsel_rows);

  // The fused filter's modeled cost is charged up front from the selected
  // row total (dop-invariant; mirrors what a downstream FilterOp would
  // charge on the scan's output).
  if (exact_filter_ != nullptr) {
    uint64_t selected = 0;
    for (const ScanRowRange& m : morsels_) selected += m.end - m.begin;
    ctx->ChargeInstructions(exact_filter_->InstructionsPerRow() *
                            static_cast<double>(selected));
  }

  slots_.clear();
  materialized_ = false;
  cursor_ = 0;
  open_ = true;
  return Status::OK();
}

Status ParallelTableScanOp::ProduceMorsel(size_t index, RecordBatch* out,
                                          WorkAccumulator* acc) const {
  // ecodb-lint: worker-context
  assert(index < morsels_.size());
  const ScanRowRange m = morsels_[index];
  const size_t take = m.end - m.begin;
  RecordBatch batch(schema_);
  for (size_t c = 0; c < sources_.size(); ++c) {
    storage::ColumnData& lane = batch.column(c);
    const storage::ColumnData& src = *sources_[c];
    switch (src.type) {
      case catalog::DataType::kInt64:
      case catalog::DataType::kDate:
        lane.i64.assign(src.i64.begin() + static_cast<long>(m.begin),
                        src.i64.begin() + static_cast<long>(m.end));
        break;
      case catalog::DataType::kDouble:
        lane.f64.assign(src.f64.begin() + static_cast<long>(m.begin),
                        src.f64.begin() + static_cast<long>(m.end));
        break;
      case catalog::DataType::kString:
        lane.str.assign(src.str.begin() + static_cast<long>(m.begin),
                        src.str.begin() + static_cast<long>(m.end));
        break;
    }
  }
  ECODB_RETURN_IF_ERROR(batch.SealRows(take));
  acc->rows_in += take;
  if (exact_filter_ != nullptr) {
    ECODB_ASSIGN_OR_RETURN(std::vector<uint8_t> mask,
                           exact_filter_->EvaluateMask(batch));
    batch.FilterInPlace(mask);
  }
  acc->rows_out += batch.num_rows();
  *out = std::move(batch);
  return Status::OK();
}

Status ParallelTableScanOp::Materialize() {
  // ecodb-lint: coordinator-only
  ECODB_RETURN_IF_ERROR(ctx_->PollCancel());
  WorkerPool* pool = ctx_->worker_pool();
  slots_.assign(morsels_.size(), RecordBatch{});
  std::vector<WorkAccumulator> accs(
      static_cast<size_t>(pool->parallelism()));
  ECODB_RETURN_IF_ERROR(
      pool->Run(morsels_.size(), [&](size_t m, int slot) -> Status {
        // ecodb-lint: worker-context
        return ProduceMorsel(m, &slots_[m], &accs[static_cast<size_t>(slot)]);
      }));
  for (const WorkAccumulator& acc : accs) ctx_->MergeWork(acc);
  materialized_ = true;
  cursor_ = 0;
  return Status::OK();
}

Status ParallelTableScanOp::Next(RecordBatch* out, bool* eos) {
  if (!open_) return Status::FailedPrecondition("parallel scan not open");
  ECODB_RETURN_IF_ERROR(ctx_->PollCancel());
  if (!materialized_) ECODB_RETURN_IF_ERROR(Materialize());
  if (cursor_ >= slots_.size()) {
    *eos = true;
    return Status::OK();
  }
  *eos = false;
  *out = std::move(slots_[cursor_]);
  ++cursor_;
  return Status::OK();
}

void ParallelTableScanOp::Close() {
  sources_.clear();
  owned_decodes_.clear();
  slots_.clear();
  open_ = false;
}

}  // namespace ecodb::exec

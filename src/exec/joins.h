// Join operators: hash join, (block) nested-loop join, sort-merge join.
//
// Section 4.1 of the paper uses the hash-join-vs-nested-loop choice as the
// canonical example of an energy-aware optimization: "the hash-join operator
// ... relies on using a large chunk of memory ... From a power perspective,
// these are 'expensive' operations and may tip the balance in favor of
// nested-loop join in more occasions than before." The operators here report
// their memory traffic (hash table builds) and CPU work separately so the
// optimizer's energy model can price exactly that tradeoff.
//
// Output schema convention: left columns then right columns; a right column
// whose name collides with a left column is exposed as "<name>_r".

#ifndef ECODB_EXEC_JOINS_H_
#define ECODB_EXEC_JOINS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "exec/expr.h"
#include "exec/operator.h"
#include "exec/parallel_scan.h"

namespace ecodb::exec {

/// Builds the joined schema per the collision convention above.
catalog::Schema JoinedSchema(const catalog::Schema& left,
                             const catalog::Schema& right);

/// Equi-join on one key column per side. The right (build) side must fit
/// in memory; its size is charged as DRAM traffic.
///
/// When the left (probe) child is a MorselSource (a parallel table scan),
/// the probe phase runs morsel-parallel: each worker pulls probe morsels
/// and probes the read-only build table into a per-morsel output slot;
/// slots are emitted in morsel order and all modeled charges come from
/// dop-invariant row/match totals, so results and accounting match the
/// serial probe exactly.
class HashJoinOp final : public Operator {
 public:
  HashJoinOp(OperatorPtr left, OperatorPtr right, std::string left_key,
             std::string right_key);

  const catalog::Schema& output_schema() const override { return schema_; }
  Status Open(ExecContext* ctx) override;
  Status Next(RecordBatch* out, bool* eos) override;
  void Close() override;

  /// Bytes resident in the build hash table after Open (observability for
  /// the optimizer-vs-actual tests).
  uint64_t build_bytes() const { return build_bytes_; }

 private:
  /// Probes one batch against the build table (read-only; safe to call
  /// concurrently on distinct batches).
  Status ProbeBatch(const RecordBatch& probe, RecordBatch* joined,
                    size_t* matches) const;
  /// Runs the morsel-parallel probe into probe_slots_.
  Status ParallelProbe();

  OperatorPtr left_;
  OperatorPtr right_;
  std::string left_key_name_;
  std::string right_key_name_;
  int left_key_ = -1;
  int right_key_ = -1;
  catalog::Schema schema_;
  // Build side, materialized; int64 and string keys supported.
  RecordBatch build_rows_;
  std::unordered_multimap<int64_t, size_t> i64_index_;
  std::unordered_multimap<std::string, size_t> str_index_;
  bool string_key_ = false;
  uint64_t build_bytes_ = 0;
  // Parallel probe state (set when the left child is a MorselSource).
  MorselSource* probe_source_ = nullptr;
  std::vector<RecordBatch> probe_slots_;  // per-morsel, emitted in order
  bool probed_ = false;
  size_t probe_cursor_ = 0;
  ExecContext* ctx_ = nullptr;
};

/// Block nested-loop join with an arbitrary predicate over the joined
/// schema. Inner (right) side is materialized once.
class NestedLoopJoinOp final : public Operator {
 public:
  NestedLoopJoinOp(OperatorPtr left, OperatorPtr right, ExprPtr predicate);

  const catalog::Schema& output_schema() const override { return schema_; }
  Status Open(ExecContext* ctx) override;
  Status Next(RecordBatch* out, bool* eos) override;
  void Close() override;

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  ExprPtr predicate_;
  catalog::Schema schema_;
  RecordBatch inner_;
  ExecContext* ctx_ = nullptr;
};

/// Sort-merge equi-join: materializes and sorts both sides by key, then
/// merges. CPU-heavier but needs no resident hash table.
class MergeJoinOp final : public Operator {
 public:
  MergeJoinOp(OperatorPtr left, OperatorPtr right, std::string left_key,
              std::string right_key);

  const catalog::Schema& output_schema() const override { return schema_; }
  Status Open(ExecContext* ctx) override;
  Status Next(RecordBatch* out, bool* eos) override;
  void Close() override;

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  std::string left_key_name_;
  std::string right_key_name_;
  catalog::Schema schema_;
  RecordBatch output_;  // fully computed on Open; streamed out in batches
  size_t cursor_ = 0;
  ExecContext* ctx_ = nullptr;
};

}  // namespace ecodb::exec

#endif  // ECODB_EXEC_JOINS_H_

// Filter and projection operators.

#ifndef ECODB_EXEC_FILTER_PROJECT_H_
#define ECODB_EXEC_FILTER_PROJECT_H_

#include <string>
#include <vector>

#include "exec/expr.h"
#include "exec/operator.h"

namespace ecodb::exec {

/// Keeps rows for which `predicate` evaluates non-zero.
class FilterOp final : public Operator {
 public:
  FilterOp(OperatorPtr child, ExprPtr predicate);

  const catalog::Schema& output_schema() const override {
    return child_->output_schema();
  }
  Status Open(ExecContext* ctx) override;
  Status Next(RecordBatch* out, bool* eos) override;
  void Close() override;

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
  ExecContext* ctx_ = nullptr;
  // Reused across batches by the fused evaluator (operator runs
  // single-threaded, so sharing is safe).
  EvalScratch scratch_;
  std::vector<uint8_t> mask_;
};

/// One output column: an expression plus its name.
struct ProjectionItem {
  std::string name;
  ExprPtr expr;
};

/// Computes expressions over the child's rows.
class ProjectOp final : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::vector<ProjectionItem> items);

  const catalog::Schema& output_schema() const override { return schema_; }
  Status Open(ExecContext* ctx) override;
  Status Next(RecordBatch* out, bool* eos) override;
  void Close() override;

 private:
  OperatorPtr child_;
  std::vector<ProjectionItem> items_;
  catalog::Schema schema_;
  ExecContext* ctx_ = nullptr;
  EvalScratch scratch_;
};

}  // namespace ecodb::exec

#endif  // ECODB_EXEC_FILTER_PROJECT_H_

// Hash aggregation: GROUP BY over key columns with SUM/COUNT/MIN/MAX/AVG.
//
// The binding, key-encoding, accumulation, and row-emission pieces are
// shared free helpers so the serial HashAggregateOp and the parallel
// partitioned aggregate (parallel_aggregate.h) compute with exactly the
// same arithmetic.

#ifndef ECODB_EXEC_AGGREGATE_H_
#define ECODB_EXEC_AGGREGATE_H_

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "exec/expr.h"
#include "exec/operator.h"

namespace ecodb::exec {

enum class AggFunc { kSum, kCount, kMin, kMax, kAvg };

const char* AggFuncName(AggFunc func);

/// One aggregate output: func over an input expression.
struct AggregateItem {
  std::string name;  // output column name
  AggFunc func = AggFunc::kCount;
  /// Input expression; may be null for COUNT(*).
  ExprPtr input;
};

/// Running accumulator of one group (all aggregate functions at once; the
/// final value is picked per function at emission).
struct GroupAccum {
  std::vector<Value> keys;
  std::vector<double> sum;
  std::vector<int64_t> count;
  std::vector<double> min;
  std::vector<double> max;
};

/// Resolves group-by names and binds aggregate inputs against `in`,
/// producing the key column indexes and the output schema.
Status BindAggregation(const catalog::Schema& in,
                       const std::vector<std::string>& group_by_names,
                       std::vector<AggregateItem>* aggregates,
                       std::vector<int>* group_by,
                       catalog::Schema* out_schema);

/// Encodes row `row`'s group key into `key` (deterministic; strings are
/// length-prefixed so keys never collide across types).
void EncodeGroupKey(const RecordBatch& batch, const std::vector<int>& group_by,
                    size_t row, std::string* key);

/// Prepares a fresh accumulator for the group that row `row` starts.
void InitGroupAccum(GroupAccum* gs, const RecordBatch& batch,
                    const std::vector<int>& group_by, size_t row,
                    size_t num_aggregates);

/// The all-zero accumulator a global aggregate over no rows emits.
GroupAccum ZeroGroupAccum(size_t num_aggregates);

/// Folds `from` into `into` (same group observed in another partial).
void MergeGroupAccum(GroupAccum* into, const GroupAccum& from);

/// Appends the group's output row (keys then one value per aggregate).
Status AppendGroupRow(const GroupAccum& gs,
                      const std::vector<AggregateItem>& aggregates,
                      RecordBatch* batch);

/// Aggregates one batch into `groups` — any map keyed by the encoded group
/// key (the serial operator uses an ordered std::map, parallel partials use
/// unordered_map). Pure accumulation; the caller owns the cost charges.
template <typename GroupMap>
Status AccumulateBatch(const RecordBatch& batch,
                       const std::vector<int>& group_by,
                       const std::vector<AggregateItem>& aggregates,
                       GroupMap* groups) {
  std::vector<ColumnData> inputs(aggregates.size());
  for (size_t a = 0; a < aggregates.size(); ++a) {
    if (aggregates[a].input != nullptr) {
      ECODB_ASSIGN_OR_RETURN(inputs[a], aggregates[a].input->Evaluate(batch));
    }
  }
  std::string key;
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    EncodeGroupKey(batch, group_by, r, &key);
    auto [it, inserted] = groups->try_emplace(key);
    GroupAccum& gs = it->second;
    if (inserted) {
      InitGroupAccum(&gs, batch, group_by, r, aggregates.size());
    }
    for (size_t a = 0; a < aggregates.size(); ++a) {
      double v = 0.0;
      if (aggregates[a].input != nullptr) {
        const ColumnData& lane = inputs[a];
        v = lane.type == catalog::DataType::kDouble
                ? lane.f64[r]
                : static_cast<double>(lane.i64[r]);
      }
      gs.sum[a] += v;
      gs.count[a] += 1;
      gs.min[a] = std::min(gs.min[a], v);
      gs.max[a] = std::max(gs.max[a], v);
    }
  }
  return Status::OK();
}

class HashAggregateOp final : public Operator {
 public:
  /// `group_by` may be empty (global aggregate: exactly one output row).
  HashAggregateOp(OperatorPtr child, std::vector<std::string> group_by,
                  std::vector<AggregateItem> aggregates);

  const catalog::Schema& output_schema() const override { return schema_; }
  Status Open(ExecContext* ctx) override;
  Status Next(RecordBatch* out, bool* eos) override;
  void Close() override;

 private:
  Status Consume(const RecordBatch& batch);

  OperatorPtr child_;
  std::vector<std::string> group_by_names_;
  std::vector<int> group_by_;
  std::vector<AggregateItem> aggregates_;
  catalog::Schema schema_;
  // Deterministic output ordering for tests: ordered map on the encoded key.
  std::map<std::string, GroupAccum> groups_;
  bool computed_ = false;
  std::vector<std::string> emit_order_;
  size_t cursor_ = 0;
  ExecContext* ctx_ = nullptr;
};

}  // namespace ecodb::exec

#endif  // ECODB_EXEC_AGGREGATE_H_

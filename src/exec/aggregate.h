// Hash aggregation: GROUP BY over key columns with SUM/COUNT/MIN/MAX/AVG.

#ifndef ECODB_EXEC_AGGREGATE_H_
#define ECODB_EXEC_AGGREGATE_H_

#include <map>
#include <string>
#include <vector>

#include "exec/expr.h"
#include "exec/operator.h"

namespace ecodb::exec {

enum class AggFunc { kSum, kCount, kMin, kMax, kAvg };

const char* AggFuncName(AggFunc func);

/// One aggregate output: func over an input expression.
struct AggregateItem {
  std::string name;  // output column name
  AggFunc func = AggFunc::kCount;
  /// Input expression; may be null for COUNT(*).
  ExprPtr input;
};

class HashAggregateOp final : public Operator {
 public:
  /// `group_by` may be empty (global aggregate: exactly one output row).
  HashAggregateOp(OperatorPtr child, std::vector<std::string> group_by,
                  std::vector<AggregateItem> aggregates);

  const catalog::Schema& output_schema() const override { return schema_; }
  Status Open(ExecContext* ctx) override;
  Status Next(RecordBatch* out, bool* eos) override;
  void Close() override;

 private:
  struct GroupState {
    std::vector<Value> keys;
    std::vector<double> sum;
    std::vector<int64_t> count;
    std::vector<double> min;
    std::vector<double> max;
    bool seen = false;
  };

  Status Consume(const RecordBatch& batch);

  OperatorPtr child_;
  std::vector<std::string> group_by_names_;
  std::vector<int> group_by_;
  std::vector<AggregateItem> aggregates_;
  catalog::Schema schema_;
  // Deterministic output ordering for tests: ordered map on the encoded key.
  std::map<std::string, GroupState> groups_;
  bool computed_ = false;
  std::vector<std::string> emit_order_;
  size_t cursor_ = 0;
  ExecContext* ctx_ = nullptr;
};

}  // namespace ecodb::exec

#endif  // ECODB_EXEC_AGGREGATE_H_

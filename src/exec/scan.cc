#include "exec/scan.h"

#include <algorithm>

#include "exec/operator.h"
#include "storage/zone_map.h"

namespace ecodb::exec {

StatusOr<QueryResultSet> CollectAll(Operator* root, ExecContext* ctx) {
  // Poll before Open so a session whose deadline sits exactly at its
  // admission instant stops before charging any work at all.
  ECODB_RETURN_IF_ERROR(ctx->PollCancel());
  ECODB_RETURN_IF_ERROR(root->Open(ctx));
  QueryResultSet result;
  result.schema = root->output_schema();
  bool eos = false;
  while (!eos) {
    ECODB_RETURN_IF_ERROR(ctx->PollCancel());
    RecordBatch batch;
    ECODB_RETURN_IF_ERROR(root->Next(&batch, &eos));
    if (batch.num_rows() > 0) {
      ctx->CountRows(batch.num_rows());
      result.batches.push_back(std::move(batch));
    }
  }
  root->Close();
  return result;
}

namespace {

// Conservative per-block predicate check: may a row in a block with zone
// entry `z` satisfy `op` against literal `v`? Works on the numeric view.
bool ZoneMayMatch(CompareOp op, double zmin, double zmax, double v) {
  switch (op) {
    case CompareOp::kEq:
      return zmin <= v && v <= zmax;
    case CompareOp::kNe:
      return !(zmin == v && zmax == v);
    case CompareOp::kLt:
      return zmin < v;
    case CompareOp::kLe:
      return zmin <= v;
    case CompareOp::kGt:
      return zmax > v;
    case CompareOp::kGe:
      return zmax >= v;
  }
  return true;
}

}  // namespace

// Recursively evaluates the prune filter over zone maps into a per-block
// "may match" bitmap. Unknown shapes prune nothing (all true).
std::vector<bool> ZoneBlocksMayMatch(const ExprPtr& e,
                                     const storage::TableStorage& table) {
  const storage::ZoneMapSet& zones = table.zone_maps();
  const size_t n = zones.num_blocks();
  std::vector<bool> all(n, true);
  if (e == nullptr) return all;

  switch (e->kind()) {
    case ExprKind::kLogical: {
      std::vector<bool> l = ZoneBlocksMayMatch(e->lhs(), table);
      const std::vector<bool> r = ZoneBlocksMayMatch(e->rhs(), table);
      for (size_t i = 0; i < n; ++i) {
        l[i] = e->logical_op() == LogicalOp::kAnd ? (l[i] && r[i])
                                                  : (l[i] || r[i]);
      }
      return l;
    }
    case ExprKind::kCompare: {
      const ExprPtr& lhs = e->lhs();
      const ExprPtr& rhs = e->rhs();
      const bool col_lit = lhs->kind() == ExprKind::kColumn &&
                           rhs->kind() == ExprKind::kLiteral;
      const bool lit_col = lhs->kind() == ExprKind::kLiteral &&
                           rhs->kind() == ExprKind::kColumn;
      if (!col_lit && !lit_col) return all;
      const std::string& name =
          col_lit ? lhs->column_name() : rhs->column_name();
      const Value& lit = col_lit ? rhs->literal() : lhs->literal();
      const int col = table.schema().FindColumn(name);
      if (col < 0) return all;

      CompareOp op = e->compare_op();
      if (lit_col) {  // normalize "lit OP col" to "col OP' lit"
        switch (op) {
          case CompareOp::kLt:
            op = CompareOp::kGt;
            break;
          case CompareOp::kLe:
            op = CompareOp::kGe;
            break;
          case CompareOp::kGt:
            op = CompareOp::kLt;
            break;
          case CompareOp::kGe:
            op = CompareOp::kLe;
            break;
          default:
            break;
        }
      }

      const catalog::DataType type = table.schema().column(col).type;
      std::vector<bool> out(n, true);
      for (size_t b = 0; b < n; ++b) {
        const storage::ZoneEntry& z = table.zone_maps().entries[col][b];
        double zmin, zmax, v;
        if (type == catalog::DataType::kDouble) {
          zmin = z.min_f64;
          zmax = z.max_f64;
          v = lit.AsDouble();
        } else if (type == catalog::DataType::kString) {
          if (lit.type != catalog::DataType::kString) return all;
          zmin = static_cast<double>(z.min_i64);
          zmax = static_cast<double>(z.max_i64);
          v = static_cast<double>(storage::ZoneStringPrefixKey(lit.str));
          // Prefix summaries only support equality pruning safely (two
          // different strings can share a prefix key).
          if (op != CompareOp::kEq) return all;
        } else {
          zmin = static_cast<double>(z.min_i64);
          zmax = static_cast<double>(z.max_i64);
          v = lit.AsDouble();
        }
        out[b] = ZoneMayMatch(op, zmin, zmax, v);
      }
      return out;
    }
    default:
      return all;  // NOT and arithmetic shapes: no pruning
  }
}

ScanPruning PruneScan(const ExprPtr& filter,
                      const storage::TableStorage& table) {
  ScanPruning out;
  const size_t total_rows = table.row_count();
  const bool pruning =
      filter != nullptr && !table.zone_maps().empty() && total_rows > 0;
  if (!pruning) {
    out.ranges.push_back({0, total_rows});
    return out;
  }
  const std::vector<bool> keep = ZoneBlocksMayMatch(filter, table);
  const size_t block_rows = table.zone_maps().block_rows;
  size_t kept_blocks = 0;
  for (size_t b = 0; b < keep.size(); ++b) {
    if (!keep[b]) {
      ++out.blocks_skipped;
      continue;
    }
    ++kept_blocks;
    const size_t begin = b * block_rows;
    const size_t end = std::min(total_rows, begin + block_rows);
    if (!out.ranges.empty() && out.ranges.back().end == begin) {
      out.ranges.back().end = end;  // coalesce adjacent blocks
    } else {
      out.ranges.push_back({begin, end});
    }
  }
  out.selected_fraction = keep.empty()
                              ? 1.0
                              : static_cast<double>(kept_blocks) /
                                    static_cast<double>(keep.size());
  return out;
}

uint64_t ScanTransferBytes(const storage::TableStorage& table,
                           const std::vector<int>& column_indexes,
                           double selected_fraction) {
  // Skipped blocks skip their bytes for prunable storage (uncompressed
  // columns / row layout); whole-column codecs must still stream fully.
  if (table.layout() == storage::TableLayout::kRow) {
    return static_cast<uint64_t>(
        static_cast<double>(table.ScanBytes(column_indexes)) *
        selected_fraction);
  }
  uint64_t bytes = 0;
  for (int idx : column_indexes) {
    const storage::ColumnLayout& layout = table.column_layout(idx);
    if (layout.compression == storage::CompressionKind::kNone) {
      bytes += static_cast<uint64_t>(
          static_cast<double>(layout.encoded_bytes) * selected_fraction);
    } else {
      bytes += layout.encoded_bytes;
    }
  }
  return bytes;
}

double ScanDecodeInstructions(const storage::TableStorage& table,
                              const std::vector<int>& column_indexes,
                              double selected_fraction) {
  const double total_rows = static_cast<double>(table.row_count());
  double decode_instr = 0.0;
  for (int idx : column_indexes) {
    const storage::ColumnLayout& layout = table.column_layout(idx);
    double per_value = 1.0;
    double rows = total_rows * selected_fraction;
    if (layout.compression == storage::CompressionKind::kDictionary) {
      per_value = storage::StringDictionaryCodec()
                      .cost_profile()
                      .decode_instructions_per_value;
      rows = total_rows;  // whole-column decode
    } else if (layout.compression != storage::CompressionKind::kNone) {
      per_value = storage::MakeInt64Codec(layout.compression)
                      ->cost_profile()
                      .decode_instructions_per_value;
      rows = total_rows;
    }
    decode_instr += per_value * rows;
  }
  return decode_instr;
}

TableScanOp::TableScanOp(const storage::TableStorage* table,
                         std::vector<std::string> columns,
                         ExprPtr prune_filter)
    : table_(table),
      column_names_(std::move(columns)),
      prune_filter_(std::move(prune_filter)) {}

Status TableScanOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  batch_rows_ = ctx->options().batch_rows;

  column_indexes_.clear();
  if (column_names_.empty()) {
    for (int i = 0; i < table_->schema().num_columns(); ++i) {
      column_indexes_.push_back(i);
      column_names_.push_back(table_->schema().column(i).name);
    }
  } else {
    for (const std::string& name : column_names_) {
      const int idx = table_->schema().FindColumn(name);
      if (idx < 0) return Status::NotFound("scan column '" + name + "'");
      column_indexes_.push_back(idx);
    }
  }
  schema_ = table_->schema().ProjectIndexes(column_indexes_);

  // --- Zone-map pruning: selected row ranges + the surviving fraction.
  ScanPruning pruning = PruneScan(prune_filter_, *table_);
  ranges_ = std::move(pruning.ranges);
  blocks_skipped_ = pruning.blocks_skipped;

  // --- Device transfer (skipped blocks skip their bytes where the storage
  // format allows it).
  const uint64_t bytes =
      ScanTransferBytes(*table_, column_indexes_, pruning.selected_fraction);
  double shared_ready = 0.0;
  if (ctx->ConsumeSharedScan(table_, &shared_ready)) {
    // This scan rides another session's in-window transfer of the same
    // table: the paying session billed the device; this query only waits
    // for the shared data to become available.
    ctx->JoinIoCompletion(shared_ready);
  } else if (bytes > 0 && table_->device() != nullptr) {
    ECODB_RETURN_IF_ERROR(
        ctx->ChargeRead(table_->device(), bytes, /*sequential=*/true));
  }

  // --- Real decode of compressed columns + per-value touch cost.
  decoded_.clear();
  decoded_.reserve(column_indexes_.size());
  for (int idx : column_indexes_) {
    ECODB_ASSIGN_OR_RETURN(storage::ColumnData data,
                           table_->ReadColumn(idx));
    decoded_.push_back(std::move(data));
  }
  ctx->ChargeInstructions(
      ScanDecodeInstructions(*table_, column_indexes_,
                             pruning.selected_fraction) *
      ctx->options().costs.decode_scale);

  range_idx_ = 0;
  cursor_ = ranges_.empty() ? 0 : ranges_[0].begin;
  open_ = true;
  return Status::OK();
}

Status TableScanOp::Next(RecordBatch* out, bool* eos) {
  if (!open_) return Status::FailedPrecondition("scan not open");
  ECODB_RETURN_IF_ERROR(ctx_->PollCancel());
  // Advance past exhausted ranges.
  while (range_idx_ < ranges_.size() && cursor_ >= ranges_[range_idx_].end) {
    ++range_idx_;
    if (range_idx_ < ranges_.size()) cursor_ = ranges_[range_idx_].begin;
  }
  if (range_idx_ >= ranges_.size()) {
    *eos = true;
    return Status::OK();
  }
  *eos = false;
  const size_t take =
      std::min(batch_rows_, ranges_[range_idx_].end - cursor_);
  RecordBatch batch(schema_);
  for (size_t c = 0; c < decoded_.size(); ++c) {
    storage::ColumnData& lane = batch.column(c);
    const storage::ColumnData& src = decoded_[c];
    switch (src.type) {
      case catalog::DataType::kInt64:
      case catalog::DataType::kDate:
        lane.i64.assign(src.i64.begin() + static_cast<long>(cursor_),
                        src.i64.begin() + static_cast<long>(cursor_ + take));
        break;
      case catalog::DataType::kDouble:
        lane.f64.assign(src.f64.begin() + static_cast<long>(cursor_),
                        src.f64.begin() + static_cast<long>(cursor_ + take));
        break;
      case catalog::DataType::kString:
        lane.str.assign(src.str.begin() + static_cast<long>(cursor_),
                        src.str.begin() + static_cast<long>(cursor_ + take));
        break;
    }
  }
  ECODB_RETURN_IF_ERROR(batch.SealRows(take));
  cursor_ += take;
  *out = std::move(batch);
  return Status::OK();
}

void TableScanOp::Close() {
  decoded_.clear();
  open_ = false;
}

}  // namespace ecodb::exec

#include "exec/worker_pool.h"

#include <cassert>

namespace ecodb::exec {

WorkerPool::WorkerPool(int parallelism) : parallelism_(parallelism) {
  assert(parallelism >= 1);
  threads_.reserve(static_cast<size_t>(parallelism_ - 1));
  for (int slot = 1; slot < parallelism_; ++slot) {
    threads_.emplace_back([this, slot] {
      uint64_t seen = 0;
      std::unique_lock<std::mutex> lock(mu_);
      while (true) {
        work_cv_.wait(lock, [&] { return shutdown_ || job_seq_ != seen; });
        if (shutdown_) return;
        seen = job_seq_;
        lock.unlock();
        ClaimLoop(slot);
        lock.lock();
        if (++participants_done_ == static_cast<size_t>(parallelism_)) {
          done_cv_.notify_all();
        }
      }
    });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::ClaimLoop(int slot) {
  while (true) {
    const size_t t = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (t >= num_tasks_) return;
    const Status s = (*task_)(t, slot);
    if (!s.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      if (first_error_.ok()) first_error_ = s;
      // Park the ticket past the end so no further tasks start.
      next_task_.store(num_tasks_, std::memory_order_relaxed);
    }
  }
}

Status WorkerPool::Run(size_t num_tasks, const Task& fn) {
  if (num_tasks == 0) return Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    assert(task_ == nullptr && "WorkerPool::Run is not reentrant");
    task_ = &fn;
    num_tasks_ = num_tasks;
    next_task_.store(0, std::memory_order_relaxed);
    first_error_ = Status::OK();
    participants_done_ = 0;
    ++job_seq_;
  }
  work_cv_.notify_all();
  ClaimLoop(/*slot=*/0);
  std::unique_lock<std::mutex> lock(mu_);
  ++participants_done_;
  done_cv_.wait(lock, [&] {
    return participants_done_ == static_cast<size_t>(parallelism_);
  });
  task_ = nullptr;
  return first_error_;
}

}  // namespace ecodb::exec

// Columnar record batches: the unit of data flow between operators.
//
// EcoDB executes vectorized: operators pull RecordBatches (a schema plus
// typed column lanes) of up to kDefaultBatchRows rows. Column lanes reuse
// storage::ColumnData so table storage feeds scans without conversion.

#ifndef ECODB_EXEC_BATCH_H_
#define ECODB_EXEC_BATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "storage/table_storage.h"
#include "util/status.h"

namespace ecodb::exec {

using storage::ColumnData;

constexpr size_t kDefaultBatchRows = 4096;

/// A scalar runtime value (literals, aggregate results, row cells).
struct Value {
  catalog::DataType type = catalog::DataType::kInt64;
  int64_t i64 = 0;
  double f64 = 0.0;
  std::string str;

  static Value Int64(int64_t v) {
    Value out;
    out.type = catalog::DataType::kInt64;
    out.i64 = v;
    return out;
  }
  static Value Double(double v) {
    Value out;
    out.type = catalog::DataType::kDouble;
    out.f64 = v;
    return out;
  }
  static Value String(std::string v) {
    Value out;
    out.type = catalog::DataType::kString;
    out.str = std::move(v);
    return out;
  }
  static Value Date(int64_t days) {
    Value out;
    out.type = catalog::DataType::kDate;
    out.i64 = days;
    return out;
  }

  /// Numeric view (int64/date promoted to double).
  double AsDouble() const {
    return type == catalog::DataType::kDouble ? f64
                                              : static_cast<double>(i64);
  }

  bool operator==(const Value&) const = default;
};

/// Batch of rows in columnar form.
class RecordBatch {
 public:
  RecordBatch() = default;
  explicit RecordBatch(catalog::Schema schema);

  const catalog::Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  ColumnData& column(size_t i) { return columns_[i]; }
  const ColumnData& column(size_t i) const { return columns_[i]; }

  /// Row cell as a Value (convenience for tests and result rendering).
  Value GetValue(size_t row, size_t col) const;

  /// Appends one row of values; types must match the schema.
  Status AppendRow(const std::vector<Value>& row);

  /// Sets the row count after bulk-filling the lanes directly.
  Status SealRows(size_t rows);

  /// Copies row `row` of `src` onto the end of this batch (schemas must
  /// be column-compatible by position).
  void AppendRowFrom(const RecordBatch& src, size_t row);

  /// Keeps only rows whose mask entry is non-zero.
  void FilterInPlace(const std::vector<uint8_t>& mask);

  bool empty() const { return num_rows_ == 0; }

 private:
  catalog::Schema schema_;
  std::vector<ColumnData> columns_;
  size_t num_rows_ = 0;
};

/// Materialized query result: all batches concatenated.
struct QueryResultSet {
  catalog::Schema schema;
  std::vector<RecordBatch> batches;

  size_t TotalRows() const {
    size_t n = 0;
    for (const auto& b : batches) n += b.num_rows();
    return n;
  }
};

}  // namespace ecodb::exec

#endif  // ECODB_EXEC_BATCH_H_

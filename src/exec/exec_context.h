// ExecContext: per-query resource accounting against the platform.
//
// Operators report their work here in device-neutral units (abstract CPU
// instructions, bytes of device I/O, bytes of DRAM traffic). The context
// converts work into simulated time using the platform's models, tracks the
// query's critical path (CPU and I/O overlap, as in the paper's Figure 2:
// "By overlapping disk with CPU time, the total time is 10 secs"), and on
// Finish() advances the simulated clock and settles energy charges.

#ifndef ECODB_EXEC_EXEC_CONTEXT_H_
#define ECODB_EXEC_EXEC_CONTEXT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/cancel.h"
#include "exec/worker_pool.h"
#include "power/platform.h"
#include "storage/device.h"
#include "util/status.h"

namespace ecodb::storage {
class TableStorage;  // shared-scan waivers key on the table identity only
}  // namespace ecodb::storage

namespace ecodb::exec {

/// Abstract instruction costs of operator inner loops. Shared with the
/// optimizer so estimated and executed CPU work use the same constants.
struct CostConstants {
  double tuple_touch = 1.0;          // reading a value out of a lane
  double hash_build_per_row = 16.0;  // insert into hash table
  double hash_probe_per_row = 10.0;  // probe + compare
  double sort_per_row_log_row = 3.0; // comparison-swap cost factor
  double agg_update_per_row = 8.0;   // group lookup + accumulate
  double nl_join_inner_per_pair = 3.0;
  double output_per_row = 2.0;
  /// Modeled rows per sorted run for external/parallel sort pricing. The
  /// executor's real run size is one morsel (ExecOptions::morsel_rows);
  /// this constant keeps the optimizer's estimate aligned with that
  /// default without coupling it to per-query scheduling knobs.
  double sort_run_rows = 16384.0;
  /// Multiplier applied to codec decode instruction counts (calibration
  /// hook for matching measured decode rates).
  double decode_scale = 1.0;
};

/// Per-query execution knobs (the optimizer sets these on the plan).
struct ExecOptions {
  int dop = 1;      // degree of parallelism for CPU work
  int pstate = 0;   // CPU DVFS state to run at
  size_t batch_rows = 4096;
  /// Target rows per parallel-scan morsel; rounded up to whole zone-map
  /// blocks so morsel boundaries never split a block. Must not affect
  /// results or accounting — only scheduling granularity.
  size_t morsel_rows = 16384;
  CostConstants costs;
};

/// Fault-path accounting surfaced per query: what the retries and degraded
/// reconstruction cost on top of the healthy plan. Populated from the
/// IoResult fields the device stack accumulates (coordinator-only, in
/// deterministic submission order — bit-identical at any dop).
struct FaultSummary {
  uint32_t transient_errors = 0;
  uint32_t degraded_reads = 0;
  double retry_seconds = 0.0;
  double retry_joules = 0.0;
  double reconstruct_instructions = 0.0;
  double reconstruct_joules = 0.0;

  void Accumulate(const storage::IoResult& io) {
    transient_errors += io.transient_errors;
    degraded_reads += io.degraded_reads;
    retry_seconds += io.retry_seconds;
    retry_joules += io.retry_joules;
    reconstruct_instructions += io.reconstruct_instructions;
    reconstruct_joules += io.reconstruct_joules;
  }
};

/// Identity of the serving-core session a query runs under. Every charge an
/// ExecContext books is attributable to this tag, which is what makes the
/// per-tenant energy bill possible (DESIGN.md §12). Outside the serving
/// core the tag stays invalid and nothing changes.
struct SessionTag {
  int64_t session_id = -1;
  int tenant_id = -1;
  bool valid() const { return session_id >= 0; }
};

/// Measured resource use of one query.
struct QueryStats {
  double start_time = 0.0;
  double end_time = 0.0;
  double elapsed_seconds = 0.0;
  double cpu_seconds = 0.0;       // busy core-seconds (not divided by dop)
  double cpu_elapsed_seconds = 0.0;  // CPU critical path (Amdahl: serial +
                                     // parallel / cores)
  double cpu_instructions = 0.0;  // abstract instructions charged (total)
  double cpu_serial_seconds = 0.0;  // portion of cpu_seconds confined to one
                                    // core regardless of dop
  int active_cores = 1;           // cores the query actually occupied
  double io_seconds = 0.0;        // device service time observed
  uint64_t io_bytes = 0;
  uint64_t rows_emitted = 0;
  power::EnergyBreakdown energy;  // per-channel Joules over the query window
  FaultSummary faults;            // retry/degraded-mode cost of this query
  SessionTag session;             // serving attribution (invalid outside it)

  // --- Directly attributable Joules (meter pulses this query caused) ---
  double cpu_active_joules = 0.0;  // CPU settlement pulse (0 until settled)
  double dram_joules = 0.0;        // DRAM traffic pulses
  double io_active_joules = 0.0;   // device pulses, failed attempts included

  /// Pulses the query provably placed on the meter: CPU + DRAM + device
  /// active energy + XOR reconstruction. Excludes background/idle power
  /// (apportioned by the serving core) and excludes faults.retry_joules,
  /// which is an estimate already covered by the real failed-attempt pulses
  /// inside io_active_joules.
  double DirectJoules() const {
    return cpu_active_joules + dram_joules + io_active_joules +
           faults.reconstruct_joules;
  }

  double Joules() const { return energy.it_joules; }
  /// Energy efficiency in the paper's sense: rows of useful output per
  /// Joule (callers with a better work measure can divide themselves).
  double RowsPerJoule() const {
    return Joules() > 0 ? static_cast<double>(rows_emitted) / Joules() : 0.0;
  }
};

class ExecContext {
 public:
  /// `platform` must outlive the context. Construction snapshots the meter
  /// and pins the query start time.
  ExecContext(power::HardwarePlatform* platform, ExecOptions options);

  /// Serving-core constructor: binds the charge stream to `session` and
  /// pins the query start to `start_time` (the admission instant; the
  /// simulated clock is advanced there if it lags). Only the SessionManager
  /// constructs contexts this way — ecodb-lint rule EC7 enforces that
  /// serving paths never build an anonymous context.
  ExecContext(power::HardwarePlatform* platform, ExecOptions options,
              SessionTag session, double start_time);

  const ExecOptions& options() const { return options_; }
  power::HardwarePlatform* platform() { return platform_; }
  const SessionTag& session() const { return session_; }

  // --- Cooperative cancellation (overload protection, DESIGN §14) -------

  /// Installs the session's cancellation state (deadline and/or explicit
  /// kill reason). The serving core sets this at admission.
  void set_cancel_token(const CancelToken& token) { cancel_ = token; }
  const CancelToken& cancel_token() const { return cancel_; }

  /// Cooperative cancellation check, called by every operator pull loop at
  /// batch/morsel boundaries (lint rule EC11). Returns kShed when the token
  /// carries an explicit kill, kDeadlineExceeded when the query's projected
  /// critical path — start + virtual CPU seconds vs. I/O completion, both
  /// pure functions of the charged work — has reached the deadline. The
  /// projection deliberately ignores the dop (VirtualCpuSeconds), so the
  /// kill lands at the same batch boundary at every dop and killed sessions
  /// stay bit-identical under the §7 contract. Charges already booked stay
  /// booked: partial work is billed work.
  Status PollCancel();

  /// The dop-invariant CPU leg of the critical path: all charged
  /// instructions priced on one core (serial + parallel, undivided). This
  /// is the serving core's scheduling/billing timeline (§14) and the
  /// deadline projection's clock.
  double VirtualCpuSeconds() const;

  /// Records `instructions` of CPU work (parallelizable across dop cores).
  void ChargeInstructions(double instructions);

  /// Records CPU work confined to one core regardless of dop (splitter
  /// selection, merge stitching, final emission). Amdahl's law on the
  /// critical path: cpu_elapsed = serial + parallel / cores, while busy
  /// core-seconds — and so active CPU energy — cover both terms in full.
  /// Mirrors the cost model's ResourceEstimate::serial_cpu_instructions.
  void ChargeSerialInstructions(double instructions);

  /// Submits a device read on behalf of the query; service time joins the
  /// query's I/O critical path. Devices overlap with CPU and each other.
  /// Fault propagation: kUnavailable (retries exhausted) and kDataLoss
  /// (dead device) bubble up; successful retries show in stats().faults.
  Status ChargeRead(storage::StorageDevice* device, uint64_t bytes,
                    bool sequential);

  /// Ditto for writes (spills, materialization).
  Status ChargeWrite(storage::StorageDevice* device, uint64_t bytes,
                     bool sequential);

  /// Records DRAM traffic (hash tables, sort buffers).
  void ChargeDram(uint64_t bytes);

  void CountRows(uint64_t rows) { rows_emitted_ += rows; }

  /// Folds a worker's tally into the query's totals (coordinator only, after
  /// the pool round completes). Only the modeled-work counters are merged;
  /// rows_out is the producer's local selectivity, not query output.
  void MergeWork(const WorkAccumulator& acc);

  /// The query's worker pool, sized to min(dop, total cores). Created
  /// lazily on first use; dop 1 never spawns a thread.
  WorkerPool* worker_pool();

  /// Serving core: reuse one fleet-owned WorkerPool across sessions instead
  /// of spawning per-query threads. Charges are unaffected (all modeled
  /// work is computed from dop-invariant totals); only thread reuse changes.
  void UseSharedWorkerPool(WorkerPool* pool) { shared_pool_ = pool; }

  // --- Shared-scan waivers (work sharing across sessions) ---------------

  /// Registers a waiver: this query's scan of `table` rides another
  /// session's device transfer that is ready at `ready_time`. The table
  /// scan consumes the waiver instead of charging the device; the paying
  /// session billed the transfer through its own context.
  void StageSharedScan(const storage::TableStorage* table, double ready_time);

  /// Consumes a staged waiver for `table` if present; `*ready_time` gets
  /// the shared transfer's availability instant. Returns false (leaving
  /// `ready_time` untouched) when the scan must pay its own way.
  bool ConsumeSharedScan(const storage::TableStorage* table,
                         double* ready_time);

  /// Joins an externally produced data-availability instant into the
  /// query's I/O critical path (used by consumed shared-scan waivers).
  void JoinIoCompletion(double completion_time);

  /// Latest I/O completion observed so far (valid any time; the serving
  /// core reports it as the shared transfer's completion).
  double io_completion() const { return io_completion_; }

  /// Elapsed CPU wall-seconds implied by the charged instructions at the
  /// configured dop/P-state: serial charges do not divide by the core
  /// count. Serving-core contexts (valid session tag) instead price every
  /// instruction on one core — the §14 determinism choice: the serving
  /// schedule, and therefore every bill, is identical at any dop.
  double CpuElapsedSeconds() const;

  /// Ends the query: advances the clock to the critical-path completion,
  /// settles CPU energy, and returns the stats (meter delta included).
  /// Equivalent to Complete() + SettleCpu() + clock advance + meter delta.
  QueryStats Finish();

  /// Serving-core split of Finish(): computes the stats (critical path, end
  /// time, direct DRAM/I-O Joules) WITHOUT touching the meter or the clock.
  /// The SessionManager completes overlapping sessions as they run, then
  /// settles their CPU pulses in end-time order so the meter's per-channel
  /// monotonicity holds.
  QueryStats Complete();

  /// Books the CPU settlement pulse for a Complete()d query and records the
  /// charged Joules in stats->cpu_active_joules.
  void SettleCpu(QueryStats* stats);

 private:
  power::HardwarePlatform* platform_;
  ExecOptions options_;
  SessionTag session_;
  CancelToken cancel_;
  double start_time_;
  power::MeterSnapshot start_snapshot_;
  double cpu_instructions_ = 0.0;
  double serial_cpu_instructions_ = 0.0;
  double io_completion_ = 0.0;
  double io_service_seconds_ = 0.0;
  uint64_t io_bytes_ = 0;
  double dram_joules_ = 0.0;
  double io_active_joules_ = 0.0;
  FaultSummary faults_;
  uint64_t rows_emitted_ = 0;
  std::map<const storage::TableStorage*, double> staged_scans_;
  std::unique_ptr<WorkerPool> pool_;
  WorkerPool* shared_pool_ = nullptr;
  bool finished_ = false;
};

}  // namespace ecodb::exec

#endif  // ECODB_EXEC_EXEC_CONTEXT_H_

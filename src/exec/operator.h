// Pull-based (Volcano-style, vectorized) operator interface.
//
// Every operator consumes batches from its children and produces batches of
// its output schema, reporting its CPU / I/O / DRAM work to the ExecContext
// as it goes. `Next` returns batches until it sets `eos`.

#ifndef ECODB_EXEC_OPERATOR_H_
#define ECODB_EXEC_OPERATOR_H_

#include <memory>
#include <vector>

#include "exec/batch.h"
#include "exec/exec_context.h"
#include "util/status.h"

namespace ecodb::exec {

class Operator {
 public:
  virtual ~Operator() = default;

  /// Output schema; valid after Open().
  virtual const catalog::Schema& output_schema() const = 0;

  /// Prepares the operator (binds expressions, opens children, performs
  /// blocking work such as hash builds). `ctx` outlives the operator's use.
  virtual Status Open(ExecContext* ctx) = 0;

  /// Produces the next batch. Sets `*eos` when exhausted (then `out` is
  /// left empty). May legally produce empty non-EOS batches.
  virtual Status Next(RecordBatch* out, bool* eos) = 0;

  /// Releases resources; idempotent.
  virtual void Close() = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Drains `root` into a materialized result set, counting emitted rows into
/// the context. The operator must not yet be open.
StatusOr<QueryResultSet> CollectAll(Operator* root, ExecContext* ctx);

}  // namespace ecodb::exec

#endif  // ECODB_EXEC_OPERATOR_H_

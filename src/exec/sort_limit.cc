#include "exec/sort_limit.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ecodb::exec {

using catalog::DataType;

namespace {

/// Three-way comparison of one value in lane `a` against one in lane `b`
/// (same type; ascending column order).
int CompareLane(const storage::ColumnData& a, size_t ra,
                const storage::ColumnData& b, size_t rb) {
  switch (a.type) {
    case DataType::kInt64:
    case DataType::kDate:
      return a.i64[ra] < b.i64[rb] ? -1 : a.i64[ra] > b.i64[rb] ? 1 : 0;
    case DataType::kDouble:
      return a.f64[ra] < b.f64[rb] ? -1 : a.f64[ra] > b.f64[rb] ? 1 : 0;
    case DataType::kString: {
      const int cmp = a.str[ra].compare(b.str[rb]);
      return cmp < 0 ? -1 : cmp > 0 ? 1 : 0;
    }
  }
  return 0;
}

}  // namespace

int CompareRowsOnKeys(const RecordBatch& a, size_t ra, const RecordBatch& b,
                      size_t rb, const std::vector<SortKey>& keys,
                      const std::vector<int>& key_idx) {
  for (size_t k = 0; k < keys.size(); ++k) {
    const int idx = key_idx[k];
    const int cmp = CompareLane(a.column(idx), ra, b.column(idx), rb);
    if (cmp != 0) return keys[k].ascending ? cmp : -cmp;
  }
  return 0;
}

Status ResolveSortKeys(const catalog::Schema& schema,
                       const std::vector<SortKey>& keys,
                       std::vector<int>* key_idx) {
  key_idx->clear();
  for (const SortKey& k : keys) {
    const int idx = schema.FindColumn(k.column);
    if (idx < 0) return Status::NotFound("sort column '" + k.column + "'");
    key_idx->push_back(idx);
  }
  return Status::OK();
}

SortOp::SortOp(OperatorPtr child, std::vector<SortKey> keys,
               uint64_t memory_budget_bytes,
               storage::StorageDevice* spill_device)
    : child_(std::move(child)),
      keys_(std::move(keys)),
      memory_budget_bytes_(memory_budget_bytes),
      spill_device_(spill_device) {}

Status SortOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ECODB_RETURN_IF_ERROR(child_->Open(ctx));
  const catalog::Schema& schema = child_->output_schema();

  std::vector<int> key_idx;
  ECODB_RETURN_IF_ERROR(ResolveSortKeys(schema, keys_, &key_idx));

  sorted_ = RecordBatch(schema);
  bool eos = false;
  uint64_t bytes = 0;
  while (true) {
    // Polled per batch: a session killed mid-spill keeps the spill
    // watermarks, so the bytes already written stay billed exactly once
    // and nothing after the kill point is charged.
    ECODB_RETURN_IF_ERROR(ctx->PollCancel());
    RecordBatch batch;
    ECODB_RETURN_IF_ERROR(child_->Next(&batch, &eos));
    if (eos) break;
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      sorted_.AppendRowFrom(batch, r);
    }
    bytes += batch.num_rows() * schema.RowWidthBytes();
    // External spill accounting: classic 2-pass merge sort writes runs as
    // memory fills. Writes are billed against spill_write_charged_ so that
    // when Open is retried after a mid-drain error, bytes the device
    // already wrote are never charged twice (the re-drain produces the
    // same prefix — the stream is deterministic).
    if (bytes > memory_budget_bytes_ && spill_device_ != nullptr) {
      spilled_ = true;
      if (bytes > spill_write_charged_) {
        ECODB_RETURN_IF_ERROR(
            ctx->ChargeWrite(spill_device_, bytes - spill_write_charged_,
                             /*sequential=*/true));
        spill_write_charged_ = bytes;
      }
    }
  }

  // The merge pass reads every spilled byte back exactly once.
  if (spilled_ && !spill_read_charged_) {
    ECODB_RETURN_IF_ERROR(ctx->ChargeRead(spill_device_, spill_write_charged_,
                                          /*sequential=*/true));
    spill_read_charged_ = true;
  }
  ctx->ChargeDram(std::min<uint64_t>(bytes, memory_budget_bytes_));

  order_.resize(sorted_.num_rows());
  std::iota(order_.begin(), order_.end(), size_t{0});
  const size_t n = order_.size();
  if (n > 1) {
    ctx->ChargeInstructions(ctx->options().costs.sort_per_row_log_row *
                            static_cast<double>(n) *
                            std::log2(static_cast<double>(n)) *
                            static_cast<double>(keys_.size()));
  }
  std::stable_sort(order_.begin(), order_.end(), [&](size_t a, size_t b) {
    return CompareRowsOnKeys(sorted_, a, sorted_, b, keys_, key_idx) < 0;
  });
  cursor_ = 0;
  return Status::OK();
}

Status SortOp::Next(RecordBatch* out, bool* eos) {
  ECODB_RETURN_IF_ERROR(ctx_->PollCancel());
  if (cursor_ >= order_.size()) {
    *eos = true;
    return Status::OK();
  }
  *eos = false;
  const size_t take =
      std::min(ctx_->options().batch_rows, order_.size() - cursor_);
  RecordBatch batch(child_->output_schema());
  for (size_t i = 0; i < take; ++i) {
    batch.AppendRowFrom(sorted_, order_[cursor_ + i]);
  }
  cursor_ += take;
  *out = std::move(batch);
  return Status::OK();
}

void SortOp::Close() { child_->Close(); }

LimitOp::LimitOp(OperatorPtr child, size_t limit)
    : child_(std::move(child)), limit_(limit) {}

Status LimitOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  emitted_ = 0;
  return child_->Open(ctx);
}

Status LimitOp::Next(RecordBatch* out, bool* eos) {
  ECODB_RETURN_IF_ERROR(ctx_->PollCancel());
  if (emitted_ >= limit_) {
    *eos = true;
    return Status::OK();
  }
  RecordBatch batch;
  ECODB_RETURN_IF_ERROR(child_->Next(&batch, eos));
  if (*eos) return Status::OK();
  if (emitted_ + batch.num_rows() > limit_) {
    std::vector<uint8_t> mask(batch.num_rows(), 0);
    for (size_t r = 0; r < limit_ - emitted_; ++r) mask[r] = 1;
    batch.FilterInPlace(mask);
  }
  emitted_ += batch.num_rows();
  *out = std::move(batch);
  return Status::OK();
}

void LimitOp::Close() { child_->Close(); }

}  // namespace ecodb::exec

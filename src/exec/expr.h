// Expression trees: column references, literals, comparisons, arithmetic,
// and boolean connectives, evaluated columnwise over RecordBatches.
//
// Expressions are built programmatically (EcoDB's API is an embedded query
// builder, not a SQL parser), bound against an input schema, and evaluated
// to produce either a value lane or a selection mask.

#ifndef ECODB_EXEC_EXPR_H_
#define ECODB_EXEC_EXPR_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "exec/batch.h"
#include "util/status.h"

namespace ecodb::exec {

enum class ExprKind {
  kColumn,
  kLiteral,
  kCompare,
  kArith,
  kLogical,
  kNot,
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp { kAdd, kSub, kMul, kDiv };
enum class LogicalOp { kAnd, kOr };

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// Reusable scratch buffers for the fused batch-at-a-time evaluators.
/// Owning one in an operator lets intermediate masks/lanes be reused
/// across batches instead of reallocating per Evaluate call. Slots are
/// indexed by recursion depth; a deque keeps addresses stable while the
/// pool grows mid-evaluation. Not thread-safe: use one per worker.
class EvalScratch {
 public:
  std::vector<uint8_t>* Mask(size_t slot) {
    while (masks_.size() <= slot) masks_.emplace_back();
    return &masks_[slot];
  }
  ColumnData* Lane(size_t slot) {
    while (lanes_.size() <= slot) lanes_.emplace_back();
    return &lanes_[slot];
  }

 private:
  std::deque<std::vector<uint8_t>> masks_;
  std::deque<ColumnData> lanes_;
};

/// Immutable expression node.
class Expr {
 public:
  // Factories.
  static ExprPtr Column(std::string name);
  static ExprPtr Literal(Value v);
  static ExprPtr Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Logical(LogicalOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Not(ExprPtr inner);

  ExprKind kind() const { return kind_; }
  const std::string& column_name() const { return column_name_; }
  const Value& literal() const { return literal_; }
  CompareOp compare_op() const { return compare_op_; }
  ArithOp arith_op() const { return arith_op_; }
  LogicalOp logical_op() const { return logical_op_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }

  /// Resolves column names to indexes and checks types against `schema`.
  /// Must be called (again) before Evaluate when the input schema changes.
  Status Bind(const catalog::Schema& schema);

  /// Output type after a successful Bind.
  catalog::DataType result_type() const { return result_type_; }

  /// Evaluates over the batch into a column lane. Boolean results use the
  /// int64 lane with values 0/1.
  StatusOr<ColumnData> Evaluate(const RecordBatch& batch) const;

  /// Evaluates as a selection mask (expression must be boolean-typed).
  /// Wraps EvaluateMaskInto with a local scratch, so it stays safe to call
  /// concurrently from worker contexts.
  StatusOr<std::vector<uint8_t>> EvaluateMask(const RecordBatch& batch) const;

  /// Fused mask evaluation: compare nodes emit selection bytes directly and
  /// AND/OR combine masks (short-circuiting the batch when the cheaper side
  /// already decides it) — no per-node ColumnData temporaries. Output is
  /// byte-identical to EvaluateMask; `mask` is resized to the batch.
  Status EvaluateMaskInto(const RecordBatch& batch, EvalScratch* scratch,
                          std::vector<uint8_t>* mask) const;

  /// Fused lane evaluation into `out` (replacing its contents), reusing
  /// `scratch` across batches. Byte-identical to Evaluate.
  Status EvaluateInto(const RecordBatch& batch, EvalScratch* scratch,
                      ColumnData* out) const;

  /// Abstract per-row instruction cost of evaluating this tree (drives the
  /// CPU energy charge; shared with the optimizer's estimates).
  double InstructionsPerRow() const;

  /// Human-readable rendering, e.g. "(price > 100.0 AND qty < 5)".
  std::string ToString() const;

 private:
  Expr() = default;

 public:
  // Operand views for the fused loops (defined in expr.cc; implementation
  // detail, public only so file-local helpers can name them).
  struct NumView;
  struct I64View;

 private:
  Status MaskImpl(const RecordBatch& batch, EvalScratch* scratch,
                  size_t depth, std::vector<uint8_t>* mask) const;
  Status NumImpl(const RecordBatch& batch, EvalScratch* scratch, size_t depth,
                 ColumnData* out) const;
  Status MakeNumView(const RecordBatch& batch, EvalScratch* scratch,
                     size_t depth, int slot, NumView* view) const;
  Status MakeI64View(const RecordBatch& batch, EvalScratch* scratch,
                     size_t depth, int slot, I64View* view) const;

  ExprKind kind_ = ExprKind::kLiteral;
  std::string column_name_;
  int column_index_ = -1;
  Value literal_;
  CompareOp compare_op_ = CompareOp::kEq;
  ArithOp arith_op_ = ArithOp::kAdd;
  LogicalOp logical_op_ = LogicalOp::kAnd;
  ExprPtr lhs_;
  ExprPtr rhs_;
  catalog::DataType result_type_ = catalog::DataType::kInt64;
  bool bound_ = false;
};

// Terse builder helpers for call sites:
//   Col("price") > Lit(100.0), And(a, b) ...
inline ExprPtr Col(std::string name) { return Expr::Column(std::move(name)); }
inline ExprPtr Lit(int64_t v) { return Expr::Literal(Value::Int64(v)); }
inline ExprPtr Lit(double v) { return Expr::Literal(Value::Double(v)); }
inline ExprPtr Lit(const char* v) { return Expr::Literal(Value::String(v)); }
inline ExprPtr LitDate(int64_t days) {
  return Expr::Literal(Value::Date(days));
}

inline ExprPtr operator==(ExprPtr a, ExprPtr b) {
  return Expr::Compare(CompareOp::kEq, std::move(a), std::move(b));
}
inline ExprPtr operator!=(ExprPtr a, ExprPtr b) {
  return Expr::Compare(CompareOp::kNe, std::move(a), std::move(b));
}
inline ExprPtr operator<(ExprPtr a, ExprPtr b) {
  return Expr::Compare(CompareOp::kLt, std::move(a), std::move(b));
}
inline ExprPtr operator<=(ExprPtr a, ExprPtr b) {
  return Expr::Compare(CompareOp::kLe, std::move(a), std::move(b));
}
inline ExprPtr operator>(ExprPtr a, ExprPtr b) {
  return Expr::Compare(CompareOp::kGt, std::move(a), std::move(b));
}
inline ExprPtr operator>=(ExprPtr a, ExprPtr b) {
  return Expr::Compare(CompareOp::kGe, std::move(a), std::move(b));
}
inline ExprPtr operator+(ExprPtr a, ExprPtr b) {
  return Expr::Arith(ArithOp::kAdd, std::move(a), std::move(b));
}
inline ExprPtr operator-(ExprPtr a, ExprPtr b) {
  return Expr::Arith(ArithOp::kSub, std::move(a), std::move(b));
}
inline ExprPtr operator*(ExprPtr a, ExprPtr b) {
  return Expr::Arith(ArithOp::kMul, std::move(a), std::move(b));
}
inline ExprPtr operator/(ExprPtr a, ExprPtr b) {
  return Expr::Arith(ArithOp::kDiv, std::move(a), std::move(b));
}
inline ExprPtr And(ExprPtr a, ExprPtr b) {
  return Expr::Logical(LogicalOp::kAnd, std::move(a), std::move(b));
}
inline ExprPtr Or(ExprPtr a, ExprPtr b) {
  return Expr::Logical(LogicalOp::kOr, std::move(a), std::move(b));
}

/// lo <= expr AND expr <= hi (both ends inclusive, SQL BETWEEN).
inline ExprPtr Between(ExprPtr value, ExprPtr lo, ExprPtr hi) {
  ExprPtr lower = Expr::Compare(CompareOp::kGe, value, std::move(lo));
  ExprPtr upper =
      Expr::Compare(CompareOp::kLe, std::move(value), std::move(hi));
  return And(std::move(lower), std::move(upper));
}

/// expr = v1 OR expr = v2 OR ... (SQL IN over literals). Requires at least
/// one candidate.
template <typename T>
ExprPtr In(ExprPtr value, const std::vector<T>& candidates) {
  ExprPtr result;
  for (const T& c : candidates) {
    ExprPtr term = Expr::Compare(CompareOp::kEq, value, Lit(c));
    result = !result ? std::move(term)
                     : Or(std::move(result), std::move(term));
  }
  return result;
}

}  // namespace ecodb::exec

#endif  // ECODB_EXEC_EXPR_H_

#include "exec/parallel_sort.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <queue>

#include "exec/exec_context.h"

namespace ecodb::exec {

namespace {

/// Sorted runs merge into at most this many range partitions; the count is
/// derived from the (dop-invariant) run count, never from dop, so partition
/// boundaries — and the output — are identical at every dop.
constexpr size_t kMaxMergePartitions = 8;

/// Splitter sample keys taken per run (evenly spaced within the sorted run).
constexpr size_t kSamplesPerRun = 16;

}  // namespace

ParallelSortOp::ParallelSortOp(OperatorPtr child, std::vector<SortKey> keys,
                               uint64_t memory_budget_bytes,
                               storage::StorageDevice* spill_device)
    : child_(std::move(child)),
      keys_(std::move(keys)),
      memory_budget_bytes_(memory_budget_bytes),
      spill_device_(spill_device) {}

int ParallelSortOp::CompareRows(const RecordBatch& a, size_t ra,
                                const RecordBatch& b, size_t rb) const {
  return CompareRowsOnKeys(a, ra, b, rb, keys_, key_idx_);
}

RecordBatch ParallelSortOp::SortRun(RecordBatch batch) const {
  std::vector<size_t> order(batch.num_rows());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return CompareRows(batch, a, batch, b) < 0;
  });
  RecordBatch sorted(batch.schema());
  for (size_t pos : order) sorted.AppendRowFrom(batch, pos);
  return sorted;
}

Status ParallelSortOp::FormRuns() {
  // ecodb-lint: coordinator-only
  ECODB_RETURN_IF_ERROR(ctx_->PollCancel());
  auto* source = dynamic_cast<MorselSource*>(child_.get());
  if (source != nullptr && source->morsel_count() > 0) {
    const size_t n_morsels = source->morsel_count();
    runs_.assign(n_morsels, RecordBatch{});
    WorkerPool* pool = ctx_->worker_pool();
    std::vector<WorkAccumulator> accs(
        static_cast<size_t>(pool->parallelism()));
    ECODB_RETURN_IF_ERROR(
        pool->Run(n_morsels, [&](size_t m, int slot) -> Status {
          // ecodb-lint: worker-context
          RecordBatch batch;
          ECODB_RETURN_IF_ERROR(source->ProduceMorsel(
              m, &batch, &accs[static_cast<size_t>(slot)]));
          runs_[m] = SortRun(std::move(batch));
          return Status::OK();
        }));
    for (const WorkAccumulator& acc : accs) ctx_->MergeWork(acc);
  } else {
    // Serial fallback (non-morsel child): the whole input is one run, so
    // the operator degenerates to the serial materializing sort.
    RecordBatch all(child_->output_schema());
    bool eos = false;
    while (true) {
      ECODB_RETURN_IF_ERROR(ctx_->PollCancel());
      RecordBatch batch;
      ECODB_RETURN_IF_ERROR(child_->Next(&batch, &eos));
      if (eos) break;
      for (size_t r = 0; r < batch.num_rows(); ++r) {
        all.AppendRowFrom(batch, r);
      }
    }
    runs_.clear();
    runs_.push_back(SortRun(std::move(all)));
  }
  // Fully filtered morsels form empty runs; dropping them (in morsel
  // order) keeps run indexes — the merge tie-break — dense and
  // deterministic.
  std::erase_if(runs_, [](const RecordBatch& r) { return r.num_rows() == 0; });
  num_runs_ = runs_.size();
  return Status::OK();
}

Status ParallelSortOp::SettleRunCharges() {
  // ecodb-lint: coordinator-only
  const CostConstants& c = ctx_->options().costs;
  const double n_keys = static_cast<double>(keys_.size());
  const uint64_t row_width =
      static_cast<uint64_t>(child_->output_schema().RowWidthBytes());

  // Run formation: each run pays its own n·log2(n) comparison ladder.
  // Summed in run order on the coordinator so the floating-point total is
  // dop-invariant (run sizes derive from morsel boundaries, not from dop).
  double formation = 0.0;
  total_bytes_ = 0;
  for (const RecordBatch& run : runs_) {
    const double n = static_cast<double>(run.num_rows());
    if (n > 1) formation += c.sort_per_row_log_row * n * std::log2(n) * n_keys;
    total_bytes_ += run.num_rows() * row_width;
  }
  ctx_->ChargeInstructions(formation);
  ctx_->ChargeDram(std::min<uint64_t>(total_bytes_, memory_budget_bytes_));

  // External spill: every run is written once as it forms — a per-run
  // sequential stream billed on the device's timeline, in run order.
  if (total_bytes_ > memory_budget_bytes_ && spill_device_ != nullptr) {
    spilled_ = true;
    // Runs whose byte offset lies below the spill_write_charged_ watermark
    // were already billed by a previous Open of this query; a retried Open
    // forms the same runs at the same offsets, so skipping them keeps the
    // device billed exactly once per spilled byte.
    uint64_t offset = 0;
    for (const RecordBatch& run : runs_) {
      const uint64_t run_bytes = run.num_rows() * row_width;
      if (offset >= spill_write_charged_) {
        ECODB_RETURN_IF_ERROR(
            ctx_->ChargeWrite(spill_device_, run_bytes, /*sequential=*/true));
      }
      offset += run_bytes;
    }
    spill_write_charged_ = std::max(spill_write_charged_, offset);
  }
  return Status::OK();
}

Status ParallelSortOp::MergeRuns() {
  // ecodb-lint: coordinator-only
  ECODB_RETURN_IF_ERROR(ctx_->PollCancel());
  partitions_.clear();
  num_partitions_ = 0;
  uint64_t total_rows = 0;
  for (const RecordBatch& run : runs_) total_rows += run.num_rows();
  if (total_rows == 0) {
    runs_.clear();
    return Status::OK();
  }

  const CostConstants& c = ctx_->options().costs;
  const double n_keys = static_cast<double>(keys_.size());
  const uint64_t row_width =
      static_cast<uint64_t>(child_->output_schema().RowWidthBytes());
  const size_t n_runs = runs_.size();

  // The merge reads every spilled run back exactly once (per-run charge,
  // run order); spill_read_charged_ keeps a retried Open from re-billing
  // reads the merge already consumed.
  if (spilled_ && !spill_read_charged_) {
    for (const RecordBatch& run : runs_) {
      ECODB_RETURN_IF_ERROR(
          ctx_->ChargeRead(spill_device_, run.num_rows() * row_width,
                           /*sequential=*/true));
    }
    spill_read_charged_ = true;
  }

  if (n_runs == 1) {
    partitions_.push_back(std::move(runs_[0]));
    num_partitions_ = 1;
    runs_.clear();
    return Status::OK();
  }

  // Merge fan-in: every row climbs a log2(R) comparison ladder inside its
  // partition (parallel), while splitter selection and partition stitching
  // stay on the coordinator (serial Amdahl term; the cost model prices the
  // same split).
  ctx_->ChargeInstructions(c.sort_per_row_log_row *
                           static_cast<double>(total_rows) *
                           std::log2(static_cast<double>(n_runs)) * n_keys);
  ctx_->ChargeSerialInstructions(c.output_per_row *
                                 static_cast<double>(total_rows));

  // Splitter selection: a fixed, evenly spaced sample from each sorted run,
  // ordered by (key, run, position) — deterministic for a given input.
  struct Ref {
    size_t run;
    size_t pos;
  };
  std::vector<Ref> samples;
  for (size_t r = 0; r < n_runs; ++r) {
    const size_t n = runs_[r].num_rows();
    const size_t take = std::min(n, kSamplesPerRun);
    for (size_t k = 0; k < take; ++k) samples.push_back({r, k * n / take});
  }
  std::sort(samples.begin(), samples.end(), [&](const Ref& x, const Ref& y) {
    const int cmp = CompareRows(runs_[x.run], x.pos, runs_[y.run], y.pos);
    if (cmp != 0) return cmp < 0;
    if (x.run != y.run) return x.run < y.run;
    return x.pos < y.pos;
  });

  const size_t n_parts = std::min(kMaxMergePartitions, n_runs);

  // bounds[r][p] .. bounds[r][p+1] is run r's segment of partition p. The
  // boundary for splitter key K is the first row with key >= K, so rows
  // with equal keys never straddle a partition.
  std::vector<std::vector<size_t>> bounds(
      n_runs, std::vector<size_t>(n_parts + 1, 0));
  for (size_t r = 0; r < n_runs; ++r) bounds[r][n_parts] = runs_[r].num_rows();
  for (size_t p = 1; p < n_parts; ++p) {
    const Ref split = samples[p * samples.size() / n_parts];
    for (size_t r = 0; r < n_runs; ++r) {
      size_t lo = bounds[r][p - 1], hi = runs_[r].num_rows();
      while (lo < hi) {
        const size_t mid = lo + (hi - lo) / 2;
        if (CompareRows(runs_[r], mid, runs_[split.run], split.pos) < 0) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      bounds[r][p] = lo;
    }
  }

  // Cooperative merge: one worker task per partition, k-way heap merge of
  // the runs' segments with ties broken by (run, position) — equal to the
  // input's global order, so output matches a serial stable sort exactly.
  partitions_.assign(n_parts, RecordBatch{});
  WorkerPool* pool = ctx_->worker_pool();
  ECODB_RETURN_IF_ERROR(pool->Run(n_parts, [&](size_t p, int) -> Status {
    // ecodb-lint: worker-context
    const auto after = [&](const Ref& x, const Ref& y) {
      const int cmp = CompareRows(runs_[x.run], x.pos, runs_[y.run], y.pos);
      if (cmp != 0) return cmp > 0;
      if (x.run != y.run) return x.run > y.run;
      return x.pos > y.pos;
    };
    std::priority_queue<Ref, std::vector<Ref>, decltype(after)> heap(after);
    for (size_t r = 0; r < n_runs; ++r) {
      if (bounds[r][p] < bounds[r][p + 1]) heap.push({r, bounds[r][p]});
    }
    RecordBatch out(child_->output_schema());
    while (!heap.empty()) {
      Ref top = heap.top();
      heap.pop();
      out.AppendRowFrom(runs_[top.run], top.pos);
      if (++top.pos < bounds[top.run][p + 1]) heap.push(top);
    }
    partitions_[p] = std::move(out);
    return Status::OK();
  }));
  num_partitions_ = partitions_.size();
  runs_.clear();
  return Status::OK();
}

Status ParallelSortOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ECODB_RETURN_IF_ERROR(child_->Open(ctx));
  ECODB_RETURN_IF_ERROR(
      ResolveSortKeys(child_->output_schema(), keys_, &key_idx_));
  runs_.clear();
  partitions_.clear();
  num_runs_ = 0;
  num_partitions_ = 0;
  total_bytes_ = 0;
  spilled_ = false;
  cursor_ = 0;
  ECODB_RETURN_IF_ERROR(FormRuns());
  ECODB_RETURN_IF_ERROR(SettleRunCharges());
  ECODB_RETURN_IF_ERROR(MergeRuns());
  return Status::OK();
}

Status ParallelSortOp::Next(RecordBatch* out, bool* eos) {
  ECODB_RETURN_IF_ERROR(ctx_->PollCancel());
  while (cursor_ < partitions_.size() &&
         partitions_[cursor_].num_rows() == 0) {
    ++cursor_;
  }
  if (cursor_ >= partitions_.size()) {
    *eos = true;
    return Status::OK();
  }
  *eos = false;
  *out = std::move(partitions_[cursor_]);
  ++cursor_;
  return Status::OK();
}

void ParallelSortOp::Close() {
  runs_.clear();
  partitions_.clear();
  child_->Close();
}

}  // namespace ecodb::exec

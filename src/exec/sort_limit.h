// Sort (with external-spill cost modeling) and Limit operators.

#ifndef ECODB_EXEC_SORT_LIMIT_H_
#define ECODB_EXEC_SORT_LIMIT_H_

#include <string>
#include <vector>

#include "exec/operator.h"
#include "storage/device.h"

namespace ecodb::exec {

struct SortKey {
  std::string column;
  bool ascending = true;
};

/// Three-way comparison of row `ra` of `a` against row `rb` of `b` on the
/// sort keys (`key_idx[i]` is keys[i]'s column index in both schemas).
/// The sign follows the sort direction; ties return 0 — callers break them
/// by input position so every sort path is stable the same way. Shared by
/// SortOp, ParallelSortOp, TopKOp, and ParallelTopKOp so one comparison
/// semantics backs every ordering operator.
int CompareRowsOnKeys(const RecordBatch& a, size_t ra, const RecordBatch& b,
                      size_t rb, const std::vector<SortKey>& keys,
                      const std::vector<int>& key_idx);

/// Resolves `keys` against `schema` into column indexes, or NotFound for a
/// missing sort column.
Status ResolveSortKeys(const catalog::Schema& schema,
                       const std::vector<SortKey>& keys,
                       std::vector<int>* key_idx);

/// Materializing sort. When the materialized input exceeds
/// `memory_budget_bytes` and a spill device is configured, the operator
/// charges the two-pass external-sort I/O (write runs + read back) — the
/// energy face of the classic memory/IO tradeoff.
class SortOp final : public Operator {
 public:
  SortOp(OperatorPtr child, std::vector<SortKey> keys,
         uint64_t memory_budget_bytes = UINT64_MAX,
         storage::StorageDevice* spill_device = nullptr);

  const catalog::Schema& output_schema() const override {
    return child_->output_schema();
  }
  Status Open(ExecContext* ctx) override;
  Status Next(RecordBatch* out, bool* eos) override;
  void Close() override;

  /// True once the materialized input has exceeded the memory budget on any
  /// Open attempt (sticky across retries: the spill really happened).
  bool spilled() const { return spilled_; }

 private:
  OperatorPtr child_;
  std::vector<SortKey> keys_;
  uint64_t memory_budget_bytes_;
  storage::StorageDevice* spill_device_;
  RecordBatch sorted_;
  std::vector<size_t> order_;
  size_t cursor_ = 0;
  bool spilled_ = false;
  /// Spill bytes already billed to the device; survives Open retries so
  /// accounting is exactly-once.
  uint64_t spill_write_charged_ = 0;
  bool spill_read_charged_ = false;
  ExecContext* ctx_ = nullptr;
};

/// Passes at most `limit` rows through.
class LimitOp final : public Operator {
 public:
  LimitOp(OperatorPtr child, size_t limit);

  const catalog::Schema& output_schema() const override {
    return child_->output_schema();
  }
  Status Open(ExecContext* ctx) override;
  Status Next(RecordBatch* out, bool* eos) override;
  void Close() override;

 private:
  OperatorPtr child_;
  size_t limit_;
  size_t emitted_ = 0;
  ExecContext* ctx_ = nullptr;
};

}  // namespace ecodb::exec

#endif  // ECODB_EXEC_SORT_LIMIT_H_

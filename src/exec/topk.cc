#include "exec/topk.h"

#include <numeric>
#include <queue>

#include "exec/exec_context.h"
#include "exec/parallel_scan.h"

namespace ecodb::exec {

// --- TopKOp -----------------------------------------------------------------

TopKOp::TopKOp(OperatorPtr child, std::vector<SortKey> keys, size_t k,
               uint64_t memory_budget_bytes,
               storage::StorageDevice* spill_device)
    : child_(std::move(child)),
      keys_(std::move(keys)),
      k_(k),
      memory_budget_bytes_(memory_budget_bytes),
      spill_device_(spill_device) {}

bool TopKOp::OutputBefore(const Entry& a, const Entry& b) const {
  const int cmp =
      CompareRowsOnKeys(pool_, a.row, pool_, b.row, keys_, key_idx_);
  if (cmp != 0) return cmp < 0;
  return a.pos < b.pos;
}

void TopKOp::CompactPool() {
  RecordBatch fresh(pool_.schema());
  for (Entry& e : heap_) {
    fresh.AppendRowFrom(pool_, e.row);
    e.row = fresh.num_rows() - 1;
  }
  pool_ = std::move(fresh);
}

Status TopKOp::Open(ExecContext* ctx) {
  // ecodb-lint: coordinator-only
  ctx_ = ctx;
  ECODB_RETURN_IF_ERROR(child_->Open(ctx));
  const catalog::Schema& schema = child_->output_schema();
  ECODB_RETURN_IF_ERROR(ResolveSortKeys(schema, keys_, &key_idx_));

  pool_ = RecordBatch(schema);
  heap_.clear();
  order_.clear();
  cursor_ = 0;
  const uint64_t row_width =
      static_cast<uint64_t>(schema.RowWidthBytes());
  const auto heap_cmp = [this](const Entry& a, const Entry& b) {
    return OutputBefore(a, b);  // max-heap: top = last in output order
  };

  uint64_t pos = 0;
  bool eos = false;
  while (true) {
    // Polled per batch so a killed session stops at a deterministic
    // boundary with its spill watermarks (and hence its bill) intact.
    ECODB_RETURN_IF_ERROR(ctx->PollCancel());
    RecordBatch batch;
    ECODB_RETURN_IF_ERROR(child_->Next(&batch, &eos));
    if (eos) break;
    for (size_t r = 0; r < batch.num_rows(); ++r, ++pos) {
      if (k_ == 0) continue;
      if (heap_.size() < k_) {
        pool_.AppendRowFrom(batch, r);
        heap_.push_back({pool_.num_rows() - 1, pos});
        std::push_heap(heap_.begin(), heap_.end(), heap_cmp);
        continue;
      }
      // A new row displaces the worst kept row only when it sorts strictly
      // before it on the keys: on a tie the kept row's input position is
      // smaller, so stability keeps it — exactly what a stable sort
      // followed by LimitOp(k) would retain.
      const Entry& top = heap_.front();
      if (CompareRowsOnKeys(batch, r, pool_, top.row, keys_, key_idx_) < 0) {
        std::pop_heap(heap_.begin(), heap_.end(), heap_cmp);
        pool_.AppendRowFrom(batch, r);
        heap_.back() = {pool_.num_rows() - 1, pos};
        std::push_heap(heap_.begin(), heap_.end(), heap_cmp);
        if (pool_.num_rows() >= 2 * k_) CompactPool();
      }
    }
    // Spill accounting during the drain (mirrors SortOp): when even the
    // k-row working set exceeds the budget, the kept bytes are written out
    // as they accumulate. Guarded by spill_write_charged_ so an Open retry
    // after a mid-drain error never bills the device twice.
    const uint64_t kept_bytes = heap_.size() * row_width;
    if (kept_bytes > memory_budget_bytes_ && spill_device_ != nullptr) {
      spilled_ = true;
      if (kept_bytes > spill_write_charged_) {
        ECODB_RETURN_IF_ERROR(
            ctx->ChargeWrite(spill_device_, kept_bytes - spill_write_charged_,
                             /*sequential=*/true));
        spill_write_charged_ = kept_bytes;
      }
    }
  }

  // The emission pass reads every spilled byte back exactly once.
  if (spilled_ && !spill_read_charged_) {
    ECODB_RETURN_IF_ERROR(ctx->ChargeRead(spill_device_, spill_write_charged_,
                                          /*sequential=*/true));
    spill_read_charged_ = true;
  }

  const CostConstants& c = ctx->options().costs;
  ctx->ChargeInstructions(TopKCompareInstructions(
      c, static_cast<double>(pos), static_cast<double>(k_),
      static_cast<double>(keys_.size())));
  const uint64_t kept_bytes = heap_.size() * row_width;
  ctx->ChargeDram(std::min<uint64_t>(kept_bytes, memory_budget_bytes_));

  CompactPool();
  order_ = heap_;
  std::sort(order_.begin(), order_.end(), heap_cmp);
  return Status::OK();
}

Status TopKOp::Next(RecordBatch* out, bool* eos) {
  ECODB_RETURN_IF_ERROR(ctx_->PollCancel());
  if (cursor_ >= order_.size()) {
    *eos = true;
    return Status::OK();
  }
  *eos = false;
  const size_t take =
      std::min(ctx_->options().batch_rows, order_.size() - cursor_);
  RecordBatch batch(child_->output_schema());
  for (size_t i = 0; i < take; ++i) {
    batch.AppendRowFrom(pool_, order_[cursor_ + i].row);
  }
  cursor_ += take;
  *out = std::move(batch);
  return Status::OK();
}

void TopKOp::Close() {
  pool_ = RecordBatch();
  heap_.clear();
  order_.clear();
  child_->Close();
}

// --- ParallelTopKOp ---------------------------------------------------------

ParallelTopKOp::ParallelTopKOp(OperatorPtr child, std::vector<SortKey> keys,
                               size_t k, uint64_t memory_budget_bytes,
                               storage::StorageDevice* spill_device)
    : child_(std::move(child)),
      keys_(std::move(keys)),
      k_(k),
      memory_budget_bytes_(memory_budget_bytes),
      spill_device_(spill_device) {}

ParallelTopKOp::CandidateRun ParallelTopKOp::ReduceMorsel(
    RecordBatch batch) const {
  CandidateRun run;
  run.rows_in = batch.num_rows();
  const size_t keep = std::min(k_, batch.num_rows());
  std::vector<size_t> order(batch.num_rows());
  std::iota(order.begin(), order.end(), size_t{0});
  // (key, position-in-morsel) is a strict total order, so the selected
  // prefix is unique — deterministic for a given morsel at any dop.
  const auto before = [&](size_t a, size_t b) {
    const int cmp = CompareRowsOnKeys(batch, a, batch, b, keys_, key_idx_);
    if (cmp != 0) return cmp < 0;
    return a < b;
  };
  std::partial_sort(order.begin(), order.begin() + keep, order.end(), before);
  run.rows = RecordBatch(batch.schema());
  run.pos.reserve(keep);
  for (size_t i = 0; i < keep; ++i) {
    run.rows.AppendRowFrom(batch, order[i]);
    run.pos.push_back(order[i]);
  }
  return run;
}

Status ParallelTopKOp::FormRuns() {
  // ecodb-lint: coordinator-only
  ECODB_RETURN_IF_ERROR(ctx_->PollCancel());
  auto* source = dynamic_cast<MorselSource*>(child_.get());
  if (source != nullptr && source->morsel_count() > 0) {
    const size_t n_morsels = source->morsel_count();
    runs_.assign(n_morsels, CandidateRun{});
    WorkerPool* pool = ctx_->worker_pool();
    std::vector<WorkAccumulator> accs(
        static_cast<size_t>(pool->parallelism()));
    ECODB_RETURN_IF_ERROR(
        pool->Run(n_morsels, [&](size_t m, int slot) -> Status {
          // ecodb-lint: worker-context
          RecordBatch batch;
          ECODB_RETURN_IF_ERROR(source->ProduceMorsel(
              m, &batch, &accs[static_cast<size_t>(slot)]));
          runs_[m] = ReduceMorsel(std::move(batch));
          return Status::OK();
        }));
    for (const WorkAccumulator& acc : accs) ctx_->MergeWork(acc);
  } else {
    // Serial fallback (non-morsel child): the whole input is one candidate
    // run, so the operator degenerates to the serial bounded-heap top-k.
    RecordBatch all(child_->output_schema());
    bool eos = false;
    while (true) {
      ECODB_RETURN_IF_ERROR(ctx_->PollCancel());
      RecordBatch batch;
      ECODB_RETURN_IF_ERROR(child_->Next(&batch, &eos));
      if (eos) break;
      for (size_t r = 0; r < batch.num_rows(); ++r) {
        all.AppendRowFrom(batch, r);
      }
    }
    runs_.clear();
    runs_.push_back(ReduceMorsel(std::move(all)));
  }
  // Morsels with no surviving rows form empty candidate runs; dropping
  // them (in morsel order) keeps run indexes — the merge tie-break — dense
  // and deterministic.
  std::erase_if(runs_,
                [](const CandidateRun& r) { return r.rows.num_rows() == 0; });
  num_runs_ = runs_.size();
  return Status::OK();
}

Status ParallelTopKOp::SettleRunCharges() {
  // ecodb-lint: coordinator-only
  const CostConstants& c = ctx_->options().costs;
  const double n_keys = static_cast<double>(keys_.size());
  const uint64_t row_width =
      static_cast<uint64_t>(child_->output_schema().RowWidthBytes());

  // Formation: each morsel streams through its own bounded heap. Summed in
  // run order on the coordinator so the floating-point total is
  // dop-invariant (run boundaries derive from morsels, not from dop).
  double formation = 0.0;
  uint64_t kept_bytes = 0;
  for (const CandidateRun& run : runs_) {
    formation += TopKCompareInstructions(
        c, static_cast<double>(run.rows_in), static_cast<double>(k_), n_keys);
    kept_bytes += run.rows.num_rows() * row_width;
  }
  ctx_->ChargeInstructions(formation);
  ctx_->ChargeDram(std::min<uint64_t>(kept_bytes, memory_budget_bytes_));

  // Spill only when even the kept candidate set exceeds the budget — the
  // headline saving over a full external sort, whose every input byte
  // spills. Per-run sequential writes, billed in run order.
  if (kept_bytes > memory_budget_bytes_ && spill_device_ != nullptr) {
    spilled_ = true;
    // Runs whose byte offset lies below the spill_write_charged_ watermark
    // were already billed by a previous Open of this query; a retried Open
    // forms the same candidate runs at the same offsets, so skipping them
    // keeps the device billed exactly once per spilled byte.
    uint64_t offset = 0;
    for (const CandidateRun& run : runs_) {
      const uint64_t run_bytes = run.rows.num_rows() * row_width;
      if (offset >= spill_write_charged_) {
        ECODB_RETURN_IF_ERROR(
            ctx_->ChargeWrite(spill_device_, run_bytes, /*sequential=*/true));
      }
      offset += run_bytes;
    }
    spill_write_charged_ = std::max(spill_write_charged_, offset);
  }
  return Status::OK();
}

Status ParallelTopKOp::MergeRuns() {
  // ecodb-lint: coordinator-only
  result_ = RecordBatch(child_->output_schema());
  const CostConstants& c = ctx_->options().costs;
  const uint64_t row_width =
      static_cast<uint64_t>(child_->output_schema().RowWidthBytes());
  uint64_t candidates = 0;
  for (const CandidateRun& run : runs_) candidates += run.rows.num_rows();

  // The merge reads every spilled candidate byte back exactly once
  // (per-run charge, run order); spill_read_charged_ keeps a retried Open
  // from re-billing reads the merge already consumed.
  if (spilled_ && !spill_read_charged_) {
    for (const CandidateRun& run : runs_) {
      ECODB_RETURN_IF_ERROR(
          ctx_->ChargeRead(spill_device_, run.rows.num_rows() * row_width,
                           /*sequential=*/true));
    }
    spill_read_charged_ = true;
  }
  if (runs_.empty() || k_ == 0) {
    runs_.clear();
    return Status::OK();
  }

  // Coordinator k-way merge of the sorted candidate runs; key ties break
  // by (run index, position in run) — the input's global order, so the
  // kept prefix is byte-identical to SortOp + LimitOp.
  struct Ref {
    size_t run;
    size_t idx;
  };
  const auto after = [&](const Ref& x, const Ref& y) {
    const int cmp = CompareRowsOnKeys(runs_[x.run].rows, x.idx,
                                      runs_[y.run].rows, y.idx, keys_,
                                      key_idx_);
    if (cmp != 0) return cmp > 0;
    return x.run > y.run;  // one ref per run: run index decides all ties
  };
  std::priority_queue<Ref, std::vector<Ref>, decltype(after)> heap(after);
  for (size_t r = 0; r < runs_.size(); ++r) heap.push({r, 0});
  const size_t take = std::min<uint64_t>(k_, candidates);
  while (result_.num_rows() < take && !heap.empty()) {
    Ref top = heap.top();
    heap.pop();
    result_.AppendRowFrom(runs_[top.run].rows, top.idx);
    if (++top.idx < runs_[top.run].rows.num_rows()) heap.push(top);
  }

  // The candidate merge runs on the coordinator: its log2(R) comparison
  // ladder over the candidates and the k-row emission are serial Amdahl
  // terms (the cost model's top-k SortDemand prices the same split).
  if (runs_.size() > 1) {
    ctx_->ChargeSerialInstructions(
        c.sort_per_row_log_row * static_cast<double>(candidates) *
            std::log2(static_cast<double>(runs_.size())) *
            static_cast<double>(keys_.size()) +
        c.output_per_row * static_cast<double>(take));
  }
  runs_.clear();
  return Status::OK();
}

Status ParallelTopKOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ECODB_RETURN_IF_ERROR(child_->Open(ctx));
  ECODB_RETURN_IF_ERROR(
      ResolveSortKeys(child_->output_schema(), keys_, &key_idx_));
  runs_.clear();
  result_ = RecordBatch();
  num_runs_ = 0;
  spilled_ = false;
  cursor_ = 0;
  ECODB_RETURN_IF_ERROR(FormRuns());
  ECODB_RETURN_IF_ERROR(SettleRunCharges());
  ECODB_RETURN_IF_ERROR(MergeRuns());
  return Status::OK();
}

Status ParallelTopKOp::Next(RecordBatch* out, bool* eos) {
  ECODB_RETURN_IF_ERROR(ctx_->PollCancel());
  if (cursor_ >= result_.num_rows()) {
    *eos = true;
    return Status::OK();
  }
  *eos = false;
  const size_t take =
      std::min(ctx_->options().batch_rows, result_.num_rows() - cursor_);
  RecordBatch batch(child_->output_schema());
  for (size_t i = 0; i < take; ++i) {
    batch.AppendRowFrom(result_, cursor_ + i);
  }
  cursor_ += take;
  *out = std::move(batch);
  return Status::OK();
}

void ParallelTopKOp::Close() {
  runs_.clear();
  result_ = RecordBatch();
  child_->Close();
}

}  // namespace ecodb::exec

// Index scan: the B+tree access path.
//
// Fetches the rows whose indexed key falls in [lo, hi] via root-to-leaf
// descent plus a leaf-chain walk, then random page reads for the qualifying
// rows. The energy profile is the inverse of a full scan's: per-row random
// I/O that wins at low selectivity and loses badly at high selectivity —
// the access-path crossover the paper's Section 5.1 asks to re-evaluate
// under the energy objective (bench/ablate_index_crossover).

#ifndef ECODB_EXEC_INDEX_SCAN_H_
#define ECODB_EXEC_INDEX_SCAN_H_

#include <string>
#include <vector>

#include "exec/operator.h"
#include "storage/btree.h"
#include "storage/table_storage.h"

namespace ecodb::exec {

class IndexScanOp final : public Operator {
 public:
  /// Emits rows of `table` whose `index` key lies in [lo, hi] (inclusive),
  /// projecting `columns` (empty = all). `index` must map keys to row
  /// positions of `table`; both must outlive the operator.
  IndexScanOp(const storage::TableStorage* table,
              const storage::BTreeIndex* index,
              std::vector<std::string> columns, int64_t lo, int64_t hi);

  const catalog::Schema& output_schema() const override { return schema_; }
  Status Open(ExecContext* ctx) override;
  Status Next(RecordBatch* out, bool* eos) override;
  void Close() override;

  /// Matching rows found during Open.
  size_t matches() const { return row_ids_.size(); }
  /// Heap pages fetched (distinct pages holding matching rows).
  size_t heap_pages_fetched() const { return heap_pages_; }

 private:
  const storage::TableStorage* table_;
  const storage::BTreeIndex* index_;
  std::vector<std::string> column_names_;
  std::vector<int> column_indexes_;
  int64_t lo_;
  int64_t hi_;
  catalog::Schema schema_;
  std::vector<uint64_t> row_ids_;
  size_t heap_pages_ = 0;
  size_t cursor_ = 0;
  ExecContext* ctx_ = nullptr;
  bool open_ = false;
};

}  // namespace ecodb::exec

#endif  // ECODB_EXEC_INDEX_SCAN_H_

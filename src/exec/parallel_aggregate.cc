#include "exec/parallel_aggregate.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

namespace ecodb::exec {

ParallelHashAggregateOp::ParallelHashAggregateOp(
    OperatorPtr child, std::vector<std::string> group_by,
    std::vector<AggregateItem> aggregates)
    : child_(std::move(child)),
      group_by_names_(std::move(group_by)),
      aggregates_(std::move(aggregates)) {}

Status ParallelHashAggregateOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ECODB_RETURN_IF_ERROR(child_->Open(ctx));
  ECODB_RETURN_IF_ERROR(BindAggregation(child_->output_schema(),
                                        group_by_names_, &aggregates_,
                                        &group_by_, &schema_));
  groups_.clear();
  computed_ = false;
  cursor_ = 0;
  return Status::OK();
}

void ParallelHashAggregateOp::ChargeUpdate(uint64_t rows) {
  // ecodb-lint: coordinator-only
  const double n = static_cast<double>(rows);
  ctx_->ChargeInstructions(ctx_->options().costs.agg_update_per_row * n);
  for (const AggregateItem& item : aggregates_) {
    if (item.input != nullptr) {
      ctx_->ChargeInstructions(item.input->InstructionsPerRow() * n);
    }
  }
}

Status ParallelHashAggregateOp::Compute() {
  // ecodb-lint: coordinator-only
  ECODB_RETURN_IF_ERROR(ctx_->PollCancel());
  auto* source = dynamic_cast<MorselSource*>(child_.get());
  if (source != nullptr) {
    const size_t n_morsels = source->morsel_count();
    std::vector<std::unordered_map<std::string, GroupAccum>> partials(
        n_morsels);
    WorkerPool* pool = ctx_->worker_pool();
    std::vector<WorkAccumulator> accs(
        static_cast<size_t>(pool->parallelism()));
    ECODB_RETURN_IF_ERROR(
        pool->Run(n_morsels, [&](size_t m, int slot) -> Status {
          // ecodb-lint: worker-context
          RecordBatch batch;
          WorkAccumulator& acc = accs[static_cast<size_t>(slot)];
          ECODB_RETURN_IF_ERROR(source->ProduceMorsel(m, &batch, &acc));
          return AccumulateBatch(batch, group_by_, aggregates_, &partials[m]);
        }));
    uint64_t input_rows = 0;
    for (const WorkAccumulator& acc : accs) {
      input_rows += acc.rows_out;  // rows surviving the source's filter
      ctx_->MergeWork(acc);
    }
    ChargeUpdate(input_rows);
    // Merge partials in morsel index order: each key occurs at most once
    // per partial, so every group's accumulator sees its contributions in
    // a fixed, dop-independent order — iterating the unordered partials
    // below cannot perturb results or charges (groups_ is an ordered map).
    // NOLINT-ECODB(EC5)
    for (std::unordered_map<std::string, GroupAccum>& partial : partials) {
      // NOLINT-ECODB(EC5)
      for (auto& [key, gs] : partial) {
        auto [it, inserted] = groups_.try_emplace(key);
        if (inserted) {
          it->second = std::move(gs);
        } else {
          MergeGroupAccum(&it->second, gs);
        }
      }
    }
  } else {
    // Serial fallback: same drain + arithmetic as HashAggregateOp.
    bool child_eos = false;
    while (true) {
      ECODB_RETURN_IF_ERROR(ctx_->PollCancel());
      RecordBatch batch;
      ECODB_RETURN_IF_ERROR(child_->Next(&batch, &child_eos));
      if (child_eos) break;
      ChargeUpdate(batch.num_rows());
      ECODB_RETURN_IF_ERROR(
          AccumulateBatch(batch, group_by_, aggregates_, &groups_));
    }
  }

  // A global aggregate over zero rows still emits one row of zeros.
  if (groups_.empty() && group_by_.empty()) {
    groups_.emplace("", ZeroGroupAccum(aggregates_.size()));
  }
  emit_order_.clear();
  emit_order_.reserve(groups_.size());
  for (const auto& [k, gs] : groups_) emit_order_.push_back(k);
  // Rough DRAM residency of the final aggregation state (the same formula
  // as the serial operator; partials are transient).
  ctx_->ChargeDram(groups_.size() *
                   (32 + 32 * (aggregates_.size() + group_by_.size())));
  computed_ = true;
  return Status::OK();
}

Status ParallelHashAggregateOp::Next(RecordBatch* out, bool* eos) {
  // ecodb-lint: coordinator-only
  ECODB_RETURN_IF_ERROR(ctx_->PollCancel());
  if (!computed_) ECODB_RETURN_IF_ERROR(Compute());

  if (cursor_ >= emit_order_.size()) {
    *eos = true;
    return Status::OK();
  }
  *eos = false;
  const size_t take =
      std::min(ctx_->options().batch_rows, emit_order_.size() - cursor_);
  RecordBatch batch(schema_);
  for (size_t i = 0; i < take; ++i) {
    const GroupAccum& gs = groups_.at(emit_order_[cursor_ + i]);
    ECODB_RETURN_IF_ERROR(AppendGroupRow(gs, aggregates_, &batch));
  }
  ctx_->ChargeInstructions(ctx_->options().costs.output_per_row *
                           static_cast<double>(take));
  cursor_ += take;
  *out = std::move(batch);
  return Status::OK();
}

void ParallelHashAggregateOp::Close() {
  child_->Close();
  groups_.clear();
}

}  // namespace ecodb::exec

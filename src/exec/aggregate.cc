#include "exec/aggregate.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace ecodb::exec {

using catalog::DataType;

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kAvg:
      return "avg";
  }
  return "unknown";
}

Status BindAggregation(const catalog::Schema& in,
                       const std::vector<std::string>& group_by_names,
                       std::vector<AggregateItem>* aggregates,
                       std::vector<int>* group_by,
                       catalog::Schema* out_schema) {
  group_by->clear();
  std::vector<catalog::Column> out_cols;
  for (const std::string& name : group_by_names) {
    const int idx = in.FindColumn(name);
    if (idx < 0) return Status::NotFound("group-by column '" + name + "'");
    group_by->push_back(idx);
    out_cols.push_back(in.column(idx));
  }
  for (AggregateItem& item : *aggregates) {
    DataType out_type = DataType::kDouble;
    if (item.input != nullptr) {
      ECODB_RETURN_IF_ERROR(item.input->Bind(in));
      if (item.input->result_type() == DataType::kString) {
        return Status::InvalidArgument("aggregates need numeric inputs");
      }
    } else if (item.func != AggFunc::kCount) {
      return Status::InvalidArgument("only COUNT may omit its input");
    }
    if (item.func == AggFunc::kCount) out_type = DataType::kInt64;
    catalog::Column c;
    c.name = item.name;
    c.type = out_type;
    out_cols.push_back(std::move(c));
  }
  *out_schema = catalog::Schema(std::move(out_cols));
  return Status::OK();
}

void EncodeGroupKey(const RecordBatch& batch, const std::vector<int>& group_by,
                    size_t row, std::string* key) {
  key->clear();
  for (int g : group_by) {
    const ColumnData& lane = batch.column(static_cast<size_t>(g));
    switch (lane.type) {
      case DataType::kInt64:
      case DataType::kDate: {
        const int64_t v = lane.i64[row];
        key->append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
      case DataType::kDouble: {
        const double v = lane.f64[row];
        key->append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
      case DataType::kString: {
        const uint32_t len = static_cast<uint32_t>(lane.str[row].size());
        key->append(reinterpret_cast<const char*>(&len), sizeof(len));
        key->append(lane.str[row]);
        break;
      }
    }
  }
}

void InitGroupAccum(GroupAccum* gs, const RecordBatch& batch,
                    const std::vector<int>& group_by, size_t row,
                    size_t num_aggregates) {
  gs->keys.reserve(group_by.size());
  for (int g : group_by) {
    gs->keys.push_back(batch.GetValue(row, static_cast<size_t>(g)));
  }
  gs->sum.assign(num_aggregates, 0.0);
  gs->count.assign(num_aggregates, 0);
  gs->min.assign(num_aggregates, std::numeric_limits<double>::infinity());
  gs->max.assign(num_aggregates, -std::numeric_limits<double>::infinity());
}

GroupAccum ZeroGroupAccum(size_t num_aggregates) {
  GroupAccum gs;
  gs.sum.assign(num_aggregates, 0.0);
  gs.count.assign(num_aggregates, 0);
  gs.min.assign(num_aggregates, 0.0);
  gs.max.assign(num_aggregates, 0.0);
  return gs;
}

void MergeGroupAccum(GroupAccum* into, const GroupAccum& from) {
  for (size_t a = 0; a < into->sum.size(); ++a) {
    into->sum[a] += from.sum[a];
    into->count[a] += from.count[a];
    into->min[a] = std::min(into->min[a], from.min[a]);
    into->max[a] = std::max(into->max[a], from.max[a]);
  }
}

Status AppendGroupRow(const GroupAccum& gs,
                      const std::vector<AggregateItem>& aggregates,
                      RecordBatch* batch) {
  std::vector<Value> row;
  row.reserve(gs.keys.size() + aggregates.size());
  for (const Value& k : gs.keys) row.push_back(k);
  for (size_t a = 0; a < aggregates.size(); ++a) {
    switch (aggregates[a].func) {
      case AggFunc::kSum:
        row.push_back(Value::Double(gs.sum[a]));
        break;
      case AggFunc::kCount:
        row.push_back(Value::Int64(gs.count[a]));
        break;
      case AggFunc::kMin:
        row.push_back(Value::Double(gs.count[a] ? gs.min[a] : 0.0));
        break;
      case AggFunc::kMax:
        row.push_back(Value::Double(gs.count[a] ? gs.max[a] : 0.0));
        break;
      case AggFunc::kAvg:
        row.push_back(Value::Double(
            gs.count[a] ? gs.sum[a] / static_cast<double>(gs.count[a])
                        : 0.0));
        break;
    }
  }
  return batch->AppendRow(row);
}

HashAggregateOp::HashAggregateOp(OperatorPtr child,
                                 std::vector<std::string> group_by,
                                 std::vector<AggregateItem> aggregates)
    : child_(std::move(child)),
      group_by_names_(std::move(group_by)),
      aggregates_(std::move(aggregates)) {}

Status HashAggregateOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ECODB_RETURN_IF_ERROR(child_->Open(ctx));
  ECODB_RETURN_IF_ERROR(BindAggregation(child_->output_schema(),
                                        group_by_names_, &aggregates_,
                                        &group_by_, &schema_));
  groups_.clear();
  computed_ = false;
  cursor_ = 0;
  return Status::OK();
}

Status HashAggregateOp::Consume(const RecordBatch& batch) {
  const size_t n = batch.num_rows();
  ctx_->ChargeInstructions(ctx_->options().costs.agg_update_per_row *
                           static_cast<double>(n));
  for (const AggregateItem& item : aggregates_) {
    if (item.input != nullptr) {
      ctx_->ChargeInstructions(item.input->InstructionsPerRow() *
                               static_cast<double>(n));
    }
  }
  return AccumulateBatch(batch, group_by_, aggregates_, &groups_);
}

Status HashAggregateOp::Next(RecordBatch* out, bool* eos) {
  ECODB_RETURN_IF_ERROR(ctx_->PollCancel());
  if (!computed_) {
    bool child_eos = false;
    while (true) {
      ECODB_RETURN_IF_ERROR(ctx_->PollCancel());
      RecordBatch batch;
      ECODB_RETURN_IF_ERROR(child_->Next(&batch, &child_eos));
      if (child_eos) break;
      ECODB_RETURN_IF_ERROR(Consume(batch));
    }
    // A global aggregate over zero rows still emits one row of zeros.
    if (groups_.empty() && group_by_.empty()) {
      groups_.emplace("", ZeroGroupAccum(aggregates_.size()));
    }
    emit_order_.clear();
    emit_order_.reserve(groups_.size());
    for (const auto& [k, gs] : groups_) emit_order_.push_back(k);
    // Rough DRAM residency of the aggregation state.
    ctx_->ChargeDram(groups_.size() *
                     (32 + 32 * (aggregates_.size() + group_by_.size())));
    computed_ = true;
  }

  if (cursor_ >= emit_order_.size()) {
    *eos = true;
    return Status::OK();
  }
  *eos = false;
  const size_t take =
      std::min(ctx_->options().batch_rows, emit_order_.size() - cursor_);
  RecordBatch batch(schema_);
  for (size_t i = 0; i < take; ++i) {
    const GroupAccum& gs = groups_.at(emit_order_[cursor_ + i]);
    ECODB_RETURN_IF_ERROR(AppendGroupRow(gs, aggregates_, &batch));
  }
  ctx_->ChargeInstructions(ctx_->options().costs.output_per_row *
                           static_cast<double>(take));
  cursor_ += take;
  *out = std::move(batch);
  return Status::OK();
}

void HashAggregateOp::Close() {
  child_->Close();
  groups_.clear();
}

}  // namespace ecodb::exec

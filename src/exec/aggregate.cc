#include "exec/aggregate.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace ecodb::exec {

using catalog::DataType;

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kAvg:
      return "avg";
  }
  return "unknown";
}

HashAggregateOp::HashAggregateOp(OperatorPtr child,
                                 std::vector<std::string> group_by,
                                 std::vector<AggregateItem> aggregates)
    : child_(std::move(child)),
      group_by_names_(std::move(group_by)),
      aggregates_(std::move(aggregates)) {}

Status HashAggregateOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ECODB_RETURN_IF_ERROR(child_->Open(ctx));
  const catalog::Schema& in = child_->output_schema();

  group_by_.clear();
  std::vector<catalog::Column> out_cols;
  for (const std::string& name : group_by_names_) {
    const int idx = in.FindColumn(name);
    if (idx < 0) return Status::NotFound("group-by column '" + name + "'");
    group_by_.push_back(idx);
    out_cols.push_back(in.column(idx));
  }
  for (AggregateItem& item : aggregates_) {
    DataType out_type = DataType::kDouble;
    if (item.input != nullptr) {
      ECODB_RETURN_IF_ERROR(item.input->Bind(in));
      if (item.input->result_type() == DataType::kString) {
        return Status::InvalidArgument("aggregates need numeric inputs");
      }
    } else if (item.func != AggFunc::kCount) {
      return Status::InvalidArgument("only COUNT may omit its input");
    }
    if (item.func == AggFunc::kCount) out_type = DataType::kInt64;
    catalog::Column c;
    c.name = item.name;
    c.type = out_type;
    out_cols.push_back(std::move(c));
  }
  schema_ = catalog::Schema(std::move(out_cols));
  groups_.clear();
  computed_ = false;
  cursor_ = 0;
  return Status::OK();
}

Status HashAggregateOp::Consume(const RecordBatch& batch) {
  const size_t n = batch.num_rows();
  ctx_->ChargeInstructions(ctx_->options().costs.agg_update_per_row *
                           static_cast<double>(n));

  // Evaluate aggregate inputs once per batch.
  std::vector<ColumnData> inputs(aggregates_.size());
  for (size_t a = 0; a < aggregates_.size(); ++a) {
    if (aggregates_[a].input != nullptr) {
      ctx_->ChargeInstructions(aggregates_[a].input->InstructionsPerRow() *
                               static_cast<double>(n));
      ECODB_ASSIGN_OR_RETURN(inputs[a], aggregates_[a].input->Evaluate(batch));
    }
  }

  std::string key;
  for (size_t r = 0; r < n; ++r) {
    // Encode the group key (deterministic; strings are length-prefixed).
    key.clear();
    for (int g : group_by_) {
      const ColumnData& lane = batch.column(g);
      switch (lane.type) {
        case DataType::kInt64:
        case DataType::kDate: {
          const int64_t v = lane.i64[r];
          key.append(reinterpret_cast<const char*>(&v), sizeof(v));
          break;
        }
        case DataType::kDouble: {
          const double v = lane.f64[r];
          key.append(reinterpret_cast<const char*>(&v), sizeof(v));
          break;
        }
        case DataType::kString: {
          const uint32_t len = static_cast<uint32_t>(lane.str[r].size());
          key.append(reinterpret_cast<const char*>(&len), sizeof(len));
          key.append(lane.str[r]);
          break;
        }
      }
    }
    auto [it, inserted] = groups_.try_emplace(key);
    GroupState& gs = it->second;
    if (inserted) {
      gs.keys.reserve(group_by_.size());
      for (int g : group_by_) gs.keys.push_back(batch.GetValue(r, g));
      gs.sum.assign(aggregates_.size(), 0.0);
      gs.count.assign(aggregates_.size(), 0);
      gs.min.assign(aggregates_.size(),
                    std::numeric_limits<double>::infinity());
      gs.max.assign(aggregates_.size(),
                    -std::numeric_limits<double>::infinity());
    }
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      double v = 0.0;
      if (aggregates_[a].input != nullptr) {
        const ColumnData& lane = inputs[a];
        v = lane.type == DataType::kDouble ? lane.f64[r]
                                           : static_cast<double>(lane.i64[r]);
      }
      gs.sum[a] += v;
      gs.count[a] += 1;
      gs.min[a] = std::min(gs.min[a], v);
      gs.max[a] = std::max(gs.max[a], v);
    }
    gs.seen = true;
  }
  return Status::OK();
}

Status HashAggregateOp::Next(RecordBatch* out, bool* eos) {
  if (!computed_) {
    bool child_eos = false;
    while (true) {
      RecordBatch batch;
      ECODB_RETURN_IF_ERROR(child_->Next(&batch, &child_eos));
      if (child_eos) break;
      ECODB_RETURN_IF_ERROR(Consume(batch));
    }
    // A global aggregate over zero rows still emits one row of zeros.
    if (groups_.empty() && group_by_.empty()) {
      GroupState gs;
      gs.sum.assign(aggregates_.size(), 0.0);
      gs.count.assign(aggregates_.size(), 0);
      gs.min.assign(aggregates_.size(), 0.0);
      gs.max.assign(aggregates_.size(), 0.0);
      groups_.emplace("", std::move(gs));
    }
    emit_order_.clear();
    emit_order_.reserve(groups_.size());
    for (const auto& [k, gs] : groups_) emit_order_.push_back(k);
    // Rough DRAM residency of the aggregation state.
    ctx_->ChargeDram(groups_.size() *
                     (32 + 32 * (aggregates_.size() + group_by_.size())));
    computed_ = true;
  }

  if (cursor_ >= emit_order_.size()) {
    *eos = true;
    return Status::OK();
  }
  *eos = false;
  const size_t take =
      std::min(ctx_->options().batch_rows, emit_order_.size() - cursor_);
  RecordBatch batch(schema_);
  for (size_t i = 0; i < take; ++i) {
    const GroupState& gs = groups_.at(emit_order_[cursor_ + i]);
    std::vector<Value> row;
    row.reserve(schema_.num_columns());
    for (const Value& k : gs.keys) row.push_back(k);
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      switch (aggregates_[a].func) {
        case AggFunc::kSum:
          row.push_back(Value::Double(gs.sum[a]));
          break;
        case AggFunc::kCount:
          row.push_back(Value::Int64(gs.count[a]));
          break;
        case AggFunc::kMin:
          row.push_back(Value::Double(gs.count[a] ? gs.min[a] : 0.0));
          break;
        case AggFunc::kMax:
          row.push_back(Value::Double(gs.count[a] ? gs.max[a] : 0.0));
          break;
        case AggFunc::kAvg:
          row.push_back(Value::Double(
              gs.count[a] ? gs.sum[a] / static_cast<double>(gs.count[a])
                          : 0.0));
          break;
      }
    }
    ECODB_RETURN_IF_ERROR(batch.AppendRow(row));
  }
  ctx_->ChargeInstructions(ctx_->options().costs.output_per_row *
                           static_cast<double>(take));
  cursor_ += take;
  *out = std::move(batch);
  return Status::OK();
}

void HashAggregateOp::Close() {
  child_->Close();
  groups_.clear();
}

}  // namespace ecodb::exec

// Morsel-driven parallel table scan.
//
// ParallelTableScanOp splits the zone-map-pruned row ranges of a table into
// morsels whose boundaries align with zone-map blocks (so blocks_skipped
// and transfer accounting match the serial TableScanOp exactly), then lets
// the query's WorkerPool materialize/filter morsels concurrently. An
// optional exact filter is fused into the morsel loop, replacing the
// downstream FilterOp at dop > 1.
//
// Determinism contract: morsel boundaries depend only on the table, the
// prune filter, and ExecOptions::morsel_rows — never on dop or on which
// worker ran a morsel. Output batches are emitted in morsel order, and all
// modeled charges are computed from dop-invariant totals on the
// coordinator, so a query returns byte-identical results and identical
// accounting at every dop (only wall-clock and the energy window change).
//
// The operator doubles as a MorselSource: parallel consumers (partitioned
// aggregation, the hash-join probe) pull morsels directly inside their own
// worker tasks instead of serializing through Next(), keeping the whole
// scan->filter->consume pipeline inside one worker per morsel.

#ifndef ECODB_EXEC_PARALLEL_SCAN_H_
#define ECODB_EXEC_PARALLEL_SCAN_H_

#include <string>
#include <vector>

#include "exec/expr.h"
#include "exec/operator.h"
#include "exec/scan.h"
#include "exec/worker_pool.h"
#include "storage/table_storage.h"

namespace ecodb::exec {

/// A pipeline source that can hand out independent morsels. ProduceMorsel
/// must be safe to call concurrently for distinct indexes once Open() has
/// returned.
class MorselSource {
 public:
  virtual ~MorselSource() = default;

  /// Number of morsels (valid after Open).
  virtual size_t morsel_count() const = 0;

  /// Materializes morsel `index` into `out`, tallying the work into `acc`
  /// (rows_in = rows scanned, rows_out = rows surviving local filtering).
  virtual Status ProduceMorsel(size_t index, RecordBatch* out,
                               WorkAccumulator* acc) const = 0;
};

/// Splits selected row ranges into morsels of ~`target_rows`, aligned to
/// multiples of `block_rows` (pass 0 or 1 when the table has no zone maps).
std::vector<ScanRowRange> MorselizeRanges(
    const std::vector<ScanRowRange>& ranges, size_t block_rows,
    size_t target_rows);

class ParallelTableScanOp final : public Operator, public MorselSource {
 public:
  /// Projects `columns` (empty = all) from `table`. `prune_filter` drives
  /// zone-map block skipping; `exact_filter` (may alias prune_filter) is
  /// applied row-exactly inside each morsel.
  ParallelTableScanOp(const storage::TableStorage* table,
                      std::vector<std::string> columns = {},
                      ExprPtr prune_filter = nullptr,
                      ExprPtr exact_filter = nullptr);

  const catalog::Schema& output_schema() const override { return schema_; }
  Status Open(ExecContext* ctx) override;
  Status Next(RecordBatch* out, bool* eos) override;
  void Close() override;

  // MorselSource:
  size_t morsel_count() const override { return morsels_.size(); }
  Status ProduceMorsel(size_t index, RecordBatch* out,
                       WorkAccumulator* acc) const override;

  /// Blocks skipped by zone-map pruning during Open (matches the serial
  /// scan for the same table and filter).
  size_t blocks_skipped() const { return blocks_skipped_; }

 private:
  /// Runs the pool over all morsels into slots_ (standalone Operator use).
  Status Materialize();

  const storage::TableStorage* table_;
  std::vector<std::string> column_names_;
  std::vector<int> column_indexes_;
  ExprPtr prune_filter_;
  ExprPtr exact_filter_;
  catalog::Schema schema_;

  /// Per projected column: borrowed uncompressed lane or owned decode.
  std::vector<const storage::ColumnData*> sources_;
  std::vector<storage::ColumnData> owned_decodes_;

  std::vector<ScanRowRange> morsels_;
  size_t blocks_skipped_ = 0;
  std::vector<RecordBatch> slots_;  // per-morsel output, emitted in order
  bool materialized_ = false;
  size_t cursor_ = 0;
  ExecContext* ctx_ = nullptr;
  bool open_ = false;
};

}  // namespace ecodb::exec

#endif  // ECODB_EXEC_PARALLEL_SCAN_H_

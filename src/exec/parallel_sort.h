// Morsel-driven parallel external sort.
//
// ParallelSortOp implements the two classical external-sort phases
// morsel-parallel, after the run-formation/merge structure of Leis et al.
// (SIGMOD 2014) and the JouleSort framing of Section 2.3 of the paper
// (records sorted per Joule):
//
//  1. Run formation — when the child is a MorselSource, workers claim
//     zone-block-aligned morsels from the query's WorkerPool ticket and
//     sort each morsel into an independent sorted run (stable within the
//     run). Runs are indexed by morsel, so the set of runs is a pure
//     function of the table, the filter, and ExecOptions::morsel_rows —
//     never of dop or scheduling.
//  2. Parallel multiway merge — the coordinator picks key splitters from a
//     deterministic sample of the sorted runs, range-partitions every run
//     by those splitters, and workers merge one partition each. Ties are
//     broken by (run index, position in run), which equals the input's
//     global order, so the concatenated partitions are byte-identical to a
//     serial stable sort of the input.
//
// Determinism contract (DESIGN.md §7): results, run boundaries, splitters,
// and all modeled charges are dop-invariant. Workers never touch the
// ExecContext; the coordinator settles every charge after each pool round
// in run/partition order, so floating-point accumulation order is fixed.
// Parallelism shortens only the CPU critical path (run formation and
// partition merges divide across cores; splitter selection and partition
// stitching are charged serial per Amdahl) and thereby the energy window.
//
// Spill accounting: when the materialized input exceeds
// `memory_budget_bytes` and a spill device is configured, every run is
// billed a sequential write when it forms and a sequential read when the
// merge consumes it — per-run charges on the device's own timeline, settled
// in run order.

#ifndef ECODB_EXEC_PARALLEL_SORT_H_
#define ECODB_EXEC_PARALLEL_SORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "exec/parallel_scan.h"
#include "exec/sort_limit.h"
#include "storage/device.h"

namespace ecodb::exec {

class ParallelSortOp final : public Operator {
 public:
  ParallelSortOp(OperatorPtr child, std::vector<SortKey> keys,
                 uint64_t memory_budget_bytes = UINT64_MAX,
                 storage::StorageDevice* spill_device = nullptr);

  const catalog::Schema& output_schema() const override {
    return child_->output_schema();
  }
  Status Open(ExecContext* ctx) override;
  Status Next(RecordBatch* out, bool* eos) override;
  void Close() override;

  /// True when the input exceeded the memory budget and runs were billed
  /// to the spill device.
  bool spilled() const { return spilled_; }
  /// Sorted runs formed (valid after Open; dop-invariant).
  size_t num_runs() const { return num_runs_; }
  /// Merge partitions produced by splitter range-partitioning (valid after
  /// Open; dop-invariant).
  size_t merge_partitions() const { return num_partitions_; }

 private:
  /// Sorts `batch`'s rows stably by keys_ into a fresh batch.
  RecordBatch SortRun(RecordBatch batch) const;
  /// Forms runs_ (morsel-parallel or serial fallback).
  Status FormRuns();
  /// Settles DRAM + per-run spill charges (coordinator, run order).
  Status SettleRunCharges();
  /// Range-partitions runs_ by sampled splitters and merges partitions
  /// across the pool into partitions_.
  Status MergeRuns();

  /// Three-way row comparison on the sort keys (sign follows sort order;
  /// ties return 0 — callers break them by (run, position)).
  int CompareRows(const RecordBatch& a, size_t ra, const RecordBatch& b,
                  size_t rb) const;

  OperatorPtr child_;
  std::vector<SortKey> keys_;
  uint64_t memory_budget_bytes_;
  storage::StorageDevice* spill_device_;

  std::vector<int> key_idx_;
  std::vector<RecordBatch> runs_;        // sorted, in morsel order
  std::vector<RecordBatch> partitions_;  // merged output, in key order
  size_t num_runs_ = 0;
  size_t num_partitions_ = 0;
  uint64_t total_bytes_ = 0;
  bool spilled_ = false;
  // Spill-billing watermarks (DESIGN.md §8): runs re-form identically when
  // Open is retried after a mid-query error, so these survive the retry and
  // keep spill I/O billed exactly once. Never reset in Open.
  uint64_t spill_write_charged_ = 0;
  bool spill_read_charged_ = false;
  size_t cursor_ = 0;
  ExecContext* ctx_ = nullptr;
};

}  // namespace ecodb::exec

#endif  // ECODB_EXEC_PARALLEL_SORT_H_

#include "exec/batch.h"

#include <cassert>

namespace ecodb::exec {

RecordBatch::RecordBatch(catalog::Schema schema)
    : schema_(std::move(schema)) {
  columns_.resize(schema_.num_columns());
  for (int i = 0; i < schema_.num_columns(); ++i) {
    columns_[i].type = schema_.column(i).type;
  }
}

Value RecordBatch::GetValue(size_t row, size_t col) const {
  assert(row < num_rows_ && col < columns_.size());
  const ColumnData& c = columns_[col];
  Value v;
  v.type = c.type;
  switch (c.type) {
    case catalog::DataType::kInt64:
    case catalog::DataType::kDate:
      v.i64 = c.i64[row];
      break;
    case catalog::DataType::kDouble:
      v.f64 = c.f64[row];
      break;
    case catalog::DataType::kString:
      v.str = c.str[row];
      break;
  }
  return v;
}

Status RecordBatch::AppendRow(const std::vector<Value>& row) {
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].type != columns_[i].type) {
      return Status::InvalidArgument("row type mismatch at column " +
                                     std::to_string(i));
    }
  }
  for (size_t i = 0; i < row.size(); ++i) {
    ColumnData& c = columns_[i];
    switch (c.type) {
      case catalog::DataType::kInt64:
      case catalog::DataType::kDate:
        c.i64.push_back(row[i].i64);
        break;
      case catalog::DataType::kDouble:
        c.f64.push_back(row[i].f64);
        break;
      case catalog::DataType::kString:
        c.str.push_back(row[i].str);
        break;
    }
  }
  ++num_rows_;
  return Status::OK();
}

Status RecordBatch::SealRows(size_t rows) {
  for (const ColumnData& c : columns_) {
    if (c.size() != rows) {
      return Status::InvalidArgument("lane length does not match seal count");
    }
  }
  num_rows_ = rows;
  return Status::OK();
}

void RecordBatch::AppendRowFrom(const RecordBatch& src, size_t row) {
  assert(src.num_columns() == num_columns());
  for (size_t i = 0; i < columns_.size(); ++i) {
    ColumnData& dst = columns_[i];
    const ColumnData& s = src.columns_[i];
    switch (dst.type) {
      case catalog::DataType::kInt64:
      case catalog::DataType::kDate:
        dst.i64.push_back(s.i64[row]);
        break;
      case catalog::DataType::kDouble:
        dst.f64.push_back(s.f64[row]);
        break;
      case catalog::DataType::kString:
        dst.str.push_back(s.str[row]);
        break;
    }
  }
  ++num_rows_;
}

void RecordBatch::FilterInPlace(const std::vector<uint8_t>& mask) {
  assert(mask.size() == num_rows_);
  size_t kept = 0;
  for (size_t r = 0; r < num_rows_; ++r) {
    if (!mask[r]) continue;
    if (kept != r) {
      for (ColumnData& c : columns_) {
        switch (c.type) {
          case catalog::DataType::kInt64:
          case catalog::DataType::kDate:
            c.i64[kept] = c.i64[r];
            break;
          case catalog::DataType::kDouble:
            c.f64[kept] = c.f64[r];
            break;
          case catalog::DataType::kString:
            c.str[kept] = std::move(c.str[r]);
            break;
        }
      }
    }
    ++kept;
  }
  for (ColumnData& c : columns_) {
    switch (c.type) {
      case catalog::DataType::kInt64:
      case catalog::DataType::kDate:
        c.i64.resize(kept);
        break;
      case catalog::DataType::kDouble:
        c.f64.resize(kept);
        break;
      case catalog::DataType::kString:
        c.str.resize(kept);
        break;
    }
  }
  num_rows_ = kept;
}

}  // namespace ecodb::exec

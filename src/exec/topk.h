// Top-k ORDER BY + LIMIT fusion: bounded-heap operators that keep only the
// first k rows of the sort order instead of materializing a full sort.
//
// The paper's thesis is doing the same work with fewer Joules; a full
// external sort that spills runs to a device only to discard all but k rows
// is exactly the energy waste it targets. TopKOp streams the input through
// a bounded max-heap of k rows (O(n log k) modeled comparisons, a k-row
// working set, and zero spill when those k rows fit the sort memory
// budget), and ParallelTopKOp runs the same selection morsel-parallel.
//
// Equivalence contract (DESIGN.md §8): both operators emit rows
// byte-identical to SortOp (stable sort) followed by LimitOp(k). Stability
// is enforced by breaking key ties with the row's input position — serial:
// the global stream position; parallel: (run index, position in run), which
// equals the input's global order because runs are indexed by morsel.
//
// Determinism contract (DESIGN.md §7): ParallelTopKOp derives its runs from
// morsel boundaries (never from dop), keeps worker-side results exact
// (copied rows + integer positions), and settles every modeled charge on
// the coordinator in run order, so results and accounting are bit-identical
// at every dop. The coordinator's candidate merge is charged through the
// serial-instruction bucket (Amdahl).

#ifndef ECODB_EXEC_TOPK_H_
#define ECODB_EXEC_TOPK_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "exec/operator.h"
#include "exec/sort_limit.h"
#include "storage/device.h"

namespace ecodb::exec {

/// Modeled comparison instructions for streaming `rows` rows through a
/// bounded heap of `k` rows: every row pays one compare against the heap
/// root plus a log2(k) sift ladder. At k = n this approaches the full
/// sort's n·log2(n); at k = 1 it degenerates to a linear min-scan. Shared
/// with CostModel::SortDemand so the planner prices exactly what the
/// operators charge.
inline double TopKCompareInstructions(const CostConstants& c, double rows,
                                      double k, double num_keys) {
  if (rows <= 0.0 || k <= 0.0) return 0.0;
  const double k_eff = std::min(rows, k);
  return c.sort_per_row_log_row * rows *
         (1.0 + std::log2(std::max(1.0, k_eff))) * num_keys;
}

/// Serial top-k: the first `k` rows of the child's stable sort order on
/// `keys`, produced with a bounded max-heap instead of a full sort. When
/// the k-row working set exceeds `memory_budget_bytes` and a spill device
/// is configured, the kept rows are billed one sequential write + read
/// (exactly-once across Open retries, like SortOp).
class TopKOp final : public Operator {
 public:
  TopKOp(OperatorPtr child, std::vector<SortKey> keys, size_t k,
         uint64_t memory_budget_bytes = UINT64_MAX,
         storage::StorageDevice* spill_device = nullptr);

  const catalog::Schema& output_schema() const override {
    return child_->output_schema();
  }
  Status Open(ExecContext* ctx) override;
  Status Next(RecordBatch* out, bool* eos) override;
  void Close() override;

  /// True once the kept working set exceeded the memory budget on any Open
  /// attempt (sticky across retries: the spill really happened).
  bool spilled() const { return spilled_; }

 private:
  /// A kept candidate: a row in pool_ plus its global input position (the
  /// stable tie-break).
  struct Entry {
    size_t row;
    uint64_t pos;
  };

  /// True when `a` precedes `b` in the final output order (keys, then
  /// input position). A strict total order: no two entries share pos.
  bool OutputBefore(const Entry& a, const Entry& b) const;

  /// Drops evicted rows from pool_ so the working set stays O(k).
  void CompactPool();

  OperatorPtr child_;
  std::vector<SortKey> keys_;
  size_t k_;
  uint64_t memory_budget_bytes_;
  storage::StorageDevice* spill_device_;

  std::vector<int> key_idx_;
  RecordBatch pool_;          // kept rows (plus not-yet-compacted evictees)
  std::vector<Entry> heap_;   // max-heap on OutputBefore: top = worst kept
  std::vector<Entry> order_;  // heap_ sorted into output order after drain
  size_t cursor_ = 0;
  bool spilled_ = false;
  /// Spill bytes already billed to the device; survives Open retries so
  /// accounting is exactly-once (mirrors SortOp).
  uint64_t spill_write_charged_ = 0;
  bool spill_read_charged_ = false;
  ExecContext* ctx_ = nullptr;
};

/// Morsel-parallel top-k. Workers claim morsels and reduce each to its
/// local top-k (a k-row candidate run, sorted by (key, position)); the
/// coordinator then merges the candidate runs in run order and keeps the
/// global first k by (key, run, position) — the input's global order, so
/// output is byte-identical to the serial TopKOp and to SortOp + LimitOp.
class ParallelTopKOp final : public Operator {
 public:
  ParallelTopKOp(OperatorPtr child, std::vector<SortKey> keys, size_t k,
                 uint64_t memory_budget_bytes = UINT64_MAX,
                 storage::StorageDevice* spill_device = nullptr);

  const catalog::Schema& output_schema() const override {
    return child_->output_schema();
  }
  Status Open(ExecContext* ctx) override;
  Status Next(RecordBatch* out, bool* eos) override;
  void Close() override;

  /// True when the kept candidate set exceeded the memory budget and was
  /// billed to the spill device.
  bool spilled() const { return spilled_; }
  /// Non-empty candidate runs formed (valid after Open; dop-invariant).
  size_t num_runs() const { return num_runs_; }

 private:
  /// One morsel's local top-k: kept rows in output order, their positions
  /// within the morsel, and the morsel's input row count (for charging).
  struct CandidateRun {
    RecordBatch rows;
    std::vector<uint64_t> pos;
    uint64_t rows_in = 0;
  };

  /// Reduces `batch` to its local top-k (sorted by key then position).
  CandidateRun ReduceMorsel(RecordBatch batch) const;
  /// Forms runs_ (morsel-parallel or serial single-run fallback).
  Status FormRuns();
  /// Settles formation instructions + DRAM + per-run spill writes
  /// (coordinator, run order).
  Status SettleRunCharges();
  /// Merges runs_ into result_, keeping the global first k; charges the
  /// merge serially and per-run spill reads in run order.
  Status MergeRuns();

  OperatorPtr child_;
  std::vector<SortKey> keys_;
  size_t k_;
  uint64_t memory_budget_bytes_;
  storage::StorageDevice* spill_device_;

  std::vector<int> key_idx_;
  std::vector<CandidateRun> runs_;  // non-empty, in morsel order
  RecordBatch result_;
  size_t num_runs_ = 0;
  bool spilled_ = false;
  // Spill-billing watermarks (DESIGN.md §8): candidate runs re-form
  // identically when Open is retried after a mid-query error, so these
  // survive the retry and keep spill I/O billed exactly once. Never reset
  // in Open.
  uint64_t spill_write_charged_ = 0;
  bool spill_read_charged_ = false;
  size_t cursor_ = 0;
  ExecContext* ctx_ = nullptr;
};

}  // namespace ecodb::exec

#endif  // ECODB_EXEC_TOPK_H_

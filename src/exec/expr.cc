#include "exec/expr.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace ecodb::exec {

using catalog::DataType;

ExprPtr Expr::Column(std::string name) {
  auto e = ExprPtr(new Expr());
  e->kind_ = ExprKind::kColumn;
  e->column_name_ = std::move(name);
  return e;
}

ExprPtr Expr::Literal(Value v) {
  auto e = ExprPtr(new Expr());
  e->kind_ = ExprKind::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = ExprPtr(new Expr());
  e->kind_ = ExprKind::kCompare;
  e->compare_op_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

ExprPtr Expr::Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = ExprPtr(new Expr());
  e->kind_ = ExprKind::kArith;
  e->arith_op_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

ExprPtr Expr::Logical(LogicalOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = ExprPtr(new Expr());
  e->kind_ = ExprKind::kLogical;
  e->logical_op_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

ExprPtr Expr::Not(ExprPtr inner) {
  auto e = ExprPtr(new Expr());
  e->kind_ = ExprKind::kNot;
  e->lhs_ = std::move(inner);
  return e;
}

namespace {
bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble ||
         t == DataType::kDate;
}
}  // namespace

Status Expr::Bind(const catalog::Schema& schema) {
  switch (kind_) {
    case ExprKind::kColumn: {
      column_index_ = schema.FindColumn(column_name_);
      if (column_index_ < 0) {
        return Status::NotFound("unbound column '" + column_name_ + "'");
      }
      result_type_ = schema.column(column_index_).type;
      break;
    }
    case ExprKind::kLiteral:
      result_type_ = literal_.type;
      break;
    case ExprKind::kCompare: {
      ECODB_RETURN_IF_ERROR(lhs_->Bind(schema));
      ECODB_RETURN_IF_ERROR(rhs_->Bind(schema));
      const DataType lt = lhs_->result_type_;
      const DataType rt = rhs_->result_type_;
      const bool both_numeric = IsNumeric(lt) && IsNumeric(rt);
      const bool both_string =
          lt == DataType::kString && rt == DataType::kString;
      if (!both_numeric && !both_string) {
        return Status::InvalidArgument("comparison type mismatch");
      }
      result_type_ = DataType::kInt64;
      break;
    }
    case ExprKind::kArith: {
      ECODB_RETURN_IF_ERROR(lhs_->Bind(schema));
      ECODB_RETURN_IF_ERROR(rhs_->Bind(schema));
      if (!IsNumeric(lhs_->result_type_) || !IsNumeric(rhs_->result_type_)) {
        return Status::InvalidArgument("arithmetic on non-numeric operand");
      }
      const bool any_double = lhs_->result_type_ == DataType::kDouble ||
                              rhs_->result_type_ == DataType::kDouble ||
                              arith_op_ == ArithOp::kDiv;
      result_type_ = any_double ? DataType::kDouble : DataType::kInt64;
      break;
    }
    case ExprKind::kLogical:
      ECODB_RETURN_IF_ERROR(lhs_->Bind(schema));
      ECODB_RETURN_IF_ERROR(rhs_->Bind(schema));
      result_type_ = DataType::kInt64;
      break;
    case ExprKind::kNot:
      ECODB_RETURN_IF_ERROR(lhs_->Bind(schema));
      result_type_ = DataType::kInt64;
      break;
  }
  bound_ = true;
  return Status::OK();
}

namespace {

// Integer arithmetic is defined as two's-complement wrapping (via the
// unsigned domain, where overflow is well-defined) so full-range operands
// are not UB under -fsanitize=undefined.
int64_t WrapAdd(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) +
                              static_cast<uint64_t>(b));
}
int64_t WrapSub(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) -
                              static_cast<uint64_t>(b));
}
int64_t WrapMul(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) *
                              static_cast<uint64_t>(b));
}

// Numeric lane view: promotes int64/date lanes to double on demand.
double NumericAt(const ColumnData& c, size_t row) {
  return c.type == DataType::kDouble ? c.f64[row]
                                     : static_cast<double>(c.i64[row]);
}

bool CompareDoubles(CompareOp op, double a, double b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
  }
  return false;
}

bool CompareStrings(CompareOp op, const std::string& a,
                    const std::string& b) {
  const int c = a.compare(b);
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

}  // namespace

StatusOr<ColumnData> Expr::Evaluate(const RecordBatch& batch) const {
  if (!bound_) return Status::FailedPrecondition("expression not bound");
  const size_t n = batch.num_rows();
  ColumnData out;
  out.type = result_type_;
  switch (kind_) {
    case ExprKind::kColumn:
      return batch.column(column_index_);
    case ExprKind::kLiteral: {
      switch (result_type_) {
        case DataType::kInt64:
        case DataType::kDate:
          out.i64.assign(n, literal_.i64);
          break;
        case DataType::kDouble:
          out.f64.assign(n, literal_.f64);
          break;
        case DataType::kString:
          out.str.assign(n, literal_.str);
          break;
      }
      return out;
    }
    case ExprKind::kCompare: {
      ECODB_ASSIGN_OR_RETURN(ColumnData l, lhs_->Evaluate(batch));
      ECODB_ASSIGN_OR_RETURN(ColumnData r, rhs_->Evaluate(batch));
      out.i64.resize(n);
      if (l.type == DataType::kString) {
        for (size_t i = 0; i < n; ++i) {
          out.i64[i] = CompareStrings(compare_op_, l.str[i], r.str[i]);
        }
      } else if (l.type != DataType::kDouble && r.type != DataType::kDouble) {
        for (size_t i = 0; i < n; ++i) {
          out.i64[i] =
              CompareDoubles(compare_op_, static_cast<double>(l.i64[i]),
                             static_cast<double>(r.i64[i]));
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          out.i64[i] = CompareDoubles(compare_op_, NumericAt(l, i),
                                      NumericAt(r, i));
        }
      }
      return out;
    }
    case ExprKind::kArith: {
      ECODB_ASSIGN_OR_RETURN(ColumnData l, lhs_->Evaluate(batch));
      ECODB_ASSIGN_OR_RETURN(ColumnData r, rhs_->Evaluate(batch));
      if (result_type_ == DataType::kInt64) {
        out.i64.resize(n);
        for (size_t i = 0; i < n; ++i) {
          switch (arith_op_) {
            case ArithOp::kAdd:
              out.i64[i] = WrapAdd(l.i64[i], r.i64[i]);
              break;
            case ArithOp::kSub:
              out.i64[i] = WrapSub(l.i64[i], r.i64[i]);
              break;
            case ArithOp::kMul:
              out.i64[i] = WrapMul(l.i64[i], r.i64[i]);
              break;
            case ArithOp::kDiv:
              assert(false && "integer division promotes to double");
              break;
          }
        }
      } else {
        out.f64.resize(n);
        for (size_t i = 0; i < n; ++i) {
          const double a = NumericAt(l, i);
          const double b = NumericAt(r, i);
          switch (arith_op_) {
            case ArithOp::kAdd:
              out.f64[i] = a + b;
              break;
            case ArithOp::kSub:
              out.f64[i] = a - b;
              break;
            case ArithOp::kMul:
              out.f64[i] = a * b;
              break;
            case ArithOp::kDiv:
              out.f64[i] = b == 0.0 ? 0.0 : a / b;
              break;
          }
        }
      }
      return out;
    }
    case ExprKind::kLogical: {
      ECODB_ASSIGN_OR_RETURN(ColumnData l, lhs_->Evaluate(batch));
      ECODB_ASSIGN_OR_RETURN(ColumnData r, rhs_->Evaluate(batch));
      out.i64.resize(n);
      for (size_t i = 0; i < n; ++i) {
        out.i64[i] = logical_op_ == LogicalOp::kAnd
                         ? (l.i64[i] != 0 && r.i64[i] != 0)
                         : (l.i64[i] != 0 || r.i64[i] != 0);
      }
      return out;
    }
    case ExprKind::kNot: {
      ECODB_ASSIGN_OR_RETURN(ColumnData l, lhs_->Evaluate(batch));
      out.i64.resize(n);
      for (size_t i = 0; i < n; ++i) out.i64[i] = l.i64[i] == 0;
      return out;
    }
  }
  return Status::Internal("unreachable expression kind");
}

StatusOr<std::vector<uint8_t>> Expr::EvaluateMask(
    const RecordBatch& batch) const {
  // Local scratch keeps this callable from parallel worker contexts; the
  // fused path still avoids the old Evaluate-then-convert double pass.
  EvalScratch scratch;
  std::vector<uint8_t> mask;
  ECODB_RETURN_IF_ERROR(EvaluateMaskInto(batch, &scratch, &mask));
  return mask;
}

// --- Fused batch-at-a-time evaluation --------------------------------------
//
// The tree-walk Evaluate above materializes a ColumnData per node; it is
// kept unchanged as the reference semantics (and differential oracle). The
// fused path below emits selection masks directly and reads leaf operands
// (columns, literals) in place. It must stay byte-identical to Evaluate:
// in particular, numeric comparisons always go through double — including
// int64 vs int64 — matching the reference exactly.

struct Expr::NumView {
  const double* f64 = nullptr;
  const int64_t* i64 = nullptr;
  double constant = 0.0;
};

struct Expr::I64View {
  const int64_t* ptr = nullptr;
  int64_t constant = 0;
};

namespace {

// Binds a view to a row-indexed getter lambda so the op loops below
// specialize into tight branch-free code per operand shape.
template <typename F>
void WithNum(const Expr::NumView& v, F&& f);

template <typename L, typename R>
void CompareLoop(CompareOp op, size_t n, const L& l, const R& r,
                 uint8_t* out) {
  switch (op) {
    case CompareOp::kEq:
      for (size_t i = 0; i < n; ++i) out[i] = l(i) == r(i);
      break;
    case CompareOp::kNe:
      for (size_t i = 0; i < n; ++i) out[i] = l(i) != r(i);
      break;
    case CompareOp::kLt:
      for (size_t i = 0; i < n; ++i) out[i] = l(i) < r(i);
      break;
    case CompareOp::kLe:
      for (size_t i = 0; i < n; ++i) out[i] = l(i) <= r(i);
      break;
    case CompareOp::kGt:
      for (size_t i = 0; i < n; ++i) out[i] = l(i) > r(i);
      break;
    case CompareOp::kGe:
      for (size_t i = 0; i < n; ++i) out[i] = l(i) >= r(i);
      break;
  }
}

template <typename L, typename R>
void ArithF64Loop(ArithOp op, size_t n, const L& l, const R& r, double* out) {
  switch (op) {
    case ArithOp::kAdd:
      for (size_t i = 0; i < n; ++i) out[i] = l(i) + r(i);
      break;
    case ArithOp::kSub:
      for (size_t i = 0; i < n; ++i) out[i] = l(i) - r(i);
      break;
    case ArithOp::kMul:
      for (size_t i = 0; i < n; ++i) out[i] = l(i) * r(i);
      break;
    case ArithOp::kDiv:
      for (size_t i = 0; i < n; ++i) {
        const double b = r(i);
        out[i] = b == 0.0 ? 0.0 : l(i) / b;
      }
      break;
  }
}

template <typename L, typename R>
void ArithI64Loop(ArithOp op, size_t n, const L& l, const R& r,
                  int64_t* out) {
  switch (op) {
    case ArithOp::kAdd:
      for (size_t i = 0; i < n; ++i) out[i] = WrapAdd(l(i), r(i));
      break;
    case ArithOp::kSub:
      for (size_t i = 0; i < n; ++i) out[i] = WrapSub(l(i), r(i));
      break;
    case ArithOp::kMul:
      for (size_t i = 0; i < n; ++i) out[i] = WrapMul(l(i), r(i));
      break;
    case ArithOp::kDiv:
      assert(false && "integer division promotes to double");
      break;
  }
}

template <typename F>
void WithNum(const Expr::NumView& v, F&& f) {
  if (v.f64 != nullptr) {
    f([p = v.f64](size_t i) { return p[i]; });
  } else if (v.i64 != nullptr) {
    f([p = v.i64](size_t i) { return static_cast<double>(p[i]); });
  } else {
    f([c = v.constant](size_t) { return c; });
  }
}

template <typename F>
void WithI64(const Expr::I64View& v, F&& f) {
  if (v.ptr != nullptr) {
    f([p = v.ptr](size_t i) { return p[i]; });
  } else {
    f([c = v.constant](size_t) { return c; });
  }
}

}  // namespace

Status Expr::MakeNumView(const RecordBatch& batch, EvalScratch* scratch,
                         size_t depth, int slot, NumView* view) const {
  switch (kind_) {
    case ExprKind::kColumn: {
      const ColumnData& c = batch.column(column_index_);
      if (c.type == DataType::kDouble) {
        view->f64 = c.f64.data();
      } else {
        view->i64 = c.i64.data();
      }
      return Status::OK();
    }
    case ExprKind::kLiteral:
      view->constant = literal_.AsDouble();
      return Status::OK();
    default: {
      ColumnData* tmp = scratch->Lane(2 * depth + static_cast<size_t>(slot));
      ECODB_RETURN_IF_ERROR(NumImpl(batch, scratch, depth + 1, tmp));
      if (result_type_ == DataType::kDouble) {
        view->f64 = tmp->f64.data();
      } else {
        view->i64 = tmp->i64.data();
      }
      return Status::OK();
    }
  }
}

Status Expr::MakeI64View(const RecordBatch& batch, EvalScratch* scratch,
                         size_t depth, int slot, I64View* view) const {
  switch (kind_) {
    case ExprKind::kColumn:
      view->ptr = batch.column(column_index_).i64.data();
      return Status::OK();
    case ExprKind::kLiteral:
      view->constant = literal_.i64;
      return Status::OK();
    default: {
      ColumnData* tmp = scratch->Lane(2 * depth + static_cast<size_t>(slot));
      ECODB_RETURN_IF_ERROR(NumImpl(batch, scratch, depth + 1, tmp));
      view->ptr = tmp->i64.data();
      return Status::OK();
    }
  }
}

Status Expr::MaskImpl(const RecordBatch& batch, EvalScratch* scratch,
                      size_t depth, std::vector<uint8_t>* mask) const {
  if (result_type_ != DataType::kInt64) {
    return Status::InvalidArgument("mask expression must be boolean/int64");
  }
  const size_t n = batch.num_rows();
  mask->resize(n);
  switch (kind_) {
    case ExprKind::kColumn: {
      const int64_t* lane = batch.column(column_index_).i64.data();
      for (size_t i = 0; i < n; ++i) (*mask)[i] = lane[i] != 0;
      return Status::OK();
    }
    case ExprKind::kLiteral: {
      std::fill(mask->begin(), mask->end(),
                static_cast<uint8_t>(literal_.i64 != 0));
      return Status::OK();
    }
    case ExprKind::kCompare: {
      if (lhs_->result_type_ == DataType::kString) {
        // String operands are columns or literals by construction (every
        // other node kind produces a numeric type).
        auto lane_of = [&](const Expr& e) {
          return e.kind_ == ExprKind::kColumn
                     ? batch.column(e.column_index_).str.data()
                     : nullptr;
        };
        const std::string* lp = lane_of(*lhs_);
        const std::string* rp = lane_of(*rhs_);
        const std::string& lc = lhs_->literal_.str;
        const std::string& rc = rhs_->literal_.str;
        for (size_t i = 0; i < n; ++i) {
          (*mask)[i] = CompareStrings(compare_op_, lp ? lp[i] : lc,
                                      rp ? rp[i] : rc);
        }
        return Status::OK();
      }
      NumView l, r;
      ECODB_RETURN_IF_ERROR(lhs_->MakeNumView(batch, scratch, depth, 0, &l));
      ECODB_RETURN_IF_ERROR(rhs_->MakeNumView(batch, scratch, depth, 1, &r));
      uint8_t* out = mask->data();
      WithNum(l, [&](auto lg) {
        WithNum(r, [&](auto rg) { CompareLoop(compare_op_, n, lg, rg, out); });
      });
      return Status::OK();
    }
    case ExprKind::kLogical: {
      // Evaluate the cheaper side first; when it already decides the whole
      // batch (all-zero AND / all-one OR) the expensive side is skipped.
      // AND/OR are commutative over total masks, so output is unchanged.
      const Expr* a = lhs_.get();
      const Expr* b = rhs_.get();
      if (b->InstructionsPerRow() < a->InstructionsPerRow()) std::swap(a, b);
      ECODB_RETURN_IF_ERROR(a->MaskImpl(batch, scratch, depth + 1, mask));
      uint8_t all_one = 1, any_one = 0;
      for (size_t i = 0; i < n; ++i) {
        all_one &= (*mask)[i];
        any_one |= (*mask)[i];
      }
      const bool is_and = logical_op_ == LogicalOp::kAnd;
      if (is_and && any_one == 0) return Status::OK();
      if (!is_and && all_one == 1) return Status::OK();
      std::vector<uint8_t>* tmp = scratch->Mask(depth);
      ECODB_RETURN_IF_ERROR(b->MaskImpl(batch, scratch, depth + 1, tmp));
      uint8_t* m = mask->data();
      const uint8_t* t = tmp->data();
      if (is_and) {
        for (size_t i = 0; i < n; ++i) m[i] &= t[i];
      } else {
        for (size_t i = 0; i < n; ++i) m[i] |= t[i];
      }
      return Status::OK();
    }
    case ExprKind::kNot: {
      ECODB_RETURN_IF_ERROR(lhs_->MaskImpl(batch, scratch, depth + 1, mask));
      uint8_t* m = mask->data();
      for (size_t i = 0; i < n; ++i) m[i] ^= 1;
      return Status::OK();
    }
    case ExprKind::kArith: {
      ColumnData* tmp = scratch->Lane(2 * depth);
      ECODB_RETURN_IF_ERROR(NumImpl(batch, scratch, depth + 1, tmp));
      const int64_t* lane = tmp->i64.data();
      for (size_t i = 0; i < n; ++i) (*mask)[i] = lane[i] != 0;
      return Status::OK();
    }
  }
  return Status::Internal("unreachable expression kind");
}

Status Expr::NumImpl(const RecordBatch& batch, EvalScratch* scratch,
                     size_t depth, ColumnData* out) const {
  const size_t n = batch.num_rows();
  out->type = result_type_;
  switch (kind_) {
    case ExprKind::kColumn:
      *out = batch.column(column_index_);
      return Status::OK();
    case ExprKind::kLiteral:
      switch (result_type_) {
        case DataType::kInt64:
        case DataType::kDate:
          out->i64.assign(n, literal_.i64);
          break;
        case DataType::kDouble:
          out->f64.assign(n, literal_.f64);
          break;
        case DataType::kString:
          out->str.assign(n, literal_.str);
          break;
      }
      return Status::OK();
    case ExprKind::kCompare:
    case ExprKind::kLogical:
    case ExprKind::kNot: {
      // Boolean nodes produce 0/1 int64 lanes; reuse the mask machinery
      // and widen (masks are exactly 0/1 bytes).
      std::vector<uint8_t>* m = scratch->Mask(depth);
      ECODB_RETURN_IF_ERROR(MaskImpl(batch, scratch, depth + 1, m));
      out->i64.resize(n);
      const uint8_t* src = m->data();
      for (size_t i = 0; i < n; ++i) out->i64[i] = src[i];
      return Status::OK();
    }
    case ExprKind::kArith: {
      if (result_type_ == DataType::kInt64) {
        I64View l, r;
        ECODB_RETURN_IF_ERROR(
            lhs_->MakeI64View(batch, scratch, depth, 0, &l));
        ECODB_RETURN_IF_ERROR(
            rhs_->MakeI64View(batch, scratch, depth, 1, &r));
        out->i64.resize(n);
        int64_t* dst = out->i64.data();
        WithI64(l, [&](auto lg) {
          WithI64(r, [&](auto rg) { ArithI64Loop(arith_op_, n, lg, rg, dst); });
        });
      } else {
        NumView l, r;
        ECODB_RETURN_IF_ERROR(lhs_->MakeNumView(batch, scratch, depth, 0, &l));
        ECODB_RETURN_IF_ERROR(rhs_->MakeNumView(batch, scratch, depth, 1, &r));
        out->f64.resize(n);
        double* dst = out->f64.data();
        WithNum(l, [&](auto lg) {
          WithNum(r, [&](auto rg) { ArithF64Loop(arith_op_, n, lg, rg, dst); });
        });
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable expression kind");
}

Status Expr::EvaluateMaskInto(const RecordBatch& batch, EvalScratch* scratch,
                              std::vector<uint8_t>* mask) const {
  if (result_type_ != DataType::kInt64) {
    return Status::InvalidArgument("mask expression must be boolean/int64");
  }
  if (!bound_) return Status::FailedPrecondition("expression not bound");
  return MaskImpl(batch, scratch, 0, mask);
}

Status Expr::EvaluateInto(const RecordBatch& batch, EvalScratch* scratch,
                          ColumnData* out) const {
  if (!bound_) return Status::FailedPrecondition("expression not bound");
  out->i64.clear();
  out->f64.clear();
  out->str.clear();
  return NumImpl(batch, scratch, 0, out);
}

double Expr::InstructionsPerRow() const {
  switch (kind_) {
    case ExprKind::kColumn:
      return 1.0;
    case ExprKind::kLiteral:
      return 0.5;
    case ExprKind::kCompare:
      return 2.0 + lhs_->InstructionsPerRow() + rhs_->InstructionsPerRow();
    case ExprKind::kArith:
      return 1.5 + lhs_->InstructionsPerRow() + rhs_->InstructionsPerRow();
    case ExprKind::kLogical:
      return 1.0 + lhs_->InstructionsPerRow() + rhs_->InstructionsPerRow();
    case ExprKind::kNot:
      return 1.0 + lhs_->InstructionsPerRow();
  }
  return 1.0;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kColumn:
      return column_name_;
    case ExprKind::kLiteral:
      switch (literal_.type) {
        case DataType::kInt64:
          return std::to_string(literal_.i64);
        case DataType::kDate:
          return "date:" + std::to_string(literal_.i64);
        case DataType::kDouble:
          return std::to_string(literal_.f64);
        case DataType::kString:
          return "'" + literal_.str + "'";
      }
      return "?";
    case ExprKind::kCompare: {
      static const char* kOps[] = {"=", "!=", "<", "<=", ">", ">="};
      return "(" + lhs_->ToString() + " " +
             kOps[static_cast<int>(compare_op_)] + " " + rhs_->ToString() +
             ")";
    }
    case ExprKind::kArith: {
      static const char* kOps[] = {"+", "-", "*", "/"};
      return "(" + lhs_->ToString() + " " +
             kOps[static_cast<int>(arith_op_)] + " " + rhs_->ToString() + ")";
    }
    case ExprKind::kLogical:
      return "(" + lhs_->ToString() +
             (logical_op_ == LogicalOp::kAnd ? " AND " : " OR ") +
             rhs_->ToString() + ")";
    case ExprKind::kNot:
      return "NOT " + lhs_->ToString();
  }
  return "?";
}

}  // namespace ecodb::exec

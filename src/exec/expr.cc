#include "exec/expr.h"

#include <cassert>
#include <cmath>

namespace ecodb::exec {

using catalog::DataType;

ExprPtr Expr::Column(std::string name) {
  auto e = ExprPtr(new Expr());
  e->kind_ = ExprKind::kColumn;
  e->column_name_ = std::move(name);
  return e;
}

ExprPtr Expr::Literal(Value v) {
  auto e = ExprPtr(new Expr());
  e->kind_ = ExprKind::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = ExprPtr(new Expr());
  e->kind_ = ExprKind::kCompare;
  e->compare_op_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

ExprPtr Expr::Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = ExprPtr(new Expr());
  e->kind_ = ExprKind::kArith;
  e->arith_op_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

ExprPtr Expr::Logical(LogicalOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = ExprPtr(new Expr());
  e->kind_ = ExprKind::kLogical;
  e->logical_op_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

ExprPtr Expr::Not(ExprPtr inner) {
  auto e = ExprPtr(new Expr());
  e->kind_ = ExprKind::kNot;
  e->lhs_ = std::move(inner);
  return e;
}

namespace {
bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble ||
         t == DataType::kDate;
}
}  // namespace

Status Expr::Bind(const catalog::Schema& schema) {
  switch (kind_) {
    case ExprKind::kColumn: {
      column_index_ = schema.FindColumn(column_name_);
      if (column_index_ < 0) {
        return Status::NotFound("unbound column '" + column_name_ + "'");
      }
      result_type_ = schema.column(column_index_).type;
      break;
    }
    case ExprKind::kLiteral:
      result_type_ = literal_.type;
      break;
    case ExprKind::kCompare: {
      ECODB_RETURN_IF_ERROR(lhs_->Bind(schema));
      ECODB_RETURN_IF_ERROR(rhs_->Bind(schema));
      const DataType lt = lhs_->result_type_;
      const DataType rt = rhs_->result_type_;
      const bool both_numeric = IsNumeric(lt) && IsNumeric(rt);
      const bool both_string =
          lt == DataType::kString && rt == DataType::kString;
      if (!both_numeric && !both_string) {
        return Status::InvalidArgument("comparison type mismatch");
      }
      result_type_ = DataType::kInt64;
      break;
    }
    case ExprKind::kArith: {
      ECODB_RETURN_IF_ERROR(lhs_->Bind(schema));
      ECODB_RETURN_IF_ERROR(rhs_->Bind(schema));
      if (!IsNumeric(lhs_->result_type_) || !IsNumeric(rhs_->result_type_)) {
        return Status::InvalidArgument("arithmetic on non-numeric operand");
      }
      const bool any_double = lhs_->result_type_ == DataType::kDouble ||
                              rhs_->result_type_ == DataType::kDouble ||
                              arith_op_ == ArithOp::kDiv;
      result_type_ = any_double ? DataType::kDouble : DataType::kInt64;
      break;
    }
    case ExprKind::kLogical:
      ECODB_RETURN_IF_ERROR(lhs_->Bind(schema));
      ECODB_RETURN_IF_ERROR(rhs_->Bind(schema));
      result_type_ = DataType::kInt64;
      break;
    case ExprKind::kNot:
      ECODB_RETURN_IF_ERROR(lhs_->Bind(schema));
      result_type_ = DataType::kInt64;
      break;
  }
  bound_ = true;
  return Status::OK();
}

namespace {

// Numeric lane view: promotes int64/date lanes to double on demand.
double NumericAt(const ColumnData& c, size_t row) {
  return c.type == DataType::kDouble ? c.f64[row]
                                     : static_cast<double>(c.i64[row]);
}

bool CompareDoubles(CompareOp op, double a, double b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
  }
  return false;
}

bool CompareStrings(CompareOp op, const std::string& a,
                    const std::string& b) {
  const int c = a.compare(b);
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

}  // namespace

StatusOr<ColumnData> Expr::Evaluate(const RecordBatch& batch) const {
  if (!bound_) return Status::FailedPrecondition("expression not bound");
  const size_t n = batch.num_rows();
  ColumnData out;
  out.type = result_type_;
  switch (kind_) {
    case ExprKind::kColumn:
      return batch.column(column_index_);
    case ExprKind::kLiteral: {
      switch (result_type_) {
        case DataType::kInt64:
        case DataType::kDate:
          out.i64.assign(n, literal_.i64);
          break;
        case DataType::kDouble:
          out.f64.assign(n, literal_.f64);
          break;
        case DataType::kString:
          out.str.assign(n, literal_.str);
          break;
      }
      return out;
    }
    case ExprKind::kCompare: {
      ECODB_ASSIGN_OR_RETURN(ColumnData l, lhs_->Evaluate(batch));
      ECODB_ASSIGN_OR_RETURN(ColumnData r, rhs_->Evaluate(batch));
      out.i64.resize(n);
      if (l.type == DataType::kString) {
        for (size_t i = 0; i < n; ++i) {
          out.i64[i] = CompareStrings(compare_op_, l.str[i], r.str[i]);
        }
      } else if (l.type != DataType::kDouble && r.type != DataType::kDouble) {
        for (size_t i = 0; i < n; ++i) {
          out.i64[i] =
              CompareDoubles(compare_op_, static_cast<double>(l.i64[i]),
                             static_cast<double>(r.i64[i]));
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          out.i64[i] = CompareDoubles(compare_op_, NumericAt(l, i),
                                      NumericAt(r, i));
        }
      }
      return out;
    }
    case ExprKind::kArith: {
      ECODB_ASSIGN_OR_RETURN(ColumnData l, lhs_->Evaluate(batch));
      ECODB_ASSIGN_OR_RETURN(ColumnData r, rhs_->Evaluate(batch));
      if (result_type_ == DataType::kInt64) {
        out.i64.resize(n);
        for (size_t i = 0; i < n; ++i) {
          switch (arith_op_) {
            case ArithOp::kAdd:
              out.i64[i] = l.i64[i] + r.i64[i];
              break;
            case ArithOp::kSub:
              out.i64[i] = l.i64[i] - r.i64[i];
              break;
            case ArithOp::kMul:
              out.i64[i] = l.i64[i] * r.i64[i];
              break;
            case ArithOp::kDiv:
              assert(false && "integer division promotes to double");
              break;
          }
        }
      } else {
        out.f64.resize(n);
        for (size_t i = 0; i < n; ++i) {
          const double a = NumericAt(l, i);
          const double b = NumericAt(r, i);
          switch (arith_op_) {
            case ArithOp::kAdd:
              out.f64[i] = a + b;
              break;
            case ArithOp::kSub:
              out.f64[i] = a - b;
              break;
            case ArithOp::kMul:
              out.f64[i] = a * b;
              break;
            case ArithOp::kDiv:
              out.f64[i] = b == 0.0 ? 0.0 : a / b;
              break;
          }
        }
      }
      return out;
    }
    case ExprKind::kLogical: {
      ECODB_ASSIGN_OR_RETURN(ColumnData l, lhs_->Evaluate(batch));
      ECODB_ASSIGN_OR_RETURN(ColumnData r, rhs_->Evaluate(batch));
      out.i64.resize(n);
      for (size_t i = 0; i < n; ++i) {
        out.i64[i] = logical_op_ == LogicalOp::kAnd
                         ? (l.i64[i] != 0 && r.i64[i] != 0)
                         : (l.i64[i] != 0 || r.i64[i] != 0);
      }
      return out;
    }
    case ExprKind::kNot: {
      ECODB_ASSIGN_OR_RETURN(ColumnData l, lhs_->Evaluate(batch));
      out.i64.resize(n);
      for (size_t i = 0; i < n; ++i) out.i64[i] = l.i64[i] == 0;
      return out;
    }
  }
  return Status::Internal("unreachable expression kind");
}

StatusOr<std::vector<uint8_t>> Expr::EvaluateMask(
    const RecordBatch& batch) const {
  if (result_type_ != DataType::kInt64) {
    return Status::InvalidArgument("mask expression must be boolean/int64");
  }
  ECODB_ASSIGN_OR_RETURN(ColumnData vals, Evaluate(batch));
  std::vector<uint8_t> mask(batch.num_rows());
  for (size_t i = 0; i < mask.size(); ++i) mask[i] = vals.i64[i] != 0;
  return mask;
}

double Expr::InstructionsPerRow() const {
  switch (kind_) {
    case ExprKind::kColumn:
      return 1.0;
    case ExprKind::kLiteral:
      return 0.5;
    case ExprKind::kCompare:
      return 2.0 + lhs_->InstructionsPerRow() + rhs_->InstructionsPerRow();
    case ExprKind::kArith:
      return 1.5 + lhs_->InstructionsPerRow() + rhs_->InstructionsPerRow();
    case ExprKind::kLogical:
      return 1.0 + lhs_->InstructionsPerRow() + rhs_->InstructionsPerRow();
    case ExprKind::kNot:
      return 1.0 + lhs_->InstructionsPerRow();
  }
  return 1.0;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kColumn:
      return column_name_;
    case ExprKind::kLiteral:
      switch (literal_.type) {
        case DataType::kInt64:
          return std::to_string(literal_.i64);
        case DataType::kDate:
          return "date:" + std::to_string(literal_.i64);
        case DataType::kDouble:
          return std::to_string(literal_.f64);
        case DataType::kString:
          return "'" + literal_.str + "'";
      }
      return "?";
    case ExprKind::kCompare: {
      static const char* kOps[] = {"=", "!=", "<", "<=", ">", ">="};
      return "(" + lhs_->ToString() + " " +
             kOps[static_cast<int>(compare_op_)] + " " + rhs_->ToString() +
             ")";
    }
    case ExprKind::kArith: {
      static const char* kOps[] = {"+", "-", "*", "/"};
      return "(" + lhs_->ToString() + " " +
             kOps[static_cast<int>(arith_op_)] + " " + rhs_->ToString() + ")";
    }
    case ExprKind::kLogical:
      return "(" + lhs_->ToString() +
             (logical_op_ == LogicalOp::kAnd ? " AND " : " OR ") +
             rhs_->ToString() + ")";
    case ExprKind::kNot:
      return "NOT " + lhs_->ToString();
  }
  return "?";
}

}  // namespace ecodb::exec

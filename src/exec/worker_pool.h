// Morsel-driven worker pool: the engine's parallel execution substrate.
//
// A WorkerPool owns `parallelism - 1` long-lived threads; the thread that
// calls Run() participates as worker slot 0, so a pool of parallelism 1
// degenerates to inline serial execution with zero thread hops. Tasks are
// claimed morsel-driven (Leis et al., SIGMOD 2014): workers pull the next
// task index from a shared atomic ticket, so skew in per-morsel work
// self-balances without any static partitioning.
//
// Accounting discipline: workers never touch the ExecContext. Each worker
// slot owns a WorkAccumulator; the coordinator merges them after Run()
// returns. There are no hot-path atomics besides the task ticket and no
// data races — the pool is the only cross-thread rendezvous, and its
// mutex/condition-variable handshake publishes all task effects to the
// coordinator (TSan-clean by construction).

#ifndef ECODB_EXEC_WORKER_POOL_H_
#define ECODB_EXEC_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace ecodb::exec {

/// Per-worker tally of the work a slot performed during one Run(). Counts
/// are integers so merged totals are exact and independent of how morsels
/// were distributed across workers (accounting must be dop-invariant).
// ecodb-lint: worker-partial
struct WorkAccumulator {
  // `instructions` is a double by exception: every contribution is a dyadic
  // cost constant times an integer count, so sums are exact in binary
  // floating point and merge grouping cannot perturb the total.
  double instructions = 0.0;  // NOLINT-ECODB(EC3)
  uint64_t io_bytes = 0;
  uint64_t dram_bytes = 0;
  uint64_t rows_in = 0;   // rows consumed from the source
  uint64_t rows_out = 0;  // rows surviving local filtering

  void Merge(const WorkAccumulator& other) {
    instructions += other.instructions;
    io_bytes += other.io_bytes;
    dram_bytes += other.dram_bytes;
    rows_in += other.rows_in;
    rows_out += other.rows_out;
  }
};

class WorkerPool {
 public:
  /// A pool executing up to `parallelism` tasks concurrently (the caller's
  /// thread plus `parallelism - 1` pool threads). parallelism >= 1.
  explicit WorkerPool(int parallelism);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int parallelism() const { return parallelism_; }

  /// fn(task_index, worker_slot): worker_slot is in [0, parallelism) and is
  /// stable for the duration of one Run, so fn may use it to index
  /// per-worker state (accumulators, partial tables) without locking.
  using Task = std::function<Status(size_t task_index, int worker_slot)>;

  /// Runs tasks 0..num_tasks-1 across the pool and the calling thread;
  /// blocks until every claimed task finished. Returns the first non-OK
  /// status (remaining unclaimed tasks are then skipped). Not reentrant:
  /// one Run at a time per pool.
  Status Run(size_t num_tasks, const Task& fn);

 private:
  void ClaimLoop(int slot);

  const int parallelism_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t job_seq_ = 0;       // bumped per Run; wakes the workers
  size_t participants_done_ = 0;
  bool shutdown_ = false;
  Status first_error_;

  // Current job; written under mu_ before the wake, read lock-free by
  // workers whose wake-up acquire orders them after the writes.
  const Task* task_ = nullptr;
  size_t num_tasks_ = 0;
  std::atomic<size_t> next_task_{0};
};

}  // namespace ecodb::exec

#endif  // ECODB_EXEC_WORKER_POOL_H_

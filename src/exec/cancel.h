// CancelToken: cooperative cancellation for operator pull loops.
//
// Overload protection (DESIGN.md §14) needs a way to stop a session that
// has blown its deadline or been shed by the serving core — without
// forgetting the Joules it already burned. The token carries two things:
//
//   * a deadline on the simulated timeline, checked by
//     ExecContext::PollCancel() against the query's *projected* critical
//     path (charged work so far), so the kill lands at the same batch
//     boundary at every dop;
//   * an explicit kill reason, set by the serving core before (or instead
//     of) running the plan, so `kShed` / `kDeadlineExceeded` propagates as
//     an ordinary Status through the operator tree.
//
// Operators never read the token directly: they call ctx->PollCancel() at
// batch/morsel boundaries (lint rule EC11 enforces this for every Next
// body and morsel dispatch loop in src/exec). A non-OK poll unwinds the
// pull loop; everything already charged stays charged — partial work is
// real work and lands on the session's bill.

#ifndef ECODB_EXEC_CANCEL_H_
#define ECODB_EXEC_CANCEL_H_

#include <limits>

namespace ecodb::exec {

/// Why a query was told to stop. kNone means "keep running".
enum class CancelReason {
  kNone = 0,
  kDeadline,  // projected completion passed the deadline
  kShed,      // serving core refused/aborted the work (load or power cap)
};

/// Cooperative cancellation state carried by ExecContext. Plain value type:
/// the serving core configures it at admission; PollCancel latches the
/// deadline reason the first time the projection crosses the line.
struct CancelToken {
  /// Deadline on the simulated timeline (absolute seconds). A query whose
  /// projected critical-path completion reaches this instant is killed at
  /// its next poll. Infinity = no deadline.
  double deadline_s = std::numeric_limits<double>::infinity();

  /// Explicit kill switch: set before execution (or between pool rounds by
  /// the coordinator) to stop the plan at its next poll.
  CancelReason reason = CancelReason::kNone;

  bool cancelled() const { return reason != CancelReason::kNone; }

  /// Latches `r` as the kill reason (first reason wins).
  void Cancel(CancelReason r) {
    if (reason == CancelReason::kNone) reason = r;
  }
};

}  // namespace ecodb::exec

#endif  // ECODB_EXEC_CANCEL_H_

// Table scan operator, with optional zone-map pruning.
//
// Streams a TableStorage's projected columns as record batches. On Open it
// submits the device I/O for the projected footprint (sequential stream —
// the whole point of the Figure 2 experiment is the size of this transfer
// under different compression choices) and performs the real decode of any
// compressed columns, charging the corresponding CPU instructions.
//
// When the table has zone maps and a prune filter is supplied, blocks whose
// min/max cannot satisfy the filter are skipped: their rows are never
// emitted, and — for uncompressed columns and row-layout tables — their
// bytes are never transferred, so skipped I/O is skipped energy. Pruning is
// conservative (may emit non-matching rows); exact filtering still belongs
// to a downstream FilterOp.

#ifndef ECODB_EXEC_SCAN_H_
#define ECODB_EXEC_SCAN_H_

#include <string>
#include <vector>

#include "exec/expr.h"
#include "exec/operator.h"
#include "storage/table_storage.h"

namespace ecodb::exec {

/// Per-block "may match" bitmap of `filter` against `table`'s zone maps
/// (conservative: unknown shapes prune nothing). Exposed for the planner's
/// scan-cost estimation; empty when the table has no zone maps.
std::vector<bool> ZoneBlocksMayMatch(const ExprPtr& filter,
                                     const storage::TableStorage& table);

/// A half-open run of selected row positions.
struct ScanRowRange {
  size_t begin;
  size_t end;
};

/// Outcome of zone-map pruning: the surviving row ranges (block-aligned,
/// ascending, adjacent blocks coalesced) plus skip statistics.
struct ScanPruning {
  std::vector<ScanRowRange> ranges;
  size_t blocks_skipped = 0;
  double selected_fraction = 1.0;
};

/// Evaluates `filter` against `table`'s zone maps into the selected row
/// ranges. With a null filter, no zone maps, or an empty table, everything
/// is selected. Every serial or parallel scan and the planner's estimator
/// use this one routine, so `blocks_skipped` agrees across all of them.
ScanPruning PruneScan(const ExprPtr& filter,
                      const storage::TableStorage& table);

/// Device bytes a scan of `column_indexes` must transfer when only
/// `selected_fraction` of blocks survive pruning (whole-column codecs and
/// row-layout pages cannot skip partial transfers the same way).
uint64_t ScanTransferBytes(const storage::TableStorage& table,
                           const std::vector<int>& column_indexes,
                           double selected_fraction);

/// Modeled decode instructions for the same scan (per-value touch for
/// uncompressed lanes, codec decode cost for compressed ones, which always
/// decode the whole column).
double ScanDecodeInstructions(const storage::TableStorage& table,
                              const std::vector<int>& column_indexes,
                              double selected_fraction);

class TableScanOp final : public Operator {
 public:
  /// Projects `columns` (empty = all columns) from `table`. A non-null
  /// `prune_filter` enables zone-map block skipping (the table must have
  /// zone maps built; otherwise the filter is ignored).
  TableScanOp(const storage::TableStorage* table,
              std::vector<std::string> columns = {},
              ExprPtr prune_filter = nullptr);

  const catalog::Schema& output_schema() const override { return schema_; }
  Status Open(ExecContext* ctx) override;
  Status Next(RecordBatch* out, bool* eos) override;
  void Close() override;

  /// Blocks skipped by zone-map pruning during the last Open (0 when
  /// pruning was off).
  size_t blocks_skipped() const { return blocks_skipped_; }

 private:
  const storage::TableStorage* table_;
  std::vector<std::string> column_names_;
  std::vector<int> column_indexes_;
  ExprPtr prune_filter_;
  catalog::Schema schema_;
  std::vector<storage::ColumnData> decoded_;
  std::vector<ScanRowRange> ranges_;  // selected row ranges, ascending
  size_t range_idx_ = 0;
  size_t cursor_ = 0;
  size_t batch_rows_ = kDefaultBatchRows;
  size_t blocks_skipped_ = 0;
  ExecContext* ctx_ = nullptr;
  bool open_ = false;
};

}  // namespace ecodb::exec

#endif  // ECODB_EXEC_SCAN_H_

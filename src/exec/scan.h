// Table scan operator, with optional zone-map pruning.
//
// Streams a TableStorage's projected columns as record batches. On Open it
// submits the device I/O for the projected footprint (sequential stream —
// the whole point of the Figure 2 experiment is the size of this transfer
// under different compression choices) and performs the real decode of any
// compressed columns, charging the corresponding CPU instructions.
//
// When the table has zone maps and a prune filter is supplied, blocks whose
// min/max cannot satisfy the filter are skipped: their rows are never
// emitted, and — for uncompressed columns and row-layout tables — their
// bytes are never transferred, so skipped I/O is skipped energy. Pruning is
// conservative (may emit non-matching rows); exact filtering still belongs
// to a downstream FilterOp.

#ifndef ECODB_EXEC_SCAN_H_
#define ECODB_EXEC_SCAN_H_

#include <string>
#include <vector>

#include "exec/expr.h"
#include "exec/operator.h"
#include "storage/table_storage.h"

namespace ecodb::exec {

/// Per-block "may match" bitmap of `filter` against `table`'s zone maps
/// (conservative: unknown shapes prune nothing). Exposed for the planner's
/// scan-cost estimation; empty when the table has no zone maps.
std::vector<bool> ZoneBlocksMayMatch(const ExprPtr& filter,
                                     const storage::TableStorage& table);

class TableScanOp final : public Operator {
 public:
  /// Projects `columns` (empty = all columns) from `table`. A non-null
  /// `prune_filter` enables zone-map block skipping (the table must have
  /// zone maps built; otherwise the filter is ignored).
  TableScanOp(const storage::TableStorage* table,
              std::vector<std::string> columns = {},
              ExprPtr prune_filter = nullptr);

  const catalog::Schema& output_schema() const override { return schema_; }
  Status Open(ExecContext* ctx) override;
  Status Next(RecordBatch* out, bool* eos) override;
  void Close() override;

  /// Blocks skipped by zone-map pruning during the last Open (0 when
  /// pruning was off).
  size_t blocks_skipped() const { return blocks_skipped_; }

 private:
  struct RowRange {
    size_t begin;
    size_t end;
  };

  const storage::TableStorage* table_;
  std::vector<std::string> column_names_;
  std::vector<int> column_indexes_;
  ExprPtr prune_filter_;
  catalog::Schema schema_;
  std::vector<storage::ColumnData> decoded_;
  std::vector<RowRange> ranges_;  // selected row ranges, ascending
  size_t range_idx_ = 0;
  size_t cursor_ = 0;
  size_t batch_rows_ = kDefaultBatchRows;
  size_t blocks_skipped_ = 0;
  ExecContext* ctx_ = nullptr;
  bool open_ = false;
};

}  // namespace ecodb::exec

#endif  // ECODB_EXEC_SCAN_H_

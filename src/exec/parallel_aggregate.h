// Parallel partitioned hash aggregation.
//
// When its child is a MorselSource (the parallel table scan), the operator
// aggregates each morsel into a thread-local partial hash table inside the
// worker that produced the morsel — no shared state, no locks — then merges
// the partials into one ordered group table in morsel index order.
//
// Determinism contract: a group key appears at most once per morsel
// partial, and partials merge in morsel order, so the merged accumulators
// see contributions in a fixed order independent of dop and scheduling.
// With morsel boundaries themselves dop-invariant, the output and all
// modeled charges are identical at every dop. Charges are computed by the
// coordinator from merged row totals using the same CostConstants as the
// serial HashAggregateOp.
//
// A non-MorselSource child falls back to the serial drain (same arithmetic
// as HashAggregateOp), so the operator is safe to use in any plan.

#ifndef ECODB_EXEC_PARALLEL_AGGREGATE_H_
#define ECODB_EXEC_PARALLEL_AGGREGATE_H_

#include <map>
#include <string>
#include <vector>

#include "exec/aggregate.h"
#include "exec/operator.h"
#include "exec/parallel_scan.h"

namespace ecodb::exec {

class ParallelHashAggregateOp final : public Operator {
 public:
  /// `group_by` may be empty (global aggregate: exactly one output row).
  ParallelHashAggregateOp(OperatorPtr child,
                          std::vector<std::string> group_by,
                          std::vector<AggregateItem> aggregates);

  const catalog::Schema& output_schema() const override { return schema_; }
  Status Open(ExecContext* ctx) override;
  Status Next(RecordBatch* out, bool* eos) override;
  void Close() override;

 private:
  /// Builds groups_ (parallel over morsels, or serial child drain).
  Status Compute();
  /// Charges the aggregation's modeled CPU work for `rows` input rows.
  void ChargeUpdate(uint64_t rows);

  OperatorPtr child_;
  std::vector<std::string> group_by_names_;
  std::vector<int> group_by_;
  std::vector<AggregateItem> aggregates_;
  catalog::Schema schema_;
  std::map<std::string, GroupAccum> groups_;
  bool computed_ = false;
  std::vector<std::string> emit_order_;
  size_t cursor_ = 0;
  ExecContext* ctx_ = nullptr;
};

}  // namespace ecodb::exec

#endif  // ECODB_EXEC_PARALLEL_AGGREGATE_H_

#include "exec/joins.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace ecodb::exec {

using catalog::DataType;

catalog::Schema JoinedSchema(const catalog::Schema& left,
                             const catalog::Schema& right) {
  std::vector<catalog::Column> cols = left.columns();
  for (const catalog::Column& rc : right.columns()) {
    catalog::Column c = rc;
    if (left.FindColumn(c.name) >= 0) c.name += "_r";
    cols.push_back(std::move(c));
  }
  return catalog::Schema(std::move(cols));
}

namespace {

/// Materializes everything a child produces into one batch. Polls the
/// cancellation token per batch: a killed session stops draining at a
/// deterministic batch boundary with its partial charges intact.
Status Drain(Operator* child, ExecContext* ctx, RecordBatch* out) {
  *out = RecordBatch(child->output_schema());
  bool eos = false;
  while (true) {
    ECODB_RETURN_IF_ERROR(ctx->PollCancel());
    RecordBatch batch;
    ECODB_RETURN_IF_ERROR(child->Next(&batch, &eos));
    if (eos) return Status::OK();
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      out->AppendRowFrom(batch, r);
    }
  }
}

/// Nominal resident bytes of a materialized batch.
uint64_t BatchBytes(const RecordBatch& batch) {
  uint64_t bytes = 0;
  for (size_t c = 0; c < batch.num_columns(); ++c) {
    const ColumnData& lane = batch.column(c);
    bytes += lane.i64.size() * 8 + lane.f64.size() * 8;
    for (const std::string& s : lane.str) bytes += s.size() + 16;
  }
  return bytes;
}

/// Emits left row `lr` joined with build row `rr` into `out`.
void EmitJoined(const RecordBatch& left, size_t lr, const RecordBatch& right,
                size_t rr, RecordBatch* out) {
  const size_t lcols = left.num_columns();
  for (size_t c = 0; c < lcols; ++c) {
    ColumnData& dst = out->column(c);
    const ColumnData& src = left.column(c);
    switch (src.type) {
      case DataType::kInt64:
      case DataType::kDate:
        dst.i64.push_back(src.i64[lr]);
        break;
      case DataType::kDouble:
        dst.f64.push_back(src.f64[lr]);
        break;
      case DataType::kString:
        dst.str.push_back(src.str[lr]);
        break;
    }
  }
  for (size_t c = 0; c < right.num_columns(); ++c) {
    ColumnData& dst = out->column(lcols + c);
    const ColumnData& src = right.column(c);
    switch (src.type) {
      case DataType::kInt64:
      case DataType::kDate:
        dst.i64.push_back(src.i64[rr]);
        break;
      case DataType::kDouble:
        dst.f64.push_back(src.f64[rr]);
        break;
      case DataType::kString:
        dst.str.push_back(src.str[rr]);
        break;
    }
  }
}

}  // namespace

// --------------------------------------------------------------------------
// HashJoinOp
// --------------------------------------------------------------------------

HashJoinOp::HashJoinOp(OperatorPtr left, OperatorPtr right,
                       std::string left_key, std::string right_key)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_key_name_(std::move(left_key)),
      right_key_name_(std::move(right_key)) {}

Status HashJoinOp::Open(ExecContext* ctx) {
  // ecodb-lint: coordinator-only
  ctx_ = ctx;
  ECODB_RETURN_IF_ERROR(left_->Open(ctx));
  ECODB_RETURN_IF_ERROR(right_->Open(ctx));
  schema_ = JoinedSchema(left_->output_schema(), right_->output_schema());

  left_key_ = left_->output_schema().FindColumn(left_key_name_);
  right_key_ = right_->output_schema().FindColumn(right_key_name_);
  if (left_key_ < 0 || right_key_ < 0) {
    return Status::NotFound("join key column not found");
  }
  const DataType lt = left_->output_schema().column(left_key_).type;
  const DataType rt = right_->output_schema().column(right_key_).type;
  if ((lt == DataType::kString) != (rt == DataType::kString)) {
    return Status::InvalidArgument("join key type mismatch");
  }
  if (lt == DataType::kDouble || rt == DataType::kDouble) {
    return Status::InvalidArgument("hash join keys must be int64 or string");
  }
  string_key_ = lt == DataType::kString;

  // Build phase: materialize the right side and index it.
  ECODB_RETURN_IF_ERROR(Drain(right_.get(), ctx, &build_rows_));
  const ColumnData& key_lane = build_rows_.column(right_key_);
  for (size_t r = 0; r < build_rows_.num_rows(); ++r) {
    if (string_key_) {
      str_index_.emplace(key_lane.str[r], r);
    } else {
      i64_index_.emplace(key_lane.i64[r], r);
    }
  }
  build_bytes_ = BatchBytes(build_rows_) +
                 build_rows_.num_rows() * 32;  // bucket + entry overhead
  ctx->ChargeInstructions(ctx->options().costs.hash_build_per_row *
                          static_cast<double>(build_rows_.num_rows()));
  ctx->ChargeDram(build_bytes_);

  probe_source_ = dynamic_cast<MorselSource*>(left_.get());
  probe_slots_.clear();
  probed_ = false;
  probe_cursor_ = 0;
  return Status::OK();
}

Status HashJoinOp::ProbeBatch(const RecordBatch& probe, RecordBatch* joined,
                              size_t* matches) const {
  *joined = RecordBatch(schema_);
  const ColumnData& keys = probe.column(static_cast<size_t>(left_key_));
  *matches = 0;
  for (size_t r = 0; r < probe.num_rows(); ++r) {
    if (string_key_) {
      auto [lo, hi] = str_index_.equal_range(keys.str[r]);
      for (auto it = lo; it != hi; ++it) {
        EmitJoined(probe, r, build_rows_, it->second, joined);
        ++*matches;
      }
    } else {
      auto [lo, hi] = i64_index_.equal_range(keys.i64[r]);
      for (auto it = lo; it != hi; ++it) {
        EmitJoined(probe, r, build_rows_, it->second, joined);
        ++*matches;
      }
    }
  }
  return joined->SealRows(*matches);
}

Status HashJoinOp::ParallelProbe() {
  // ecodb-lint: coordinator-only
  ECODB_RETURN_IF_ERROR(ctx_->PollCancel());
  const size_t n_morsels = probe_source_->morsel_count();
  probe_slots_.assign(n_morsels, RecordBatch{});
  std::vector<size_t> match_counts(n_morsels, 0);
  WorkerPool* pool = ctx_->worker_pool();
  std::vector<WorkAccumulator> accs(static_cast<size_t>(pool->parallelism()));
  ECODB_RETURN_IF_ERROR(
      pool->Run(n_morsels, [&](size_t m, int slot) -> Status {
        // ecodb-lint: worker-context
        RecordBatch probe;
        ECODB_RETURN_IF_ERROR(probe_source_->ProduceMorsel(
            m, &probe, &accs[static_cast<size_t>(slot)]));
        return ProbeBatch(probe, &probe_slots_[m], &match_counts[m]);
      }));
  uint64_t probe_rows = 0;
  for (const WorkAccumulator& acc : accs) {
    probe_rows += acc.rows_out;
    ctx_->MergeWork(acc);
  }
  uint64_t total_matches = 0;
  for (size_t m : match_counts) total_matches += m;
  // Same constants as the serial probe, applied to dop-invariant totals.
  ctx_->ChargeInstructions(
      ctx_->options().costs.hash_probe_per_row *
          static_cast<double>(probe_rows) +
      ctx_->options().costs.output_per_row *
          static_cast<double>(total_matches));
  probed_ = true;
  probe_cursor_ = 0;
  return Status::OK();
}

Status HashJoinOp::Next(RecordBatch* out, bool* eos) {
  // ecodb-lint: coordinator-only
  ECODB_RETURN_IF_ERROR(ctx_->PollCancel());
  if (probe_source_ != nullptr) {
    if (!probed_) ECODB_RETURN_IF_ERROR(ParallelProbe());
    if (probe_cursor_ >= probe_slots_.size()) {
      *eos = true;
      return Status::OK();
    }
    *eos = false;
    *out = std::move(probe_slots_[probe_cursor_]);
    ++probe_cursor_;
    return Status::OK();
  }
  while (true) {
    ECODB_RETURN_IF_ERROR(ctx_->PollCancel());
    RecordBatch probe;
    ECODB_RETURN_IF_ERROR(left_->Next(&probe, eos));
    if (*eos) return Status::OK();
    ctx_->ChargeInstructions(ctx_->options().costs.hash_probe_per_row *
                             static_cast<double>(probe.num_rows()));
    RecordBatch joined;
    size_t matches = 0;
    ECODB_RETURN_IF_ERROR(ProbeBatch(probe, &joined, &matches));
    ctx_->ChargeInstructions(ctx_->options().costs.output_per_row *
                             static_cast<double>(matches));
    *out = std::move(joined);
    return Status::OK();
  }
}

void HashJoinOp::Close() {
  left_->Close();
  right_->Close();
  i64_index_.clear();
  str_index_.clear();
  probe_slots_.clear();
}

// --------------------------------------------------------------------------
// NestedLoopJoinOp
// --------------------------------------------------------------------------

NestedLoopJoinOp::NestedLoopJoinOp(OperatorPtr left, OperatorPtr right,
                                   ExprPtr predicate)
    : left_(std::move(left)),
      right_(std::move(right)),
      predicate_(std::move(predicate)) {}

Status NestedLoopJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ECODB_RETURN_IF_ERROR(left_->Open(ctx));
  ECODB_RETURN_IF_ERROR(right_->Open(ctx));
  schema_ = JoinedSchema(left_->output_schema(), right_->output_schema());
  ECODB_RETURN_IF_ERROR(Drain(right_.get(), ctx, &inner_));
  return predicate_->Bind(schema_);
}

Status NestedLoopJoinOp::Next(RecordBatch* out, bool* eos) {
  // ecodb-lint: coordinator-only
  ECODB_RETURN_IF_ERROR(ctx_->PollCancel());
  RecordBatch outer;
  ECODB_RETURN_IF_ERROR(left_->Next(&outer, eos));
  if (*eos) return Status::OK();

  // Cross product of this outer batch with the inner side, then filter.
  // The quadratic pair cost is the point: NLJ trades memory for cycles.
  ctx_->ChargeInstructions(ctx_->options().costs.nl_join_inner_per_pair *
                           static_cast<double>(outer.num_rows()) *
                           static_cast<double>(inner_.num_rows()));
  RecordBatch joined(schema_);
  for (size_t lr = 0; lr < outer.num_rows(); ++lr) {
    for (size_t rr = 0; rr < inner_.num_rows(); ++rr) {
      EmitJoined(outer, lr, inner_, rr, &joined);
    }
  }
  ECODB_RETURN_IF_ERROR(
      joined.SealRows(outer.num_rows() * inner_.num_rows()));
  ECODB_ASSIGN_OR_RETURN(std::vector<uint8_t> mask,
                         predicate_->EvaluateMask(joined));
  joined.FilterInPlace(mask);
  ctx_->ChargeInstructions(ctx_->options().costs.output_per_row *
                           static_cast<double>(joined.num_rows()));
  *out = std::move(joined);
  return Status::OK();
}

void NestedLoopJoinOp::Close() {
  left_->Close();
  right_->Close();
}

// --------------------------------------------------------------------------
// MergeJoinOp
// --------------------------------------------------------------------------

MergeJoinOp::MergeJoinOp(OperatorPtr left, OperatorPtr right,
                         std::string left_key, std::string right_key)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_key_name_(std::move(left_key)),
      right_key_name_(std::move(right_key)) {}

Status MergeJoinOp::Open(ExecContext* ctx) {
  // ecodb-lint: coordinator-only
  ctx_ = ctx;
  ECODB_RETURN_IF_ERROR(left_->Open(ctx));
  ECODB_RETURN_IF_ERROR(right_->Open(ctx));
  schema_ = JoinedSchema(left_->output_schema(), right_->output_schema());

  const int lk = left_->output_schema().FindColumn(left_key_name_);
  const int rk = right_->output_schema().FindColumn(right_key_name_);
  if (lk < 0 || rk < 0) return Status::NotFound("join key column not found");
  if (left_->output_schema().column(lk).type != DataType::kInt64 ||
      right_->output_schema().column(rk).type != DataType::kInt64) {
    return Status::InvalidArgument("merge join requires int64 keys");
  }

  RecordBatch lrows, rrows;
  ECODB_RETURN_IF_ERROR(Drain(left_.get(), ctx, &lrows));
  ECODB_RETURN_IF_ERROR(Drain(right_.get(), ctx, &rrows));

  auto sorted_order = [&](const RecordBatch& b, int key) {
    std::vector<size_t> order(b.num_rows());
    std::iota(order.begin(), order.end(), size_t{0});
    const ColumnData& lane = b.column(key);
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t c) {
      return lane.i64[a] < lane.i64[c];
    });
    return order;
  };
  const std::vector<size_t> lorder = sorted_order(lrows, lk);
  const std::vector<size_t> rorder = sorted_order(rrows, rk);
  const auto nlogn = [](size_t n) {
    return n > 1 ? static_cast<double>(n) *
                       std::log2(static_cast<double>(n))
                 : 0.0;
  };
  ctx->ChargeInstructions(ctx->options().costs.sort_per_row_log_row *
                          (nlogn(lrows.num_rows()) + nlogn(rrows.num_rows())));

  // Merge equal-key runs.
  output_ = RecordBatch(schema_);
  const ColumnData& lkeys = lrows.column(lk);
  const ColumnData& rkeys = rrows.column(rk);
  size_t i = 0, j = 0, emitted = 0;
  while (i < lorder.size() && j < rorder.size()) {
    const int64_t lv = lkeys.i64[lorder[i]];
    const int64_t rv = rkeys.i64[rorder[j]];
    if (lv < rv) {
      ++i;
    } else if (lv > rv) {
      ++j;
    } else {
      size_t jend = j;
      while (jend < rorder.size() && rkeys.i64[rorder[jend]] == lv) ++jend;
      size_t iend = i;
      while (iend < lorder.size() && lkeys.i64[lorder[iend]] == lv) ++iend;
      for (size_t a = i; a < iend; ++a) {
        for (size_t b = j; b < jend; ++b) {
          EmitJoined(lrows, lorder[a], rrows, rorder[b], &output_);
          ++emitted;
        }
      }
      i = iend;
      j = jend;
    }
  }
  ECODB_RETURN_IF_ERROR(output_.SealRows(emitted));
  ctx->ChargeInstructions(
      ctx->options().costs.output_per_row * static_cast<double>(emitted) +
      2.0 * static_cast<double>(lorder.size() + rorder.size()));
  cursor_ = 0;
  return Status::OK();
}

Status MergeJoinOp::Next(RecordBatch* out, bool* eos) {
  ECODB_RETURN_IF_ERROR(ctx_->PollCancel());
  const size_t batch_rows = ctx_->options().batch_rows;
  if (cursor_ >= output_.num_rows()) {
    *eos = true;
    return Status::OK();
  }
  *eos = false;
  const size_t take = std::min(batch_rows, output_.num_rows() - cursor_);
  RecordBatch batch(schema_);
  for (size_t r = cursor_; r < cursor_ + take; ++r) {
    batch.AppendRowFrom(output_, r);
  }
  cursor_ += take;
  *out = std::move(batch);
  return Status::OK();
}

void MergeJoinOp::Close() {
  left_->Close();
  right_->Close();
}

}  // namespace ecodb::exec

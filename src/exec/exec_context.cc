#include "exec/exec_context.h"

#include <algorithm>
#include <cassert>

// This file IS the accounting layer the EC1 lint rule protects: the Charge*
// entry points below are the only places allowed to talk to devices, the
// meter, the platform, and the simulated clock directly, so each such call
// carries a NOLINT-ECODB(EC1).

namespace ecodb::exec {

ExecContext::ExecContext(power::HardwarePlatform* platform,
                         ExecOptions options)
    : ExecContext(platform, options, SessionTag{},
                  platform->clock()->now()) {}

ExecContext::ExecContext(power::HardwarePlatform* platform,
                         ExecOptions options, SessionTag session,
                         double start_time)
    : platform_(platform), options_(options), session_(session) {
  assert(options_.dop >= 1);
  assert(options_.pstate >= 0 &&
         options_.pstate < platform_->cpu().num_pstates());
  // Admission pins the start: the serving core constructs the context at
  // the admit instant, which may lie ahead of the clock (the clock is the
  // accounting layer's to move — this constructor IS that layer).
  platform_->clock()->AdvanceTo(start_time);  // NOLINT-ECODB(EC1)
  start_time_ = platform_->clock()->now();
  io_completion_ = start_time_;
  start_snapshot_ = platform_->meter()->Snapshot();  // NOLINT-ECODB(EC1)
}

void ExecContext::ChargeInstructions(double instructions) {
  assert(instructions >= 0);
  cpu_instructions_ += instructions;
}

void ExecContext::ChargeSerialInstructions(double instructions) {
  assert(instructions >= 0);
  serial_cpu_instructions_ += instructions;
}

Status ExecContext::ChargeRead(storage::StorageDevice* device, uint64_t bytes,
                               bool sequential) {
  ECODB_ASSIGN_OR_RETURN(
      const storage::IoResult r,
      device->SubmitRead(start_time_, bytes, sequential));  // NOLINT-ECODB(EC1)
  io_completion_ = std::max(io_completion_, r.completion_time);
  io_service_seconds_ += r.service_seconds;
  io_bytes_ += bytes;
  io_active_joules_ += r.active_joules;
  faults_.Accumulate(r);
  return Status::OK();
}

Status ExecContext::ChargeWrite(storage::StorageDevice* device, uint64_t bytes,
                                bool sequential) {
  ECODB_ASSIGN_OR_RETURN(
      const storage::IoResult r,
      device->SubmitWrite(start_time_, bytes, sequential));  // NOLINT-ECODB(EC1)
  io_completion_ = std::max(io_completion_, r.completion_time);
  io_service_seconds_ += r.service_seconds;
  io_bytes_ += bytes;
  io_active_joules_ += r.active_joules;
  faults_.Accumulate(r);
  return Status::OK();
}

void ExecContext::ChargeDram(uint64_t bytes) {
  dram_joules_ += platform_->ChargeDramAccess(bytes);  // NOLINT-ECODB(EC1)
}

void ExecContext::StageSharedScan(const storage::TableStorage* table,
                                  double ready_time) {
  staged_scans_[table] = ready_time;
}

bool ExecContext::ConsumeSharedScan(const storage::TableStorage* table,
                                    double* ready_time) {
  auto it = staged_scans_.find(table);
  if (it == staged_scans_.end()) return false;
  *ready_time = it->second;
  staged_scans_.erase(it);
  return true;
}

void ExecContext::JoinIoCompletion(double completion_time) {
  io_completion_ = std::max(io_completion_, completion_time);
}

void ExecContext::MergeWork(const WorkAccumulator& acc) {
  if (acc.instructions > 0) ChargeInstructions(acc.instructions);
  if (acc.dram_bytes > 0) ChargeDram(acc.dram_bytes);
  io_bytes_ += acc.io_bytes;
}

WorkerPool* ExecContext::worker_pool() {
  if (shared_pool_ != nullptr) return shared_pool_;
  if (pool_ == nullptr) {
    pool_ = std::make_unique<WorkerPool>(
        std::min(options_.dop, platform_->cpu().total_cores()));
  }
  return pool_.get();
}

double ExecContext::CpuElapsedSeconds() const {
  // Serving-core sessions run on the serial-equivalent timeline: the dop
  // may shorten the real CPU leg, but the serving schedule (slot reuse,
  // queue projections, deadlines) must be a pure function of (seed, trace,
  // config) — so the scheduling clock ignores it (DESIGN §14).
  const int cores = session_.valid()
                        ? 1
                        : std::min(options_.dop, platform_->cpu().total_cores());
  const double parallel_seconds = platform_->cpu().SecondsForInstructions(
      cpu_instructions_, options_.pstate);
  const double serial_seconds = platform_->cpu().SecondsForInstructions(
      serial_cpu_instructions_, options_.pstate);
  return serial_seconds + parallel_seconds / static_cast<double>(cores);
}

double ExecContext::VirtualCpuSeconds() const {
  return platform_->cpu().SecondsForInstructions(
      cpu_instructions_ + serial_cpu_instructions_, options_.pstate);
}

Status ExecContext::PollCancel() {
  if (cancel_.cancelled()) {
    if (cancel_.reason == CancelReason::kDeadline) {
      return Status::DeadlineExceeded("session deadline exceeded");
    }
    return Status::Shed("session killed by the serving core");
  }
  if (cancel_.deadline_s ==
      std::numeric_limits<double>::infinity()) {
    return Status::OK();
  }
  // Projected completion if the query stopped charging now: the virtual
  // CPU leg (dop-invariant by construction) races the I/O horizon.
  const double projected =
      std::max(start_time_ + VirtualCpuSeconds(), io_completion_);
  if (projected >= cancel_.deadline_s) {
    cancel_.Cancel(CancelReason::kDeadline);
    return Status::DeadlineExceeded("session deadline exceeded");
  }
  return Status::OK();
}

QueryStats ExecContext::Complete() {
  assert(!finished_);
  finished_ = true;

  // Critical path: CPU work pipelines with I/O (vectorized pull loops keep
  // both sides busy), so the query ends when the slower side ends. The dop
  // shortens the CPU leg only; busy core-seconds — and therefore active CPU
  // energy — are the same at every dop.
  const double serial_seconds = platform_->cpu().SecondsForInstructions(
      serial_cpu_instructions_, options_.pstate);
  const double cpu_core_seconds =
      platform_->cpu().SecondsForInstructions(cpu_instructions_,
                                              options_.pstate) +
      serial_seconds;
  const double cpu_elapsed = CpuElapsedSeconds();
  const int active_cores =
      std::min(options_.dop, platform_->cpu().total_cores());
  const double end_time =
      std::max(start_time_ + cpu_elapsed, io_completion_);

  QueryStats stats;
  stats.start_time = start_time_;
  stats.end_time = end_time;
  stats.elapsed_seconds = end_time - start_time_;
  stats.cpu_seconds = cpu_core_seconds;
  stats.cpu_elapsed_seconds = cpu_elapsed;
  stats.cpu_instructions = cpu_instructions_ + serial_cpu_instructions_;
  stats.cpu_serial_seconds = serial_seconds;
  stats.active_cores = active_cores;
  stats.io_seconds = io_service_seconds_;
  stats.io_bytes = io_bytes_;
  stats.rows_emitted = rows_emitted_;
  stats.faults = faults_;
  stats.session = session_;
  stats.dram_joules = dram_joules_;
  stats.io_active_joules = io_active_joules_;
  return stats;
}

void ExecContext::SettleCpu(QueryStats* stats) {
  // CPU active energy settles at query end. The serving core settles its
  // sessions in end-time order so the CPU channel's pulses stay monotonic.
  stats->cpu_active_joules =
      platform_->ChargeCpuCoresAt(stats->end_time,  // NOLINT-ECODB(EC1)
                                  stats->cpu_seconds, stats->active_cores,
                                  options_.pstate);
}

QueryStats ExecContext::Finish() {
  QueryStats stats = Complete();
  SettleCpu(&stats);
  platform_->clock()->AdvanceTo(stats.end_time);  // NOLINT-ECODB(EC1)
  stats.energy = platform_->BreakdownBetween(
      start_snapshot_, platform_->meter()->Snapshot());  // NOLINT-ECODB(EC1)
  return stats;
}

}  // namespace ecodb::exec

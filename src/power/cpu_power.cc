#include "power/cpu_power.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ecodb::power {

CpuPowerModel::CpuPowerModel(CpuSpec spec) : spec_(std::move(spec)) {
  assert(Validate().ok());
}

Status CpuPowerModel::Validate() const {
  if (spec_.sockets <= 0 || spec_.cores_per_socket <= 0) {
    return Status::InvalidArgument("CPU must have >= 1 socket and core");
  }
  if (spec_.pstates.empty()) {
    return Status::InvalidArgument("CPU needs at least one P-state");
  }
  for (const PState& p : spec_.pstates) {
    if (p.frequency_ghz <= 0 || p.core_active_watts < 0) {
      return Status::InvalidArgument("P-state '" + p.name +
                                     "' has non-positive frequency or "
                                     "negative power");
    }
  }
  if (spec_.socket_idle_watts < 0 || spec_.socket_sleep_watts < 0) {
    return Status::InvalidArgument("negative idle/sleep watts");
  }
  if (spec_.utilization_exponent <= 0) {
    return Status::InvalidArgument("utilization exponent must be positive");
  }
  return Status::OK();
}

double CpuPowerModel::PeakWatts(int pstate) const {
  assert(pstate >= 0 && pstate < num_pstates());
  return IdleWatts() +
         spec_.pstates[pstate].core_active_watts * total_cores();
}

double CpuPowerModel::IdleWatts() const {
  return spec_.socket_idle_watts * spec_.sockets;
}

double CpuPowerModel::SleepWatts() const {
  return spec_.socket_sleep_watts * spec_.sockets;
}

double CpuPowerModel::WattsAtUtilization(double u, int pstate) const {
  u = std::clamp(u, 0.0, 1.0);
  const double idle = IdleWatts();
  const double peak = PeakWatts(pstate);
  return idle + (peak - idle) * std::pow(u, spec_.utilization_exponent);
}

double CpuPowerModel::SecondsForInstructions(double instructions,
                                             int pstate) const {
  assert(pstate >= 0 && pstate < num_pstates());
  assert(instructions >= 0);
  const double ips = spec_.pstates[pstate].frequency_ghz * 1e9 *
                     spec_.instructions_per_cycle;
  return instructions / ips;
}

double CpuPowerModel::ActiveJoulesForInstructions(double instructions,
                                                  int pstate) const {
  return spec_.pstates[pstate].core_active_watts *
         SecondsForInstructions(instructions, pstate);
}

int CpuPowerModel::MostEfficientPState() const {
  int best = 0;
  double best_joules_per_giga = -1.0;
  for (int p = 0; p < num_pstates(); ++p) {
    const double j = ActiveJoulesForInstructions(1e9, p);
    if (best_joules_per_giga < 0 || j < best_joules_per_giga) {
      best_joules_per_giga = j;
      best = p;
    }
  }
  return best;
}

}  // namespace ecodb::power

// Power models for storage-hierarchy devices: HDD, SSD, DRAM, NIC.
//
// These are pure parameter-plus-math models; the behavioural simulators in
// src/storage consume them to decide latencies and to charge the meter.
// Defaults are calibrated to the hardware classes the paper measures:
// 15K-RPM 73GB SCSI drives (Figure 1) and low-power flash SSDs (Figure 2,
// "an order of magnitude more energy efficient than regular hard drives").

#ifndef ECODB_POWER_DEVICE_POWER_H_
#define ECODB_POWER_DEVICE_POWER_H_

#include <cstdint>

#include "util/status.h"

namespace ecodb::power {

/// Spin states of a mechanical disk. Section 2.4: "Memory and disks ...
/// offer almost no power control except for sleep states. They are either on
/// (and at full performance and power) or off, and the transitions can be
/// expensive."
enum class DiskSpinState {
  kActive,   // servicing a request
  kIdle,     // spinning, no request
  kStandby,  // spun down
  kSpinningUp,
};

/// Parameters of one mechanical disk (defaults: 15K RPM SCSI, ~73 GB).
struct HddSpec {
  double capacity_bytes = 73.0 * 1e9;
  double sustained_bw_bytes_per_s = 80.0 * 1e6;  // sequential
  double avg_seek_s = 0.0035;
  double rotational_latency_s = 0.002;  // half revolution at 15K RPM

  double active_watts = 17.0;
  double idle_watts = 12.0;
  double standby_watts = 2.5;
  double spinup_watts = 24.0;
  double spinup_seconds = 6.0;

  /// Energy to go active->standby->active once, beyond staying idle for the
  /// same duration, is SpinCycleOverheadJoules(); the break-even idle time
  /// below makes spin-down worthwhile only past it.
  double SpinupJoules() const { return spinup_watts * spinup_seconds; }

  /// Minimum idle-period length (seconds) for which entering standby saves
  /// energy versus idling: solve idle*T = standby*(T - t_up) + spinup*t_up.
  double BreakEvenIdleSeconds() const;
};

/// Parameters of one flash SSD (defaults sized so three drives draw ~5 W
/// aggregate while streaming, matching the Figure 2 setup).
struct SsdSpec {
  double capacity_bytes = 64.0 * 1e9;
  double read_bw_bytes_per_s = 250.0 * 1e6;
  double write_bw_bytes_per_s = 180.0 * 1e6;
  double read_latency_s = 75e-6;
  double write_latency_s = 120e-6;

  double active_watts = 5.0 / 3.0;
  double idle_watts = 0.35;
};

/// Parameters of the DRAM subsystem.
struct DramSpec {
  double capacity_bytes = 64.0 * 1024 * 1024 * 1024.0;
  /// Background (refresh + standby) power per GiB — charged while powered.
  double background_watts_per_gib = 0.65;
  /// Incremental energy per byte actually read or written.
  double access_joules_per_byte = 20e-12 * 8;  // ~20 pJ/bit

  double BackgroundWatts() const {
    return background_watts_per_gib * capacity_bytes /
           (1024.0 * 1024 * 1024);
  }
};

/// Parameters of a network interface (used by remote-storage experiments).
struct NicSpec {
  double bw_bytes_per_s = 125.0 * 1e6;  // 1 GbE
  double active_watts = 4.0;
  double idle_watts = 1.0;
};

/// Validation helpers shared by the behavioural simulators.
Status ValidateHddSpec(const HddSpec& spec);
Status ValidateSsdSpec(const SsdSpec& spec);
Status ValidateDramSpec(const DramSpec& spec);

}  // namespace ecodb::power

#endif  // ECODB_POWER_DEVICE_POWER_H_

// CPU power model: sockets, cores, P-states (DVFS) and C-states.
//
// Models the knobs Section 2.3/2.4 of the paper discusses: dynamic voltage
// and frequency scaling (P-states), idle states (C-states), and per-core
// gating ("a software module will be able to control which CPU cores in a
// multicore chip are active at any time"). Power at partial utilization
// follows the classic linear idle/peak interpolation observed by Barroso &
// Hoelzle [BH07], with a configurable exponent for non-linear platforms.

#ifndef ECODB_POWER_CPU_POWER_H_
#define ECODB_POWER_CPU_POWER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace ecodb::power {

/// One DVFS operating point.
struct PState {
  std::string name;          // e.g. "P0"
  double frequency_ghz;      // core clock
  double core_active_watts;  // per-core power when 100% busy at this state
};

/// Static description of a CPU complex.
struct CpuSpec {
  int sockets = 1;
  int cores_per_socket = 4;
  /// Ordered fastest-first. Must be non-empty.
  std::vector<PState> pstates = {{"P0", 3.0, 22.5}};
  /// Per-socket power with all cores idle (C1-ish) — the "uncore" floor.
  double socket_idle_watts = 15.0;
  /// Per-socket power in the deepest C-state (package sleep).
  double socket_sleep_watts = 3.0;
  /// Nominal instructions retired per core-cycle for time estimation.
  double instructions_per_cycle = 1.0;
  /// Exponent of the utilization->power curve; 1.0 = linear (energy
  /// proportional between idle and peak).
  double utilization_exponent = 1.0;
  /// One-time Joules to bring an additional core out of its idle state for
  /// a parallel query (0 = waking cores is free, the classic assumption).
  double core_wake_joules = 0.0;
};

/// Pure-math power model over a CpuSpec; holds no meter state.
class CpuPowerModel {
 public:
  explicit CpuPowerModel(CpuSpec spec);

  const CpuSpec& spec() const { return spec_; }
  int total_cores() const { return spec_.sockets * spec_.cores_per_socket; }

  /// Number of configured P-states.
  int num_pstates() const { return static_cast<int>(spec_.pstates.size()); }

  /// Whole-complex power with all cores busy at P-state `p`.
  double PeakWatts(int pstate = 0) const;

  /// Whole-complex power with all cores idle (no package sleep).
  double IdleWatts() const;

  /// Whole-complex power with packages in deepest sleep.
  double SleepWatts() const;

  /// Power at fractional utilization u in [0,1] at P-state `p`:
  ///   idle + (peak - idle) * u^exponent.
  double WattsAtUtilization(double u, int pstate = 0) const;

  /// Seconds of one core executing `instructions` at P-state `p`.
  double SecondsForInstructions(double instructions, int pstate = 0) const;

  /// Active-energy (above idle floor) for one core running `instructions`
  /// to completion at P-state `p`.
  double ActiveJoulesForInstructions(double instructions, int pstate = 0) const;

  /// The P-state minimizing active energy for a fixed instruction count —
  /// the "race-to-idle vs crawl" decision. Returns the index.
  int MostEfficientPState() const;

  Status Validate() const;

 private:
  CpuSpec spec_;
};

}  // namespace ecodb::power

#endif  // ECODB_POWER_CPU_POWER_H_

// DVFS governor and database/hardware power-management coordination.
//
// Section 5.3 of the paper: "consider a hardware controller that changes
// the voltage and frequency in parallel with the query optimizer which is
// making decisions based on current runtime power states. If these two do
// not communicate and coordinate their choices, they may end up working
// cross purposes [RRT+08]."
//
// `DvfsGovernor` is an ondemand-style hardware controller: it watches CPU
// utilization over sampling intervals and walks the P-state up or down with
// hysteresis. The coordination hook is `Pin()` — the database pins the
// P-state its plan was costed for, for the duration of the query, instead
// of letting the governor chase utilization that the database itself is
// about to change. The cross-purposes effect is demonstrated by
// bench/ablate_coordination.

#ifndef ECODB_POWER_GOVERNOR_H_
#define ECODB_POWER_GOVERNOR_H_

#include "power/cpu_power.h"

namespace ecodb::power {

struct GovernorConfig {
  /// Upshift (toward P0) when utilization exceeds this.
  double up_threshold = 0.80;
  /// Downshift when utilization falls below this.
  double down_threshold = 0.30;
  /// Consecutive below-threshold samples required before downshifting
  /// (hysteresis; upshifts are immediate, as in ondemand).
  int down_hysteresis_samples = 2;
  /// Initial P-state index.
  int initial_pstate = 0;
};

/// Ondemand-style frequency governor over a CpuPowerModel's P-states.
/// P-state 0 is fastest; higher indexes are slower/lower-power.
class DvfsGovernor {
 public:
  /// `cpu` must outlive the governor.
  DvfsGovernor(const CpuPowerModel* cpu, GovernorConfig config = {});

  /// Feeds one sampling interval's utilization in [0,1]; returns the
  /// P-state for the next interval. While pinned, always returns the pin.
  int Observe(double utilization);

  int pstate() const { return pinned_ ? pinned_pstate_ : pstate_; }
  bool pinned() const { return pinned_; }

  /// Database-directed coordination: hold `pstate` until Unpin().
  void Pin(int pstate);
  void Unpin();

  int transitions() const { return transitions_; }

 private:
  const CpuPowerModel* cpu_;
  GovernorConfig config_;
  int pstate_;
  int low_streak_ = 0;
  bool pinned_ = false;
  int pinned_pstate_ = 0;
  int transitions_ = 0;
};

}  // namespace ecodb::power

#endif  // ECODB_POWER_GOVERNOR_H_

#include "power/power_cap.h"

#include <algorithm>
#include <cmath>

namespace ecodb::power {

PowerCapGovernor::PowerCapGovernor(const PowerCapConfig& config,
                                   int base_fleet)
    : config_(config), base_fleet_(base_fleet) {
  const int narrow_steps = std::max(0, base_fleet_ - config_.min_fleet);
  // One extra notch past the last fleet step: the shed regime.
  max_level_ = config_.max_pstate_steps + narrow_steps + 1;
}

Status PowerCapGovernor::Validate(const PowerCapConfig& config,
                                  int base_fleet) {
  if (!config.enabled) return Status::OK();
  if (!std::isfinite(config.cap_watts) || config.cap_watts < 0.0) {
    return Status::InvalidArgument("power cap must be finite and >= 0 W");
  }
  if (!(config.window_s > 0.0) || !std::isfinite(config.window_s)) {
    return Status::InvalidArgument("power-cap window must be > 0 s");
  }
  if (config.max_pstate_steps < 0) {
    return Status::InvalidArgument("max_pstate_steps must be >= 0");
  }
  if (config.min_fleet < 1 || config.min_fleet > base_fleet) {
    return Status::InvalidArgument(
        "min_fleet must be in [1, worker_fleet]");
  }
  if (!(config.resume_fraction > 0.0) || config.resume_fraction > 1.0) {
    return Status::InvalidArgument("resume_fraction must be in (0, 1]");
  }
  return Status::OK();
}

void PowerCapGovernor::RecordEnergy(double end_s, double joules) {
  if (joules <= 0.0) return;
  pulses_.emplace_back(end_s, joules);
}

double PowerCapGovernor::WindowedDrawWatts(double now_s) const {
  double joules = 0.0;
  for (const auto& [end_s, j] : pulses_) {
    if (end_s > now_s - config_.window_s && end_s <= now_s) joules += j;
  }
  return joules / config_.window_s;
}

GovernorRegime PowerCapGovernor::RegimeAt(int level) const {
  GovernorRegime regime;
  regime.pstate_delta = std::min(level, config_.max_pstate_steps);
  const int narrow = std::clamp(level - config_.max_pstate_steps, 0,
                                base_fleet_ - config_.min_fleet);
  regime.fleet = base_fleet_ - narrow;
  regime.shed_new = level >= max_level_;
  return regime;
}

GovernorRegime PowerCapGovernor::Observe(double now_s) {
  const double draw = WindowedDrawWatts(now_s);
  int next = level_;
  if (draw > config_.cap_watts) {
    next = std::min(level_ + 1, max_level_);
  } else if (draw < config_.cap_watts * config_.resume_fraction) {
    next = std::max(level_ - 1, 0);
  }
  if (next != level_) {
    level_ = next;
    const GovernorRegime regime = RegimeAt(level_);
    events_.push_back({now_s, draw, level_, regime.pstate_delta, regime.fleet,
                       regime.shed_new});
  }
  return RegimeAt(level_);
}

}  // namespace ecodb::power

// Energy-proportionality metrics.
//
// Section 2.4 of the paper builds on Barroso & Hoelzle's observation [BH07]
// that servers are busiest at 10-50% utilization yet draw near-peak power
// there, and argues for energy-proportional systems whose power tracks
// utilization. These metrics quantify how close a power curve comes to that
// ideal, and produce the EE-vs-utilization profile the ablation bench plots.

#ifndef ECODB_POWER_PROPORTIONALITY_H_
#define ECODB_POWER_PROPORTIONALITY_H_

#include <functional>
#include <vector>

namespace ecodb::power {

/// A sampled power curve: power_watts[i] is the draw at utilization u[i].
struct PowerCurve {
  std::vector<double> utilization;  // ascending, in [0, 1]
  std::vector<double> watts;        // same length

  /// Samples `fn` at n+1 evenly spaced utilizations in [0, 1].
  static PowerCurve Sample(const std::function<double(double)>& fn, int n);
};

/// Summary metrics for one curve.
struct ProportionalityReport {
  double idle_watts = 0.0;
  double peak_watts = 0.0;
  /// (peak - idle) / peak: 1.0 for an ideally proportional machine, ~0 for
  /// the inelastic servers the paper describes ("little power variance from
  /// no load to peak use").
  double dynamic_range = 0.0;
  /// 1 - (area between normalized curve and the ideal y=u line) / (1/2).
  /// 1.0 = ideal proportionality; 0.0 = flat power at peak level.
  double proportionality_index = 0.0;
  /// EE at utilization u relative to EE at peak: EE(u)/EE(1) where
  /// EE(u) = u * peak_perf / P(u). Sampled at the curve's utilizations.
  std::vector<double> relative_ee;
};

/// Computes the report via trapezoidal integration of the curve.
ProportionalityReport AnalyzeCurve(const PowerCurve& curve);

}  // namespace ecodb::power

#endif  // ECODB_POWER_PROPORTIONALITY_H_

// Energy metering: integrates per-device power over simulated time.
//
// The paper (Section 2.1) defines Energy = AvgPower x Time and energy
// efficiency EE = WorkDone / Energy. EcoDB attributes energy per *channel*
// (one channel per metered device or device group). Each channel carries a
// piecewise-constant power level; transitions are timestamped with simulated
// time, and the meter integrates W x dt into Joules. Discrete energy pulses
// (e.g. a disk spin-up, a burst of CPU work) can be added on top.
//
// This is the software equivalent of the wall-power meter the authors used,
// with per-component attribution that a wall meter cannot provide.

#ifndef ECODB_POWER_ENERGY_METER_H_
#define ECODB_POWER_ENERGY_METER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/clock.h"

namespace ecodb::power {

/// Opaque handle to a meter channel.
struct ChannelId {
  uint32_t index = UINT32_MAX;
  bool valid() const { return index != UINT32_MAX; }
};

/// Point-in-time reading of every channel, used to compute per-query deltas.
struct MeterSnapshot {
  double time = 0.0;
  std::vector<double> joules;       // indexed by ChannelId::index
  std::vector<double> busy_seconds; // ditto

  /// Total Joules across all channels.
  double TotalJoules() const;
};

/// Per-channel energy accounting with piecewise-constant power.
class EnergyMeter {
 public:
  /// `clock` must outlive the meter; it provides default timestamps.
  explicit EnergyMeter(sim::SimClock* clock) : clock_(clock) {}

  EnergyMeter(const EnergyMeter&) = delete;
  EnergyMeter& operator=(const EnergyMeter&) = delete;

  /// Creates a channel with an initial power level (defaults to 0 W).
  ChannelId RegisterChannel(std::string name, double initial_watts = 0.0);

  size_t channel_count() const { return channels_.size(); }
  const std::string& channel_name(ChannelId id) const {
    return channels_[id.index].name;
  }

  /// Sets the channel's power level from simulated time `t` onward.
  /// `t` must be >= the channel's last event time (device timelines are
  /// monotonic). Energy for [last_t, t) accrues at the previous level.
  void SetPowerAt(ChannelId id, double t, double watts);

  /// Convenience: SetPowerAt(id, clock->now(), watts).
  void SetPower(ChannelId id, double watts) {
    SetPowerAt(id, clock_->now(), watts);
  }

  /// Adds a discrete energy pulse of `joules` attributed at time `t`, with
  /// `busy_seconds` of device occupancy. Used for per-operation charging
  /// (CPU work, disk transfers, spin-ups) on top of the background level.
  void AddEnergyAt(ChannelId id, double t, double joules,
                   double busy_seconds = 0.0);

  void AddEnergy(ChannelId id, double joules, double busy_seconds = 0.0) {
    AddEnergyAt(id, clock_->now(), joules, busy_seconds);
  }

  /// Cumulative Joules on `id` up to simulated time `t` (>= last event).
  double ChannelJoulesAt(ChannelId id, double t) const;

  /// Cumulative Joules up to the clock's current time.
  double ChannelJoules(ChannelId id) const {
    return ChannelJoulesAt(id, EffectiveTime(id));
  }

  /// Current power level of the channel in Watts.
  double ChannelWatts(ChannelId id) const {
    return channels_[id.index].watts;
  }

  /// Cumulative busy (actively occupied) seconds recorded via AddEnergy*.
  double ChannelBusySeconds(ChannelId id) const {
    return channels_[id.index].busy_seconds;
  }

  /// Total Joules across all channels up to the clock's current time.
  double TotalJoules() const;

  /// Sum of the current piecewise-constant power levels (the platform's
  /// standing draw, excluding future activity pulses).
  double TotalWatts() const;

  /// Reads every channel at the clock's current time.
  MeterSnapshot Snapshot() const;

  /// Per-channel Joules consumed between two snapshots (b - a).
  static MeterSnapshot Delta(const MeterSnapshot& a, const MeterSnapshot& b);

  sim::SimClock* clock() const { return clock_; }

 private:
  struct Channel {
    std::string name;
    double watts = 0.0;
    double last_t = 0.0;
    double joules = 0.0;
    double busy_seconds = 0.0;
  };

  // A channel whose last event is in the past still accrues energy up to
  // "now"; reads use max(last_t, clock now).
  double EffectiveTime(ChannelId id) const;

  sim::SimClock* clock_;
  std::vector<Channel> channels_;
};

}  // namespace ecodb::power

#endif  // ECODB_POWER_ENERGY_METER_H_

// PowerCapGovernor: graceful degradation under a facility power cap.
//
// Section 3 of the paper observes that data centers are provisioned for a
// power envelope, not a throughput target: when the box approaches its cap
// the right move is to degrade service quality, not to brown out. The
// governor watches the windowed rate of billed Joules — the same quantity
// the session bills settle, so the control signal is deterministic and
// dop-invariant — and climbs a fixed degradation ladder one notch per
// observation:
//
//   1. P-state downshift: admitted sessions run at slower, more efficient
//      operating points (pstate_delta notches past the configured one).
//   2. Fleet narrowing: admission slots are withdrawn down to `min_fleet`,
//      trading queue time for draw.
//   3. Shed: at the top of the ladder, newly released requests are refused
//      outright (terminal state kShed, cause kPowerCap). Refusal never
//      un-bills metered work: sessions killed mid-run keep every Joule they
//      consumed, and a refused session simply bills nothing.
//
// The ladder steps down with hysteresis (draw must fall below
// cap_watts * resume_fraction) so the regime does not flap at the cap.
// Every transition is recorded as a GovernorEvent; replaying the same trace
// reproduces the same event list bit-identically (DESIGN.md §14).

#ifndef ECODB_POWER_POWER_CAP_H_
#define ECODB_POWER_POWER_CAP_H_

#include <vector>

#include "util/status.h"

namespace ecodb::power {

/// Knobs of the power-cap governor. Disabled by default: with
/// `enabled == false` the serving core never constructs a governor and the
/// admission path is byte-identical to the uncapped one.
struct PowerCapConfig {
  bool enabled = false;
  /// Windowed draw above this steps the ladder up. A zero cap is legal and
  /// means "shed everything once any work has completed in the window" —
  /// the degenerate zero-capacity box.
  double cap_watts = 0.0;
  /// Observation window for the draw estimate (seconds, simulated).
  double window_s = 1.0;
  /// How many P-state downshift notches the ladder may take before it
  /// starts narrowing the fleet.
  int max_pstate_steps = 0;
  /// Fleet narrowing floor: the governor never withdraws slots below this.
  int min_fleet = 1;
  /// Hysteresis: the ladder steps down only when draw falls below
  /// cap_watts * resume_fraction.
  double resume_fraction = 0.8;
};

/// One ladder transition, recorded at the observation that caused it.
struct GovernorEvent {
  double time_s = 0.0;      // simulated time of the observation
  double draw_watts = 0.0;  // windowed draw that triggered the step
  int level = 0;            // ladder level after the step
  int pstate_delta = 0;     // regime after the step
  int fleet = 0;
  bool shed_new = false;
};

/// The admission regime the ladder currently prescribes.
struct GovernorRegime {
  int pstate_delta = 0;   // extra P-state notches for admitted sessions
  int fleet = 0;          // admission slots currently open
  bool shed_new = false;  // refuse newly released requests
};

class PowerCapGovernor {
 public:
  /// `base_fleet` is the configured worker fleet the ladder narrows from.
  PowerCapGovernor(const PowerCapConfig& config, int base_fleet);

  /// Records a completed session's billed direct Joules at its end time.
  /// Pulses may arrive out of time order (sessions overlap); the windowed
  /// draw only ever sums pulses with end_s <= now, so insertion order
  /// cannot perturb any decision.
  void RecordEnergy(double end_s, double joules);

  /// Billed direct Joules with end time in (now_s - window_s, now_s],
  /// divided by the window.
  double WindowedDrawWatts(double now_s) const;

  /// Observes the draw at `now_s` and moves the ladder at most one notch
  /// (up past the cap, down under the resume threshold). Returns the
  /// regime in force after the observation.
  GovernorRegime Observe(double now_s);

  /// The regime currently in force (no observation).
  GovernorRegime regime() const { return RegimeAt(level_); }

  int level() const { return level_; }
  int max_level() const { return max_level_; }
  const std::vector<GovernorEvent>& events() const { return events_; }

  /// InvalidArgument for non-finite caps, non-positive windows, a
  /// narrowing floor above the fleet, or a resume fraction outside (0, 1].
  static Status Validate(const PowerCapConfig& config, int base_fleet);

 private:
  GovernorRegime RegimeAt(int level) const;

  PowerCapConfig config_;
  int base_fleet_;
  int max_level_;
  int level_ = 0;
  std::vector<std::pair<double, double>> pulses_;  // (end_s, joules)
  std::vector<GovernorEvent> events_;
};

}  // namespace ecodb::power

#endif  // ECODB_POWER_POWER_CAP_H_

// HardwarePlatform: composition of metered devices behind a PSU and cooling.
//
// A platform owns the simulated clock and the energy meter, registers one
// meter channel per device group (CPU, DRAM, disk trays, SSDs, chassis), and
// converts metered "IT" energy into wall energy using PSU efficiency and the
// cooling overhead the paper cites ("every 1W used to power servers requires
// an additional 0.5W to 1W of power for cooling equipment" [PBS+03]).

#ifndef ECODB_POWER_PLATFORM_H_
#define ECODB_POWER_PLATFORM_H_

#include <memory>
#include <string>
#include <vector>

#include "power/cpu_power.h"
#include "power/device_power.h"
#include "power/energy_meter.h"
#include "sim/clock.h"
#include "util/status.h"

namespace ecodb::power {

/// Facility-level overheads applied to metered IT energy.
struct FacilitySpec {
  /// Fraction of wall power delivered to components (0 < eff <= 1).
  double psu_efficiency = 0.85;
  /// Additional cooling Watts per IT Watt (0.5–1.0 per [PBS+03]).
  double cooling_watts_per_watt = 0.5;
};

/// Fixed draw of fans, mainboard, controllers.
struct ChassisSpec {
  double base_watts = 60.0;
  /// Per disk-enclosure (tray) overhead, e.g. HP MSA70 shelf electronics.
  double tray_watts = 45.0;
  int disks_per_tray = 16;
};

/// Per-device-group energy attribution for one measurement window.
struct EnergyBreakdown {
  struct Entry {
    std::string channel;
    double joules = 0.0;
    double busy_seconds = 0.0;
  };
  std::vector<Entry> entries;
  double elapsed_seconds = 0.0;
  double it_joules = 0.0;    // sum over entries
  double wall_joules = 0.0;  // IT energy grossed up by PSU + cooling
  double AvgItWatts() const {
    return elapsed_seconds > 0 ? it_joules / elapsed_seconds : 0.0;
  }
};

/// A complete metered machine. Construct via PlatformBuilder or a preset.
class HardwarePlatform {
 public:
  HardwarePlatform(CpuSpec cpu, DramSpec dram, ChassisSpec chassis,
                   FacilitySpec facility);

  HardwarePlatform(const HardwarePlatform&) = delete;
  HardwarePlatform& operator=(const HardwarePlatform&) = delete;

  sim::SimClock* clock() { return &clock_; }
  EnergyMeter* meter() { return &meter_; }
  const CpuPowerModel& cpu() const { return cpu_; }
  const DramSpec& dram() const { return dram_; }
  const ChassisSpec& chassis() const { return chassis_; }
  const FacilitySpec& facility() const { return facility_; }

  ChannelId cpu_channel() const { return cpu_channel_; }
  ChannelId dram_channel() const { return dram_channel_; }
  ChannelId chassis_channel() const { return chassis_channel_; }

  /// Registers an extra channel (used by storage devices and trays).
  ChannelId AddChannel(std::string name, double initial_watts = 0.0) {
    return meter_.RegisterChannel(std::move(name), initial_watts);
  }

  /// Charges `core_seconds` of fully-busy core time ending at time `t_end`
  /// at P-state `pstate`; energy above the idle floor is attributed as a
  /// pulse (the floor runs continuously on the channel). Equivalent to
  /// ChargeCpuCoresAt with one active core. Returns the Joules booked so
  /// callers (the serving core's tenant bills) can attribute the charge.
  double ChargeCpuAt(double t_end, double core_seconds, int pstate = 0);

  /// Multi-core settlement: the same `core_seconds` of busy core time split
  /// across `active_cores` concurrently-running cores (clamped to the
  /// complex's total). Active Joules and busy core-seconds are identical to
  /// the single-core charge — parallelism shortens the wall-clock window,
  /// it does not discount work — plus a per-extra-core wake pulse when the
  /// spec prices one. Race-to-idle stays observable because the shorter
  /// window accrues less background/idle energy. Returns the Joules booked.
  double ChargeCpuCoresAt(double t_end, double core_seconds, int active_cores,
                          int pstate = 0);

  /// Charges a DRAM traffic pulse of `bytes` at the current time. Returns
  /// the Joules booked.
  double ChargeDramAccess(uint64_t bytes);

  /// Declares the number of populated disk trays; tray electronics draw
  /// continuous power on the chassis channel from time `t` onward.
  void SetActiveTraysAt(double t, int trays);

  /// Reading between two snapshots -> per-channel breakdown + wall energy.
  EnergyBreakdown BreakdownBetween(const MeterSnapshot& a,
                                   const MeterSnapshot& b) const;

  /// Breakdown from time zero to now.
  EnergyBreakdown BreakdownSinceStart() const;

  /// Instantaneous wall Watts implied by IT Watts `it_watts`.
  double WallWatts(double it_watts) const {
    return it_watts / facility_.psu_efficiency *
           (1.0 + facility_.cooling_watts_per_watt);
  }

 private:
  sim::SimClock clock_;
  EnergyMeter meter_;
  CpuPowerModel cpu_;
  DramSpec dram_;
  ChassisSpec chassis_;
  FacilitySpec facility_;
  ChannelId cpu_channel_;
  ChannelId dram_channel_;
  ChannelId chassis_channel_;
  int active_trays_ = 0;
};

/// Preset: HP ProLiant DL785-class host of the paper's Figure 1 experiment —
/// 8 sockets x 4 cores, 64 GB DRAM, SCSI disk trays (16 disks/tray).
/// Storage devices are added separately per experiment.
std::unique_ptr<HardwarePlatform> MakeDl785Platform();

/// Preset: the Figure 2 scan host — one 90 W CPU (idle treated as 0 W, per
/// the paper's accounting) and an SSD budget of 5 W for three flash drives.
std::unique_ptr<HardwarePlatform> MakeFlashScanPlatform();

/// Preset: a small energy-proportional server (linear power curve, deep
/// sleep states) used by the proportionality and consolidation ablations.
std::unique_ptr<HardwarePlatform> MakeProportionalPlatform();

}  // namespace ecodb::power

#endif  // ECODB_POWER_PLATFORM_H_

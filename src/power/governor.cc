#include "power/governor.h"

#include <algorithm>
#include <cassert>

namespace ecodb::power {

DvfsGovernor::DvfsGovernor(const CpuPowerModel* cpu, GovernorConfig config)
    : cpu_(cpu), config_(config), pstate_(config.initial_pstate) {
  assert(pstate_ >= 0 && pstate_ < cpu_->num_pstates());
}

int DvfsGovernor::Observe(double utilization) {
  utilization = std::clamp(utilization, 0.0, 1.0);
  if (pinned_) return pinned_pstate_;

  if (utilization > config_.up_threshold) {
    // Ondemand jumps straight to the fastest state under pressure.
    low_streak_ = 0;
    if (pstate_ != 0) {
      pstate_ = 0;
      ++transitions_;
    }
  } else if (utilization < config_.down_threshold) {
    ++low_streak_;
    if (low_streak_ >= config_.down_hysteresis_samples &&
        pstate_ + 1 < cpu_->num_pstates()) {
      ++pstate_;
      ++transitions_;
      low_streak_ = 0;
    }
  } else {
    low_streak_ = 0;
  }
  return pstate_;
}

void DvfsGovernor::Pin(int pstate) {
  assert(pstate >= 0 && pstate < cpu_->num_pstates());
  if (!pinned_ || pinned_pstate_ != pstate) ++transitions_;
  pinned_ = true;
  pinned_pstate_ = pstate;
}

void DvfsGovernor::Unpin() {
  if (pinned_) {
    pinned_ = false;
    pstate_ = pinned_pstate_;
    low_streak_ = 0;
  }
}

}  // namespace ecodb::power

#include "power/energy_meter.h"

#include <algorithm>
#include <cassert>

namespace ecodb::power {

double MeterSnapshot::TotalJoules() const {
  double total = 0.0;
  for (double j : joules) total += j;
  return total;
}

ChannelId EnergyMeter::RegisterChannel(std::string name,
                                       double initial_watts) {
  Channel ch;
  ch.name = std::move(name);
  ch.watts = initial_watts;
  ch.last_t = clock_->now();
  channels_.push_back(std::move(ch));
  return ChannelId{static_cast<uint32_t>(channels_.size() - 1)};
}

void EnergyMeter::SetPowerAt(ChannelId id, double t, double watts) {
  assert(id.valid() && id.index < channels_.size());
  assert(watts >= 0.0);
  Channel& ch = channels_[id.index];
  assert(t >= ch.last_t && "channel timelines must be monotonic");
  ch.joules += ch.watts * (t - ch.last_t);
  ch.last_t = t;
  ch.watts = watts;
}

void EnergyMeter::AddEnergyAt(ChannelId id, double t, double joules,
                              double busy_seconds) {
  assert(id.valid() && id.index < channels_.size());
  assert(joules >= 0.0 && busy_seconds >= 0.0);
  Channel& ch = channels_[id.index];
  assert(t >= ch.last_t && "channel timelines must be monotonic");
  // Bring the background integral forward, then add the pulse.
  ch.joules += ch.watts * (t - ch.last_t);
  ch.last_t = t;
  ch.joules += joules;
  ch.busy_seconds += busy_seconds;
}

double EnergyMeter::EffectiveTime(ChannelId id) const {
  return std::max(channels_[id.index].last_t, clock_->now());
}

double EnergyMeter::ChannelJoulesAt(ChannelId id, double t) const {
  assert(id.valid() && id.index < channels_.size());
  const Channel& ch = channels_[id.index];
  assert(t >= ch.last_t);
  return ch.joules + ch.watts * (t - ch.last_t);
}

double EnergyMeter::TotalJoules() const {
  double total = 0.0;
  for (uint32_t i = 0; i < channels_.size(); ++i) {
    total += ChannelJoulesAt(ChannelId{i}, EffectiveTime(ChannelId{i}));
  }
  return total;
}

double EnergyMeter::TotalWatts() const {
  double watts = 0.0;
  for (const Channel& ch : channels_) watts += ch.watts;
  return watts;
}

MeterSnapshot EnergyMeter::Snapshot() const {
  MeterSnapshot snap;
  snap.time = clock_->now();
  snap.joules.reserve(channels_.size());
  snap.busy_seconds.reserve(channels_.size());
  for (uint32_t i = 0; i < channels_.size(); ++i) {
    ChannelId id{i};
    snap.joules.push_back(ChannelJoulesAt(id, EffectiveTime(id)));
    snap.busy_seconds.push_back(channels_[i].busy_seconds);
  }
  return snap;
}

MeterSnapshot EnergyMeter::Delta(const MeterSnapshot& a,
                                 const MeterSnapshot& b) {
  MeterSnapshot d;
  d.time = b.time - a.time;
  const size_t n = std::max(a.joules.size(), b.joules.size());
  d.joules.resize(n, 0.0);
  d.busy_seconds.resize(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double ja = i < a.joules.size() ? a.joules[i] : 0.0;
    const double jb = i < b.joules.size() ? b.joules[i] : 0.0;
    d.joules[i] = jb - ja;
    const double ba = i < a.busy_seconds.size() ? a.busy_seconds[i] : 0.0;
    const double bb = i < b.busy_seconds.size() ? b.busy_seconds[i] : 0.0;
    d.busy_seconds[i] = bb - ba;
  }
  return d;
}

}  // namespace ecodb::power

#include "power/proportionality.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ecodb::power {

PowerCurve PowerCurve::Sample(const std::function<double(double)>& fn,
                              int n) {
  assert(n >= 1);
  PowerCurve curve;
  curve.utilization.reserve(n + 1);
  curve.watts.reserve(n + 1);
  for (int i = 0; i <= n; ++i) {
    const double u = static_cast<double>(i) / n;
    curve.utilization.push_back(u);
    curve.watts.push_back(fn(u));
  }
  return curve;
}

ProportionalityReport AnalyzeCurve(const PowerCurve& curve) {
  assert(curve.utilization.size() == curve.watts.size());
  assert(curve.utilization.size() >= 2);
  ProportionalityReport report;
  report.idle_watts = curve.watts.front();
  report.peak_watts = curve.watts.back();
  const double peak = report.peak_watts;
  assert(peak > 0);
  report.dynamic_range = (peak - report.idle_watts) / peak;

  // Area between P(u)/peak and the ideal line y = u, trapezoidal.
  double deviation_area = 0.0;
  for (size_t i = 1; i < curve.utilization.size(); ++i) {
    const double u0 = curve.utilization[i - 1];
    const double u1 = curve.utilization[i];
    const double d0 = curve.watts[i - 1] / peak - u0;
    const double d1 = curve.watts[i] / peak - u1;
    deviation_area += 0.5 * (std::abs(d0) + std::abs(d1)) * (u1 - u0);
  }
  // Flat-at-peak power has deviation area 1/2; normalize against it.
  report.proportionality_index =
      std::clamp(1.0 - deviation_area / 0.5, 0.0, 1.0);

  // Relative EE: EE(u)/EE(1) = (u * peak_perf / P(u)) / (peak_perf / peak)
  //            = u * peak / P(u).
  report.relative_ee.reserve(curve.utilization.size());
  for (size_t i = 0; i < curve.utilization.size(); ++i) {
    const double u = curve.utilization[i];
    const double p = curve.watts[i];
    report.relative_ee.push_back(p > 0 ? u * peak / p : 0.0);
  }
  return report;
}

}  // namespace ecodb::power

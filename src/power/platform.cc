#include "power/platform.h"

#include <algorithm>
#include <cassert>

namespace ecodb::power {

HardwarePlatform::HardwarePlatform(CpuSpec cpu, DramSpec dram,
                                   ChassisSpec chassis, FacilitySpec facility)
    : clock_(),
      meter_(&clock_),
      cpu_(std::move(cpu)),
      dram_(dram),
      chassis_(chassis),
      facility_(facility) {
  cpu_channel_ = meter_.RegisterChannel("cpu", cpu_.IdleWatts());
  dram_channel_ = meter_.RegisterChannel("dram", dram_.BackgroundWatts());
  chassis_channel_ = meter_.RegisterChannel("chassis", chassis_.base_watts);
}

double HardwarePlatform::ChargeCpuAt(double t_end, double core_seconds,
                                     int pstate) {
  return ChargeCpuCoresAt(t_end, core_seconds, /*active_cores=*/1, pstate);
}

double HardwarePlatform::ChargeCpuCoresAt(double t_end, double core_seconds,
                                          int active_cores, int pstate) {
  assert(core_seconds >= 0);
  assert(active_cores >= 1);
  const int cores = std::min(active_cores, cpu_.total_cores());
  const double joules =
      cpu_.spec().pstates[pstate].core_active_watts * core_seconds +
      cpu_.spec().core_wake_joules * static_cast<double>(cores - 1);
  meter_.AddEnergyAt(cpu_channel_, t_end, joules, core_seconds);
  return joules;
}

double HardwarePlatform::ChargeDramAccess(uint64_t bytes) {
  const double joules =
      dram_.access_joules_per_byte * static_cast<double>(bytes);
  meter_.AddEnergy(dram_channel_, joules);
  return joules;
}

void HardwarePlatform::SetActiveTraysAt(double t, int trays) {
  assert(trays >= 0);
  active_trays_ = trays;
  meter_.SetPowerAt(chassis_channel_, t,
                    chassis_.base_watts + chassis_.tray_watts * trays);
}

EnergyBreakdown HardwarePlatform::BreakdownBetween(
    const MeterSnapshot& a, const MeterSnapshot& b) const {
  EnergyBreakdown out;
  const MeterSnapshot d = EnergyMeter::Delta(a, b);
  out.elapsed_seconds = d.time;
  for (uint32_t i = 0; i < d.joules.size(); ++i) {
    EnergyBreakdown::Entry e;
    e.channel = meter_.channel_name(ChannelId{i});
    e.joules = d.joules[i];
    e.busy_seconds = d.busy_seconds[i];
    out.it_joules += e.joules;
    out.entries.push_back(std::move(e));
  }
  out.wall_joules = out.it_joules / facility_.psu_efficiency *
                    (1.0 + facility_.cooling_watts_per_watt);
  return out;
}

EnergyBreakdown HardwarePlatform::BreakdownSinceStart() const {
  MeterSnapshot zero;
  zero.time = 0.0;
  zero.joules.assign(meter_.channel_count(), 0.0);
  zero.busy_seconds.assign(meter_.channel_count(), 0.0);
  return BreakdownBetween(zero, meter_.Snapshot());
}

std::unique_ptr<HardwarePlatform> MakeDl785Platform() {
  CpuSpec cpu;
  cpu.sockets = 8;
  cpu.cores_per_socket = 4;
  // Quad-core Opteron class: ~75 W socket at full tilt, ~10 W idle floor.
  cpu.pstates = {{"P0", 2.3, 16.0}, {"P1", 1.9, 11.0}, {"P2", 1.4, 7.5}};
  cpu.socket_idle_watts = 10.0;
  cpu.socket_sleep_watts = 2.0;
  cpu.instructions_per_cycle = 1.2;

  DramSpec dram;
  dram.capacity_bytes = 64.0 * 1024 * 1024 * 1024;
  dram.background_watts_per_gib = 0.65;

  ChassisSpec chassis;
  chassis.base_watts = 80.0;
  chassis.tray_watts = 45.0;   // MSA70-class shelf
  chassis.disks_per_tray = 16;

  FacilitySpec fac;
  fac.psu_efficiency = 0.85;
  fac.cooling_watts_per_watt = 0.5;

  return std::make_unique<HardwarePlatform>(cpu, dram, chassis, fac);
}

std::unique_ptr<HardwarePlatform> MakeFlashScanPlatform() {
  // Figure 2 accounting: "The CPU has a power consumption of 90 Watts, while
  // the flash disks together consume only 5 Watts ... assuming that an idle
  // CPU does not consume any power". One core at 90 W active, 0 W idle.
  CpuSpec cpu;
  cpu.sockets = 1;
  cpu.cores_per_socket = 1;
  cpu.pstates = {{"P0", 3.0, 90.0}};
  cpu.socket_idle_watts = 0.0;
  cpu.socket_sleep_watts = 0.0;

  DramSpec dram;
  dram.capacity_bytes = 4.0 * 1024 * 1024 * 1024;
  dram.background_watts_per_gib = 0.0;  // excluded from the paper's math
  dram.access_joules_per_byte = 0.0;

  ChassisSpec chassis;
  chassis.base_watts = 0.0;
  chassis.tray_watts = 0.0;

  FacilitySpec fac;
  fac.psu_efficiency = 1.0;
  fac.cooling_watts_per_watt = 0.0;

  return std::make_unique<HardwarePlatform>(cpu, dram, chassis, fac);
}

std::unique_ptr<HardwarePlatform> MakeProportionalPlatform() {
  CpuSpec cpu;
  cpu.sockets = 2;
  cpu.cores_per_socket = 8;
  cpu.pstates = {{"P0", 2.6, 8.0}, {"P1", 2.0, 5.0}, {"P2", 1.2, 2.5}};
  cpu.socket_idle_watts = 4.0;
  cpu.socket_sleep_watts = 0.5;
  cpu.utilization_exponent = 1.0;

  DramSpec dram;
  dram.capacity_bytes = 32.0 * 1024 * 1024 * 1024;
  dram.background_watts_per_gib = 0.4;

  ChassisSpec chassis;
  chassis.base_watts = 25.0;
  chassis.tray_watts = 20.0;

  FacilitySpec fac;
  fac.psu_efficiency = 0.92;
  fac.cooling_watts_per_watt = 0.3;

  return std::make_unique<HardwarePlatform>(cpu, dram, chassis, fac);
}

}  // namespace ecodb::power

// Simulated RAPL (Running Average Power Limit) counter interface.
//
// Real deployments of energy-aware database software read energy from the
// CPU's RAPL MSRs (or /sys/class/powercap). EcoDB cannot assume that
// hardware, so it exposes the same *interface* — monotonically increasing
// energy counters in microjoules with fixed-width wraparound — backed by the
// simulation's EnergyMeter. Code written against `Rapl` ports directly to
// the real powercap files.

#ifndef ECODB_POWER_RAPL_H_
#define ECODB_POWER_RAPL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "power/energy_meter.h"

namespace ecodb::power {

/// RAPL-style energy domains.
enum class RaplDomain {
  kPackage,  // CPU socket(s)
  kDram,
  kPsys,     // whole platform
};

const char* RaplDomainName(RaplDomain domain);

/// Simulated powercap-style counters over an EnergyMeter.
class Rapl {
 public:
  /// `meter` must outlive this object. Channels are grouped into domains;
  /// kPsys always reports the sum over all channels.
  Rapl(const EnergyMeter* meter, std::vector<ChannelId> package_channels,
       std::vector<ChannelId> dram_channels);

  /// Counter width in bits (real RAPL counters are 32-bit microjoules).
  static constexpr int kCounterBits = 32;
  static constexpr uint64_t kCounterWrap = 1ULL << kCounterBits;

  /// Current counter value for `domain` in microjoules, wrapped to 32 bits
  /// exactly like the hardware MSR.
  uint64_t EnergyUj(RaplDomain domain) const;

  /// Unwrapped cumulative microjoules (what a careful reader reconstructs
  /// by polling faster than the wrap period).
  uint64_t EnergyUjUnwrapped(RaplDomain domain) const;

  /// Difference handling wraparound: new_reading - old_reading modulo 2^32.
  /// Assumes at most one wrap between readings.
  static uint64_t CounterDelta(uint64_t old_uj, uint64_t new_uj) {
    return (new_uj >= old_uj) ? new_uj - old_uj
                              : new_uj + kCounterWrap - old_uj;
  }

 private:
  const EnergyMeter* meter_;
  std::vector<ChannelId> package_channels_;
  std::vector<ChannelId> dram_channels_;
};

}  // namespace ecodb::power

#endif  // ECODB_POWER_RAPL_H_

#include "power/rapl.h"

#include <cmath>

namespace ecodb::power {

const char* RaplDomainName(RaplDomain domain) {
  switch (domain) {
    case RaplDomain::kPackage:
      return "package-0";
    case RaplDomain::kDram:
      return "dram";
    case RaplDomain::kPsys:
      return "psys";
  }
  return "unknown";
}

Rapl::Rapl(const EnergyMeter* meter, std::vector<ChannelId> package_channels,
           std::vector<ChannelId> dram_channels)
    : meter_(meter),
      package_channels_(std::move(package_channels)),
      dram_channels_(std::move(dram_channels)) {}

uint64_t Rapl::EnergyUjUnwrapped(RaplDomain domain) const {
  double joules = 0.0;
  switch (domain) {
    case RaplDomain::kPackage:
      for (ChannelId id : package_channels_) {
        joules += meter_->ChannelJoules(id);
      }
      break;
    case RaplDomain::kDram:
      for (ChannelId id : dram_channels_) {
        joules += meter_->ChannelJoules(id);
      }
      break;
    case RaplDomain::kPsys:
      joules = meter_->TotalJoules();
      break;
  }
  return static_cast<uint64_t>(std::llround(joules * 1e6));
}

uint64_t Rapl::EnergyUj(RaplDomain domain) const {
  return EnergyUjUnwrapped(domain) % kCounterWrap;
}

}  // namespace ecodb::power

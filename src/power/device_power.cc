#include "power/device_power.h"

namespace ecodb::power {

double HddSpec::BreakEvenIdleSeconds() const {
  // Staying idle for T costs idle_watts * T.
  // Spinning down costs standby_watts * (T - spinup_seconds) +
  // spinup_watts * spinup_seconds (the disk must be back up by the end of
  // the period). Break-even T solves equality; below it, spin-down loses.
  // idle*T = standby*(T - t_up) + spinup*t_up
  //   =>  T = t_up * (spinup - standby) / (idle - standby).
  const double saved_per_second = idle_watts - standby_watts;
  if (saved_per_second <= 0) return 1e300;  // spin-down never pays off
  return (spinup_watts - standby_watts) * spinup_seconds / saved_per_second;
}

Status ValidateHddSpec(const HddSpec& spec) {
  if (spec.capacity_bytes <= 0 || spec.sustained_bw_bytes_per_s <= 0) {
    return Status::InvalidArgument("HDD capacity and bandwidth must be > 0");
  }
  if (spec.avg_seek_s < 0 || spec.rotational_latency_s < 0) {
    return Status::InvalidArgument("HDD latencies must be >= 0");
  }
  if (spec.active_watts < spec.idle_watts ||
      spec.idle_watts < spec.standby_watts || spec.standby_watts < 0) {
    return Status::InvalidArgument(
        "HDD power ordering must be active >= idle >= standby >= 0");
  }
  if (spec.spinup_seconds < 0 || spec.spinup_watts < 0) {
    return Status::InvalidArgument("HDD spin-up parameters must be >= 0");
  }
  return Status::OK();
}

Status ValidateSsdSpec(const SsdSpec& spec) {
  if (spec.capacity_bytes <= 0 || spec.read_bw_bytes_per_s <= 0 ||
      spec.write_bw_bytes_per_s <= 0) {
    return Status::InvalidArgument("SSD capacity and bandwidths must be > 0");
  }
  if (spec.read_latency_s < 0 || spec.write_latency_s < 0) {
    return Status::InvalidArgument("SSD latencies must be >= 0");
  }
  if (spec.active_watts < spec.idle_watts || spec.idle_watts < 0) {
    return Status::InvalidArgument(
        "SSD power ordering must be active >= idle >= 0");
  }
  return Status::OK();
}

Status ValidateDramSpec(const DramSpec& spec) {
  if (spec.capacity_bytes <= 0) {
    return Status::InvalidArgument("DRAM capacity must be > 0");
  }
  if (spec.background_watts_per_gib < 0 || spec.access_joules_per_byte < 0) {
    return Status::InvalidArgument("DRAM power parameters must be >= 0");
  }
  return Status::OK();
}

}  // namespace ecodb::power

#include "txn/checkpoint.h"

#include <map>

#include "storage/compression.h"  // varint helpers

namespace ecodb::txn {

using storage::GetVarint;
using storage::PutVarint;

Checkpoint Checkpoint::Capture(const PageStore& store, Lsn lsn) {
  Checkpoint cp;
  cp.lsn = lsn;
  // Deterministic order for byte-identical checkpoints of equal stores.
  std::map<std::pair<uint32_t, uint32_t>, const storage::Page*> ordered;
  store.ForEach([&](storage::PageId id, const storage::Page& page) {
    ordered[{id.space_id, id.page_no}] = &page;
  });
  PutVarint(cp.lsn, &cp.image);
  PutVarint(ordered.size(), &cp.image);
  for (const auto& [key, page] : ordered) {
    PutVarint(key.first, &cp.image);
    PutVarint(key.second, &cp.image);
    cp.image.insert(cp.image.end(), page->image().begin(),
                    page->image().end());
  }
  return cp;
}

StatusOr<PageStore> Checkpoint::Restore() const {
  PageStore store;
  size_t pos = 0;
  uint64_t lsn_in_image = 0, count = 0;
  if (!GetVarint(image, &pos, &lsn_in_image) ||
      !GetVarint(image, &pos, &count)) {
    return Status::DataLoss("checkpoint header truncated");
  }
  if (lsn_in_image != lsn) {
    return Status::DataLoss("checkpoint LSN mismatch");
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t space = 0, page_no = 0;
    if (!GetVarint(image, &pos, &space) ||
        !GetVarint(image, &pos, &page_no)) {
      return Status::DataLoss("checkpoint page header truncated");
    }
    if (pos + storage::Page::kPageSize > image.size()) {
      return Status::DataLoss("checkpoint page image truncated");
    }
    std::vector<uint8_t> bytes(
        image.begin() + static_cast<long>(pos),
        image.begin() + static_cast<long>(pos + storage::Page::kPageSize));
    pos += storage::Page::kPageSize;
    ECODB_ASSIGN_OR_RETURN(storage::Page page,
                           storage::Page::FromImage(std::move(bytes)));
    *store.GetOrCreate(storage::PageId{static_cast<uint32_t>(space),
                                       static_cast<uint32_t>(page_no)}) =
        std::move(page);
  }
  return store;
}

Checkpointer::Checkpointer(sim::SimClock* clock, WalManager* wal,
                           storage::StorageDevice* device)
    : clock_(clock), wal_(wal), device_(device) {}

StatusOr<Lsn> Checkpointer::Take(const PageStore& store) {
  // Log the checkpoint marker and make everything before it durable.
  LogRecord marker;
  marker.type = LogRecordType::kCheckpoint;
  const Lsn lsn = wal_->Append(std::move(marker));
  ECODB_ASSIGN_OR_RETURN(const double flushed, wal_->Flush());

  latest_ = Checkpoint::Capture(store, lsn);
  ECODB_ASSIGN_OR_RETURN(
      const storage::IoResult io,
      device_->SubmitWrite(flushed, latest_.image.size(),
                           /*sequential=*/true));
  clock_->AdvanceTo(io.completion_time);
  ++taken_;
  return lsn;
}

std::vector<uint8_t> Checkpointer::TruncatedLog(
    const std::vector<uint8_t>& log) const {
  if (latest_.lsn == kInvalidLsn) return log;
  size_t pos = 0;
  while (pos < log.size()) {
    const size_t frame_start = pos;
    auto rec = LogRecord::Deserialize(log, &pos);
    if (!rec.ok()) {
      // Torn tail: nothing after it parses either; keep the suffix from
      // here so recovery sees (and reports) the tear.
      return std::vector<uint8_t>(log.begin() + static_cast<long>(frame_start),
                                  log.end());
    }
    if (rec->type == LogRecordType::kCheckpoint && rec->lsn == latest_.lsn) {
      return std::vector<uint8_t>(log.begin() + static_cast<long>(pos),
                                  log.end());
    }
  }
  return {};  // checkpoint marker beyond this log prefix: nothing to replay
}

StatusOr<PageStore> Checkpointer::Recover(
    const std::vector<uint8_t>& full_log) const {
  PageStore store;
  if (latest_.lsn != kInvalidLsn) {
    ECODB_ASSIGN_OR_RETURN(store, latest_.Restore());
  }
  ECODB_ASSIGN_OR_RETURN(RecoveryReport report,
                         txn::Recover(TruncatedLog(full_log), &store));
  (void)report;
  return store;
}

}  // namespace ecodb::txn

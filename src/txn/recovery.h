// Crash recovery: redo/undo replay of the WAL into slotted pages.
//
// A deliberately compact ARIES-flavored recovery: (1) analysis finds
// committed transactions and the last checkpoint, (2) redo replays after-
// images of committed work in LSN order, (3) undo reverts losers via
// before-images. Operates on a PageStore — the in-memory "disk image" of
// row tables — and is exercised by crash-point property tests that cut the
// log at every byte boundary.

#ifndef ECODB_TXN_RECOVERY_H_
#define ECODB_TXN_RECOVERY_H_

#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/page.h"
#include "txn/log_record.h"
#include "util/status.h"

namespace ecodb::txn {

/// The recoverable page image store ("the database files").
class PageStore {
 public:
  /// Returns the page, materializing an empty one on first touch.
  storage::Page* GetOrCreate(storage::PageId id);

  /// Returns the page or nullptr.
  storage::Page* Find(storage::PageId id);
  const storage::Page* Find(storage::PageId id) const;

  size_t page_count() const { return pages_.size(); }

  /// Visits every page (iteration order unspecified).
  void ForEach(const std::function<void(storage::PageId,
                                        const storage::Page&)>& fn) const;

  /// Deep equality of two stores (same pages with same images).
  static bool Equal(const PageStore& a, const PageStore& b);

 private:
  std::unordered_map<storage::PageId, storage::Page, storage::PageIdHash>
      pages_;
};

struct RecoveryReport {
  size_t records_scanned = 0;
  size_t redo_applied = 0;
  size_t undo_applied = 0;
  size_t committed_txns = 0;
  size_t loser_txns = 0;
  bool torn_tail_detected = false;
};

/// Replays `log_bytes` (a serialized WAL prefix, possibly torn mid-record)
/// into `store`. The store should hold the state as of the last checkpoint
/// (or be empty when recovering from scratch).
StatusOr<RecoveryReport> Recover(const std::vector<uint8_t>& log_bytes,
                                 PageStore* store);

/// Applies one redo record to the store (shared by forward processing and
/// recovery so both paths cannot diverge).
Status ApplyRedo(const LogRecord& rec, PageStore* store);

}  // namespace ecodb::txn

#endif  // ECODB_TXN_RECOVERY_H_

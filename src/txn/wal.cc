#include "txn/wal.h"

#include <cassert>

namespace ecodb::txn {

WalManager::WalManager(WalConfig config, sim::SimClock* clock,
                       storage::StorageDevice* log_device,
                       storage::FaultInjector* injector)
    : config_(config), clock_(clock), device_(log_device),
      injector_(injector) {
  assert(config_.group_commit_size >= 1);
}

Lsn WalManager::Append(LogRecord record) {
  record.lsn = next_lsn_++;
  record.SerializeTo(&pending_);
  ++stats_.records_appended;
  return record.lsn;
}

StatusOr<double> WalManager::Flush() {
  if (torn_) {
    return Status::FailedPrecondition("wal tail is torn; recover first");
  }
  if (pending_.empty()) return clock_->now();
  const uint64_t this_flush = flush_index_++;
  if (injector_ != nullptr && injector_->ShouldTearFlush(this_flush)) {
    // The flush dies partway: only a prefix of the group reaches the
    // platter (possibly with its last sector mangled). Everything else in
    // the group — and the log itself — is lost until recovery replays the
    // durable prefix.
    const storage::WalTearSpec& tear = injector_->wal_tear();
    const size_t keep = static_cast<size_t>(
        static_cast<double>(pending_.size()) * tear.keep_fraction);
    auto write = device_->SubmitWrite(clock_->now(), keep,
                                      /*sequential=*/true);
    if (!write.ok()) return write.status();
    durable_.insert(durable_.end(), pending_.begin(),
                    pending_.begin() + static_cast<ptrdiff_t>(keep));
    if (tear.corrupt_kept_tail && !durable_.empty() && keep > 0) {
      durable_.back() ^= 0x40;  // a mangled final sector
    }
    stats_.bytes_flushed += keep;
    ++stats_.flushes;
    pending_.clear();
    pending_commits_ = 0;
    torn_ = true;
    return Status::DataLoss("wal flush " + std::to_string(this_flush) +
                            " torn mid-write");
  }
  ECODB_ASSIGN_OR_RETURN(
      const storage::IoResult io,
      device_->SubmitWrite(clock_->now(), pending_.size(),
                           /*sequential=*/true));
  stats_.bytes_flushed += pending_.size();
  ++stats_.flushes;
  durable_.insert(durable_.end(), pending_.begin(), pending_.end());
  pending_.clear();
  pending_commits_ = 0;
  return io.completion_time;
}

StatusOr<CommitResult> WalManager::Commit(TxnId txn) {
  if (torn_) {
    return Status::FailedPrecondition("wal tail is torn; recover first");
  }
  LogRecord rec;
  rec.txn_id = txn;
  rec.type = LogRecordType::kCommit;
  const Lsn lsn = Append(std::move(rec));
  ++stats_.commits;
  if (pending_commits_ == 0) {
    oldest_pending_commit_time_ = clock_->now();
  }
  ++pending_commits_;
  if (pending_commits_ >= config_.group_commit_size) {
    ECODB_ASSIGN_OR_RETURN(const double durable_time, Flush());
    return CommitResult{lsn, durable_time};
  }
  // Caller (scheduler) is responsible for driving FlushTimedOut(); until
  // then the commit is durable at the *next* flush. We report the upper
  // bound: oldest waiter + timeout.
  return CommitResult{lsn,
                      oldest_pending_commit_time_ +
                          config_.group_commit_timeout_s};
}

StatusOr<bool> WalManager::FlushTimedOut(double now) {
  if (pending_commits_ == 0) return false;
  if (now - oldest_pending_commit_time_ < config_.group_commit_timeout_s) {
    return false;
  }
  ECODB_RETURN_IF_ERROR(Flush().status());
  return true;
}

std::vector<uint8_t> WalManager::AllBytes() const {
  std::vector<uint8_t> all = durable_;
  all.insert(all.end(), pending_.begin(), pending_.end());
  return all;
}

}  // namespace ecodb::txn

#include "txn/wal.h"

#include <cassert>

namespace ecodb::txn {

WalManager::WalManager(WalConfig config, sim::SimClock* clock,
                       storage::StorageDevice* log_device)
    : config_(config), clock_(clock), device_(log_device) {
  assert(config_.group_commit_size >= 1);
}

Lsn WalManager::Append(LogRecord record) {
  record.lsn = next_lsn_++;
  record.SerializeTo(&pending_);
  ++stats_.records_appended;
  return record.lsn;
}

double WalManager::Flush() {
  if (pending_.empty()) return clock_->now();
  const storage::IoResult io = device_->SubmitWrite(
      clock_->now(), pending_.size(), /*sequential=*/true);
  stats_.bytes_flushed += pending_.size();
  ++stats_.flushes;
  durable_.insert(durable_.end(), pending_.begin(), pending_.end());
  pending_.clear();
  pending_commits_ = 0;
  return io.completion_time;
}

CommitResult WalManager::Commit(TxnId txn) {
  LogRecord rec;
  rec.txn_id = txn;
  rec.type = LogRecordType::kCommit;
  const Lsn lsn = Append(std::move(rec));
  ++stats_.commits;
  if (pending_commits_ == 0) {
    oldest_pending_commit_time_ = clock_->now();
  }
  ++pending_commits_;
  if (pending_commits_ >= config_.group_commit_size) {
    const double durable_time = Flush();
    return CommitResult{lsn, durable_time};
  }
  // Caller (scheduler) is responsible for driving FlushTimedOut(); until
  // then the commit is durable at the *next* flush. We report the upper
  // bound: oldest waiter + timeout.
  return CommitResult{lsn,
                      oldest_pending_commit_time_ +
                          config_.group_commit_timeout_s};
}

bool WalManager::FlushTimedOut(double now) {
  if (pending_commits_ == 0) return false;
  if (now - oldest_pending_commit_time_ < config_.group_commit_timeout_s) {
    return false;
  }
  Flush();
  return true;
}

std::vector<uint8_t> WalManager::AllBytes() const {
  std::vector<uint8_t> all = durable_;
  all.insert(all.end(), pending_.begin(), pending_.end());
  return all;
}

}  // namespace ecodb::txn

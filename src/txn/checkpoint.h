// Checkpointing: bounding recovery work and enabling log truncation.
//
// A checkpoint captures the PageStore image as of a log position (the
// checkpoint LSN) and writes it to stable storage, after which the log
// prefix up to that LSN can be truncated. Recovery then starts from the
// checkpoint image instead of an empty database. The energy angle
// (Section 5.2 of the paper): checkpoint frequency is another
// batching-factor knob — frequent checkpoints cost device energy during
// normal operation to save (rare) recovery time.

#ifndef ECODB_TXN_CHECKPOINT_H_
#define ECODB_TXN_CHECKPOINT_H_

#include <cstdint>
#include <vector>

#include "sim/clock.h"
#include "storage/device.h"
#include "txn/log_record.h"
#include "txn/recovery.h"
#include "txn/wal.h"
#include "util/status.h"

namespace ecodb::txn {

/// A durable checkpoint: the page images plus the LSN they are valid at.
struct Checkpoint {
  Lsn lsn = kInvalidLsn;
  /// Serialized page images: [count][space,page,image]* (real bytes; the
  /// round-trip is tested).
  std::vector<uint8_t> image;

  /// Serializes `store` as of `lsn`.
  static Checkpoint Capture(const PageStore& store, Lsn lsn);

  /// Reconstructs the PageStore. DataLoss on corruption.
  StatusOr<PageStore> Restore() const;
};

class Checkpointer {
 public:
  /// `clock`, `wal`, and `device` must outlive the checkpointer. The
  /// device receives the checkpoint image writes.
  Checkpointer(sim::SimClock* clock, WalManager* wal,
               storage::StorageDevice* device);

  /// Takes a checkpoint of `store` now: appends a kCheckpoint record,
  /// flushes the log, writes the image to the device, and remembers it.
  /// Returns the checkpoint LSN.
  StatusOr<Lsn> Take(const PageStore& store);

  /// The most recent checkpoint (lsn == kInvalidLsn if none taken).
  const Checkpoint& latest() const { return latest_; }

  /// Bytes of `log` that recovery still needs: the suffix after the
  /// latest checkpoint's kCheckpoint record. With no checkpoint, the whole
  /// log. (The WAL's durable bytes remain untouched; this computes the
  /// truncated view.)
  std::vector<uint8_t> TruncatedLog(const std::vector<uint8_t>& log) const;

  /// Full restart sequence: restore the checkpoint image (or start empty)
  /// and replay the truncated log into it.
  StatusOr<PageStore> Recover(const std::vector<uint8_t>& full_log) const;

  int checkpoints_taken() const { return taken_; }

 private:
  sim::SimClock* clock_;
  WalManager* wal_;
  storage::StorageDevice* device_;
  Checkpoint latest_;
  int taken_ = 0;
};

}  // namespace ecodb::txn

#endif  // ECODB_TXN_CHECKPOINT_H_

// Write-ahead log manager with group commit as an energy knob.
//
// Commits are durable once their records reach the log device. With group
// commit, up to `group_commit_size` transactions share one sequential log
// write: the device stays in low-power states longer and pays fewer
// per-request overheads, at the price of commit latency — exactly the
// batching-factor tradeoff of the paper's Section 5.2.

#ifndef ECODB_TXN_WAL_H_
#define ECODB_TXN_WAL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/clock.h"
#include "storage/device.h"
#include "storage/fault_injector.h"
#include "txn/log_record.h"
#include "util/status.h"

namespace ecodb::txn {

struct WalConfig {
  /// Transactions per group-commit flush (1 = classic per-commit flush).
  int group_commit_size = 1;
  /// Maximum simulated seconds a commit may wait for the group to fill.
  double group_commit_timeout_s = 0.01;
};

struct WalStats {
  uint64_t records_appended = 0;
  uint64_t flushes = 0;
  uint64_t bytes_flushed = 0;
  uint64_t commits = 0;
};

/// Outcome of a commit request.
struct CommitResult {
  Lsn commit_lsn = kInvalidLsn;
  /// Simulated time at which this commit became durable.
  double durable_time = 0.0;
};

class WalManager {
 public:
  /// `clock` and `log_device` must outlive the manager. `injector`
  /// (optional) supplies the fault plan's WAL tear: when the k-th flush is
  /// scheduled to tear, only a prefix of the pending bytes becomes durable
  /// (optionally with the last kept byte corrupted), the flush returns
  /// kDataLoss, and the log refuses further writes — recovery over
  /// durable_bytes() is the only way forward, exactly as after a crash.
  WalManager(WalConfig config, sim::SimClock* clock,
             storage::StorageDevice* log_device,
             storage::FaultInjector* injector = nullptr);

  /// Assigns the next LSN and buffers the record. Does not flush.
  Lsn Append(LogRecord record);

  /// Appends a commit record for `txn` and requests durability. The commit
  /// flushes immediately once the pending group reaches group_commit_size;
  /// otherwise it waits for more commits or FlushTimedOut(). Returns the
  /// durable time for this commit (may require an internal flush now).
  StatusOr<CommitResult> Commit(TxnId txn);

  /// Flushes the pending group if the oldest waiter has exceeded the
  /// timeout at simulated time `now`. Returns true if a flush happened.
  StatusOr<bool> FlushTimedOut(double now);

  /// Forces a flush of everything buffered. Returns its completion time.
  StatusOr<double> Flush();

  /// True once a flush tore: the log is frozen pending recovery.
  bool torn() const { return torn_; }

  /// Serialized log contents flushed so far (what survives a crash).
  const std::vector<uint8_t>& durable_bytes() const { return durable_; }

  /// All bytes appended, flushed or not (what a crash would tear).
  std::vector<uint8_t> AllBytes() const;

  Lsn next_lsn() const { return next_lsn_; }
  const WalStats& stats() const { return stats_; }

 private:
  WalConfig config_;
  sim::SimClock* clock_;
  storage::StorageDevice* device_;
  storage::FaultInjector* injector_ = nullptr;
  uint64_t flush_index_ = 0;  // 0-based count of device flushes
  bool torn_ = false;
  Lsn next_lsn_ = 1;
  std::vector<uint8_t> durable_;   // flushed prefix
  std::vector<uint8_t> pending_;   // buffered, not yet flushed
  int pending_commits_ = 0;
  double oldest_pending_commit_time_ = 0.0;
  WalStats stats_;
};

}  // namespace ecodb::txn

#endif  // ECODB_TXN_WAL_H_

#include "txn/recovery.h"

#include <algorithm>
#include <vector>

namespace ecodb::txn {

storage::Page* PageStore::GetOrCreate(storage::PageId id) {
  return &pages_[id];
}

storage::Page* PageStore::Find(storage::PageId id) {
  auto it = pages_.find(id);
  return it == pages_.end() ? nullptr : &it->second;
}

const storage::Page* PageStore::Find(storage::PageId id) const {
  auto it = pages_.find(id);
  return it == pages_.end() ? nullptr : &it->second;
}

void PageStore::ForEach(
    const std::function<void(storage::PageId, const storage::Page&)>& fn)
    const {
  // Visit in page-id order so callers (checksums, dumps, replay audits)
  // see the same sequence on every run regardless of hash layout.
  std::vector<storage::PageId> ids;
  ids.reserve(pages_.size());
  for (const auto& [id, page] : pages_) ids.push_back(id);  // NOLINT-ECODB(EC8): collect-then-sort, order-independent
  std::sort(ids.begin(), ids.end(),
            [](const storage::PageId& a, const storage::PageId& b) {
              return a.space_id != b.space_id ? a.space_id < b.space_id
                                              : a.page_no < b.page_no;
            });
  for (const storage::PageId& id : ids) fn(id, pages_.at(id));
}

bool PageStore::Equal(const PageStore& a, const PageStore& b) {
  if (a.pages_.size() != b.pages_.size()) return false;
  for (const auto& [id, page] : a.pages_) {
    const storage::Page* other = b.Find(id);
    if (other == nullptr || other->image() != page.image()) return false;
  }
  return true;
}

Status ApplyRedo(const LogRecord& rec, PageStore* store) {
  storage::Page* page = store->GetOrCreate(rec.page);
  switch (rec.type) {
    case LogRecordType::kInsert: {
      auto slot = page->Insert(rec.after);
      if (!slot.ok()) return slot.status();
      if (*slot != rec.slot) {
        return Status::DataLoss("redo insert slot diverged from log");
      }
      return Status::OK();
    }
    case LogRecordType::kUpdate:
      return page->Update(rec.slot, rec.after);
    case LogRecordType::kErase:
      return page->Erase(rec.slot);
    default:
      return Status::OK();  // control records change no page state
  }
}

namespace {

Status ApplyUndo(const LogRecord& rec, PageStore* store) {
  storage::Page* page = store->Find(rec.page);
  if (page == nullptr) return Status::DataLoss("undo against missing page");
  switch (rec.type) {
    case LogRecordType::kInsert:
      return page->Erase(rec.slot);
    case LogRecordType::kUpdate:
      return page->Update(rec.slot, rec.before);
    case LogRecordType::kErase:
      return page->Resurrect(rec.slot, rec.before);
    default:
      return Status::OK();
  }
}

}  // namespace

StatusOr<RecoveryReport> Recover(const std::vector<uint8_t>& log_bytes,
                                 PageStore* store) {
  RecoveryReport report;

  // --- Analysis: parse everything parseable; a torn tail ends the scan.
  std::vector<LogRecord> records;
  std::unordered_set<TxnId> committed;
  std::unordered_set<TxnId> aborted;
  size_t pos = 0;
  while (pos < log_bytes.size()) {
    auto rec = LogRecord::Deserialize(log_bytes, &pos);
    if (!rec.ok()) {
      report.torn_tail_detected = true;
      break;
    }
    if (rec->type == LogRecordType::kCommit) {
      committed.insert(rec->txn_id);
    } else if (rec->type == LogRecordType::kAbort) {
      aborted.insert(rec->txn_id);
    }
    records.push_back(std::move(rec).value());
  }
  report.records_scanned = records.size();
  report.committed_txns = committed.size();

  // --- Redo: repeat history for every logged change, in LSN order.
  for (const LogRecord& rec : records) {
    if (rec.type == LogRecordType::kInsert ||
        rec.type == LogRecordType::kUpdate ||
        rec.type == LogRecordType::kErase) {
      ECODB_RETURN_IF_ERROR(ApplyRedo(rec, store));
      ++report.redo_applied;
    }
  }

  // --- Undo: roll back losers (began but never committed) in reverse.
  std::unordered_set<TxnId> losers;
  for (const LogRecord& rec : records) {
    if (!committed.count(rec.txn_id)) losers.insert(rec.txn_id);
  }
  report.loser_txns = losers.size();
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    if (!losers.count(it->txn_id)) continue;
    if (it->type == LogRecordType::kInsert ||
        it->type == LogRecordType::kUpdate ||
        it->type == LogRecordType::kErase) {
      ECODB_RETURN_IF_ERROR(ApplyUndo(*it, store));
      ++report.undo_applied;
    }
  }
  return report;
}

}  // namespace ecodb::txn

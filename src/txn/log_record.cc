#include "txn/log_record.h"

#include "storage/compression.h"  // varint helpers

namespace ecodb::txn {

using storage::GetVarint;
using storage::PutVarint;

uint64_t Fnv1a(const uint8_t* data, size_t len) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

void LogRecord::SerializeTo(std::vector<uint8_t>* out) const {
  // Body: [lsn][txn][type][space][page][slot][before len+bytes][after ...]
  std::vector<uint8_t> body;
  PutVarint(lsn, &body);
  PutVarint(txn_id, &body);
  body.push_back(static_cast<uint8_t>(type));
  PutVarint(page.space_id, &body);
  PutVarint(page.page_no, &body);
  PutVarint(slot, &body);
  PutVarint(before.size(), &body);
  body.insert(body.end(), before.begin(), before.end());
  PutVarint(after.size(), &body);
  body.insert(body.end(), after.begin(), after.end());

  // Frame: [body_len varint][body][checksum 8 bytes LE]
  PutVarint(body.size(), out);
  out->insert(out->end(), body.begin(), body.end());
  const uint64_t sum = Fnv1a(body.data(), body.size());
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(sum >> (8 * i)));
  }
}

StatusOr<LogRecord> LogRecord::Deserialize(const std::vector<uint8_t>& buf,
                                           size_t* pos) {
  uint64_t body_len = 0;
  if (!GetVarint(buf, pos, &body_len)) {
    return Status::DataLoss("log frame length truncated");
  }
  if (*pos + body_len + 8 > buf.size()) {
    return Status::DataLoss("log frame body truncated");
  }
  const size_t body_start = *pos;
  uint64_t expect = 0;
  for (int i = 0; i < 8; ++i) {
    expect |= static_cast<uint64_t>(buf[body_start + body_len + i])
              << (8 * i);
  }
  if (Fnv1a(buf.data() + body_start, body_len) != expect) {
    return Status::DataLoss("log frame checksum mismatch");
  }

  LogRecord rec;
  size_t p = body_start;
  const size_t body_end = body_start + body_len;
  uint64_t v = 0;
  if (!GetVarint(buf, &p, &v) || p > body_end) {
    return Status::DataLoss("log lsn truncated");
  }
  rec.lsn = v;
  if (!GetVarint(buf, &p, &v) || p > body_end) {
    return Status::DataLoss("log txn truncated");
  }
  rec.txn_id = v;
  if (p >= body_end) return Status::DataLoss("log type truncated");
  rec.type = static_cast<LogRecordType>(buf[p++]);
  if (!GetVarint(buf, &p, &v)) return Status::DataLoss("log space truncated");
  rec.page.space_id = static_cast<uint32_t>(v);
  if (!GetVarint(buf, &p, &v)) return Status::DataLoss("log page truncated");
  rec.page.page_no = static_cast<uint32_t>(v);
  if (!GetVarint(buf, &p, &v)) return Status::DataLoss("log slot truncated");
  rec.slot = static_cast<uint16_t>(v);
  uint64_t blen = 0;
  if (!GetVarint(buf, &p, &blen) || p + blen > body_end) {
    return Status::DataLoss("log before-image truncated");
  }
  rec.before.assign(buf.begin() + static_cast<long>(p),
                    buf.begin() + static_cast<long>(p + blen));
  p += blen;
  uint64_t alen = 0;
  if (!GetVarint(buf, &p, &alen) || p + alen > body_end) {
    return Status::DataLoss("log after-image truncated");
  }
  rec.after.assign(buf.begin() + static_cast<long>(p),
                   buf.begin() + static_cast<long>(p + alen));
  p += alen;
  if (p != body_end) return Status::DataLoss("log frame trailing bytes");
  *pos = body_end + 8;
  return rec;
}

}  // namespace ecodb::txn

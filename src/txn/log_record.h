// Write-ahead-log records with real byte-level serialization.
//
// Section 5.2 of the paper singles logging out: ~15% of OLTP instructions
// are logging-related [HAM+08], and energy-aware systems may "increase the
// batching factor (and increase response time) to avoid frequent commits on
// stable storage". The WAL here is a genuine physiological redo/undo log:
// records carry before/after images, serialize to bytes, and are replayed
// by RecoveryManager into slotted pages.

#ifndef ECODB_TXN_LOG_RECORD_H_
#define ECODB_TXN_LOG_RECORD_H_

#include <cstdint>
#include <vector>

#include "storage/page.h"
#include "util/status.h"

namespace ecodb::txn {

using Lsn = uint64_t;
using TxnId = uint64_t;

constexpr Lsn kInvalidLsn = 0;

enum class LogRecordType : uint8_t {
  kBegin = 1,
  kCommit = 2,
  kAbort = 3,
  kInsert = 4,   // after image only
  kUpdate = 5,   // before + after images
  kErase = 6,    // before image only
  kCheckpoint = 7,
};

struct LogRecord {
  Lsn lsn = kInvalidLsn;
  TxnId txn_id = 0;
  LogRecordType type = LogRecordType::kBegin;
  storage::PageId page;
  uint16_t slot = storage::Page::kInvalidSlot;
  std::vector<uint8_t> before;
  std::vector<uint8_t> after;

  /// Appends the serialized form (length-prefixed, checksummed) to `out`.
  void SerializeTo(std::vector<uint8_t>* out) const;

  /// Parses one record at `*pos`, advancing it. DataLoss on corruption or
  /// truncation (a torn tail after a crash parses as DataLoss and ends the
  /// redo scan, which is the correct recovery semantic).
  static StatusOr<LogRecord> Deserialize(const std::vector<uint8_t>& buf,
                                         size_t* pos);

  bool operator==(const LogRecord&) const = default;
};

/// FNV-1a 64-bit checksum used by log records.
uint64_t Fnv1a(const uint8_t* data, size_t len);

}  // namespace ecodb::txn

#endif  // ECODB_TXN_LOG_RECORD_H_

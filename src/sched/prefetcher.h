// Energy-efficient prefetching: shaping access streams into bursts.
//
// Section 4.2 of the paper, citing Papathanasiou & Scott [PS04]: "previous
// work on energy-efficient prefetching and caching for mobile computing
// proposed modifications to the OS to encourage burstiness and increase the
// length of idle periods. A database storage manager could also incorporate
// similar techniques, especially since certain table scans have highly
// predictable access patterns."
//
// `BurstyPrefetcher` serves a predictable page stream out of a prefetch
// buffer: instead of one device request per page, it fetches `burst_pages`
// pages per device visit, so the device sees a few long bursts separated by
// long idle gaps a spin-down policy can use.

#ifndef ECODB_SCHED_PREFETCHER_H_
#define ECODB_SCHED_PREFETCHER_H_

#include <cstdint>

#include "sim/clock.h"
#include "storage/device.h"
#include "util/status.h"

namespace ecodb::sched {

struct PrefetcherStats {
  uint64_t pages_served = 0;
  uint64_t device_bursts = 0;
  /// Longest device-idle gap between consecutive bursts (seconds).
  double longest_idle_gap_s = 0.0;
};

class BurstyPrefetcher {
 public:
  /// Serves pages of `page_bytes` from `device`, `burst_pages` per device
  /// visit (1 = no prefetching). `clock` and `device` must outlive this.
  BurstyPrefetcher(sim::SimClock* clock, storage::StorageDevice* device,
                   uint64_t page_bytes, int burst_pages);

  /// Consumes the next page of the stream at the current simulated time.
  /// Returns when the page's data is available; on a buffer miss this is
  /// the completion of a `burst_pages`-page sequential device read.
  StatusOr<double> NextPage();

  /// Pages currently buffered ahead of the consumer.
  int buffered() const { return buffered_; }
  const PrefetcherStats& stats() const { return stats_; }

 private:
  sim::SimClock* clock_;
  storage::StorageDevice* device_;
  uint64_t page_bytes_;
  int burst_pages_;
  int buffered_ = 0;
  double last_burst_end_ = -1.0;
  PrefetcherStats stats_;
};

}  // namespace ecodb::sched

#endif  // ECODB_SCHED_PREFETCHER_H_

#include "sched/shared_scan.h"

#include <algorithm>

namespace ecodb::sched {

SharedScanManager::SharedScanManager(sim::SimClock* clock,
                                     double share_window_s)
    : clock_(clock), share_window_s_(share_window_s) {}

StatusOr<ScanTicket> SharedScanManager::AdmitScan(
    const storage::TableStorage& table, std::vector<int> column_indexes) {
  ++stats_.scans_requested;
  if (column_indexes.empty()) {
    for (int i = 0; i < table.schema().num_columns(); ++i) {
      column_indexes.push_back(i);
    }
  }
  const std::set<int> needed(column_indexes.begin(), column_indexes.end());
  const double now = clock_->now();

  auto it = last_transfer_.find(&table);
  if (it != last_transfer_.end()) {
    const Transfer& t = it->second;
    const bool fresh = now - t.start_time <= share_window_s_;
    const bool covers = std::includes(t.columns.begin(), t.columns.end(),
                                      needed.begin(), needed.end());
    if (fresh && covers) {
      stats_.bytes_saved += table.ScanBytes(column_indexes);
      ScanTicket ticket;
      ticket.ready_time = std::max(now, t.completion_time);
      ticket.shared = true;
      return ticket;
    }
  }

  // New transfer: the caller pays for the union of this request's columns
  // and reports the real completion via CompleteTransfer(). Until then
  // followers see completion == start, which is only reachable by requests
  // admitted at the same instant (they share the payer's data anyway).
  const uint64_t bytes = table.ScanBytes(column_indexes);
  Transfer t;
  t.start_time = now;
  t.columns = needed;
  t.bytes = bytes;
  t.completion_time = now;
  last_transfer_[&table] = std::move(t);
  ++stats_.device_transfers;
  stats_.bytes_transferred += bytes;

  ScanTicket ticket;
  ticket.ready_time = now;
  ticket.shared = false;
  return ticket;
}

void SharedScanManager::CompleteTransfer(const storage::TableStorage& table,
                                         double completion_time) {
  auto it = last_transfer_.find(&table);
  if (it == last_transfer_.end()) return;
  it->second.completion_time =
      std::max(it->second.completion_time, completion_time);
}

StatusOr<ScanTicket> SharedScanManager::RequestScan(
    const storage::TableStorage& table, std::vector<int> column_indexes) {
  ECODB_ASSIGN_OR_RETURN(ScanTicket ticket,
                         AdmitScan(table, std::move(column_indexes)));
  if (ticket.shared) return ticket;

  // Legacy self-contained path: the manager itself issues the transfer on
  // behalf of all attached readers; it runs outside any single query's
  // ExecContext.
  auto it = last_transfer_.find(&table);
  const uint64_t bytes = it->second.bytes;
  double completion = clock_->now();
  if (table.device() != nullptr && bytes > 0) {
    ECODB_ASSIGN_OR_RETURN(
        const storage::IoResult io,
        table.device()->SubmitRead(completion, bytes,  // NOLINT-ECODB(EC1)
                                   /*sequential=*/true));
    completion = io.completion_time;
  }
  it->second.completion_time = completion;
  ticket.ready_time = completion;
  return ticket;
}

}  // namespace ecodb::sched

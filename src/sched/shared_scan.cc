#include "sched/shared_scan.h"

#include <algorithm>

namespace ecodb::sched {

SharedScanManager::SharedScanManager(sim::SimClock* clock,
                                     double share_window_s)
    : clock_(clock), share_window_s_(share_window_s) {}

StatusOr<ScanTicket> SharedScanManager::RequestScan(
    const storage::TableStorage& table, std::vector<int> column_indexes) {
  ++stats_.scans_requested;
  if (column_indexes.empty()) {
    for (int i = 0; i < table.schema().num_columns(); ++i) {
      column_indexes.push_back(i);
    }
  }
  const std::set<int> needed(column_indexes.begin(), column_indexes.end());
  const double now = clock_->now();

  auto it = last_transfer_.find(&table);
  if (it != last_transfer_.end()) {
    const Transfer& t = it->second;
    const bool fresh = now - t.start_time <= share_window_s_;
    const bool covers = std::includes(t.columns.begin(), t.columns.end(),
                                      needed.begin(), needed.end());
    if (fresh && covers) {
      stats_.bytes_saved += table.ScanBytes(column_indexes);
      ScanTicket ticket;
      ticket.ready_time = std::max(now, t.completion_time);
      ticket.shared = true;
      return ticket;
    }
  }

  // New transfer: read the union of this request's columns.
  const uint64_t bytes = table.ScanBytes(column_indexes);
  Transfer t;
  t.start_time = now;
  t.columns = needed;
  t.bytes = bytes;
  double completion = now;
  if (table.device() != nullptr && bytes > 0) {
    // The shared-scan manager issues one device transfer on behalf of all
    // attached readers; it runs outside any single query's ExecContext.
    ECODB_ASSIGN_OR_RETURN(
        const storage::IoResult io,
        table.device()->SubmitRead(now, bytes,  // NOLINT-ECODB(EC1)
                                   /*sequential=*/true));
    completion = io.completion_time;
  }
  t.completion_time = completion;
  last_transfer_[&table] = std::move(t);
  ++stats_.device_transfers;
  stats_.bytes_transferred += bytes;

  ScanTicket ticket;
  ticket.ready_time = completion;
  ticket.shared = false;
  return ticket;
}

}  // namespace ecodb::sched

// Space consolidation: migrate data off under-used devices and power them
// down.
//
// Section 4.2: "we could imagine buffer and storage management policies that
// move data across memory and disks to consolidate space-shared resources
// ... the energy savings from consolidation should exceed the energy
// overhead of such movements." Evaluate() prices exactly that inequality;
// Migrate() actually performs the move (device reads + writes, table
// rebind) so its cost shows up on the meter.

#ifndef ECODB_SCHED_CONSOLIDATION_H_
#define ECODB_SCHED_CONSOLIDATION_H_

#include <vector>

#include "sim/clock.h"
#include "storage/device.h"
#include "storage/table_storage.h"
#include "util/status.h"

namespace ecodb::sched {

struct MigrationDecision {
  bool migrate = false;
  /// Energy to move the data (read source + write target).
  double migration_joules = 0.0;
  /// Energy saved over the horizon by powering the source down.
  double savings_joules = 0.0;
  /// Horizon (seconds of source idleness) at which migration breaks even.
  double break_even_horizon_s = 0.0;
};

class ConsolidationManager {
 public:
  /// Should `bytes` be moved off `source` so it can power down for
  /// `idle_horizon_s` seconds? Prices both sides of Section 4.2's rule.
  static MigrationDecision Evaluate(const storage::StorageDevice& source,
                                    const storage::StorageDevice& target,
                                    uint64_t bytes, double idle_horizon_s);

  /// Moves `table` to `target`: streams its footprint off the old device,
  /// writes it to the new one, rebinds the table, and powers the source
  /// down. Returns the completion time; device faults abort the migration
  /// before the rebind (the table stays on its source).
  static StatusOr<double> Migrate(storage::TableStorage* table,
                                  storage::StorageDevice* target,
                                  sim::SimClock* clock);
};

}  // namespace ecodb::sched

#endif  // ECODB_SCHED_CONSOLIDATION_H_

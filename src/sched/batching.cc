#include "sched/batching.h"

namespace ecodb::sched {

BatchingScheduler::BatchingScheduler(sim::EventQueue* events,
                                     BatchingConfig config)
    : events_(events), config_(config) {}

void BatchingScheduler::Submit(Work work) {
  queue_.push_back(Pending{events_->clock()->now(), std::move(work)});
  if (config_.window_s <= 0.0 || queue_.size() >= config_.max_batch) {
    if (window_timer_ != 0) {
      events_->Cancel(window_timer_);
      window_timer_ = 0;
    }
    Dispatch();
    return;
  }
  if (window_timer_ == 0) {
    window_timer_ = events_->ScheduleAfter(config_.window_s, [this] {
      window_timer_ = 0;
      Dispatch();
    });
  }
}

void BatchingScheduler::Dispatch() {
  if (queue_.empty()) return;
  ++batches_;
  while (!queue_.empty()) {
    Pending p = std::move(queue_.front());
    queue_.pop_front();
    const double done = p.work();
    // The batching scheduler owns the simulation clock between queries; the
    // dispatched work items settle their own charges.
    events_->clock()->AdvanceTo(done);  // NOLINT-ECODB(EC1)
    latency_.Add(done - p.arrival);
    ++completed_;
  }
}

}  // namespace ecodb::sched

#include "sched/consolidation.h"

#include <algorithm>

namespace ecodb::sched {

MigrationDecision ConsolidationManager::Evaluate(
    const storage::StorageDevice& source,
    const storage::StorageDevice& target, uint64_t bytes,
    double idle_horizon_s) {
  MigrationDecision d;
  // Reading off the source and writing to the target both cost energy; the
  // write side is approximated by the target's read-energy model (stream
  // rates are comparable and this errs conservative).
  d.migration_joules = source.EstimateReadJoules(bytes) +
                       target.EstimateReadJoules(bytes);
  const double savings_watts = source.StandbySavingsWatts();
  d.savings_joules = savings_watts * idle_horizon_s;
  d.break_even_horizon_s =
      savings_watts > 0 ? d.migration_joules / savings_watts : 1e300;
  d.migrate = d.savings_joules > d.migration_joules &&
              idle_horizon_s > source.BreakEvenIdleSeconds();
  return d;
}

StatusOr<double> ConsolidationManager::Migrate(storage::TableStorage* table,
                                               storage::StorageDevice* target,
                                               sim::SimClock* clock) {
  const uint64_t bytes = table->TotalBytes();
  storage::StorageDevice* source = table->device();
  double done = clock->now();
  // Migration is a background maintenance action: it runs outside any
  // query's ExecContext and bills the devices it touches directly.
  if (source != nullptr && bytes > 0) {
    ECODB_ASSIGN_OR_RETURN(
        const storage::IoResult rd,
        source->SubmitRead(  // NOLINT-ECODB(EC1)
            clock->now(), bytes, /*sequential=*/true));
    ECODB_ASSIGN_OR_RETURN(
        const storage::IoResult wr,
        target->SubmitWrite(  // NOLINT-ECODB(EC1)
            rd.completion_time, bytes, /*sequential=*/true));
    done = std::max(rd.completion_time, wr.completion_time);
  }
  table->Rebind(target);
  clock->AdvanceTo(done);  // NOLINT-ECODB(EC1)
  if (source != nullptr) {
    source->PowerDown(done);
  }
  return done;
}

}  // namespace ecodb::sched

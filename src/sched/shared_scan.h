// Shared scans: work sharing across concurrent queries.
//
// Section 5.2 of the paper: "Techniques that enable and encourage work
// sharing across queries will become increasingly attractive." A shared
// scan lets queries that need the same table within a short window ride a
// single device transfer instead of each paying for their own — the same
// bytes, read once. The manager tracks in-flight/recent transfers per
// (table, column set) and piggybacks compatible requests.

#ifndef ECODB_SCHED_SHARED_SCAN_H_
#define ECODB_SCHED_SHARED_SCAN_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "sim/clock.h"
#include "storage/table_storage.h"
#include "util/status.h"

namespace ecodb::sched {

struct SharedScanStats {
  uint64_t scans_requested = 0;
  uint64_t device_transfers = 0;
  uint64_t bytes_transferred = 0;
  uint64_t bytes_saved = 0;  // bytes piggybacked instead of re-read

  double ShareRate() const {
    return scans_requested
               ? 1.0 - static_cast<double>(device_transfers) /
                           static_cast<double>(scans_requested)
               : 0.0;
  }
};

/// Outcome of one scan request.
struct ScanTicket {
  /// Simulated time at which the data is available to the requester.
  double ready_time = 0.0;
  /// True if this request shared another request's transfer.
  bool shared = false;
};

class SharedScanManager {
 public:
  /// Requests arriving within `share_window_s` of a transfer of the same
  /// table covering the needed columns piggyback on it. `clock` must
  /// outlive the manager.
  SharedScanManager(sim::SimClock* clock, double share_window_s);

  /// Requests a scan of `table` projecting `column_indexes` (empty = all).
  /// Charges the device only when no compatible transfer is reusable.
  StatusOr<ScanTicket> RequestScan(const storage::TableStorage& table,
                                   std::vector<int> column_indexes);

  /// Decision-only variant for the serving core: decides whether this scan
  /// piggybacks on the last in-window transfer of `table`, but does NOT
  /// submit any device I/O itself. A non-shared ticket means the caller is
  /// the payer — it must bill the transfer through its own session context
  /// and then report the transfer's completion via CompleteTransfer(), so
  /// followers within the window wait for the real data-ready instant.
  StatusOr<ScanTicket> AdmitScan(const storage::TableStorage& table,
                                 std::vector<int> column_indexes);

  /// Records the completion time of the transfer a non-shared AdmitScan()
  /// registered (the payer's device I/O, billed through its ExecContext).
  void CompleteTransfer(const storage::TableStorage& table,
                        double completion_time);

  const SharedScanStats& stats() const { return stats_; }

 private:
  struct Transfer {
    double start_time = 0.0;
    double completion_time = 0.0;
    std::set<int> columns;
    uint64_t bytes = 0;
  };

  sim::SimClock* clock_;
  double share_window_s_;
  std::map<const storage::TableStorage*, Transfer> last_transfer_;
  SharedScanStats stats_;
};

}  // namespace ecodb::sched

#endif  // ECODB_SCHED_SHARED_SCAN_H_

// SessionManager: the concurrent multi-session serving core.
//
// Section 4 of the paper frames the server, not the query, as the unit of
// energy accounting: consolidation only pays off when many tenants share one
// metered box. The SessionManager turns EcoDb from a run-one-query facade
// into that box. It admits a seeded arrival trace (sim::ArrivalTrace) through
// the BatchingScheduler onto a fixed worker fleet, lets in-flight sessions
// overlap on the platform's devices, optionally rides scans on each other via
// the SharedScanManager — and bills every Joule the meter integrates to the
// session that caused it (DESIGN.md §12).
//
// Determinism contract: the admission schedule — including every shed,
// eviction, deadline kill, and power-cap regime change — is a pure function
// of (seed, arrival trace, ServingConfig). Replaying the same trace yields
// bit-identical decisions, per-session bills, and totals, at any dop
// (DESIGN.md §14: serving sessions schedule and bill on the
// serial-equivalent timeline).
//
// Conservation contract: sum(per-tenant bills) == the platform meter's
// integral over the serving window, exactly. Direct pulses (CPU settlement,
// DRAM traffic, device transfers, RAID reconstruction) bill the causing
// session; the background/idle residual is apportioned by in-flight time
// with the float remainder folded into the last-settled session that did
// real work, so the books balance by construction. Sessions that were shed,
// evicted, or killed mid-run keep every Joule they consumed on their bill —
// overload protection never un-bills work the meter already integrated.

#ifndef ECODB_SCHED_SESSION_H_
#define ECODB_SCHED_SESSION_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "exec/exec_context.h"
#include "exec/operator.h"
#include "power/platform.h"
#include "power/power_cap.h"
#include "sched/batching.h"
#include "sched/shared_scan.h"
#include "sim/arrival_trace.h"
#include "storage/table_storage.h"
#include "util/status.h"

namespace ecodb::sched {

/// How a session left the serving core.
enum class SessionTerminal {
  kCompleted = 0,  // ran to completion
  kDeadline = 1,   // killed cooperatively when its deadline passed
  kShed = 2,       // refused at release (backpressure or power cap)
  kEvicted = 3,    // pushed out of the bounded queue by a higher priority
};

/// Why a session was refused (kShed / kEvicted terminals).
enum class ShedCause {
  kNone = 0,
  kQueueFull = 1,  // bounded ready queue had no slot it could win
  kQueueSlo = 2,   // projected queue time exceeded the tenant SLO
  kTenantCap = 3,  // tenant already at its in-flight cap
  kPowerCap = 4,   // governor at the top of the degradation ladder
};

const char* SessionTerminalName(SessionTerminal terminal);
const char* ShedCauseName(ShedCause cause);

/// Overload-protection knobs. The defaults disable every mechanism, so a
/// default OverloadConfig reproduces the unprotected serving core
/// byte-identically.
struct OverloadConfig {
  /// Per-session deadline, relative to arrival (simulated seconds).
  /// Sessions still running past it are killed cooperatively at the next
  /// cancellation poll; partial work stays billed. Infinity disables.
  double relative_deadline_s = std::numeric_limits<double>::infinity();
  /// Bounded ready queue: a release finding the queue full sheds the
  /// lowest-priority loser (the arrival, or an evicted queued session when
  /// the arrival outranks it). SIZE_MAX disables.
  size_t max_queue_depth = SIZE_MAX;
  /// Per-tenant in-flight cap (queued + running). INT32_MAX disables.
  int per_tenant_inflight = INT32_MAX;
  /// Queue-time SLO: a release whose projected queue time exceeds this is
  /// shed at arrival instead of admitted late. Infinity disables.
  double queue_slo_s = std::numeric_limits<double>::infinity();
  /// Power-cap degradation ladder (see power/power_cap.h).
  power::PowerCapConfig power_cap;
};

/// Knobs of the serving core.
struct ServingConfig {
  /// Concurrent admission slots (the fixed worker fleet). Sessions beyond
  /// this queue for the earliest-free slot.
  int worker_fleet = 2;
  /// Admission gate: requests consolidate in time before release.
  BatchingConfig batching;
  /// > 0 enables shared scans: sessions admitted within this window of a
  /// compatible table transfer piggyback on it instead of re-reading.
  double share_window_s = 0.0;
  /// Execution knobs every admitted session runs with.
  exec::ExecOptions exec_options;
  /// Deadlines, backpressure, and power-cap degradation.
  OverloadConfig overload;
};

/// One session's energy bill: every component the meter integrated over the
/// serving window that this session is responsible for.
struct SessionBill {
  uint64_t session_id = 0;  // == the trace request index
  int tenant_id = 0;
  int priority = 0;
  int query_class = 0;

  double arrival_s = 0.0;  // trace arrival (absolute simulated time)
  double admit_s = 0.0;    // admission instant (slot grant; = decision
                           // instant for shed/evicted sessions)
  double end_s = 0.0;      // critical-path completion (or kill/shed instant)
  double queue_seconds = 0.0;  // admit_s - arrival_s
  /// Absolute deadline this session ran under (infinity = none).
  double deadline_s = std::numeric_limits<double>::infinity();

  /// How the session left the serving core, and why it was refused.
  SessionTerminal terminal = SessionTerminal::kCompleted;
  ShedCause shed_cause = ShedCause::kNone;

  // --- The bill (Joules). TotalJoules() terms; mutually exclusive. ---
  double cpu_joules = 0.0;         // CPU settlement pulse
  double dram_joules = 0.0;        // DRAM traffic pulses
  double io_joules = 0.0;          // device pulses, failed attempts included
  double fault_joules = 0.0;       // RAID XOR reconstruction pulses
  double background_joules = 0.0;  // fair share of idle/background power

  // --- Observability (NOT part of TotalJoules) ---
  /// Estimated retry cost, already covered by the real failed-attempt
  /// pulses inside io_joules; kept for fault-path visibility.
  double retry_joules = 0.0;
  uint32_t transient_errors = 0;
  uint32_t degraded_reads = 0;

  uint64_t rows_emitted = 0;
  /// True if any scan of this session rode another session's transfer.
  bool shared_scan = false;

  double TotalJoules() const {
    return cpu_joules + dram_joules + io_joules + fault_joules +
           background_joules;
  }
};

/// Per-tenant aggregation of session bills — the headline artifact.
struct TenantBill {
  int tenant_id = 0;
  uint64_t sessions = 0;
  uint64_t rows_emitted = 0;
  double queue_seconds = 0.0;
  double cpu_joules = 0.0;
  double dram_joules = 0.0;
  double io_joules = 0.0;
  double fault_joules = 0.0;
  double background_joules = 0.0;

  double TotalJoules() const {
    return cpu_joules + dram_joules + io_joules + fault_joules +
           background_joules;
  }
};

/// Everything one Serve() call produced.
struct ServingReport {
  /// Session bills in decision order (admissions and sheds interleave as
  /// they were decided on the simulated timeline).
  std::vector<SessionBill> sessions;
  /// Tenant bills in ascending tenant id.
  std::vector<TenantBill> tenants;

  // --- Overload-protection outcome counts. ---
  uint64_t sessions_completed = 0;
  uint64_t sessions_deadline = 0;
  uint64_t sessions_shed = 0;
  uint64_t sessions_evicted = 0;
  /// Degradation-ladder transitions, in simulated-time order (empty when
  /// the power cap is disabled).
  std::vector<power::GovernorEvent> governor_events;

  double window_start_s = 0.0;
  double window_end_s = 0.0;
  /// Per-channel meter integral over the serving window.
  power::EnergyBreakdown energy;
  /// energy.it_joules — what the wall meter saw.
  double total_joules = 0.0;
  /// Sum of session bills; == total_joules by construction.
  double billed_joules = 0.0;

  SharedScanStats shared_scans;
  size_t batches_dispatched = 0;
  /// FNV-1a over (session_id, tenant, admit bits, end bits, terminal,
  /// shed cause) in decision order; replay determinism is asserted on this.
  uint64_t admission_fingerprint = 0;

  double JoulesPerQuery() const {
    return sessions.empty() ? 0.0
                            : total_joules /
                                  static_cast<double>(sessions.size());
  }
};

/// Admits a seeded arrival trace onto a shared platform and produces the
/// per-session / per-tenant energy bills.
class SessionManager {
 public:
  /// A table scan a planned query will perform — declared up front so the
  /// serving core can route it through the SharedScanManager.
  struct ScanRequest {
    const storage::TableStorage* table = nullptr;
    std::vector<int> columns;  // empty = all
  };

  /// A query the factory planned for one trace request.
  struct PlannedQuery {
    exec::OperatorPtr root;
    std::vector<ScanRequest> scans;
  };

  /// Maps a trace request to an executable plan. Must be deterministic in
  /// the request (replay identity depends on it).
  using QueryFactory =
      std::function<StatusOr<PlannedQuery>(const sim::TraceRequest&)>;

  /// `platform` must outlive the manager.
  SessionManager(power::HardwarePlatform* platform, ServingConfig config);

  /// Runs the whole trace to completion and settles the books. Returns
  /// InvalidArgument for a malformed ServingConfig (worker_fleet < 1,
  /// negative windows, a bad power-cap ladder, ...); an empty trace is
  /// legal and yields an empty report over a zero-length window.
  StatusOr<ServingReport> Serve(const sim::ArrivalTrace& trace,
                                const QueryFactory& factory);

 private:
  power::HardwarePlatform* platform_;
  ServingConfig config_;
};

}  // namespace ecodb::sched

#endif  // ECODB_SCHED_SESSION_H_

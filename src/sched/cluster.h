// Cluster-level consolidation: energy proportionality from inelastic nodes.
//
// Section 2.4 of the paper: individual servers are far from energy
// proportional, but "recent work has considered using virtual machine
// migration and turning off servers to effect energy-proportionality
// [TWM+08]". This model captures the mechanism: a pool of identical,
// individually-inelastic nodes served under two dispatch policies —
//
//   kSpread — load-balance across every node (all stay powered), or
//   kPack   — consolidate onto the fewest nodes that fit the load and put
//             the rest to sleep, waking them as load grows.
//
// Packing makes the *cluster's* power curve nearly proportional even though
// each node's is flat; the price is wake-up latency and migration churn,
// which the trace simulation counts.

#ifndef ECODB_SCHED_CLUSTER_H_
#define ECODB_SCHED_CLUSTER_H_

#include <vector>

#include "power/proportionality.h"
#include "util/status.h"

namespace ecodb::sched {

struct ClusterNodeSpec {
  double idle_watts = 200.0;
  double peak_watts = 300.0;
  double sleep_watts = 10.0;
  /// Work units the node serves at full utilization.
  double capacity = 100.0;
  /// Seconds to bring a sleeping node back.
  double wake_seconds = 30.0;
  /// Extra Joules burned per wake transition.
  double wake_joules = 5000.0;
};

enum class DispatchPolicy { kSpread, kPack };

const char* DispatchPolicyName(DispatchPolicy policy);

class Cluster {
 public:
  Cluster(int nodes, ClusterNodeSpec spec);

  int nodes() const { return nodes_; }
  const ClusterNodeSpec& spec() const { return spec_; }
  double TotalCapacity() const { return spec_.capacity * nodes_; }

  /// Active (awake) nodes the policy uses at `offered_load` work units.
  int ActiveNodesFor(double offered_load, DispatchPolicy policy) const;

  /// Steady-state cluster power at `offered_load` under `policy`.
  double PowerAt(double offered_load, DispatchPolicy policy) const;

  /// Samples the cluster's power curve over utilization in [0, 1].
  power::PowerCurve CurveFor(DispatchPolicy policy, int samples = 50) const;

  /// Replays a load trace (one sample per `step_seconds`), with one step of
  /// hysteresis on shrink to avoid thrashing. Returns total energy and the
  /// number of node wake transitions.
  struct TraceResult {
    double joules = 0.0;
    int wake_events = 0;
    double avg_active_nodes = 0.0;
  };
  TraceResult SimulateTrace(const std::vector<double>& offered_loads,
                            double step_seconds,
                            DispatchPolicy policy) const;

 private:
  int nodes_;
  ClusterNodeSpec spec_;
};

}  // namespace ecodb::sched

#endif  // ECODB_SCHED_CLUSTER_H_

#include "sched/session.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <map>
#include <memory>
#include <set>

#include "exec/scan.h"
#include "exec/worker_pool.h"
#include "sim/event_queue.h"

namespace ecodb::sched {

namespace {

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t DoubleBits(double d) {
  uint64_t b = 0;
  static_assert(sizeof(b) == sizeof(d), "double must be 64-bit");
  std::memcpy(&b, &d, sizeof(b));
  return b;
}

/// Release order out of the admission gate: priority class first (0 = most
/// urgent), then trace order. Total order -> deterministic admission.
struct ReadyKey {
  int priority = 0;
  uint64_t index = 0;
  bool operator<(const ReadyKey& o) const {
    if (priority != o.priority) return priority < o.priority;
    return index < o.index;
  }
};

}  // namespace

SessionManager::SessionManager(power::HardwarePlatform* platform,
                               ServingConfig config)
    : platform_(platform), config_(config) {
  assert(config_.worker_fleet >= 1);
}

StatusOr<ServingReport> SessionManager::Serve(const sim::ArrivalTrace& trace,
                                              const QueryFactory& factory) {
  sim::SimClock* clock = platform_->clock();
  const double t0 = clock->now();
  const power::MeterSnapshot window_start =
      platform_->meter()->Snapshot();  // NOLINT-ECODB(EC1)

  sim::EventQueue events(clock);
  BatchingScheduler gate(&events, config_.batching);
  std::unique_ptr<SharedScanManager> sharing;
  if (config_.share_window_s > 0.0) {
    sharing =
        std::make_unique<SharedScanManager>(clock, config_.share_window_s);
  }
  // One fleet-owned pool reused by every session; a dop-1 pool spawns no
  // threads, so the single-slot configuration stays serial and cheap.
  exec::WorkerPool fleet(
      std::min(config_.exec_options.dop, platform_->cpu().total_cores()));

  // Arrivals flow trace event -> admission gate -> ready set. The gate may
  // consolidate releases in time (batching); within a release the ready set
  // orders by priority class, then trace order.
  std::set<ReadyKey> ready;
  for (const sim::TraceRequest& req : trace.requests) {
    events.ScheduleAt(t0 + req.arrival_s, [&gate, &ready, &req, clock] {
      gate.Submit([&ready, &req, clock] {
        ready.insert(ReadyKey{req.priority, req.index});
        // Release is instantaneous; the session bills its own work later.
        return clock->now();
      });
    });
  }

  struct Admission {
    const sim::TraceRequest* req = nullptr;
    double admit_s = 0.0;
    exec::QueryStats stats;
    bool shared_scan = false;
    std::unique_ptr<exec::ExecContext> ctx;
  };
  std::vector<Admission> admissions;
  admissions.reserve(trace.requests.size());

  // The fixed fleet: each slot runs one session at a time; a session takes
  // the earliest-free slot. Admissions therefore proceed in nondecreasing
  // admit-time order, which keeps every meter channel's event timeline
  // monotonic (devices additionally serialize on their own busy horizon).
  std::vector<double> slot_free(static_cast<size_t>(config_.worker_fleet), t0);

  while (admissions.size() < trace.requests.size()) {
    size_t slot = 0;
    for (size_t s = 1; s < slot_free.size(); ++s) {
      if (slot_free[s] < slot_free[slot]) slot = s;
    }
    events.RunUntil(std::max(slot_free[slot], clock->now()));
    if (ready.empty()) {
      // Nothing released yet: fast-forward to the next arrival/gate event.
      const double t_next = events.NextEventTime(-1.0);
      if (t_next < 0.0) {
        return Status::Internal(
            "serving stalled: requests remain but no arrival or gate event "
            "is pending");
      }
      events.RunUntil(t_next);
      continue;
    }
    const ReadyKey key = *ready.begin();
    ready.erase(ready.begin());
    const sim::TraceRequest& req = trace.requests[key.index];

    Admission adm;
    adm.req = &req;
    adm.admit_s = std::max(slot_free[slot], clock->now());

    // Every serving-path context carries the session identity (rule EC7):
    // anonymous contexts cannot be billed.
    adm.ctx = std::make_unique<exec::ExecContext>(
        platform_, config_.exec_options,
        exec::SessionTag{static_cast<int64_t>(req.index), req.tenant_id},
        adm.admit_s);
    adm.ctx->UseSharedWorkerPool(&fleet);

    ECODB_ASSIGN_OR_RETURN(PlannedQuery pq, factory(req));
    std::vector<const storage::TableStorage*> owned_tables;
    if (sharing != nullptr) {
      for (const ScanRequest& scan : pq.scans) {
        if (scan.table == nullptr) continue;
        ECODB_ASSIGN_OR_RETURN(const ScanTicket ticket,
                               sharing->AdmitScan(*scan.table, scan.columns));
        if (ticket.shared) {
          adm.ctx->StageSharedScan(scan.table, ticket.ready_time);
          adm.shared_scan = true;
        } else {
          owned_tables.push_back(scan.table);
        }
      }
    }

    ECODB_ASSIGN_OR_RETURN(exec::QueryResultSet rows,
                           exec::CollectAll(pq.root.get(), adm.ctx.get()));
    (void)rows;  // rows are computed for real; the bill is the deliverable
    adm.stats = adm.ctx->Complete();
    for (const storage::TableStorage* table : owned_tables) {
      // This session paid for the transfer; followers inside the share
      // window wait for its real completion.
      sharing->CompleteTransfer(*table, adm.ctx->io_completion());
    }
    slot_free[slot] = adm.stats.end_time;
    admissions.push_back(std::move(adm));
  }

  // Drain leftover gate timers (they dispatch empty queues).
  events.RunAll();

  // Settle CPU pulses in completion order: during serving the CPU channel
  // receives only these settlement pulses, so ordering by end time keeps
  // its event timeline monotonic even though sessions overlap.
  std::vector<size_t> settle_order(admissions.size());
  for (size_t i = 0; i < settle_order.size(); ++i) settle_order[i] = i;
  std::sort(settle_order.begin(), settle_order.end(), [&](size_t a, size_t b) {
    if (admissions[a].stats.end_time != admissions[b].stats.end_time) {
      return admissions[a].stats.end_time < admissions[b].stats.end_time;
    }
    return a < b;
  });
  double horizon = clock->now();
  for (size_t i : settle_order) {
    admissions[i].ctx->SettleCpu(&admissions[i].stats);
    horizon = std::max(horizon, admissions[i].stats.end_time);
  }
  // Close the window at the last completion so background power accrues
  // over the full serving interval.
  clock->AdvanceTo(horizon);  // NOLINT-ECODB(EC1)

  ServingReport report;
  report.window_start_s = t0;
  report.window_end_s = clock->now();
  report.energy = platform_->BreakdownBetween(
      window_start, platform_->meter()->Snapshot());  // NOLINT-ECODB(EC1)
  report.total_joules = report.energy.it_joules;

  // Background residual: whatever the meter integrated beyond the direct
  // pulses (idle floors, chassis, DRAM refresh). Apportioned by in-flight
  // seconds; the float remainder folds into the last-settled session so
  // billed == metered exactly.
  double direct_total = 0.0;
  double weight_total = 0.0;
  for (const Admission& adm : admissions) {
    direct_total += adm.stats.DirectJoules();
    weight_total += adm.stats.elapsed_seconds;
  }
  const double residual = report.total_joules - direct_total;
  std::vector<double> background(admissions.size(), 0.0);
  double apportioned = 0.0;
  for (size_t k = 0; k < settle_order.size(); ++k) {
    const size_t i = settle_order[k];
    if (k + 1 == settle_order.size()) {
      background[i] = residual - apportioned;
    } else {
      const double share =
          weight_total > 0.0
              ? residual * admissions[i].stats.elapsed_seconds / weight_total
              : residual / static_cast<double>(admissions.size());
      background[i] = share;
      apportioned += share;
    }
  }

  report.sessions.reserve(admissions.size());
  std::map<int, TenantBill> tenants;
  uint64_t fp = 1469598103934665603ULL;
  for (size_t i = 0; i < admissions.size(); ++i) {
    const Admission& adm = admissions[i];
    SessionBill bill;
    bill.session_id = adm.req->index;
    bill.tenant_id = adm.req->tenant_id;
    bill.priority = adm.req->priority;
    bill.query_class = adm.req->query_class;
    bill.arrival_s = t0 + adm.req->arrival_s;
    bill.admit_s = adm.admit_s;
    bill.end_s = adm.stats.end_time;
    bill.queue_seconds = bill.admit_s - bill.arrival_s;
    bill.cpu_joules = adm.stats.cpu_active_joules;
    bill.dram_joules = adm.stats.dram_joules;
    bill.io_joules = adm.stats.io_active_joules;
    bill.fault_joules = adm.stats.faults.reconstruct_joules;
    bill.background_joules = background[i];
    bill.retry_joules = adm.stats.faults.retry_joules;
    bill.transient_errors = adm.stats.faults.transient_errors;
    bill.degraded_reads = adm.stats.faults.degraded_reads;
    bill.rows_emitted = adm.stats.rows_emitted;
    bill.shared_scan = adm.shared_scan;

    fp = Fnv1a(fp, bill.session_id);
    fp = Fnv1a(fp, static_cast<uint64_t>(static_cast<int64_t>(bill.tenant_id)));
    fp = Fnv1a(fp, DoubleBits(bill.admit_s));
    fp = Fnv1a(fp, DoubleBits(bill.end_s));

    TenantBill& tb = tenants[bill.tenant_id];
    tb.tenant_id = bill.tenant_id;
    ++tb.sessions;
    tb.rows_emitted += bill.rows_emitted;
    tb.queue_seconds += bill.queue_seconds;
    tb.cpu_joules += bill.cpu_joules;
    tb.dram_joules += bill.dram_joules;
    tb.io_joules += bill.io_joules;
    tb.fault_joules += bill.fault_joules;
    tb.background_joules += bill.background_joules;

    report.billed_joules += bill.TotalJoules();
    report.sessions.push_back(bill);
  }
  report.admission_fingerprint = fp;
  for (const auto& [id, tb] : tenants) {
    (void)id;
    report.tenants.push_back(tb);
  }
  if (sharing != nullptr) report.shared_scans = sharing->stats();
  report.batches_dispatched = gate.batches_dispatched();
  return report;
}

}  // namespace ecodb::sched

#include "sched/session.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <set>

#include "exec/scan.h"
#include "exec/worker_pool.h"
#include "sim/event_queue.h"

namespace ecodb::sched {

namespace {

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t DoubleBits(double d) {
  uint64_t b = 0;
  static_assert(sizeof(b) == sizeof(d), "double must be 64-bit");
  std::memcpy(&b, &d, sizeof(b));
  return b;
}

/// Release order out of the admission gate: priority class first (0 = most
/// urgent), then trace order. Total order -> deterministic admission.
struct ReadyKey {
  int priority = 0;
  uint64_t index = 0;
  bool operator<(const ReadyKey& o) const {
    if (priority != o.priority) return priority < o.priority;
    return index < o.index;
  }
};

Status ValidateConfig(const ServingConfig& config) {
  if (config.worker_fleet < 1) {
    return Status::InvalidArgument("worker_fleet must be >= 1");
  }
  if (!(config.batching.window_s >= 0.0)) {
    return Status::InvalidArgument("batching window must be >= 0 s");
  }
  if (!(config.share_window_s >= 0.0)) {
    return Status::InvalidArgument("share window must be >= 0 s");
  }
  if (config.exec_options.dop < 1) {
    return Status::InvalidArgument("serving dop must be >= 1");
  }
  const OverloadConfig& ol = config.overload;
  if (!(ol.relative_deadline_s > 0.0)) {
    return Status::InvalidArgument("relative deadline must be > 0 s");
  }
  if (ol.max_queue_depth < 1) {
    return Status::InvalidArgument("max_queue_depth must be >= 1");
  }
  if (ol.per_tenant_inflight < 1) {
    return Status::InvalidArgument("per_tenant_inflight must be >= 1");
  }
  if (!(ol.queue_slo_s > 0.0)) {
    return Status::InvalidArgument("queue SLO must be > 0 s");
  }
  return power::PowerCapGovernor::Validate(ol.power_cap,
                                           config.worker_fleet);
}

}  // namespace

const char* SessionTerminalName(SessionTerminal terminal) {
  switch (terminal) {
    case SessionTerminal::kCompleted:
      return "completed";
    case SessionTerminal::kDeadline:
      return "deadline";
    case SessionTerminal::kShed:
      return "shed";
    case SessionTerminal::kEvicted:
      return "evicted";
  }
  return "unknown";
}

const char* ShedCauseName(ShedCause cause) {
  switch (cause) {
    case ShedCause::kNone:
      return "none";
    case ShedCause::kQueueFull:
      return "queue_full";
    case ShedCause::kQueueSlo:
      return "queue_slo";
    case ShedCause::kTenantCap:
      return "tenant_cap";
    case ShedCause::kPowerCap:
      return "power_cap";
  }
  return "unknown";
}

SessionManager::SessionManager(power::HardwarePlatform* platform,
                               ServingConfig config)
    : platform_(platform), config_(config) {}

StatusOr<ServingReport> SessionManager::Serve(const sim::ArrivalTrace& trace,
                                              const QueryFactory& factory) {
  ECODB_RETURN_IF_ERROR(ValidateConfig(config_));

  sim::SimClock* clock = platform_->clock();
  const double t0 = clock->now();
  const power::MeterSnapshot window_start =
      platform_->meter()->Snapshot();  // NOLINT-ECODB(EC1)

  sim::EventQueue events(clock);
  BatchingScheduler gate(&events, config_.batching);
  std::unique_ptr<SharedScanManager> sharing;
  if (config_.share_window_s > 0.0) {
    sharing =
        std::make_unique<SharedScanManager>(clock, config_.share_window_s);
  }
  std::unique_ptr<power::PowerCapGovernor> governor;
  if (config_.overload.power_cap.enabled) {
    governor = std::make_unique<power::PowerCapGovernor>(
        config_.overload.power_cap, config_.worker_fleet);
  }
  // One fleet-owned pool reused by every session; a dop-1 pool spawns no
  // threads, so the single-slot configuration stays serial and cheap.
  exec::WorkerPool fleet(
      std::min(config_.exec_options.dop, platform_->cpu().total_cores()));

  const OverloadConfig& ol = config_.overload;
  const auto DeadlineFor = [&](const sim::TraceRequest& req) {
    return std::isinf(ol.relative_deadline_s)
               ? std::numeric_limits<double>::infinity()
               : t0 + req.arrival_s + ol.relative_deadline_s;
  };

  /// Every trace request ends in exactly one Decision: executed (possibly
  /// killed mid-run) or refused at release. Appended in decision order on
  /// the simulated timeline; the report preserves this order.
  struct Decision {
    const sim::TraceRequest* req = nullptr;
    SessionTerminal terminal = SessionTerminal::kCompleted;
    ShedCause cause = ShedCause::kNone;
    double decision_s = 0.0;  // admit instant (or shed/evict instant)
    double deadline_s = std::numeric_limits<double>::infinity();
    bool executed = false;
    exec::QueryStats stats;  // all-zero for refused sessions
    bool shared_scan = false;
    std::unique_ptr<exec::ExecContext> ctx;
  };
  std::vector<Decision> decisions;
  decisions.reserve(trace.requests.size());

  // The fixed fleet: each slot runs one session at a time; a session takes
  // the earliest-free slot. Admissions therefore proceed in nondecreasing
  // admit-time order, which keeps every meter channel's event timeline
  // monotonic (devices additionally serialize on their own busy horizon).
  // Under power-cap fleet narrowing only the first `regime.fleet` slots
  // grant admissions.
  std::vector<double> slot_free(static_cast<size_t>(config_.worker_fleet), t0);
  std::set<ReadyKey> ready;

  // Completed-session service times feed the queue-time projection.
  uint64_t completed_runs = 0;
  double service_seconds_sum = 0.0;

  const auto Refuse = [&](const sim::TraceRequest& req,
                          SessionTerminal terminal, ShedCause cause,
                          double now) {
    Decision dec;
    dec.req = &req;
    dec.terminal = terminal;
    dec.cause = cause;
    dec.decision_s = now;
    dec.deadline_s = DeadlineFor(req);
    decisions.push_back(std::move(dec));
  };

  const auto ActiveFleet = [&]() {
    return governor != nullptr ? governor->regime().fleet
                               : config_.worker_fleet;
  };

  /// Projected queue time for a release at `now`: assign every queued
  /// request that would pop before it to the earliest active slot, each
  /// taking the running mean completed service time, then read off when
  /// the new request would reach a slot. Pure arithmetic over deterministic
  /// state — replay reproduces every projection bit-identically.
  const auto ProjectedQueueSeconds = [&](const ReadyKey& key, double now) {
    const int fleet_now = ActiveFleet();
    std::vector<double> frees(slot_free.begin(),
                              slot_free.begin() + fleet_now);
    for (double& f : frees) f = std::max(f, now);
    const double mean_service =
        completed_runs > 0
            ? service_seconds_sum / static_cast<double>(completed_runs)
            : 0.0;
    for (const ReadyKey& ahead : ready) {
      if (!(ahead < key)) break;  // set iterates in pop order
      *std::min_element(frees.begin(), frees.end()) += mean_service;
    }
    return *std::min_element(frees.begin(), frees.end()) - now;
  };

  const auto TenantInFlight = [&](int tenant_id, double now) {
    int count = 0;
    for (const ReadyKey& q : ready) {
      if (trace.requests[q.index].tenant_id == tenant_id) ++count;
    }
    for (const Decision& dec : decisions) {
      if (dec.executed && dec.req->tenant_id == tenant_id &&
          dec.stats.end_time > now) {
        ++count;
      }
    }
    return count;
  };

  /// Admission backpressure, applied when the gate releases a request:
  /// power-cap shed regime, then the tenant in-flight cap, then the
  /// queue-time SLO projection, then the bounded queue (where a
  /// higher-priority arrival evicts the lowest-priority queued loser).
  /// Refusals are decided here, at arrival, where they cost nothing — the
  /// whole point of backpressure over in-flight kills.
  const auto Release = [&](const sim::TraceRequest& req) {
    const double now = clock->now();
    if (governor != nullptr && governor->Observe(now).shed_new) {
      Refuse(req, SessionTerminal::kShed, ShedCause::kPowerCap, now);
      return;
    }
    if (TenantInFlight(req.tenant_id, now) >= ol.per_tenant_inflight) {
      Refuse(req, SessionTerminal::kShed, ShedCause::kTenantCap, now);
      return;
    }
    const ReadyKey key{req.priority, req.index};
    if (ProjectedQueueSeconds(key, now) > ol.queue_slo_s) {
      Refuse(req, SessionTerminal::kShed, ShedCause::kQueueSlo, now);
      return;
    }
    if (ready.size() >= ol.max_queue_depth) {
      const ReadyKey worst = *ready.rbegin();
      if (key < worst) {
        ready.erase(std::prev(ready.end()));
        Refuse(trace.requests[worst.index], SessionTerminal::kEvicted,
               ShedCause::kQueueFull, now);
      } else {
        Refuse(req, SessionTerminal::kShed, ShedCause::kQueueFull, now);
        return;
      }
    }
    ready.insert(key);
  };

  // Arrivals flow trace event -> admission gate -> backpressure -> ready
  // set. The gate may consolidate releases in time (batching); within a
  // release the ready set orders by priority class, then trace order.
  for (const sim::TraceRequest& req : trace.requests) {
    events.ScheduleAt(t0 + req.arrival_s, [&gate, &Release, &req, clock] {
      gate.Submit([&Release, &req, clock] {
        Release(req);
        // Release is instantaneous; the session bills its own work later.
        return clock->now();
      });
    });
  }

  while (decisions.size() < trace.requests.size()) {
    const int fleet_now = ActiveFleet();
    size_t slot = 0;
    for (size_t s = 1; s < static_cast<size_t>(fleet_now); ++s) {
      if (slot_free[s] < slot_free[slot]) slot = s;
    }
    events.RunUntil(std::max(slot_free[slot], clock->now()));
    if (decisions.size() >= trace.requests.size()) break;  // all refused
    if (ready.empty()) {
      // Nothing released yet: fast-forward to the next arrival/gate event.
      const double t_next = events.NextEventTime(-1.0);
      if (t_next < 0.0) {
        return Status::Internal(
            "serving stalled: requests remain but no arrival or gate event "
            "is pending");
      }
      events.RunUntil(t_next);
      continue;
    }
    const ReadyKey key = *ready.begin();
    ready.erase(ready.begin());
    const sim::TraceRequest& req = trace.requests[key.index];
    const double admit_s = std::max(slot_free[slot], clock->now());

    // Queue-SLO backstop: the release-time projection sheds most SLO
    // violators cheaply at arrival, but it is an estimate. A request whose
    // *actual* queue time has already blown the SLO when a slot finally
    // frees is shed here instead of admitted late — so every session that
    // runs was admitted within its SLO, by construction.
    if (admit_s - (t0 + req.arrival_s) > ol.queue_slo_s) {
      Refuse(req, SessionTerminal::kShed, ShedCause::kQueueSlo, admit_s);
      continue;
    }

    Decision dec;
    dec.req = &req;
    dec.executed = true;
    dec.decision_s = admit_s;
    dec.deadline_s = DeadlineFor(req);

    // The admitted session runs under the regime in force at its admission
    // instant: the governor may push it to a slower, more efficient
    // P-state before it ever sheds work.
    exec::ExecOptions session_options = config_.exec_options;
    if (governor != nullptr) {
      const power::GovernorRegime regime = governor->Observe(dec.decision_s);
      session_options.pstate =
          std::min(session_options.pstate + regime.pstate_delta,
                   platform_->cpu().num_pstates() - 1);
    }

    // Every serving-path context carries the session identity (rule EC7):
    // anonymous contexts cannot be billed.
    dec.ctx = std::make_unique<exec::ExecContext>(
        platform_, session_options,
        exec::SessionTag{static_cast<int64_t>(req.index), req.tenant_id},
        dec.decision_s);
    dec.ctx->UseSharedWorkerPool(&fleet);
    exec::CancelToken token;
    token.deadline_s = dec.deadline_s;
    dec.ctx->set_cancel_token(token);

    ECODB_ASSIGN_OR_RETURN(PlannedQuery pq, factory(req));
    std::vector<const storage::TableStorage*> owned_tables;
    if (sharing != nullptr) {
      for (const ScanRequest& scan : pq.scans) {
        if (scan.table == nullptr) continue;
        ECODB_ASSIGN_OR_RETURN(const ScanTicket ticket,
                               sharing->AdmitScan(*scan.table, scan.columns));
        if (ticket.shared) {
          dec.ctx->StageSharedScan(scan.table, ticket.ready_time);
          dec.shared_scan = true;
        } else {
          owned_tables.push_back(scan.table);
        }
      }
    }

    StatusOr<exec::QueryResultSet> rows =
        exec::CollectAll(pq.root.get(), dec.ctx.get());
    if (rows.ok()) {
      dec.terminal = SessionTerminal::kCompleted;
    } else if (rows.status().code() == StatusCode::kDeadlineExceeded) {
      // Cooperative kill: the operators stopped at a poll boundary; the
      // work already charged stays on this session's bill.
      dec.terminal = SessionTerminal::kDeadline;
    } else if (rows.status().code() == StatusCode::kShed) {
      dec.terminal = SessionTerminal::kShed;
      dec.cause = ShedCause::kPowerCap;
    } else {
      return rows.status();
    }
    dec.stats = dec.ctx->Complete();
    for (const storage::TableStorage* table : owned_tables) {
      // This session paid for the transfer (in part, if it was killed
      // mid-flight); followers inside the share window wait for whatever
      // the device actually completed — the transfer is billed exactly
      // once either way.
      sharing->CompleteTransfer(*table, dec.ctx->io_completion());
    }
    slot_free[slot] = dec.stats.end_time;
    if (dec.terminal == SessionTerminal::kCompleted) {
      ++completed_runs;
      service_seconds_sum += dec.stats.end_time - dec.decision_s;
    }
    if (governor != nullptr) {
      // The governor watches the windowed rate of billed Joules — the same
      // quantity the bills settle — so its ladder is as deterministic and
      // dop-invariant as the bills themselves.
      governor->RecordEnergy(dec.stats.end_time, dec.stats.DirectJoules());
    }
    decisions.push_back(std::move(dec));
  }

  // Drain leftover gate timers (they dispatch empty queues and may still
  // refuse late releases against a full ladder).
  events.RunAll();

  // Settle CPU pulses in completion order: during serving the CPU channel
  // receives only these settlement pulses, so ordering by end time keeps
  // its event timeline monotonic even though sessions overlap.
  std::vector<size_t> settle_order;
  settle_order.reserve(decisions.size());
  for (size_t i = 0; i < decisions.size(); ++i) {
    if (decisions[i].executed) settle_order.push_back(i);
  }
  std::sort(settle_order.begin(), settle_order.end(), [&](size_t a, size_t b) {
    if (decisions[a].stats.end_time != decisions[b].stats.end_time) {
      return decisions[a].stats.end_time < decisions[b].stats.end_time;
    }
    return a < b;
  });
  double horizon = clock->now();
  for (size_t i : settle_order) {
    decisions[i].ctx->SettleCpu(&decisions[i].stats);
    horizon = std::max(horizon, decisions[i].stats.end_time);
  }
  // Close the window at the last completion so background power accrues
  // over the full serving interval.
  clock->AdvanceTo(horizon);  // NOLINT-ECODB(EC1)

  ServingReport report;
  report.window_start_s = t0;
  report.window_end_s = clock->now();
  report.energy = platform_->BreakdownBetween(
      window_start, platform_->meter()->Snapshot());  // NOLINT-ECODB(EC1)
  report.total_joules = report.energy.it_joules;

  // Background residual: whatever the meter integrated beyond the direct
  // pulses (idle floors, chassis, DRAM refresh). Apportioned by in-flight
  // seconds; the float remainder folds into the last-settled session that
  // did timed work, so billed == metered exactly. When nothing ran (every
  // request shed before execution) the residual splits equally across the
  // refused sessions — a shed request still carries its share of keeping
  // the box on.
  double direct_total = 0.0;
  double weight_total = 0.0;
  for (const Decision& dec : decisions) {
    direct_total += dec.stats.DirectJoules();
    weight_total += dec.stats.elapsed_seconds;
  }
  const double residual = report.total_joules - direct_total;
  std::vector<double> background(decisions.size(), 0.0);
  if (!decisions.empty()) {
    size_t fold = decisions.size() - 1;  // all-refused fallback
    if (weight_total > 0.0) {
      for (size_t i : settle_order) {
        if (decisions[i].stats.elapsed_seconds > 0.0) fold = i;
      }
    }
    double apportioned = 0.0;
    for (size_t i = 0; i < decisions.size(); ++i) {
      if (i == fold) continue;
      const double share =
          weight_total > 0.0
              ? residual * decisions[i].stats.elapsed_seconds / weight_total
              : residual / static_cast<double>(decisions.size());
      background[i] = share;
      apportioned += share;
    }
    background[fold] = residual - apportioned;
  }

  report.sessions.reserve(decisions.size());
  std::map<int, TenantBill> tenants;
  uint64_t fp = 1469598103934665603ULL;
  for (size_t i = 0; i < decisions.size(); ++i) {
    const Decision& dec = decisions[i];
    SessionBill bill;
    bill.session_id = dec.req->index;
    bill.tenant_id = dec.req->tenant_id;
    bill.priority = dec.req->priority;
    bill.query_class = dec.req->query_class;
    bill.arrival_s = t0 + dec.req->arrival_s;
    bill.admit_s = dec.decision_s;
    bill.end_s = dec.executed ? dec.stats.end_time : dec.decision_s;
    bill.queue_seconds = bill.admit_s - bill.arrival_s;
    bill.deadline_s = dec.deadline_s;
    bill.terminal = dec.terminal;
    bill.shed_cause = dec.cause;
    bill.cpu_joules = dec.stats.cpu_active_joules;
    bill.dram_joules = dec.stats.dram_joules;
    bill.io_joules = dec.stats.io_active_joules;
    bill.fault_joules = dec.stats.faults.reconstruct_joules;
    bill.background_joules = background[i];
    bill.retry_joules = dec.stats.faults.retry_joules;
    bill.transient_errors = dec.stats.faults.transient_errors;
    bill.degraded_reads = dec.stats.faults.degraded_reads;
    bill.rows_emitted = dec.stats.rows_emitted;
    bill.shared_scan = dec.shared_scan;

    fp = Fnv1a(fp, bill.session_id);
    fp = Fnv1a(fp, static_cast<uint64_t>(static_cast<int64_t>(bill.tenant_id)));
    fp = Fnv1a(fp, DoubleBits(bill.admit_s));
    fp = Fnv1a(fp, DoubleBits(bill.end_s));
    fp = Fnv1a(fp, static_cast<uint64_t>(bill.terminal));
    fp = Fnv1a(fp, static_cast<uint64_t>(bill.shed_cause));

    switch (bill.terminal) {
      case SessionTerminal::kCompleted:
        ++report.sessions_completed;
        break;
      case SessionTerminal::kDeadline:
        ++report.sessions_deadline;
        break;
      case SessionTerminal::kShed:
        ++report.sessions_shed;
        break;
      case SessionTerminal::kEvicted:
        ++report.sessions_evicted;
        break;
    }

    TenantBill& tb = tenants[bill.tenant_id];
    tb.tenant_id = bill.tenant_id;
    ++tb.sessions;
    tb.rows_emitted += bill.rows_emitted;
    tb.queue_seconds += bill.queue_seconds;
    tb.cpu_joules += bill.cpu_joules;
    tb.dram_joules += bill.dram_joules;
    tb.io_joules += bill.io_joules;
    tb.fault_joules += bill.fault_joules;
    tb.background_joules += bill.background_joules;

    report.billed_joules += bill.TotalJoules();
    report.sessions.push_back(bill);
  }
  report.admission_fingerprint = fp;
  for (const auto& [id, tb] : tenants) {
    (void)id;
    report.tenants.push_back(tb);
  }
  if (sharing != nullptr) report.shared_scans = sharing->stats();
  report.batches_dispatched = gate.batches_dispatched();
  if (governor != nullptr) report.governor_events = governor->events();
  return report;
}

}  // namespace ecodb::sched

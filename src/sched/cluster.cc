#include "sched/cluster.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ecodb::sched {

const char* DispatchPolicyName(DispatchPolicy policy) {
  switch (policy) {
    case DispatchPolicy::kSpread:
      return "spread";
    case DispatchPolicy::kPack:
      return "pack";
  }
  return "unknown";
}

Cluster::Cluster(int nodes, ClusterNodeSpec spec)
    : nodes_(nodes), spec_(spec) {
  assert(nodes_ >= 1);
  assert(spec_.capacity > 0);
}

int Cluster::ActiveNodesFor(double offered_load,
                            DispatchPolicy policy) const {
  if (policy == DispatchPolicy::kSpread) return nodes_;
  const double clamped =
      std::clamp(offered_load, 0.0, TotalCapacity());
  // Packing keeps at least one node awake to take arrivals.
  return std::max(
      1, static_cast<int>(std::ceil(clamped / spec_.capacity - 1e-12)));
}

double Cluster::PowerAt(double offered_load, DispatchPolicy policy) const {
  const double clamped = std::clamp(offered_load, 0.0, TotalCapacity());
  const int active = ActiveNodesFor(clamped, policy);
  const double util_per_active =
      std::min(1.0, clamped / (static_cast<double>(active) * spec_.capacity));
  const double active_watts =
      spec_.idle_watts +
      (spec_.peak_watts - spec_.idle_watts) * util_per_active;
  const int sleeping = nodes_ - active;
  return static_cast<double>(active) * active_watts +
         static_cast<double>(sleeping) * spec_.sleep_watts;
}

power::PowerCurve Cluster::CurveFor(DispatchPolicy policy,
                                    int samples) const {
  return power::PowerCurve::Sample(
      [this, policy](double u) {
        return PowerAt(u * TotalCapacity(), policy);
      },
      samples);
}

Cluster::TraceResult Cluster::SimulateTrace(
    const std::vector<double>& offered_loads, double step_seconds,
    DispatchPolicy policy) const {
  TraceResult result;
  int active = policy == DispatchPolicy::kSpread ? nodes_ : 1;
  double active_node_steps = 0.0;
  for (double load : offered_loads) {
    const int wanted = ActiveNodesFor(load, policy);
    if (wanted > active) {
      result.wake_events += wanted - active;
      result.joules += spec_.wake_joules * (wanted - active);
      active = wanted;
    } else if (wanted < active - 1) {
      // One step of hysteresis: shrink by at most the excess minus one,
      // keeping a warm spare against the next tick's growth.
      active = wanted + 1;
    }
    const double util = std::min(
        1.0, load / (static_cast<double>(active) * spec_.capacity));
    const double watts =
        static_cast<double>(active) *
            (spec_.idle_watts +
             (spec_.peak_watts - spec_.idle_watts) * util) +
        static_cast<double>(nodes_ - active) * spec_.sleep_watts;
    result.joules += watts * step_seconds;
    active_node_steps += active;
  }
  if (!offered_loads.empty()) {
    result.avg_active_nodes =
        active_node_steps / static_cast<double>(offered_loads.size());
  }
  return result;
}

}  // namespace ecodb::sched

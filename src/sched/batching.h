// Request batching: consolidating resource use in time.
//
// Section 4.2: "we expect to see workload management policies that encourage
// identifiable periods of low and high activity — perhaps batching requests
// at the cost of increased latency." The scheduler holds arriving requests
// for up to `window_s` (or until `max_batch` accumulate), then runs them
// back-to-back. Between batches devices see long idle periods that a
// spin-down policy can exploit; the cost is queueing latency, which the
// scheduler records per request.

#ifndef ECODB_SCHED_BATCHING_H_
#define ECODB_SCHED_BATCHING_H_

#include <deque>
#include <functional>

#include "sim/event_queue.h"
#include "util/histogram.h"

namespace ecodb::sched {

struct BatchingConfig {
  /// 0 disables batching (requests run on arrival).
  double window_s = 0.0;
  size_t max_batch = SIZE_MAX;
};

class BatchingScheduler {
 public:
  /// A request's work function runs at dispatch time and returns its
  /// completion time (simulated), letting the scheduler account latency.
  using Work = std::function<double()>;

  /// `events` must outlive the scheduler.
  BatchingScheduler(sim::EventQueue* events, BatchingConfig config);

  /// Enqueues work arriving now.
  void Submit(Work work);

  /// Latency (arrival -> completion) distribution of finished requests.
  const Histogram& latency() const { return latency_; }
  size_t completed() const { return completed_; }
  size_t batches_dispatched() const { return batches_; }

 private:
  void Dispatch();

  struct Pending {
    double arrival;
    Work work;
  };

  sim::EventQueue* events_;
  BatchingConfig config_;
  std::deque<Pending> queue_;
  uint64_t window_timer_ = 0;
  Histogram latency_;
  size_t completed_ = 0;
  size_t batches_ = 0;
};

}  // namespace ecodb::sched

#endif  // ECODB_SCHED_BATCHING_H_

#include "sched/prefetcher.h"

#include <algorithm>
#include <cassert>

namespace ecodb::sched {

BurstyPrefetcher::BurstyPrefetcher(sim::SimClock* clock,
                                   storage::StorageDevice* device,
                                   uint64_t page_bytes, int burst_pages)
    : clock_(clock),
      device_(device),
      page_bytes_(page_bytes),
      burst_pages_(burst_pages) {
  assert(burst_pages_ >= 1);
}

StatusOr<double> BurstyPrefetcher::NextPage() {
  ++stats_.pages_served;
  if (buffered_ > 0) {
    --buffered_;
    return clock_->now();
  }
  // Buffer empty: fetch the next burst in one sequential device visit.
  const double now = clock_->now();
  if (last_burst_end_ >= 0.0) {
    stats_.longest_idle_gap_s =
        std::max(stats_.longest_idle_gap_s, now - last_burst_end_);
  }
  // The prefetcher models device-level burst shaping outside any query's
  // ExecContext, so it bills the device it manages directly.
  ECODB_ASSIGN_OR_RETURN(
      const storage::IoResult io,
      device_->SubmitRead(  // NOLINT-ECODB(EC1)
          now, page_bytes_ * static_cast<uint64_t>(burst_pages_),
          /*sequential=*/true));
  last_burst_end_ = io.completion_time;
  ++stats_.device_bursts;
  buffered_ = burst_pages_ - 1;
  return io.completion_time;
}

}  // namespace ecodb::sched

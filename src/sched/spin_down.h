// Disk spin-down policies.
//
// Section 4.2: hardware "will require a certain minimum-length idle period
// to enter in a suspended mode", and "the switching costs across states can
// easily exceed energy savings". The manager arms an idle timer after each
// access; when it fires, the device spins down. Two policies:
//   * kFixedTimeout — spin down after a configured idle interval.
//   * kBreakEven    — timeout = the device's own break-even idle time (the
//     competitive 2-approximation from the power-management literature).

#ifndef ECODB_SCHED_SPIN_DOWN_H_
#define ECODB_SCHED_SPIN_DOWN_H_

#include <cstdint>

#include "sim/event_queue.h"
#include "storage/device.h"

namespace ecodb::sched {

enum class SpinDownPolicy {
  kNever,
  kFixedTimeout,
  kBreakEven,
};

const char* SpinDownPolicyName(SpinDownPolicy policy);

class DiskPowerManager {
 public:
  /// `events` and `device` must outlive the manager.
  DiskPowerManager(sim::EventQueue* events, storage::StorageDevice* device,
                   SpinDownPolicy policy, double fixed_timeout_s = 10.0);

  /// Effective idle timeout under the configured policy.
  double TimeoutSeconds() const;

  /// Call after every device access completes (at simulated time `t`).
  /// Re-arms the spin-down timer.
  void NotifyAccessEnd(double t);

  /// Number of spin-downs this manager initiated.
  int spin_downs() const { return spin_downs_; }

 private:
  void Arm(double t);

  sim::EventQueue* events_;
  storage::StorageDevice* device_;
  SpinDownPolicy policy_;
  double fixed_timeout_s_;
  double last_access_end_ = 0.0;
  uint64_t pending_timer_ = 0;
  int spin_downs_ = 0;
};

}  // namespace ecodb::sched

#endif  // ECODB_SCHED_SPIN_DOWN_H_

#include "sched/spin_down.h"

#include <algorithm>

namespace ecodb::sched {

const char* SpinDownPolicyName(SpinDownPolicy policy) {
  switch (policy) {
    case SpinDownPolicy::kNever:
      return "never";
    case SpinDownPolicy::kFixedTimeout:
      return "fixed-timeout";
    case SpinDownPolicy::kBreakEven:
      return "break-even";
  }
  return "unknown";
}

DiskPowerManager::DiskPowerManager(sim::EventQueue* events,
                                   storage::StorageDevice* device,
                                   SpinDownPolicy policy,
                                   double fixed_timeout_s)
    : events_(events),
      device_(device),
      policy_(policy),
      fixed_timeout_s_(fixed_timeout_s) {}

double DiskPowerManager::TimeoutSeconds() const {
  switch (policy_) {
    case SpinDownPolicy::kNever:
      return 1e300;
    case SpinDownPolicy::kFixedTimeout:
      return fixed_timeout_s_;
    case SpinDownPolicy::kBreakEven:
      return device_->BreakEvenIdleSeconds();
  }
  return 1e300;
}

void DiskPowerManager::NotifyAccessEnd(double t) {
  last_access_end_ = std::max(last_access_end_, t);
  if (policy_ == SpinDownPolicy::kNever) return;
  Arm(last_access_end_);
}

void DiskPowerManager::Arm(double t) {
  if (pending_timer_ != 0) {
    events_->Cancel(pending_timer_);
    pending_timer_ = 0;
  }
  const double timeout = TimeoutSeconds();
  if (timeout >= 1e299) return;
  const double fire_at = std::max(t + timeout, events_->clock()->now());
  pending_timer_ = events_->ScheduleAt(fire_at, [this, t] {
    pending_timer_ = 0;
    // Only spin down if no access intervened since this timer was armed.
    if (last_access_end_ <= t && !device_->IsPoweredDown()) {
      device_->PowerDown(events_->clock()->now());
      ++spin_downs_;
    }
  });
}

}  // namespace ecodb::sched

// B+tree secondary index over int64 keys.
//
// A genuine B+tree — sorted internal separators, linked leaves, node
// splits — mapping key -> row ids (duplicates allowed). Query processing
// uses it as the alternative access path to a full scan: a lookup touches
// `height()` index pages plus the qualifying leaves, so the optimizer's
// old latency-based access-path rules gain an energy twin (Section 5.1 of
// the paper: re-evaluating access paths under the energy lens).
//
// Deletes tolerate under-full nodes (no rebalancing); Validate() checks the
// ordering, uniform-depth, and leaf-chain invariants and is exercised by
// randomized property tests.

#ifndef ECODB_STORAGE_BTREE_H_
#define ECODB_STORAGE_BTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "util/status.h"

namespace ecodb::storage {

class BTreeIndex {
 public:
  /// `fanout` bounds entries per node (>= 4). A node splits when it would
  /// exceed the bound.
  explicit BTreeIndex(int fanout = 64);
  ~BTreeIndex();

  BTreeIndex(const BTreeIndex&) = delete;
  BTreeIndex& operator=(const BTreeIndex&) = delete;

  void Insert(int64_t key, uint64_t row_id);

  /// Row ids whose key equals `key` (ascending row-id order of insertion
  /// within the leaf chain).
  std::vector<uint64_t> Lookup(int64_t key) const;

  /// Row ids with lo <= key <= hi, in key order.
  std::vector<uint64_t> RangeScan(int64_t lo, int64_t hi) const;

  /// Removes one (key, row_id) entry. Returns false if absent.
  bool Erase(int64_t key, uint64_t row_id);

  size_t size() const { return size_; }
  int height() const;
  size_t node_count() const { return node_count_; }
  int fanout() const { return fanout_; }

  /// Index pages a point lookup touches (root-to-leaf path).
  size_t PagesForLookup() const { return static_cast<size_t>(height()); }

  /// Index pages a range scan touches: path + qualifying leaf chain.
  size_t PagesForRange(int64_t lo, int64_t hi) const;

  /// Verifies structural invariants; Internal error describing the first
  /// violation otherwise.
  Status Validate() const;

 private:
  struct Node;

  Node* FindLeaf(int64_t key) const;
  void InsertIntoParent(Node* node, int64_t separator, Node* sibling);
  Status ValidateNode(const Node* node, int depth, int leaf_depth,
                      int64_t lo_bound, bool has_lo, int64_t hi_bound,
                      bool has_hi) const;

  int fanout_;
  Node* root_;
  size_t size_ = 0;
  size_t node_count_ = 0;
};

}  // namespace ecodb::storage

#endif  // ECODB_STORAGE_BTREE_H_

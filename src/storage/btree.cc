#include "storage/btree.h"

#include <algorithm>
#include <cassert>

namespace ecodb::storage {

struct BTreeIndex::Node {
  bool leaf = true;
  Node* parent = nullptr;
  std::vector<int64_t> keys;
  std::vector<Node*> children;   // internal nodes: keys.size() + 1 entries
  std::vector<uint64_t> values;  // leaves: parallel to keys
  Node* next = nullptr;          // leaf chain
};

BTreeIndex::BTreeIndex(int fanout) : fanout_(fanout) {
  assert(fanout_ >= 4);
  root_ = new Node();
  node_count_ = 1;
}

BTreeIndex::~BTreeIndex() {
  // Iterative post-order delete.
  std::vector<Node*> stack = {root_};
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    for (Node* c : n->children) stack.push_back(c);
    delete n;
  }
}

int BTreeIndex::height() const {
  int h = 1;
  const Node* n = root_;
  while (!n->leaf) {
    n = n->children[0];
    ++h;
  }
  return h;
}

BTreeIndex::Node* BTreeIndex::FindLeaf(int64_t key) const {
  // Lower-bound descent: duplicates equal to a separator are reachable by
  // walking the leaf chain rightward from here.
  Node* n = root_;
  while (!n->leaf) {
    const size_t idx = static_cast<size_t>(
        std::lower_bound(n->keys.begin(), n->keys.end(), key) -
        n->keys.begin());
    n = n->children[idx];
  }
  return n;
}

void BTreeIndex::Insert(int64_t key, uint64_t row_id) {
  // Upper-bound descent so new duplicates append after existing ones.
  Node* n = root_;
  while (!n->leaf) {
    const size_t idx = static_cast<size_t>(
        std::upper_bound(n->keys.begin(), n->keys.end(), key) -
        n->keys.begin());
    n = n->children[idx];
  }
  const size_t pos = static_cast<size_t>(
      std::upper_bound(n->keys.begin(), n->keys.end(), key) -
      n->keys.begin());
  n->keys.insert(n->keys.begin() + static_cast<long>(pos), key);
  n->values.insert(n->values.begin() + static_cast<long>(pos), row_id);
  ++size_;

  if (static_cast<int>(n->keys.size()) <= fanout_) return;

  // Leaf split: right sibling takes the upper half.
  Node* right = new Node();
  ++node_count_;
  right->leaf = true;
  const size_t mid = n->keys.size() / 2;
  right->keys.assign(n->keys.begin() + static_cast<long>(mid), n->keys.end());
  right->values.assign(n->values.begin() + static_cast<long>(mid),
                       n->values.end());
  n->keys.resize(mid);
  n->values.resize(mid);
  right->next = n->next;
  n->next = right;
  InsertIntoParent(n, right->keys.front(), right);
}

void BTreeIndex::InsertIntoParent(Node* node, int64_t separator,
                                  Node* sibling) {
  if (node == root_) {
    Node* new_root = new Node();
    ++node_count_;
    new_root->leaf = false;
    new_root->keys = {separator};
    new_root->children = {node, sibling};
    node->parent = new_root;
    sibling->parent = new_root;
    root_ = new_root;
    return;
  }
  Node* parent = node->parent;
  const size_t pos = static_cast<size_t>(
      std::upper_bound(parent->keys.begin(), parent->keys.end(), separator) -
      parent->keys.begin());
  parent->keys.insert(parent->keys.begin() + static_cast<long>(pos),
                      separator);
  parent->children.insert(
      parent->children.begin() + static_cast<long>(pos) + 1, sibling);
  sibling->parent = parent;

  if (static_cast<int>(parent->keys.size()) <= fanout_) return;

  // Internal split: the middle separator moves up.
  Node* right = new Node();
  ++node_count_;
  right->leaf = false;
  const size_t mid = parent->keys.size() / 2;
  const int64_t promote = parent->keys[mid];
  right->keys.assign(parent->keys.begin() + static_cast<long>(mid) + 1,
                     parent->keys.end());
  right->children.assign(
      parent->children.begin() + static_cast<long>(mid) + 1,
      parent->children.end());
  for (Node* c : right->children) c->parent = right;
  parent->keys.resize(mid);
  parent->children.resize(mid + 1);
  InsertIntoParent(parent, promote, right);
}

std::vector<uint64_t> BTreeIndex::Lookup(int64_t key) const {
  std::vector<uint64_t> out;
  const Node* leaf = FindLeaf(key);
  while (leaf != nullptr) {
    const size_t begin = static_cast<size_t>(
        std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key) -
        leaf->keys.begin());
    for (size_t i = begin; i < leaf->keys.size(); ++i) {
      if (leaf->keys[i] != key) return out;
      out.push_back(leaf->values[i]);
    }
    leaf = leaf->next;  // duplicates may continue in the next leaf
  }
  return out;
}

std::vector<uint64_t> BTreeIndex::RangeScan(int64_t lo, int64_t hi) const {
  std::vector<uint64_t> out;
  if (lo > hi) return out;
  const Node* leaf = FindLeaf(lo);
  while (leaf != nullptr) {
    const size_t begin = static_cast<size_t>(
        std::lower_bound(leaf->keys.begin(), leaf->keys.end(), lo) -
        leaf->keys.begin());
    for (size_t i = begin; i < leaf->keys.size(); ++i) {
      if (leaf->keys[i] > hi) return out;
      out.push_back(leaf->values[i]);
    }
    leaf = leaf->next;
  }
  return out;
}

bool BTreeIndex::Erase(int64_t key, uint64_t row_id) {
  Node* leaf = FindLeaf(key);
  while (leaf != nullptr) {
    const size_t begin = static_cast<size_t>(
        std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key) -
        leaf->keys.begin());
    for (size_t i = begin; i < leaf->keys.size(); ++i) {
      if (leaf->keys[i] != key) return false;
      if (leaf->values[i] == row_id) {
        leaf->keys.erase(leaf->keys.begin() + static_cast<long>(i));
        leaf->values.erase(leaf->values.begin() + static_cast<long>(i));
        --size_;
        return true;  // under-full leaves are tolerated by design
      }
    }
    leaf = leaf->next;  // matching row id may sit in a later duplicate run
  }
  return false;
}

size_t BTreeIndex::PagesForRange(int64_t lo, int64_t hi) const {
  if (lo > hi) return PagesForLookup();
  size_t pages = PagesForLookup();  // root-to-first-leaf path
  const Node* leaf = FindLeaf(lo);
  // Count additional leaves the chain walk touches.
  while (leaf != nullptr) {
    const bool continues = !leaf->keys.empty() && leaf->keys.back() <= hi &&
                           leaf->next != nullptr;
    if (!continues) break;
    ++pages;
    leaf = leaf->next;
  }
  return pages;
}

Status BTreeIndex::ValidateNode(const Node* node, int depth, int leaf_depth,
                                int64_t lo_bound, bool has_lo,
                                int64_t hi_bound, bool has_hi) const {
  if (!std::is_sorted(node->keys.begin(), node->keys.end())) {
    return Status::Internal("node keys out of order");
  }
  for (int64_t k : node->keys) {
    if (has_lo && k < lo_bound) return Status::Internal("key below bound");
    if (has_hi && k > hi_bound) return Status::Internal("key above bound");
  }
  if (node->leaf) {
    if (depth != leaf_depth) {
      return Status::Internal("leaves at non-uniform depth");
    }
    if (node->keys.size() != node->values.size()) {
      return Status::Internal("leaf key/value arity mismatch");
    }
    return Status::OK();
  }
  if (node->children.size() != node->keys.size() + 1) {
    return Status::Internal("internal node child arity mismatch");
  }
  if (static_cast<int>(node->keys.size()) > fanout_) {
    return Status::Internal("node overflows fanout");
  }
  for (size_t i = 0; i < node->children.size(); ++i) {
    if (node->children[i]->parent != node) {
      return Status::Internal("broken parent pointer");
    }
    const bool child_has_lo = i > 0 || has_lo;
    const int64_t child_lo = i > 0 ? node->keys[i - 1] : lo_bound;
    const bool child_has_hi = i < node->keys.size() || has_hi;
    const int64_t child_hi =
        i < node->keys.size() ? node->keys[i] : hi_bound;
    ECODB_RETURN_IF_ERROR(ValidateNode(node->children[i], depth + 1,
                                       leaf_depth, child_lo, child_has_lo,
                                       child_hi, child_has_hi));
  }
  return Status::OK();
}

Status BTreeIndex::Validate() const {
  ECODB_RETURN_IF_ERROR(
      ValidateNode(root_, 1, height(), 0, false, 0, false));
  // The leaf chain visits every entry in non-decreasing key order.
  const Node* n = root_;
  while (!n->leaf) n = n->children[0];
  size_t counted = 0;
  int64_t prev = INT64_MIN;
  while (n != nullptr) {
    for (int64_t k : n->keys) {
      if (k < prev) return Status::Internal("leaf chain out of order");
      prev = k;
      ++counted;
    }
    n = n->next;
  }
  if (counted != size_) {
    return Status::Internal("leaf chain size mismatch");
  }
  return Status::OK();
}

}  // namespace ecodb::storage

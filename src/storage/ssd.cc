#include "storage/ssd.h"

#include <algorithm>
#include <cassert>

namespace ecodb::storage {

SsdDevice::SsdDevice(std::string name, const power::SsdSpec& spec,
                     power::EnergyMeter* meter)
    : name_(std::move(name)), spec_(spec), meter_(meter) {
  assert(power::ValidateSsdSpec(spec_).ok());
  channel_ = meter_->RegisterChannel(name_, spec_.idle_watts);
  busy_until_ = meter_->clock()->now();
}

IoResult SsdDevice::Submit(double earliest_start, uint64_t bytes, double bw,
                           double latency) {
  const double start = std::max(earliest_start, busy_until_);
  const double service = latency + static_cast<double>(bytes) / bw;
  const double end = start + service;
  const double active_joules =
      (spec_.active_watts - spec_.idle_watts) * service;
  meter_->AddEnergyAt(channel_, end, active_joules, service);
  busy_until_ = end;
  IoResult result{start, end, service};
  result.active_joules = active_joules;
  return result;
}

StatusOr<IoResult> SsdDevice::SubmitRead(double earliest_start, uint64_t bytes,
                                         bool /*sequential*/) {
  return Submit(earliest_start, bytes, spec_.read_bw_bytes_per_s,
                spec_.read_latency_s);
}

StatusOr<IoResult> SsdDevice::SubmitWrite(double earliest_start,
                                          uint64_t bytes, bool /*sequential*/) {
  return Submit(earliest_start, bytes, spec_.write_bw_bytes_per_s,
                spec_.write_latency_s);
}

}  // namespace ecodb::storage

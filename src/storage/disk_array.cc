#include "storage/disk_array.h"

#include <algorithm>
#include <cassert>

namespace ecodb::storage {

DiskArray::DiskArray(std::string name, ArraySpec spec,
                     std::vector<std::unique_ptr<StorageDevice>> members)
    : name_(std::move(name)), spec_(spec), members_(std::move(members)) {
  assert(!members_.empty());
  assert(spec_.level != RaidLevel::kRaid5 || members_.size() >= 3);
}

double DiskArray::DataFraction() const {
  if (spec_.level == RaidLevel::kRaid5) {
    const double n = static_cast<double>(members_.size());
    return (n - 1.0) / n;
  }
  return 1.0;
}

IoResult DiskArray::Submit(double earliest_start, uint64_t bytes,
                           bool sequential, bool is_write) {
  const double start = std::max(earliest_start, busy_until_);
  const size_t n = members_.size();

  // Fair share per member, inflated by stripe skew (the array completes when
  // its slowest member does; with wider stripes the imbalance worsens).
  double share = static_cast<double>(bytes) / static_cast<double>(n);
  if (is_write && spec_.level == RaidLevel::kRaid5) {
    // Full-stripe RAID-5 writes add one parity unit per (n-1) data units.
    share *= static_cast<double>(n) / static_cast<double>(n - 1);
  }
  const double skew =
      1.0 + spec_.stripe_skew_alpha * static_cast<double>(n - 1);
  const uint64_t member_bytes =
      static_cast<uint64_t>(share * skew + 0.5);

  double member_completion = start;
  for (auto& m : members_) {
    const IoResult r = is_write
                           ? m->SubmitWrite(start, member_bytes, sequential)
                           : m->SubmitRead(start, member_bytes, sequential);
    member_completion = std::max(member_completion, r.completion_time);
  }

  // The controller/SAS fabric moves the full request serially; the array is
  // done when both the slowest member and the fabric are done.
  const double fabric_done = start + spec_.per_request_overhead_s +
                             static_cast<double>(bytes) /
                                 spec_.controller_bw_bytes_per_s;
  const double end = std::max(member_completion, fabric_done);
  busy_until_ = end;
  return IoResult{start, end, end - start};
}

IoResult DiskArray::SubmitRead(double earliest_start, uint64_t bytes,
                               bool sequential) {
  return Submit(earliest_start, bytes, sequential, /*is_write=*/false);
}

IoResult DiskArray::SubmitWrite(double earliest_start, uint64_t bytes,
                                bool sequential) {
  return Submit(earliest_start, bytes, sequential, /*is_write=*/true);
}

double DiskArray::EstimateReadSeconds(uint64_t bytes) const {
  const size_t n = members_.size();
  const double skew =
      1.0 + spec_.stripe_skew_alpha * static_cast<double>(n - 1);
  const uint64_t member_bytes = static_cast<uint64_t>(
      static_cast<double>(bytes) / static_cast<double>(n) * skew + 0.5);
  double slowest = 0.0;
  for (const auto& m : members_) {
    slowest = std::max(slowest, m->EstimateReadSeconds(member_bytes));
  }
  const double fabric = spec_.per_request_overhead_s +
                        static_cast<double>(bytes) /
                            spec_.controller_bw_bytes_per_s;
  return std::max(slowest, fabric);
}

double DiskArray::EstimateReadJoules(uint64_t bytes) const {
  const size_t n = members_.size();
  const double skew =
      1.0 + spec_.stripe_skew_alpha * static_cast<double>(n - 1);
  const uint64_t member_bytes = static_cast<uint64_t>(
      static_cast<double>(bytes) / static_cast<double>(n) * skew + 0.5);
  double joules = 0.0;
  for (const auto& m : members_) {
    joules += m->EstimateReadJoules(member_bytes);
  }
  return joules;
}

void DiskArray::PowerDown(double t) {
  for (auto& m : members_) m->PowerDown(t);
}

void DiskArray::PowerUp(double t) {
  for (auto& m : members_) m->PowerUp(t);
  for (auto& m : members_) {
    busy_until_ = std::max(busy_until_, m->busy_until());
  }
}

bool DiskArray::IsPoweredDown() const {
  for (const auto& m : members_) {
    if (!m->IsPoweredDown()) return false;
  }
  return true;
}

double DiskArray::StandbySavingsWatts() const {
  double total = 0.0;
  for (const auto& m : members_) total += m->StandbySavingsWatts();
  return total;
}

double DiskArray::BreakEvenIdleSeconds() const {
  double worst = 0.0;
  for (const auto& m : members_) {
    worst = std::max(worst, m->BreakEvenIdleSeconds());
  }
  return worst;
}

StatusOr<std::vector<uint8_t>> ComputeParity(
    const std::vector<std::vector<uint8_t>>& blocks) {
  if (blocks.empty()) {
    return Status::InvalidArgument("parity over zero blocks");
  }
  const size_t len = blocks[0].size();
  for (const auto& b : blocks) {
    if (b.size() != len) {
      return Status::InvalidArgument("parity blocks must be equal-sized");
    }
  }
  std::vector<uint8_t> parity(len, 0);
  for (const auto& b : blocks) {
    for (size_t i = 0; i < len; ++i) parity[i] ^= b[i];
  }
  return parity;
}

StatusOr<std::vector<uint8_t>> ReconstructBlock(
    const std::vector<std::vector<uint8_t>>& blocks, size_t missing_index,
    const std::vector<uint8_t>& parity) {
  if (missing_index >= blocks.size()) {
    return Status::InvalidArgument("missing index out of range");
  }
  std::vector<uint8_t> rebuilt = parity;
  for (size_t b = 0; b < blocks.size(); ++b) {
    if (b == missing_index) continue;
    if (blocks[b].size() != parity.size()) {
      return Status::InvalidArgument("block/parity size mismatch");
    }
    for (size_t i = 0; i < parity.size(); ++i) rebuilt[i] ^= blocks[b][i];
  }
  return rebuilt;
}

}  // namespace ecodb::storage

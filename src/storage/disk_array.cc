#include "storage/disk_array.h"

#include <algorithm>
#include <cassert>

namespace ecodb::storage {

DiskArray::DiskArray(std::string name, ArraySpec spec,
                     std::vector<std::unique_ptr<StorageDevice>> members,
                     power::EnergyMeter* meter)
    : name_(std::move(name)),
      spec_(spec),
      members_(std::move(members)),
      failed_(members_.size(), false),
      meter_(meter) {
  if (meter_ != nullptr) {
    xor_channel_ = meter_->RegisterChannel(name_ + ".xor", 0.0);
  }
}

StatusOr<std::unique_ptr<DiskArray>> DiskArray::Create(
    std::string name, ArraySpec spec,
    std::vector<std::unique_ptr<StorageDevice>> members,
    power::EnergyMeter* meter) {
  if (members.empty()) {
    return Status::InvalidArgument("disk array '" + name +
                                   "' needs at least one member");
  }
  if (spec.level == RaidLevel::kRaid5 && members.size() < 3) {
    return Status::InvalidArgument(
        "RAID 5 array '" + name + "' needs >= 3 members, got " +
        std::to_string(members.size()));
  }
  if (spec.stripe_unit_bytes == 0) {
    return Status::InvalidArgument("stripe_unit_bytes must be > 0");
  }
  if (spec.controller_bw_bytes_per_s <= 0.0) {
    return Status::InvalidArgument("controller_bw_bytes_per_s must be > 0");
  }
  if (spec.xor_instructions_per_byte < 0.0 ||
      spec.xor_joules_per_instruction < 0.0) {
    return Status::InvalidArgument("XOR cost parameters must be >= 0");
  }
  for (const auto& m : members) {
    if (m == nullptr) {
      return Status::InvalidArgument("disk array member must not be null");
    }
  }
  return std::unique_ptr<DiskArray>(
      new DiskArray(std::move(name), spec, std::move(members), meter));
}

double DiskArray::DataFraction() const {
  if (spec_.level == RaidLevel::kRaid5) {
    const double n = static_cast<double>(members_.size());
    return (n - 1.0) / n;
  }
  return 1.0;
}

int DiskArray::failed_member() const {
  for (size_t i = 0; i < failed_.size(); ++i) {
    if (failed_[i]) return static_cast<int>(i);
  }
  return -1;
}

double DiskArray::ChargeXorAt(double t, uint64_t xored_bytes) {
  const double instructions =
      spec_.xor_instructions_per_byte * static_cast<double>(xored_bytes);
  if (meter_ != nullptr && xor_channel_.valid()) {
    meter_->AddEnergyAt(xor_channel_, t,
                        instructions * spec_.xor_joules_per_instruction);
  }
  return instructions;
}

Status DiskArray::FailMember(int index, double t) {
  if (index < 0 || index >= num_members()) {
    return Status::InvalidArgument("member index out of range");
  }
  if (failed_[index]) return Status::OK();  // idempotent
  failed_[index] = true;
  ++failed_count_;
  // A pulled drive draws nothing.
  StorageDevice* m = members_[index].get();
  if (meter_ != nullptr && m->channel().valid()) {
    meter_->SetPowerAt(m->channel(), std::max(t, m->busy_until()), 0.0);
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<StorageDevice>> DiskArray::ReplaceFailedMember(
    int index, std::unique_ptr<StorageDevice> spare) {
  if (index < 0 || index >= num_members()) {
    return Status::InvalidArgument("member index out of range");
  }
  if (!failed_[index]) {
    return Status::FailedPrecondition("member " + std::to_string(index) +
                                      " has not failed");
  }
  if (spare == nullptr) {
    return Status::InvalidArgument("spare must not be null");
  }
  std::unique_ptr<StorageDevice> old = std::move(members_[index]);
  members_[index] = std::move(spare);
  failed_[index] = false;
  --failed_count_;
  busy_until_ = std::max(busy_until_, members_[index]->busy_until());
  return old;
}

StatusOr<IoResult> DiskArray::Submit(double earliest_start, uint64_t bytes,
                                     bool sequential, bool is_write,
                                     int depth) {
  const double start = std::max(earliest_start, busy_until_);
  const size_t n = members_.size();

  if (failed_count_ > 0 && spec_.level == RaidLevel::kRaid0) {
    return Status::DataLoss("RAID 0 array '" + name_ +
                            "' lost a member; data is gone");
  }
  if (failed_count_ > 1) {
    return Status::DataLoss("RAID 5 array '" + name_ +
                            "' lost two members; data is gone");
  }
  const bool degraded_read =
      failed_count_ == 1 && !is_write && spec_.level == RaidLevel::kRaid5;

  // Fair share per member, inflated by stripe skew (the array completes when
  // its slowest member does; with wider stripes the imbalance worsens).
  double share = static_cast<double>(bytes) / static_cast<double>(n);
  if (is_write && spec_.level == RaidLevel::kRaid5) {
    // Full-stripe RAID-5 writes add one parity unit per (n-1) data units.
    share *= static_cast<double>(n) / static_cast<double>(n - 1);
  }
  const double skew =
      1.0 + spec_.stripe_skew_alpha * static_cast<double>(n - 1);
  // Degraded read: every survivor serves its own share plus its part of
  // reconstructing the dead member's share — double the transfer volume.
  const double per_member =
      degraded_read ? 2.0 * share * skew : share * skew;
  const uint64_t member_bytes = static_cast<uint64_t>(per_member + 0.5);

  IoResult faults;
  double member_completion = start;
  for (size_t i = 0; i < n; ++i) {
    if (failed_[i]) continue;
    StorageDevice* m = members_[i].get();
    auto r = is_write ? m->SubmitWrite(start, member_bytes, sequential)
                      : m->SubmitRead(start, member_bytes, sequential);
    if (!r.ok()) {
      if (r.status().code() == StatusCode::kDataLoss) {
        // The member died mid-request. Absorb the first loss on RAID 5 by
        // re-running the whole request in degraded mode (the survivor work
        // already booked stays booked — those transfers really happened).
        if (!failed_[i]) {
          failed_[i] = true;
          ++failed_count_;
        }
        if (spec_.level == RaidLevel::kRaid5 && failed_count_ == 1 &&
            depth == 0) {
          ECODB_ASSIGN_OR_RETURN(
              IoResult retried,
              Submit(earliest_start, bytes, sequential, is_write, depth + 1));
          retried.AccumulateFaults(faults);
          return retried;
        }
      }
      return r.status();
    }
    faults.AccumulateFaults(*r);
    member_completion = std::max(member_completion, r->completion_time);
  }

  if (degraded_read) {
    // Fold the (n-1) survivor blocks into the missing one: XOR input volume
    // is the survivors' reconstruction reads, charged on the XOR channel.
    const uint64_t xored_bytes = static_cast<uint64_t>(
        static_cast<double>(n - 1) * share + 0.5);
    const double instructions = ChargeXorAt(member_completion, xored_bytes);
    faults.degraded_reads += 1;
    faults.reconstruct_instructions += instructions;
    faults.reconstruct_joules +=
        instructions * spec_.xor_joules_per_instruction;
  }

  // The controller/SAS fabric moves the full request serially; the array is
  // done when both the slowest member and the fabric are done.
  const double fabric_done = start + spec_.per_request_overhead_s +
                             static_cast<double>(bytes) /
                                 spec_.controller_bw_bytes_per_s;
  const double end = std::max(member_completion, fabric_done);
  busy_until_ = end;
  IoResult out{start, end, end - start};
  out.AccumulateFaults(faults);
  return out;
}

StatusOr<IoResult> DiskArray::SubmitRead(double earliest_start, uint64_t bytes,
                                         bool sequential) {
  return Submit(earliest_start, bytes, sequential, /*is_write=*/false,
                /*depth=*/0);
}

StatusOr<IoResult> DiskArray::SubmitWrite(double earliest_start,
                                          uint64_t bytes, bool sequential) {
  return Submit(earliest_start, bytes, sequential, /*is_write=*/true,
                /*depth=*/0);
}

double DiskArray::EstimateReadSeconds(uint64_t bytes) const {
  const size_t n = members_.size();
  const double skew =
      1.0 + spec_.stripe_skew_alpha * static_cast<double>(n - 1);
  const uint64_t member_bytes = static_cast<uint64_t>(
      static_cast<double>(bytes) / static_cast<double>(n) * skew + 0.5);
  double slowest = 0.0;
  for (const auto& m : members_) {
    slowest = std::max(slowest, m->EstimateReadSeconds(member_bytes));
  }
  const double fabric = spec_.per_request_overhead_s +
                        static_cast<double>(bytes) /
                            spec_.controller_bw_bytes_per_s;
  return std::max(slowest, fabric);
}

double DiskArray::EstimateReadJoules(uint64_t bytes) const {
  const size_t n = members_.size();
  const double skew =
      1.0 + spec_.stripe_skew_alpha * static_cast<double>(n - 1);
  const uint64_t member_bytes = static_cast<uint64_t>(
      static_cast<double>(bytes) / static_cast<double>(n) * skew + 0.5);
  double joules = 0.0;
  for (const auto& m : members_) {
    joules += m->EstimateReadJoules(member_bytes);
  }
  return joules;
}

void DiskArray::PowerDown(double t) {
  for (size_t i = 0; i < members_.size(); ++i) {
    if (!failed_[i]) members_[i]->PowerDown(t);
  }
}

void DiskArray::PowerUp(double t) {
  for (size_t i = 0; i < members_.size(); ++i) {
    if (!failed_[i]) members_[i]->PowerUp(t);
  }
  for (auto& m : members_) {
    busy_until_ = std::max(busy_until_, m->busy_until());
  }
}

bool DiskArray::IsPoweredDown() const {
  for (size_t i = 0; i < members_.size(); ++i) {
    if (!failed_[i] && !members_[i]->IsPoweredDown()) return false;
  }
  return true;
}

double DiskArray::StandbySavingsWatts() const {
  double total = 0.0;
  for (size_t i = 0; i < members_.size(); ++i) {
    if (!failed_[i]) total += members_[i]->StandbySavingsWatts();
  }
  return total;
}

double DiskArray::BreakEvenIdleSeconds() const {
  double worst = 0.0;
  for (const auto& m : members_) {
    worst = std::max(worst, m->BreakEvenIdleSeconds());
  }
  return worst;
}

StatusOr<RebuildReport> RebuildScheduler::Run(
    std::unique_ptr<StorageDevice> spare, double start_time,
    const RebuildConfig& config) {
  if (!array_->degraded()) {
    return Status::FailedPrecondition("array '" + array_->name() +
                                      "' is healthy; nothing to rebuild");
  }
  if (spare == nullptr) {
    return Status::InvalidArgument("rebuild needs a spare device");
  }
  if (config.total_bytes == 0 || config.chunk_bytes == 0) {
    return Status::InvalidArgument("rebuild extent/chunk must be > 0");
  }
  const int dead = array_->failed_member();
  const int n = array_->num_members();
  const double xor_jpi = array_->spec().xor_joules_per_instruction;

  RebuildReport report;
  report.start_time = start_time;
  report.end_time = start_time;
  double t = start_time;
  uint64_t done = 0;
  while (done < config.total_bytes) {
    const uint64_t chunk =
        std::min<uint64_t>(config.chunk_bytes, config.total_bytes - done);
    if (config.rate_bytes_per_s > 0.0) {
      // Pace the *start* of each chunk so reconstructed bytes flow at no
      // more than the configured rate, leaving survivor idle gaps for
      // foreground queries.
      t = std::max(t, start_time + static_cast<double>(done) /
                                       config.rate_bytes_per_s);
    }
    // Read this chunk's extent from every survivor (sequential stream)...
    double read_done = t;
    for (int i = 0; i < n; ++i) {
      if (i == dead || array_->member_failed(i)) continue;
      ECODB_ASSIGN_OR_RETURN(
          const IoResult r,
          array_->member(i)->SubmitRead(t, chunk, /*sequential=*/true));
      read_done = std::max(read_done, r.completion_time);
    }
    // ...fold them into the lost chunk...
    const uint64_t xored = static_cast<uint64_t>(n - 1) * chunk;
    const double instructions = array_->ChargeXorAt(read_done, xored);
    report.xor_instructions += instructions;
    report.xor_joules += instructions * xor_jpi;
    // ...and stream it onto the spare.
    ECODB_ASSIGN_OR_RETURN(
        const IoResult w,
        spare->SubmitWrite(read_done, chunk, /*sequential=*/true));
    report.end_time = std::max(report.end_time, w.completion_time);
    done += chunk;
    ++report.chunks;
    t = read_done;  // spare write overlaps the next chunk's survivor reads
  }
  report.bytes_rebuilt = done;
  ECODB_ASSIGN_OR_RETURN(std::unique_ptr<StorageDevice> retired,
                         array_->ReplaceFailedMember(dead, std::move(spare)));
  (void)retired;  // the dead drive leaves the chassis
  return report;
}

StatusOr<std::vector<uint8_t>> ComputeParity(
    const std::vector<std::vector<uint8_t>>& blocks) {
  if (blocks.empty()) {
    return Status::InvalidArgument("parity over zero blocks");
  }
  const size_t len = blocks[0].size();
  for (const auto& b : blocks) {
    if (b.size() != len) {
      return Status::InvalidArgument("parity blocks must be equal-sized");
    }
  }
  std::vector<uint8_t> parity(len, 0);
  for (const auto& b : blocks) {
    for (size_t i = 0; i < len; ++i) parity[i] ^= b[i];
  }
  return parity;
}

StatusOr<std::vector<uint8_t>> ReconstructBlock(
    const std::vector<std::vector<uint8_t>>& blocks, size_t missing_index,
    const std::vector<uint8_t>& parity) {
  if (missing_index >= blocks.size()) {
    return Status::InvalidArgument("missing index out of range");
  }
  std::vector<uint8_t> rebuilt = parity;
  for (size_t b = 0; b < blocks.size(); ++b) {
    if (b == missing_index) continue;
    if (blocks[b].size() != parity.size()) {
      return Status::InvalidArgument("block/parity size mismatch");
    }
    for (size_t i = 0; i < parity.size(); ++i) rebuilt[i] ^= blocks[b][i];
  }
  return rebuilt;
}

}  // namespace ecodb::storage

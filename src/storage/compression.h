// Column compression codecs.
//
// Figure 2 of the paper turns on the compression tradeoff: compressed scans
// exchange CPU cycles for disk bandwidth, which helps performance but can
// *hurt* energy efficiency when the CPU's power dwarfs the storage device's.
// EcoDB implements real codecs (these actually transform bytes and round-trip
// losslessly) so the engine can measure genuine compression ratios and charge
// genuine decode work:
//
//   * RLE                — run-length for repetitive int64 columns
//   * Delta              — consecutive differences + zigzag varint
//   * Bitpack            — fixed-width packing of bounded ints
//   * FOR                — frame-of-reference (min-offset) + bitpack
//   * Dictionary         — string columns with few distinct values
//
// Each codec reports a CpuCostProfile used by the optimizer's energy model:
// instructions per value to encode/decode, from which the CPU power model
// derives seconds and Joules.
//
// Decode is the scan hot path, so every codec ships two decoders with
// byte-identical output: a *reference* scalar kernel (value-at-a-time,
// bit-at-a-time — the differential-testing oracle and the calibration
// baseline for `bench/micro_codecs`) and a *fast* kernel (word-at-a-time
// bit unpacking with an AVX2 variant when compiled in, run-at-a-time RLE
// materialization, group-style varint delta decode). MakeInt64Codec
// returns the fast decoders; MakeReferenceInt64Codec the scalar ones.

#ifndef ECODB_STORAGE_COMPRESSION_H_
#define ECODB_STORAGE_COMPRESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace ecodb::storage {

enum class CompressionKind {
  kNone,
  kRle,
  kDelta,
  kBitpack,
  kFor,
  kDictionary,
};

const char* CompressionKindName(CompressionKind kind);

/// CPU cost of a codec, in abstract instructions per value. The optimizer
/// multiplies by the platform CPU model's seconds-per-instruction.
struct CpuCostProfile {
  double encode_instructions_per_value = 0.0;
  double decode_instructions_per_value = 0.0;
};

/// Abstract codec for int64 columns. Implementations are stateless.
class Int64Codec {
 public:
  virtual ~Int64Codec() = default;

  virtual CompressionKind kind() const = 0;
  virtual CpuCostProfile cost_profile() const = 0;

  /// Encodes `values` into `out` (replacing its contents).
  virtual Status Encode(const std::vector<int64_t>& values,
                        std::vector<uint8_t>* out) const = 0;

  /// Decodes an Encode() buffer back into `values`.
  virtual Status Decode(const std::vector<uint8_t>& buffer,
                        std::vector<int64_t>* values) const = 0;
};

/// Factory. kDictionary is string-only and not valid here. Returns codecs
/// with the fast decode kernels (word-at-a-time / run-at-a-time / grouped
/// varint); this is what the engine uses.
std::unique_ptr<Int64Codec> MakeInt64Codec(CompressionKind kind);

/// Same encoded format, but decoding uses the reference scalar kernels
/// (value-at-a-time, bit-at-a-time). Kept as the differential-testing
/// oracle and the `bench/micro_codecs` calibration baseline; its
/// cost_profile() reports the pre-vectorization instruction rates.
std::unique_ptr<Int64Codec> MakeReferenceInt64Codec(CompressionKind kind);

/// Dictionary codec for string columns.
class StringDictionaryCodec {
 public:
  CpuCostProfile cost_profile() const;

  /// Encodes: dictionary of distinct strings + bitpacked codes.
  Status Encode(const std::vector<std::string>& values,
                std::vector<uint8_t>* out) const;

  Status Decode(const std::vector<uint8_t>& buffer,
                std::vector<std::string>* values) const;
};

/// Measures the codec's ratio on a sample: encoded_bytes / raw_bytes
/// (lower is better; > 1 means the codec inflates this data).
double MeasureInt64Ratio(const Int64Codec& codec,
                         const std::vector<int64_t>& sample);

// --- Low-level helpers (exposed for tests and the WAL) ------------------

/// Appends `v` to `out` as a LEB128 varint.
void PutVarint(uint64_t v, std::vector<uint8_t>* out);

/// Reads a varint at *pos, advancing it. Returns false on truncation.
bool GetVarint(const std::vector<uint8_t>& buf, size_t* pos, uint64_t* v);

/// Zigzag maps signed to unsigned preserving small magnitudes.
inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// Number of bits needed to represent `v` (0 -> 0 bits).
int BitsNeeded(uint64_t v);

/// Packs each value's low `bits` bits contiguously.
void BitpackValues(const std::vector<uint64_t>& values, int bits,
                   std::vector<uint8_t>* out);

/// Inverse of BitpackValues for `count` values. Word-at-a-time fast kernel
/// (64-bit unaligned loads + shift/mask, AVX2 variant when compiled in);
/// falls back to the scalar kernel on big-endian targets.
Status BitunpackValues(const std::vector<uint8_t>& buf, size_t offset,
                       int bits, size_t count, std::vector<uint64_t>* values);

/// Reference scalar unpack: one bit at a time, byte-identical output to
/// BitunpackValues. Exposed for differential tests and calibration.
Status BitunpackValuesScalar(const std::vector<uint8_t>& buf, size_t offset,
                             int bits, size_t count,
                             std::vector<uint64_t>* values);

}  // namespace ecodb::storage

#endif  // ECODB_STORAGE_COMPRESSION_H_

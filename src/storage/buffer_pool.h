// Buffer pool with energy-aware page replacement.
//
// Section 4.3 of the paper: "Consider, for example, the buffer manager: its
// whole notion and associated replacement policies are based on avoiding as
// much as possible costly (in terms of latency) accesses to slower storage.
// With energy savings in mind, the access costs of memory hierarchy levels
// are going to be different." EcoDB's pool supports classic LRU and CLOCK
// plus an energy-aware policy whose victim score weighs each page's *reload
// energy* (cheap from an idle SSD, expensive from a spun-down disk) against
// its recency, so cheap-to-reload pages are sacrificed first.
//
// The pool tracks residency metadata and charges simulated device I/O on
// misses and write-backs; page payloads live with their owning tables.

#ifndef ECODB_STORAGE_BUFFER_POOL_H_
#define ECODB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "power/energy_meter.h"
#include "sim/clock.h"
#include "storage/device.h"
#include "storage/page.h"
#include "util/status.h"

namespace ecodb::storage {

enum class ReplacementPolicy {
  kLru,
  kClock,
  kEnergyAware,
};

const char* ReplacementPolicyName(ReplacementPolicy policy);

struct BufferPoolConfig {
  size_t num_frames = 1024;
  ReplacementPolicy policy = ReplacementPolicy::kLru;
  uint64_t page_bytes = Page::kPageSize;
  /// DRAM energy charged per buffer hit (row of reads from the resident
  /// page). 0 disables hit accounting.
  double dram_joules_per_hit = 0.0;
};

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;
  double HitRate() const {
    const uint64_t total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total)
                 : 0.0;
  }
};

/// Outcome of a page access.
struct PageAccess {
  bool hit = false;
  /// Simulated time at which the page is available to the caller.
  double ready_time = 0.0;
};

class BufferPool {
 public:
  /// `clock` and `meter` must outlive the pool. `dram_channel` may be
  /// invalid to skip hit accounting.
  BufferPool(BufferPoolConfig config, sim::SimClock* clock,
             power::EnergyMeter* meter,
             power::ChannelId dram_channel = power::ChannelId{});

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Accesses `page` stored on `source`. On a miss, submits a device read
  /// (evicting a victim if the pool is full; dirty victims are written back
  /// to their own device first). `mark_dirty` flags the page for write-back.
  /// Device faults (kDataLoss / kUnavailable) propagate; a failed miss
  /// leaves the pool unchanged apart from any victim already evicted.
  StatusOr<PageAccess> Access(PageId page, StorageDevice* source,
                              bool mark_dirty = false);

  /// Writes back every dirty page. Returns the completion time of the last
  /// write-back (clock time if none).
  StatusOr<double> FlushAll();

  /// Drops a page from the pool without write-back (table drop / migration).
  void Invalidate(PageId page);

  bool IsResident(PageId page) const { return frames_.count(page) > 0; }
  size_t resident_pages() const { return frames_.size(); }
  const BufferPoolConfig& config() const { return config_; }
  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats{}; }

 private:
  struct Frame {
    StorageDevice* source = nullptr;
    uint64_t last_used_tick = 0;
    bool referenced = false;  // CLOCK
    bool dirty = false;
    double reload_joules = 0.0;  // energy-aware victim scoring
  };

  /// Picks a victim per policy. Pool must be full and non-empty.
  PageId PickVictim();

  BufferPoolConfig config_;
  sim::SimClock* clock_;
  power::EnergyMeter* meter_;
  power::ChannelId dram_channel_;
  std::unordered_map<PageId, Frame, PageIdHash> frames_;
  std::vector<PageId> clock_order_;  // insertion ring for CLOCK
  size_t clock_hand_ = 0;
  uint64_t tick_ = 0;
  BufferPoolStats stats_;
};

}  // namespace ecodb::storage

#endif  // ECODB_STORAGE_BUFFER_POOL_H_

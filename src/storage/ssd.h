// Flash SSD simulator.
//
// Models the drives of the paper's Figure 2 ("SSD flash disks, which are an
// order of magnitude more energy efficient than regular hard drives"): no
// positioning delay beyond a small per-request latency, high bandwidth, and
// a low active/idle power draw with no expensive state transitions.

#ifndef ECODB_STORAGE_SSD_H_
#define ECODB_STORAGE_SSD_H_

#include <string>

#include "power/device_power.h"
#include "power/energy_meter.h"
#include "storage/device.h"

namespace ecodb::storage {

class SsdDevice final : public StorageDevice {
 public:
  SsdDevice(std::string name, const power::SsdSpec& spec,
            power::EnergyMeter* meter);

  StatusOr<IoResult> SubmitRead(double earliest_start, uint64_t bytes,
                                bool sequential) override;
  StatusOr<IoResult> SubmitWrite(double earliest_start, uint64_t bytes,
                                 bool sequential) override;

  double busy_until() const override { return busy_until_; }

  // SSDs idle at sub-watt draw; there is no deep state to manage.
  void PowerDown(double) override {}
  void PowerUp(double) override {}
  bool IsPoweredDown() const override { return false; }
  double StandbySavingsWatts() const override { return 0.0; }
  double BreakEvenIdleSeconds() const override { return 1e300; }

  const std::string& name() const override { return name_; }
  power::ChannelId channel() const override { return channel_; }

  double EstimateReadSeconds(uint64_t bytes) const override {
    return spec_.read_latency_s +
           static_cast<double>(bytes) / spec_.read_bw_bytes_per_s;
  }
  double EstimateReadJoules(uint64_t bytes) const override {
    return spec_.active_watts * EstimateReadSeconds(bytes);
  }

  const power::SsdSpec& spec() const { return spec_; }

 private:
  IoResult Submit(double earliest_start, uint64_t bytes, double bw,
                  double latency);

  std::string name_;
  power::SsdSpec spec_;
  power::EnergyMeter* meter_;
  power::ChannelId channel_;
  double busy_until_ = 0.0;
};

}  // namespace ecodb::storage

#endif  // ECODB_STORAGE_SSD_H_

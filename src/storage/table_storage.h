// Table storage: real column/row data bound to a simulated device.
//
// EcoDB separates the two things a storage engine provides:
//   * the *bytes* (kept in memory here, since devices are simulated), and
//   * the *cost* of getting them (service time + energy charged against the
//     owning device when operators scan).
// Column tables keep one lane per column and an optional per-column
// compression codec; the encoded buffers are real (produced by the codecs in
// compression.h), so footprints, ratios, and decode work are all genuine.

#ifndef ECODB_STORAGE_TABLE_STORAGE_H_
#define ECODB_STORAGE_TABLE_STORAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/schema.h"
#include "storage/compression.h"
#include "storage/device.h"
#include "storage/zone_map.h"
#include "util/status.h"

namespace ecodb::storage {

/// Physical row organization.
enum class TableLayout {
  kRow,     // NSM: scans read every column regardless of projection
  kColumn,  // DSM: scans read only projected columns
};

const char* TableLayoutName(TableLayout layout);

/// One column's values. Exactly one lane is populated, per the type.
struct ColumnData {
  catalog::DataType type = catalog::DataType::kInt64;
  std::vector<int64_t> i64;   // kInt64 and kDate
  std::vector<double> f64;    // kDouble
  std::vector<std::string> str;  // kString

  size_t size() const;
};

/// On-device footprint of one column.
struct ColumnLayout {
  CompressionKind compression = CompressionKind::kNone;
  uint64_t raw_bytes = 0;
  uint64_t encoded_bytes = 0;
  double Ratio() const {
    return raw_bytes ? static_cast<double>(encoded_bytes) /
                           static_cast<double>(raw_bytes)
                     : 1.0;
  }
};

class TableStorage {
 public:
  /// `device` must outlive the table.
  TableStorage(catalog::TableId id, catalog::Schema schema,
               TableLayout layout, StorageDevice* device);

  catalog::TableId id() const { return id_; }
  const catalog::Schema& schema() const { return schema_; }
  TableLayout layout() const { return layout_; }
  StorageDevice* device() const { return device_; }
  uint64_t row_count() const { return row_count_; }

  /// Appends columnar data; all columns must match the schema types and
  /// have equal lengths.
  Status Append(const std::vector<ColumnData>& columns);

  /// Applies `kind` to the named column, re-encoding its current contents.
  /// Dictionary is for strings; integer codecs for int64/date. kNone resets.
  Status SetCompression(const std::string& column, CompressionKind kind);

  /// Decoded values of column `i` — decodes through the codec when the
  /// column is compressed (the work an operator's scan performs). The
  /// result matches the appended data exactly (lossless round-trip).
  StatusOr<ColumnData> ReadColumn(int i) const;

  /// In-memory reference to the uncompressed data (no decode charge);
  /// intended for loading-side helpers and tests.
  const ColumnData& RawColumn(int i) const { return columns_[i]; }

  const ColumnLayout& column_layout(int i) const { return layouts_[i]; }

  /// Bytes a scan projecting `column_indexes` must transfer from the
  /// device, honoring the layout (row layout always reads full rows).
  uint64_t ScanBytes(const std::vector<int>& column_indexes) const;

  /// Total device-resident footprint.
  uint64_t TotalBytes() const;

  /// Abstract CPU instructions to decode `column_indexes` during a scan
  /// (codec decode costs x rows; uncompressed columns charge their touch
  /// cost of 1 instruction/value).
  double DecodeInstructions(const std::vector<int>& column_indexes) const;

  /// Computes fresh statistics into `stats` (row count, min/max, NDV).
  Status AnalyzeInto(catalog::TableStats* stats) const;

  /// Points the table at a different device (partition migration). The
  /// caller is responsible for charging the data-movement I/O.
  void Rebind(StorageDevice* device) { device_ = device; }

  /// Builds per-block min/max zone maps over the current contents with
  /// `block_rows` rows per block. Rebuild after further Appends.
  Status BuildZoneMaps(size_t block_rows);

  const ZoneMapSet& zone_maps() const { return zone_maps_; }

 private:
  Status ReencodeColumn(int i);

  catalog::TableId id_;
  catalog::Schema schema_;
  TableLayout layout_;
  StorageDevice* device_;
  uint64_t row_count_ = 0;
  std::vector<ColumnData> columns_;
  std::vector<ColumnLayout> layouts_;
  /// Encoded buffers; empty for kNone columns.
  std::vector<std::vector<uint8_t>> encoded_;
  ZoneMapSet zone_maps_;
};

}  // namespace ecodb::storage

#endif  // ECODB_STORAGE_TABLE_STORAGE_H_

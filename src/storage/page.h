// Slotted page: the on-"disk" record layout for row storage and the WAL.
//
// A page is a fixed 8 KiB byte buffer with a header, a slot directory
// growing from the front, and record payloads growing from the back:
//
//   [header][slot 0][slot 1]...        ...[record 1][record 0]
//
// Deleting a record tombstones its slot; Compact() reclaims payload space.
// This is a genuine byte-level implementation (tested by round-trip and
// fuzz-style property tests), not a mock: recovery replays log records into
// these pages.

#ifndef ECODB_STORAGE_PAGE_H_
#define ECODB_STORAGE_PAGE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/status.h"

namespace ecodb::storage {

/// Identifies a page within a database: (file/table space, page number).
struct PageId {
  uint32_t space_id = 0;
  uint32_t page_no = 0;

  bool operator==(const PageId&) const = default;
};

struct PageIdHash {
  size_t operator()(const PageId& id) const {
    return (static_cast<size_t>(id.space_id) << 32) ^ id.page_no;
  }
};

/// Fixed-size slotted page.
class Page {
 public:
  static constexpr size_t kPageSize = 8192;
  static constexpr uint16_t kInvalidSlot = UINT16_MAX;

  /// Constructs an empty, formatted page.
  Page();

  /// Wraps an existing image (e.g. read back during recovery). The image
  /// must be exactly kPageSize bytes.
  static StatusOr<Page> FromImage(std::vector<uint8_t> image);

  /// Number of live (non-tombstoned) records.
  uint16_t live_records() const;

  /// Total slots including tombstones.
  uint16_t slot_count() const;

  /// Bytes available for a new record (including its slot entry).
  size_t FreeSpace() const;

  /// Inserts a record, returning its slot. Fails with ResourceExhausted if
  /// the record does not fit (use FreeSpace()/Compact() first).
  StatusOr<uint16_t> Insert(std::span<const uint8_t> record);

  /// Reads the record in `slot`. NotFound if tombstoned or out of range.
  StatusOr<std::span<const uint8_t>> Get(uint16_t slot) const;

  /// Tombstones `slot`. NotFound if already dead or out of range.
  Status Erase(uint16_t slot);

  /// Replaces the record in `slot`. May relocate the payload within the
  /// page; fails with ResourceExhausted if the new value cannot fit.
  Status Update(uint16_t slot, std::span<const uint8_t> record);

  /// Re-activates a tombstoned slot with `record` (transaction undo of an
  /// erase). FailedPrecondition if the slot is live or out of range.
  Status Resurrect(uint16_t slot, std::span<const uint8_t> record);

  /// Rewrites the payload area dropping dead space. Slot numbers of live
  /// records are preserved (tombstoned slots remain tombstoned).
  void Compact();

  /// Raw image, e.g. for writing to a device or logging a full-page image.
  const std::vector<uint8_t>& image() const { return image_; }

 private:
  // Header layout (little-endian u16s at fixed offsets):
  //   [0] slot_count  [2] free_start (payload low-water mark grows down)
  //   [4] live_count
  // Slot i at offset kHeaderSize + 4*i: [offset:u16][length:u16];
  // offset==0 marks a tombstone (0 is inside the header, never a payload).
  static constexpr size_t kHeaderSize = 6;

  uint16_t ReadU16(size_t off) const;
  void WriteU16(size_t off, uint16_t v);
  uint16_t SlotOffset(uint16_t slot) const;
  uint16_t SlotLength(uint16_t slot) const;
  void SetSlot(uint16_t slot, uint16_t off, uint16_t len);

  std::vector<uint8_t> image_;
};

}  // namespace ecodb::storage

#endif  // ECODB_STORAGE_PAGE_H_

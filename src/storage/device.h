// StorageDevice: the behavioural interface of simulated storage hardware.
//
// Devices serialize requests on their own timeline (`busy_until`), translate
// byte counts into simulated service time using their power/performance
// specs, and charge the EnergyMeter: a continuous background level for the
// current power state plus active-energy pulses per request. Power-state
// control (spin-down / spin-up) is exposed so the consolidation scheduler
// (Section 4.2 of the paper) can manage it.

#ifndef ECODB_STORAGE_DEVICE_H_
#define ECODB_STORAGE_DEVICE_H_

#include <cstdint>
#include <string>

#include "power/energy_meter.h"
#include "util/status.h"

namespace ecodb::storage {

/// Result of one submitted I/O. Besides the timeline fields, an IoResult
/// carries fault observability: how many transient errors were retried on
/// the way to success, the simulated time and Joules those retries cost,
/// and (for arrays in degraded mode) the XOR-reconstruction work performed.
/// Layers that forward I/O (arrays, decorators, the buffer pool) accumulate
/// these fields so ExecContext can surface them in QueryStats.
struct IoResult {
  double start_time = 0.0;       // when the device began servicing
  double completion_time = 0.0;  // when the data was fully transferred
  double service_seconds = 0.0;  // completion - start
  /// Active-energy pulses this request booked on the meter, summed across
  /// every layer and every attempt (leaf transfers, NIC streaming, failed
  /// retries that really occupied the device). Lets the serving core bill
  /// device energy to the session that submitted the I/O; background/idle
  /// levels and spin-up pulses are intentionally excluded (they belong to
  /// the shared window, not to one request).
  double active_joules = 0.0;

  // --- Fault accounting (zero on the happy path) ---
  uint32_t transient_errors = 0;       // retried-then-succeeded attempts
  double retry_seconds = 0.0;          // simulated time spent on retries
  double retry_joules = 0.0;           // energy charged for retried attempts
  uint32_t degraded_reads = 0;         // requests served via reconstruction
  double reconstruct_instructions = 0.0;  // XOR instructions (observability)
  double reconstruct_joules = 0.0;     // energy charged for XOR work

  /// Folds another result's fault counters into this one (timeline fields
  /// are left to the caller, which knows the composition semantics).
  void AccumulateFaults(const IoResult& other) {
    active_joules += other.active_joules;
    transient_errors += other.transient_errors;
    retry_seconds += other.retry_seconds;
    retry_joules += other.retry_joules;
    degraded_reads += other.degraded_reads;
    reconstruct_instructions += other.reconstruct_instructions;
    reconstruct_joules += other.reconstruct_joules;
  }
};

/// Abstract simulated storage device.
class StorageDevice {
 public:
  virtual ~StorageDevice() = default;

  /// Submits a read of `bytes`. The device starts no earlier than
  /// `earliest_start` and no earlier than its previous request's completion.
  /// `sequential` requests skip positioning costs after the first access.
  /// Errors: kUnavailable for a transient failure that exhausted its retry
  /// budget; kDataLoss for a permanently failed device (or an array that
  /// lost more members than its redundancy covers).
  virtual StatusOr<IoResult> SubmitRead(double earliest_start, uint64_t bytes,
                                        bool sequential) = 0;

  /// Submits a write (same queueing semantics and error contract).
  virtual StatusOr<IoResult> SubmitWrite(double earliest_start, uint64_t bytes,
                                         bool sequential) = 0;

  /// Completion time of the last accepted request.
  virtual double busy_until() const = 0;

  /// Requests a transition to the low-power state at time `t` (>= busy
  /// time). No-op for devices without such a state.
  virtual void PowerDown(double t) = 0;

  /// Requests a wake-up beginning at time `t`; subsequent I/O waits for the
  /// transition if the device was sleeping.
  virtual void PowerUp(double t) = 0;

  /// True if the device is currently in its low-power state.
  virtual bool IsPoweredDown() const = 0;

  /// Idle Watts the device would save per second while powered down.
  virtual double StandbySavingsWatts() const = 0;

  /// Minimum idle period for which PowerDown saves energy.
  virtual double BreakEvenIdleSeconds() const = 0;

  virtual const std::string& name() const = 0;

  /// Meter channel carrying this device's energy.
  virtual power::ChannelId channel() const = 0;

  /// Predicted service time of a random read of `bytes`, with the device in
  /// its current power state and otherwise idle. Used by the optimizer's
  /// cost model and the energy-aware buffer replacement policy.
  virtual double EstimateReadSeconds(uint64_t bytes) const = 0;

  /// Predicted energy of that read (active power x service time, plus any
  /// wake-up energy the current state implies).
  virtual double EstimateReadJoules(uint64_t bytes) const = 0;
};

}  // namespace ecodb::storage

#endif  // ECODB_STORAGE_DEVICE_H_

// StorageDevice: the behavioural interface of simulated storage hardware.
//
// Devices serialize requests on their own timeline (`busy_until`), translate
// byte counts into simulated service time using their power/performance
// specs, and charge the EnergyMeter: a continuous background level for the
// current power state plus active-energy pulses per request. Power-state
// control (spin-down / spin-up) is exposed so the consolidation scheduler
// (Section 4.2 of the paper) can manage it.

#ifndef ECODB_STORAGE_DEVICE_H_
#define ECODB_STORAGE_DEVICE_H_

#include <cstdint>
#include <string>

#include "power/energy_meter.h"

namespace ecodb::storage {

/// Result of one submitted I/O.
struct IoResult {
  double start_time = 0.0;       // when the device began servicing
  double completion_time = 0.0;  // when the data was fully transferred
  double service_seconds = 0.0;  // completion - start
};

/// Abstract simulated storage device.
class StorageDevice {
 public:
  virtual ~StorageDevice() = default;

  /// Submits a read of `bytes`. The device starts no earlier than
  /// `earliest_start` and no earlier than its previous request's completion.
  /// `sequential` requests skip positioning costs after the first access.
  virtual IoResult SubmitRead(double earliest_start, uint64_t bytes,
                              bool sequential) = 0;

  /// Submits a write (same queueing semantics).
  virtual IoResult SubmitWrite(double earliest_start, uint64_t bytes,
                               bool sequential) = 0;

  /// Completion time of the last accepted request.
  virtual double busy_until() const = 0;

  /// Requests a transition to the low-power state at time `t` (>= busy
  /// time). No-op for devices without such a state.
  virtual void PowerDown(double t) = 0;

  /// Requests a wake-up beginning at time `t`; subsequent I/O waits for the
  /// transition if the device was sleeping.
  virtual void PowerUp(double t) = 0;

  /// True if the device is currently in its low-power state.
  virtual bool IsPoweredDown() const = 0;

  /// Idle Watts the device would save per second while powered down.
  virtual double StandbySavingsWatts() const = 0;

  /// Minimum idle period for which PowerDown saves energy.
  virtual double BreakEvenIdleSeconds() const = 0;

  virtual const std::string& name() const = 0;

  /// Meter channel carrying this device's energy.
  virtual power::ChannelId channel() const = 0;

  /// Predicted service time of a random read of `bytes`, with the device in
  /// its current power state and otherwise idle. Used by the optimizer's
  /// cost model and the energy-aware buffer replacement policy.
  virtual double EstimateReadSeconds(uint64_t bytes) const = 0;

  /// Predicted energy of that read (active power x service time, plus any
  /// wake-up energy the current state implies).
  virtual double EstimateReadJoules(uint64_t bytes) const = 0;
};

}  // namespace ecodb::storage

#endif  // ECODB_STORAGE_DEVICE_H_

#include "storage/fault_injector.h"

#include <algorithm>
#include <cassert>

namespace ecodb::storage {

namespace {

// SplitMix64 finalizer: a high-quality stateless mixer. Used to turn
// (seed, device-name hash, attempt index) into an i.i.d.-looking uniform
// draw without any shared RNG state that could order-couple devices.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashName(const std::string& name) {
  // FNV-1a, consistent with the WAL frame checksum elsewhere in the tree.
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

double UniformFromHash(uint64_t h) {
  // 53 high bits -> [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  for (const auto& spec : plan_.devices) {
    assert(std::is_sorted(spec.transient_ios.begin(),
                          spec.transient_ios.end()));
    state_[spec.device].spec = &spec;
  }
}

FaultInjector::DeviceState* FaultInjector::StateFor(
    const std::string& device) {
  auto it = state_.find(device);
  return it == state_.end() ? nullptr : &it->second;
}

FaultInjector::Decision FaultInjector::NextIo(const std::string& device,
                                              double now) {
  DeviceState* st = StateFor(device);
  if (st == nullptr) return Decision::kOk;  // device not in the plan
  if (st->failed) return Decision::kPermanent;

  const uint64_t index = st->attempts++;
  const DeviceFaultSpec& spec = *st->spec;

  if (now >= spec.fail_at_time || index >= spec.fail_after_ios) {
    st->failed = true;
    return Decision::kPermanent;
  }
  if (std::binary_search(spec.transient_ios.begin(), spec.transient_ios.end(),
                         index)) {
    return Decision::kTransient;
  }
  if (spec.transient_error_rate > 0.0) {
    const uint64_t h =
        Mix64(plan_.seed ^ Mix64(HashName(device)) ^ Mix64(index));
    if (UniformFromHash(h) < spec.transient_error_rate) {
      return Decision::kTransient;
    }
  }
  return Decision::kOk;
}

bool FaultInjector::IsFailed(const std::string& device) const {
  auto it = state_.find(device);
  return it != state_.end() && it->second.failed;
}

void FaultInjector::MarkFailed(const std::string& device) {
  state_[device].failed = true;
}

uint64_t FaultInjector::io_count(const std::string& device) const {
  auto it = state_.find(device);
  return it == state_.end() ? 0 : it->second.attempts;
}

FaultInjectedDevice::FaultInjectedDevice(std::unique_ptr<StorageDevice> inner,
                                         FaultInjector* injector,
                                         power::EnergyMeter* meter)
    : inner_(std::move(inner)), injector_(injector), meter_(meter) {
  assert(inner_ != nullptr);
  assert(injector_ != nullptr);
}

void FaultInjectedDevice::PowerDown(double t) {
  if (dead_) return;
  inner_->PowerDown(t);
}

void FaultInjectedDevice::PowerUp(double t) {
  if (dead_) return;
  inner_->PowerUp(t);
}

void FaultInjectedDevice::Die(double t) {
  dead_ = true;
  injector_->MarkFailed(name());
  // A dead drive draws nothing: drop the channel's background level to 0
  // from the moment of death (no later than any work already booked).
  if (meter_ != nullptr && channel().valid()) {
    meter_->SetPowerAt(channel(), std::max(t, inner_->busy_until()), 0.0);
  }
}

Status FaultInjectedDevice::ChargeRetryAttempt(double* t, uint64_t bytes,
                                               bool sequential, bool is_write,
                                               double* backoff_s,
                                               IoResult* faults) {
  // The failed attempt really occupies the device: submit it to the inner
  // device so its service time lands on the timeline and its active energy
  // lands on the meter, exactly like a successful transfer that arrived
  // corrupt and had to be thrown away.
  ECODB_ASSIGN_OR_RETURN(
      const IoResult attempt,
      is_write ? inner_->SubmitWrite(*t, bytes, sequential)
               : inner_->SubmitRead(*t, bytes, sequential));
  faults->transient_errors += 1;
  faults->retry_seconds += attempt.service_seconds + *backoff_s;
  faults->retry_joules += inner_->EstimateReadJoules(bytes);
  // The failed attempt's real meter pulses travel with the result so the
  // submitting session can be billed for them (retry_joules above is the
  // estimate-based observability figure, not the pulse).
  faults->active_joules += attempt.active_joules;
  *t = attempt.completion_time + *backoff_s;
  *backoff_s *= injector_->retry().backoff_multiplier;
  return Status::OK();
}

StatusOr<IoResult> FaultInjectedDevice::Submit(double earliest_start,
                                               uint64_t bytes, bool sequential,
                                               bool is_write) {
  if (dead_) {
    return Status::DataLoss("device '" + name() + "' has failed");
  }
  const RetryPolicy& policy = injector_->retry();
  IoResult faults;  // accumulates retry accounting across attempts
  double t = earliest_start;
  double backoff_s = policy.initial_backoff_s;
  for (int attempt = 0; attempt < std::max(policy.max_attempts, 1);
       ++attempt) {
    switch (injector_->NextIo(name(), std::max(t, inner_->busy_until()))) {
      case FaultInjector::Decision::kPermanent:
        Die(t);
        return Status::DataLoss("device '" + name() + "' failed permanently");
      case FaultInjector::Decision::kTransient:
        ECODB_RETURN_IF_ERROR(ChargeRetryAttempt(&t, bytes, sequential,
                                                 is_write, &backoff_s,
                                                 &faults));
        continue;
      case FaultInjector::Decision::kOk: {
        ECODB_ASSIGN_OR_RETURN(
            IoResult ok, is_write ? inner_->SubmitWrite(t, bytes, sequential)
                                  : inner_->SubmitRead(t, bytes, sequential));
        ok.AccumulateFaults(faults);
        return ok;
      }
    }
  }
  return Status::Unavailable("device '" + name() + "' exhausted " +
                             std::to_string(policy.max_attempts) +
                             " attempts");
}

StatusOr<IoResult> FaultInjectedDevice::SubmitRead(double earliest_start,
                                                   uint64_t bytes,
                                                   bool sequential) {
  return Submit(earliest_start, bytes, sequential, /*is_write=*/false);
}

StatusOr<IoResult> FaultInjectedDevice::SubmitWrite(double earliest_start,
                                                    uint64_t bytes,
                                                    bool sequential) {
  return Submit(earliest_start, bytes, sequential, /*is_write=*/true);
}

}  // namespace ecodb::storage

#include "storage/buffer_pool.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

namespace ecodb::storage {

const char* ReplacementPolicyName(ReplacementPolicy policy) {
  switch (policy) {
    case ReplacementPolicy::kLru:
      return "lru";
    case ReplacementPolicy::kClock:
      return "clock";
    case ReplacementPolicy::kEnergyAware:
      return "energy-aware";
  }
  return "unknown";
}

BufferPool::BufferPool(BufferPoolConfig config, sim::SimClock* clock,
                       power::EnergyMeter* meter,
                       power::ChannelId dram_channel)
    : config_(config),
      clock_(clock),
      meter_(meter),
      dram_channel_(dram_channel) {
  assert(config_.num_frames > 0);
}

namespace {

// frames_ is an unordered_map, so every scan over it must break ties by
// page id: otherwise the victim (and with it the whole device timeline and
// energy bill) depends on hash iteration order, which EC8 forbids for
// anything the executor can reach.
bool PageIdLess(const PageId& a, const PageId& b) {
  return a.space_id != b.space_id ? a.space_id < b.space_id
                                  : a.page_no < b.page_no;
}

}  // namespace

PageId BufferPool::PickVictim() {
  assert(!frames_.empty());
  switch (config_.policy) {
    case ReplacementPolicy::kLru: {
      PageId victim{};
      bool have_victim = false;
      uint64_t oldest = std::numeric_limits<uint64_t>::max();
      for (const auto& [id, f] : frames_) {  // NOLINT-ECODB(EC8): order-independent min-reduction (id tie-break)
        if (f.last_used_tick < oldest ||
            (f.last_used_tick == oldest &&
             (!have_victim || PageIdLess(id, victim)))) {
          oldest = f.last_used_tick;
          victim = id;
          have_victim = true;
        }
      }
      return victim;
    }
    case ReplacementPolicy::kClock: {
      // Sweep the ring clearing reference bits; evict the first clear page.
      for (size_t sweep = 0; sweep < 2 * clock_order_.size(); ++sweep) {
        clock_hand_ = (clock_hand_ + 1) % clock_order_.size();
        const PageId id = clock_order_[clock_hand_];
        auto it = frames_.find(id);
        if (it == frames_.end()) continue;  // stale ring entry
        if (it->second.referenced) {
          it->second.referenced = false;
        } else {
          return id;
        }
      }
      return clock_order_[clock_hand_];
    }
    case ReplacementPolicy::kEnergyAware: {
      // Expected eviction cost = reload energy x reuse likelihood; recency
      // proxies reuse likelihood. Evict the minimum-cost frame.
      PageId victim{};
      bool have_victim = false;
      double best = std::numeric_limits<double>::max();
      for (const auto& [id, f] : frames_) {  // NOLINT-ECODB(EC8): order-independent min-reduction (id tie-break)
        const double age =
            static_cast<double>(tick_ - f.last_used_tick) + 1.0;
        const double recency_weight = 1.0 / age;
        // A dirty page also owes a write-back; fold that in.
        const double writeback_penalty = f.dirty ? f.reload_joules : 0.0;
        const double cost =
            (f.reload_joules + writeback_penalty) * recency_weight;
        if (cost < best ||
            (cost == best && (!have_victim || PageIdLess(id, victim)))) {
          best = cost;
          victim = id;
          have_victim = true;
        }
      }
      return victim;
    }
  }
  return frames_.begin()->first;
}

StatusOr<PageAccess> BufferPool::Access(PageId page, StorageDevice* source,
                                        bool mark_dirty) {
  ++tick_;
  auto it = frames_.find(page);
  if (it != frames_.end()) {
    it->second.last_used_tick = tick_;
    it->second.referenced = true;
    it->second.dirty |= mark_dirty;
    ++stats_.hits;
    if (dram_channel_.valid() && config_.dram_joules_per_hit > 0) {
      meter_->AddEnergy(dram_channel_, config_.dram_joules_per_hit);
    }
    return PageAccess{true, clock_->now()};
  }

  ++stats_.misses;
  double ready = clock_->now();
  if (frames_.size() >= config_.num_frames) {
    const PageId victim_id = PickVictim();
    auto vit = frames_.find(victim_id);
    assert(vit != frames_.end());
    if (vit->second.dirty && vit->second.source != nullptr) {
      ECODB_ASSIGN_OR_RETURN(
          const IoResult wb,
          vit->second.source->SubmitWrite(clock_->now(), config_.page_bytes,
                                          /*sequential=*/false));
      ready = std::max(ready, wb.completion_time);
      ++stats_.dirty_writebacks;
    }
    frames_.erase(vit);
    ++stats_.evictions;
  }

  ECODB_ASSIGN_OR_RETURN(
      const IoResult rd,
      source->SubmitRead(ready, config_.page_bytes, /*sequential=*/false));
  ready = rd.completion_time;

  Frame f;
  f.source = source;
  f.last_used_tick = tick_;
  f.referenced = true;
  f.dirty = mark_dirty;
  f.reload_joules = source->EstimateReadJoules(config_.page_bytes);
  frames_.emplace(page, f);
  clock_order_.push_back(page);
  // Bound the CLOCK ring against stale growth.
  if (clock_order_.size() > 4 * config_.num_frames) {
    std::vector<PageId> fresh;
    fresh.reserve(frames_.size());
    for (const PageId& id : clock_order_) {
      if (frames_.count(id)) fresh.push_back(id);
    }
    clock_order_ = std::move(fresh);
    clock_hand_ = 0;
  }
  return PageAccess{false, ready};
}

StatusOr<double> BufferPool::FlushAll() {
  double last = clock_->now();
  // Write back in page-id order: the flush sequence feeds the device
  // timeline, so hash order here would leak into completion times.
  std::vector<PageId> dirty;
  dirty.reserve(frames_.size());
  for (const auto& [id, f] : frames_) {  // NOLINT-ECODB(EC8): collect-then-sort, order-independent
    if (f.dirty && f.source != nullptr) dirty.push_back(id);
  }
  std::sort(dirty.begin(), dirty.end(), PageIdLess);
  for (const PageId& id : dirty) {
    Frame& f = frames_.at(id);
    ECODB_ASSIGN_OR_RETURN(
        const IoResult wb,
        f.source->SubmitWrite(clock_->now(), config_.page_bytes,
                              /*sequential=*/false));
    last = std::max(last, wb.completion_time);
    f.dirty = false;
    ++stats_.dirty_writebacks;
  }
  return last;
}

void BufferPool::Invalidate(PageId page) { frames_.erase(page); }

}  // namespace ecodb::storage

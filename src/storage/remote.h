// Network-attached storage device.
//
// Section 5.1 of the paper expects energy-aware physical design to choose
// among "different sets of disk arrays that vary in performance/power
// characteristics, different types of solid state drives, along with remote
// storage, accessible over a network". RemoteDevice composes a local NIC
// (metered on its own channel) with a remote backing device: every transfer
// moves through both, the slower of the two paces it, and both bill energy.
// The remote end's idle power is deliberately NOT on this host's meter —
// that is the energy argument for disaggregated storage: the shared remote
// array's floor amortizes over many hosts.

#ifndef ECODB_STORAGE_REMOTE_H_
#define ECODB_STORAGE_REMOTE_H_

#include <string>

#include "power/device_power.h"
#include "power/energy_meter.h"
#include "storage/device.h"

namespace ecodb::storage {

class RemoteDevice final : public StorageDevice {
 public:
  /// `backing` is the device at the remote end (owned elsewhere, typically
  /// metered on a different host's meter); the NIC channel is registered on
  /// `meter` (this host). Both must outlive the RemoteDevice.
  RemoteDevice(std::string name, const power::NicSpec& nic,
               power::EnergyMeter* meter, StorageDevice* backing);

  StatusOr<IoResult> SubmitRead(double earliest_start, uint64_t bytes,
                                bool sequential) override;
  StatusOr<IoResult> SubmitWrite(double earliest_start, uint64_t bytes,
                                 bool sequential) override;

  double busy_until() const override { return busy_until_; }

  // Power management passes through to the remote end.
  void PowerDown(double t) override { backing_->PowerDown(t); }
  void PowerUp(double t) override { backing_->PowerUp(t); }
  bool IsPoweredDown() const override { return backing_->IsPoweredDown(); }
  double StandbySavingsWatts() const override {
    return backing_->StandbySavingsWatts();
  }
  double BreakEvenIdleSeconds() const override {
    return backing_->BreakEvenIdleSeconds();
  }

  const std::string& name() const override { return name_; }
  power::ChannelId channel() const override { return nic_channel_; }

  double EstimateReadSeconds(uint64_t bytes) const override;
  double EstimateReadJoules(uint64_t bytes) const override;

  const power::NicSpec& nic() const { return nic_; }

 private:
  StatusOr<IoResult> Submit(double earliest_start, uint64_t bytes,
                            bool sequential, bool is_write);

  std::string name_;
  power::NicSpec nic_;
  power::EnergyMeter* meter_;
  power::ChannelId nic_channel_;
  StorageDevice* backing_;
  double busy_until_ = 0.0;
};

}  // namespace ecodb::storage

#endif  // ECODB_STORAGE_REMOTE_H_

#include "storage/compression.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <unordered_map>

namespace ecodb::storage {

const char* CompressionKindName(CompressionKind kind) {
  switch (kind) {
    case CompressionKind::kNone:
      return "none";
    case CompressionKind::kRle:
      return "rle";
    case CompressionKind::kDelta:
      return "delta";
    case CompressionKind::kBitpack:
      return "bitpack";
    case CompressionKind::kFor:
      return "for";
    case CompressionKind::kDictionary:
      return "dictionary";
  }
  return "unknown";
}

void PutVarint(uint64_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

bool GetVarint(const std::vector<uint8_t>& buf, size_t* pos, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  while (*pos < buf.size() && shift <= 63) {
    const uint8_t byte = buf[*pos];
    ++*pos;
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

int BitsNeeded(uint64_t v) {
  int bits = 0;
  while (v != 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

void BitpackValues(const std::vector<uint64_t>& values, int bits,
                   std::vector<uint8_t>* out) {
  assert(bits >= 0 && bits <= 64);
  const size_t start = out->size();
  const size_t total_bits = values.size() * static_cast<size_t>(bits);
  out->resize(start + (total_bits + 7) / 8, 0);
  size_t bitpos = 0;
  for (uint64_t v : values) {
    for (int b = 0; b < bits; ++b) {
      if ((v >> b) & 1) {
        (*out)[start + bitpos / 8] |= static_cast<uint8_t>(1u << (bitpos % 8));
      }
      ++bitpos;
    }
  }
}

Status BitunpackValues(const std::vector<uint8_t>& buf, size_t offset,
                       int bits, size_t count,
                       std::vector<uint64_t>* values) {
  const size_t total_bits = count * static_cast<size_t>(bits);
  if (offset + (total_bits + 7) / 8 > buf.size()) {
    return Status::DataLoss("bitpacked buffer truncated");
  }
  values->clear();
  values->reserve(count);
  size_t bitpos = 0;
  for (size_t i = 0; i < count; ++i) {
    uint64_t v = 0;
    for (int b = 0; b < bits; ++b) {
      if ((buf[offset + bitpos / 8] >> (bitpos % 8)) & 1) {
        v |= 1ULL << b;
      }
      ++bitpos;
    }
    values->push_back(v);
  }
  return Status::OK();
}

namespace {

// Each encoded buffer begins with [kind:1][count:varint] so decoders can
// sanity-check they were handed the right stream.
void PutHeader(CompressionKind kind, size_t count, std::vector<uint8_t>* out) {
  out->clear();
  out->push_back(static_cast<uint8_t>(kind));
  PutVarint(count, out);
}

Status GetHeader(const std::vector<uint8_t>& buf, CompressionKind expect,
                 size_t* pos, size_t* count) {
  *pos = 0;
  if (buf.empty()) return Status::DataLoss("empty compressed buffer");
  if (buf[0] != static_cast<uint8_t>(expect)) {
    return Status::InvalidArgument("buffer kind mismatch");
  }
  *pos = 1;
  uint64_t n = 0;
  if (!GetVarint(buf, pos, &n)) return Status::DataLoss("truncated header");
  *count = n;
  return Status::OK();
}

class NoneCodec final : public Int64Codec {
 public:
  CompressionKind kind() const override { return CompressionKind::kNone; }
  CpuCostProfile cost_profile() const override { return {1.0, 1.0}; }

  Status Encode(const std::vector<int64_t>& values,
                std::vector<uint8_t>* out) const override {
    PutHeader(kind(), values.size(), out);
    const size_t start = out->size();
    out->resize(start + values.size() * sizeof(int64_t));
    if (!values.empty()) {
      std::memcpy(out->data() + start, values.data(),
                  values.size() * sizeof(int64_t));
    }
    return Status::OK();
  }

  Status Decode(const std::vector<uint8_t>& buffer,
                std::vector<int64_t>* values) const override {
    size_t pos = 0, count = 0;
    ECODB_RETURN_IF_ERROR(GetHeader(buffer, kind(), &pos, &count));
    if (buffer.size() - pos < count * sizeof(int64_t)) {
      return Status::DataLoss("raw buffer truncated");
    }
    values->resize(count);
    if (count > 0) {
      std::memcpy(values->data(), buffer.data() + pos,
                  count * sizeof(int64_t));
    }
    return Status::OK();
  }
};

class RleCodec final : public Int64Codec {
 public:
  CompressionKind kind() const override { return CompressionKind::kRle; }
  CpuCostProfile cost_profile() const override { return {6.0, 3.0}; }

  Status Encode(const std::vector<int64_t>& values,
                std::vector<uint8_t>* out) const override {
    PutHeader(kind(), values.size(), out);
    size_t i = 0;
    while (i < values.size()) {
      size_t run = 1;
      while (i + run < values.size() && values[i + run] == values[i]) ++run;
      PutVarint(ZigzagEncode(values[i]), out);
      PutVarint(run, out);
      i += run;
    }
    return Status::OK();
  }

  Status Decode(const std::vector<uint8_t>& buffer,
                std::vector<int64_t>* values) const override {
    size_t pos = 0, count = 0;
    ECODB_RETURN_IF_ERROR(GetHeader(buffer, kind(), &pos, &count));
    values->clear();
    values->reserve(count);
    while (values->size() < count) {
      uint64_t zz = 0, run = 0;
      if (!GetVarint(buffer, &pos, &zz) || !GetVarint(buffer, &pos, &run)) {
        return Status::DataLoss("rle buffer truncated");
      }
      if (run == 0 || values->size() + run > count) {
        return Status::DataLoss("rle run overflows declared count");
      }
      values->insert(values->end(), run, ZigzagDecode(zz));
    }
    return Status::OK();
  }
};

class DeltaCodec final : public Int64Codec {
 public:
  CompressionKind kind() const override { return CompressionKind::kDelta; }
  CpuCostProfile cost_profile() const override { return {5.0, 4.0}; }

  Status Encode(const std::vector<int64_t>& values,
                std::vector<uint8_t>* out) const override {
    PutHeader(kind(), values.size(), out);
    int64_t prev = 0;
    for (int64_t v : values) {
      // Wrapping subtraction via uint64 avoids signed-overflow UB on
      // adversarial inputs; decode adds back with the same wrap.
      const uint64_t diff =
          static_cast<uint64_t>(v) - static_cast<uint64_t>(prev);
      PutVarint(ZigzagEncode(static_cast<int64_t>(diff)), out);
      prev = v;
    }
    return Status::OK();
  }

  Status Decode(const std::vector<uint8_t>& buffer,
                std::vector<int64_t>* values) const override {
    size_t pos = 0, count = 0;
    ECODB_RETURN_IF_ERROR(GetHeader(buffer, kind(), &pos, &count));
    values->clear();
    values->reserve(count);
    int64_t prev = 0;
    for (size_t i = 0; i < count; ++i) {
      uint64_t zz = 0;
      if (!GetVarint(buffer, &pos, &zz)) {
        return Status::DataLoss("delta buffer truncated");
      }
      prev = static_cast<int64_t>(static_cast<uint64_t>(prev) +
                                  static_cast<uint64_t>(ZigzagDecode(zz)));
      values->push_back(prev);
    }
    return Status::OK();
  }
};

// Bitpack and FOR share machinery; FOR subtracts the minimum first so that
// clustered-but-large values (e.g. order keys) pack into few bits.
class BitpackCodecImpl : public Int64Codec {
 public:
  explicit BitpackCodecImpl(bool frame_of_reference)
      : frame_of_reference_(frame_of_reference) {}

  CompressionKind kind() const override {
    return frame_of_reference_ ? CompressionKind::kFor
                               : CompressionKind::kBitpack;
  }
  CpuCostProfile cost_profile() const override { return {4.0, 3.5}; }

  Status Encode(const std::vector<int64_t>& values,
                std::vector<uint8_t>* out) const override {
    PutHeader(kind(), values.size(), out);
    if (values.empty()) return Status::OK();
    int64_t reference = 0;
    if (frame_of_reference_) {
      reference = *std::min_element(values.begin(), values.end());
    } else {
      // Plain bitpack still needs non-negative inputs; fall back to zigzag.
      for (int64_t v : values) {
        if (v < 0) reference = std::min(reference, v);
      }
    }
    PutVarint(ZigzagEncode(reference), out);
    uint64_t max_off = 0;
    std::vector<uint64_t> offsets;
    offsets.reserve(values.size());
    for (int64_t v : values) {
      const uint64_t off =
          static_cast<uint64_t>(v) - static_cast<uint64_t>(reference);
      offsets.push_back(off);
      max_off = std::max(max_off, off);
    }
    const int bits = BitsNeeded(max_off);
    out->push_back(static_cast<uint8_t>(bits));
    BitpackValues(offsets, bits, out);
    return Status::OK();
  }

  Status Decode(const std::vector<uint8_t>& buffer,
                std::vector<int64_t>* values) const override {
    size_t pos = 0, count = 0;
    ECODB_RETURN_IF_ERROR(GetHeader(buffer, kind(), &pos, &count));
    values->clear();
    if (count == 0) return Status::OK();
    uint64_t ref_zz = 0;
    if (!GetVarint(buffer, &pos, &ref_zz)) {
      return Status::DataLoss("bitpack reference truncated");
    }
    const int64_t reference = ZigzagDecode(ref_zz);
    if (pos >= buffer.size()) return Status::DataLoss("bitpack width missing");
    const int bits = buffer[pos++];
    if (bits > 64) return Status::DataLoss("bitpack width out of range");
    std::vector<uint64_t> offsets;
    ECODB_RETURN_IF_ERROR(
        BitunpackValues(buffer, pos, bits, count, &offsets));
    values->reserve(count);
    for (uint64_t off : offsets) {
      values->push_back(
          static_cast<int64_t>(static_cast<uint64_t>(reference) + off));
    }
    return Status::OK();
  }

 private:
  bool frame_of_reference_;
};

}  // namespace

std::unique_ptr<Int64Codec> MakeInt64Codec(CompressionKind kind) {
  switch (kind) {
    case CompressionKind::kNone:
      return std::make_unique<NoneCodec>();
    case CompressionKind::kRle:
      return std::make_unique<RleCodec>();
    case CompressionKind::kDelta:
      return std::make_unique<DeltaCodec>();
    case CompressionKind::kBitpack:
      return std::make_unique<BitpackCodecImpl>(false);
    case CompressionKind::kFor:
      return std::make_unique<BitpackCodecImpl>(true);
    case CompressionKind::kDictionary:
      return nullptr;  // string-only
  }
  return nullptr;
}

CpuCostProfile StringDictionaryCodec::cost_profile() const {
  return {12.0, 4.0};
}

Status StringDictionaryCodec::Encode(const std::vector<std::string>& values,
                                     std::vector<uint8_t>* out) const {
  PutHeader(CompressionKind::kDictionary, values.size(), out);
  // Build dictionary in first-appearance order for determinism.
  std::unordered_map<std::string, uint64_t> index;
  std::vector<const std::string*> dict;
  std::vector<uint64_t> codes;
  codes.reserve(values.size());
  for (const std::string& s : values) {
    auto [it, inserted] = index.try_emplace(s, dict.size());
    if (inserted) dict.push_back(&it->first);
    codes.push_back(it->second);
  }
  PutVarint(dict.size(), out);
  for (const std::string* s : dict) {
    PutVarint(s->size(), out);
    out->insert(out->end(), s->begin(), s->end());
  }
  const int bits = BitsNeeded(dict.empty() ? 0 : dict.size() - 1);
  out->push_back(static_cast<uint8_t>(bits));
  BitpackValues(codes, bits, out);
  return Status::OK();
}

Status StringDictionaryCodec::Decode(const std::vector<uint8_t>& buffer,
                                     std::vector<std::string>* values) const {
  size_t pos = 0, count = 0;
  ECODB_RETURN_IF_ERROR(
      GetHeader(buffer, CompressionKind::kDictionary, &pos, &count));
  uint64_t dict_size = 0;
  if (!GetVarint(buffer, &pos, &dict_size)) {
    return Status::DataLoss("dictionary size truncated");
  }
  std::vector<std::string> dict;
  dict.reserve(dict_size);
  for (uint64_t i = 0; i < dict_size; ++i) {
    uint64_t len = 0;
    if (!GetVarint(buffer, &pos, &len) || pos + len > buffer.size()) {
      return Status::DataLoss("dictionary entry truncated");
    }
    dict.emplace_back(buffer.begin() + static_cast<long>(pos),
                      buffer.begin() + static_cast<long>(pos + len));
    pos += len;
  }
  if (pos >= buffer.size() && count > 0) {
    return Status::DataLoss("dictionary code width missing");
  }
  if (count == 0) {
    values->clear();
    return Status::OK();
  }
  const int bits = buffer[pos++];
  std::vector<uint64_t> codes;
  ECODB_RETURN_IF_ERROR(BitunpackValues(buffer, pos, bits, count, &codes));
  values->clear();
  values->reserve(count);
  for (uint64_t c : codes) {
    if (c >= dict.size()) return Status::DataLoss("dictionary code range");
    values->push_back(dict[c]);
  }
  return Status::OK();
}

double MeasureInt64Ratio(const Int64Codec& codec,
                         const std::vector<int64_t>& sample) {
  if (sample.empty()) return 1.0;
  std::vector<uint8_t> buf;
  if (!codec.Encode(sample, &buf).ok()) return 1.0;
  const double raw = static_cast<double>(sample.size() * sizeof(int64_t));
  return static_cast<double>(buf.size()) / raw;
}

}  // namespace ecodb::storage

#include "storage/compression.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <limits>
#include <unordered_map>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace ecodb::storage {

namespace {

// The word-at-a-time kernels assume unaligned little-endian 64-bit loads;
// big-endian targets take the scalar reference path instead.
constexpr bool kLittleEndian = std::endian::native == std::endian::little;

}  // namespace

const char* CompressionKindName(CompressionKind kind) {
  switch (kind) {
    case CompressionKind::kNone:
      return "none";
    case CompressionKind::kRle:
      return "rle";
    case CompressionKind::kDelta:
      return "delta";
    case CompressionKind::kBitpack:
      return "bitpack";
    case CompressionKind::kFor:
      return "for";
    case CompressionKind::kDictionary:
      return "dictionary";
  }
  return "unknown";
}

void PutVarint(uint64_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

bool GetVarint(const std::vector<uint8_t>& buf, size_t* pos, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  while (*pos < buf.size() && shift <= 63) {
    const uint8_t byte = buf[*pos];
    ++*pos;
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

int BitsNeeded(uint64_t v) {
  int bits = 0;
  while (v != 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

void BitpackValues(const std::vector<uint64_t>& values, int bits,
                   std::vector<uint8_t>* out) {
  assert(bits >= 0 && bits <= 64);
  const size_t start = out->size();
  const size_t total_bits = values.size() * static_cast<size_t>(bits);
  out->resize(start + (total_bits + 7) / 8, 0);
  size_t bitpos = 0;
  for (uint64_t v : values) {
    for (int b = 0; b < bits; ++b) {
      if ((v >> b) & 1) {
        (*out)[start + bitpos / 8] |= static_cast<uint8_t>(1u << (bitpos % 8));
      }
      ++bitpos;
    }
  }
}

namespace {

// Shared bounds check for both unpack kernels. The multiplication guard
// matters: an adversarial varint count can make `count * bits` wrap and
// sneak past the byte-length comparison.
Status CheckBitpackBounds(const std::vector<uint8_t>& buf, size_t offset,
                          int bits, size_t count) {
  assert(bits >= 0 && bits <= 64);
  if (bits > 0 &&
      count > (std::numeric_limits<size_t>::max() - 7) /
                  static_cast<size_t>(bits)) {
    return Status::DataLoss("bitpacked count overflows");
  }
  const size_t packed = (count * static_cast<size_t>(bits) + 7) / 8;
  if (offset > buf.size() || packed > buf.size() - offset) {
    return Status::DataLoss("bitpacked buffer truncated");
  }
  return Status::OK();
}

// Loads up to `n` (< 8) little-endian bytes into a zero-extended word.
inline uint64_t LoadTail(const uint8_t* p, size_t n) {
  uint64_t w = 0;
  std::memcpy(&w, p, n);
  return w;
}

// Word-at-a-time unpack of `count` values of width `bits` from base[0..size).
// Bounds were validated by the caller; `size` may extend past the packed
// region, which lets most values use a full unaligned 8-byte load.
void BitunpackWords(const uint8_t* base, size_t size, int bits, size_t count,
                    uint64_t* out) {
  if (bits == 0) {
    std::fill_n(out, count, uint64_t{0});
    return;
  }
  const uint64_t mask =
      bits == 64 ? ~uint64_t{0} : ((uint64_t{1} << bits) - 1);
  size_t i = 0;
#if defined(__AVX2__)
  if (bits <= 14) {
    // Four consecutive values span at most 7 + 4*14 = 63 bits, so a single
    // unaligned 64-bit load feeds a 4-lane variable shift.
    const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
    const __m256i lane = _mm256_set_epi64x(3LL * bits, 2LL * bits, bits, 0);
    while (i + 4 <= count) {
      const size_t bitpos = i * static_cast<size_t>(bits);
      const size_t byte = bitpos >> 3;
      if (byte + 8 > size) break;  // finish on the scalar tail below
      uint64_t w;
      std::memcpy(&w, base + byte, 8);
      const __m256i shifted = _mm256_srlv_epi64(
          _mm256_set1_epi64x(static_cast<long long>(w)),
          _mm256_add_epi64(
              lane, _mm256_set1_epi64x(static_cast<long long>(bitpos & 7))));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                          _mm256_and_si256(shifted, vmask));
      i += 4;
    }
  }
#endif
  if (bits <= 57) {
    // A value starting anywhere inside a byte spans at most 7 + 57 = 64
    // bits: one unaligned load per value.
    while (i < count) {
      const size_t bitpos = i * static_cast<size_t>(bits);
      const size_t byte = bitpos >> 3;
      if (byte + 8 > size) break;
      uint64_t w;
      std::memcpy(&w, base + byte, 8);
      out[i] = (w >> (bitpos & 7)) & mask;
      ++i;
    }
    // Tail values whose 8-byte window would run past the buffer.
    for (; i < count; ++i) {
      const size_t bitpos = i * static_cast<size_t>(bits);
      const size_t byte = bitpos >> 3;
      out[i] = (LoadTail(base + byte, size - byte) >> (bitpos & 7)) & mask;
    }
  } else {
    // 58..64-bit values can straddle nine bytes: stitch two loads.
    for (; i < count; ++i) {
      const size_t bitpos = i * static_cast<size_t>(bits);
      const size_t byte = bitpos >> 3;
      const int shift = static_cast<int>(bitpos & 7);
      uint64_t v = LoadTail(base + byte, std::min<size_t>(8, size - byte));
      v >>= shift;
      if (shift + bits > 64 && byte + 8 < size) {
        const uint64_t hi =
            LoadTail(base + byte + 8, std::min<size_t>(8, size - byte - 8));
        v |= hi << (64 - shift);
      }
      out[i] = v & mask;
    }
  }
}

// Unpacks into a raw output lane the caller has already sized. Used by the
// codec fast paths to decode straight into the destination vector.
void BitunpackRawUnchecked(const std::vector<uint8_t>& buf, size_t offset,
                           int bits, size_t count, uint64_t* out) {
  if (count == 0) return;
  if constexpr (kLittleEndian) {
    BitunpackWords(buf.data() + offset, buf.size() - offset, bits, count, out);
  } else {
    size_t bitpos = 0;
    for (size_t i = 0; i < count; ++i) {
      uint64_t v = 0;
      for (int b = 0; b < bits; ++b) {
        if ((buf[offset + bitpos / 8] >> (bitpos % 8)) & 1) {
          v |= 1ULL << b;
        }
        ++bitpos;
      }
      out[i] = v;
    }
  }
}

}  // namespace

Status BitunpackValues(const std::vector<uint8_t>& buf, size_t offset,
                       int bits, size_t count,
                       std::vector<uint64_t>* values) {
  ECODB_RETURN_IF_ERROR(CheckBitpackBounds(buf, offset, bits, count));
  values->resize(count);
  BitunpackRawUnchecked(buf, offset, bits, count, values->data());
  return Status::OK();
}

Status BitunpackValuesScalar(const std::vector<uint8_t>& buf, size_t offset,
                             int bits, size_t count,
                             std::vector<uint64_t>* values) {
  ECODB_RETURN_IF_ERROR(CheckBitpackBounds(buf, offset, bits, count));
  values->clear();
  values->reserve(count);
  size_t bitpos = 0;
  for (size_t i = 0; i < count; ++i) {
    uint64_t v = 0;
    for (int b = 0; b < bits; ++b) {
      if ((buf[offset + bitpos / 8] >> (bitpos % 8)) & 1) {
        v |= 1ULL << b;
      }
      ++bitpos;
    }
    values->push_back(v);
  }
  return Status::OK();
}

namespace {

// Each encoded buffer begins with [kind:1][count:varint] so decoders can
// sanity-check they were handed the right stream.
void PutHeader(CompressionKind kind, size_t count, std::vector<uint8_t>* out) {
  out->clear();
  out->push_back(static_cast<uint8_t>(kind));
  PutVarint(count, out);
}

Status GetHeader(const std::vector<uint8_t>& buf, CompressionKind expect,
                 size_t* pos, size_t* count) {
  *pos = 0;
  if (buf.empty()) return Status::DataLoss("empty compressed buffer");
  if (buf[0] != static_cast<uint8_t>(expect)) {
    return Status::InvalidArgument("buffer kind mismatch");
  }
  *pos = 1;
  uint64_t n = 0;
  if (!GetVarint(buf, pos, &n)) return Status::DataLoss("truncated header");
  *count = n;
  return Status::OK();
}

class NoneCodec final : public Int64Codec {
 public:
  CompressionKind kind() const override { return CompressionKind::kNone; }
  CpuCostProfile cost_profile() const override { return {1.0, 1.0}; }

  Status Encode(const std::vector<int64_t>& values,
                std::vector<uint8_t>* out) const override {
    PutHeader(kind(), values.size(), out);
    const size_t start = out->size();
    out->resize(start + values.size() * sizeof(int64_t));
    if (!values.empty()) {
      std::memcpy(out->data() + start, values.data(),
                  values.size() * sizeof(int64_t));
    }
    return Status::OK();
  }

  Status Decode(const std::vector<uint8_t>& buffer,
                std::vector<int64_t>* values) const override {
    size_t pos = 0, count = 0;
    ECODB_RETURN_IF_ERROR(GetHeader(buffer, kind(), &pos, &count));
    if (buffer.size() - pos < count * sizeof(int64_t)) {
      return Status::DataLoss("raw buffer truncated");
    }
    values->resize(count);
    if (count > 0) {
      std::memcpy(values->data(), buffer.data() + pos,
                  count * sizeof(int64_t));
    }
    return Status::OK();
  }
};

// `reference` selects the scalar value-at-a-time decoder kept as the
// differential oracle; the default decoder materializes run-at-a-time.
class RleCodec final : public Int64Codec {
 public:
  explicit RleCodec(bool reference) : reference_(reference) {}

  CompressionKind kind() const override { return CompressionKind::kRle; }
  CpuCostProfile cost_profile() const override {
    // Decode calibrated from bench/micro_codecs on the build host: the
    // run-at-a-time fill decodes at ~2.3x the uncompressed touch lane
    // (kNone's memcpy). The reference profile keeps the historical model
    // constant the scalar decoder shipped with.
    return reference_ ? CpuCostProfile{6.0, 3.0} : CpuCostProfile{6.0, 2.3};
  }

  Status Encode(const std::vector<int64_t>& values,
                std::vector<uint8_t>* out) const override {
    PutHeader(kind(), values.size(), out);
    size_t i = 0;
    while (i < values.size()) {
      size_t run = 1;
      while (i + run < values.size() && values[i + run] == values[i]) ++run;
      PutVarint(ZigzagEncode(values[i]), out);
      PutVarint(run, out);
      i += run;
    }
    return Status::OK();
  }

  Status Decode(const std::vector<uint8_t>& buffer,
                std::vector<int64_t>* values) const override {
    size_t pos = 0, count = 0;
    ECODB_RETURN_IF_ERROR(GetHeader(buffer, kind(), &pos, &count));
    // A run can legitimately cover far more values than the buffer has
    // bytes, so `count` cannot be validated against the payload size up
    // front. Capping the speculative reserve keeps a hostile header from
    // forcing a huge allocation before any payload is parsed; the output
    // then grows only as actual runs are decoded.
    values->clear();
    values->reserve(std::min<size_t>(count, 1 + buffer.size() * 64));
    if (reference_) {
      while (values->size() < count) {
        uint64_t zz = 0, run = 0;
        if (!GetVarint(buffer, &pos, &zz) || !GetVarint(buffer, &pos, &run)) {
          return Status::DataLoss("rle buffer truncated");
        }
        if (run == 0 || values->size() + run > count) {
          return Status::DataLoss("rle run overflows declared count");
        }
        values->insert(values->end(), run, ZigzagDecode(zz));
      }
      return Status::OK();
    }
    // Fast path: materialize each run with a single fill-style resize
    // (vectorizes to a splat-store loop).
    size_t filled = 0;
    while (filled < count) {
      uint64_t zz = 0, run = 0;
      if (!GetVarint(buffer, &pos, &zz) || !GetVarint(buffer, &pos, &run)) {
        return Status::DataLoss("rle buffer truncated");
      }
      if (run == 0 || run > count - filled) {
        return Status::DataLoss("rle run overflows declared count");
      }
      filled += run;
      values->resize(filled, ZigzagDecode(zz));
    }
    return Status::OK();
  }

 private:
  bool reference_;
};

class DeltaCodec final : public Int64Codec {
 public:
  explicit DeltaCodec(bool reference) : reference_(reference) {}

  CompressionKind kind() const override { return CompressionKind::kDelta; }
  CpuCostProfile cost_profile() const override {
    // Calibrated from bench/micro_codecs: group-of-8 varint decode runs at
    // ~4.6x the uncompressed touch lane (sequential data, one byte per
    // delta). Reference keeps the historical constant.
    return reference_ ? CpuCostProfile{5.0, 4.0} : CpuCostProfile{5.0, 4.6};
  }

  Status Encode(const std::vector<int64_t>& values,
                std::vector<uint8_t>* out) const override {
    PutHeader(kind(), values.size(), out);
    int64_t prev = 0;
    for (int64_t v : values) {
      // Wrapping subtraction via uint64 avoids signed-overflow UB on
      // adversarial inputs; decode adds back with the same wrap.
      const uint64_t diff =
          static_cast<uint64_t>(v) - static_cast<uint64_t>(prev);
      PutVarint(ZigzagEncode(static_cast<int64_t>(diff)), out);
      prev = v;
    }
    return Status::OK();
  }

  Status Decode(const std::vector<uint8_t>& buffer,
                std::vector<int64_t>* values) const override {
    size_t pos = 0, count = 0;
    ECODB_RETURN_IF_ERROR(GetHeader(buffer, kind(), &pos, &count));
    // Every delta is at least one payload byte, so a count the payload
    // cannot possibly satisfy is rejected before any allocation sized
    // from the (untrusted) header.
    if (count > buffer.size() - pos) {
      return Status::DataLoss("delta count exceeds payload");
    }
    if (reference_) {
      values->clear();
      values->reserve(count);
      int64_t prev = 0;
      for (size_t i = 0; i < count; ++i) {
        uint64_t zz = 0;
        if (!GetVarint(buffer, &pos, &zz)) {
          return Status::DataLoss("delta buffer truncated");
        }
        prev = static_cast<int64_t>(static_cast<uint64_t>(prev) +
                                    static_cast<uint64_t>(ZigzagDecode(zz)));
        values->push_back(prev);
      }
      return Status::OK();
    }
    values->resize(count);
    const uint8_t* data = buffer.data();
    const size_t size = buffer.size();
    int64_t prev = 0;
    size_t i = 0;
    while (i < count) {
      // Group fast path: when the next eight bytes are all terminal varint
      // bytes (high bit clear), one load decodes eight deltas at once.
      // Small deltas are the common case for sorted keys and dates.
      if (kLittleEndian && i + 8 <= count && pos + 8 <= size) {
        uint64_t w;
        std::memcpy(&w, data + pos, 8);
        if ((w & 0x8080808080808080ULL) == 0) {
          for (int j = 0; j < 8; ++j) {
            prev = static_cast<int64_t>(
                static_cast<uint64_t>(prev) +
                static_cast<uint64_t>(ZigzagDecode(w & 0x7f)));
            (*values)[i + static_cast<size_t>(j)] = prev;
            w >>= 8;
          }
          i += 8;
          pos += 8;
          continue;
        }
      }
      uint64_t zz = 0;
      if (!GetVarint(buffer, &pos, &zz)) {
        return Status::DataLoss("delta buffer truncated");
      }
      prev = static_cast<int64_t>(static_cast<uint64_t>(prev) +
                                  static_cast<uint64_t>(ZigzagDecode(zz)));
      (*values)[i++] = prev;
    }
    return Status::OK();
  }

 private:
  bool reference_;
};

// Bitpack and FOR share machinery; FOR subtracts the minimum first so that
// clustered-but-large values (e.g. order keys) pack into few bits.
class BitpackCodecImpl : public Int64Codec {
 public:
  BitpackCodecImpl(bool frame_of_reference, bool reference_impl)
      : frame_of_reference_(frame_of_reference),
        reference_impl_(reference_impl) {}

  CompressionKind kind() const override {
    return frame_of_reference_ ? CompressionKind::kFor
                               : CompressionKind::kBitpack;
  }
  CpuCostProfile cost_profile() const override {
    // Calibrated from bench/micro_codecs: the word-at-a-time unpack runs at
    // ~4.6-7.2x the uncompressed touch lane depending on bit width (narrow
    // widths amortize better); 4.8 is the sequential/runs midpoint.
    // Reference keeps the historical constant.
    return reference_impl_ ? CpuCostProfile{4.0, 3.5}
                           : CpuCostProfile{4.0, 4.8};
  }

  Status Encode(const std::vector<int64_t>& values,
                std::vector<uint8_t>* out) const override {
    PutHeader(kind(), values.size(), out);
    if (values.empty()) return Status::OK();
    int64_t reference = 0;
    if (frame_of_reference_) {
      reference = *std::min_element(values.begin(), values.end());
    } else {
      // Plain bitpack still needs non-negative inputs; fall back to zigzag.
      for (int64_t v : values) {
        if (v < 0) reference = std::min(reference, v);
      }
    }
    PutVarint(ZigzagEncode(reference), out);
    uint64_t max_off = 0;
    std::vector<uint64_t> offsets;
    offsets.reserve(values.size());
    for (int64_t v : values) {
      const uint64_t off =
          static_cast<uint64_t>(v) - static_cast<uint64_t>(reference);
      offsets.push_back(off);
      max_off = std::max(max_off, off);
    }
    const int bits = BitsNeeded(max_off);
    out->push_back(static_cast<uint8_t>(bits));
    BitpackValues(offsets, bits, out);
    return Status::OK();
  }

  Status Decode(const std::vector<uint8_t>& buffer,
                std::vector<int64_t>* values) const override {
    size_t pos = 0, count = 0;
    ECODB_RETURN_IF_ERROR(GetHeader(buffer, kind(), &pos, &count));
    values->clear();
    if (count == 0) return Status::OK();
    uint64_t ref_zz = 0;
    if (!GetVarint(buffer, &pos, &ref_zz)) {
      return Status::DataLoss("bitpack reference truncated");
    }
    const int64_t reference = ZigzagDecode(ref_zz);
    if (pos >= buffer.size()) return Status::DataLoss("bitpack width missing");
    const int bits = buffer[pos++];
    if (bits > 64) return Status::DataLoss("bitpack width out of range");
    if (reference_impl_) {
      std::vector<uint64_t> offsets;
      ECODB_RETURN_IF_ERROR(
          BitunpackValuesScalar(buffer, pos, bits, count, &offsets));
      values->reserve(count);
      for (uint64_t off : offsets) {
        values->push_back(
            static_cast<int64_t>(static_cast<uint64_t>(reference) + off));
      }
      return Status::OK();
    }
    // Fast path: unpack straight into the output lane (int64/uint64 alias
    // legally) and add the reference in place — no offsets temporary.
    ECODB_RETURN_IF_ERROR(CheckBitpackBounds(buffer, pos, bits, count));
    values->resize(count);
    uint64_t* raw = reinterpret_cast<uint64_t*>(values->data());
    BitunpackRawUnchecked(buffer, pos, bits, count, raw);
    if (reference != 0) {
      const uint64_t ref = static_cast<uint64_t>(reference);
      size_t i = 0;
#if defined(__AVX2__)
      const __m256i vref = _mm256_set1_epi64x(static_cast<long long>(ref));
      for (; i + 4 <= count; i += 4) {
        const __m256i v =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(raw + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(raw + i),
                            _mm256_add_epi64(v, vref));
      }
#endif
      for (; i < count; ++i) raw[i] += ref;
    }
    return Status::OK();
  }

 private:
  bool frame_of_reference_;
  bool reference_impl_;
};

std::unique_ptr<Int64Codec> MakeCodec(CompressionKind kind, bool reference) {
  switch (kind) {
    case CompressionKind::kNone:
      return std::make_unique<NoneCodec>();
    case CompressionKind::kRle:
      return std::make_unique<RleCodec>(reference);
    case CompressionKind::kDelta:
      return std::make_unique<DeltaCodec>(reference);
    case CompressionKind::kBitpack:
      return std::make_unique<BitpackCodecImpl>(false, reference);
    case CompressionKind::kFor:
      return std::make_unique<BitpackCodecImpl>(true, reference);
    case CompressionKind::kDictionary:
      return nullptr;  // string-only
  }
  return nullptr;
}

}  // namespace

std::unique_ptr<Int64Codec> MakeInt64Codec(CompressionKind kind) {
  return MakeCodec(kind, /*reference=*/false);
}

std::unique_ptr<Int64Codec> MakeReferenceInt64Codec(CompressionKind kind) {
  return MakeCodec(kind, /*reference=*/true);
}

CpuCostProfile StringDictionaryCodec::cost_profile() const {
  // Decode = fast code unpack + per-value string materialization; the
  // strings dominate, so the vectorized code unpack only trims the old
  // constant slightly.
  return {12.0, 3.5};
}

Status StringDictionaryCodec::Encode(const std::vector<std::string>& values,
                                     std::vector<uint8_t>* out) const {
  PutHeader(CompressionKind::kDictionary, values.size(), out);
  // Build dictionary in first-appearance order for determinism.
  std::unordered_map<std::string, uint64_t> index;
  std::vector<const std::string*> dict;
  std::vector<uint64_t> codes;
  codes.reserve(values.size());
  for (const std::string& s : values) {
    auto [it, inserted] = index.try_emplace(s, dict.size());
    if (inserted) dict.push_back(&it->first);
    codes.push_back(it->second);
  }
  PutVarint(dict.size(), out);
  for (const std::string* s : dict) {
    PutVarint(s->size(), out);
    out->insert(out->end(), s->begin(), s->end());
  }
  const int bits = BitsNeeded(dict.empty() ? 0 : dict.size() - 1);
  out->push_back(static_cast<uint8_t>(bits));
  BitpackValues(codes, bits, out);
  return Status::OK();
}

Status StringDictionaryCodec::Decode(const std::vector<uint8_t>& buffer,
                                     std::vector<std::string>* values) const {
  size_t pos = 0, count = 0;
  ECODB_RETURN_IF_ERROR(
      GetHeader(buffer, CompressionKind::kDictionary, &pos, &count));
  uint64_t dict_size = 0;
  if (!GetVarint(buffer, &pos, &dict_size)) {
    return Status::DataLoss("dictionary size truncated");
  }
  std::vector<std::string> dict;
  dict.reserve(dict_size);
  for (uint64_t i = 0; i < dict_size; ++i) {
    uint64_t len = 0;
    if (!GetVarint(buffer, &pos, &len) || pos + len > buffer.size()) {
      return Status::DataLoss("dictionary entry truncated");
    }
    dict.emplace_back(buffer.begin() + static_cast<long>(pos),
                      buffer.begin() + static_cast<long>(pos + len));
    pos += len;
  }
  if (pos >= buffer.size() && count > 0) {
    return Status::DataLoss("dictionary code width missing");
  }
  if (count == 0) {
    values->clear();
    return Status::OK();
  }
  const int bits = buffer[pos++];
  std::vector<uint64_t> codes;
  ECODB_RETURN_IF_ERROR(BitunpackValues(buffer, pos, bits, count, &codes));
  values->clear();
  values->reserve(count);
  for (uint64_t c : codes) {
    if (c >= dict.size()) return Status::DataLoss("dictionary code range");
    values->push_back(dict[c]);
  }
  return Status::OK();
}

double MeasureInt64Ratio(const Int64Codec& codec,
                         const std::vector<int64_t>& sample) {
  if (sample.empty()) return 1.0;
  std::vector<uint8_t> buf;
  if (!codec.Encode(sample, &buf).ok()) return 1.0;
  const double raw = static_cast<double>(sample.size() * sizeof(int64_t));
  return static_cast<double>(buf.size()) / raw;
}

}  // namespace ecodb::storage

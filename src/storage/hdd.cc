#include "storage/hdd.h"

#include <algorithm>
#include <cassert>

namespace ecodb::storage {

HddDevice::HddDevice(std::string name, const power::HddSpec& spec,
                     power::EnergyMeter* meter)
    : name_(std::move(name)), spec_(spec), meter_(meter) {
  assert(power::ValidateHddSpec(spec_).ok());
  channel_ = meter_->RegisterChannel(name_, spec_.idle_watts);
  busy_until_ = meter_->clock()->now();
}

void HddDevice::PowerDown(double t) {
  t = std::max(t, busy_until_);
  if (standby_) return;
  standby_ = true;
  meter_->SetPowerAt(channel_, t, spec_.standby_watts);
  busy_until_ = std::max(busy_until_, t);
  last_op_sequential_ = false;  // heads lose position
}

void HddDevice::PowerUp(double t) {
  t = std::max(t, busy_until_);
  if (!standby_) return;
  standby_ = false;
  ++spinup_count_;
  // Spin-up: draw spinup watts for spinup_seconds, then drop to idle.
  const double extra =
      (spec_.spinup_watts - spec_.standby_watts) * spec_.spinup_seconds;
  meter_->AddEnergyAt(channel_, t + spec_.spinup_seconds, extra,
                      spec_.spinup_seconds);
  meter_->SetPowerAt(channel_, t + spec_.spinup_seconds, spec_.idle_watts);
  busy_until_ = t + spec_.spinup_seconds;
}

IoResult HddDevice::Submit(double earliest_start, uint64_t bytes,
                           bool sequential, double bw_bytes_per_s) {
  if (standby_) {
    PowerUp(std::max(earliest_start, busy_until_));
  }
  const double start = std::max(earliest_start, busy_until_);
  double service = static_cast<double>(bytes) / bw_bytes_per_s;
  // Positioning: every random access seeks; a sequential access only pays
  // positioning if the previous op was not part of the same stream.
  if (!sequential || !last_op_sequential_) {
    service += spec_.avg_seek_s + spec_.rotational_latency_s;
  }
  last_op_sequential_ = sequential;
  const double end = start + service;
  // Active-power differential above the idle background for the busy span.
  const double active_joules =
      (spec_.active_watts - spec_.idle_watts) * service;
  meter_->AddEnergyAt(channel_, end, active_joules, service);
  busy_until_ = end;
  IoResult result{start, end, service};
  result.active_joules = active_joules;
  return result;
}

double HddDevice::EstimateReadSeconds(uint64_t bytes) const {
  double t = spec_.avg_seek_s + spec_.rotational_latency_s +
             static_cast<double>(bytes) / spec_.sustained_bw_bytes_per_s;
  if (standby_) t += spec_.spinup_seconds;
  return t;
}

double HddDevice::EstimateReadJoules(uint64_t bytes) const {
  const double service = spec_.avg_seek_s + spec_.rotational_latency_s +
                         static_cast<double>(bytes) /
                             spec_.sustained_bw_bytes_per_s;
  double joules = spec_.active_watts * service;
  if (standby_) joules += spec_.SpinupJoules();
  return joules;
}

StatusOr<IoResult> HddDevice::SubmitRead(double earliest_start, uint64_t bytes,
                                         bool sequential) {
  return Submit(earliest_start, bytes, sequential,
                spec_.sustained_bw_bytes_per_s);
}

StatusOr<IoResult> HddDevice::SubmitWrite(double earliest_start,
                                          uint64_t bytes, bool sequential) {
  // Writes stream at ~90% of read bandwidth on drives of this class.
  return Submit(earliest_start, bytes, sequential,
                spec_.sustained_bw_bytes_per_s * 0.9);
}

}  // namespace ecodb::storage

#include "storage/table_storage.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace ecodb::storage {

const char* TableLayoutName(TableLayout layout) {
  switch (layout) {
    case TableLayout::kRow:
      return "row";
    case TableLayout::kColumn:
      return "column";
  }
  return "unknown";
}

size_t ColumnData::size() const {
  switch (type) {
    case catalog::DataType::kInt64:
    case catalog::DataType::kDate:
      return i64.size();
    case catalog::DataType::kDouble:
      return f64.size();
    case catalog::DataType::kString:
      return str.size();
  }
  return 0;
}

TableStorage::TableStorage(catalog::TableId id, catalog::Schema schema,
                           TableLayout layout, StorageDevice* device)
    : id_(id), schema_(std::move(schema)), layout_(layout), device_(device) {
  columns_.resize(schema_.num_columns());
  layouts_.resize(schema_.num_columns());
  encoded_.resize(schema_.num_columns());
  for (int i = 0; i < schema_.num_columns(); ++i) {
    columns_[i].type = schema_.column(i).type;
  }
}

namespace {

uint64_t RawColumnBytes(const catalog::Column& col, uint64_t rows,
                        const ColumnData& data) {
  if (col.type == catalog::DataType::kString) {
    uint64_t total = 0;
    for (const std::string& s : data.str) total += s.size() + 1;
    return total;
  }
  return rows * 8;
}

}  // namespace

Status TableStorage::Append(const std::vector<ColumnData>& columns) {
  if (static_cast<int>(columns.size()) != schema_.num_columns()) {
    return Status::InvalidArgument("column count mismatch");
  }
  const size_t rows = columns.empty() ? 0 : columns[0].size();
  for (int i = 0; i < schema_.num_columns(); ++i) {
    if (columns[i].type != schema_.column(i).type) {
      return Status::InvalidArgument("type mismatch in column " +
                                     schema_.column(i).name);
    }
    if (columns[i].size() != rows) {
      return Status::InvalidArgument("ragged column lengths");
    }
  }
  for (int i = 0; i < schema_.num_columns(); ++i) {
    ColumnData& dst = columns_[i];
    const ColumnData& src = columns[i];
    dst.i64.insert(dst.i64.end(), src.i64.begin(), src.i64.end());
    dst.f64.insert(dst.f64.end(), src.f64.begin(), src.f64.end());
    dst.str.insert(dst.str.end(), src.str.begin(), src.str.end());
  }
  row_count_ += rows;
  for (int i = 0; i < schema_.num_columns(); ++i) {
    ECODB_RETURN_IF_ERROR(ReencodeColumn(i));
  }
  return Status::OK();
}

Status TableStorage::ReencodeColumn(int i) {
  ColumnLayout& layout = layouts_[i];
  const catalog::Column& col = schema_.column(i);
  layout.raw_bytes = RawColumnBytes(col, row_count_, columns_[i]);

  if (layout.compression == CompressionKind::kNone) {
    encoded_[i].clear();
    layout.encoded_bytes = layout.raw_bytes;
    return Status::OK();
  }
  if (col.type == catalog::DataType::kString) {
    if (layout.compression != CompressionKind::kDictionary) {
      return Status::InvalidArgument("string columns support dictionary only");
    }
    StringDictionaryCodec codec;
    ECODB_RETURN_IF_ERROR(codec.Encode(columns_[i].str, &encoded_[i]));
    layout.encoded_bytes = encoded_[i].size();
    return Status::OK();
  }
  if (col.type == catalog::DataType::kDouble) {
    return Status::Unimplemented("double columns are stored uncompressed");
  }
  auto codec = MakeInt64Codec(layout.compression);
  if (codec == nullptr) {
    return Status::InvalidArgument("codec not applicable to int64");
  }
  ECODB_RETURN_IF_ERROR(codec->Encode(columns_[i].i64, &encoded_[i]));
  layout.encoded_bytes = encoded_[i].size();
  return Status::OK();
}

Status TableStorage::SetCompression(const std::string& column,
                                    CompressionKind kind) {
  const int idx = schema_.FindColumn(column);
  if (idx < 0) return Status::NotFound("no column named '" + column + "'");
  const CompressionKind prev = layouts_[idx].compression;
  layouts_[idx].compression = kind;
  const Status st = ReencodeColumn(idx);
  if (!st.ok()) layouts_[idx].compression = prev;
  return st;
}

StatusOr<ColumnData> TableStorage::ReadColumn(int i) const {
  if (i < 0 || i >= schema_.num_columns()) {
    return Status::OutOfRange("column index");
  }
  const ColumnLayout& layout = layouts_[i];
  if (layout.compression == CompressionKind::kNone) {
    return columns_[i];
  }
  // Decode through the codec: this is the real CPU work a compressed scan
  // performs, and doubles as a continuous lossless-round-trip check.
  ColumnData out;
  out.type = columns_[i].type;
  if (out.type == catalog::DataType::kString) {
    StringDictionaryCodec codec;
    ECODB_RETURN_IF_ERROR(codec.Decode(encoded_[i], &out.str));
    return out;
  }
  auto codec = MakeInt64Codec(layout.compression);
  ECODB_RETURN_IF_ERROR(codec->Decode(encoded_[i], &out.i64));
  return out;
}

uint64_t TableStorage::ScanBytes(
    const std::vector<int>& column_indexes) const {
  if (layout_ == TableLayout::kRow) {
    // NSM reads whole rows no matter the projection. Row pages hold the
    // uncompressed row image (row stores rarely compress in place).
    uint64_t total = 0;
    for (int i = 0; i < schema_.num_columns(); ++i) {
      total += layouts_[i].raw_bytes;
    }
    return total;
  }
  uint64_t total = 0;
  std::unordered_set<int> seen;
  for (int i : column_indexes) {
    if (i < 0 || i >= schema_.num_columns() || !seen.insert(i).second) {
      continue;
    }
    total += layouts_[i].encoded_bytes;
  }
  return total;
}

uint64_t TableStorage::TotalBytes() const {
  uint64_t total = 0;
  for (const ColumnLayout& l : layouts_) total += l.encoded_bytes;
  return total;
}

double TableStorage::DecodeInstructions(
    const std::vector<int>& column_indexes) const {
  double instructions = 0.0;
  std::unordered_set<int> seen;
  for (int i : column_indexes) {
    if (i < 0 || i >= schema_.num_columns() || !seen.insert(i).second) {
      continue;
    }
    const ColumnLayout& layout = layouts_[i];
    double per_value = 1.0;  // touch cost
    if (layout.compression == CompressionKind::kDictionary) {
      per_value = StringDictionaryCodec().cost_profile()
                      .decode_instructions_per_value;
    } else if (layout.compression != CompressionKind::kNone) {
      per_value = MakeInt64Codec(layout.compression)
                      ->cost_profile()
                      .decode_instructions_per_value;
    }
    instructions += per_value * static_cast<double>(row_count_);
  }
  return instructions;
}

int64_t ZoneStringPrefixKey(const std::string& s) {
  uint64_t key = 0;
  for (int i = 0; i < 8; ++i) {
    key = (key << 8) |
          (i < static_cast<int>(s.size())
               ? static_cast<uint8_t>(s[static_cast<size_t>(i)])
               : 0);
  }
  return static_cast<int64_t>(key ^ (1ULL << 63));  // keep signed order
}

Status TableStorage::BuildZoneMaps(size_t block_rows) {
  if (block_rows == 0) {
    return Status::InvalidArgument("block_rows must be positive");
  }
  zone_maps_.block_rows = block_rows;
  zone_maps_.entries.assign(schema_.num_columns(), {});
  const size_t blocks = (row_count_ + block_rows - 1) / block_rows;
  for (int c = 0; c < schema_.num_columns(); ++c) {
    std::vector<ZoneEntry>& col_zones = zone_maps_.entries[c];
    col_zones.resize(blocks);
    const ColumnData& data = columns_[c];
    for (size_t b = 0; b < blocks; ++b) {
      const size_t lo = b * block_rows;
      const size_t hi = std::min<size_t>(row_count_, lo + block_rows);
      ZoneEntry& z = col_zones[b];
      switch (data.type) {
        case catalog::DataType::kInt64:
        case catalog::DataType::kDate: {
          z.min_i64 = *std::min_element(data.i64.begin() + lo,
                                        data.i64.begin() + hi);
          z.max_i64 = *std::max_element(data.i64.begin() + lo,
                                        data.i64.begin() + hi);
          break;
        }
        case catalog::DataType::kDouble: {
          z.min_f64 = *std::min_element(data.f64.begin() + lo,
                                        data.f64.begin() + hi);
          z.max_f64 = *std::max_element(data.f64.begin() + lo,
                                        data.f64.begin() + hi);
          break;
        }
        case catalog::DataType::kString: {
          int64_t mn = INT64_MAX, mx = INT64_MIN;
          for (size_t r = lo; r < hi; ++r) {
            const int64_t k = ZoneStringPrefixKey(data.str[r]);
            mn = std::min(mn, k);
            mx = std::max(mx, k);
          }
          z.min_i64 = mn;
          z.max_i64 = mx;
          break;
        }
      }
    }
  }
  return Status::OK();
}

Status TableStorage::AnalyzeInto(catalog::TableStats* stats) const {
  stats->row_count = row_count_;
  stats->columns.assign(schema_.num_columns(), catalog::ColumnStats{});
  for (int i = 0; i < schema_.num_columns(); ++i) {
    catalog::ColumnStats& cs = stats->columns[i];
    const ColumnData& data = columns_[i];
    switch (data.type) {
      case catalog::DataType::kInt64:
      case catalog::DataType::kDate: {
        if (!data.i64.empty()) {
          cs.min_i64 = *std::min_element(data.i64.begin(), data.i64.end());
          cs.max_i64 = *std::max_element(data.i64.begin(), data.i64.end());
          std::unordered_set<int64_t> distinct(data.i64.begin(),
                                               data.i64.end());
          cs.distinct_values = distinct.size();
        }
        break;
      }
      case catalog::DataType::kDouble: {
        if (!data.f64.empty()) {
          cs.min_f64 = *std::min_element(data.f64.begin(), data.f64.end());
          cs.max_f64 = *std::max_element(data.f64.begin(), data.f64.end());
          std::unordered_set<double> distinct(data.f64.begin(),
                                              data.f64.end());
          cs.distinct_values = distinct.size();
        }
        break;
      }
      case catalog::DataType::kString: {
        std::unordered_set<std::string> distinct(data.str.begin(),
                                                 data.str.end());
        cs.distinct_values = distinct.size();
        break;
      }
    }
  }
  return Status::OK();
}

}  // namespace ecodb::storage

// Deterministic fault injection for the simulated storage stack.
//
// The paper's Figure 1 machine runs 36-204 drives in RAID 5; at that scale
// faults are the steady state, not the exception, and availability machinery
// (retries, reconstruction, rebuild) has an energy price the engine must be
// able to measure. This header provides:
//
//   - FaultPlan: a declarative, seeded schedule of faults (permanent device
//     death at a simulated time or I/O count, transient per-request errors,
//     a torn WAL flush). The plan lives in DbConfig, never in src/exec, so
//     the DESIGN §7 determinism contract holds: same seed + same plan =>
//     byte-identical rows and bit-identical charges at any dop.
//   - FaultInjector: interprets the plan. Transient decisions are a pure
//     hash of (seed, device name, per-device I/O index) — no shared RNG
//     stream — so the decision for the k-th I/O on a device is independent
//     of interleaving with other devices.
//   - FaultInjectedDevice: a StorageDevice decorator that consults the
//     injector per attempt, retries transient errors with bounded
//     exponential backoff in *simulated* time (each failed attempt is
//     really submitted to the inner device, so its energy lands on the
//     meter), and converts permanent death into kDataLoss while zeroing the
//     dead device's background draw.

#ifndef ECODB_STORAGE_FAULT_INJECTOR_H_
#define ECODB_STORAGE_FAULT_INJECTOR_H_

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "power/energy_meter.h"
#include "storage/device.h"
#include "util/status.h"

namespace ecodb::storage {

inline constexpr double kFaultNever = std::numeric_limits<double>::infinity();
inline constexpr uint64_t kFaultNoIoLimit =
    std::numeric_limits<uint64_t>::max();

/// When and how one named device misbehaves. `device` matches
/// StorageDevice::name() of the wrapped device.
struct DeviceFaultSpec {
  std::string device;
  /// Permanent failure once simulated time reaches this value.
  double fail_at_time = kFaultNever;
  /// Permanent failure once this many I/O attempts have been served.
  uint64_t fail_after_ios = kFaultNoIoLimit;
  /// Probability in [0,1) that any given attempt fails transiently,
  /// decided by a stateless hash of (seed, device, attempt index).
  double transient_error_rate = 0.0;
  /// Explicit 0-based attempt indexes that fail transiently (in addition
  /// to the rate). Must be sorted ascending.
  std::vector<uint64_t> transient_ios;
};

/// Tear the WAL tail during one group-commit flush: only `keep_fraction`
/// of the pending bytes become durable, optionally with the last kept
/// byte bit-flipped (a misdirected/partial sector write).
struct WalTearSpec {
  uint64_t tear_at_flush = kFaultNoIoLimit;  // 0-based flush index
  double keep_fraction = 0.5;
  bool corrupt_kept_tail = false;
};

/// Bounded exponential backoff for transient errors, in simulated time.
struct RetryPolicy {
  int max_attempts = 4;  // total attempts, including the first
  double initial_backoff_s = 0.002;
  double backoff_multiplier = 2.0;
};

/// The full declarative fault schedule. Embedded in DbConfig.
struct FaultPlan {
  uint64_t seed = 0;
  std::vector<DeviceFaultSpec> devices;
  WalTearSpec wal;
  RetryPolicy retry;

  bool active() const {
    return !devices.empty() || wal.tear_at_flush != kFaultNoIoLimit;
  }
};

/// Interprets a FaultPlan. One injector is shared by every
/// FaultInjectedDevice of an EcoDb instance (and by the WAL for tears);
/// it keeps a per-device monotonic attempt counter, which — because device
/// submission is coordinator-only and deterministically ordered — replays
/// identically at any dop.
class FaultInjector {
 public:
  enum class Decision { kOk, kTransient, kPermanent };

  explicit FaultInjector(FaultPlan plan);

  // Per-device state holds pointers into plan_; not copyable.
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Decides the fate of the next I/O attempt on `device` at simulated
  /// time `now`, advancing the device's attempt counter. Permanent
  /// decisions are sticky.
  Decision NextIo(const std::string& device, double now);

  bool IsFailed(const std::string& device) const;
  void MarkFailed(const std::string& device);

  /// True if the `flush_index`-th WAL flush (0-based) should be torn.
  bool ShouldTearFlush(uint64_t flush_index) const {
    return plan_.wal.tear_at_flush == flush_index;
  }
  const WalTearSpec& wal_tear() const { return plan_.wal; }
  const RetryPolicy& retry() const { return plan_.retry; }

  /// Attempts seen so far on `device` (observability for tests).
  uint64_t io_count(const std::string& device) const;

 private:
  struct DeviceState {
    const DeviceFaultSpec* spec = nullptr;
    uint64_t attempts = 0;
    bool failed = false;
  };

  DeviceState* StateFor(const std::string& device);

  FaultPlan plan_;
  std::map<std::string, DeviceState> state_;
};

/// StorageDevice decorator that injects the planned faults of its inner
/// device and absorbs transient ones with energy-charged retries.
///
/// Error contract: kDataLoss once the device has died permanently (its
/// background draw is zeroed on the meter at death — a dead drive draws
/// nothing); kUnavailable when a request exhausted RetryPolicy::max_attempts.
/// On success the returned IoResult carries the retry accounting
/// (transient_errors / retry_seconds / retry_joules).
class FaultInjectedDevice final : public StorageDevice {
 public:
  /// `injector` and `meter` must outlive the device; the decorator owns
  /// `inner` and presents its name and meter channel.
  FaultInjectedDevice(std::unique_ptr<StorageDevice> inner,
                      FaultInjector* injector, power::EnergyMeter* meter);

  StatusOr<IoResult> SubmitRead(double earliest_start, uint64_t bytes,
                                bool sequential) override;
  StatusOr<IoResult> SubmitWrite(double earliest_start, uint64_t bytes,
                                 bool sequential) override;

  double busy_until() const override { return inner_->busy_until(); }

  // Power ops are ignored after death (there is nothing left to spin).
  void PowerDown(double t) override;
  void PowerUp(double t) override;
  bool IsPoweredDown() const override { return inner_->IsPoweredDown(); }
  double StandbySavingsWatts() const override {
    return dead_ ? 0.0 : inner_->StandbySavingsWatts();
  }
  double BreakEvenIdleSeconds() const override {
    return inner_->BreakEvenIdleSeconds();
  }

  const std::string& name() const override { return inner_->name(); }
  power::ChannelId channel() const override { return inner_->channel(); }

  double EstimateReadSeconds(uint64_t bytes) const override {
    return inner_->EstimateReadSeconds(bytes);
  }
  double EstimateReadJoules(uint64_t bytes) const override {
    return inner_->EstimateReadJoules(bytes);
  }

  StorageDevice* inner() { return inner_.get(); }
  bool is_dead() const { return dead_; }

 private:
  StatusOr<IoResult> Submit(double earliest_start, uint64_t bytes,
                            bool sequential, bool is_write);

  /// Books one failed attempt: really submits it to the inner device (the
  /// platters spun, the energy is on the meter), accumulates the retry
  /// stats, and advances `*t` past the attempt plus the current backoff.
  /// Named Charge* so ecodb-lint's EC6 rule can see that the retry loop
  /// pays the meter before re-submitting.
  Status ChargeRetryAttempt(double* t, uint64_t bytes, bool sequential,
                            bool is_write, double* backoff_s,
                            IoResult* faults);

  /// Marks the device dead at time `t` and zeroes its background draw.
  void Die(double t);

  std::unique_ptr<StorageDevice> inner_;
  FaultInjector* injector_;
  power::EnergyMeter* meter_;
  bool dead_ = false;
};

}  // namespace ecodb::storage

#endif  // ECODB_STORAGE_FAULT_INJECTOR_H_

#include "storage/remote.h"

#include <algorithm>
#include <cassert>

namespace ecodb::storage {

RemoteDevice::RemoteDevice(std::string name, const power::NicSpec& nic,
                           power::EnergyMeter* meter, StorageDevice* backing)
    : name_(std::move(name)), nic_(nic), meter_(meter), backing_(backing) {
  assert(nic_.bw_bytes_per_s > 0);
  nic_channel_ = meter_->RegisterChannel(name_ + "-nic", nic_.idle_watts);
  busy_until_ = meter_->clock()->now();
}

StatusOr<IoResult> RemoteDevice::Submit(double earliest_start, uint64_t bytes,
                                        bool sequential, bool is_write) {
  const double start = std::max(earliest_start, busy_until_);
  // The remote end services the request...
  ECODB_ASSIGN_OR_RETURN(
      const IoResult remote,
      is_write ? backing_->SubmitWrite(start, bytes, sequential)
               : backing_->SubmitRead(start, bytes, sequential));
  // ...and the bytes stream through the NIC; pipelined, so the transfer
  // finishes when the slower stage does.
  const double nic_seconds = static_cast<double>(bytes) / nic_.bw_bytes_per_s;
  const double end =
      std::max(remote.completion_time, start + nic_seconds);
  const double nic_joules =
      (nic_.active_watts - nic_.idle_watts) * nic_seconds;
  meter_->AddEnergyAt(nic_channel_, end, nic_joules, nic_seconds);
  busy_until_ = end;
  IoResult result{start, end, end - start};
  result.active_joules = nic_joules;
  result.AccumulateFaults(remote);
  return result;
}

StatusOr<IoResult> RemoteDevice::SubmitRead(double earliest_start,
                                            uint64_t bytes, bool sequential) {
  return Submit(earliest_start, bytes, sequential, /*is_write=*/false);
}

StatusOr<IoResult> RemoteDevice::SubmitWrite(double earliest_start,
                                             uint64_t bytes, bool sequential) {
  return Submit(earliest_start, bytes, sequential, /*is_write=*/true);
}

double RemoteDevice::EstimateReadSeconds(uint64_t bytes) const {
  return std::max(backing_->EstimateReadSeconds(bytes),
                  static_cast<double>(bytes) / nic_.bw_bytes_per_s);
}

double RemoteDevice::EstimateReadJoules(uint64_t bytes) const {
  const double nic_seconds = static_cast<double>(bytes) / nic_.bw_bytes_per_s;
  return backing_->EstimateReadJoules(bytes) +
         nic_.active_watts * nic_seconds;
}

}  // namespace ecodb::storage

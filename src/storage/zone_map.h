// Zone maps: per-block min/max summaries enabling scan skipping.
//
// Section 5.1 of the paper asks for physical-design techniques "that reduce
// disk bandwidth requirements". A zone map keeps min/max per fixed-size row
// block; scans with range predicates on well-clustered columns (dates,
// keys) skip the blocks that cannot match, cutting both device time AND
// device energy — I/O never performed is the cheapest I/O.

#ifndef ECODB_STORAGE_ZONE_MAP_H_
#define ECODB_STORAGE_ZONE_MAP_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ecodb::storage {

/// Min/max of one column over one row block. Strings are summarized by
/// their first bytes folded into the i64 lanes (prefix ordering).
struct ZoneEntry {
  int64_t min_i64 = 0;
  int64_t max_i64 = 0;
  double min_f64 = 0.0;
  double max_f64 = 0.0;
};

/// Folds a string's first 8 bytes into an int64 preserving lexicographic
/// order; used to summarize string columns in the i64 zone lanes.
int64_t ZoneStringPrefixKey(const std::string& s);

/// Zone maps for one table: entries[column][block].
struct ZoneMapSet {
  size_t block_rows = 0;
  std::vector<std::vector<ZoneEntry>> entries;

  bool empty() const { return block_rows == 0 || entries.empty(); }
  size_t num_blocks() const {
    return entries.empty() ? 0 : entries[0].size();
  }
};

}  // namespace ecodb::storage

#endif  // ECODB_STORAGE_ZONE_MAP_H_

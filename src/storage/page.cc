#include "storage/page.h"

#include <cassert>
#include <cstring>

namespace ecodb::storage {

namespace {
constexpr size_t kSlotEntrySize = 4;
}  // namespace

Page::Page() : image_(kPageSize, 0) {
  WriteU16(0, 0);                                   // slot_count
  WriteU16(2, static_cast<uint16_t>(kPageSize));    // free_start (grows down)
  WriteU16(4, 0);                                   // live_count
}

StatusOr<Page> Page::FromImage(std::vector<uint8_t> image) {
  if (image.size() != kPageSize) {
    return Status::InvalidArgument("page image must be exactly 8192 bytes");
  }
  Page p;
  p.image_ = std::move(image);
  // Structural sanity: directory must not cross the payload area.
  const uint16_t slots = p.ReadU16(0);
  const uint16_t free_start = p.ReadU16(2);
  if (kHeaderSize + slots * kSlotEntrySize > free_start ||
      free_start > kPageSize) {
    return Status::DataLoss("corrupt page header");
  }
  return p;
}

uint16_t Page::ReadU16(size_t off) const {
  return static_cast<uint16_t>(image_[off] | (image_[off + 1] << 8));
}

void Page::WriteU16(size_t off, uint16_t v) {
  image_[off] = static_cast<uint8_t>(v & 0xff);
  image_[off + 1] = static_cast<uint8_t>(v >> 8);
}

uint16_t Page::slot_count() const { return ReadU16(0); }
uint16_t Page::live_records() const { return ReadU16(4); }

uint16_t Page::SlotOffset(uint16_t slot) const {
  return ReadU16(kHeaderSize + slot * kSlotEntrySize);
}

uint16_t Page::SlotLength(uint16_t slot) const {
  return ReadU16(kHeaderSize + slot * kSlotEntrySize + 2);
}

void Page::SetSlot(uint16_t slot, uint16_t off, uint16_t len) {
  WriteU16(kHeaderSize + slot * kSlotEntrySize, off);
  WriteU16(kHeaderSize + slot * kSlotEntrySize + 2, len);
}

size_t Page::FreeSpace() const {
  const size_t dir_end = kHeaderSize + slot_count() * kSlotEntrySize;
  const size_t free_start = ReadU16(2);
  const size_t gap = free_start - dir_end;
  return gap > kSlotEntrySize ? gap - kSlotEntrySize : 0;
}

StatusOr<uint16_t> Page::Insert(std::span<const uint8_t> record) {
  if (record.size() > UINT16_MAX) {
    return Status::InvalidArgument("record larger than 64 KiB");
  }
  const size_t dir_end = kHeaderSize + slot_count() * kSlotEntrySize;
  const size_t free_start = ReadU16(2);
  if (dir_end + kSlotEntrySize + record.size() > free_start) {
    return Status::ResourceExhausted("page full");
  }
  const uint16_t new_off = static_cast<uint16_t>(free_start - record.size());
  if (!record.empty()) {
    std::memcpy(image_.data() + new_off, record.data(), record.size());
  }
  const uint16_t slot = slot_count();
  WriteU16(0, static_cast<uint16_t>(slot + 1));
  WriteU16(2, new_off);
  WriteU16(4, static_cast<uint16_t>(live_records() + 1));
  SetSlot(slot, new_off, static_cast<uint16_t>(record.size()));
  return slot;
}

StatusOr<std::span<const uint8_t>> Page::Get(uint16_t slot) const {
  if (slot >= slot_count()) return Status::NotFound("slot out of range");
  const uint16_t off = SlotOffset(slot);
  if (off == 0) return Status::NotFound("slot tombstoned");
  return std::span<const uint8_t>(image_.data() + off, SlotLength(slot));
}

Status Page::Erase(uint16_t slot) {
  if (slot >= slot_count()) return Status::NotFound("slot out of range");
  if (SlotOffset(slot) == 0) return Status::NotFound("slot tombstoned");
  SetSlot(slot, 0, 0);
  WriteU16(4, static_cast<uint16_t>(live_records() - 1));
  return Status::OK();
}

Status Page::Update(uint16_t slot, std::span<const uint8_t> record) {
  if (slot >= slot_count()) return Status::NotFound("slot out of range");
  const uint16_t off = SlotOffset(slot);
  if (off == 0) return Status::NotFound("slot tombstoned");
  if (record.size() <= SlotLength(slot)) {
    // Shrinking/equal update rewrites in place (dead tail space is
    // reclaimed by the next Compact()).
    if (!record.empty()) {
      std::memcpy(image_.data() + off, record.data(), record.size());
    }
    SetSlot(slot, off, static_cast<uint16_t>(record.size()));
    return Status::OK();
  }
  // Growing update: append a fresh copy if it fits, else compact and retry.
  const size_t dir_end = kHeaderSize + slot_count() * kSlotEntrySize;
  size_t free_start = ReadU16(2);
  if (dir_end + record.size() > free_start) {
    // Stash the old payload, drop it so Compact can reclaim its space, and
    // restore it if the grown record still does not fit.
    const uint16_t old_len = SlotLength(slot);
    std::vector<uint8_t> old_payload(image_.begin() + off,
                                     image_.begin() + off + old_len);
    SetSlot(slot, 0, 0);
    Compact();
    free_start = ReadU16(2);
    if (dir_end + record.size() > free_start) {
      const uint16_t back_off =
          static_cast<uint16_t>(free_start - old_payload.size());
      if (old_len > 0) {
        std::memcpy(image_.data() + back_off, old_payload.data(), old_len);
      }
      WriteU16(2, back_off);
      SetSlot(slot, back_off, old_len);
      return Status::ResourceExhausted("page full");
    }
  }
  const uint16_t new_off = static_cast<uint16_t>(free_start - record.size());
  std::memcpy(image_.data() + new_off, record.data(), record.size());
  WriteU16(2, new_off);
  SetSlot(slot, new_off, static_cast<uint16_t>(record.size()));
  return Status::OK();
}

Status Page::Resurrect(uint16_t slot, std::span<const uint8_t> record) {
  if (slot >= slot_count()) {
    return Status::FailedPrecondition("slot out of range");
  }
  if (SlotOffset(slot) != 0) {
    return Status::FailedPrecondition("slot is live");
  }
  const size_t dir_end = kHeaderSize + slot_count() * kSlotEntrySize;
  size_t free_start = ReadU16(2);
  if (dir_end + record.size() > free_start) {
    Compact();
    free_start = ReadU16(2);
    if (dir_end + record.size() > free_start) {
      return Status::ResourceExhausted("page full");
    }
  }
  const uint16_t new_off = static_cast<uint16_t>(free_start - record.size());
  if (!record.empty()) {
    std::memcpy(image_.data() + new_off, record.data(), record.size());
  }
  WriteU16(2, new_off);
  SetSlot(slot, new_off, static_cast<uint16_t>(record.size()));
  WriteU16(4, static_cast<uint16_t>(live_records() + 1));
  return Status::OK();
}

void Page::Compact() {
  const uint16_t slots = slot_count();
  std::vector<uint8_t> scratch;
  scratch.reserve(kPageSize);
  // Collect live payloads back-to-front into scratch, then rewrite.
  uint16_t write_pos = kPageSize;
  std::vector<std::pair<uint16_t, uint16_t>> new_slots(slots, {0, 0});
  std::vector<uint8_t> payload(kPageSize, 0);
  for (uint16_t s = 0; s < slots; ++s) {
    const uint16_t off = SlotOffset(s);
    if (off == 0) continue;
    const uint16_t len = SlotLength(s);
    write_pos = static_cast<uint16_t>(write_pos - len);
    if (len > 0) {
      std::memcpy(payload.data() + write_pos, image_.data() + off, len);
    }
    new_slots[s] = {write_pos, len};
  }
  std::memcpy(image_.data() + write_pos, payload.data() + write_pos,
              kPageSize - write_pos);
  WriteU16(2, write_pos);
  for (uint16_t s = 0; s < slots; ++s) {
    SetSlot(s, new_slots[s].first, new_slots[s].second);
  }
}

}  // namespace ecodb::storage

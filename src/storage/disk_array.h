// RAID disk-array simulator.
//
// The paper's Figure 1 machine stripes a 300 GB-scale database across
// 36-204 SCSI drives in RAID 5. The array model captures the two facts the
// experiment rests on:
//   1. every member disk adds a constant power draw, but
//   2. incremental throughput per disk shrinks (stripe skew + shared
//      controller/SAS-link capacity), so performance saturates.
// XOR parity is implemented for real (block parity computation and single-
// disk reconstruction), exercised by property tests.
//
// Degraded mode (RAID 5, one failed member): reads landing on the failed
// member's share are reconstructed — each survivor serves its own share
// *plus* its part of the dead member's share, and the controller pays XOR
// instructions and energy proportional to the (n-1) survivor blocks it
// folds together. Writes run parity-degraded: survivors absorb the full
// striped write, the dead member's part exists only as parity. A second
// member loss (or any loss on RAID 0) is kDataLoss. RebuildScheduler
// replays sequential rebuild I/O onto a spare at a configurable rate and
// charges the rebuild's energy, so benches can report EE during rebuild.

#ifndef ECODB_STORAGE_DISK_ARRAY_H_
#define ECODB_STORAGE_DISK_ARRAY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/device.h"
#include "util/status.h"

namespace ecodb::storage {

enum class RaidLevel {
  kRaid0,  // striping, no redundancy
  kRaid5,  // striping + rotated parity
};

/// Array-level behaviour parameters.
struct ArraySpec {
  RaidLevel level = RaidLevel::kRaid5;
  uint64_t stripe_unit_bytes = 256 * 1024;
  /// Aggregate ceiling of the controller / SAS fabric.
  double controller_bw_bytes_per_s = 3.0 * 1e9;
  /// Fixed per-request array overhead (dispatch, interrupt coalescing).
  double per_request_overhead_s = 0.0002;
  /// Stripe-skew factor: the slowest member of an n-disk stripe serves
  /// ~ (1 + alpha * (n - 1)) times the fair share. Models load imbalance
  /// that worsens with width; drives the diminishing returns of Figure 1.
  double stripe_skew_alpha = 0.0015;
  /// XOR reconstruction cost: instructions per byte of survivor data
  /// folded together, and Joules per instruction on the array controller.
  /// Charged to the "<name>.xor" meter channel in degraded mode / rebuild.
  double xor_instructions_per_byte = 0.05;
  double xor_joules_per_instruction = 1e-9;
};

/// A striped array presenting the StorageDevice interface over its members.
class DiskArray final : public StorageDevice {
 public:
  /// Validated construction: `members` must be non-empty, >= 3 for RAID 5
  /// (anything less cannot hold rotated parity), and the spec's rates must
  /// be positive. `meter` (optional) hosts the "<name>.xor" channel that
  /// carries reconstruction energy; without it, degraded mode still tracks
  /// XOR instructions but has nowhere to charge the Joules.
  static StatusOr<std::unique_ptr<DiskArray>> Create(
      std::string name, ArraySpec spec,
      std::vector<std::unique_ptr<StorageDevice>> members,
      power::EnergyMeter* meter = nullptr);

  StatusOr<IoResult> SubmitRead(double earliest_start, uint64_t bytes,
                                bool sequential) override;
  StatusOr<IoResult> SubmitWrite(double earliest_start, uint64_t bytes,
                                 bool sequential) override;

  double busy_until() const override { return busy_until_; }

  /// Spins every member down / up (tray-level consolidation).
  void PowerDown(double t) override;
  void PowerUp(double t) override;
  bool IsPoweredDown() const override;

  double StandbySavingsWatts() const override;
  double BreakEvenIdleSeconds() const override;

  const std::string& name() const override { return name_; }

  /// The XOR controller channel when a meter was supplied (member transfer
  /// energy lives on the member channels).
  power::ChannelId channel() const override { return xor_channel_; }

  double EstimateReadSeconds(uint64_t bytes) const override;
  double EstimateReadJoules(uint64_t bytes) const override;

  int num_members() const { return static_cast<int>(members_.size()); }
  StorageDevice* member(int i) { return members_[i].get(); }
  const ArraySpec& spec() const { return spec_; }

  /// Data capacity fraction: RAID5 loses one disk's worth to parity.
  double DataFraction() const;

  // --- Degraded mode -----------------------------------------------------

  /// Marks member `index` as failed at simulated time `t` (e.g. the bench
  /// pulling a drive). Zeroes the member's background draw. The array
  /// also transitions on its own when a member submit returns kDataLoss.
  Status FailMember(int index, double t);

  /// Swaps `spare` in for the failed member `index` and returns the old
  /// (dead) device. The array is healthy again afterwards.
  StatusOr<std::unique_ptr<StorageDevice>> ReplaceFailedMember(
      int index, std::unique_ptr<StorageDevice> spare);

  bool degraded() const { return failed_count_ > 0; }
  int failed_member() const;  // -1 when healthy
  bool member_failed(int i) const { return failed_[i]; }

  /// Charges XOR work for folding `xored_bytes` of survivor data at time
  /// `t` on the array's XOR channel; returns the instruction count. Used
  /// by degraded reads and by RebuildScheduler.
  double ChargeXorAt(double t, uint64_t xored_bytes);

 private:
  DiskArray(std::string name, ArraySpec spec,
            std::vector<std::unique_ptr<StorageDevice>> members,
            power::EnergyMeter* meter);

  StatusOr<IoResult> Submit(double earliest_start, uint64_t bytes,
                            bool sequential, bool is_write, int depth);

  std::string name_;
  ArraySpec spec_;
  std::vector<std::unique_ptr<StorageDevice>> members_;
  std::vector<bool> failed_;
  int failed_count_ = 0;
  power::EnergyMeter* meter_ = nullptr;
  power::ChannelId xor_channel_;
  double busy_until_ = 0.0;
};

// --- Rebuild -------------------------------------------------------------

/// Rebuild pacing and extent.
struct RebuildConfig {
  /// Bytes of the dead member to reconstruct onto the spare.
  uint64_t total_bytes = 0;
  /// Sequential chunk size per rebuild step.
  uint64_t chunk_bytes = 16ull << 20;
  /// Rebuild rate ceiling in bytes/s of reconstructed data; 0 means
  /// device-limited (rebuild as fast as the survivors allow).
  double rate_bytes_per_s = 0.0;
};

/// What one rebuild cost.
struct RebuildReport {
  double start_time = 0.0;
  double end_time = 0.0;
  uint64_t bytes_rebuilt = 0;
  uint64_t chunks = 0;
  double xor_instructions = 0.0;
  double xor_joules = 0.0;
};

/// Replays sequential rebuild I/O for a degraded RAID-5 array: per chunk,
/// read the chunk from every survivor, XOR-fold (charged to the array's
/// XOR channel), write the reconstructed chunk to the spare; optionally
/// throttled to RebuildConfig::rate_bytes_per_s. On success the spare is
/// swapped in via ReplaceFailedMember and the array is healthy again.
class RebuildScheduler {
 public:
  explicit RebuildScheduler(DiskArray* array) : array_(array) {}

  StatusOr<RebuildReport> Run(std::unique_ptr<StorageDevice> spare,
                              double start_time, const RebuildConfig& config);

 private:
  DiskArray* array_;
};

// --- Parity math (RAID 5), used by the array tests ----------------------

/// XOR parity over equally sized blocks. Returns InvalidArgument on
/// mismatched sizes or empty input.
StatusOr<std::vector<uint8_t>> ComputeParity(
    const std::vector<std::vector<uint8_t>>& blocks);

/// Rebuilds the block at `missing_index` from the surviving blocks and the
/// parity block: survivors XOR parity.
StatusOr<std::vector<uint8_t>> ReconstructBlock(
    const std::vector<std::vector<uint8_t>>& blocks, size_t missing_index,
    const std::vector<uint8_t>& parity);

}  // namespace ecodb::storage

#endif  // ECODB_STORAGE_DISK_ARRAY_H_

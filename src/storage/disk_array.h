// RAID disk-array simulator.
//
// The paper's Figure 1 machine stripes a 300 GB-scale database across
// 36-204 SCSI drives in RAID 5. The array model captures the two facts the
// experiment rests on:
//   1. every member disk adds a constant power draw, but
//   2. incremental throughput per disk shrinks (stripe skew + shared
//      controller/SAS-link capacity), so performance saturates.
// XOR parity is implemented for real (block parity computation and single-
// disk reconstruction), exercised by property tests.

#ifndef ECODB_STORAGE_DISK_ARRAY_H_
#define ECODB_STORAGE_DISK_ARRAY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/device.h"
#include "util/status.h"

namespace ecodb::storage {

enum class RaidLevel {
  kRaid0,  // striping, no redundancy
  kRaid5,  // striping + rotated parity
};

/// Array-level behaviour parameters.
struct ArraySpec {
  RaidLevel level = RaidLevel::kRaid5;
  uint64_t stripe_unit_bytes = 256 * 1024;
  /// Aggregate ceiling of the controller / SAS fabric.
  double controller_bw_bytes_per_s = 3.0 * 1e9;
  /// Fixed per-request array overhead (dispatch, interrupt coalescing).
  double per_request_overhead_s = 0.0002;
  /// Stripe-skew factor: the slowest member of an n-disk stripe serves
  /// ~ (1 + alpha * (n - 1)) times the fair share. Models load imbalance
  /// that worsens with width; drives the diminishing returns of Figure 1.
  double stripe_skew_alpha = 0.0015;
};

/// A striped array presenting the StorageDevice interface over its members.
class DiskArray final : public StorageDevice {
 public:
  /// `members` must be non-empty (>= 3 for RAID 5).
  DiskArray(std::string name, ArraySpec spec,
            std::vector<std::unique_ptr<StorageDevice>> members);

  IoResult SubmitRead(double earliest_start, uint64_t bytes,
                      bool sequential) override;
  IoResult SubmitWrite(double earliest_start, uint64_t bytes,
                       bool sequential) override;

  double busy_until() const override { return busy_until_; }

  /// Spins every member down / up (tray-level consolidation).
  void PowerDown(double t) override;
  void PowerUp(double t) override;
  bool IsPoweredDown() const override;

  double StandbySavingsWatts() const override;
  double BreakEvenIdleSeconds() const override;

  const std::string& name() const override { return name_; }

  /// The array has no channel of its own; energy lives on the members.
  power::ChannelId channel() const override { return power::ChannelId{}; }

  double EstimateReadSeconds(uint64_t bytes) const override;
  double EstimateReadJoules(uint64_t bytes) const override;

  int num_members() const { return static_cast<int>(members_.size()); }
  StorageDevice* member(int i) { return members_[i].get(); }
  const ArraySpec& spec() const { return spec_; }

  /// Data capacity fraction: RAID5 loses one disk's worth to parity.
  double DataFraction() const;

 private:
  IoResult Submit(double earliest_start, uint64_t bytes, bool sequential,
                  bool is_write);

  std::string name_;
  ArraySpec spec_;
  std::vector<std::unique_ptr<StorageDevice>> members_;
  double busy_until_ = 0.0;
};

// --- Parity math (RAID 5), used by the array tests ----------------------

/// XOR parity over equally sized blocks. Returns InvalidArgument on
/// mismatched sizes or empty input.
StatusOr<std::vector<uint8_t>> ComputeParity(
    const std::vector<std::vector<uint8_t>>& blocks);

/// Rebuilds the block at `missing_index` from the surviving blocks and the
/// parity block: survivors XOR parity.
StatusOr<std::vector<uint8_t>> ReconstructBlock(
    const std::vector<std::vector<uint8_t>>& blocks, size_t missing_index,
    const std::vector<uint8_t>& parity);

}  // namespace ecodb::storage

#endif  // ECODB_STORAGE_DISK_ARRAY_H_

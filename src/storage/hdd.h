// Mechanical-disk simulator with spin-state power management.
//
// Models a 15K-RPM SCSI drive of the class used in the paper's Figure 1
// system: positioning (seek + rotation) for non-sequential accesses,
// sustained-bandwidth transfers, and the active/idle/standby/spin-up power
// state machine whose coarseness Section 2.4 laments ("they are either on
// ... or off, and the transitions can be expensive").

#ifndef ECODB_STORAGE_HDD_H_
#define ECODB_STORAGE_HDD_H_

#include <string>

#include "power/device_power.h"
#include "power/energy_meter.h"
#include "storage/device.h"

namespace ecodb::storage {

class HddDevice final : public StorageDevice {
 public:
  /// Registers a meter channel named `name` on `meter`. The disk starts
  /// spun up and idle. `meter` must outlive the device.
  HddDevice(std::string name, const power::HddSpec& spec,
            power::EnergyMeter* meter);

  StatusOr<IoResult> SubmitRead(double earliest_start, uint64_t bytes,
                                bool sequential) override;
  StatusOr<IoResult> SubmitWrite(double earliest_start, uint64_t bytes,
                                 bool sequential) override;

  double busy_until() const override { return busy_until_; }

  void PowerDown(double t) override;
  void PowerUp(double t) override;
  bool IsPoweredDown() const override { return standby_; }

  double StandbySavingsWatts() const override {
    return spec_.idle_watts - spec_.standby_watts;
  }
  double BreakEvenIdleSeconds() const override {
    return spec_.BreakEvenIdleSeconds();
  }

  const std::string& name() const override { return name_; }
  power::ChannelId channel() const override { return channel_; }

  double EstimateReadSeconds(uint64_t bytes) const override;
  double EstimateReadJoules(uint64_t bytes) const override;

  const power::HddSpec& spec() const { return spec_; }

  /// Count of spin-up transitions performed (observability for tests).
  int spinup_count() const { return spinup_count_; }

 private:
  IoResult Submit(double earliest_start, uint64_t bytes, bool sequential,
                  double bw_bytes_per_s);

  std::string name_;
  power::HddSpec spec_;
  power::EnergyMeter* meter_;
  power::ChannelId channel_;
  double busy_until_ = 0.0;
  bool standby_ = false;
  bool last_op_sequential_ = false;
  int spinup_count_ = 0;
};

}  // namespace ecodb::storage

#endif  // ECODB_STORAGE_HDD_H_

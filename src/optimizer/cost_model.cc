#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

#include "exec/topk.h"

namespace ecodb::optimizer {

void ResourceEstimate::Merge(const ResourceEstimate& other) {
  cpu_instructions += other.cpu_instructions;
  serial_cpu_instructions += other.serial_cpu_instructions;
  for (const auto& [dev, bytes] : other.device_bytes) {
    device_bytes[dev] += bytes;
  }
  for (const auto& [dev, pages] : other.random_page_reads) {
    random_page_reads[dev] += pages;
  }
  dram_traffic_bytes += other.dram_traffic_bytes;
  resident_byte_seconds += other.resident_byte_seconds;
}

CostModel::CostModel(power::HardwarePlatform* platform,
                     CostModelParams params)
    : platform_(platform), params_(params) {}

ResourceEstimate CostModel::ScanDemand(
    const storage::TableStorage& table,
    const std::vector<int>& column_indexes) const {
  ResourceEstimate demand;
  const uint64_t bytes = table.ScanBytes(column_indexes);
  if (bytes > 0 && table.device() != nullptr) {
    demand.device_bytes[table.device()] += bytes;
  }
  demand.cpu_instructions =
      table.DecodeInstructions(column_indexes) * params_.costs.decode_scale;
  return demand;
}

ResourceEstimate CostModel::SortDemand(double rows, size_t num_keys,
                                       double limit_rows) const {
  ResourceEstimate demand;
  if (rows <= 1.0) return demand;
  const exec::CostConstants& k = params_.costs;
  const double keys = static_cast<double>(std::max<size_t>(1, num_keys));
  const double run_rows = std::max(2.0, k.sort_run_rows);
  const double runs = std::max(1.0, std::ceil(rows / run_rows));
  const double per_run = std::min(rows, run_rows);
  if (limit_rows >= 0.0) {
    // Fused top-k (mirrors TopKOp / ParallelTopKOp's charges). Formation:
    // every row pays the bounded heap's 1 + log2(min(run, k)) ladder,
    // divided across workers. Merge: the coordinator's comparison ladder
    // over the ≤ runs·k candidates plus the k-row emission are serial. At
    // k ≈ n the merge ladder covers all n rows serially — strictly worse
    // than the full sort's parallel merge — so the planner's fallback to
    // Sort + Limit holds by construction.
    const double k_eff = std::min(rows, std::max(0.0, limit_rows));
    const double k_run = std::min(per_run, k_eff);
    demand.cpu_instructions +=
        exec::TopKCompareInstructions(k, rows, k_run, keys);
    if (runs > 1.0) {
      const double candidates = runs * k_run;
      demand.serial_cpu_instructions +=
          k.sort_per_row_log_row * candidates * std::log2(runs) * keys +
          k.output_per_row * k_eff;
    }
    return demand;
  }
  // Run formation: each run's n·log2(n) ladder, divided across workers.
  demand.cpu_instructions +=
      k.sort_per_row_log_row * rows * std::log2(per_run) * keys;
  if (runs > 1.0) {
    // Merge fan-in: the log2(R) comparison ladder parallelizes across range
    // partitions; splitter selection and stitching stay on the coordinator.
    // Note log2(per_run) + log2(runs) ~= log2(rows): total comparison work
    // matches the classic serial n·log2(n) — only its Amdahl split changes.
    demand.cpu_instructions +=
        k.sort_per_row_log_row * rows * std::log2(runs) * keys;
    demand.serial_cpu_instructions += k.output_per_row * rows;
  }
  return demand;
}

PlanCost CostModel::Price(const ResourceEstimate& demand, int dop,
                          int pstate) const {
  const power::CpuPowerModel& cpu = platform_->cpu();
  const int cores = std::min(dop, cpu.total_cores());

  // Time: CPU elapsed vs the slowest device stream (they overlap). Only
  // the parallelizable instructions divide across cores (Amdahl); with no
  // serial portion this reduces exactly to core_seconds / cores.
  const double parallel_seconds =
      cpu.SecondsForInstructions(demand.cpu_instructions, pstate);
  const double serial_seconds =
      cpu.SecondsForInstructions(demand.serial_cpu_instructions, pstate);
  const double cpu_core_seconds = parallel_seconds + serial_seconds;
  const double cpu_elapsed =
      serial_seconds + parallel_seconds / static_cast<double>(cores);
  double io_elapsed = 0.0;
  double io_joules = 0.0;
  std::map<const storage::StorageDevice*, double> per_device_seconds;
  for (const auto& [dev, bytes] : demand.device_bytes) {
    per_device_seconds[dev] += dev->EstimateReadSeconds(bytes);
    io_joules += dev->EstimateReadJoules(bytes);
  }
  constexpr uint64_t kPageBytes = 8192;
  for (const auto& [dev, pages] : demand.random_page_reads) {
    // Each random page pays the device's full positioning + transfer cost.
    per_device_seconds[dev] +=
        static_cast<double>(pages) * dev->EstimateReadSeconds(kPageBytes);
    io_joules +=
        static_cast<double>(pages) * dev->EstimateReadJoules(kPageBytes);
  }
  for (const auto& [dev, seconds] : per_device_seconds) {
    io_elapsed = std::max(io_elapsed, seconds);
  }
  PlanCost cost;
  cost.seconds = std::max(cpu_elapsed, io_elapsed);

  // Energy: marginal active components.
  const double cpu_joules =
      cpu.spec().pstates[pstate].core_active_watts * cpu_core_seconds;
  const double dram_traffic_joules =
      platform_->dram().access_joules_per_byte *
      static_cast<double>(demand.dram_traffic_bytes);
  const double gib = 1024.0 * 1024.0 * 1024.0;
  const double rate = params_.dram_watts_per_gib_override >= 0
                          ? params_.dram_watts_per_gib_override
                          : platform_->dram().background_watts_per_gib;
  const double residency_joules = params_.memory_power_premium * rate *
                                  (demand.resident_byte_seconds / gib);
  cost.joules =
      cpu_joules + io_joules + dram_traffic_joules + residency_joules;

  if (params_.include_background_power) {
    cost.joules += platform_->meter()->TotalWatts() * cost.seconds;
  }
  return cost;
}

}  // namespace ecodb::optimizer

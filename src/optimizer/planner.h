// Energy-aware physical planner.
//
// Given a logical query (scan [+ filter] [+ join] [+ aggregate]) and the
// physical alternatives available — table variants with different layouts /
// compression / devices, three join algorithms, DVFS states, degrees of
// parallelism — the planner enumerates the combinations, prices each with
// the two-objective CostModel, and returns the plan minimizing
// `seconds + lambda * joules`.
//
// With lambda = 0 this is a classical performance optimizer. Raising lambda
// reproduces the paper's headline behaviours: compressed scans lose to
// uncompressed ones when CPU power dwarfs storage power (Figure 2), and
// memory-hungry hash joins lose to nested-loop joins when DRAM residency is
// priced (Section 4.1).

#ifndef ECODB_OPTIMIZER_PLANNER_H_
#define ECODB_OPTIMIZER_PLANNER_H_

#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "exec/aggregate.h"
#include "exec/expr.h"
#include "exec/operator.h"
#include "exec/sort_limit.h"
#include "optimizer/cost_model.h"
#include "storage/btree.h"
#include "storage/table_storage.h"

namespace ecodb::optimizer {

/// One logical table with its physical alternatives (same rows, different
/// physical design: layout, compression, device placement).
struct TableAlternatives {
  std::string name;
  std::vector<const storage::TableStorage*> variants;  // >= 1
  /// Columns the query needs from this table (empty = all).
  std::vector<std::string> columns;
  /// Optional pushed-down filter over this table's columns.
  exec::ExprPtr filter;
  /// Optional secondary index: enables the index-scan access path when the
  /// filter constrains `index_column` to a range. The index must map
  /// `index_column` values to row positions of every variant (variants hold
  /// the same rows in the same order).
  const storage::BTreeIndex* index = nullptr;
  std::string index_column;
};

enum class AccessPath { kTableScan, kIndexScan };

const char* AccessPathName(AccessPath path);

/// Logical query: left [JOIN right ON lk = rk] [WHERE ...] [GROUP BY ...]
/// [ORDER BY ...].
struct QuerySpec {
  TableAlternatives left;
  std::optional<TableAlternatives> right;
  std::string left_key;   // join keys; used when right is present
  std::string right_key;
  std::vector<std::string> group_by;
  std::vector<exec::AggregateItem> aggregates;
  /// Final ordering of the output. Priced with CostModel::SortDemand and
  /// realized as SortOp (dop 1) or the morsel-parallel ParallelSortOp
  /// (dop > 1) — byte-identical results and charges either way.
  std::vector<exec::SortKey> order_by;
  /// Sort memory budget; when the estimated sorted bytes exceed it and a
  /// spill device is set, the plan is priced for (and the operator charges)
  /// one sequential write + read of every run on that device.
  uint64_t sort_memory_budget_bytes = UINT64_MAX;
  storage::StorageDevice* sort_spill_device = nullptr;
  /// Optional LIMIT on the final output. With order_by present the planner
  /// also enumerates fusing ORDER BY + LIMIT into a bounded-heap top-k
  /// (TopKOp / ParallelTopKOp) and picks it when priced cheaper — typically
  /// small k, where it saves O(n log n) comparisons and all spill I/O —
  /// falling back to Sort + Limit otherwise (k ≈ n). Both paths emit
  /// byte-identical rows.
  std::optional<uint64_t> limit;
};

enum class JoinAlgorithm { kHash, kHashSwapped, kMerge, kNestedLoop };

const char* JoinAlgorithmName(JoinAlgorithm algo);

/// A fully specified physical plan plus its estimated cost.
struct PhysicalPlan {
  int left_variant = 0;
  int right_variant = 0;
  AccessPath left_path = AccessPath::kTableScan;
  AccessPath right_path = AccessPath::kTableScan;
  JoinAlgorithm join_algo = JoinAlgorithm::kHash;
  int dop = 1;
  int pstate = 0;
  /// True when ORDER BY + LIMIT is fused into the bounded-heap top-k path
  /// (requires spec.order_by non-empty and spec.limit set).
  bool use_topk = false;
  PlanCost cost;
  /// Estimated output cardinality (clamped to spec.limit when set).
  double output_rows = 0.0;

  std::string Describe(const QuerySpec& spec) const;
};

/// Planner knobs: which dimensions to enumerate.
struct PlannerOptions {
  std::vector<int> dops = {1};
  bool enumerate_pstates = false;
  bool enumerate_join_algorithms = true;
};

/// Power-of-two dop candidates up to `max_dop` (always includes `max_dop`
/// itself), e.g. 6 -> {1, 2, 4, 6}. Convenient for PlannerOptions::dops.
std::vector<int> DopLadder(int max_dop);

/// Dop ladder derived from the platform's physical core count — the
/// engine-level policy: never enumerate more workers than the modeled CPU
/// has cores, since extra dop past that point adds scheduling charges but
/// cannot shrink the critical path.
std::vector<int> PlatformDopLadder(const power::HardwarePlatform& platform);

class Planner {
 public:
  /// `model` must outlive the planner.
  Planner(CostModel* model, PlannerOptions options = {});

  /// The options the planner enumerates with (after normalization — e.g. an
  /// empty dop list becomes {1}).
  const PlannerOptions& options() const { return options_; }

  /// Returns the best plan under `objective`, or an error if the spec is
  /// malformed (no variants, missing join keys, ...).
  StatusOr<PhysicalPlan> ChoosePlan(const QuerySpec& spec,
                                    const Objective& objective) const;

  /// Prices one fully specified plan (exposed for ablation sweeps).
  StatusOr<PlanCost> PricePlan(const QuerySpec& spec,
                               const PhysicalPlan& plan) const;

  /// Constructs the executable operator tree realizing `plan`.
  StatusOr<exec::OperatorPtr> BuildOperator(const QuerySpec& spec,
                                            const PhysicalPlan& plan) const;

  /// Estimated selectivity of `filter` against a table's stats (exposed
  /// for tests). Bind() need not have been called.
  static double EstimateSelectivity(const exec::ExprPtr& filter,
                                    const catalog::Schema& schema,
                                    const catalog::TableStats& stats);

  /// Extracts the [lo, hi] key range the AND-conjuncts of `filter` impose
  /// on `column` (integer/date types). Returns false when unconstrained.
  static bool ExtractKeyRange(const exec::ExprPtr& filter,
                              const std::string& column, int64_t* lo,
                              int64_t* hi);

 private:
  struct Cardinalities {
    double left_rows = 0.0;
    double right_rows = 0.0;
    double join_rows = 0.0;
    double output_rows = 0.0;
  };

  StatusOr<Cardinalities> EstimateCardinalities(const QuerySpec& spec) const;

  StatusOr<PlanCost> PriceInternal(const QuerySpec& spec,
                                   const PhysicalPlan& plan,
                                   const Cardinalities& cards) const;

  CostModel* model_;
  PlannerOptions options_;
};

}  // namespace ecodb::optimizer

#endif  // ECODB_OPTIMIZER_PLANNER_H_

// Energy-aware physical planner.
//
// Given a logical query (scan [+ filter] [+ join] [+ aggregate]) and the
// physical alternatives available — table variants with different layouts /
// compression / devices, three join algorithms, DVFS states, degrees of
// parallelism — the planner enumerates the combinations, prices each with
// the two-objective CostModel, and returns the plan minimizing
// `seconds + lambda * joules`.
//
// With lambda = 0 this is a classical performance optimizer. Raising lambda
// reproduces the paper's headline behaviours: compressed scans lose to
// uncompressed ones when CPU power dwarfs storage power (Figure 2), and
// memory-hungry hash joins lose to nested-loop joins when DRAM residency is
// priced (Section 4.1).

#ifndef ECODB_OPTIMIZER_PLANNER_H_
#define ECODB_OPTIMIZER_PLANNER_H_

#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "exec/aggregate.h"
#include "exec/expr.h"
#include "exec/operator.h"
#include "exec/sort_limit.h"
#include "optimizer/cost_model.h"
#include "storage/btree.h"
#include "storage/table_storage.h"

namespace ecodb::optimizer {

/// One logical table with its physical alternatives (same rows, different
/// physical design: layout, compression, device placement).
struct TableAlternatives {
  std::string name;
  std::vector<const storage::TableStorage*> variants;  // >= 1
  /// Columns the query needs from this table (empty = all).
  std::vector<std::string> columns;
  /// Optional pushed-down filter over this table's columns.
  exec::ExprPtr filter;
  /// Optional secondary index: enables the index-scan access path when the
  /// filter constrains `index_column` to a range. The index must map
  /// `index_column` values to row positions of every variant (variants hold
  /// the same rows in the same order).
  const storage::BTreeIndex* index = nullptr;
  std::string index_column;
  /// Optional load-time statistics (e.g. from the catalog). When set they
  /// feed cardinality estimation directly; when null the planner analyzes
  /// variant 0 on demand. Statistics feed pricing only, never correctness.
  const catalog::TableStats* stats = nullptr;
};

enum class AccessPath { kTableScan, kIndexScan };

const char* AccessPathName(AccessPath path);

/// One equi-join edge of an N-relation join graph: relations[left_rel].
/// left_key = relations[right_rel].right_key.
struct JoinEdge {
  int left_rel = 0;
  int right_rel = 0;
  std::string left_key;
  std::string right_key;
};

/// Logical query: left [JOIN right ON lk = rk] [WHERE ...] [GROUP BY ...]
/// [ORDER BY ...] — or, when `relations` is non-empty, an N-relation join
/// graph whose join ORDER the planner chooses by bitmask DP (join_order.h).
struct QuerySpec {
  TableAlternatives left;
  std::optional<TableAlternatives> right;
  std::string left_key;   // join keys; used when right is present
  std::string right_key;
  /// N-way form: when non-empty, `relations` + `edges` supersede
  /// left/right/left_key/right_key entirely. Requirements: the edge set
  /// connects all relations (no cross products), every column name is
  /// unique across relations, and each relation is planned on variant 0
  /// with the table-scan access path (the N-way enumerator's scope; the
  /// 2-way form keeps variant/index enumeration).
  std::vector<TableAlternatives> relations;
  std::vector<JoinEdge> edges;
  std::vector<std::string> group_by;
  std::vector<exec::AggregateItem> aggregates;
  /// Final ordering of the output. Priced with CostModel::SortDemand and
  /// realized as SortOp (dop 1) or the morsel-parallel ParallelSortOp
  /// (dop > 1) — byte-identical results and charges either way.
  std::vector<exec::SortKey> order_by;
  /// Sort memory budget; when the estimated sorted bytes exceed it and a
  /// spill device is set, the plan is priced for (and the operator charges)
  /// one sequential write + read of every run on that device.
  uint64_t sort_memory_budget_bytes = UINT64_MAX;
  storage::StorageDevice* sort_spill_device = nullptr;
  /// Optional LIMIT on the final output. With order_by present the planner
  /// also enumerates fusing ORDER BY + LIMIT into a bounded-heap top-k
  /// (TopKOp / ParallelTopKOp) and picks it when priced cheaper — typically
  /// small k, where it saves O(n log n) comparisons and all spill I/O —
  /// falling back to Sort + Limit otherwise (k ≈ n). Both paths emit
  /// byte-identical rows.
  std::optional<uint64_t> limit;
};

enum class JoinAlgorithm { kHash, kHashSwapped, kMerge, kNestedLoop };

const char* JoinAlgorithmName(JoinAlgorithm algo);

/// One node of an N-way join tree (leaf = one relation, internal = one
/// join). Stored flat in PhysicalPlan::join_nodes; children by index.
/// Hash joins build on the `right` child (the N-way enumerator prices both
/// orientations of every split, so kHashSwapped never appears in trees).
struct PlanJoinNode {
  int relation = -1;  // leaf: index into spec.relations; -1 for joins
  int left = -1;      // internal: child node indexes
  int right = -1;
  JoinAlgorithm algo = JoinAlgorithm::kHash;
  std::string left_key;   // primary equi-join edge
  std::string right_key;
  /// Further edges between the two subtrees, applied as a residual filter
  /// over the join output (multi-key joins, cyclic graphs).
  std::vector<JoinEdge> residual_edges;
  double est_rows = 0.0;   // estimated output cardinality of this subtree
  double est_bytes = 0.0;  // est_rows x projected row width
};

/// A fully specified physical plan plus its estimated cost.
struct PhysicalPlan {
  int left_variant = 0;
  int right_variant = 0;
  AccessPath left_path = AccessPath::kTableScan;
  AccessPath right_path = AccessPath::kTableScan;
  JoinAlgorithm join_algo = JoinAlgorithm::kHash;
  int dop = 1;
  int pstate = 0;
  /// True when ORDER BY + LIMIT is fused into the bounded-heap top-k path
  /// (requires spec.order_by non-empty and spec.limit set).
  bool use_topk = false;
  /// N-way join tree (set when spec.relations is non-empty): nodes plus the
  /// root index, from the DP enumerator or CanonicalJoinPlan.
  std::vector<PlanJoinNode> join_nodes;
  int join_root = -1;
  /// Estimated bytes of all non-root intermediate join results (the bench's
  /// "intermediate-result bytes" axis; what high lambda shrinks).
  double est_intermediate_bytes = 0.0;
  PlanCost cost;
  /// Estimated output cardinality (clamped to spec.limit when set).
  double output_rows = 0.0;

  std::string Describe(const QuerySpec& spec) const;

  /// Leaf relations of the join tree in left-to-right order — the chosen
  /// join order (empty for 2-way plans). Two plans over the same spec
  /// joined in different orders differ here.
  std::vector<int> LeafOrder() const;
};

/// Planner knobs: which dimensions to enumerate.
struct PlannerOptions {
  std::vector<int> dops = {1};
  bool enumerate_pstates = false;
  bool enumerate_join_algorithms = true;
};

/// Power-of-two dop candidates up to `max_dop` (always includes `max_dop`
/// itself), e.g. 6 -> {1, 2, 4, 6}. Convenient for PlannerOptions::dops.
std::vector<int> DopLadder(int max_dop);

/// Dop ladder derived from the platform's physical core count — the
/// engine-level policy: never enumerate more workers than the modeled CPU
/// has cores, since extra dop past that point adds scheduling charges but
/// cannot shrink the critical path.
std::vector<int> PlatformDopLadder(const power::HardwarePlatform& platform);

class Planner {
 public:
  /// `model` must outlive the planner.
  Planner(CostModel* model, PlannerOptions options = {});

  /// The options the planner enumerates with (after normalization — e.g. an
  /// empty dop list becomes {1}).
  const PlannerOptions& options() const { return options_; }

  /// Returns the best plan under `objective`, or an error if the spec is
  /// malformed (no variants, missing join keys, ...).
  StatusOr<PhysicalPlan> ChoosePlan(const QuerySpec& spec,
                                    const Objective& objective) const;

  /// Prices one fully specified plan (exposed for ablation sweeps).
  StatusOr<PlanCost> PricePlan(const QuerySpec& spec,
                               const PhysicalPlan& plan) const;

  /// Constructs the executable operator tree realizing `plan`.
  StatusOr<exec::OperatorPtr> BuildOperator(const QuerySpec& spec,
                                            const PhysicalPlan& plan) const;

  /// Estimated selectivity of `filter` against a table's stats (exposed
  /// for tests). Bind() need not have been called.
  static double EstimateSelectivity(const exec::ExprPtr& filter,
                                    const catalog::Schema& schema,
                                    const catalog::TableStats& stats);

  /// Extracts the [lo, hi] key range the AND-conjuncts of `filter` impose
  /// on `column` (integer/date types). Returns false when unconstrained.
  static bool ExtractKeyRange(const exec::ExprPtr& filter,
                              const std::string& column, int64_t* lo,
                              int64_t* hi);

 private:
  struct Cardinalities {
    double left_rows = 0.0;
    double right_rows = 0.0;
    double join_rows = 0.0;
    double output_rows = 0.0;
  };

  StatusOr<Cardinalities> EstimateCardinalities(const QuerySpec& spec) const;

  StatusOr<PlanCost> PriceInternal(const QuerySpec& spec,
                                   const PhysicalPlan& plan,
                                   const Cardinalities& cards) const;

  // N-way join-graph path (join_order.cc): bitmask-DP enumeration over
  // connected subgraphs, pricing with the same model, building trees of the
  // unchanged join operators.
  StatusOr<PhysicalPlan> ChooseJoinGraphPlan(const QuerySpec& spec,
                                             const Objective& objective) const;
  StatusOr<PlanCost> PriceJoinGraphPlan(const QuerySpec& spec,
                                        const PhysicalPlan& plan) const;
  StatusOr<exec::OperatorPtr> BuildJoinGraphOperator(
      const QuerySpec& spec, const PhysicalPlan& plan) const;

  CostModel* model_;
  PlannerOptions options_;
};

}  // namespace ecodb::optimizer

#endif  // ECODB_OPTIMIZER_PLANNER_H_

// Two-objective cost model: every plan is priced in seconds AND Joules.
//
// Section 4.1 of the paper: "To improve energy efficiency, query optimizers
// will need power models to estimate energy costs. There has been a lot of
// work on modeling power, but simple models may suffice in the same way
// simple models for device access times work well in practice." This model
// is exactly that kind of simple model:
//
//   time   = max(cpu_work / (cores x ips), per-device I/O service time)
//   energy = cpu_active + device_active + dram_traffic
//            + memory_residency (W/GiB x resident-byte-seconds)
//            + platform_background x time
//
// The memory-residency term is what makes hash join "expensive ... from a
// power perspective" relative to nested-loop join, per the paper. Its
// coefficient is a knob the A1 ablation sweeps.

#ifndef ECODB_OPTIMIZER_COST_MODEL_H_
#define ECODB_OPTIMIZER_COST_MODEL_H_

#include <cstdint>
#include <map>
#include <string>

#include "exec/exec_context.h"
#include "power/platform.h"
#include "storage/device.h"
#include "storage/table_storage.h"

namespace ecodb::optimizer {

/// The optimizer's objective: minimize seconds + lambda * joules.
/// lambda = 0 reproduces a classical performance-only optimizer;
/// lambda -> infinity minimizes pure energy. Units: seconds per Joule.
struct Objective {
  double lambda = 0.0;

  static Objective Performance() { return {0.0}; }
  static Objective Energy() { return {1e9}; }
  static Objective Balanced(double lambda) { return {lambda}; }
};

struct PlanCost {
  double seconds = 0.0;
  double joules = 0.0;

  double Scalarize(const Objective& obj) const {
    return seconds + obj.lambda * joules;
  }
};

/// Raw resource demands of a (sub)plan, accumulated by the planner and
/// converted to PlanCost at the end (so overlap across phases is priced the
/// same way the executor measures it).
struct ResourceEstimate {
  /// CPU work that parallelizes across the plan's dop (scans, filters,
  /// probes, aggregate updates).
  double cpu_instructions = 0.0;
  /// Additional CPU work confined to one core regardless of dop (hash
  /// builds, sorts, final merges, index descents). Amdahl's law: elapsed =
  /// serial_seconds + parallel_seconds / cores, while busy core-seconds —
  /// and so active CPU energy — always cover both terms in full.
  double serial_cpu_instructions = 0.0;
  /// I/O demand per device (keyed by device pointer; stable during a plan).
  std::map<const storage::StorageDevice*, uint64_t> device_bytes;
  /// Random page reads per device (index descents, heap fetches); each
  /// pays the device's per-request positioning cost.
  std::map<const storage::StorageDevice*, uint64_t> random_page_reads;
  uint64_t dram_traffic_bytes = 0;
  /// Bytes held resident multiplied by the seconds they are held (set by
  /// memory-hungry operators; priced at the DRAM W/GiB rate).
  double resident_byte_seconds = 0.0;

  void Merge(const ResourceEstimate& other);
};

struct CostModelParams {
  exec::CostConstants costs;
  /// Multiplier on the DRAM residency price (1.0 = the platform's real
  /// W/GiB). The A1 ablation sweeps this to move the hash/NLJ crossover.
  double memory_power_premium = 1.0;
  /// DRAM residency rate in W/GiB before the premium; < 0 uses the
  /// platform's DRAM background rate. Lets planners price memory as if it
  /// were energy-proportional (the paper's Section 4.3 assumption) even on
  /// platforms whose DRAM model excludes background power.
  double dram_watts_per_gib_override = -1.0;
  /// Include the platform's standing (idle background) power in energy
  /// estimates. True matches what a wall meter sees.
  bool include_background_power = true;
};

class CostModel {
 public:
  /// `platform` must outlive the model.
  CostModel(power::HardwarePlatform* platform, CostModelParams params);

  const CostModelParams& params() const { return params_; }
  power::HardwarePlatform* platform() const { return platform_; }

  /// Demand of scanning `columns` of `table` (I/O bytes + decode CPU).
  ResourceEstimate ScanDemand(const storage::TableStorage& table,
                              const std::vector<int>& column_indexes) const;

  /// Demand of sorting `rows` rows on `num_keys` keys, priced the way the
  /// morsel-parallel external sort executes: run formation
  /// (rows · log2(run size)) and the merge comparison ladder
  /// (rows · log2(fan-in)) parallelize across cores, while the merge's
  /// splitter selection and partition stitching stay serial (Amdahl).
  /// `costs.sort_run_rows` models the run size; at one run this reduces
  /// exactly to the classic serial n·log2(n).
  ///
  /// `limit_rows >= 0` prices the fused top-k path instead: each run streams
  /// through a bounded heap of min(run, k) rows — O(n log k) comparisons,
  /// parallel — and the coordinator merges the ≤ runs·k candidates and emits
  /// k rows (serial). Top-k keeps only a k-row working set, so callers price
  /// its spill on k rows, not n (zero spill bytes when k fits the budget).
  ResourceEstimate SortDemand(double rows, size_t num_keys,
                              double limit_rows = -1.0) const;

  /// Converts accumulated demand into (seconds, Joules) at the given
  /// execution knobs, mirroring ExecContext's critical-path rule.
  PlanCost Price(const ResourceEstimate& demand, int dop, int pstate) const;

 private:
  power::HardwarePlatform* platform_;
  CostModelParams params_;
};

}  // namespace ecodb::optimizer

#endif  // ECODB_OPTIMIZER_COST_MODEL_H_

#include "optimizer/planner.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

#include "optimizer/planner_internal.h"

#include "exec/filter_project.h"
#include "exec/index_scan.h"
#include "exec/joins.h"
#include "exec/parallel_aggregate.h"
#include "exec/parallel_scan.h"
#include "exec/parallel_sort.h"
#include "exec/scan.h"
#include "exec/topk.h"

namespace ecodb::optimizer {

using exec::Expr;
using exec::ExprKind;
using exec::ExprPtr;

const char* AccessPathName(AccessPath path) {
  switch (path) {
    case AccessPath::kTableScan:
      return "seq-scan";
    case AccessPath::kIndexScan:
      return "index-scan";
  }
  return "unknown";
}

const char* JoinAlgorithmName(JoinAlgorithm algo) {
  switch (algo) {
    case JoinAlgorithm::kHash:
      return "hash(build=right)";
    case JoinAlgorithm::kHashSwapped:
      return "hash(build=left)";
    case JoinAlgorithm::kMerge:
      return "sort-merge";
    case JoinAlgorithm::kNestedLoop:
      return "nested-loop";
  }
  return "unknown";
}

namespace internal {

void CollectColumns(const ExprPtr& expr, std::set<std::string>* out) {
  if (expr == nullptr) return;
  if (expr->kind() == ExprKind::kColumn) {
    out->insert(expr->column_name());
    return;
  }
  CollectColumns(expr->lhs(), out);
  CollectColumns(expr->rhs(), out);
}

std::vector<int> ToIndexes(const catalog::Schema& schema,
                           const std::vector<std::string>& names) {
  std::vector<int> idx;
  idx.reserve(names.size());
  for (const std::string& n : names) {
    const int i = schema.FindColumn(n);
    if (i >= 0) idx.push_back(i);
  }
  return idx;
}

double RowWidthOf(const storage::TableStorage& table,
                  const std::vector<std::string>& columns) {
  double width = 0.0;
  for (const std::string& name : columns) {
    const int i = table.schema().FindColumn(name);
    if (i >= 0) {
      const catalog::Column& c = table.schema().column(i);
      width += catalog::TypeWidthBytes(c.type, c.avg_width);
    }
  }
  return width;
}

ResourceEstimate PrunedScanDemand(const storage::TableStorage& table,
                                  const std::vector<int>& col_indexes,
                                  const exec::ExprPtr& filter,
                                  double decode_scale) {
  ResourceEstimate demand;
  const exec::ScanPruning pruning = exec::PruneScan(filter, table);
  const uint64_t bytes =
      exec::ScanTransferBytes(table, col_indexes, pruning.selected_fraction);
  if (bytes > 0 && table.device() != nullptr) {
    demand.device_bytes[table.device()] += bytes;
  }
  demand.cpu_instructions =
      exec::ScanDecodeInstructions(table, col_indexes,
                                   pruning.selected_fraction) *
      decode_scale;
  return demand;
}

void PriceTail(const QuerySpec& spec, const PhysicalPlan& plan,
               const CostModel& model, double in_rows, double output_rows,
               double input_width, ResourceEstimate* demand) {
  const exec::CostConstants& k = model.params().costs;
  if (!spec.aggregates.empty()) {
    // Group updates run in thread-local partials; the merged-table emission
    // is the coordinator's.
    demand->cpu_instructions += k.agg_update_per_row * in_rows;
    demand->serial_cpu_instructions += k.output_per_row * output_rows;
    demand->dram_traffic_bytes += static_cast<uint64_t>(output_rows * 64.0);
  }

  if (!spec.order_by.empty()) {
    const double n = output_rows;
    // Materialized width of the sorted rows: aggregate outputs are (group
    // keys + aggregate values); otherwise the projected scan/join width.
    double width;
    if (!spec.aggregates.empty()) {
      width = 8.0 * static_cast<double>(spec.group_by.size() +
                                        spec.aggregates.size());
    } else {
      width = input_width;
    }
    const double budget =
        static_cast<double>(spec.sort_memory_budget_bytes);
    if (plan.use_topk && spec.limit.has_value()) {
      // Fused top-k: O(n log k) comparisons, and only the k-row candidate
      // set is held (and, if even that overflows the budget, spilled) —
      // zero spill bytes whenever k rows fit the budget.
      const double limit_rows = static_cast<double>(*spec.limit);
      demand->Merge(model.SortDemand(n, spec.order_by.size(), limit_rows));
      const double kept_bytes = std::min(n, limit_rows) * width;
      demand->dram_traffic_bytes +=
          static_cast<uint64_t>(std::min(kept_bytes, budget));
      if (spec.sort_spill_device != nullptr && kept_bytes > budget) {
        demand->device_bytes[spec.sort_spill_device] +=
            static_cast<uint64_t>(2.0 * kept_bytes);
      }
    } else {
      demand->Merge(model.SortDemand(n, spec.order_by.size()));
      const double sort_bytes = n * width;
      demand->dram_traffic_bytes +=
          static_cast<uint64_t>(std::min(sort_bytes, budget));
      if (spec.sort_spill_device != nullptr && sort_bytes > budget) {
        // External spill: every run is written once and read back once.
        demand->device_bytes[spec.sort_spill_device] +=
            static_cast<uint64_t>(2.0 * sort_bytes);
      }
    }
  }
}

exec::OperatorPtr FinishOperatorTree(const QuerySpec& spec,
                                     const PhysicalPlan& plan,
                                     exec::OperatorPtr root) {
  const bool parallel = plan.dop > 1;
  if (!spec.aggregates.empty()) {
    if (parallel) {
      root = std::make_unique<exec::ParallelHashAggregateOp>(
          std::move(root), spec.group_by, spec.aggregates);
    } else {
      root = std::make_unique<exec::HashAggregateOp>(
          std::move(root), spec.group_by, spec.aggregates);
    }
  }

  bool limit_applied = false;
  if (!spec.order_by.empty()) {
    if (plan.use_topk && spec.limit.has_value()) {
      const size_t limit = static_cast<size_t>(*spec.limit);
      if (parallel) {
        root = std::make_unique<exec::ParallelTopKOp>(
            std::move(root), spec.order_by, limit,
            spec.sort_memory_budget_bytes, spec.sort_spill_device);
      } else {
        root = std::make_unique<exec::TopKOp>(
            std::move(root), spec.order_by, limit,
            spec.sort_memory_budget_bytes, spec.sort_spill_device);
      }
      limit_applied = true;
    } else if (parallel) {
      root = std::make_unique<exec::ParallelSortOp>(
          std::move(root), spec.order_by, spec.sort_memory_budget_bytes,
          spec.sort_spill_device);
    } else {
      root = std::make_unique<exec::SortOp>(std::move(root), spec.order_by,
                                            spec.sort_memory_budget_bytes,
                                            spec.sort_spill_device);
    }
  }
  if (spec.limit.has_value() && !limit_applied) {
    root = std::make_unique<exec::LimitOp>(
        std::move(root), static_cast<size_t>(*spec.limit));
  }
  return root;
}

}  // namespace internal

namespace {

using internal::CollectColumns;
using internal::PrunedScanDemand;
using internal::RowWidthOf;
using internal::ToIndexes;

/// Columns a scan of `table` must produce for this query.
std::vector<std::string> ScanColumnsFor(const TableAlternatives& table,
                                        const QuerySpec& spec,
                                        bool is_left) {
  const catalog::Schema& schema = table.variants[0]->schema();
  std::set<std::string> needed;
  if (table.columns.empty()) {
    for (const catalog::Column& c : schema.columns()) needed.insert(c.name);
  } else {
    needed.insert(table.columns.begin(), table.columns.end());
  }
  CollectColumns(table.filter, &needed);
  if (spec.right.has_value()) {
    needed.insert(is_left ? spec.left_key : spec.right_key);
  }
  // Group-by / aggregate inputs that live in this table's schema.
  std::set<std::string> agg_cols;
  for (const std::string& g : spec.group_by) agg_cols.insert(g);
  for (const exec::AggregateItem& item : spec.aggregates) {
    CollectColumns(item.input, &agg_cols);
  }
  for (const std::string& name : agg_cols) {
    if (schema.FindColumn(name) >= 0) needed.insert(name);
  }
  // Keep only columns that actually exist here.
  std::vector<std::string> out;
  for (const std::string& name : needed) {
    if (schema.FindColumn(name) >= 0) out.push_back(name);
  }
  return out;
}

/// Index-path demand: real index page walk + heap-page fetch estimate.
ResourceEstimate IndexScanDemand(const storage::TableStorage& table,
                                 const storage::BTreeIndex& index,
                                 int64_t lo, int64_t hi,
                                 double estimated_matches,
                                 size_t projected_columns) {
  ResourceEstimate demand;
  const double index_pages =
      static_cast<double>(index.PagesForRange(lo, hi));
  const double row_width =
      std::max(1, table.schema().RowWidthBytes());
  const double total_pages = std::max(
      1.0, static_cast<double>(table.row_count()) * row_width / 8192.0);
  // Coupon-collector estimate of distinct heap pages touched by m rows.
  const double heap_pages =
      total_pages * (1.0 - std::exp(-estimated_matches / total_pages));
  if (table.device() != nullptr) {
    demand.random_page_reads[table.device()] +=
        static_cast<uint64_t>(index_pages + heap_pages + 0.5);
  }
  demand.cpu_instructions =
      20.0 * static_cast<double>(index.height()) +
      estimated_matches * static_cast<double>(projected_columns);
  return demand;
}

}  // namespace

bool Planner::ExtractKeyRange(const ExprPtr& filter,
                              const std::string& column, int64_t* lo,
                              int64_t* hi) {
  if (filter == nullptr) return false;
  if (filter->kind() == ExprKind::kLogical &&
      filter->logical_op() == exec::LogicalOp::kAnd) {
    int64_t l1 = INT64_MIN, h1 = INT64_MAX, l2 = INT64_MIN, h2 = INT64_MAX;
    const bool a = ExtractKeyRange(filter->lhs(), column, &l1, &h1);
    const bool b = ExtractKeyRange(filter->rhs(), column, &l2, &h2);
    if (!a && !b) return false;
    *lo = std::max(l1, l2);
    *hi = std::min(h1, h2);
    return true;
  }
  if (filter->kind() != ExprKind::kCompare) return false;
  const ExprPtr& l = filter->lhs();
  const ExprPtr& r = filter->rhs();
  const bool col_lit =
      l->kind() == ExprKind::kColumn && r->kind() == ExprKind::kLiteral;
  const bool lit_col =
      l->kind() == ExprKind::kLiteral && r->kind() == ExprKind::kColumn;
  if (!col_lit && !lit_col) return false;
  const std::string& name = col_lit ? l->column_name() : r->column_name();
  if (name != column) return false;
  const exec::Value& lit = col_lit ? r->literal() : l->literal();
  if (!catalog::IsIntegerLike(lit.type)) return false;
  exec::CompareOp op = filter->compare_op();
  if (lit_col) {
    switch (op) {
      case exec::CompareOp::kLt:
        op = exec::CompareOp::kGt;
        break;
      case exec::CompareOp::kLe:
        op = exec::CompareOp::kGe;
        break;
      case exec::CompareOp::kGt:
        op = exec::CompareOp::kLt;
        break;
      case exec::CompareOp::kGe:
        op = exec::CompareOp::kLe;
        break;
      default:
        break;
    }
  }
  *lo = INT64_MIN;
  *hi = INT64_MAX;
  switch (op) {
    case exec::CompareOp::kEq:
      *lo = *hi = lit.i64;
      return true;
    case exec::CompareOp::kLt:
      *hi = lit.i64 - 1;
      return true;
    case exec::CompareOp::kLe:
      *hi = lit.i64;
      return true;
    case exec::CompareOp::kGt:
      *lo = lit.i64 + 1;
      return true;
    case exec::CompareOp::kGe:
      *lo = lit.i64;
      return true;
    default:
      return false;
  }
}

namespace {

/// Renders the N-way join tree: leaves as `seq-scan(name)`, joins as
/// parenthesized `(left <algo> right)` with a `*` marking residual-edge
/// filters — the full tree, so bench output shows the chosen order.
std::string DescribeJoinNode(const QuerySpec& spec,
                             const std::vector<PlanJoinNode>& nodes,
                             int index) {
  if (index < 0 || index >= static_cast<int>(nodes.size())) return "?";
  const PlanJoinNode& node = nodes[index];
  if (node.relation >= 0) {
    const std::string name =
        node.relation < static_cast<int>(spec.relations.size())
            ? spec.relations[node.relation].name
            : "rel" + std::to_string(node.relation);
    return "seq-scan(" + name + ")";
  }
  std::string out = "(" + DescribeJoinNode(spec, nodes, node.left) + " " +
                    JoinAlgorithmName(node.algo);
  if (!node.residual_edges.empty()) out += "*";
  return out + " " + DescribeJoinNode(spec, nodes, node.right) + ")";
}

void CollectLeaves(const std::vector<PlanJoinNode>& nodes, int index,
                   std::vector<int>* out) {
  if (index < 0 || index >= static_cast<int>(nodes.size())) return;
  const PlanJoinNode& node = nodes[index];
  if (node.relation >= 0) {
    out->push_back(node.relation);
    return;
  }
  CollectLeaves(nodes, node.left, out);
  CollectLeaves(nodes, node.right, out);
}

}  // namespace

std::vector<int> PhysicalPlan::LeafOrder() const {
  std::vector<int> order;
  CollectLeaves(join_nodes, join_root, &order);
  return order;
}

std::string PhysicalPlan::Describe(const QuerySpec& spec) const {
  std::string out;
  if (!join_nodes.empty()) {
    out = DescribeJoinNode(spec, join_nodes, join_root);
  } else {
    out = std::string(AccessPathName(left_path)) + "(" + spec.left.name +
          " v" + std::to_string(left_variant) + ")";
    if (spec.right.has_value()) {
      out += " " + std::string(JoinAlgorithmName(join_algo)) + " " +
             AccessPathName(right_path) + "(" + spec.right->name + " v" +
             std::to_string(right_variant) + ")";
    }
  }
  if (!spec.aggregates.empty()) out += " -> aggregate";
  if (!spec.order_by.empty()) {
    if (use_topk && spec.limit.has_value()) {
      out += " -> topk(" + std::to_string(*spec.limit) + ")";
    } else {
      out += " -> sort";
      if (spec.limit.has_value()) {
        out += " -> limit(" + std::to_string(*spec.limit) + ")";
      }
    }
  } else if (spec.limit.has_value()) {
    out += " -> limit(" + std::to_string(*spec.limit) + ")";
  }
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                " [dop=%d pstate=%d est %.3fs %.1fJ rows=%.0f]", dop, pstate,
                cost.seconds, cost.joules, output_rows);
  return out + buf;
}

Planner::Planner(CostModel* model, PlannerOptions options)
    : model_(model), options_(std::move(options)) {
  if (options_.dops.empty()) options_.dops = {1};
}

namespace {

/// A column-vs-literal inequality, normalized so the column is on the left
/// ("lit < col" becomes "col > lit"). `ok` is false for anything else.
struct RangeBound {
  std::string column;
  exec::CompareOp op = exec::CompareOp::kEq;
  double value = 0.0;
  bool ok = false;
};

RangeBound ExtractRangeBound(const ExprPtr& e) {
  RangeBound b;
  if (e == nullptr || e->kind() != ExprKind::kCompare) return b;
  const ExprPtr& l = e->lhs();
  const ExprPtr& r = e->rhs();
  const bool col_lit =
      l->kind() == ExprKind::kColumn && r->kind() == ExprKind::kLiteral;
  const bool lit_col =
      l->kind() == ExprKind::kLiteral && r->kind() == ExprKind::kColumn;
  if (!col_lit && !lit_col) return b;
  b.column = col_lit ? l->column_name() : r->column_name();
  b.op = e->compare_op();
  if (lit_col) {
    switch (b.op) {
      case exec::CompareOp::kLt:
        b.op = exec::CompareOp::kGt;
        break;
      case exec::CompareOp::kLe:
        b.op = exec::CompareOp::kGe;
        break;
      case exec::CompareOp::kGt:
        b.op = exec::CompareOp::kLt;
        break;
      case exec::CompareOp::kGe:
        b.op = exec::CompareOp::kLe;
        break;
      default:
        break;
    }
  }
  switch (b.op) {
    case exec::CompareOp::kLt:
    case exec::CompareOp::kLe:
    case exec::CompareOp::kGt:
    case exec::CompareOp::kGe:
      break;
    default:
      return b;
  }
  b.value = (col_lit ? r->literal() : l->literal()).AsDouble();
  b.ok = true;
  return b;
}

/// Selectivity of `a AND b` when both are range bounds on the same numeric
/// column: the interval INTERSECTION under the uniform assumption, not the
/// product of two "independent" predicates. For a date band like
/// `d >= 900 AND d < 960` over a ~2555-day domain the difference is 2.3%
/// vs 24% — an order of magnitude, and exactly the shape every TPC-H date
/// window takes. Returns a negative sentinel when the pattern doesn't apply.
double BandSelectivity(const RangeBound& a, const RangeBound& b,
                       const catalog::Schema& schema,
                       const catalog::TableStats& stats) {
  if (!a.ok || !b.ok || a.column != b.column) return -1.0;
  const int idx = schema.FindColumn(a.column);
  if (idx < 0 || idx >= static_cast<int>(stats.columns.size())) return -1.0;
  const catalog::ColumnStats& cs = stats.columns[idx];
  const catalog::DataType t = schema.column(idx).type;
  double lo, hi;
  if (t == catalog::DataType::kDouble) {
    lo = cs.min_f64;
    hi = cs.max_f64;
  } else if (catalog::IsIntegerLike(t)) {
    lo = static_cast<double>(cs.min_i64);
    hi = static_cast<double>(cs.max_i64);
  } else {
    return -1.0;
  }
  if (hi <= lo) return -1.0;
  double lo_cut = 0.0, hi_cut = 1.0;
  for (const RangeBound* p : {&a, &b}) {
    const double frac = std::clamp((p->value - lo) / (hi - lo), 0.0, 1.0);
    if (p->op == exec::CompareOp::kLt || p->op == exec::CompareOp::kLe) {
      hi_cut = std::min(hi_cut, frac);
    } else {
      lo_cut = std::max(lo_cut, frac);
    }
  }
  return std::max(hi_cut - lo_cut, 0.0);
}

}  // namespace

double Planner::EstimateSelectivity(const ExprPtr& filter,
                                    const catalog::Schema& schema,
                                    const catalog::TableStats& stats) {
  if (filter == nullptr) return 1.0;
  switch (filter->kind()) {
    case ExprKind::kLogical: {
      if (filter->logical_op() == exec::LogicalOp::kAnd) {
        const double band =
            BandSelectivity(ExtractRangeBound(filter->lhs()),
                            ExtractRangeBound(filter->rhs()), schema, stats);
        if (band >= 0.0) return band;
      }
      const double a = EstimateSelectivity(filter->lhs(), schema, stats);
      const double b = EstimateSelectivity(filter->rhs(), schema, stats);
      return filter->logical_op() == exec::LogicalOp::kAnd
                 ? a * b
                 : a + b - a * b;
    }
    case ExprKind::kNot:
      return 1.0 - EstimateSelectivity(filter->lhs(), schema, stats);
    case ExprKind::kCompare: {
      // Column-vs-literal gets a range estimate; everything else defaults.
      const ExprPtr& l = filter->lhs();
      const ExprPtr& r = filter->rhs();
      const bool col_lit = l->kind() == ExprKind::kColumn &&
                           r->kind() == ExprKind::kLiteral;
      const bool lit_col = l->kind() == ExprKind::kLiteral &&
                           r->kind() == ExprKind::kColumn;
      if (!col_lit && !lit_col) return 0.33;
      const std::string& col_name =
          col_lit ? l->column_name() : r->column_name();
      const exec::Value& lit = col_lit ? r->literal() : l->literal();
      const int idx = schema.FindColumn(col_name);
      if (idx < 0 || idx >= static_cast<int>(stats.columns.size())) {
        return 0.33;
      }
      const catalog::ColumnStats& cs = stats.columns[idx];
      exec::CompareOp op = filter->compare_op();
      if (lit_col) {
        // Normalize "lit < col" to "col > lit" etc.
        switch (op) {
          case exec::CompareOp::kLt:
            op = exec::CompareOp::kGt;
            break;
          case exec::CompareOp::kLe:
            op = exec::CompareOp::kGe;
            break;
          case exec::CompareOp::kGt:
            op = exec::CompareOp::kLt;
            break;
          case exec::CompareOp::kGe:
            op = exec::CompareOp::kLe;
            break;
          default:
            break;
        }
      }
      if (op == exec::CompareOp::kEq) {
        return cs.distinct_values > 0
                   ? 1.0 / static_cast<double>(cs.distinct_values)
                   : 0.1;
      }
      if (op == exec::CompareOp::kNe) {
        return cs.distinct_values > 0
                   ? 1.0 - 1.0 / static_cast<double>(cs.distinct_values)
                   : 0.9;
      }
      // Range: interpolate within [min, max].
      double lo, hi, v;
      const catalog::DataType t = schema.column(idx).type;
      if (t == catalog::DataType::kDouble) {
        lo = cs.min_f64;
        hi = cs.max_f64;
        v = lit.AsDouble();
      } else if (catalog::IsIntegerLike(t)) {
        lo = static_cast<double>(cs.min_i64);
        hi = static_cast<double>(cs.max_i64);
        v = lit.AsDouble();
      } else {
        return 0.33;  // string range: no histogram
      }
      if (hi <= lo) return 0.5;
      const double frac = std::clamp((v - lo) / (hi - lo), 0.0, 1.0);
      switch (op) {
        case exec::CompareOp::kLt:
        case exec::CompareOp::kLe:
          return frac;
        case exec::CompareOp::kGt:
        case exec::CompareOp::kGe:
          return 1.0 - frac;
        default:
          return 0.33;
      }
    }
    default:
      return 0.33;
  }
}

StatusOr<Planner::Cardinalities> Planner::EstimateCardinalities(
    const QuerySpec& spec) const {
  if (spec.left.variants.empty()) {
    return Status::InvalidArgument("left table has no variants");
  }
  Cardinalities cards;

  catalog::TableStats lstats;
  if (spec.left.stats != nullptr) {
    lstats = *spec.left.stats;
  } else {
    ECODB_RETURN_IF_ERROR(spec.left.variants[0]->AnalyzeInto(&lstats));
  }
  const double lsel = EstimateSelectivity(
      spec.left.filter, spec.left.variants[0]->schema(), lstats);
  cards.left_rows =
      static_cast<double>(spec.left.variants[0]->row_count()) * lsel;

  if (!spec.right.has_value()) {
    cards.output_rows = cards.left_rows;
  } else {
    if (spec.right->variants.empty()) {
      return Status::InvalidArgument("right table has no variants");
    }
    catalog::TableStats rstats;
    if (spec.right->stats != nullptr) {
      rstats = *spec.right->stats;
    } else {
      ECODB_RETURN_IF_ERROR(spec.right->variants[0]->AnalyzeInto(&rstats));
    }
    const double rsel = EstimateSelectivity(
        spec.right->filter, spec.right->variants[0]->schema(), rstats);
    cards.right_rows =
        static_cast<double>(spec.right->variants[0]->row_count()) * rsel;

    // |L >< R| ~= |L| x |R| / max(ndv_l, ndv_r).
    const int lk = spec.left.variants[0]->schema().FindColumn(spec.left_key);
    const int rk =
        spec.right->variants[0]->schema().FindColumn(spec.right_key);
    if (lk < 0 || rk < 0) {
      return Status::NotFound("join key column missing from table schema");
    }
    const double ndv = std::max<double>(
        {1.0, static_cast<double>(lstats.columns[lk].distinct_values),
         static_cast<double>(rstats.columns[rk].distinct_values)});
    cards.join_rows = cards.left_rows * cards.right_rows / ndv;
    cards.output_rows = cards.join_rows;
  }

  if (!spec.aggregates.empty()) {
    // Output = number of groups; crude NDV product bound.
    double groups = 1.0;
    for (const std::string& g : spec.group_by) {
      double ndv = 16.0;
      const int li = spec.left.variants[0]->schema().FindColumn(g);
      if (li >= 0 &&
          li < static_cast<int>(lstats.columns.size())) {
        ndv = std::max<double>(
            1.0, static_cast<double>(lstats.columns[li].distinct_values));
      }
      groups *= ndv;
    }
    cards.output_rows = std::min(cards.output_rows,
                                 spec.group_by.empty() ? 1.0 : groups);
  }
  return cards;
}

StatusOr<PlanCost> Planner::PriceInternal(const QuerySpec& spec,
                                          const PhysicalPlan& plan,
                                          const Cardinalities& cards) const {
  const exec::CostConstants& k = model_->params().costs;
  ResourceEstimate demand;

  // Per-side access-path demand (seq scan with zone pruning, or index).
  auto side_demand = [&](const TableAlternatives& side, bool is_left,
                         int variant, AccessPath path, double out_rows) {
    const storage::TableStorage& t = *side.variants[variant];
    const std::vector<std::string> cols = ScanColumnsFor(side, spec, is_left);
    ResourceEstimate d;
    if (path == AccessPath::kIndexScan && side.index != nullptr) {
      int64_t lo = INT64_MIN, hi = INT64_MAX;
      if (ExtractKeyRange(side.filter, side.index_column, &lo, &hi)) {
        d = IndexScanDemand(t, *side.index, lo, hi, out_rows, cols.size());
        // Index descents are pointer chases on one core; the executor does
        // not parallelize this path.
        d.serial_cpu_instructions = d.cpu_instructions;
        d.cpu_instructions = 0.0;
        // Exact residual filtering over the fetched rows.
        if (side.filter != nullptr) {
          d.serial_cpu_instructions +=
              side.filter->InstructionsPerRow() * out_rows;
        }
        return d;
      }
    }
    d = PrunedScanDemand(t, ToIndexes(t.schema(), cols), side.filter,
                         k.decode_scale);
    if (side.filter != nullptr) {
      d.cpu_instructions += side.filter->InstructionsPerRow() *
                            static_cast<double>(t.row_count());
    }
    return d;
  };

  demand.Merge(side_demand(spec.left, true, plan.left_variant,
                           plan.left_path, cards.left_rows));

  double resident_bytes = 0.0;

  if (spec.right.has_value()) {
    const storage::TableStorage& lt = *spec.left.variants[plan.left_variant];
    const storage::TableStorage& rt =
        *spec.right->variants[plan.right_variant];
    const std::vector<std::string> lcols =
        ScanColumnsFor(spec.left, spec, true);
    const std::vector<std::string> rcols =
        ScanColumnsFor(*spec.right, spec, false);
    demand.Merge(side_demand(*spec.right, false, plan.right_variant,
                             plan.right_path, cards.right_rows));

    const double lrows = cards.left_rows;
    const double rrows = cards.right_rows;
    const double lwidth = RowWidthOf(lt, lcols);
    const double rwidth = RowWidthOf(rt, rcols);
    // Serial vs parallel attribution mirrors the executor: hash builds,
    // sorts, and nested-loop emission run on one core; the hash probe runs
    // morsel-parallel over the left scan.
    switch (plan.join_algo) {
      case JoinAlgorithm::kHash: {
        const double build_bytes = rrows * (rwidth + 32.0);
        demand.serial_cpu_instructions += k.hash_build_per_row * rrows;
        demand.cpu_instructions += k.hash_probe_per_row * lrows +
                                   k.output_per_row * cards.join_rows;
        demand.dram_traffic_bytes += static_cast<uint64_t>(build_bytes);
        resident_bytes += build_bytes;
        break;
      }
      case JoinAlgorithm::kHashSwapped: {
        const double build_bytes = lrows * (lwidth + 32.0);
        demand.serial_cpu_instructions += k.hash_build_per_row * lrows;
        demand.cpu_instructions += k.hash_probe_per_row * rrows +
                                   k.output_per_row * cards.join_rows;
        demand.dram_traffic_bytes += static_cast<uint64_t>(build_bytes);
        resident_bytes += build_bytes;
        break;
      }
      case JoinAlgorithm::kMerge: {
        // Both inputs sort under the external-sort model (run formation and
        // merge fan-in parallelize; see CostModel::SortDemand) — total
        // comparison work still n·log2(n) per side, only its Amdahl split
        // changed. The merge walk and output emission stay serial.
        demand.Merge(model_->SortDemand(lrows, 1));
        demand.Merge(model_->SortDemand(rrows, 1));
        demand.serial_cpu_instructions +=
            2.0 * (lrows + rrows) + k.output_per_row * cards.join_rows;
        break;
      }
      case JoinAlgorithm::kNestedLoop: {
        demand.serial_cpu_instructions +=
            k.nl_join_inner_per_pair * lrows * rrows +
            k.output_per_row * cards.join_rows;
        break;
      }
    }
  }

  // Post-join tail (aggregate / sort / top-k), shared with the N-way path.
  double input_width = RowWidthOf(*spec.left.variants[plan.left_variant],
                                  ScanColumnsFor(spec.left, spec, true));
  if (spec.right.has_value()) {
    input_width += RowWidthOf(*spec.right->variants[plan.right_variant],
                              ScanColumnsFor(*spec.right, spec, false));
  }
  internal::PriceTail(spec, plan, *model_,
                      spec.right.has_value() ? cards.join_rows
                                             : cards.left_rows,
                      cards.output_rows, input_width, &demand);

  // Two-phase pricing: residency energy needs the plan duration.
  PlanCost cost = model_->Price(demand, plan.dop, plan.pstate);
  if (resident_bytes > 0) {
    demand.resident_byte_seconds = resident_bytes * cost.seconds;
    cost = model_->Price(demand, plan.dop, plan.pstate);
  }
  return cost;
}

StatusOr<PlanCost> Planner::PricePlan(const QuerySpec& spec,
                                      const PhysicalPlan& plan) const {
  if (!spec.relations.empty()) return PriceJoinGraphPlan(spec, plan);
  ECODB_ASSIGN_OR_RETURN(Cardinalities cards, EstimateCardinalities(spec));
  return PriceInternal(spec, plan, cards);
}

StatusOr<PhysicalPlan> Planner::ChoosePlan(const QuerySpec& spec,
                                           const Objective& objective) const {
  if (!spec.relations.empty()) return ChooseJoinGraphPlan(spec, objective);
  ECODB_ASSIGN_OR_RETURN(Cardinalities cards, EstimateCardinalities(spec));

  std::vector<JoinAlgorithm> algos;
  if (!spec.right.has_value()) {
    algos = {JoinAlgorithm::kHash};  // placeholder; unused without a join
  } else if (options_.enumerate_join_algorithms) {
    algos = {JoinAlgorithm::kHash, JoinAlgorithm::kHashSwapped,
             JoinAlgorithm::kMerge, JoinAlgorithm::kNestedLoop};
  } else {
    algos = {JoinAlgorithm::kHash};
  }
  const int num_pstates =
      options_.enumerate_pstates ? model_->platform()->cpu().num_pstates()
                                 : 1;

  auto paths_for = [](const TableAlternatives& side) {
    std::vector<AccessPath> paths = {AccessPath::kTableScan};
    int64_t lo, hi;
    if (side.index != nullptr && !side.index_column.empty() &&
        Planner::ExtractKeyRange(side.filter, side.index_column, &lo, &hi)) {
      paths.push_back(AccessPath::kIndexScan);
    }
    return paths;
  };
  const std::vector<AccessPath> left_paths = paths_for(spec.left);
  const std::vector<AccessPath> right_paths =
      spec.right.has_value() ? paths_for(*spec.right)
                             : std::vector<AccessPath>{AccessPath::kTableScan};

  // ORDER BY + LIMIT adds the fused top-k as a priced alternative: it wins
  // at small k (bounded heap, no spill) and loses at k ~ n (the candidate
  // merge covers all rows serially), so the fallback rule is purely
  // cost-based.
  std::vector<bool> topk_choices = {false};
  if (!spec.order_by.empty() && spec.limit.has_value()) {
    topk_choices.push_back(true);
  }

  double output_rows = cards.output_rows;
  if (spec.limit.has_value()) {
    output_rows =
        std::min(output_rows, static_cast<double>(*spec.limit));
  }

  std::optional<PhysicalPlan> best;
  for (size_t lv = 0; lv < spec.left.variants.size(); ++lv) {
    const size_t rv_count =
        spec.right.has_value() ? spec.right->variants.size() : 1;
    for (size_t rv = 0; rv < rv_count; ++rv) {
      for (AccessPath lp : left_paths) {
        for (AccessPath rp : right_paths) {
          for (JoinAlgorithm algo : algos) {
            for (int dop : options_.dops) {
              for (int p = 0; p < num_pstates; ++p) {
                for (bool use_topk : topk_choices) {
                  PhysicalPlan plan;
                  plan.left_variant = static_cast<int>(lv);
                  plan.right_variant = static_cast<int>(rv);
                  plan.left_path = lp;
                  plan.right_path = rp;
                  plan.join_algo = algo;
                  plan.dop = dop;
                  plan.pstate = p;
                  plan.use_topk = use_topk;
                  plan.output_rows = output_rows;
                  ECODB_ASSIGN_OR_RETURN(plan.cost,
                                         PriceInternal(spec, plan, cards));
                  if (!best.has_value() ||
                      plan.cost.Scalarize(objective) <
                          best->cost.Scalarize(objective)) {
                    best = plan;
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  if (!best.has_value()) return Status::Internal("no plan enumerated");
  return *best;
}

StatusOr<exec::OperatorPtr> Planner::BuildOperator(
    const QuerySpec& spec, const PhysicalPlan& plan) const {
  using exec::OperatorPtr;

  if (!spec.relations.empty()) return BuildJoinGraphOperator(spec, plan);

  const bool parallel = plan.dop > 1;
  auto build_side = [&](const TableAlternatives& side, bool is_left,
                        int variant, AccessPath path) -> OperatorPtr {
    const storage::TableStorage& t = *side.variants[variant];
    const std::vector<std::string> cols = ScanColumnsFor(side, spec, is_left);
    OperatorPtr scan;
    int64_t lo = INT64_MIN, hi = INT64_MAX;
    if (path == AccessPath::kIndexScan && side.index != nullptr &&
        ExtractKeyRange(side.filter, side.index_column, &lo, &hi)) {
      scan = std::make_unique<exec::IndexScanOp>(&t, side.index, cols, lo,
                                                 hi);
    } else if (parallel) {
      // Morsel-parallel scan with the exact filter fused into the morsel
      // loop (no separate FilterOp; results and accounting match the
      // serial scan+filter pair).
      return std::make_unique<exec::ParallelTableScanOp>(
          &t, cols, side.filter, side.filter);
    } else {
      // Sequential scan with zone-map pruning when available.
      scan = std::make_unique<exec::TableScanOp>(&t, cols, side.filter);
    }
    if (side.filter != nullptr) {
      scan = std::make_unique<exec::FilterOp>(std::move(scan), side.filter);
    }
    return scan;
  };

  const storage::TableStorage& lt = *spec.left.variants[plan.left_variant];
  OperatorPtr root =
      build_side(spec.left, true, plan.left_variant, plan.left_path);
  if (spec.right.has_value()) {
    OperatorPtr right = build_side(*spec.right, false, plan.right_variant,
                                   plan.right_path);
    switch (plan.join_algo) {
      case JoinAlgorithm::kHash:
        root = std::make_unique<exec::HashJoinOp>(
            std::move(root), std::move(right), spec.left_key,
            spec.right_key);
        break;
      case JoinAlgorithm::kHashSwapped:
        // Build on the left: swap children and key roles.
        root = std::make_unique<exec::HashJoinOp>(
            std::move(right), std::move(root), spec.right_key,
            spec.left_key);
        break;
      case JoinAlgorithm::kMerge:
        root = std::make_unique<exec::MergeJoinOp>(
            std::move(root), std::move(right), spec.left_key,
            spec.right_key);
        break;
      case JoinAlgorithm::kNestedLoop: {
        // Predicate over the joined schema; the right key is renamed when
        // it collides with a left column.
        std::string rk = spec.right_key;
        if (lt.schema().FindColumn(rk) >= 0 ||
            spec.left.variants[plan.left_variant]
                    ->schema()
                    .FindColumn(rk) >= 0) {
          rk += "_r";
        }
        root = std::make_unique<exec::NestedLoopJoinOp>(
            std::move(root), std::move(right),
            exec::Col(spec.left_key) == exec::Col(rk));
        break;
      }
    }
  }

  return internal::FinishOperatorTree(spec, plan, std::move(root));
}

std::vector<int> DopLadder(int max_dop) {
  std::vector<int> dops;
  for (int d = 1; d <= std::max(1, max_dop); d *= 2) dops.push_back(d);
  if (dops.back() != max_dop && max_dop > 1) dops.push_back(max_dop);
  return dops;
}

std::vector<int> PlatformDopLadder(const power::HardwarePlatform& platform) {
  return DopLadder(platform.cpu().total_cores());
}

}  // namespace ecodb::optimizer

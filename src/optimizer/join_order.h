// Cost-based join ordering over an N-relation join graph.
//
// The paper's Section 4.1 argues the time-optimal plan and the energy-
// optimal plan diverge once operators are priced in Joules. One level up
// from join-algorithm choice, that means join ORDERS must flip as lambda
// grows: an order that builds a small-but-wide intermediate wins on seconds
// (less serial hash-build work), while an order that keeps only narrow
// relations resident wins on Joules once DRAM residency is priced. The
// enumerator here makes that a planned decision: bitmask dynamic
// programming over connected subgraphs (every connected (left, right)
// partition of every connected subset, both orientations, so left-deep,
// right-deep and bushy trees are all reachable), each subplan priced with
// the two-term `seconds + lambda * joules` CostModel.
//
// The cardinality estimator feeds PRICING ONLY, never correctness: every
// enumerated order is row-equivalent by construction (equi-join edges are
// symmetric; extra edges inside a merged subset become residual filters),
// which tests/differential_join_order_test.cc proves differentially against
// the fixed-order oracle below.
//
// Estimates: rows(S) = prod(filtered rows of relations in S)
//                    * prod(1 / max(ndv_l, ndv_r) over edges inside S).
// With per-column distinct counts from load-time catalog statistics this is
// FK-aware automatically: a child -> parent edge has max ndv = |parent|, so
// |child >< parent| = |child| — the non-expanding key/foreign-key rule.

#ifndef ECODB_OPTIMIZER_JOIN_ORDER_H_
#define ECODB_OPTIMIZER_JOIN_ORDER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "optimizer/planner.h"

namespace ecodb::optimizer {

/// Resolved, validated view of QuerySpec::relations/edges with memoized
/// per-subset cardinality estimates. Exposed so tests can compare subgraph
/// estimates against true cardinalities (the q-error property suite).
class JoinGraph {
 public:
  /// Validates the graph (>= 2 relations, every edge endpoint and key
  /// resolves, column names unique across relations, graph connected) and
  /// resolves statistics: TableAlternatives::stats when provided, else a
  /// fresh analyze of variant 0.
  static StatusOr<JoinGraph> Analyze(const QuerySpec& spec);

  int num_relations() const { return static_cast<int>(filtered_rows_.size()); }
  uint32_t full_mask() const {
    return (uint32_t{1} << num_relations()) - 1;
  }

  /// True when the relations selected by `mask` form a connected subgraph.
  bool Connected(uint32_t mask) const;

  /// Estimated join cardinality of the relations in `mask` (filters and
  /// every internal edge applied). Deterministic and memoized.
  double EstimateRows(uint32_t mask) const;

  /// Indexes (into spec.edges) of edges with one endpoint on each side.
  std::vector<int> CrossingEdgeIndexes(uint32_t left_mask,
                                       uint32_t right_mask) const;

  const JoinEdge& edge(int i) const { return edges_[i]; }
  double edge_selectivity(int i) const { return edge_sel_[i]; }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  double filtered_rows(int rel) const { return filtered_rows_[rel]; }
  /// Projected row width of one relation's scan output, in bytes.
  double row_width(int rel) const { return widths_[rel]; }
  /// Columns the relation's scan must produce (sorted, deterministic).
  const std::vector<std::string>& scan_columns(int rel) const {
    return scan_columns_[rel];
  }
  const catalog::TableStats& stats(int rel) const { return stats_[rel]; }

 private:
  std::vector<JoinEdge> edges_;
  std::vector<double> edge_sel_;
  std::vector<double> filtered_rows_;
  std::vector<double> widths_;
  std::vector<std::vector<std::string>> scan_columns_;
  std::vector<catalog::TableStats> stats_;
  mutable std::unordered_map<uint32_t, double> rows_memo_;
};

/// The differential oracle's fixed join order: left-deep hash joins,
/// relations appended in BFS order from relation 0 following spec edge
/// order — deliberately estimate-free, so it cannot share a cardinality
/// bug with the DP enumerator. Fills join_nodes/join_root (dop, pstate and
/// cost are left for the caller).
StatusOr<PhysicalPlan> CanonicalJoinPlan(const QuerySpec& spec);

}  // namespace ecodb::optimizer

#endif  // ECODB_OPTIMIZER_JOIN_ORDER_H_

// N-way join ordering: JoinGraph analysis, bitmask-DP enumeration over
// connected subgraphs, pricing of arbitrary join trees, operator
// construction, and the fixed-order differential oracle.
//
// Invariants this file maintains:
//   - ChooseJoinGraphPlan sets plan.cost by calling the SAME pricing walk
//     PricePlan dispatches to, so `PricePlan(spec, chosen)` reproduces the
//     chosen cost bit-for-bit (the self-consistency contract tests assert).
//   - The estimator feeds pricing only: every enumerated tree joins on real
//     equi-join edges and applies the remaining crossing edges as residual
//     filters, so all orders are row-equivalent regardless of estimates.
//   - Physical join operators are reused unchanged; at dop > 1 every leaf is
//     a morsel-parallel scan, and only a join whose LEFT child is such a
//     leaf probes in parallel (upper joins consume materialized children
//     serially) — which rule the serial/parallel instruction split below
//     mirrors.

#include "optimizer/join_order.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <utility>

#include "exec/filter_project.h"
#include "exec/joins.h"
#include "exec/parallel_scan.h"
#include "exec/scan.h"
#include "optimizer/planner_internal.h"

namespace ecodb::optimizer {

namespace {

using exec::ExprPtr;

/// Instructions charged per row by one residual-edge equality filter.
constexpr double kResidualFilterInstrPerRow = 4.0;

/// DP width cap: 3^12 split enumerations stay well under a millisecond
/// budget; beyond that the spec should be broken up.
constexpr int kMaxRelations = 12;

int PopCount(uint32_t x) {
  int n = 0;
  while (x != 0) {
    x &= x - 1;
    ++n;
  }
  return n;
}

}  // namespace

StatusOr<JoinGraph> JoinGraph::Analyze(const QuerySpec& spec) {
  const int n = static_cast<int>(spec.relations.size());
  if (n < 2) {
    return Status::InvalidArgument(
        "join graph needs at least two relations");
  }
  if (n > kMaxRelations) {
    return Status::InvalidArgument("join graph exceeds relation cap");
  }
  for (const TableAlternatives& rel : spec.relations) {
    if (rel.variants.empty() || rel.variants[0] == nullptr) {
      return Status::InvalidArgument("relation '" + rel.name +
                                     "' has no variants");
    }
  }
  for (const JoinEdge& e : spec.edges) {
    if (e.left_rel < 0 || e.left_rel >= n || e.right_rel < 0 ||
        e.right_rel >= n || e.left_rel == e.right_rel) {
      return Status::InvalidArgument("join edge endpoints out of range");
    }
    if (spec.relations[e.left_rel].variants[0]->schema().FindColumn(
            e.left_key) < 0 ||
        spec.relations[e.right_rel].variants[0]->schema().FindColumn(
            e.right_key) < 0) {
      return Status::NotFound("join edge key missing from relation schema");
    }
  }

  JoinGraph graph;
  graph.edges_ = spec.edges;
  graph.filtered_rows_.resize(n);
  graph.widths_.resize(n);
  graph.scan_columns_.resize(n);
  graph.stats_.resize(n);

  // Columns each relation's scan must produce: requested columns (empty =
  // all), filter inputs, incident edge keys, and any group-by / aggregate
  // inputs living in this schema. std::set keeps the order deterministic.
  std::set<std::string> agg_cols;
  for (const std::string& g : spec.group_by) agg_cols.insert(g);
  for (const exec::AggregateItem& item : spec.aggregates) {
    internal::CollectColumns(item.input, &agg_cols);
  }
  std::set<std::string> seen_everywhere;
  for (int rel = 0; rel < n; ++rel) {
    const TableAlternatives& side = spec.relations[rel];
    const catalog::Schema& schema = side.variants[0]->schema();
    std::set<std::string> needed;
    if (side.columns.empty()) {
      for (const catalog::Column& c : schema.columns()) needed.insert(c.name);
    } else {
      needed.insert(side.columns.begin(), side.columns.end());
    }
    internal::CollectColumns(side.filter, &needed);
    for (const JoinEdge& e : spec.edges) {
      if (e.left_rel == rel) needed.insert(e.left_key);
      if (e.right_rel == rel) needed.insert(e.right_key);
    }
    for (const std::string& name : agg_cols) {
      if (schema.FindColumn(name) >= 0) needed.insert(name);
    }
    std::vector<std::string>& cols = graph.scan_columns_[rel];
    for (const std::string& name : needed) {
      if (schema.FindColumn(name) < 0) continue;
      cols.push_back(name);
      // Join output columns must be nameable without JoinedSchema's "_r"
      // renames (residual filters and the differential oracle's canonical
      // projection address columns by name).
      if (!seen_everywhere.insert(name).second) {
        return Status::InvalidArgument(
            "column '" + name +
            "' appears in multiple relations; N-way join graphs require "
            "unique column names");
      }
    }
    graph.widths_[rel] = internal::RowWidthOf(*side.variants[0], cols);

    if (side.stats != nullptr) {
      graph.stats_[rel] = *side.stats;
    } else {
      ECODB_RETURN_IF_ERROR(
          side.variants[0]->AnalyzeInto(&graph.stats_[rel]));
    }
    const double sel =
        Planner::EstimateSelectivity(side.filter, schema, graph.stats_[rel]);
    graph.filtered_rows_[rel] =
        static_cast<double>(side.variants[0]->row_count()) * sel;
  }

  // Edge selectivity 1 / max(ndv_l, ndv_r): the containment assumption,
  // automatically FK-aware when the parent side's key is dense.
  graph.edge_sel_.resize(spec.edges.size());
  for (size_t i = 0; i < spec.edges.size(); ++i) {
    const JoinEdge& e = spec.edges[i];
    const int li = spec.relations[e.left_rel].variants[0]->schema().FindColumn(
        e.left_key);
    const int ri =
        spec.relations[e.right_rel].variants[0]->schema().FindColumn(
            e.right_key);
    const double ndv = std::max<double>(
        {1.0,
         static_cast<double>(graph.stats_[e.left_rel].columns[li]
                                 .distinct_values),
         static_cast<double>(graph.stats_[e.right_rel].columns[ri]
                                 .distinct_values)});
    graph.edge_sel_[i] = 1.0 / ndv;
  }

  if (!graph.Connected(graph.full_mask())) {
    return Status::InvalidArgument(
        "join graph is disconnected (cross products are not planned)");
  }
  return graph;
}

bool JoinGraph::Connected(uint32_t mask) const {
  if (mask == 0) return false;
  // Flood-fill from the lowest set bit along edges internal to `mask`.
  uint32_t reached = mask & static_cast<uint32_t>(-static_cast<int32_t>(mask));
  bool grew = true;
  while (grew && reached != mask) {
    grew = false;
    for (const JoinEdge& e : edges_) {
      const uint32_t lbit = uint32_t{1} << e.left_rel;
      const uint32_t rbit = uint32_t{1} << e.right_rel;
      if ((mask & lbit) == 0 || (mask & rbit) == 0) continue;
      const uint32_t joined = reached | lbit | rbit;
      if ((reached & (lbit | rbit)) != 0 && joined != reached) {
        reached = joined;
        grew = true;
      }
    }
  }
  return reached == mask;
}

double JoinGraph::EstimateRows(uint32_t mask) const {
  auto it = rows_memo_.find(mask);
  if (it != rows_memo_.end()) return it->second;
  double rows = 1.0;
  for (int rel = 0; rel < num_relations(); ++rel) {
    if (mask >> rel & 1) rows *= filtered_rows_[rel];
  }
  for (size_t i = 0; i < edges_.size(); ++i) {
    const JoinEdge& e = edges_[i];
    if ((mask >> e.left_rel & 1) && (mask >> e.right_rel & 1)) {
      rows *= edge_sel_[i];
    }
  }
  rows_memo_.emplace(mask, rows);
  return rows;
}

std::vector<int> JoinGraph::CrossingEdgeIndexes(uint32_t left_mask,
                                                uint32_t right_mask) const {
  std::vector<int> out;
  for (size_t i = 0; i < edges_.size(); ++i) {
    const JoinEdge& e = edges_[i];
    const bool l_in_left = left_mask >> e.left_rel & 1;
    const bool l_in_right = right_mask >> e.left_rel & 1;
    const bool r_in_left = left_mask >> e.right_rel & 1;
    const bool r_in_right = right_mask >> e.right_rel & 1;
    if ((l_in_left && r_in_right) || (l_in_right && r_in_left)) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

namespace {

double MaskWidth(const JoinGraph& graph, uint32_t mask) {
  double width = 0.0;
  for (int rel = 0; rel < graph.num_relations(); ++rel) {
    if (mask >> rel & 1) width += graph.row_width(rel);
  }
  return width;
}

/// Scan + pushed-down filter demand of one relation's leaf. Identical
/// arithmetic to the 2-way path's side_demand (table-scan branch).
ResourceEstimate LeafDemand(const QuerySpec& spec, const JoinGraph& graph,
                            int rel, const exec::CostConstants& k) {
  const TableAlternatives& side = spec.relations[rel];
  const storage::TableStorage& t = *side.variants[0];
  ResourceEstimate d = internal::PrunedScanDemand(
      t, internal::ToIndexes(t.schema(), graph.scan_columns(rel)),
      side.filter, k.decode_scale);
  if (side.filter != nullptr) {
    d.cpu_instructions += side.filter->InstructionsPerRow() *
                          static_cast<double>(t.row_count());
  }
  return d;
}

/// Adds one join node's demand on top of its children's. `left_is_leaf`
/// decides probe attribution: a leaf left child is a morsel source at
/// dop > 1, so its probe parallelizes; joins above joins probe serially.
/// Returns the primary crossing edge index via `primary` (first by spec
/// order — the same rule tree construction uses).
Status AddJoinDemand(const JoinGraph& graph, JoinAlgorithm algo,
                     uint32_t lmask, uint32_t rmask, bool left_is_leaf,
                     const exec::CostConstants& k, const CostModel& model,
                     ResourceEstimate* demand, double* resident_bytes,
                     int* primary) {
  const std::vector<int> crossing = graph.CrossingEdgeIndexes(lmask, rmask);
  if (crossing.empty()) {
    return Status::InvalidArgument(
        "join node has no crossing equi-join edge (cross product)");
  }
  *primary = crossing[0];
  const double lrows = graph.EstimateRows(lmask);
  const double rrows = graph.EstimateRows(rmask);
  const double rows_primary =
      lrows * rrows * graph.edge_selectivity(crossing[0]);
  switch (algo) {
    case JoinAlgorithm::kHash: {
      const double build_bytes = rrows * (MaskWidth(graph, rmask) + 32.0);
      demand->serial_cpu_instructions += k.hash_build_per_row * rrows;
      const double probe = k.hash_probe_per_row * lrows +
                           k.output_per_row * rows_primary;
      if (left_is_leaf) {
        demand->cpu_instructions += probe;
      } else {
        demand->serial_cpu_instructions += probe;
      }
      demand->dram_traffic_bytes += static_cast<uint64_t>(build_bytes);
      *resident_bytes += build_bytes;
      break;
    }
    case JoinAlgorithm::kMerge: {
      demand->Merge(model.SortDemand(lrows, 1));
      demand->Merge(model.SortDemand(rrows, 1));
      demand->serial_cpu_instructions +=
          2.0 * (lrows + rrows) + k.output_per_row * rows_primary;
      break;
    }
    case JoinAlgorithm::kNestedLoop: {
      demand->serial_cpu_instructions +=
          k.nl_join_inner_per_pair * lrows * rrows +
          k.output_per_row * rows_primary;
      break;
    }
    case JoinAlgorithm::kHashSwapped:
      // The enumerator prices both orientations of every split instead.
      return Status::InvalidArgument(
          "kHashSwapped is not valid in N-way join trees");
  }
  // Residual crossing edges run as stacked equality filters over the
  // primary join's output (each one thins the stream for the next).
  double rows = rows_primary;
  for (size_t j = 1; j < crossing.size(); ++j) {
    demand->serial_cpu_instructions += kResidualFilterInstrPerRow * rows;
    rows *= graph.edge_selectivity(crossing[j]);
  }
  return Status::OK();
}

/// Two-phase pricing: residency energy needs the plan duration, so price
/// once for seconds, set resident-byte-seconds, and price again. Works on
/// a copy so the caller's accumulating demand stays duration-free.
PlanCost PriceWithResidency(const CostModel& model, ResourceEstimate demand,
                            double resident_bytes, int dop, int pstate) {
  PlanCost cost = model.Price(demand, dop, pstate);
  if (resident_bytes > 0) {
    demand.resident_byte_seconds = resident_bytes * cost.seconds;
    cost = model.Price(demand, dop, pstate);
  }
  return cost;
}

/// Recursive pricing walk over an explicit join tree. Accumulates demand
/// and resident bytes bottom-up with the same arithmetic (and the same
/// merge order: left subtree, then right subtree, then this node's join
/// terms) the DP enumerator uses, so DP-chosen and hand-built trees price
/// through one code path.
StatusOr<uint32_t> WalkJoinTree(const QuerySpec& spec, const JoinGraph& graph,
                                const std::vector<PlanJoinNode>& nodes,
                                int index, const exec::CostConstants& k,
                                const CostModel& model,
                                ResourceEstimate* demand,
                                double* resident_bytes) {
  if (index < 0 || index >= static_cast<int>(nodes.size())) {
    return Status::InvalidArgument("join tree node index out of range");
  }
  const PlanJoinNode& node = nodes[index];
  if (node.relation >= 0) {
    if (node.relation >= graph.num_relations()) {
      return Status::InvalidArgument("join tree leaf relation out of range");
    }
    demand->Merge(LeafDemand(spec, graph, node.relation, k));
    return uint32_t{1} << node.relation;
  }
  ECODB_ASSIGN_OR_RETURN(
      const uint32_t lmask,
      WalkJoinTree(spec, graph, nodes, node.left, k, model, demand,
                   resident_bytes));
  ECODB_ASSIGN_OR_RETURN(
      const uint32_t rmask,
      WalkJoinTree(spec, graph, nodes, node.right, k, model, demand,
                   resident_bytes));
  if ((lmask & rmask) != 0) {
    return Status::InvalidArgument("join tree repeats a relation");
  }
  const bool left_is_leaf = nodes[node.left].relation >= 0;
  int primary = -1;
  ECODB_RETURN_IF_ERROR(AddJoinDemand(graph, node.algo, lmask, rmask,
                                      left_is_leaf, k, model, demand,
                                      resident_bytes, &primary));
  return lmask | rmask;
}

/// Estimated output cardinality of the tail before the LIMIT clamp:
/// the root join's rows, reduced to the group count when aggregating.
/// Mirrors the 2-way EstimateCardinalities group clamp, searching every
/// relation's schema for each group column.
double TailOutputRows(const QuerySpec& spec, const JoinGraph& graph,
                      double root_rows) {
  if (spec.aggregates.empty()) return root_rows;
  double groups = 1.0;
  for (const std::string& g : spec.group_by) {
    double ndv = 16.0;
    for (int rel = 0; rel < graph.num_relations(); ++rel) {
      const catalog::Schema& schema =
          spec.relations[rel].variants[0]->schema();
      const int i = schema.FindColumn(g);
      if (i >= 0 &&
          i < static_cast<int>(graph.stats(rel).columns.size())) {
        ndv = std::max<double>(
            1.0, static_cast<double>(
                     graph.stats(rel).columns[i].distinct_values));
        break;
      }
    }
    groups *= ndv;
  }
  return std::min(root_rows, spec.group_by.empty() ? 1.0 : groups);
}

/// The one pricing routine for N-way plans: tree walk + tail + residency.
StatusOr<PlanCost> PriceGraphPlan(const QuerySpec& spec,
                                  const JoinGraph& graph,
                                  const PhysicalPlan& plan,
                                  const CostModel& model) {
  if (plan.join_root < 0 || plan.join_nodes.empty()) {
    return Status::InvalidArgument("N-way plan has no join tree");
  }
  const exec::CostConstants& k = model.params().costs;
  ResourceEstimate demand;
  double resident_bytes = 0.0;
  ECODB_ASSIGN_OR_RETURN(
      const uint32_t mask,
      WalkJoinTree(spec, graph, plan.join_nodes, plan.join_root, k, model,
                   &demand, &resident_bytes));
  if (mask != graph.full_mask()) {
    return Status::InvalidArgument("join tree does not cover all relations");
  }
  const double root_rows = graph.EstimateRows(mask);
  internal::PriceTail(spec, plan, model, root_rows,
                      TailOutputRows(spec, graph, root_rows),
                      MaskWidth(graph, mask), &demand);
  return PriceWithResidency(model, std::move(demand), resident_bytes,
                            plan.dop, plan.pstate);
}

/// One DP table entry: the best-priced join tree covering `mask`.
struct SubPlan {
  bool valid = false;
  int node = -1;  // arena index of this subtree's root
  ResourceEstimate demand;
  double resident_bytes = 0.0;
  double scalar = std::numeric_limits<double>::infinity();
};

/// Appends a join node for the (lmask, rmask) split to the arena: primary
/// edge = first crossing edge by spec order, oriented so left_key names a
/// left-subtree column; the rest become residual filter edges.
int EmitJoinNode(const JoinGraph& graph, std::vector<PlanJoinNode>* arena,
                 int left_node, int right_node, JoinAlgorithm algo,
                 uint32_t lmask, uint32_t rmask) {
  const std::vector<int> crossing = graph.CrossingEdgeIndexes(lmask, rmask);
  PlanJoinNode node;
  node.left = left_node;
  node.right = right_node;
  node.algo = algo;
  const JoinEdge& p = graph.edge(crossing[0]);
  const bool p_left_in_lmask = lmask >> p.left_rel & 1;
  node.left_key = p_left_in_lmask ? p.left_key : p.right_key;
  node.right_key = p_left_in_lmask ? p.right_key : p.left_key;
  for (size_t j = 1; j < crossing.size(); ++j) {
    node.residual_edges.push_back(graph.edge(crossing[j]));
  }
  const uint32_t mask = lmask | rmask;
  node.est_rows = graph.EstimateRows(mask);
  node.est_bytes = node.est_rows * MaskWidth(graph, mask);
  arena->push_back(std::move(node));
  return static_cast<int>(arena->size()) - 1;
}

/// Copies the subtree rooted at `index` from the DP arena (which holds one
/// node per explored mask, chosen or not) into `out`, returning the new
/// root index. Children precede parents, so indexes stay valid.
int CompactTree(const std::vector<PlanJoinNode>& arena, int index,
                std::vector<PlanJoinNode>* out) {
  const PlanJoinNode& node = arena[index];
  PlanJoinNode copy = node;
  if (node.relation < 0) {
    copy.left = CompactTree(arena, node.left, out);
    copy.right = CompactTree(arena, node.right, out);
  }
  out->push_back(std::move(copy));
  return static_cast<int>(out->size()) - 1;
}

double SumIntermediateBytes(const std::vector<PlanJoinNode>& nodes,
                            int root) {
  double bytes = 0.0;
  for (int i = 0; i < static_cast<int>(nodes.size()); ++i) {
    if (nodes[i].relation < 0 && i != root) bytes += nodes[i].est_bytes;
  }
  return bytes;
}

}  // namespace

StatusOr<PhysicalPlan> Planner::ChooseJoinGraphPlan(
    const QuerySpec& spec, const Objective& objective) const {
  ECODB_ASSIGN_OR_RETURN(const JoinGraph graph, JoinGraph::Analyze(spec));
  const exec::CostConstants& k = model_->params().costs;
  const int n = graph.num_relations();
  const uint32_t full = graph.full_mask();

  std::vector<JoinAlgorithm> algos;
  if (options_.enumerate_join_algorithms) {
    algos = {JoinAlgorithm::kHash, JoinAlgorithm::kMerge,
             JoinAlgorithm::kNestedLoop};
  } else {
    algos = {JoinAlgorithm::kHash};
  }
  const int num_pstates =
      options_.enumerate_pstates ? model_->platform()->cpu().num_pstates()
                                 : 1;
  std::vector<bool> topk_choices = {false};
  if (!spec.order_by.empty() && spec.limit.has_value()) {
    topk_choices.push_back(true);
  }

  std::optional<PhysicalPlan> best;
  for (int dop : options_.dops) {
    for (int pstate = 0; pstate < num_pstates; ++pstate) {
      // ---- DP over connected subgraphs at this (dop, pstate) ----
      std::vector<PlanJoinNode> arena;
      std::vector<SubPlan> subs(uint64_t{1} << n);
      for (int rel = 0; rel < n; ++rel) {
        SubPlan& leaf = subs[uint32_t{1} << rel];
        PlanJoinNode node;
        node.relation = rel;
        node.est_rows = graph.filtered_rows(rel);
        node.est_bytes = node.est_rows * graph.row_width(rel);
        arena.push_back(std::move(node));
        leaf.node = static_cast<int>(arena.size()) - 1;
        leaf.demand = LeafDemand(spec, graph, rel, k);
        leaf.scalar =
            PriceWithResidency(*model_, leaf.demand, 0.0, dop, pstate)
                .Scalarize(objective);
        leaf.valid = true;
      }
      // Ascending mask order is a valid DP order: every proper submask is
      // numerically smaller. The submask loop enumerates ordered (l, r)
      // pairs, so both hash-build orientations and bushy shapes are priced.
      for (uint32_t mask = 1; mask <= full; ++mask) {
        if (PopCount(mask) < 2) continue;
        SubPlan& entry = subs[mask];
        struct Best {
          uint32_t lmask = 0;
          JoinAlgorithm algo = JoinAlgorithm::kHash;
          ResourceEstimate demand;
          double resident_bytes = 0.0;
          double scalar = std::numeric_limits<double>::infinity();
        };
        std::optional<Best> winner;
        for (uint32_t l = (mask - 1) & mask; l != 0; l = (l - 1) & mask) {
          const uint32_t r = mask ^ l;
          const SubPlan& ls = subs[l];
          const SubPlan& rs = subs[r];
          if (!ls.valid || !rs.valid) continue;
          if (graph.CrossingEdgeIndexes(l, r).empty()) continue;
          const bool left_is_leaf = PopCount(l) == 1;
          for (JoinAlgorithm algo : algos) {
            ResourceEstimate demand = ls.demand;
            demand.Merge(rs.demand);
            double resident = ls.resident_bytes + rs.resident_bytes;
            int primary = -1;
            const Status st =
                AddJoinDemand(graph, algo, l, r, left_is_leaf, k, *model_,
                              &demand, &resident, &primary);
            if (!st.ok()) continue;
            const double scalar =
                PriceWithResidency(*model_, demand, resident, dop, pstate)
                    .Scalarize(objective);
            if (!winner.has_value() || scalar < winner->scalar) {
              winner = Best{l, algo, std::move(demand), resident, scalar};
            }
          }
        }
        if (!winner.has_value()) continue;
        entry.node =
            EmitJoinNode(graph, &arena, subs[winner->lmask].node,
                         subs[mask ^ winner->lmask].node, winner->algo,
                         winner->lmask, mask ^ winner->lmask);
        entry.demand = std::move(winner->demand);
        entry.resident_bytes = winner->resident_bytes;
        entry.scalar = winner->scalar;
        entry.valid = true;
      }
      if (!subs[full].valid) {
        return Status::Internal("join DP found no plan for a connected graph");
      }

      for (bool use_topk : topk_choices) {
        PhysicalPlan plan;
        plan.dop = dop;
        plan.pstate = pstate;
        plan.use_topk = use_topk;
        plan.join_root =
            CompactTree(arena, subs[full].node, &plan.join_nodes);
        plan.est_intermediate_bytes =
            SumIntermediateBytes(plan.join_nodes, plan.join_root);
        double output_rows =
            TailOutputRows(spec, graph, graph.EstimateRows(full));
        if (spec.limit.has_value()) {
          output_rows =
              std::min(output_rows, static_cast<double>(*spec.limit));
        }
        plan.output_rows = output_rows;
        ECODB_ASSIGN_OR_RETURN(plan.cost,
                               PriceGraphPlan(spec, graph, plan, *model_));
        if (!best.has_value() || plan.cost.Scalarize(objective) <
                                     best->cost.Scalarize(objective)) {
          best = std::move(plan);
        }
      }
    }
  }
  if (!best.has_value()) return Status::Internal("no N-way plan enumerated");
  return *best;
}

StatusOr<PlanCost> Planner::PriceJoinGraphPlan(const QuerySpec& spec,
                                               const PhysicalPlan& plan) const {
  ECODB_ASSIGN_OR_RETURN(const JoinGraph graph, JoinGraph::Analyze(spec));
  return PriceGraphPlan(spec, graph, plan, *model_);
}

namespace {

/// Recursive operator construction for one join-tree node.
StatusOr<exec::OperatorPtr> BuildJoinNode(const QuerySpec& spec,
                                          const PhysicalPlan& plan,
                                          int index) {
  using exec::OperatorPtr;
  if (index < 0 || index >= static_cast<int>(plan.join_nodes.size())) {
    return Status::InvalidArgument("join tree node index out of range");
  }
  const PlanJoinNode& node = plan.join_nodes[index];
  if (node.relation >= 0) {
    if (node.relation >= static_cast<int>(spec.relations.size())) {
      return Status::InvalidArgument("join tree leaf relation out of range");
    }
    const TableAlternatives& side = spec.relations[node.relation];
    const storage::TableStorage& t = *side.variants[0];
    // Same columns the estimator assumed (JoinGraph::Analyze enforces they
    // are computable from the spec alone, so recompute here).
    std::set<std::string> agg_cols;
    for (const std::string& g : spec.group_by) agg_cols.insert(g);
    for (const exec::AggregateItem& item : spec.aggregates) {
      internal::CollectColumns(item.input, &agg_cols);
    }
    std::set<std::string> needed;
    if (side.columns.empty()) {
      for (const catalog::Column& c : t.schema().columns()) {
        needed.insert(c.name);
      }
    } else {
      needed.insert(side.columns.begin(), side.columns.end());
    }
    internal::CollectColumns(side.filter, &needed);
    for (const JoinEdge& e : spec.edges) {
      if (e.left_rel == node.relation) needed.insert(e.left_key);
      if (e.right_rel == node.relation) needed.insert(e.right_key);
    }
    for (const std::string& name : agg_cols) {
      if (t.schema().FindColumn(name) >= 0) needed.insert(name);
    }
    std::vector<std::string> cols;
    for (const std::string& name : needed) {
      if (t.schema().FindColumn(name) >= 0) cols.push_back(name);
    }
    if (plan.dop > 1) {
      // Morsel-parallel scan with the exact filter fused in; also the
      // morsel source that lets a directly-attached hash join probe in
      // parallel.
      return OperatorPtr(std::make_unique<exec::ParallelTableScanOp>(
          &t, cols, side.filter, side.filter));
    }
    OperatorPtr scan =
        std::make_unique<exec::TableScanOp>(&t, cols, side.filter);
    if (side.filter != nullptr) {
      scan = std::make_unique<exec::FilterOp>(std::move(scan), side.filter);
    }
    return scan;
  }

  ECODB_ASSIGN_OR_RETURN(OperatorPtr left,
                         BuildJoinNode(spec, plan, node.left));
  ECODB_ASSIGN_OR_RETURN(OperatorPtr right,
                         BuildJoinNode(spec, plan, node.right));
  OperatorPtr joined;
  switch (node.algo) {
    case JoinAlgorithm::kHash:
      joined = std::make_unique<exec::HashJoinOp>(
          std::move(left), std::move(right), node.left_key, node.right_key);
      break;
    case JoinAlgorithm::kMerge:
      joined = std::make_unique<exec::MergeJoinOp>(
          std::move(left), std::move(right), node.left_key, node.right_key);
      break;
    case JoinAlgorithm::kNestedLoop:
      // Column names are unique across relations (Analyze enforces it), so
      // the joined schema never renames and Col(right_key) resolves.
      joined = std::make_unique<exec::NestedLoopJoinOp>(
          std::move(left), std::move(right),
          exec::Col(node.left_key) == exec::Col(node.right_key));
      break;
    case JoinAlgorithm::kHashSwapped:
      return Status::InvalidArgument(
          "kHashSwapped is not valid in N-way join trees");
  }
  for (const JoinEdge& e : node.residual_edges) {
    joined = std::make_unique<exec::FilterOp>(
        std::move(joined), exec::Col(e.left_key) == exec::Col(e.right_key));
  }
  return joined;
}

}  // namespace

StatusOr<exec::OperatorPtr> Planner::BuildJoinGraphOperator(
    const QuerySpec& spec, const PhysicalPlan& plan) const {
  if (plan.join_root < 0 || plan.join_nodes.empty()) {
    return Status::InvalidArgument("N-way plan has no join tree");
  }
  ECODB_ASSIGN_OR_RETURN(exec::OperatorPtr root,
                         BuildJoinNode(spec, plan, plan.join_root));
  return internal::FinishOperatorTree(spec, plan, std::move(root));
}

StatusOr<PhysicalPlan> CanonicalJoinPlan(const QuerySpec& spec) {
  ECODB_ASSIGN_OR_RETURN(const JoinGraph graph, JoinGraph::Analyze(spec));
  PhysicalPlan plan;
  std::vector<PlanJoinNode>& nodes = plan.join_nodes;

  PlanJoinNode first;
  first.relation = 0;
  nodes.push_back(first);
  int root = 0;
  uint32_t mask = 1;
  while (mask != graph.full_mask()) {
    // Next relation: the far endpoint of the first spec-order edge leaving
    // the current set. Purely structural — no estimates involved.
    int next_rel = -1;
    for (int i = 0; i < graph.num_edges() && next_rel < 0; ++i) {
      const JoinEdge& e = graph.edge(i);
      const bool lin = mask >> e.left_rel & 1;
      const bool rin = mask >> e.right_rel & 1;
      if (lin != rin) next_rel = lin ? e.right_rel : e.left_rel;
    }
    if (next_rel < 0) {
      return Status::Internal("canonical plan failed to grow a connected set");
    }
    PlanJoinNode leaf;
    leaf.relation = next_rel;
    nodes.push_back(leaf);
    const int leaf_index = static_cast<int>(nodes.size()) - 1;

    const std::vector<int> crossing =
        graph.CrossingEdgeIndexes(mask, uint32_t{1} << next_rel);
    PlanJoinNode join;
    join.left = root;
    join.right = leaf_index;
    join.algo = JoinAlgorithm::kHash;
    const JoinEdge& p = graph.edge(crossing[0]);
    const bool p_left_in_mask = mask >> p.left_rel & 1;
    join.left_key = p_left_in_mask ? p.left_key : p.right_key;
    join.right_key = p_left_in_mask ? p.right_key : p.left_key;
    for (size_t j = 1; j < crossing.size(); ++j) {
      join.residual_edges.push_back(graph.edge(crossing[j]));
    }
    nodes.push_back(std::move(join));
    root = static_cast<int>(nodes.size()) - 1;
    mask |= uint32_t{1} << next_rel;
  }
  plan.join_root = root;
  return plan;
}

}  // namespace ecodb::optimizer

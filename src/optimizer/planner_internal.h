// Planner internals shared between the classic 2-way path (planner.cc) and
// the N-way join-graph path (join_order.cc). Both paths must price and build
// the post-join tail (aggregate / sort / top-k / limit) with bit-identical
// arithmetic, so the tail lives here exactly once.

#ifndef ECODB_OPTIMIZER_PLANNER_INTERNAL_H_
#define ECODB_OPTIMIZER_PLANNER_INTERNAL_H_

#include <set>
#include <string>
#include <vector>

#include "optimizer/planner.h"

namespace ecodb::optimizer::internal {

/// Collects every column name referenced by `expr` into `out`.
void CollectColumns(const exec::ExprPtr& expr, std::set<std::string>* out);

/// Schema positions of `names` (missing names skipped).
std::vector<int> ToIndexes(const catalog::Schema& schema,
                           const std::vector<std::string>& names);

/// Materialized byte width of one row projected to `columns`.
double RowWidthOf(const storage::TableStorage& table,
                  const std::vector<std::string>& columns);

/// Zone-pruned scan demand, built from the exact helpers TableScanOp and
/// ParallelTableScanOp charge with — estimator and executor cannot drift.
ResourceEstimate PrunedScanDemand(const storage::TableStorage& table,
                                  const std::vector<int>& col_indexes,
                                  const exec::ExprPtr& filter,
                                  double decode_scale);

/// Prices the post-join tail of `spec` into `demand`: aggregate update +
/// emission, then sort / fused top-k with spill. `in_rows` is the tail's
/// input cardinality (the join output), `output_rows` its estimated final
/// cardinality before the LIMIT clamp, and `input_width` the materialized
/// byte width of one pre-aggregation row (used for sort sizing when no
/// aggregate reshapes the rows).
void PriceTail(const QuerySpec& spec, const PhysicalPlan& plan,
               const CostModel& model, double in_rows, double output_rows,
               double input_width, ResourceEstimate* demand);

/// Wraps `root` with the operators realizing the post-join tail (aggregate,
/// sort or fused top-k, limit), serial or morsel-parallel per plan.dop.
exec::OperatorPtr FinishOperatorTree(const QuerySpec& spec,
                                     const PhysicalPlan& plan,
                                     exec::OperatorPtr root);

}  // namespace ecodb::optimizer::internal

#endif  // ECODB_OPTIMIZER_PLANNER_INTERNAL_H_

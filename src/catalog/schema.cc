#include "catalog/schema.h"

namespace ecodb::catalog {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
    case DataType::kDate:
      return "date";
  }
  return "unknown";
}

int TypeWidthBytes(DataType type, int avg_string_len) {
  switch (type) {
    case DataType::kInt64:
    case DataType::kDouble:
    case DataType::kDate:
      return 8;
    case DataType::kString:
      return avg_string_len;
  }
  return 8;
}

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

int Schema::FindColumn(const std::string& name) const {
  for (int i = 0; i < num_columns(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return -1;
}

int Schema::RowWidthBytes() const {
  int width = 0;
  for (const Column& c : columns_) {
    width += TypeWidthBytes(c.type, c.avg_width);
  }
  return width;
}

StatusOr<Schema> Schema::Project(const std::vector<std::string>& names) const {
  std::vector<Column> cols;
  cols.reserve(names.size());
  for (const std::string& n : names) {
    const int idx = FindColumn(n);
    if (idx < 0) return Status::NotFound("no column named '" + n + "'");
    cols.push_back(columns_[idx]);
  }
  return Schema(std::move(cols));
}

Schema Schema::ProjectIndexes(const std::vector<int>& indexes) const {
  std::vector<Column> cols;
  cols.reserve(indexes.size());
  for (int i : indexes) cols.push_back(columns_[i]);
  return Schema(std::move(cols));
}

}  // namespace ecodb::catalog

// Catalog: table registry and optimizer statistics.
//
// The statistics here feed the energy-aware cost model (Section 4.1 of the
// paper: "To improve energy efficiency, query optimizers will need power
// models to estimate energy costs" — and they still need cardinalities).

#ifndef ECODB_CATALOG_CATALOG_H_
#define ECODB_CATALOG_CATALOG_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "util/status.h"

namespace ecodb::catalog {

/// Per-column statistics for selectivity estimation.
struct ColumnStats {
  int64_t min_i64 = 0;
  int64_t max_i64 = 0;
  double min_f64 = 0.0;
  double max_f64 = 0.0;
  uint64_t distinct_values = 0;
  uint64_t null_count = 0;
};

struct TableStats {
  uint64_t row_count = 0;
  std::vector<ColumnStats> columns;  // parallel to the schema
};

using TableId = uint32_t;

/// A declared referential link: `column` of this table references
/// `parent_column` of `parent_table` (by name; tables are registered in
/// dependency order). The join-order estimator uses these to treat key/
/// foreign-key joins as non-expanding: |child >< parent| = |child|.
struct ForeignKey {
  std::string column;
  std::string parent_table;
  std::string parent_column;
};

struct TableEntry {
  TableId id = 0;
  std::string name;
  Schema schema;
  TableStats stats;
  std::vector<ForeignKey> foreign_keys;
};

/// Name -> table registry. Thread-safe: lookups take a shared lock, DDL and
/// stats updates take an exclusive lock. TableEntry pointers returned by
/// GetTable stay valid until that table is dropped; callers must not hold
/// them across a concurrent DropTable of the same table.
class Catalog {
 public:
  /// Registers a table; AlreadyExists if the name is taken.
  StatusOr<TableId> CreateTable(const std::string& name, Schema schema);

  StatusOr<const TableEntry*> GetTable(const std::string& name) const;
  StatusOr<const TableEntry*> GetTable(TableId id) const;

  Status DropTable(const std::string& name);

  /// Replaces a table's statistics (set by TableStorage::AnalyzeInto).
  Status UpdateStats(TableId id, TableStats stats);

  /// Declares a foreign key on table `id`. Both endpoints must exist (the
  /// parent table by name, both columns in their schemas).
  Status AddForeignKey(TableId id, ForeignKey fk);

  std::vector<std::string> TableNames() const;
  size_t size() const {
    std::shared_lock lock(mu_);
    return by_id_.size();
  }

 private:
  StatusOr<const TableEntry*> GetTableLocked(TableId id) const;

  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, TableId> by_name_;
  std::unordered_map<TableId, TableEntry> by_id_;
  TableId next_id_ = 1;
};

}  // namespace ecodb::catalog

#endif  // ECODB_CATALOG_CATALOG_H_

#include "catalog/catalog.h"

#include <algorithm>
#include <mutex>

namespace ecodb::catalog {

StatusOr<TableId> Catalog::CreateTable(const std::string& name,
                                       Schema schema) {
  std::unique_lock lock(mu_);
  if (by_name_.count(name)) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  const TableId id = next_id_++;
  TableEntry entry;
  entry.id = id;
  entry.name = name;
  entry.schema = std::move(schema);
  entry.stats.columns.resize(entry.schema.num_columns());
  by_name_.emplace(name, id);
  by_id_.emplace(id, std::move(entry));
  return id;
}

StatusOr<const TableEntry*> Catalog::GetTable(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return GetTableLocked(it->second);
}

StatusOr<const TableEntry*> Catalog::GetTable(TableId id) const {
  std::shared_lock lock(mu_);
  return GetTableLocked(id);
}

StatusOr<const TableEntry*> Catalog::GetTableLocked(TableId id) const {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return Status::NotFound("no such table id");
  return &it->second;
}

Status Catalog::DropTable(const std::string& name) {
  std::unique_lock lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  by_id_.erase(it->second);
  by_name_.erase(it);
  return Status::OK();
}

Status Catalog::UpdateStats(TableId id, TableStats stats) {
  std::unique_lock lock(mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return Status::NotFound("no such table id");
  it->second.stats = std::move(stats);
  return Status::OK();
}

Status Catalog::AddForeignKey(TableId id, ForeignKey fk) {
  std::unique_lock lock(mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return Status::NotFound("no such table id");
  if (it->second.schema.FindColumn(fk.column) < 0) {
    return Status::InvalidArgument("foreign-key column '" + fk.column +
                                   "' missing from '" + it->second.name + "'");
  }
  auto parent_it = by_name_.find(fk.parent_table);
  if (parent_it == by_name_.end()) {
    return Status::NotFound("foreign-key parent table '" + fk.parent_table +
                            "' not registered");
  }
  const TableEntry& parent = by_id_.at(parent_it->second);
  if (parent.schema.FindColumn(fk.parent_column) < 0) {
    return Status::InvalidArgument("foreign-key parent column '" +
                                   fk.parent_column + "' missing from '" +
                                   fk.parent_table + "'");
  }
  it->second.foreign_keys.push_back(std::move(fk));
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> names;
  names.reserve(by_name_.size());
  for (const auto& [name, id] : by_name_) names.push_back(name);  // NOLINT-ECODB(EC8): sorted before return
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace ecodb::catalog

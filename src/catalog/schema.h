// Relational schema: data types, columns, and table definitions.

#ifndef ECODB_CATALOG_SCHEMA_H_
#define ECODB_CATALOG_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace ecodb::catalog {

/// Column data types. kDate is stored as int64 days-since-epoch.
enum class DataType {
  kInt64,
  kDouble,
  kString,
  kDate,
};

const char* DataTypeName(DataType type);

/// Whether the type's values are stored in the int64 lane of a column.
inline bool IsIntegerLike(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDate;
}

/// Nominal width in bytes for I/O volume accounting.
int TypeWidthBytes(DataType type, int avg_string_len = 16);

struct Column {
  std::string name;
  DataType type = DataType::kInt64;
  /// Average payload width for strings (bytes); ignored otherwise.
  int avg_width = 16;

  bool operator==(const Column&) const = default;
};

/// Ordered column list with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const Column& column(int i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name`, or -1.
  int FindColumn(const std::string& name) const;

  /// Sum of column widths: bytes per row in an uncompressed row layout.
  int RowWidthBytes() const;

  /// Projection of the named columns; NotFound if any is missing.
  StatusOr<Schema> Project(const std::vector<std::string>& names) const;

  /// Projection by index.
  Schema ProjectIndexes(const std::vector<int>& indexes) const;

  bool operator==(const Schema&) const = default;

 private:
  std::vector<Column> columns_;
};

}  // namespace ecodb::catalog

#endif  // ECODB_CATALOG_SCHEMA_H_

#include "core/ecodb.h"

#include "exec/scan.h"
#include "storage/hdd.h"

namespace ecodb::core {

EcoDb::EcoDb(const DbConfig& config) : config_(config) {}

StatusOr<std::unique_ptr<EcoDb>> EcoDb::Open(const DbConfig& config) {
  auto db = std::unique_ptr<EcoDb>(new EcoDb(config));

  switch (config.preset) {
    case PlatformPreset::kDl785:
      db->platform_ = power::MakeDl785Platform();
      break;
    case PlatformPreset::kFlashScan:
      db->platform_ = power::MakeFlashScanPlatform();
      break;
    case PlatformPreset::kProportional:
      db->platform_ = power::MakeProportionalPlatform();
      break;
  }
  power::EnergyMeter* meter = db->platform_->meter();

  if (config.fault_plan.active()) {
    db->fault_injector_ =
        std::make_unique<storage::FaultInjector>(config.fault_plan);
  }
  // Wraps `device` in a FaultInjectedDevice when a fault plan is active;
  // otherwise passes it through unchanged.
  const auto with_faults = [&db, meter](
                               std::unique_ptr<storage::StorageDevice> device)
      -> std::unique_ptr<storage::StorageDevice> {
    if (db->fault_injector_ == nullptr) return device;
    return std::make_unique<storage::FaultInjectedDevice>(
        std::move(device), db->fault_injector_.get(), meter);
  };

  if (config.hdd_count > 0) {
    std::vector<std::unique_ptr<storage::StorageDevice>> members;
    members.reserve(config.hdd_count);
    for (int i = 0; i < config.hdd_count; ++i) {
      members.push_back(with_faults(std::make_unique<storage::HddDevice>(
          "hdd" + std::to_string(i), config.hdd_spec, meter)));
    }
    storage::ArraySpec array_spec = config.array_spec;
    array_spec.level = config.raid_level;
    ECODB_ASSIGN_OR_RETURN(
        std::unique_ptr<storage::DiskArray> array,
        storage::DiskArray::Create("array0", array_spec, std::move(members),
                                   meter));
    db->raid_array_ = array.get();
    db->primary_device_ = array.get();
    db->devices_.push_back(std::move(array));
    const int trays = (config.hdd_count +
                       db->platform_->chassis().disks_per_tray - 1) /
                      db->platform_->chassis().disks_per_tray;
    db->platform_->SetActiveTraysAt(0.0, trays);
  }
  for (int i = 0; i < config.ssd_count; ++i) {
    auto ssd = with_faults(std::make_unique<storage::SsdDevice>(
        "ssd" + std::to_string(i), config.ssd_spec, meter));
    if (db->primary_device_ == nullptr) db->primary_device_ = ssd.get();
    db->devices_.push_back(std::move(ssd));
  }
  if (db->primary_device_ == nullptr) {
    return Status::InvalidArgument("configure at least one storage device");
  }

  db->cost_model_ = std::make_unique<optimizer::CostModel>(
      db->platform_.get(), config.cost_params);
  optimizer::PlannerOptions planner_options = config.planner_options;
  if (config.derive_dop_ladder) {
    planner_options.dops = optimizer::PlatformDopLadder(*db->platform_);
  }
  db->planner_ = std::make_unique<optimizer::Planner>(db->cost_model_.get(),
                                                      planner_options);
  return db;
}

Status EcoDb::CreateTable(const std::string& name, catalog::Schema schema) {
  return CreateTable(name, std::move(schema), config_.default_layout,
                     primary_device_);
}

Status EcoDb::CreateTable(const std::string& name, catalog::Schema schema,
                          storage::TableLayout layout,
                          storage::StorageDevice* device) {
  ECODB_ASSIGN_OR_RETURN(catalog::TableId id,
                         catalog_.CreateTable(name, schema));
  tables_[name] = std::make_unique<storage::TableStorage>(
      id, std::move(schema), layout, device);
  return Status::OK();
}

Status EcoDb::Load(const std::string& table,
                   const std::vector<storage::ColumnData>& columns) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no table " + table);
  ECODB_RETURN_IF_ERROR(it->second->Append(columns));
  return Analyze(table);
}

Status EcoDb::SetCompression(const std::string& table,
                             const std::string& column,
                             storage::CompressionKind kind) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no table " + table);
  return it->second->SetCompression(column, kind);
}

Status EcoDb::CloneWithCompression(
    const std::string& table, const std::string& variant_name,
    const std::map<std::string, storage::CompressionKind>& kinds) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no table " + table);
  const storage::TableStorage& src = *it->second;

  ECODB_RETURN_IF_ERROR(CreateTable(variant_name, src.schema(), src.layout(),
                                    src.device()));
  storage::TableStorage* clone = tables_[variant_name].get();
  std::vector<storage::ColumnData> columns;
  columns.reserve(src.schema().num_columns());
  for (int i = 0; i < src.schema().num_columns(); ++i) {
    columns.push_back(src.RawColumn(i));
  }
  ECODB_RETURN_IF_ERROR(clone->Append(columns));
  for (const auto& [column, kind] : kinds) {
    ECODB_RETURN_IF_ERROR(clone->SetCompression(column, kind));
  }
  return Analyze(variant_name);
}

Status EcoDb::Analyze(const std::string& table) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no table " + table);
  catalog::TableStats stats;
  ECODB_RETURN_IF_ERROR(it->second->AnalyzeInto(&stats));
  return catalog_.UpdateStats(it->second->id(), std::move(stats));
}

StatusOr<storage::BTreeIndex*> EcoDb::CreateIndex(const std::string& table,
                                                  const std::string& column) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no table " + table);
  const storage::TableStorage& t = *it->second;
  const int col = t.schema().FindColumn(column);
  if (col < 0) return Status::NotFound("no column " + column);
  if (!catalog::IsIntegerLike(t.schema().column(col).type)) {
    return Status::InvalidArgument("indexes require integer/date columns");
  }
  auto index = std::make_unique<storage::BTreeIndex>();
  const storage::ColumnData& data = t.RawColumn(col);
  for (uint64_t r = 0; r < t.row_count(); ++r) {
    index->Insert(data.i64[r], r);
  }
  storage::BTreeIndex* raw = index.get();
  indexes_[table + "." + column] = std::move(index);
  return raw;
}

Status EcoDb::BuildZoneMaps(const std::string& table, size_t block_rows) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no table " + table);
  return it->second->BuildZoneMaps(block_rows);
}

StatusOr<QueryOutcome> EcoDb::Execute(const optimizer::QuerySpec& spec,
                                      const optimizer::Objective& objective) {
  ECODB_ASSIGN_OR_RETURN(optimizer::PhysicalPlan plan,
                         planner_->ChoosePlan(spec, objective));
  ECODB_ASSIGN_OR_RETURN(exec::OperatorPtr root,
                         planner_->BuildOperator(spec, plan));

  exec::ExecOptions options = config_.exec_options;
  options.dop = plan.dop;
  options.pstate = plan.pstate;
  exec::ExecContext ctx(platform_.get(), options);
  ECODB_ASSIGN_OR_RETURN(exec::QueryResultSet rows,
                         exec::CollectAll(root.get(), &ctx));
  QueryOutcome outcome;
  outcome.rows = std::move(rows);
  outcome.stats = ctx.Finish();
  outcome.plan = plan;
  return outcome;
}

StatusOr<QueryOutcome> EcoDb::Run(exec::Operator* root) {
  exec::ExecContext ctx(platform_.get(), config_.exec_options);
  ECODB_ASSIGN_OR_RETURN(exec::QueryResultSet rows,
                         exec::CollectAll(root, &ctx));
  QueryOutcome outcome;
  outcome.rows = std::move(rows);
  outcome.stats = ctx.Finish();
  return outcome;
}

StatusOr<sched::ServingReport> EcoDb::Serve(
    const sim::ArrivalTrace& trace, const sched::ServingConfig& config,
    const sched::SessionManager::QueryFactory& factory) {
  sched::SessionManager manager(platform_.get(), config);
  return manager.Serve(trace, factory);
}

StatusOr<storage::TableStorage*> EcoDb::table(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table " + name);
  return it->second.get();
}

}  // namespace ecodb::core

// EcoDb: the public facade of the energy-aware database engine.
//
// An EcoDb instance owns a metered hardware platform (CPU/DRAM/chassis plus
// a configurable storage complement), a catalog, table storage, and the
// energy-aware planner. Typical use (see examples/quickstart.cc):
//
//   ecodb::core::DbConfig config;                  // platform + storage
//   auto db = ecodb::core::EcoDb::Open(config);
//   db->CreateTable("orders", schema);
//   db->Load("orders", columns);
//   auto outcome = db->Execute(spec, Objective::Balanced(0.05));
//   outcome->stats.energy -> per-device Joules; outcome->plan -> choices.

#ifndef ECODB_CORE_ECODB_H_
#define ECODB_CORE_ECODB_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "exec/operator.h"
#include "optimizer/planner.h"
#include "power/platform.h"
#include "sched/session.h"
#include "sim/arrival_trace.h"
#include "storage/btree.h"
#include "storage/disk_array.h"
#include "storage/fault_injector.h"
#include "storage/ssd.h"
#include "storage/table_storage.h"
#include "util/status.h"

namespace ecodb::core {

enum class PlatformPreset {
  kDl785,         // the paper's Figure 1 host class
  kFlashScan,     // the paper's Figure 2 host class
  kProportional,  // an energy-proportional small server
};

struct DbConfig {
  PlatformPreset preset = PlatformPreset::kProportional;
  /// > 0: build a RAID array of this many HDDs as the primary device.
  int hdd_count = 0;
  storage::RaidLevel raid_level = storage::RaidLevel::kRaid5;
  power::HddSpec hdd_spec;
  storage::ArraySpec array_spec;
  /// > 0: build this many SSDs (used when hdd_count == 0, or as a second
  /// tier when both are set).
  int ssd_count = 1;
  power::SsdSpec ssd_spec;
  storage::TableLayout default_layout = storage::TableLayout::kColumn;
  exec::ExecOptions exec_options;
  optimizer::CostModelParams cost_params;
  optimizer::PlannerOptions planner_options;
  /// Derive the planner's dop candidates from the platform's core count
  /// (PlatformDopLadder) instead of planner_options.dops. On by default;
  /// set to false to keep a hand-tuned planner_options.dops ladder.
  bool derive_dop_ladder = true;
  /// Deterministic fault schedule. When active() every storage device is
  /// wrapped in a FaultInjectedDevice that replays the plan; the same seed
  /// and plan reproduce byte-identical rows and bit-identical charges at
  /// any dop.
  storage::FaultPlan fault_plan;
};

/// Result of one query: rows, measured resource stats, chosen plan.
struct QueryOutcome {
  exec::QueryResultSet rows;
  exec::QueryStats stats;
  std::optional<optimizer::PhysicalPlan> plan;
};

class EcoDb {
 public:
  static StatusOr<std::unique_ptr<EcoDb>> Open(const DbConfig& config);

  EcoDb(const EcoDb&) = delete;
  EcoDb& operator=(const EcoDb&) = delete;

  // --- Schema & data -----------------------------------------------------

  Status CreateTable(const std::string& name, catalog::Schema schema);
  Status CreateTable(const std::string& name, catalog::Schema schema,
                     storage::TableLayout layout,
                     storage::StorageDevice* device);

  Status Load(const std::string& table,
              const std::vector<storage::ColumnData>& columns);

  /// Applies a compression kind to one column of an existing table.
  Status SetCompression(const std::string& table, const std::string& column,
                        storage::CompressionKind kind);

  /// Creates a physical variant of `table` under `variant_name` with the
  /// given per-column compression (same rows; the planner can then choose
  /// between the two per the objective).
  Status CloneWithCompression(
      const std::string& table, const std::string& variant_name,
      const std::map<std::string, storage::CompressionKind>& kinds);

  /// Refreshes catalog statistics for `table`.
  Status Analyze(const std::string& table);

  /// Builds a B+tree index over an integer/date column of `table` (keys ->
  /// row positions). The index is owned by the database; pass it into a
  /// QuerySpec via TableAlternatives::index to enable the index-scan
  /// access path.
  StatusOr<storage::BTreeIndex*> CreateIndex(const std::string& table,
                                             const std::string& column);

  /// Builds zone maps over `table` (block min/max), enabling scan pruning.
  Status BuildZoneMaps(const std::string& table, size_t block_rows);

  // --- Querying ----------------------------------------------------------

  /// Plans `spec` under `objective`, executes the chosen plan, returns rows
  /// plus measured time/energy and the plan itself.
  StatusOr<QueryOutcome> Execute(const optimizer::QuerySpec& spec,
                                 const optimizer::Objective& objective);

  /// Executes a hand-built operator tree (bypassing the planner).
  StatusOr<QueryOutcome> Run(exec::Operator* root);

  // --- Serving -----------------------------------------------------------

  /// Admits a seeded arrival trace of many concurrent sessions onto this
  /// instance's shared platform and returns the per-session / per-tenant
  /// energy bills (DESIGN.md §12). The admission schedule and the bills are
  /// pure functions of (trace, config): replays are bit-identical.
  StatusOr<sched::ServingReport> Serve(
      const sim::ArrivalTrace& trace, const sched::ServingConfig& config,
      const sched::SessionManager::QueryFactory& factory);

  // --- Introspection -----------------------------------------------------

  StatusOr<storage::TableStorage*> table(const std::string& name);
  catalog::Catalog* catalog() { return &catalog_; }
  power::HardwarePlatform* platform() { return platform_.get(); }
  storage::StorageDevice* primary_device() { return primary_device_; }
  /// The RAID array built from hdd_count, or nullptr when none was
  /// configured. Degraded-mode experiments drive FailMember/rebuild here.
  storage::DiskArray* raid_array() { return raid_array_; }
  /// The fault injector replaying config.fault_plan, or nullptr when the
  /// plan is inactive.
  storage::FaultInjector* fault_injector() { return fault_injector_.get(); }
  optimizer::Planner* planner() { return planner_.get(); }
  optimizer::CostModel* cost_model() { return cost_model_.get(); }

  /// Whole-instance energy breakdown since Open().
  power::EnergyBreakdown EnergyReport() const {
    return platform_->BreakdownSinceStart();
  }

 private:
  explicit EcoDb(const DbConfig& config);

  DbConfig config_;
  std::unique_ptr<power::HardwarePlatform> platform_;
  std::vector<std::unique_ptr<storage::StorageDevice>> devices_;
  storage::StorageDevice* primary_device_ = nullptr;
  storage::DiskArray* raid_array_ = nullptr;
  std::unique_ptr<storage::FaultInjector> fault_injector_;
  catalog::Catalog catalog_;
  std::map<std::string, std::unique_ptr<storage::TableStorage>> tables_;
  std::map<std::string, std::unique_ptr<storage::BTreeIndex>> indexes_;
  std::unique_ptr<optimizer::CostModel> cost_model_;
  std::unique_ptr<optimizer::Planner> planner_;
};

}  // namespace ecodb::core

#endif  // ECODB_CORE_ECODB_H_

// The TPC-H-like "throughput test" workload of Figure 1.
//
// "The throughput test issues a mixture of TPC-H queries simultaneously
// from multiple clients to the system." We reproduce the mixture's
// character with three query shapes over LINEITEM/ORDERS:
//   * a pricing-summary aggregate (Q1-flavored): scan + filter + group-by
//   * a revenue-forecast filter-sum (Q6-flavored): scan + range filters
//   * a customer-order join (Q3-flavored): ORDERS >< LINEITEM + aggregate
// All three are scan-dominated, so at low disk counts the array is the
// bottleneck; at high counts the CPU is — the crossover drives Figure 1.

#ifndef ECODB_TPCH_WORKLOAD_H_
#define ECODB_TPCH_WORKLOAD_H_

#include <functional>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "sched/session.h"
#include "storage/table_storage.h"
#include "util/status.h"

namespace ecodb::tpch {

/// Builds the Q1-flavored pricing-summary plan over `lineitem`.
exec::OperatorPtr MakePricingSummaryQuery(
    const storage::TableStorage* lineitem, int64_t ship_date_cutoff);

/// Builds the Q6-flavored revenue plan over `lineitem`.
exec::OperatorPtr MakeRevenueQuery(const storage::TableStorage* lineitem,
                                   int64_t date_lo, int64_t date_hi,
                                   double discount_lo, double discount_hi,
                                   double quantity_cap);

/// Builds the Q3-flavored join plan over `orders` >< `lineitem`.
exec::OperatorPtr MakeOrderRevenueQuery(const storage::TableStorage* orders,
                                        const storage::TableStorage* lineitem,
                                        int64_t order_date_cutoff);

/// A serving-core query factory over the throughput-test mixture: maps a
/// trace request's query_class onto the three shapes and its param onto the
/// stream-style substitution parameters, and declares the tables each plan
/// scans so the SessionManager can route them through the shared-scan
/// manager. Deterministic in the request, as the replay contract requires.
sched::SessionManager::QueryFactory MakeServingFactory(
    const storage::TableStorage* orders,
    const storage::TableStorage* lineitem);

/// One complete throughput-test stream: the three shapes with rotating
/// parameters. `stream_index` varies the parameters like TPC-H's
/// substitution rules.
std::vector<exec::OperatorPtr> MakeThroughputStream(
    const storage::TableStorage* orders,
    const storage::TableStorage* lineitem, int stream_index);

/// Outcome of running one or more streams back-to-back.
struct ThroughputResult {
  int queries_completed = 0;
  uint64_t rows_emitted = 0;
  double elapsed_seconds = 0.0;
  double joules = 0.0;
  /// Total device bytes transferred and CPU core-seconds consumed; used by
  /// the Figure 1 harness to calibrate device bandwidth volumetrically.
  uint64_t io_bytes = 0;
  double cpu_core_seconds = 0.0;
  /// Queries per hour per the TPC-H throughput metric shape.
  double QueriesPerHour() const {
    return elapsed_seconds > 0 ? 3600.0 * queries_completed / elapsed_seconds
                               : 0.0;
  }
  /// The paper's EE axis: work done per Joule.
  double EnergyEfficiency() const {
    return joules > 0 ? queries_completed / joules : 0.0;
  }
};

/// Runs `streams` full streams sequentially on `platform` (the simulated
/// clock advances through each query; concurrency across clients shows up
/// as sustained device utilization).
StatusOr<ThroughputResult> RunThroughputTest(
    power::HardwarePlatform* platform, const storage::TableStorage* orders,
    const storage::TableStorage* lineitem, int streams,
    const exec::ExecOptions& exec_options);

}  // namespace ecodb::tpch

#endif  // ECODB_TPCH_WORKLOAD_H_

#include "tpch/generator.h"

#include <cmath>

namespace ecodb::tpch {

using catalog::Column;
using catalog::DataType;
using catalog::Schema;
using storage::ColumnData;

namespace {

constexpr const char* kOrderStatuses[] = {"O", "F", "P"};
constexpr const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                       "4-NOT SPECIFIED", "5-LOW"};
constexpr const char* kReturnFlags[] = {"R", "A", "N"};
constexpr const char* kMktSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                        "HOUSEHOLD", "MACHINERY"};
constexpr const char* kBrands[] = {"Brand#11", "Brand#22", "Brand#33",
                                   "Brand#44", "Brand#55"};

// Per-table seed salts: each generator mixes its own constant into the
// config seed so tables draw from independent streams. Adding a table can
// therefore never change the bytes of an existing one (the deterministic
// Joules baselines in BENCH_engine.json depend on that).
constexpr uint64_t kLineitemSalt = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t kCustomerSalt = 0xc2b2ae3d27d4eb4fULL;
constexpr uint64_t kPartSalt = 0x165667b19e3779f9ULL;
constexpr uint64_t kSupplierSalt = 0x27d4eb2f165667c5ULL;
constexpr uint64_t kPartsuppSalt = 0x85ebca6b27d4eb4fULL;

uint64_t OrderCount(const TpchConfig& config) {
  return static_cast<uint64_t>(config.scale_factor *
                               static_cast<double>(config.orders_per_sf));
}

}  // namespace

TpchRowCounts RowCountsFor(const TpchConfig& config) {
  TpchRowCounts counts;
  counts.orders = OrderCount(config);
  counts.customers = std::max<uint64_t>(1, counts.orders / 10);
  counts.parts = std::max<uint64_t>(1, counts.orders / 8);
  counts.suppliers = std::max<uint64_t>(1, counts.orders / 150);
  counts.partsupp = counts.parts * 2;
  return counts;
}

Schema OrdersSchema() {
  return Schema({
      Column{"o_orderkey", DataType::kInt64, 8},
      Column{"o_custkey", DataType::kInt64, 8},
      Column{"o_orderstatus", DataType::kString, 1},
      Column{"o_totalprice", DataType::kDouble, 8},
      Column{"o_orderdate", DataType::kDate, 8},
      Column{"o_orderpriority", DataType::kString, 12},
      Column{"o_shippriority", DataType::kInt64, 8},
  });
}

Schema LineitemSchema() {
  return Schema({
      Column{"l_orderkey", DataType::kInt64, 8},
      Column{"l_partkey", DataType::kInt64, 8},
      Column{"l_suppkey", DataType::kInt64, 8},
      Column{"l_quantity", DataType::kDouble, 8},
      Column{"l_extendedprice", DataType::kDouble, 8},
      Column{"l_discount", DataType::kDouble, 8},
      Column{"l_returnflag", DataType::kString, 1},
      Column{"l_shipdate", DataType::kDate, 8},
  });
}

Schema CustomerSchema() {
  return Schema({
      Column{"c_custkey", DataType::kInt64, 8},
      Column{"c_name", DataType::kString, 18},
      Column{"c_nationkey", DataType::kInt64, 8},
      Column{"c_acctbal", DataType::kDouble, 8},
      Column{"c_mktsegment", DataType::kString, 10},
  });
}

Schema PartSchema() {
  return Schema({
      Column{"p_partkey", DataType::kInt64, 8},
      Column{"p_name", DataType::kString, 32},
      Column{"p_brand", DataType::kString, 8},
      Column{"p_size", DataType::kInt64, 8},
      Column{"p_retailprice", DataType::kDouble, 8},
  });
}

Schema SupplierSchema() {
  return Schema({
      Column{"s_suppkey", DataType::kInt64, 8},
      Column{"s_name", DataType::kString, 18},
      Column{"s_nationkey", DataType::kInt64, 8},
      Column{"s_acctbal", DataType::kDouble, 8},
  });
}

Schema PartsuppSchema() {
  return Schema({
      Column{"ps_partkey", DataType::kInt64, 8},
      Column{"ps_suppkey", DataType::kInt64, 8},
      Column{"ps_availqty", DataType::kInt64, 8},
      Column{"ps_supplycost", DataType::kDouble, 8},
  });
}

std::vector<ColumnData> GenerateOrders(const TpchConfig& config) {
  const uint64_t n = OrderCount(config);
  Rng rng(config.seed);

  std::vector<ColumnData> cols(7);
  ColumnData& okey = cols[0];
  ColumnData& ckey = cols[1];
  ColumnData& status = cols[2];
  ColumnData& price = cols[3];
  ColumnData& date = cols[4];
  ColumnData& priority = cols[5];
  ColumnData& shipprio = cols[6];
  okey.type = DataType::kInt64;
  ckey.type = DataType::kInt64;
  status.type = DataType::kString;
  price.type = DataType::kDouble;
  date.type = DataType::kDate;
  priority.type = DataType::kString;
  shipprio.type = DataType::kInt64;

  okey.i64.reserve(n);
  ckey.i64.reserve(n);
  status.str.reserve(n);
  price.f64.reserve(n);
  date.i64.reserve(n);
  priority.str.reserve(n);
  shipprio.i64.reserve(n);

  const uint64_t customers = RowCountsFor(config).customers;
  for (uint64_t i = 0; i < n; ++i) {
    okey.i64.push_back(static_cast<int64_t>(i + 1));  // clustered key
    ckey.i64.push_back(
        rng.Uniform(1, static_cast<int64_t>(customers)));
    status.str.push_back(kOrderStatuses[rng.Uniform(0, 2)]);
    // TPC-H prices cluster between ~850 and ~560000.
    price.f64.push_back(
        std::round((850.0 + rng.NextDouble() * 559150.0) * 100.0) / 100.0);
    date.i64.push_back(rng.Uniform(kDateEpochStart,
                                   kDateEpochStart + kDateRangeDays - 1));
    priority.str.push_back(kPriorities[rng.Uniform(0, 4)]);
    shipprio.i64.push_back(0);  // constant in TPC-H — maximally compressible
  }
  return cols;
}

std::vector<ColumnData> GenerateLineitem(const TpchConfig& config) {
  const uint64_t orders = OrderCount(config);
  Rng rng(config.seed ^ kLineitemSalt);

  std::vector<ColumnData> cols(8);
  ColumnData& okey = cols[0];
  ColumnData& pkey = cols[1];
  ColumnData& skey = cols[2];
  ColumnData& qty = cols[3];
  ColumnData& eprice = cols[4];
  ColumnData& disc = cols[5];
  ColumnData& rflag = cols[6];
  ColumnData& sdate = cols[7];
  okey.type = DataType::kInt64;
  pkey.type = DataType::kInt64;
  skey.type = DataType::kInt64;
  qty.type = DataType::kDouble;
  eprice.type = DataType::kDouble;
  disc.type = DataType::kDouble;
  rflag.type = DataType::kString;
  sdate.type = DataType::kDate;

  const uint64_t parts = RowCountsFor(config).parts;
  const uint64_t supps = RowCountsFor(config).suppliers;
  for (uint64_t o = 1; o <= orders; ++o) {
    // 1..7 lineitems per order, mean ~ lineitems_per_order.
    const int64_t max_items = std::max<int64_t>(
        1, static_cast<int64_t>(2.0 * config.lineitems_per_order) - 1);
    const int64_t items = rng.Uniform(1, max_items);
    for (int64_t l = 0; l < items; ++l) {
      okey.i64.push_back(static_cast<int64_t>(o));
      pkey.i64.push_back(rng.Uniform(1, static_cast<int64_t>(parts)));
      skey.i64.push_back(rng.Uniform(1, static_cast<int64_t>(supps)));
      const double quantity = static_cast<double>(rng.Uniform(1, 50));
      qty.f64.push_back(quantity);
      eprice.f64.push_back(
          std::round(quantity * (901.0 + rng.NextDouble() * 100000.0)) /
          100.0 * 100.0 / 100.0);
      disc.f64.push_back(
          static_cast<double>(rng.Uniform(0, 10)) / 100.0);  // 0.00-0.10
      rflag.str.push_back(kReturnFlags[rng.Uniform(0, 2)]);
      sdate.i64.push_back(rng.Uniform(kDateEpochStart,
                                      kDateEpochStart + kDateRangeDays - 1));
    }
  }
  return cols;
}

std::vector<ColumnData> GenerateCustomer(const TpchConfig& config) {
  const uint64_t n = RowCountsFor(config).customers;
  Rng rng(config.seed ^ kCustomerSalt);

  std::vector<ColumnData> cols(5);
  ColumnData& key = cols[0];
  ColumnData& name = cols[1];
  ColumnData& nation = cols[2];
  ColumnData& acctbal = cols[3];
  ColumnData& segment = cols[4];
  key.type = DataType::kInt64;
  name.type = DataType::kString;
  nation.type = DataType::kInt64;
  acctbal.type = DataType::kDouble;
  segment.type = DataType::kString;

  for (uint64_t i = 1; i <= n; ++i) {
    key.i64.push_back(static_cast<int64_t>(i));  // dense 1..n: FK target
    name.str.push_back("Customer#" + std::to_string(i));
    nation.i64.push_back(rng.Uniform(0, 24));  // 25 TPC-H nations
    // TPC-H account balances span [-999.99, 9999.99].
    acctbal.f64.push_back(
        std::round((-999.99 + rng.NextDouble() * 10999.98) * 100.0) / 100.0);
    segment.str.push_back(kMktSegments[rng.Uniform(0, 4)]);
  }
  return cols;
}

std::vector<ColumnData> GeneratePart(const TpchConfig& config) {
  const uint64_t n = RowCountsFor(config).parts;
  Rng rng(config.seed ^ kPartSalt);

  std::vector<ColumnData> cols(5);
  ColumnData& key = cols[0];
  ColumnData& name = cols[1];
  ColumnData& brand = cols[2];
  ColumnData& size = cols[3];
  ColumnData& price = cols[4];
  key.type = DataType::kInt64;
  name.type = DataType::kString;
  brand.type = DataType::kString;
  size.type = DataType::kInt64;
  price.type = DataType::kDouble;

  for (uint64_t i = 1; i <= n; ++i) {
    key.i64.push_back(static_cast<int64_t>(i));
    name.str.push_back("part moccasin" + std::to_string(rng.Uniform(0, 999)));
    brand.str.push_back(kBrands[rng.Uniform(0, 4)]);
    size.i64.push_back(rng.Uniform(1, 50));
    // TPC-H: p_retailprice = 900 + (partkey/10 mod 2001) + 100*(partkey mod
    // 1000) / 1000 — structural, not random.
    price.f64.push_back(
        900.0 + static_cast<double>((i / 10) % 2001) +
        static_cast<double>(i % 1000) / 10.0);
  }
  return cols;
}

std::vector<ColumnData> GenerateSupplier(const TpchConfig& config) {
  const uint64_t n = RowCountsFor(config).suppliers;
  Rng rng(config.seed ^ kSupplierSalt);

  std::vector<ColumnData> cols(4);
  ColumnData& key = cols[0];
  ColumnData& name = cols[1];
  ColumnData& nation = cols[2];
  ColumnData& acctbal = cols[3];
  key.type = DataType::kInt64;
  name.type = DataType::kString;
  nation.type = DataType::kInt64;
  acctbal.type = DataType::kDouble;

  for (uint64_t i = 1; i <= n; ++i) {
    key.i64.push_back(static_cast<int64_t>(i));
    name.str.push_back("Supplier#" + std::to_string(i));
    nation.i64.push_back(rng.Uniform(0, 24));
    acctbal.f64.push_back(
        std::round((-999.99 + rng.NextDouble() * 10999.98) * 100.0) / 100.0);
  }
  return cols;
}

std::vector<ColumnData> GeneratePartsupp(const TpchConfig& config) {
  const TpchRowCounts counts = RowCountsFor(config);
  Rng rng(config.seed ^ kPartsuppSalt);

  std::vector<ColumnData> cols(4);
  ColumnData& pkey = cols[0];
  ColumnData& skey = cols[1];
  ColumnData& qty = cols[2];
  ColumnData& cost = cols[3];
  pkey.type = DataType::kInt64;
  skey.type = DataType::kInt64;
  qty.type = DataType::kInt64;
  cost.type = DataType::kDouble;

  const int64_t supps = static_cast<int64_t>(counts.suppliers);
  for (uint64_t p = 1; p <= counts.parts; ++p) {
    const int64_t first = rng.Uniform(1, supps);
    // Second link: the next supplier cyclically — distinct whenever more
    // than one supplier exists.
    const int64_t second = first % supps + 1;
    for (const int64_t s : {first, second}) {
      pkey.i64.push_back(static_cast<int64_t>(p));
      skey.i64.push_back(s);
      qty.i64.push_back(rng.Uniform(1, 9999));
      cost.f64.push_back(
          std::round((1.0 + rng.NextDouble() * 999.0) * 100.0) / 100.0);
    }
  }
  return cols;
}

StatusOr<std::unique_ptr<storage::TableStorage>> LoadOrders(
    const TpchConfig& config, catalog::TableId id,
    storage::TableLayout layout, storage::StorageDevice* device) {
  auto table = std::make_unique<storage::TableStorage>(id, OrdersSchema(),
                                                       layout, device);
  ECODB_RETURN_IF_ERROR(table->Append(GenerateOrders(config)));
  return table;
}

StatusOr<std::unique_ptr<storage::TableStorage>> LoadLineitem(
    const TpchConfig& config, catalog::TableId id,
    storage::TableLayout layout, storage::StorageDevice* device) {
  auto table = std::make_unique<storage::TableStorage>(id, LineitemSchema(),
                                                       layout, device);
  ECODB_RETURN_IF_ERROR(table->Append(GenerateLineitem(config)));
  return table;
}

StatusOr<std::unique_ptr<storage::TableStorage>> LoadCustomer(
    const TpchConfig& config, catalog::TableId id,
    storage::TableLayout layout, storage::StorageDevice* device) {
  auto table = std::make_unique<storage::TableStorage>(id, CustomerSchema(),
                                                       layout, device);
  ECODB_RETURN_IF_ERROR(table->Append(GenerateCustomer(config)));
  return table;
}

StatusOr<std::unique_ptr<storage::TableStorage>> LoadPart(
    const TpchConfig& config, catalog::TableId id,
    storage::TableLayout layout, storage::StorageDevice* device) {
  auto table = std::make_unique<storage::TableStorage>(id, PartSchema(),
                                                       layout, device);
  ECODB_RETURN_IF_ERROR(table->Append(GeneratePart(config)));
  return table;
}

StatusOr<std::unique_ptr<storage::TableStorage>> LoadSupplier(
    const TpchConfig& config, catalog::TableId id,
    storage::TableLayout layout, storage::StorageDevice* device) {
  auto table = std::make_unique<storage::TableStorage>(id, SupplierSchema(),
                                                       layout, device);
  ECODB_RETURN_IF_ERROR(table->Append(GenerateSupplier(config)));
  return table;
}

StatusOr<std::unique_ptr<storage::TableStorage>> LoadPartsupp(
    const TpchConfig& config, catalog::TableId id,
    storage::TableLayout layout, storage::StorageDevice* device) {
  auto table = std::make_unique<storage::TableStorage>(id, PartsuppSchema(),
                                                       layout, device);
  ECODB_RETURN_IF_ERROR(table->Append(GeneratePartsupp(config)));
  return table;
}

StatusOr<TpchDatabase> LoadDatabase(const TpchConfig& config,
                                    storage::TableLayout layout,
                                    storage::StorageDevice* device,
                                    catalog::Catalog* catalog) {
  TpchDatabase db;
  auto load_one =
      [&](const char* name, catalog::Schema schema,
          StatusOr<std::unique_ptr<storage::TableStorage>> (*loader)(
              const TpchConfig&, catalog::TableId, storage::TableLayout,
              storage::StorageDevice*),
          TpchTable* out) -> Status {
    ECODB_ASSIGN_OR_RETURN(const catalog::TableId id,
                           catalog->CreateTable(name, std::move(schema)));
    ECODB_ASSIGN_OR_RETURN(out->storage, loader(config, id, layout, device));
    ECODB_RETURN_IF_ERROR(out->storage->AnalyzeInto(&out->stats));
    return catalog->UpdateStats(id, out->stats);
  };
  // Dimensions first so fact-table FKs can resolve their parents.
  ECODB_RETURN_IF_ERROR(
      load_one("customer", CustomerSchema(), LoadCustomer, &db.customer));
  ECODB_RETURN_IF_ERROR(load_one("part", PartSchema(), LoadPart, &db.part));
  ECODB_RETURN_IF_ERROR(
      load_one("supplier", SupplierSchema(), LoadSupplier, &db.supplier));
  ECODB_RETURN_IF_ERROR(
      load_one("partsupp", PartsuppSchema(), LoadPartsupp, &db.partsupp));
  ECODB_RETURN_IF_ERROR(
      load_one("orders", OrdersSchema(), LoadOrders, &db.orders));
  ECODB_RETURN_IF_ERROR(
      load_one("lineitem", LineitemSchema(), LoadLineitem, &db.lineitem));

  auto fk = [&](const TpchTable& child, const char* column,
                const char* parent, const char* parent_column) {
    return catalog->AddForeignKey(
        child.storage->id(), {column, parent, parent_column});
  };
  ECODB_RETURN_IF_ERROR(fk(db.orders, "o_custkey", "customer", "c_custkey"));
  ECODB_RETURN_IF_ERROR(fk(db.lineitem, "l_orderkey", "orders", "o_orderkey"));
  ECODB_RETURN_IF_ERROR(fk(db.lineitem, "l_partkey", "part", "p_partkey"));
  ECODB_RETURN_IF_ERROR(fk(db.lineitem, "l_suppkey", "supplier", "s_suppkey"));
  ECODB_RETURN_IF_ERROR(fk(db.partsupp, "ps_partkey", "part", "p_partkey"));
  ECODB_RETURN_IF_ERROR(
      fk(db.partsupp, "ps_suppkey", "supplier", "s_suppkey"));
  return db;
}

}  // namespace ecodb::tpch

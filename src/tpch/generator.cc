#include "tpch/generator.h"

#include <cmath>

namespace ecodb::tpch {

using catalog::Column;
using catalog::DataType;
using catalog::Schema;
using storage::ColumnData;

namespace {

constexpr const char* kOrderStatuses[] = {"O", "F", "P"};
constexpr const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                       "4-NOT SPECIFIED", "5-LOW"};
constexpr const char* kReturnFlags[] = {"R", "A", "N"};

uint64_t OrderCount(const TpchConfig& config) {
  return static_cast<uint64_t>(config.scale_factor *
                               static_cast<double>(config.orders_per_sf));
}

}  // namespace

Schema OrdersSchema() {
  return Schema({
      Column{"o_orderkey", DataType::kInt64, 8},
      Column{"o_custkey", DataType::kInt64, 8},
      Column{"o_orderstatus", DataType::kString, 1},
      Column{"o_totalprice", DataType::kDouble, 8},
      Column{"o_orderdate", DataType::kDate, 8},
      Column{"o_orderpriority", DataType::kString, 12},
      Column{"o_shippriority", DataType::kInt64, 8},
  });
}

Schema LineitemSchema() {
  return Schema({
      Column{"l_orderkey", DataType::kInt64, 8},
      Column{"l_partkey", DataType::kInt64, 8},
      Column{"l_suppkey", DataType::kInt64, 8},
      Column{"l_quantity", DataType::kDouble, 8},
      Column{"l_extendedprice", DataType::kDouble, 8},
      Column{"l_discount", DataType::kDouble, 8},
      Column{"l_returnflag", DataType::kString, 1},
      Column{"l_shipdate", DataType::kDate, 8},
  });
}

std::vector<ColumnData> GenerateOrders(const TpchConfig& config) {
  const uint64_t n = OrderCount(config);
  Rng rng(config.seed);

  std::vector<ColumnData> cols(7);
  ColumnData& okey = cols[0];
  ColumnData& ckey = cols[1];
  ColumnData& status = cols[2];
  ColumnData& price = cols[3];
  ColumnData& date = cols[4];
  ColumnData& priority = cols[5];
  ColumnData& shipprio = cols[6];
  okey.type = DataType::kInt64;
  ckey.type = DataType::kInt64;
  status.type = DataType::kString;
  price.type = DataType::kDouble;
  date.type = DataType::kDate;
  priority.type = DataType::kString;
  shipprio.type = DataType::kInt64;

  okey.i64.reserve(n);
  ckey.i64.reserve(n);
  status.str.reserve(n);
  price.f64.reserve(n);
  date.i64.reserve(n);
  priority.str.reserve(n);
  shipprio.i64.reserve(n);

  const uint64_t customers =
      std::max<uint64_t>(1, n / 10);  // TPC-H: 10 orders per customer
  for (uint64_t i = 0; i < n; ++i) {
    okey.i64.push_back(static_cast<int64_t>(i + 1));  // clustered key
    ckey.i64.push_back(
        rng.Uniform(1, static_cast<int64_t>(customers)));
    status.str.push_back(kOrderStatuses[rng.Uniform(0, 2)]);
    // TPC-H prices cluster between ~850 and ~560000.
    price.f64.push_back(
        std::round((850.0 + rng.NextDouble() * 559150.0) * 100.0) / 100.0);
    date.i64.push_back(rng.Uniform(kDateEpochStart,
                                   kDateEpochStart + kDateRangeDays - 1));
    priority.str.push_back(kPriorities[rng.Uniform(0, 4)]);
    shipprio.i64.push_back(0);  // constant in TPC-H — maximally compressible
  }
  return cols;
}

std::vector<ColumnData> GenerateLineitem(const TpchConfig& config) {
  const uint64_t orders = OrderCount(config);
  Rng rng(config.seed ^ 0x9e3779b97f4a7c15ULL);

  std::vector<ColumnData> cols(8);
  ColumnData& okey = cols[0];
  ColumnData& pkey = cols[1];
  ColumnData& skey = cols[2];
  ColumnData& qty = cols[3];
  ColumnData& eprice = cols[4];
  ColumnData& disc = cols[5];
  ColumnData& rflag = cols[6];
  ColumnData& sdate = cols[7];
  okey.type = DataType::kInt64;
  pkey.type = DataType::kInt64;
  skey.type = DataType::kInt64;
  qty.type = DataType::kDouble;
  eprice.type = DataType::kDouble;
  disc.type = DataType::kDouble;
  rflag.type = DataType::kString;
  sdate.type = DataType::kDate;

  const uint64_t parts = std::max<uint64_t>(1, orders / 8);
  const uint64_t supps = std::max<uint64_t>(1, orders / 150);
  for (uint64_t o = 1; o <= orders; ++o) {
    // 1..7 lineitems per order, mean ~ lineitems_per_order.
    const int64_t max_items = std::max<int64_t>(
        1, static_cast<int64_t>(2.0 * config.lineitems_per_order) - 1);
    const int64_t items = rng.Uniform(1, max_items);
    for (int64_t l = 0; l < items; ++l) {
      okey.i64.push_back(static_cast<int64_t>(o));
      pkey.i64.push_back(rng.Uniform(1, static_cast<int64_t>(parts)));
      skey.i64.push_back(rng.Uniform(1, static_cast<int64_t>(supps)));
      const double quantity = static_cast<double>(rng.Uniform(1, 50));
      qty.f64.push_back(quantity);
      eprice.f64.push_back(
          std::round(quantity * (901.0 + rng.NextDouble() * 100000.0)) /
          100.0 * 100.0 / 100.0);
      disc.f64.push_back(
          static_cast<double>(rng.Uniform(0, 10)) / 100.0);  // 0.00-0.10
      rflag.str.push_back(kReturnFlags[rng.Uniform(0, 2)]);
      sdate.i64.push_back(rng.Uniform(kDateEpochStart,
                                      kDateEpochStart + kDateRangeDays - 1));
    }
  }
  return cols;
}

StatusOr<std::unique_ptr<storage::TableStorage>> LoadOrders(
    const TpchConfig& config, catalog::TableId id,
    storage::TableLayout layout, storage::StorageDevice* device) {
  auto table = std::make_unique<storage::TableStorage>(id, OrdersSchema(),
                                                       layout, device);
  ECODB_RETURN_IF_ERROR(table->Append(GenerateOrders(config)));
  return table;
}

StatusOr<std::unique_ptr<storage::TableStorage>> LoadLineitem(
    const TpchConfig& config, catalog::TableId id,
    storage::TableLayout layout, storage::StorageDevice* device) {
  auto table = std::make_unique<storage::TableStorage>(id, LineitemSchema(),
                                                       layout, device);
  ECODB_RETURN_IF_ERROR(table->Append(GenerateLineitem(config)));
  return table;
}

}  // namespace ecodb::tpch

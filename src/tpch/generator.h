// TPC-H-like data generation (ORDERS and LINEITEM).
//
// The paper's experiments run against a 300 GB-scale-factor TPC-H database
// (Figure 1) and a scan of ORDERS projecting 5 of its 7 attributes
// (Figure 2, after [HLA+06]'s 7-attribute ORDERS variant). The generator
// reproduces the schema shapes and value distributions that matter for
// those experiments — clustered keys (compressible with FOR/delta), skewed
// low-cardinality status/priority strings (dictionary-friendly), dates over
// a 7-year window, and prices — fully deterministically from a seed.
//
// Row counts scale volumetrically: `orders_per_sf` rows of ORDERS per unit
// of scale factor, so tests run in milliseconds while benchmark configs can
// scale up.

#ifndef ECODB_TPCH_GENERATOR_H_
#define ECODB_TPCH_GENERATOR_H_

#include <memory>
#include <vector>

#include "catalog/schema.h"
#include "storage/table_storage.h"
#include "util/random.h"
#include "util/status.h"

namespace ecodb::tpch {

struct TpchConfig {
  double scale_factor = 1.0;
  uint64_t orders_per_sf = 15000;  // 1/100 of TPC-H's 1.5M, volumetric
  double lineitems_per_order = 4.0;
  uint64_t seed = 20090104;  // CIDR 2009 opening day
};

/// The 7-attribute ORDERS variant of [HLA+06] / Figure 2.
catalog::Schema OrdersSchema();

/// LINEITEM columns needed by the throughput-test queries.
catalog::Schema LineitemSchema();

/// Generates ORDERS columns (o_orderkey, o_custkey, o_orderstatus,
/// o_totalprice, o_orderdate, o_orderpriority, o_shippriority).
std::vector<storage::ColumnData> GenerateOrders(const TpchConfig& config);

/// Generates LINEITEM columns (l_orderkey, l_partkey, l_suppkey,
/// l_quantity, l_extendedprice, l_discount, l_returnflag, l_shipdate).
/// Order keys reference GenerateOrders output for the same config.
std::vector<storage::ColumnData> GenerateLineitem(const TpchConfig& config);

/// Convenience: builds and loads a TableStorage for ORDERS / LINEITEM on
/// `device` with the given layout.
StatusOr<std::unique_ptr<storage::TableStorage>> LoadOrders(
    const TpchConfig& config, catalog::TableId id,
    storage::TableLayout layout, storage::StorageDevice* device);

StatusOr<std::unique_ptr<storage::TableStorage>> LoadLineitem(
    const TpchConfig& config, catalog::TableId id,
    storage::TableLayout layout, storage::StorageDevice* device);

/// Date helpers: days since 1992-01-01 (the TPC-H calendar start).
constexpr int64_t kDateEpochStart = 0;
constexpr int64_t kDateRangeDays = 7 * 365;  // 1992-1998

}  // namespace ecodb::tpch

#endif  // ECODB_TPCH_GENERATOR_H_

// TPC-H-like data generation (ORDERS, LINEITEM, CUSTOMER, PART, SUPPLIER,
// PARTSUPP).
//
// The paper's experiments run against a 300 GB-scale-factor TPC-H database
// (Figure 1) and a scan of ORDERS projecting 5 of its 7 attributes
// (Figure 2, after [HLA+06]'s 7-attribute ORDERS variant). The generator
// reproduces the schema shapes and value distributions that matter for
// those experiments — clustered keys (compressible with FOR/delta), skewed
// low-cardinality status/priority strings (dictionary-friendly), dates over
// a 7-year window, and prices — fully deterministically from a seed.
//
// The four dimension-side tables widen the schema for multi-join queries
// (the join-order work): they are FK-consistent with ORDERS/LINEITEM by
// construction — every o_custkey, l_partkey and l_suppkey the fact tables
// draw lands inside the [1, count] key ranges the dimensions enumerate —
// and each table consumes its own seeded RNG stream, so adding tables never
// perturbs the bytes of an existing one.
//
// Row counts scale volumetrically: `orders_per_sf` rows of ORDERS per unit
// of scale factor, so tests run in milliseconds while benchmark configs can
// scale up.

#ifndef ECODB_TPCH_GENERATOR_H_
#define ECODB_TPCH_GENERATOR_H_

#include <memory>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/schema.h"
#include "storage/table_storage.h"
#include "util/random.h"
#include "util/status.h"

namespace ecodb::tpch {

struct TpchConfig {
  double scale_factor = 1.0;
  uint64_t orders_per_sf = 15000;  // 1/100 of TPC-H's 1.5M, volumetric
  double lineitems_per_order = 4.0;
  uint64_t seed = 20090104;  // CIDR 2009 opening day
};

/// Derived table cardinalities for a config. These ratios are fixed by the
/// fact-table generators (GenerateOrders draws o_custkey from
/// [1, customers]; GenerateLineitem draws l_partkey / l_suppkey from
/// [1, parts] / [1, suppliers]), so the dimension generators must use the
/// exact same counts to stay FK-consistent.
struct TpchRowCounts {
  uint64_t orders = 0;
  uint64_t customers = 0;  // orders / 10 (TPC-H: 10 orders per customer)
  uint64_t parts = 0;      // orders / 8
  uint64_t suppliers = 0;  // orders / 150
  uint64_t partsupp = 0;   // parts * 2 supply links
};

TpchRowCounts RowCountsFor(const TpchConfig& config);

/// The 7-attribute ORDERS variant of [HLA+06] / Figure 2.
catalog::Schema OrdersSchema();

/// LINEITEM columns needed by the throughput-test queries.
catalog::Schema LineitemSchema();

/// CUSTOMER (c_custkey, c_name, c_nationkey, c_acctbal, c_mktsegment).
catalog::Schema CustomerSchema();

/// PART (p_partkey, p_name, p_brand, p_size, p_retailprice).
catalog::Schema PartSchema();

/// SUPPLIER (s_suppkey, s_name, s_nationkey, s_acctbal).
catalog::Schema SupplierSchema();

/// PARTSUPP (ps_partkey, ps_suppkey, ps_availqty, ps_supplycost).
catalog::Schema PartsuppSchema();

/// Generates ORDERS columns (o_orderkey, o_custkey, o_orderstatus,
/// o_totalprice, o_orderdate, o_orderpriority, o_shippriority).
std::vector<storage::ColumnData> GenerateOrders(const TpchConfig& config);

/// Generates LINEITEM columns (l_orderkey, l_partkey, l_suppkey,
/// l_quantity, l_extendedprice, l_discount, l_returnflag, l_shipdate).
/// Order keys reference GenerateOrders output for the same config.
std::vector<storage::ColumnData> GenerateLineitem(const TpchConfig& config);

/// Generates CUSTOMER rows covering every o_custkey GenerateOrders draws.
std::vector<storage::ColumnData> GenerateCustomer(const TpchConfig& config);

/// Generates PART rows covering every l_partkey GenerateLineitem draws.
std::vector<storage::ColumnData> GeneratePart(const TpchConfig& config);

/// Generates SUPPLIER rows covering every l_suppkey GenerateLineitem draws.
std::vector<storage::ColumnData> GenerateSupplier(const TpchConfig& config);

/// Generates PARTSUPP: two distinct supply links per part (when more than
/// one supplier exists). Every ps_partkey / ps_suppkey resolves against
/// PART / SUPPLIER; per-column FK containment of LINEITEM's (partkey,
/// suppkey) draws holds, pair containment is not promised (as in real
/// TPC-H data only the declared single-column FKs are normative here).
std::vector<storage::ColumnData> GeneratePartsupp(const TpchConfig& config);

/// Convenience: builds and loads a TableStorage for ORDERS / LINEITEM on
/// `device` with the given layout.
StatusOr<std::unique_ptr<storage::TableStorage>> LoadOrders(
    const TpchConfig& config, catalog::TableId id,
    storage::TableLayout layout, storage::StorageDevice* device);

StatusOr<std::unique_ptr<storage::TableStorage>> LoadLineitem(
    const TpchConfig& config, catalog::TableId id,
    storage::TableLayout layout, storage::StorageDevice* device);

StatusOr<std::unique_ptr<storage::TableStorage>> LoadCustomer(
    const TpchConfig& config, catalog::TableId id,
    storage::TableLayout layout, storage::StorageDevice* device);

StatusOr<std::unique_ptr<storage::TableStorage>> LoadPart(
    const TpchConfig& config, catalog::TableId id,
    storage::TableLayout layout, storage::StorageDevice* device);

StatusOr<std::unique_ptr<storage::TableStorage>> LoadSupplier(
    const TpchConfig& config, catalog::TableId id,
    storage::TableLayout layout, storage::StorageDevice* device);

StatusOr<std::unique_ptr<storage::TableStorage>> LoadPartsupp(
    const TpchConfig& config, catalog::TableId id,
    storage::TableLayout layout, storage::StorageDevice* device);

/// One loaded table plus the load-time statistics the planner prices with.
struct TpchTable {
  std::unique_ptr<storage::TableStorage> storage;
  catalog::TableStats stats;
};

/// The full widened database: all six tables loaded on `device`, analyzed,
/// and registered in `catalog` (names "orders", "lineitem", "customer",
/// "part", "supplier", "partsupp") together with the declared foreign keys
/// (o_custkey -> customer, l_orderkey -> orders, l_partkey -> part,
/// l_suppkey -> supplier, ps_partkey -> part, ps_suppkey -> supplier).
struct TpchDatabase {
  TpchTable orders;
  TpchTable lineitem;
  TpchTable customer;
  TpchTable part;
  TpchTable supplier;
  TpchTable partsupp;
};

StatusOr<TpchDatabase> LoadDatabase(const TpchConfig& config,
                                    storage::TableLayout layout,
                                    storage::StorageDevice* device,
                                    catalog::Catalog* catalog);

/// Date helpers: days since 1992-01-01 (the TPC-H calendar start).
constexpr int64_t kDateEpochStart = 0;
constexpr int64_t kDateRangeDays = 7 * 365;  // 1992-1998

}  // namespace ecodb::tpch

#endif  // ECODB_TPCH_GENERATOR_H_

// Multi-join query shapes over the widened TPC-H schema.
//
// Each builder returns an optimizer::QuerySpec in the N-relation join-graph
// form (QuerySpec::relations + edges) pointing at a loaded TpchDatabase's
// tables and load-time statistics, so the cost-based join-order enumerator
// (optimizer/join_order.h) chooses the tree. The shapes follow the TPC-H
// queries that stress join ordering:
//   * Q3-flavored:  CUSTOMER >< ORDERS >< LINEITEM (chain)
//   * Q9-flavored:  PART >< PARTSUPP >< SUPPLIER >< LINEITEM, with TWO
//                   PARTSUPP-LINEITEM edges — the second runs as a residual
//                   filter, exercising the multi-edge path
//   * Q5-flavored:  CUSTOMER >< ORDERS >< LINEITEM >< SUPPLIER >< PART
//                   (5-relation chain/star mix)
//   * Q14-flavored: PART >< LINEITEM >< ORDERS with a ship-date window and
//                   a grouped aggregate + top-k tail
//
// The specs borrow the returned TpchDatabase's storage and stats pointers:
// the database must outlive the spec and any plan built from it.

#ifndef ECODB_TPCH_QUERIES_H_
#define ECODB_TPCH_QUERIES_H_

#include <string>
#include <vector>

#include "optimizer/planner.h"
#include "tpch/generator.h"

namespace ecodb::tpch {

/// A named join-graph shape, ready for the planner.
struct JoinQueryShape {
  std::string name;
  optimizer::QuerySpec spec;
};

/// Q3-flavored 3-way chain: customers of one market segment joined to
/// their orders before a date cutoff and those orders' line items.
optimizer::QuerySpec MakeSegmentRevenueSpec(const TpchDatabase& db,
                                            const std::string& segment,
                                            int64_t order_date_cutoff);

/// Q9-flavored 4-way: small parts joined to their supply links, the
/// suppliers behind them, and matching line items on BOTH ps_partkey =
/// l_partkey and ps_suppkey = l_suppkey (the second edge is residual).
optimizer::QuerySpec MakePartSupplierProfitSpec(const TpchDatabase& db,
                                                int64_t max_part_size);

/// Q5-flavored 5-way: customer orders expanded to line items and joined
/// out to both supplier and part dimensions.
optimizer::QuerySpec MakeLocalSupplierVolumeSpec(const TpchDatabase& db,
                                                 const std::string& segment,
                                                 int64_t min_part_size);

/// Q14-flavored 3-way with a tail: parts shipped inside a date window,
/// revenue summed per brand, top brands first.
optimizer::QuerySpec MakePromoRevenueSpec(const TpchDatabase& db,
                                          int64_t ship_date_lo,
                                          int64_t ship_date_hi,
                                          uint64_t top_brands);

/// All four shapes with default parameters (bench + test sweep set).
std::vector<JoinQueryShape> MakeJoinQueryShapes(const TpchDatabase& db);

}  // namespace ecodb::tpch

#endif  // ECODB_TPCH_QUERIES_H_

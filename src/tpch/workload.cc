#include "tpch/workload.h"

#include "exec/aggregate.h"
#include "exec/filter_project.h"
#include "exec/joins.h"
#include "exec/scan.h"
#include "tpch/generator.h"

namespace ecodb::tpch {

using exec::AggFunc;
using exec::AggregateItem;
using exec::And;
using exec::Col;
using exec::Lit;
using exec::LitDate;
using exec::OperatorPtr;

OperatorPtr MakePricingSummaryQuery(const storage::TableStorage* lineitem,
                                    int64_t ship_date_cutoff) {
  OperatorPtr scan = std::make_unique<exec::TableScanOp>(
      lineitem,
      std::vector<std::string>{"l_returnflag", "l_quantity",
                               "l_extendedprice", "l_discount",
                               "l_shipdate"});
  OperatorPtr filtered = std::make_unique<exec::FilterOp>(
      std::move(scan), Col("l_shipdate") <= LitDate(ship_date_cutoff));
  std::vector<AggregateItem> aggs;
  aggs.push_back({"sum_qty", AggFunc::kSum, Col("l_quantity")});
  aggs.push_back({"sum_base_price", AggFunc::kSum, Col("l_extendedprice")});
  aggs.push_back({"sum_disc_price", AggFunc::kSum,
                  Col("l_extendedprice") * (Lit(1.0) - Col("l_discount"))});
  aggs.push_back({"avg_qty", AggFunc::kAvg, Col("l_quantity")});
  aggs.push_back({"count_order", AggFunc::kCount, nullptr});
  return std::make_unique<exec::HashAggregateOp>(
      std::move(filtered), std::vector<std::string>{"l_returnflag"},
      std::move(aggs));
}

OperatorPtr MakeRevenueQuery(const storage::TableStorage* lineitem,
                             int64_t date_lo, int64_t date_hi,
                             double discount_lo, double discount_hi,
                             double quantity_cap) {
  OperatorPtr scan = std::make_unique<exec::TableScanOp>(
      lineitem,
      std::vector<std::string>{"l_quantity", "l_extendedprice", "l_discount",
                               "l_shipdate"});
  exec::ExprPtr pred =
      And(And(Col("l_shipdate") >= LitDate(date_lo),
              Col("l_shipdate") < LitDate(date_hi)),
          And(And(Col("l_discount") >= Lit(discount_lo),
                  Col("l_discount") <= Lit(discount_hi)),
              Col("l_quantity") < Lit(quantity_cap)));
  OperatorPtr filtered =
      std::make_unique<exec::FilterOp>(std::move(scan), std::move(pred));
  std::vector<AggregateItem> aggs;
  aggs.push_back({"revenue", AggFunc::kSum,
                  Col("l_extendedprice") * Col("l_discount")});
  return std::make_unique<exec::HashAggregateOp>(
      std::move(filtered), std::vector<std::string>{}, std::move(aggs));
}

OperatorPtr MakeOrderRevenueQuery(const storage::TableStorage* orders,
                                  const storage::TableStorage* lineitem,
                                  int64_t order_date_cutoff) {
  OperatorPtr oscan = std::make_unique<exec::TableScanOp>(
      orders,
      std::vector<std::string>{"o_orderkey", "o_orderdate",
                               "o_shippriority"});
  OperatorPtr ofiltered = std::make_unique<exec::FilterOp>(
      std::move(oscan), Col("o_orderdate") < LitDate(order_date_cutoff));
  OperatorPtr lscan = std::make_unique<exec::TableScanOp>(
      lineitem,
      std::vector<std::string>{"l_orderkey", "l_extendedprice",
                               "l_discount"});
  // Probe with lineitem (large side), build on filtered orders.
  OperatorPtr join = std::make_unique<exec::HashJoinOp>(
      std::move(lscan), std::move(ofiltered), "l_orderkey", "o_orderkey");
  std::vector<AggregateItem> aggs;
  aggs.push_back({"revenue", AggFunc::kSum,
                  Col("l_extendedprice") * (Lit(1.0) - Col("l_discount"))});
  aggs.push_back({"count_items", AggFunc::kCount, nullptr});
  return std::make_unique<exec::HashAggregateOp>(
      std::move(join), std::vector<std::string>{"o_shippriority"},
      std::move(aggs));
}

sched::SessionManager::QueryFactory MakeServingFactory(
    const storage::TableStorage* orders,
    const storage::TableStorage* lineitem) {
  return [orders, lineitem](const sim::TraceRequest& req)
             -> StatusOr<sched::SessionManager::PlannedQuery> {
    const int shape = static_cast<int>(((req.query_class % 3) + 3) % 3);
    const int stream = static_cast<int>(((req.param % 8) + 8) % 8);
    const int64_t base = kDateEpochStart;
    const int64_t year = 365;

    auto columns = [](const storage::TableStorage* table,
                      std::initializer_list<const char*> names) {
      std::vector<int> idx;
      for (const char* name : names) {
        idx.push_back(table->schema().FindColumn(name));
      }
      return idx;
    };

    sched::SessionManager::PlannedQuery pq;
    switch (shape) {
      case 0:
        pq.root = MakePricingSummaryQuery(
            lineitem, kDateEpochStart + kDateRangeDays - 90 - 30 * stream);
        pq.scans.push_back(
            {lineitem,
             columns(lineitem, {"l_returnflag", "l_quantity", "l_extendedprice",
                                "l_discount", "l_shipdate"})});
        break;
      case 1: {
        const int64_t lo = base + (stream % 5) * year;
        pq.root = MakeRevenueQuery(lineitem, lo, lo + year, 0.02, 0.09,
                                   25.0 + stream);
        pq.scans.push_back(
            {lineitem, columns(lineitem, {"l_quantity", "l_extendedprice",
                                          "l_discount", "l_shipdate"})});
        break;
      }
      default:
        pq.root = MakeOrderRevenueQuery(
            orders, lineitem, base + kDateRangeDays / 2 + 60 * stream);
        pq.scans.push_back(
            {orders,
             columns(orders, {"o_orderkey", "o_orderdate", "o_shippriority"})});
        pq.scans.push_back(
            {lineitem, columns(lineitem, {"l_orderkey", "l_extendedprice",
                                          "l_discount"})});
        break;
    }
    return pq;
  };
}

std::vector<OperatorPtr> MakeThroughputStream(
    const storage::TableStorage* orders,
    const storage::TableStorage* lineitem, int stream_index) {
  std::vector<OperatorPtr> queries;
  const int64_t base = kDateEpochStart;
  const int64_t year = 365;
  const int64_t cutoff = base + kDateRangeDays - 90 - 30 * stream_index;
  queries.push_back(MakePricingSummaryQuery(lineitem, cutoff));
  const int64_t lo = base + (stream_index % 5) * year;
  queries.push_back(MakeRevenueQuery(lineitem, lo, lo + year, 0.02, 0.09,
                                     25.0 + stream_index));
  queries.push_back(MakeOrderRevenueQuery(
      orders, lineitem, base + kDateRangeDays / 2 + 60 * stream_index));
  return queries;
}

StatusOr<ThroughputResult> RunThroughputTest(
    power::HardwarePlatform* platform, const storage::TableStorage* orders,
    const storage::TableStorage* lineitem, int streams,
    const exec::ExecOptions& exec_options) {
  ThroughputResult result;
  const power::MeterSnapshot start = platform->meter()->Snapshot();
  const double t0 = platform->clock()->now();

  for (int s = 0; s < streams; ++s) {
    std::vector<OperatorPtr> queries =
        MakeThroughputStream(orders, lineitem, s);
    for (OperatorPtr& q : queries) {
      exec::ExecContext ctx(platform, exec_options);
      ECODB_ASSIGN_OR_RETURN(exec::QueryResultSet rs,
                             exec::CollectAll(q.get(), &ctx));
      const exec::QueryStats stats = ctx.Finish();
      result.rows_emitted += stats.rows_emitted;
      result.io_bytes += stats.io_bytes;
      result.cpu_core_seconds += stats.cpu_seconds;
      ++result.queries_completed;
    }
  }

  const power::MeterSnapshot end = platform->meter()->Snapshot();
  result.elapsed_seconds = platform->clock()->now() - t0;
  result.joules = platform->BreakdownBetween(start, end).it_joules;
  return result;
}

}  // namespace ecodb::tpch

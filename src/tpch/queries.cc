#include "tpch/queries.h"

#include <utility>

#include "exec/expr.h"

namespace ecodb::tpch {

namespace {

using exec::Col;
using exec::Lit;
using optimizer::JoinEdge;
using optimizer::QuerySpec;
using optimizer::TableAlternatives;

TableAlternatives Rel(const std::string& name, const TpchTable& table,
                      std::vector<std::string> columns,
                      exec::ExprPtr filter = nullptr) {
  TableAlternatives rel;
  rel.name = name;
  rel.variants = {table.storage.get()};
  rel.columns = std::move(columns);
  rel.filter = std::move(filter);
  rel.stats = &table.stats;
  return rel;
}

}  // namespace

QuerySpec MakeSegmentRevenueSpec(const TpchDatabase& db,
                                 const std::string& segment,
                                 int64_t order_date_cutoff) {
  QuerySpec spec;
  spec.relations = {
      Rel("customer", db.customer, {"c_custkey", "c_mktsegment"},
          Col("c_mktsegment") == Lit(segment.c_str())),
      Rel("orders", db.orders, {"o_orderkey", "o_custkey", "o_orderdate"},
          Col("o_orderdate") < Lit(order_date_cutoff)),
      Rel("lineitem", db.lineitem, {"l_orderkey", "l_extendedprice"}),
  };
  spec.edges = {
      {0, 1, "c_custkey", "o_custkey"},
      {1, 2, "o_orderkey", "l_orderkey"},
  };
  return spec;
}

QuerySpec MakePartSupplierProfitSpec(const TpchDatabase& db,
                                     int64_t max_part_size) {
  QuerySpec spec;
  spec.relations = {
      Rel("part", db.part, {"p_partkey", "p_size"},
          Col("p_size") <= Lit(max_part_size)),
      Rel("partsupp", db.partsupp,
          {"ps_partkey", "ps_suppkey", "ps_supplycost"}),
      Rel("supplier", db.supplier, {"s_suppkey", "s_nationkey"}),
      Rel("lineitem", db.lineitem,
          {"l_partkey", "l_suppkey", "l_quantity", "l_extendedprice"}),
  };
  spec.edges = {
      {0, 1, "p_partkey", "ps_partkey"},
      {1, 2, "ps_suppkey", "s_suppkey"},
      // Two edges between PARTSUPP and LINEITEM: whichever the enumerator
      // does not pick as the primary hash key becomes a residual filter.
      {1, 3, "ps_partkey", "l_partkey"},
      {1, 3, "ps_suppkey", "l_suppkey"},
  };
  return spec;
}

QuerySpec MakeLocalSupplierVolumeSpec(const TpchDatabase& db,
                                      const std::string& segment,
                                      int64_t min_part_size) {
  QuerySpec spec;
  spec.relations = {
      Rel("customer", db.customer, {"c_custkey", "c_mktsegment"},
          Col("c_mktsegment") == Lit(segment.c_str())),
      Rel("orders", db.orders, {"o_orderkey", "o_custkey"}),
      Rel("lineitem", db.lineitem,
          {"l_orderkey", "l_partkey", "l_suppkey", "l_extendedprice"}),
      Rel("supplier", db.supplier, {"s_suppkey", "s_nationkey"}),
      Rel("part", db.part, {"p_partkey", "p_size"},
          Col("p_size") >= Lit(min_part_size)),
  };
  spec.edges = {
      {0, 1, "c_custkey", "o_custkey"},
      {1, 2, "o_orderkey", "l_orderkey"},
      {2, 3, "l_suppkey", "s_suppkey"},
      {2, 4, "l_partkey", "p_partkey"},
  };
  return spec;
}

QuerySpec MakePromoRevenueSpec(const TpchDatabase& db, int64_t ship_date_lo,
                               int64_t ship_date_hi, uint64_t top_brands) {
  QuerySpec spec;
  spec.relations = {
      Rel("part", db.part, {"p_partkey", "p_brand"}),
      Rel("lineitem", db.lineitem,
          {"l_orderkey", "l_partkey", "l_extendedprice", "l_shipdate"},
          exec::And(Col("l_shipdate") >= Lit(ship_date_lo),
                    Col("l_shipdate") < Lit(ship_date_hi))),
      Rel("orders", db.orders, {"o_orderkey", "o_totalprice"}),
  };
  spec.edges = {
      {0, 1, "p_partkey", "l_partkey"},
      {1, 2, "l_orderkey", "o_orderkey"},
  };
  spec.group_by = {"p_brand"};
  spec.aggregates = {
      {"revenue", exec::AggFunc::kSum, Col("l_extendedprice")},
      {"line_count", exec::AggFunc::kCount, nullptr},
  };
  spec.order_by = {{"revenue", /*ascending=*/false}};
  spec.limit = top_brands;
  return spec;
}

std::vector<JoinQueryShape> MakeJoinQueryShapes(const TpchDatabase& db) {
  std::vector<JoinQueryShape> shapes;
  shapes.push_back(
      {"segment_revenue_q3", MakeSegmentRevenueSpec(db, "BUILDING", 1200)});
  shapes.push_back(
      {"part_supplier_profit_q9", MakePartSupplierProfitSpec(db, 5)});
  shapes.push_back({"local_supplier_volume_q5",
                    MakeLocalSupplierVolumeSpec(db, "MACHINERY", 40)});
  shapes.push_back(
      {"promo_revenue_q14", MakePromoRevenueSpec(db, 900, 960, 5)});
  return shapes;
}

}  // namespace ecodb::tpch

// Durability walkthrough: WAL, group commit, checkpointing, crash, recover.
//
// Demonstrates the txn substrate end to end, including the Section 5.2
// energy knob (group-commit batching) and a simulated crash that tears the
// log mid-record.
//
//   $ ./build/examples/crash_recovery

#include <cstdio>
#include <string>

#include "power/energy_meter.h"
#include "sim/clock.h"
#include "storage/ssd.h"
#include "txn/checkpoint.h"
#include "txn/recovery.h"
#include "txn/wal.h"

using namespace ecodb;  // NOLINT: example brevity

namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

// Forward-processes one insert: apply to the live pages, then log it.
void Insert(txn::PageStore* live, txn::WalManager* wal, txn::TxnId t,
            storage::PageId page, const std::string& payload) {
  txn::LogRecord rec;
  rec.txn_id = t;
  rec.type = txn::LogRecordType::kInsert;
  rec.page = page;
  rec.slot = *live->GetOrCreate(page)->Insert(Bytes(payload));
  rec.after = Bytes(payload);
  wal->Append(std::move(rec));
}

}  // namespace

int main() {
  sim::SimClock clock;
  power::EnergyMeter meter(&clock);
  storage::SsdDevice log_dev("log-ssd", power::SsdSpec{}, &meter);
  storage::SsdDevice data_dev("data-ssd", power::SsdSpec{}, &meter);

  txn::WalConfig wal_config;
  wal_config.group_commit_size = 8;  // the Section 5.2 batching factor
  txn::WalManager wal(wal_config, &clock, &log_dev);
  txn::Checkpointer checkpointer(&clock, &wal, &data_dev);
  txn::PageStore live;

  // --- Day 1: 100 committed transactions, then a checkpoint.
  for (txn::TxnId t = 1; t <= 100; ++t) {
    Insert(&live, &wal, t, {1, static_cast<uint32_t>(t % 4)},
           "order-" + std::to_string(t));
    (void)wal.Commit(t).value();
  }
  (void)wal.Flush().value();
  auto cp_lsn = checkpointer.Take(live);
  std::printf("checkpoint at LSN %llu after 100 txns "
              "(%zu pages, %zu log bytes, %llu flushes so far)\n",
              static_cast<unsigned long long>(*cp_lsn), live.page_count(),
              wal.durable_bytes().size(),
              static_cast<unsigned long long>(wal.stats().flushes));

  // --- Day 2: 20 more commits, plus one transaction caught mid-flight.
  for (txn::TxnId t = 101; t <= 120; ++t) {
    Insert(&live, &wal, t, {1, static_cast<uint32_t>(t % 4)},
           "order-" + std::to_string(t));
    (void)wal.Commit(t).value();
  }
  Insert(&live, &wal, 999, {1, 0}, "uncommitted-work");
  (void)wal.Flush().value();  // record is durable, its commit never happens

  // --- Crash: the machine dies; we additionally tear the last 3 bytes off
  // the log (a torn sector).
  std::vector<uint8_t> surviving_log = wal.durable_bytes();
  surviving_log.resize(surviving_log.size() - 3);
  std::printf("\n*** crash: %zu log bytes survive (tail torn)\n\n",
              surviving_log.size());

  // --- Restart: recover = checkpoint image + truncated log replay.
  auto recovered = checkpointer.Recover(surviving_log);
  if (!recovered.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 recovered.status().ToString().c_str());
    return 1;
  }

  // Verify: committed work survives, the uncommitted insert does not.
  size_t live_records = 0;
  recovered->ForEach([&](storage::PageId, const storage::Page& page) {
    live_records += page.live_records();
  });
  std::printf("recovered %zu pages holding %zu records "
              "(expected 120 committed inserts)\n",
              recovered->page_count(), live_records);

  const std::vector<uint8_t> replay_suffix =
      checkpointer.TruncatedLog(surviving_log);
  std::printf("recovery replayed only %zu bytes of log thanks to the "
              "checkpoint (vs %zu total)\n",
              replay_suffix.size(), surviving_log.size());

  std::printf("\nlog-device energy for the whole run: %.3f J across %llu "
              "flushes (group commit K=%d)\n",
              meter.ChannelJoules(log_dev.channel()),
              static_cast<unsigned long long>(wal.stats().flushes),
              wal_config.group_commit_size);
  return live_records == 120 ? 0 : 1;
}

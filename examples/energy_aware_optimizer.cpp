// Energy-aware optimization demo: the same query, three objectives.
//
// Recreates the paper's Section 3.2 situation inside the engine: a table
// exists in an uncompressed and a compressed physical variant on flash
// storage behind a power-hungry CPU. Watch the planner pick the compressed
// variant for performance, the uncompressed one for energy, and split the
// difference at an intermediate lambda — then verify with the meter that
// the measured Joules actually follow.
//
//   $ ./build/examples/energy_aware_optimizer

#include <cstdio>

#include "core/ecodb.h"
#include "tpch/generator.h"
#include "util/units.h"

int main() {
  ecodb::core::DbConfig config;
  config.preset = ecodb::core::PlatformPreset::kFlashScan;  // 90 W CPU
  config.ssd_count = 1;
  // Dop candidates come from the platform's core count by default (a single
  // ladder entry here: the FlashScan preset models one core).
  config.ssd_spec.read_bw_bytes_per_s = 30e6;  // modest flash, scan-bound
  // Decode weight calibrated the way the Figure 2 bench is (see
  // EXPERIMENTS.md); makes the compressed scan clearly CPU-bound.
  config.cost_params.costs.decode_scale = 60.0;
  config.exec_options.costs.decode_scale = 60.0;

  auto db_or = ecodb::core::EcoDb::Open(config);
  if (!db_or.ok()) return 1;
  auto db = std::move(db_or).value();

  // ORDERS in two physical designs.
  ecodb::tpch::TpchConfig tpch_config;
  tpch_config.scale_factor = 10.0;  // 150k orders
  if (!db->CreateTable("orders", ecodb::tpch::OrdersSchema()).ok()) return 1;
  if (!db->Load("orders", ecodb::tpch::GenerateOrders(tpch_config)).ok()) {
    return 1;
  }
  if (!db->CloneWithCompression(
            "orders", "orders_compressed",
            {{"o_orderkey", ecodb::storage::CompressionKind::kDelta},
             {"o_custkey", ecodb::storage::CompressionKind::kFor},
             {"o_orderdate", ecodb::storage::CompressionKind::kFor},
             {"o_orderpriority",
              ecodb::storage::CompressionKind::kDictionary}})
           .ok()) {
    return 1;
  }

  ecodb::optimizer::QuerySpec spec;
  spec.left.name = "orders";
  spec.left.variants = {*db->table("orders"), *db->table("orders_compressed")};
  spec.left.columns = {"o_orderkey", "o_custkey", "o_totalprice",
                       "o_orderdate", "o_orderpriority"};

  struct Case {
    const char* label;
    ecodb::optimizer::Objective objective;
  };
  const Case cases[] = {
      {"performance (lambda=0)", ecodb::optimizer::Objective::Performance()},
      {"balanced (lambda=0.05 s/J)",
       ecodb::optimizer::Objective::Balanced(0.05)},
      {"energy (lambda->inf)", ecodb::optimizer::Objective::Energy()},
  };

  std::printf("%-28s %-14s %10s %12s\n", "objective", "variant chosen",
              "time", "energy");
  for (const Case& c : cases) {
    auto outcome = db->Execute(spec, c.objective);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", c.label,
                   outcome.status().ToString().c_str());
      return 1;
    }
    std::printf("%-28s %-14s %10s %12s\n", c.label,
                outcome->plan->left_variant == 0 ? "uncompressed"
                                                 : "compressed",
                ecodb::FormatSeconds(outcome->stats.elapsed_seconds).c_str(),
                ecodb::FormatJoules(outcome->stats.Joules()).c_str());
  }

  std::printf(
      "\nThe compressed variant finishes sooner; the uncompressed one uses\n"
      "fewer Joules because the 90 W CPU costs more than the flash drives\n"
      "save — the paper's Figure 2 tradeoff, chosen automatically.\n");
  return 0;
}

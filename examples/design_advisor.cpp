// Physical design advisor demo: the Section 3.1 diminishing-returns sweep
// and the per-column compression advisor, both driven through the public
// API.
//
//   $ ./build/examples/design_advisor

#include <cstdio>
#include <memory>

#include "advisor/design_advisor.h"
#include "power/platform.h"
#include "storage/disk_array.h"
#include "storage/ssd.h"
#include "storage/hdd.h"
#include "tpch/generator.h"
#include "tpch/workload.h"

int main() {
  using namespace ecodb;  // NOLINT: example brevity

  // ---------------------------------------------------------------- sweep
  std::printf("1) How many disks should this workload run on?\n\n");

  tpch::TpchConfig config;
  config.scale_factor = 1.0;
  const auto order_cols = tpch::GenerateOrders(config);
  const auto line_cols = tpch::GenerateLineitem(config);

  auto runner = [&](int disks) {
    auto platform = power::MakeDl785Platform();
    platform->SetActiveTraysAt(0.0, (disks + 15) / 16);
    std::vector<std::unique_ptr<storage::StorageDevice>> members;
    power::HddSpec hdd;
    hdd.sustained_bw_bytes_per_s = 2e6;  // volumetric scale-down
    for (int i = 0; i < disks; ++i) {
      members.push_back(std::make_unique<storage::HddDevice>(
          "d" + std::to_string(i), hdd, platform->meter()));
    }
    storage::ArraySpec array_spec;
    array_spec.stripe_skew_alpha = 0.011;
    auto array_or = storage::DiskArray::Create("array", array_spec,
                                               std::move(members));
    if (!array_or.ok()) std::abort();
    storage::DiskArray& array = **array_or;
    storage::TableStorage orders(1, tpch::OrdersSchema(),
                                 storage::TableLayout::kColumn, &array);
    storage::TableStorage lineitem(2, tpch::LineitemSchema(),
                                   storage::TableLayout::kColumn, &array);
    (void)orders.Append(order_cols);
    (void)lineitem.Append(line_cols);
    auto result = tpch::RunThroughputTest(platform.get(), &orders, &lineitem,
                                          2, exec::ExecOptions{});
    advisor::SweepPoint p;
    p.seconds = result->elapsed_seconds;
    p.joules = result->joules;
    p.work_units = result->queries_completed;
    return p;
  };

  const std::vector<int> candidates = {8, 16, 32, 64, 128};
  const advisor::SweepAnalysis analysis =
      advisor::AnalyzeSweep(candidates, runner);
  std::printf("   disks   time(s)   queries/kJ\n");
  for (const advisor::SweepPoint& p : analysis.points) {
    std::printf("   %5d   %7.1f   %10.3f\n", p.config, p.seconds,
                p.EnergyEfficiency() * 1e3);
  }
  std::printf("\n   fastest: %d disks; most energy-efficient: %d disks\n",
              analysis.BestPerformance().config,
              analysis.BestEfficiency().config);
  std::printf("   the efficiency point gives up %.0f%% performance for "
              "+%.0f%% efficiency\n\n",
              analysis.PerformanceDropAtPeakEfficiency() * 100.0,
              analysis.EfficiencyGainVsPeakPerf() * 100.0);

  // ----------------------------------------------------------- compression
  std::printf("2) Which columns of LINEITEM should be compressed?\n\n");
  auto platform = power::MakeProportionalPlatform();
  storage::SsdDevice ssd("ssd", power::SsdSpec{}, platform->meter());
  storage::TableStorage lineitem(1, tpch::LineitemSchema(),
                                 storage::TableLayout::kColumn, &ssd);
  if (!lineitem.Append(line_cols).ok()) return 1;

  optimizer::CostModel model(platform.get(), optimizer::CostModelParams{});
  auto rec = advisor::RecommendCompression(
      lineitem,
      {storage::CompressionKind::kRle, storage::CompressionKind::kDelta,
       storage::CompressionKind::kFor},
      &model, optimizer::Objective::Balanced(0.05));
  if (!rec.ok()) return 1;

  std::printf("   %-16s %-12s %s\n", "column", "codec", "ratio");
  for (const advisor::CompressionChoice& c : rec->choices) {
    std::printf("   %-16s %-12s %.2f\n", c.column.c_str(),
                storage::CompressionKindName(c.kind), c.ratio);
  }
  std::printf("\n   projected full-scan cost with this design: %.3f s, "
              "%.1f J\n", rec->total_scan_cost.seconds,
              rec->total_scan_cost.joules);
  return 0;
}

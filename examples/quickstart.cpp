// Quickstart: open an EcoDB instance, load a table, run a query, and read
// the per-device energy bill.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/ecodb.h"
#include "util/units.h"

using ecodb::exec::Col;
using ecodb::exec::Lit;

int main() {
  // 1. Describe the machine: an energy-proportional server with one SSD.
  ecodb::core::DbConfig config;
  config.preset = ecodb::core::PlatformPreset::kProportional;
  config.ssd_count = 1;
  // The planner enumerates the dop ladder derived from the platform's core
  // count by default (set config.derive_dop_ladder = false to hand-pick
  // degrees of parallelism via planner_options.dops).

  auto db_or = ecodb::core::EcoDb::Open(config);
  if (!db_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 db_or.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(db_or).value();

  // 2. Create and load a table.
  ecodb::catalog::Schema schema({
      {"order_id", ecodb::catalog::DataType::kInt64, 8},
      {"region", ecodb::catalog::DataType::kString, 6},
      {"amount", ecodb::catalog::DataType::kDouble, 8},
  });
  if (!db->CreateTable("sales", schema).ok()) return 1;

  std::vector<ecodb::storage::ColumnData> cols(3);
  cols[0].type = ecodb::catalog::DataType::kInt64;
  cols[1].type = ecodb::catalog::DataType::kString;
  cols[2].type = ecodb::catalog::DataType::kDouble;
  const char* regions[] = {"east", "west", "north", "south"};
  for (int i = 0; i < 100000; ++i) {
    cols[0].i64.push_back(i);
    cols[1].str.push_back(regions[i % 4]);
    cols[2].f64.push_back(100.0 + (i % 997));
  }
  if (!db->Load("sales", cols).ok()) return 1;

  // 3. Query: total revenue per region for big-ticket sales. The planner
  //    optimizes `time + lambda * energy`; lambda=0.01 means one Joule is
  //    worth 10 ms of latency to us.
  ecodb::optimizer::QuerySpec spec;
  spec.left.name = "sales";
  spec.left.variants = {*db->table("sales")};
  spec.left.filter = Col("amount") > Lit(600.0);
  spec.group_by = {"region"};
  ecodb::exec::AggregateItem revenue;
  revenue.name = "revenue";
  revenue.func = ecodb::exec::AggFunc::kSum;
  revenue.input = Col("amount");
  spec.aggregates.push_back(revenue);

  auto outcome =
      db->Execute(spec, ecodb::optimizer::Objective::Balanced(0.01));
  if (!outcome.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  // 4. Results.
  std::printf("revenue by region (amount > 600):\n");
  for (const auto& batch : outcome->rows.batches) {
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      std::printf("  %-6s %12.2f\n", batch.GetValue(r, 0).str.c_str(),
                  batch.GetValue(r, 1).f64);
    }
  }

  // 5. The energy bill — what a wall meter cannot tell you.
  const ecodb::exec::QueryStats& stats = outcome->stats;
  std::printf("\nquery took %s using %s (%.0f rows/J)\n",
              ecodb::FormatSeconds(stats.elapsed_seconds).c_str(),
              ecodb::FormatJoules(stats.Joules()).c_str(),
              stats.RowsPerJoule());
  std::printf("per-device breakdown:\n");
  for (const auto& entry : stats.energy.entries) {
    if (entry.joules <= 0) continue;
    std::printf("  %-8s %10s  (busy %s)\n", entry.channel.c_str(),
                ecodb::FormatJoules(entry.joules).c_str(),
                ecodb::FormatSeconds(entry.busy_seconds).c_str());
  }
  std::printf("\nchosen plan: %s\n",
              outcome->plan->Describe(spec).c_str());
  return 0;
}

// Consolidation demo (Section 4.2): batching + spin-down + migration
// working together on a simulated timeline.
//
// A sparse stream of lookups hits a two-tier store (15K disk + SSD). We
// run the same day three ways:
//   a) baseline        — requests served on arrival, disk always spinning
//   b) batched         — requests held in 5-minute windows, break-even
//                        spin-down policy parks the disk between bursts
//   c) consolidated    — the cold partition is migrated to the SSD first,
//                        and the disk powers down for good
//
//   $ ./build/examples/consolidation_demo

#include <cstdio>

#include "power/energy_meter.h"
#include "sched/batching.h"
#include "sched/consolidation.h"
#include "sched/spin_down.h"
#include "sim/clock.h"
#include "sim/event_queue.h"
#include "storage/hdd.h"
#include "storage/ssd.h"
#include "storage/table_storage.h"
#include "util/random.h"

namespace {

constexpr double kDay = 6.0 * 3600;   // a six-hour shift
constexpr int kRequests = 120;
constexpr uint64_t kReadBytes = 4 << 20;

struct Scenario {
  double disk_joules = 0;
  double ssd_joules = 0;
  double p95_latency = 0;
  int spin_downs = 0;
  double Total() const { return disk_joules + ssd_joules; }
};

Scenario Run(bool batch, bool migrate_first) {
  ecodb::sim::SimClock clock;
  ecodb::power::EnergyMeter meter(&clock);
  ecodb::sim::EventQueue events(&clock);
  ecodb::storage::HddDevice hdd("hdd", ecodb::power::HddSpec{}, &meter);
  ecodb::storage::SsdDevice ssd("ssd", ecodb::power::SsdSpec{}, &meter);

  // The cold partition: lives on the disk unless migrated.
  ecodb::catalog::Schema schema(
      {ecodb::catalog::Column{"v", ecodb::catalog::DataType::kInt64, 8}});
  ecodb::storage::TableStorage partition(
      1, schema, ecodb::storage::TableLayout::kColumn, &hdd);
  std::vector<ecodb::storage::ColumnData> cols(1);
  cols[0].type = ecodb::catalog::DataType::kInt64;
  for (int i = 0; i < 500000; ++i) cols[0].i64.push_back(i);
  (void)partition.Append(cols);

  if (migrate_first) {
    const auto decision = ecodb::sched::ConsolidationManager::Evaluate(
        hdd, ssd, partition.TotalBytes(), kDay);
    std::printf("   advisor: migration %s (move %.0f J, save %.0f J over "
                "the horizon)\n",
                decision.migrate ? "recommended" : "not recommended",
                decision.migration_joules, decision.savings_joules);
    (void)ecodb::sched::ConsolidationManager::Migrate(&partition, &ssd, &clock).value();
  }

  ecodb::sched::DiskPowerManager power_mgr(
      &events, &hdd,
      batch || migrate_first ? ecodb::sched::SpinDownPolicy::kBreakEven
                             : ecodb::sched::SpinDownPolicy::kNever);
  ecodb::sched::BatchingScheduler scheduler(
      &events,
      ecodb::sched::BatchingConfig{batch ? 300.0 : 0.0, SIZE_MAX});

  ecodb::Rng rng(77);
  double t = clock.now();
  for (int i = 0; i < kRequests; ++i) {
    t += rng.Exponential(kDay / kRequests);
    events.ScheduleAt(t, [&] {
      scheduler.Submit([&] {
        auto* device = partition.device();
        const ecodb::storage::IoResult r =
            device->SubmitRead(clock.now(), kReadBytes, false).value();
        power_mgr.NotifyAccessEnd(r.completion_time);
        return r.completion_time;
      });
    });
  }
  events.RunAll();
  clock.AdvanceTo(std::max(clock.now(), kDay));

  Scenario s;
  s.disk_joules = meter.ChannelJoules(hdd.channel());
  s.ssd_joules = meter.ChannelJoules(ssd.channel());
  s.p95_latency = scheduler.latency().Percentile(0.95);
  s.spin_downs = power_mgr.spin_downs();
  return s;
}

}  // namespace

int main() {
  std::printf("Serving 120 lookups over six hours from a cold partition:\n\n");

  std::printf("a) baseline (no batching, disk always on)\n");
  const Scenario base = Run(/*batch=*/false, /*migrate_first=*/false);
  std::printf("b) batched (5-minute windows + break-even spin-down)\n");
  const Scenario batched = Run(/*batch=*/true, /*migrate_first=*/false);
  std::printf("c) consolidated (migrate to SSD, park the disk)\n");
  const Scenario consolidated = Run(/*batch=*/false, /*migrate_first=*/true);

  std::printf("\n%-14s %12s %12s %12s %10s\n", "scenario", "disk kJ",
              "ssd kJ", "total kJ", "p95 lat");
  auto row = [](const char* name, const Scenario& s) {
    std::printf("%-14s %12.1f %12.1f %12.1f %9.1fs\n", name,
                s.disk_joules / 1e3, s.ssd_joules / 1e3, s.Total() / 1e3,
                s.p95_latency);
  };
  row("baseline", base);
  row("batched", batched);
  row("consolidated", consolidated);

  std::printf("\nbatching saved %.0f%% of the baseline energy at the cost "
              "of queueing latency;\nconsolidation saved %.0f%% and keeps "
              "lookups fast (they hit the SSD).\n",
              (1.0 - batched.Total() / base.Total()) * 100.0,
              (1.0 - consolidated.Total() / base.Total()) * 100.0);
  return 0;
}

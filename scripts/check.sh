#!/usr/bin/env bash
# Full local CI sweep: default build + tests, the bench-regression smoke
# gate, the sanitizer matrix (tsan/asan/ubsan presets), the energy-accounting
# linter, and — when clang-tidy is installed — a clang-tidy pass over src/.
#
# Usage: scripts/check.sh [-j N]
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)
while getopts "j:" opt; do
  case "$opt" in
    j) jobs="$OPTARG" ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
  esac
done

run() {
  echo "==> $*"
  "$@"
}

# 1. Default build + full test suite (includes the lint-labelled tests).
run cmake --preset default
run cmake --build --preset default -j "$jobs"
run ctest --preset default -j "$jobs"

# 2. Bench-regression smoke gate against the committed BENCH_engine.json.
#    Smoke mode uses few reps and a wide wall tolerance, so on shared CI
#    hosts it only trips on gross slowdowns (and on any Joules drift, which
#    is deterministic at every tolerance).
run ./scripts/bench_regress.sh --smoke

# 3. Serving-core smoke: the multi-session sweep's shape checks enforce the
#    DESIGN §12 contract (bills conserve, consolidation saves at dense load,
#    seeded traces replay bit-exactly) end to end.
run ./build/bench/serving_sweep --smoke

# 3b. Join-order smoke: the lambda sweep's shape checks enforce the DESIGN
#     §13 contract (some shape reorders as lambda grows, flips buy Joules
#     with seconds, replans are deterministic).
run ./build/bench/ablate_join_order --smoke

# 3c. Overload smoke: the burst sweep's shape checks enforce the DESIGN §14
#     contract (deadline kills and sheds keep their Joules on the bill, the
#     power-cap ladder engages, books balance at every load point).
run ./build/bench/overload_sweep --smoke

# 4. Sanitizer matrix. tsan filters to the concurrency-sensitive suites;
#    asan and ubsan run everything. The fault-injection, serving, overload,
#    and join-differential suites (`-L 'faults|serving|overload|joins'`)
#    then re-run explicitly under each sanitizer so retry/degraded-mode,
#    admission, cancellation, and join-order-equivalence regressions are
#    reported by name even when a full run is noisy.
for san in tsan asan ubsan; do
  run cmake --preset "$san"
  run cmake --build --preset "$san" -j "$jobs"
  run ctest --preset "$san" -j "$jobs"
  run ctest --test-dir "build-$san" -L 'faults|serving|overload|joins' \
      --output-on-failure -j "$jobs"
done

# 5. Energy-accounting linter over src/ (also covered by `ctest -L lint`,
#    but run it standalone so failures print the findings directly).
#    Full EC1–EC11 sweep: the JSON report is persisted for tooling, stale
#    baseline entries (fingerprints no finding matches anymore) fail the
#    run, and --timings keeps the cross-TU pass cost visible as src/ grows.
echo "==> ecodb-lint --format json src (persisted to build/lint-report.json)"
./build/tools/lint/ecodb-lint --root . --baseline tools/lint/lint-baseline.txt \
    --fail-stale --timings --format json src > build/lint-report.json
run ./build/tools/lint/ecodb-lint --root . --baseline tools/lint/lint-baseline.txt \
    --fail-stale src

# 6. clang-tidy, when available (the checks live in .clang-tidy).
if command -v clang-tidy >/dev/null 2>&1; then
  mapfile -t tidy_sources < <(find src -name '*.cc' | sort)
  run clang-tidy -p build "${tidy_sources[@]}"
else
  echo "==> clang-tidy not installed; skipping (checks defined in .clang-tidy)"
fi

echo "All checks passed."

#!/usr/bin/env bash
# Bench-regression gate: runs the fixed perf suite (bench/perf_regress) and
# compares it against the committed baseline BENCH_engine.json, failing on a
# >10% wall-time (normalized) or Joules/query regression. Also proves the
# comparator itself trips, by re-running with an inflated-measurement
# selftest and requiring a non-zero exit.
#
# Usage: scripts/bench_regress.sh [--smoke] [--write] [--no-selftest]
#   --smoke        fewer reps + wider wall tolerance (what check.sh runs)
#   --write        refresh BENCH_engine.json instead of checking (see
#                  EXPERIMENTS.md for the baseline-refresh policy)
#   --no-selftest  skip the comparator selftest
set -euo pipefail

cd "$(dirname "$0")/.."

baseline=BENCH_engine.json
bin=build/bench/perf_regress
mode=--check
smoke=()
selftest=1

for arg in "$@"; do
  case "$arg" in
    --smoke) smoke=(--smoke) ;;
    --write) mode=--write ;;
    --no-selftest) selftest=0 ;;
    *) echo "usage: $0 [--smoke] [--write] [--no-selftest]" >&2; exit 2 ;;
  esac
done

if [[ ! -x "$bin" ]]; then
  echo "==> $bin missing; building it"
  cmake --preset default >/dev/null
  cmake --build --preset default --target perf_regress -j "$(nproc 2>/dev/null || echo 2)"
fi

echo "==> perf_regress $mode ${smoke[*]:-} $baseline"
if [[ "$mode" == --check ]]; then
  # A real regression reproduces on every attempt; host-load noise does not.
  # Retry up to 3 times and fail only if every attempt fails.
  attempts=3
  ok=0
  for ((i = 1; i <= attempts; ++i)); do
    if "$bin" "$mode" "${smoke[@]}" "$baseline"; then
      ok=1
      break
    fi
    echo "==> check attempt $i/$attempts failed; retrying"
  done
  if [[ "$ok" != 1 ]]; then
    echo "FAIL: regression reproduced on $attempts consecutive attempts" >&2
    exit 1
  fi
else
  "$bin" "$mode" "${smoke[@]}" "$baseline"
fi

if [[ "$mode" == --check && "$selftest" == 1 ]]; then
  # A comparator that cannot fail is not a gate: inflate measurements 2x and
  # require the check to exit non-zero.
  echo "==> comparator selftest (expecting failure)"
  if ECODB_PERF_REGRESS_SELFTEST=2.0 "$bin" --check "${smoke[@]}" "$baseline" >/dev/null; then
    echo "FAIL: comparator passed inflated measurements" >&2
    exit 1
  fi
  echo "==> comparator selftest tripped as expected"
fi

echo "bench regression gate: PASS"

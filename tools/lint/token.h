// Shared lexical layer for ecodb-lint: the tokenizer, line-directive
// scanner (NOLINT-ECODB / ecodb-lint: annotations), and the name predicates
// that both the per-file scanner (EC1–EC7, lint.cc) and the cross-TU
// analyzer (EC8–EC10, index.cc / interproc.cc) agree on.
//
// Keeping one tokenizer is load-bearing: a finding's line number and the
// suppression that excuses it must come from the same lexical model, or a
// NOLINT would drift off its statement between passes.

#ifndef ECODB_TOOLS_LINT_TOKEN_H_
#define ECODB_TOOLS_LINT_TOKEN_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace ecodb::lint {

struct Token {
  std::string text;
  int line = 0;
  bool ident = false;  // identifier or keyword (vs punctuation/number)
};

/// Comments, string/char literals, and preprocessor lines carry no contract
/// semantics (annotations are collected in a separate line pass), so the
/// token stream drops them. `::` is one token so qualified names and
/// range-for colons can't be confused.
std::vector<Token> Tokenize(const std::string& src);

std::string Trim(const std::string& s);

// --- Line-level annotations -------------------------------------------------

enum class Region { kNone, kWorker, kCoordinator };

struct LineDirectives {
  // line -> rules suppressed on it ("*" = all)
  std::map<int, std::set<std::string>> nolint;
  // line -> region annotation taking effect there
  std::map<int, Region> region;
  std::set<int> worker_partial;  // lines carrying the worker-partial mark
  bool has_worker_region = false;

  /// True when `rule` is suppressed on `line`.
  bool Suppressed(const std::string& rule, int line) const {
    auto it = nolint.find(line);
    return it != nolint.end() &&
           (it->second.count("*") > 0 || it->second.count(rule) > 0);
  }
};

/// Scans annotation comments. A NOLINT-ECODB on a code line covers that
/// line and, when the statement continues past it (the code does not end in
/// `;`, `{`, or `}`), every continuation line until the statement closes; a
/// comment-only NOLINT line shields the statement that starts below it with
/// the same continuation rule.
LineDirectives ScanDirectives(const std::string& src);

// --- Shared name predicates -------------------------------------------------

/// Entropy / wall-clock identifiers banned by EC5 (textually, in src/exec)
/// and EC8 (transitively, from any exec/sched entry point).
const std::set<std::string>& BannedEntropyNames();

bool IsUnorderedTypeName(const std::string& t);

bool IsStatementKeyword(const std::string& t);

/// Names that perform energy settlement (EC2 placement, EC9 under-lock):
/// Charge*, Settle*, MergeWork, Finish.
bool IsSettlementName(const std::string& t);

/// Collects names declared with an unordered container type in the token
/// stream (the engine behind HarvestUnorderedNames and the index's per-file
/// unordered-name sets).
std::set<std::string> CollectUnorderedNames(const std::vector<Token>& tokens);

}  // namespace ecodb::lint

#endif  // ECODB_TOOLS_LINT_TOKEN_H_

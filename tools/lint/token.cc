#include "token.h"

#include <cctype>
#include <sstream>

namespace ecodb::lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Strips the trailing // comment from a source line (naive: the sources
/// never hide `//` inside string literals on annotated lines).
std::string CodePart(const std::string& line) {
  const size_t comment = line.find("//");
  return Trim(comment == std::string::npos ? line : line.substr(0, comment));
}

/// A statement is closed on a line whose code ends in `;`, `{`, or `}` —
/// anything else (a trailing `(`, `,`, operator, or bare name) continues
/// onto the next line, and a suppression granted to the statement must
/// travel with it.
bool StatementContinues(const std::string& code) {
  if (code.empty()) return false;
  const char last = code.back();
  return last != ';' && last != '{' && last != '}';
}

}  // namespace

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::vector<Token> Tokenize(const std::string& src) {
  std::vector<Token> out;
  int line = 1;
  size_t i = 0;
  const size_t n = src.size();
  bool at_line_start = true;
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#' && at_line_start) {  // preprocessor directive: skip line(s)
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    at_line_start = false;
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = std::min(n, i + 2);
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) ++i;
        if (src[i] == '\n') ++line;  // unterminated; keep line count honest
        ++i;
      }
      ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(src[j])) ++j;
      out.push_back({src.substr(i, j - i), line, true});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < n && (IsIdentChar(src[j]) || src[j] == '.')) ++j;
      out.push_back({src.substr(i, j - i), line, false});
      i = j;
      continue;
    }
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      out.push_back({"::", line, false});
      i += 2;
      continue;
    }
    if ((c == '-' || c == '=') && i + 1 < n && src[i + 1] == '>') {
      out.push_back({std::string(1, c) + ">", line, false});
      i += 2;
      continue;
    }
    out.push_back({std::string(1, c), line, false});
    ++i;
  }
  return out;
}

LineDirectives ScanDirectives(const std::string& src) {
  LineDirectives d;
  std::vector<std::string> lines;
  {
    std::istringstream in(src);
    std::string text;
    while (std::getline(in, text)) lines.push_back(text);
  }

  // Caps runaway propagation if a statement never visibly closes (e.g. an
  // unterminated macro table); real statements close within a few lines.
  constexpr int kMaxContinuationLines = 50;

  int line = 0;
  for (const std::string& text : lines) {
    ++line;
    const size_t comment = text.find("//");
    if (comment == std::string::npos) continue;
    const std::string body = text.substr(comment + 2);
    const bool standalone = Trim(text.substr(0, comment)).empty();

    const size_t nl = body.find("NOLINT-ECODB");
    if (nl != std::string::npos) {
      std::set<std::string> rules;
      size_t p = nl + std::string("NOLINT-ECODB").size();
      if (p < body.size() && body[p] == '(') {
        const size_t close = body.find(')', p);
        std::istringstream list(body.substr(p + 1, close == std::string::npos
                                                       ? std::string::npos
                                                       : close - p - 1));
        std::string rule;
        while (std::getline(list, rule, ',')) {
          rule = Trim(rule);
          if (!rule.empty()) rules.insert(rule);
        }
      }
      if (rules.empty()) rules.insert("*");
      d.nolint[line].insert(rules.begin(), rules.end());
      // The first code line the suppression covers: this line when the
      // comment trails code, the next line when the comment stands alone.
      int covered = standalone ? line + 1 : line;
      if (standalone && covered <= static_cast<int>(lines.size())) {
        d.nolint[covered].insert(rules.begin(), rules.end());
      }
      // A suppression on a statement's first line covers its multi-line
      // continuation: propagate until the statement closes.
      for (int hops = 0; hops < kMaxContinuationLines; ++hops) {
        if (covered < 1 || covered > static_cast<int>(lines.size())) break;
        const std::string code = CodePart(lines[static_cast<size_t>(covered - 1)]);
        if (!StatementContinues(code)) break;
        ++covered;
        if (covered > static_cast<int>(lines.size())) break;
        d.nolint[covered].insert(rules.begin(), rules.end());
      }
    }

    const size_t mark = body.find("ecodb-lint:");
    if (mark != std::string::npos) {
      const std::string what =
          Trim(body.substr(mark + std::string("ecodb-lint:").size()));
      if (what.rfind("worker-context", 0) == 0) {
        d.region[line] = Region::kWorker;
        d.has_worker_region = true;
      } else if (what.rfind("coordinator-only", 0) == 0) {
        d.region[line] = Region::kCoordinator;
      } else if (what.rfind("worker-partial", 0) == 0) {
        d.worker_partial.insert(line);
      }
    }
  }
  return d;
}

const std::set<std::string>& BannedEntropyNames() {
  static const std::set<std::string> kNames = {
      "rand",          "srand",         "drand48",
      "lrand48",       "random_device", "random_shuffle",
      "system_clock",  "steady_clock",  "high_resolution_clock",
      "gettimeofday",  "clock_gettime"};
  return kNames;
}

bool IsUnorderedTypeName(const std::string& t) {
  return t.rfind("unordered_", 0) == 0;
}

bool IsStatementKeyword(const std::string& t) {
  static const std::set<std::string> kKeywords = {
      "return", "if", "else", "while", "for", "do", "switch", "case", "co_return"};
  return kKeywords.count(t) > 0;
}

bool IsSettlementName(const std::string& t) {
  return t.rfind("Charge", 0) == 0 || t.rfind("Settle", 0) == 0 ||
         t == "MergeWork" || t == "Finish";
}

std::set<std::string> CollectUnorderedNames(const std::vector<Token>& tokens) {
  std::set<std::string> names;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!tokens[i].ident || !IsUnorderedTypeName(tokens[i].text)) continue;
    size_t k = i + 1;
    int angle = 0;
    std::string last_ident;
    for (; k < tokens.size(); ++k) {
      const std::string& t = tokens[k].text;
      if (t == "<") { ++angle; continue; }
      if (t == ">") { if (angle > 0) --angle; continue; }
      if (angle > 0) continue;
      if (t == ";" || t == "=" || t == "(" || t == "{" || t == ":" ||
          t == ")" || t == ",") {
        break;
      }
      if (tokens[k].ident) last_ident = t;
    }
    if (!last_ident.empty()) names.insert(last_ident);
  }
  return names;
}

}  // namespace ecodb::lint
